# Mirrors .github/workflows/ci.yml so CI is reproducible locally:
# `make ci` runs exactly the gates the workflow runs.

GO ?= go

.PHONY: build test vet fmt fmt-check bench golden golden-update tuning-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# The byte-identity gates: every Report and TuningReport encoder
# against its golden file (the TestGolden pattern covers both
# families), the replicates=1 Spec output against the legacy figure
# tables, and the cmd/experiments report — including the -tuning
# scorecard — across worker counts, all under -race.
golden:
	$(GO) test -race -run 'TestGolden|TestSpecLegacyByteIdentity' ./internal/harness
	$(GO) test -race -run 'TestParallelReportByteIdentical|TestTuningScorecardDeterministic' ./cmd/experiments

# Regenerate the encoder golden files (report and tuning scorecard)
# after an intentional format change.
golden-update:
	$(GO) test -run 'TestGolden' -update ./internal/harness

# End-to-end smoke of the closed adaptive-tuning loop: the -tuning
# scorecard must render with confidence bands on a real (tiny) grid.
tuning-smoke:
	$(GO) run ./cmd/experiments -size test -interval 40000 -apps lu -replicates 2 -tuning > /dev/null

ci: build fmt-check vet test bench golden tuning-smoke
