# Mirrors .github/workflows/ci.yml so CI is reproducible locally:
# `make ci` runs exactly the gates the workflow runs.

GO ?= go

.PHONY: build test vet fmt fmt-check bench ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build fmt-check vet test bench
