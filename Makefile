# Mirrors .github/workflows/ci.yml so CI is reproducible locally:
# `make ci` runs exactly the gates the workflow runs.

GO ?= go

.PHONY: build test vet fmt fmt-check bench bench-json bench-smoke bench-check golden golden-update tuning-smoke shard-smoke service-smoke workload-smoke workload-smoke-update fuzz-smoke coherence-race resilience-race chaos-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Refresh the "current" run of the perf-trajectory artifact
# (BENCH_baseline.json) from the Table I/II benchmarks. Earlier labeled
# runs — e.g. the pinned pre-optimization numbers — are preserved;
# compare runs with benchstat or by eye. DESIGN.md §10 explains the
# artifact.
#
# Both targets stage go test's output in a temp file so a benchmark
# failure fails the target — a straight pipe would take benchjson's
# exit status and let a partial run slip through.
bench-json:
	@tmp=$$(mktemp) && trap 'rm -f "$$tmp"' EXIT && \
	$(GO) test -bench 'BenchmarkTableI|BenchmarkTableII|BenchmarkStep' -benchtime 1s -run '^$$' . ./internal/machine > "$$tmp" && \
	$(GO) run ./cmd/benchjson -label current -out BENCH_baseline.json < "$$tmp"

# Non-gating perf smoke: the perf-tracked benchmarks must still run and
# their output must still parse into the artifact schema. One iteration
# each — this guards the toolchain, not the numbers.
bench-smoke:
	@tmp=$$(mktemp) && trap 'rm -f "$$tmp"' EXIT && \
	$(GO) test -bench 'BenchmarkTableI|BenchmarkStep' -benchtime 1x -run '^$$' . ./internal/machine > "$$tmp" && \
	$(GO) run ./cmd/benchjson -label smoke -out /dev/null < "$$tmp" && \
	echo "bench-smoke: benchmarks run and parse"

# The perf regression gate: re-measure the Table I benchmarks and fail
# on a >10% Minstr/s drop against the committed baseline's "current"
# run. Runs from a different CPU than the baseline's are incomparable,
# so the check downgrades itself to a warning there (see benchjson
# -check) — the gate bites on the machines that refreshed the baseline
# and stays quiet elsewhere.
bench-check:
	@tmp=$$(mktemp) && trap 'rm -f "$$tmp" "$$tmp.json"' EXIT && \
	$(GO) test -bench 'BenchmarkTableI' -benchtime 1s -run '^$$' . > "$$tmp" && \
	$(GO) run ./cmd/benchjson -label current -out "$$tmp.json" < "$$tmp" && \
	$(GO) run ./cmd/benchjson -check BENCH_baseline.json "$$tmp.json"

# End-to-end smoke of the coordinator service: start dsmphased on a
# free port with two local workers, submit the figure2 test grid
# through the real client (`experiments -submit`), and require the
# served report to be byte-identical to the direct unsharded run —
# twice, so the second pass also exercises the result cache.
service-smoke:
	@set -e; tmp=$$(mktemp -d); server_pid=""; \
	trap 'if [ -n "$$server_pid" ]; then kill $$server_pid 2>/dev/null || true; fi; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/experiments" ./cmd/experiments; \
	$(GO) build -o "$$tmp/dsmphased" ./cmd/dsmphased; \
	"$$tmp/dsmphased" -listen 127.0.0.1:0 -addr-file "$$tmp/addr" -data "$$tmp/data" -experiments "$$tmp/experiments" 2>"$$tmp/server.log" & server_pid=$$!; \
	i=0; while [ ! -f "$$tmp/addr" ] && [ $$i -lt 100 ]; do sleep 0.1; i=$$((i+1)); done; \
	[ -f "$$tmp/addr" ] || { echo "service-smoke: server did not start" >&2; cat "$$tmp/server.log" >&2; exit 1; }; \
	flags="-size test -interval 40000 -apps lu -grids figure2"; \
	"$$tmp/experiments" $$flags > "$$tmp/direct.md"; \
	"$$tmp/experiments" $$flags -submit "http://$$(cat "$$tmp/addr")" > "$$tmp/served.md"; \
	diff "$$tmp/direct.md" "$$tmp/served.md"; \
	"$$tmp/experiments" $$flags -submit "http://$$(cat "$$tmp/addr")" > "$$tmp/cached.md"; \
	diff "$$tmp/direct.md" "$$tmp/cached.md"; \
	echo "service-smoke: served and cached reports byte-identical to direct run"

# The byte-identity gates: every Report and TuningReport encoder
# against its golden file (the TestGolden pattern covers both
# families, plus the shard artifact), the replicates=1 Spec output
# against the legacy figure tables, shard-set merges against the
# unsharded run (all encoders, tuning included), and the
# cmd/experiments report — including the -tuning scorecard and the
# shard+merge path — across worker counts, all under -race.
golden:
	$(GO) test -race -run 'TestGolden|TestSpecLegacyByteIdentity|TestMergeByteIdentity|TestMergeTuningByteIdentity' ./internal/harness
	$(GO) test -race -run 'TestParallelReportByteIdentical|TestTuningScorecardDeterministic|TestShardMergeByteIdentity' ./cmd/experiments

# Regenerate the golden files (report and tuning encoders, shard
# artifact) after an intentional format change; remember to update
# docs/MERGE_FORMAT.md when the shard schema moves.
golden-update:
	$(GO) test -run 'TestGolden' -update ./internal/harness

# End-to-end smoke of the closed adaptive-tuning loop: the -tuning
# scorecard must render with confidence bands on a real (tiny) grid.
tuning-smoke:
	$(GO) run ./cmd/experiments -size test -interval 40000 -apps lu -replicates 2 -tuning > /dev/null

# End-to-end smoke of cross-machine sharding: run a tiny grid as two
# shards, merge the artifacts, and require the merged report to be
# byte-identical to the unsharded run (docs/MERGE_FORMAT.md's core
# guarantee, exercised through the real CLI).
shard-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	flags="-size test -interval 40000 -apps lu -replicates 2 -tuning"; \
	$(GO) run ./cmd/experiments $$flags > "$$tmp/unsharded.md" && \
	$(GO) run ./cmd/experiments $$flags -shard 0/2 -shard-out "$$tmp/s0.json" && \
	$(GO) run ./cmd/experiments $$flags -shard 1/2 -shard-out "$$tmp/s1.json" && \
	$(GO) run ./cmd/experiments $$flags -merge "$$tmp/s0.json" "$$tmp/s1.json" > "$$tmp/merged.md" && \
	diff "$$tmp/unsharded.md" "$$tmp/merged.md" && \
	echo "shard-smoke: merged report byte-identical"

# End-to-end smoke of the workload-definition front ends: run the
# committed example specs — two DSL files and one ingested trace —
# through the real CLI and require the report to be byte-identical to
# the pinned golden. The DSL compiler, the trace replayer, and the
# dynamic-registration path cannot drift silently.
WORKLOAD_SMOKE_FLAGS = -size test -interval 16000 -grids figure2 \
	-workload-file examples/adversarial_phases/oscillate.wdl \
	-workload-file examples/adversarial_phases/drift.wdl \
	-workload-file examples/trace_ingest/pingpong.wdl \
	-apps oscillate,drift,pingpong

workload-smoke:
	@tmp=$$(mktemp) && trap 'rm -f "$$tmp"' EXIT && \
	$(GO) run ./cmd/experiments $(WORKLOAD_SMOKE_FLAGS) > "$$tmp" && \
	diff cmd/experiments/testdata/workload_smoke.golden "$$tmp" && \
	echo "workload-smoke: example-spec report byte-identical to golden"

# Re-pin the workload-smoke golden after an intentional change to the
# example specs or the report format.
workload-smoke-update:
	$(GO) run ./cmd/experiments $(WORKLOAD_SMOKE_FLAGS) > cmd/experiments/testdata/workload_smoke.golden

# Spec-fuzzer smoke: a short fixed-seed, fixed-budget campaign over
# the committed adversarial seeds. Hard invariant violations (compile
# panics, nondeterministic streams, hash instability) fail the gate;
# the campaign must also still find at least one detector-degrading
# spec — the capability the committed examples/fuzz_found corpus was
# born from. DESIGN.md §14 describes the operators and oracles.
fuzz-smoke:
	@tmp=$$(mktemp) && trap 'rm -f "$$tmp"' EXIT && \
	$(GO) run ./cmd/wdlfuzz -budget 40 -seed 1 -out "" -fail-on-invariant > "$$tmp" && \
	grep -q '\[detector\]' "$$tmp" || { echo "fuzz-smoke: no detector finding in fixed-seed campaign" >&2; cat "$$tmp" >&2; exit 1; } && \
	echo "fuzz-smoke: campaign clean, detector finding reproduced"

# The protocol seam's dedicated gate: both coherence backends (the
# conformance suite included) and the machine layer that selects
# between them, under the race detector.
coherence-race:
	$(GO) test -race ./internal/coherence/... ./internal/machine/...

# The resilience seam's dedicated gate: the coordinator and the fault
# plane under the race detector — retries, quarantine, degraded
# synthesis and the chaos campaign all cross goroutines.
resilience-race:
	$(GO) test -race ./internal/service/... ./internal/faults/...

# End-to-end smoke of the fault-injection plane through the real CLI:
# a fixed-seed chaos campaign (recovery schedules must complete
# byte-identical, hostile schedules must degrade marking exactly the
# injured cells, replays must be deterministic, corrupt cache entries
# must be evicted and recomputed). docs/SERVICE.md "Failure model".
chaos-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o "$$tmp/experiments" ./cmd/experiments && \
	$(GO) build -o "$$tmp/dsmphased" ./cmd/dsmphased && \
	"$$tmp/dsmphased" -chaos 4 -chaos-seed 1 -data "$$tmp/data" -experiments "$$tmp/experiments" > "$$tmp/chaos.json"

ci: build fmt-check vet test coherence-race resilience-race bench bench-check golden tuning-smoke shard-smoke workload-smoke fuzz-smoke service-smoke chaos-smoke
