# Mirrors .github/workflows/ci.yml so CI is reproducible locally:
# `make ci` runs exactly the gates the workflow runs.

GO ?= go

.PHONY: build test vet fmt fmt-check bench golden golden-update ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# The byte-identity gates: every Report encoder against its golden
# file, the replicates=1 Spec output against the legacy figure tables,
# and the cmd/experiments report across worker counts — all under -race.
golden:
	$(GO) test -race -run 'TestGolden|TestSpecLegacyByteIdentity' ./internal/harness
	$(GO) test -race -run 'TestParallelReportByteIdentical' ./cmd/experiments

# Regenerate the encoder golden files after an intentional format change.
golden-update:
	$(GO) test -run 'TestGolden' -update ./internal/harness

ci: build fmt-check vet test bench golden
