# Mirrors .github/workflows/ci.yml so CI is reproducible locally:
# `make ci` runs exactly the gates the workflow runs.

GO ?= go

.PHONY: build test vet fmt fmt-check bench golden golden-update tuning-smoke shard-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# The byte-identity gates: every Report and TuningReport encoder
# against its golden file (the TestGolden pattern covers both
# families, plus the shard artifact), the replicates=1 Spec output
# against the legacy figure tables, shard-set merges against the
# unsharded run (all encoders, tuning included), and the
# cmd/experiments report — including the -tuning scorecard and the
# shard+merge path — across worker counts, all under -race.
golden:
	$(GO) test -race -run 'TestGolden|TestSpecLegacyByteIdentity|TestMergeByteIdentity|TestMergeTuningByteIdentity' ./internal/harness
	$(GO) test -race -run 'TestParallelReportByteIdentical|TestTuningScorecardDeterministic|TestShardMergeByteIdentity' ./cmd/experiments

# Regenerate the golden files (report and tuning encoders, shard
# artifact) after an intentional format change; remember to update
# docs/MERGE_FORMAT.md when the shard schema moves.
golden-update:
	$(GO) test -run 'TestGolden' -update ./internal/harness

# End-to-end smoke of the closed adaptive-tuning loop: the -tuning
# scorecard must render with confidence bands on a real (tiny) grid.
tuning-smoke:
	$(GO) run ./cmd/experiments -size test -interval 40000 -apps lu -replicates 2 -tuning > /dev/null

# End-to-end smoke of cross-machine sharding: run a tiny grid as two
# shards, merge the artifacts, and require the merged report to be
# byte-identical to the unsharded run (docs/MERGE_FORMAT.md's core
# guarantee, exercised through the real CLI).
shard-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	flags="-size test -interval 40000 -apps lu -replicates 2 -tuning"; \
	$(GO) run ./cmd/experiments $$flags > "$$tmp/unsharded.md" && \
	$(GO) run ./cmd/experiments $$flags -shard 0/2 -shard-out "$$tmp/s0.json" && \
	$(GO) run ./cmd/experiments $$flags -shard 1/2 -shard-out "$$tmp/s1.json" && \
	$(GO) run ./cmd/experiments $$flags -merge "$$tmp/s0.json" "$$tmp/s1.json" > "$$tmp/merged.md" && \
	diff "$$tmp/unsharded.md" "$$tmp/merged.md" && \
	echo "shard-smoke: merged report byte-identical"

ci: build fmt-check vet test bench golden tuning-smoke shard-smoke
