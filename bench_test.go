package dsmphase

// Benchmark harness: one benchmark per table and figure of the paper,
// plus the ablations called out in DESIGN.md §6 and micro-benchmarks of
// the hot paths. Benchmarks run reduced inputs so `go test -bench=.`
// finishes in minutes; regenerate paper-scale data with cmd/covcurve
// (-size full -interval 3000000).
//
//	BenchmarkTableI_*    — the simulated machine itself (throughput)
//	BenchmarkTableII_*   — workload instruction-stream generation
//	BenchmarkFigure2_*   — baseline BBV CoV curves at 2/8/32 nodes
//	BenchmarkFigure4_*   — BBV vs BBV+DDV at 8/32 nodes
//	BenchmarkOverhead_*  — the §III-B DDS bandwidth model
//	BenchmarkAblation_*  — design-choice ablations
//	Benchmark<hot path>  — detector and substrate micro-benchmarks

import (
	"fmt"
	"testing"

	"dsmphase/internal/cache"
	"dsmphase/internal/coherence"
	"dsmphase/internal/core"
	"dsmphase/internal/cpu"
	"dsmphase/internal/harness"
	"dsmphase/internal/isa"
	"dsmphase/internal/machine"
	"dsmphase/internal/memory"
	"dsmphase/internal/network"
	"dsmphase/internal/stats"
	"dsmphase/internal/workloads"
)

// benchRC builds the standard reduced-scale run for figure benchmarks.
func benchRC(app string, procs int) harness.RunConfig {
	return harness.RunConfig{
		Workload:             app,
		Size:                 workloads.SizeTest,
		Procs:                procs,
		IntervalInstructions: 40_000 / uint64(procs),
		Seed:                 1,
	}
}

// simulateOnce runs one simulation and reports simulator throughput.
func simulateOnce(b *testing.B, rc harness.RunConfig) (*machine.Machine, machine.Summary) {
	b.Helper()
	m, sum, err := harness.Simulate(rc)
	if err != nil {
		b.Fatal(err)
	}
	return m, sum
}

// ---- Table I: the simulated machine ----

// BenchmarkTableI_MachineThroughput measures end-to-end simulation speed
// of the Table I system (instructions simulated per second) at the two
// node counts the perf trajectory tracks (make bench-json /
// BENCH_baseline.json). The 32P case is where scheduler overhead
// dominates: the naive per-instruction min-scan costs O(P) per
// committed instruction.
func BenchmarkTableI_MachineThroughput(b *testing.B) {
	// The directory sub-benchmarks keep their bare "8P"/"32P" names so
	// the BENCH_baseline.json throughput guard tracks the same series;
	// the ivy variants ride alongside under a protocol suffix.
	for _, proto := range coherence.Kinds() {
		for _, procs := range []int{8, 32} {
			name := fmt.Sprintf("%dP", procs)
			if proto != coherence.KindDirectory {
				name += "/" + proto.String()
			}
			b.Run(name, func(b *testing.B) {
				rc := benchRC("lu", procs)
				rc.Protocol = proto
				b.ReportAllocs()
				var instrs uint64
				for i := 0; i < b.N; i++ {
					_, sum := simulateOnce(b, rc)
					instrs += sum.Instructions
				}
				b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
			})
		}
	}
}

// BenchmarkTableI_ProtocolAccess measures a single coherence transaction
// on the Table I memory system, per backend.
func BenchmarkTableI_ProtocolAccess(b *testing.B) {
	params := coherence.Params{
		N:     8,
		L1:    cache.L1Default(),
		L2:    cache.L2Default(),
		Mem:   memory.DefaultConfig(),
		Costs: coherence.DefaultCosts(),
		Home:  coherence.NewHomeMap(0, 8), // line (or page) % 8
	}
	for _, proto := range coherence.Kinds() {
		b.Run(proto.String(), func(b *testing.B) {
			p := params
			p.Net = network.New(8, network.DefaultConfig())
			var eng coherence.Protocol
			switch proto {
			case coherence.KindDirectory:
				eng = coherence.NewDirectory(p)
			case coherence.KindIVY:
				eng = coherence.NewIVY(p)
			default:
				b.Fatalf("unknown protocol %v", proto)
			}
			var t uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := eng.Access(t, i%8, uint64(i%4096)*32, i%4 == 0)
				t = r.Done
			}
		})
	}
}

// BenchmarkTableI_NetworkSend measures hypercube message injection.
func BenchmarkTableI_NetworkSend(b *testing.B) {
	h := network.New(32, network.DefaultConfig())
	var t uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = h.Send(t, i%32, (i*7+5)%32, 40)
	}
}

// ---- Table II: the applications ----

func BenchmarkTableII_Generation(b *testing.B) {
	for _, w := range workloads.All() {
		w := w
		b.Run(w.Name(), func(b *testing.B) {
			var instrs uint64
			for i := 0; i < b.N; i++ {
				e := isa.NewEmitter(1 << 16)
				for _, th := range w.Threads(4, workloads.SizeTest, 1) {
					for {
						e.Reset()
						if !th.NextBatch(e) {
							break
						}
						instrs += uint64(e.Len())
					}
				}
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// ---- Figure 2: baseline BBV degradation with node count ----

func BenchmarkFigure2(b *testing.B) {
	for _, app := range []string{"fmm", "lu", "equake", "art"} {
		for _, procs := range []int{2, 8, 32} {
			name := fmt.Sprintf("%s/%dP", app, procs)
			b.Run(name, func(b *testing.B) {
				rc := benchRC(app, procs)
				var lastCoV float64
				for i := 0; i < b.N; i++ {
					m, sum := simulateOnce(b, rc)
					c := harness.SweepMachine(m, rc, core.DetectorBBV, sum)
					lastCoV = c.Curve.CoVAt(25)
				}
				b.ReportMetric(lastCoV, "CoV@25phases")
			})
		}
	}
}

// ---- Figure 4: BBV vs BBV+DDV ----

func BenchmarkFigure4(b *testing.B) {
	for _, app := range []string{"fmm", "lu", "equake", "art"} {
		for _, procs := range []int{8, 32} {
			for _, kind := range []core.DetectorKind{core.DetectorBBV, core.DetectorBBVDDV} {
				name := fmt.Sprintf("%s/%dP/%s", app, procs, kind)
				b.Run(name, func(b *testing.B) {
					rc := benchRC(app, procs)
					var lastCoV float64
					for i := 0; i < b.N; i++ {
						m, sum := simulateOnce(b, rc)
						c := harness.SweepMachine(m, rc, kind, sum)
						lastCoV = c.Curve.CoVAt(25)
					}
					b.ReportMetric(lastCoV, "CoV@25phases")
				})
			}
		}
	}
}

// ---- The sharded experiment engine ----

// BenchmarkFigureEngine runs the Figure 4 multi-workload sweep (all
// four applications, 8 nodes, BBV and BBV+DDV over shared simulations)
// through the engine at several worker counts. workers=1 is the serial
// baseline; higher counts show the worker-pool speedup on multi-core
// hosts (the curves themselves are identical at every setting).
func BenchmarkFigureEngine(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			fc := harness.FigureConfig{
				Size:     workloads.SizeTest,
				Interval: 40_000,
				Seed:     1,
				Parallel: workers,
			}
			for i := 0; i < b.N; i++ {
				res, err := harness.Figure4(fc, []int{8})
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != 8 {
					b.Fatalf("got %d curves, want 8", len(res))
				}
			}
		})
	}
}

// BenchmarkEngineRecordCache quantifies the memoizing record cache: the
// same four-detector sweep with the cache (one simulation shared by all
// kinds) versus defeated (distinct seeds force four simulations).
func BenchmarkEngineRecordCache(b *testing.B) {
	kinds := []core.DetectorKind{
		core.DetectorWSS, core.DetectorBBV, core.DetectorDDS, core.DetectorBBVDDV,
	}
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan := harness.NewPlan().Add(benchRC("lu", 8), kinds...)
			if err := harness.FirstError(harness.RunPlan(plan, harness.Options{Parallel: 1})); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("resimulated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan := harness.NewPlan()
			for s, k := range kinds {
				rc := benchRC("lu", 8)
				rc.Seed = harness.DeriveSeed(rc.Seed, rc.Workload, rc.Procs, s)
				plan.Add(rc, k)
			}
			if err := harness.FirstError(harness.RunPlan(plan, harness.Options{Parallel: 1})); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- §III-B: DDS exchange overhead model ----

func BenchmarkOverhead_Model(b *testing.B) {
	o := core.PaperOverheadConfig()
	var bw float64
	for i := 0; i < b.N; i++ {
		bw = o.BandwidthPerProcessor()
	}
	b.ReportMetric(bw/1e3, "kB/s")
}

// BenchmarkOverhead_MeasuredGather compares simulated runtime with the
// DDS gather charged versus free, measuring the mechanism's real cost on
// the simulated network (the paper argues it is negligible). The two
// settings are a named Spec grid; "charge=true" is the baseline
// hardware, "charge=false" its keyed variant.
func BenchmarkOverhead_MeasuredGather(b *testing.B) {
	for _, variant := range []struct {
		name string
		opts []harness.Option
	}{
		{"charge=true", nil},
		{"charge=false", []harness.Option{
			harness.WithTweak("free-gather", "free-gather",
				func(c *machine.Config) { c.ChargeDDSGather = false }),
			harness.WithoutBaseline(),
		}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			spec := benchSpec("lu", 8, core.DetectorBBVDDV, variant.opts...)
			var cycles float64
			for i := 0; i < b.N; i++ {
				rep := runBenchSpec(b, spec)
				cycles = rep.Configs[0].Curves[0].Summary.Cycles
			}
			b.ReportMetric(cycles, "simcycles")
		})
	}
}

// ---- Ablations (DESIGN.md §6) ----
//
// The design-choice ablations are expressed as named Spec grids: each
// variant is a WithTweak(name, key, fn) row, TweakKey-cached so every
// detector sweeping a variant shares one simulation, and quality is
// read from the aggregated Report band.

// benchSpec builds a one-configuration Spec at the standard reduced
// benchmark scale, plus any variant options.
func benchSpec(app string, procs int, kind core.DetectorKind, extra ...harness.Option) *harness.Spec {
	return harness.NewSpec(append([]harness.Option{
		harness.WithApps(app),
		harness.WithProcs(procs),
		harness.WithDetectors(kind),
		harness.WithSize(workloads.SizeTest),
		harness.WithInterval(40_000),
		harness.WithSeed(1),
	}, extra...)...)
}

// runBenchSpec executes a Spec serially and fails the benchmark on any
// cell error.
func runBenchSpec(b *testing.B, spec *harness.Spec) *harness.Report {
	b.Helper()
	rep := spec.Run(harness.Options{Parallel: 1})
	if err := rep.FirstError(); err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkAblation_Detector compares all three detector kinds on the
// same workload, reporting classification quality.
func BenchmarkAblation_Detector(b *testing.B) {
	for _, kind := range []core.DetectorKind{core.DetectorWSS, core.DetectorBBV, core.DetectorDDS, core.DetectorBBVDDV} {
		b.Run(kind.String(), func(b *testing.B) {
			rc := benchRC("lu", 8)
			var lastCoV float64
			for i := 0; i < b.N; i++ {
				m, sum := simulateOnce(b, rc)
				c := harness.SweepMachine(m, rc, kind, sum)
				lastCoV = c.Curve.CoVAt(25)
			}
			b.ReportMetric(lastCoV, "CoV@25phases")
		})
	}
}

// BenchmarkAblation_Contention removes the contention vector C from the
// DDS product — the "no-contention" grid row.
func BenchmarkAblation_Contention(b *testing.B) {
	for _, variant := range []struct {
		name string
		opts []harness.Option
	}{
		{"ignoreC=false", nil},
		{"ignoreC=true", []harness.Option{
			harness.WithTweak("no-contention", "dds-no-contention",
				func(c *machine.Config) { c.DDS.IgnoreContention = true }),
			harness.WithoutBaseline(),
		}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			spec := benchSpec("art", 8, core.DetectorBBVDDV, variant.opts...)
			var lastCoV float64
			for i := 0; i < b.N; i++ {
				lastCoV = runBenchSpec(b, spec).Configs[0].Band.MeanAt(25)
			}
			b.ReportMetric(lastCoV, "CoV@25phases")
		})
	}
}

// BenchmarkAblation_Distance replaces the hop-based distance matrix with
// all-ones — the "uniform-distance" grid row.
func BenchmarkAblation_Distance(b *testing.B) {
	for _, variant := range []struct {
		name string
		opts []harness.Option
	}{
		{"uniformD=false", nil},
		{"uniformD=true", []harness.Option{
			harness.WithTweak("uniform-distance", "uniform-distance",
				func(c *machine.Config) { c.UniformDistance = true }),
			harness.WithoutBaseline(),
		}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			spec := benchSpec("lu", 8, core.DetectorBBVDDV, variant.opts...)
			var lastCoV float64
			for i := 0; i < b.N; i++ {
				lastCoV = runBenchSpec(b, spec).Configs[0].Band.MeanAt(25)
			}
			b.ReportMetric(lastCoV, "CoV@25phases")
		})
	}
}

// BenchmarkAblation_Grid runs the full DDS-design grid — baseline plus
// both DDS tweaks, two detectors each — as one Spec, measuring the
// engine's TweakKey record-cache sharing (three simulations serve six
// sweeps).
func BenchmarkAblation_Grid(b *testing.B) {
	spec := benchSpec("lu", 8, core.DetectorBBVDDV,
		harness.WithDetectors(core.DetectorBBV, core.DetectorBBVDDV),
		harness.WithTweak("no-contention", "dds-no-contention",
			func(c *machine.Config) { c.DDS.IgnoreContention = true }),
		harness.WithTweak("uniform-distance", "uniform-distance",
			func(c *machine.Config) { c.UniformDistance = true }),
	)
	if got, want := spec.Plan().Simulations(), 3; got != want {
		b.Fatalf("grid runs %d simulations, want %d (TweakKey sharing)", got, want)
	}
	var gap float64
	for i := 0; i < b.N; i++ {
		rep := runBenchSpec(b, spec)
		// The headline ablation read-out: how much the contention vector
		// matters at 25 phases.
		base, noC := rep.Configs[1].Band.MeanAt(25), rep.Configs[3].Band.MeanAt(25)
		gap = noC - base
	}
	b.ReportMetric(gap, "ΔCoV@25(no-contention)")
}

// BenchmarkAblation_FootprintSize varies the footprint-table capacity
// around the paper's 32 entries.
func BenchmarkAblation_FootprintSize(b *testing.B) {
	rc := benchRC("fmm", 8)
	m, sum, err := harness.Simulate(rc)
	if err != nil {
		b.Fatal(err)
	}
	_ = sum
	recs := m.RecordsByProc()
	for _, size := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("entries=%d", size), func(b *testing.B) {
			sc := harness.DefaultSweep(core.DetectorBBVDDV, 4)
			sc.TableSize = size
			var env stats.Curve
			for i := 0; i < b.N; i++ {
				env = stats.LowerEnvelope(harness.Sweep(recs, sc))
			}
			b.ReportMetric(env.CoVAt(25), "CoV@25phases")
		})
	}
}

// BenchmarkAblation_SweepVsResim quantifies the key harness design
// choice: replaying classification over recorded signatures versus
// re-simulating per threshold.
func BenchmarkAblation_SweepVsResim(b *testing.B) {
	rc := benchRC("lu", 4)
	thresholds := harness.DefaultBBVThresholds(20)
	b.Run("offline-sweep", func(b *testing.B) {
		m, _, err := harness.Simulate(rc)
		if err != nil {
			b.Fatal(err)
		}
		recs := m.RecordsByProc()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			harness.Sweep(recs, harness.SweepConfig{
				Kind: core.DetectorBBV, BBVThresholds: thresholds,
			})
		}
	})
	b.Run("resimulate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for range thresholds {
				// One full simulation per threshold — what the offline
				// sweep avoids.
				simulateOnce(b, rc)
			}
		}
	})
}

// BenchmarkAblation_TuningLoop runs the closed adaptive-tuning loop —
// detector × predictor × controller on live simulations — and reports
// the headline ablation read-out: how much the DDS-aware detector's win
// rate exceeds the BBV baseline's under the best predictor.
func BenchmarkAblation_TuningLoop(b *testing.B) {
	spec := benchSpec("lu", 4, core.DetectorBBVDDV,
		harness.WithDetectors(core.DetectorBBV, core.DetectorBBVDDV),
		harness.WithPredictors("last-phase", "markov", "run-length"),
		harness.WithControllers(harness.ControllerSpec{Name: "trial-1", TrialsPerConfig: 1}),
	)
	var gap float64
	for i := 0; i < b.N; i++ {
		rep, err := spec.RunTuning(harness.Options{Parallel: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.FirstError(); err != nil {
			b.Fatal(err)
		}
		best := func(kind core.DetectorKind) float64 {
			win := 0.0
			for _, c := range rep.Configs {
				if c.Config.Detector == kind && c.WinRate.Mean > win {
					win = c.WinRate.Mean
				}
			}
			return win
		}
		gap = best(core.DetectorBBVDDV) - best(core.DetectorBBV)
	}
	b.ReportMetric(gap, "Δwin-rate(DDV-BBV)")
}

// ---- Micro-benchmarks of detector hot paths ----

func BenchmarkManhattan(b *testing.B) {
	x := make([]float64, 32)
	y := make([]float64, 32)
	for i := range x {
		x[i] = float64(i) / 32
		y[i] = float64(31-i) / 32
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Manhattan(x, y)
	}
}

func BenchmarkAccumulator(b *testing.B) {
	a := core.NewAccumulator(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Instruction()
		if i%5 == 0 {
			a.Branch(uint32(i))
		}
	}
}

func BenchmarkFootprintClassify(b *testing.B) {
	ft := core.NewFootprintTable(32, 0.1)
	sig := make([]float64, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range sig {
			sig[j] = 0
		}
		sig[i%32] = 1
		ft.Classify(sig, 0)
	}
}

func BenchmarkFrequencyMatrix(b *testing.B) {
	f := core.NewFrequencyMatrix(32)
	buf := make([]uint64, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Access(i % 32)
		if i%1024 == 0 {
			buf = f.QueryAndReset(i%32, buf)
		}
	}
}

func BenchmarkComputeDDS(b *testing.B) {
	n := 32
	net := network.New(n, network.DefaultConfig())
	d := core.NewDistanceMatrix(n, net.Hops)
	freq := make([]uint64, n)
	cont := make([]uint64, n)
	for i := 0; i < n; i++ {
		freq[i] = uint64(i * 100)
		cont[i] = uint64(i * 500)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ComputeDDS(3, freq, cont, d, core.DDSOptions{})
	}
}

func BenchmarkGshare(b *testing.B) {
	g := cpu.NewGshare(2048, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Update(uint32(i*4), i%3 != 0)
	}
}
