// Command benchjson converts `go test -bench` output on stdin into the
// repo's perf-trajectory artifact (BENCH_baseline.json): one labeled
// run per invocation, carrying every reported metric (ns/op, Minstr/s,
// B/op, allocs/op, custom b.ReportMetric units) per benchmark.
//
// When -out names an existing artifact the new run is merged into it:
// a run with the same label is replaced in place, a new label is
// appended. That is what lets the committed artifact keep the pinned
// pre-optimization numbers while `make bench-json` refreshes the
// "current" run on every host:
//
//	go test -bench 'TableI|TableII' -benchtime 5x -run '^$' . |
//	    benchjson -label current -out BENCH_baseline.json
//
// Future PRs diff runs with benchstat or by eye; the artifact is plain
// JSON with stable key order and no wall-clock fields of its own.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Format is the artifact version tag.
const Format = "dsmphase-bench/1"

// Run is one labeled benchmark sweep on one host.
type Run struct {
	Label  string `json:"label"`
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to
	// unit → value, e.g. "Minstr/s" → 1.95, "allocs/op" → 0.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// Artifact is the whole perf-trajectory file.
type Artifact struct {
	Format string `json:"format"`
	Runs   []Run  `json:"runs"`
}

func main() {
	var (
		label = flag.String("label", "current", "label of the run to write (an existing run with the same label is replaced)")
		out   = flag.String("out", "-", `artifact path to merge into ("-" = stdout, no merge)`)
	)
	flag.Parse()
	if err := run(os.Stdin, *label, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, label, out string) error {
	r, err := Parse(in)
	if err != nil {
		return err
	}
	r.Label = label
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	art := Artifact{Format: Format}
	if out != "-" {
		if prev, err := os.ReadFile(out); err == nil && len(prev) > 0 {
			if err := json.Unmarshal(prev, &art); err != nil {
				return fmt.Errorf("%s: not a bench artifact: %w", out, err)
			}
			if art.Format != Format {
				return fmt.Errorf("%s: format %q, want %q", out, art.Format, Format)
			}
		} else if !os.IsNotExist(err) {
			return err
		}
		art.Format = Format
	}
	merged := false
	for i := range art.Runs {
		if art.Runs[i].Label == label {
			art.Runs[i] = r
			merged = true
			break
		}
	}
	if !merged {
		art.Runs = append(art.Runs, r)
	}
	enc, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// Parse reads `go test -bench` output and collects one Run (label left
// empty). Non-benchmark lines other than the goos/goarch/cpu header are
// ignored, so PASS/ok trailers and -v noise are harmless.
func Parse(in io.Reader) (Run, error) {
	r := Run{Benchmarks: map[string]map[string]float64{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			r.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			r.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			r.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || len(f)%2 != 0 {
			continue // benchmark header line ("BenchmarkX") or malformed
		}
		name := f[0]
		// Strip the -GOMAXPROCS suffix so names are host-independent.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		metrics := map[string]float64{}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return r, fmt.Errorf("benchmark line %q: bad value %q", line, f[i])
			}
			metrics[f[i+1]] = v
		}
		r.Benchmarks[name] = metrics
	}
	return r, sc.Err()
}

// Names returns the artifact's benchmark names across all runs, sorted
// (used by the -list convenience of tests and tooling).
func (a Artifact) Names() []string {
	seen := map[string]bool{}
	for _, r := range a.Runs {
		for n := range r.Benchmarks {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
