// Command benchjson converts `go test -bench` output on stdin into the
// repo's perf-trajectory artifact (BENCH_baseline.json): one labeled
// run per invocation, carrying every reported metric (ns/op, Minstr/s,
// B/op, allocs/op, custom b.ReportMetric units) per benchmark.
//
// When -out names an existing artifact the new run is merged into it:
// a run with the same label is replaced in place, a new label is
// appended. That is what lets the committed artifact keep the pinned
// pre-optimization numbers while `make bench-json` refreshes the
// "current" run on every host:
//
//	go test -bench 'TableI|TableII' -benchtime 5x -run '^$' . |
//	    benchjson -label current -out BENCH_baseline.json
//
// Future PRs diff runs with benchstat or by eye; the artifact is plain
// JSON with stable key order and no wall-clock fields of its own.
//
// -check turns the artifact into a regression gate: it compares the
// same-labeled run of two artifacts metric-by-metric and fails when
// the new run regresses past the tolerance (default: >10% on
// Minstr/s). Runs from different CPUs are incomparable, so the check
// warns and passes unless -check-cross-cpu forces it:
//
//	benchjson -check BENCH_baseline.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Format is the artifact version tag.
const Format = "dsmphase-bench/1"

// Run is one labeled benchmark sweep on one host.
type Run struct {
	Label  string `json:"label"`
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to
	// unit → value, e.g. "Minstr/s" → 1.95, "allocs/op" → 0.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// Artifact is the whole perf-trajectory file.
type Artifact struct {
	Format string `json:"format"`
	Runs   []Run  `json:"runs"`
}

func main() {
	var (
		label     = flag.String("label", "current", "label of the run to write (an existing run with the same label is replaced); with -check, label of the runs to compare")
		out       = flag.String("out", "-", `artifact path to merge into ("-" = stdout, no merge)`)
		checkFlag = flag.Bool("check", false, "regression gate: compare <old.json> <new.json> (the two positional arguments) instead of reading stdin")
		metric    = flag.String("check-metric", "Minstr/s", "metric the -check gate compares")
		tolerance = flag.Float64("check-tolerance", 0.10, "fractional regression the -check gate tolerates")
		crossCPU  = flag.Bool("check-cross-cpu", false, "compare runs even when their CPU strings differ (default: warn and pass)")
	)
	flag.Parse()
	if *checkFlag {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -check needs exactly two arguments: old.json new.json")
			os.Exit(1)
		}
		if err := check(flag.Arg(0), flag.Arg(1), *label, *metric, *tolerance, *crossCPU, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, *label, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// readArtifact loads and version-checks one artifact file.
func readArtifact(path string) (Artifact, error) {
	var a Artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("%s: not a bench artifact: %w", path, err)
	}
	if a.Format != Format {
		return a, fmt.Errorf("%s: format %q, want %q", path, a.Format, Format)
	}
	return a, nil
}

// findRun returns the labeled run of an artifact.
func findRun(a Artifact, path, label string) (Run, error) {
	for _, r := range a.Runs {
		if r.Label == label {
			return r, nil
		}
	}
	return Run{}, fmt.Errorf("%s: no run labeled %q", path, label)
}

// lowerIsBetter reports the metric's direction: the per-op cost units
// regress upward, throughput units regress downward.
func lowerIsBetter(metric string) bool {
	return strings.HasSuffix(metric, "/op")
}

// check is the regression gate: compare the same-labeled run of two
// artifacts on one metric and fail on any shared benchmark that
// regressed past the tolerance. Numbers from different CPUs are not
// comparable — the committed baseline was measured on some developer's
// machine, CI runs on another — so differing CPU strings downgrade the
// gate to a warning unless crossCPU forces it.
func check(oldPath, newPath, label, metric string, tolerance float64, crossCPU bool, w io.Writer) error {
	oldArt, err := readArtifact(oldPath)
	if err != nil {
		return err
	}
	newArt, err := readArtifact(newPath)
	if err != nil {
		return err
	}
	oldRun, err := findRun(oldArt, oldPath, label)
	if err != nil {
		return err
	}
	newRun, err := findRun(newArt, newPath, label)
	if err != nil {
		return err
	}
	if oldRun.CPU != newRun.CPU && !crossCPU {
		fmt.Fprintf(w, "check: SKIP — runs are from different CPUs (%q vs %q); numbers are not comparable (-check-cross-cpu overrides)\n",
			oldRun.CPU, newRun.CPU)
		return nil
	}
	names := make([]string, 0, len(oldRun.Benchmarks))
	for name := range oldRun.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []string
	compared := 0
	for _, name := range names {
		oldVal, ok := oldRun.Benchmarks[name][metric]
		if !ok {
			continue
		}
		newVal, ok := newRun.Benchmarks[name][metric]
		if !ok {
			fmt.Fprintf(w, "check: note — %s missing from the new run; skipping\n", name)
			continue
		}
		compared++
		var change float64 // fractional regression, positive = worse
		if lowerIsBetter(metric) {
			change = newVal/oldVal - 1
		} else {
			change = 1 - newVal/oldVal
		}
		status := "ok"
		if change > tolerance {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %s %.4g -> %.4g (%.1f%% worse, tolerance %.0f%%)",
					name, metric, oldVal, newVal, 100*change, 100*tolerance))
		}
		fmt.Fprintf(w, "check: %-40s %s %10.4g -> %10.4g  %+6.1f%%  %s\n",
			name, metric, oldVal, newVal, -100*change, status)
	}
	if compared == 0 {
		return fmt.Errorf("no shared benchmarks carry metric %q", metric)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed:\n  %s",
			len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "check: %d benchmark(s) within %.0f%% of %s\n", compared, 100*tolerance, oldPath)
	return nil
}

func run(in io.Reader, label, out string) error {
	r, err := Parse(in)
	if err != nil {
		return err
	}
	r.Label = label
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	art := Artifact{Format: Format}
	if out != "-" {
		if prev, err := os.ReadFile(out); err == nil && len(prev) > 0 {
			if err := json.Unmarshal(prev, &art); err != nil {
				return fmt.Errorf("%s: not a bench artifact: %w", out, err)
			}
			if art.Format != Format {
				return fmt.Errorf("%s: format %q, want %q", out, art.Format, Format)
			}
		} else if !os.IsNotExist(err) {
			return err
		}
		art.Format = Format
	}
	merged := false
	for i := range art.Runs {
		if art.Runs[i].Label == label {
			art.Runs[i] = r
			merged = true
			break
		}
	}
	if !merged {
		art.Runs = append(art.Runs, r)
	}
	enc, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// Parse reads `go test -bench` output and collects one Run (label left
// empty). Non-benchmark lines other than the goos/goarch/cpu header are
// ignored, so PASS/ok trailers and -v noise are harmless.
func Parse(in io.Reader) (Run, error) {
	r := Run{Benchmarks: map[string]map[string]float64{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			r.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			r.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			r.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || len(f)%2 != 0 {
			continue // benchmark header line ("BenchmarkX") or malformed
		}
		name := f[0]
		// Strip the -GOMAXPROCS suffix so names are host-independent.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		metrics := map[string]float64{}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return r, fmt.Errorf("benchmark line %q: bad value %q", line, f[i])
			}
			metrics[f[i+1]] = v
		}
		r.Benchmarks[name] = metrics
	}
	return r, sc.Err()
}

// Names returns the artifact's benchmark names across all runs, sorted
// (used by the -list convenience of tests and tooling).
func (a Artifact) Names() []string {
	seen := map[string]bool{}
	for _, r := range a.Runs {
		for n := range r.Benchmarks {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
