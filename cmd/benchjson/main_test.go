package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dsmphase
cpu: AMD EPYC 7B13
BenchmarkTableI_MachineThroughput/8P-64         	       5	 22916968 ns/op	         1.950 Minstr/s	 9212345 B/op	   12345 allocs/op
BenchmarkTableI_MachineThroughput/32P-64        	       2	511663948 ns/op	         0.4399 Minstr/s	34567890 B/op	  123456 allocs/op
BenchmarkTableI_NetworkSend-64                  	14406022	        83.70 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	dsmphase	8.058s
`

func TestParse(t *testing.T) {
	r, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if r.Goos != "linux" || r.Goarch != "amd64" || r.CPU != "AMD EPYC 7B13" {
		t.Errorf("header = %q/%q/%q", r.Goos, r.Goarch, r.CPU)
	}
	if len(r.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(r.Benchmarks))
	}
	m := r.Benchmarks["BenchmarkTableI_MachineThroughput/8P"]
	if m == nil {
		t.Fatal("8P benchmark missing (GOMAXPROCS suffix not stripped?)")
	}
	if m["Minstr/s"] != 1.95 {
		t.Errorf("Minstr/s = %v, want 1.95", m["Minstr/s"])
	}
	if m["allocs/op"] != 12345 {
		t.Errorf("allocs/op = %v", m["allocs/op"])
	}
	if v := r.Benchmarks["BenchmarkTableI_NetworkSend"]["ns/op"]; v != 83.70 {
		t.Errorf("ns/op = %v", v)
	}
}

func TestMergeReplacesSameLabelKeepsOthers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")

	if err := run(strings.NewReader(sample), "pre", path); err != nil {
		t.Fatal(err)
	}
	// A second run under a different label appends; same label replaces.
	faster := strings.ReplaceAll(sample, "1.950", "3.900")
	if err := run(strings.NewReader(faster), "current", path); err != nil {
		t.Fatal(err)
	}
	evenFaster := strings.ReplaceAll(sample, "1.950", "7.800")
	if err := run(strings.NewReader(evenFaster), "current", path); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatal(err)
	}
	if art.Format != Format {
		t.Errorf("format = %q", art.Format)
	}
	if len(art.Runs) != 2 {
		t.Fatalf("runs = %d, want 2 (pre + current)", len(art.Runs))
	}
	if art.Runs[0].Label != "pre" || art.Runs[1].Label != "current" {
		t.Errorf("labels = %q, %q", art.Runs[0].Label, art.Runs[1].Label)
	}
	pre := art.Runs[0].Benchmarks["BenchmarkTableI_MachineThroughput/8P"]["Minstr/s"]
	cur := art.Runs[1].Benchmarks["BenchmarkTableI_MachineThroughput/8P"]["Minstr/s"]
	if pre != 1.95 {
		t.Errorf("pre run clobbered: Minstr/s = %v", pre)
	}
	if cur != 7.8 {
		t.Errorf("current run not replaced: Minstr/s = %v", cur)
	}
	if got := art.Names(); len(got) != 3 || got[0] != "BenchmarkTableI_MachineThroughput/32P" {
		t.Errorf("Names() = %v", got)
	}
}

func TestEmptyInputFails(t *testing.T) {
	if err := run(strings.NewReader("no benchmarks here\n"), "x", "-"); err == nil {
		t.Fatal("want error on input without benchmark lines")
	}
}

// writeCheckArtifact writes a one-run artifact for the -check tests.
func writeCheckArtifact(t *testing.T, path, cpu string, minstr float64) {
	t.Helper()
	art := Artifact{Format: Format, Runs: []Run{{
		Label: "current",
		CPU:   cpu,
		Benchmarks: map[string]map[string]float64{
			"BenchmarkTableI_MachineThroughput/8P": {"Minstr/s": minstr, "ns/op": 1e6 / minstr},
		},
	}}}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	old, new := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeCheckArtifact(t, old, "cpu-a", 2.0)
	writeCheckArtifact(t, new, "cpu-a", 1.85) // 7.5% down: inside 10%
	var out strings.Builder
	if err := check(old, new, "current", "Minstr/s", 0.10, false, &out); err != nil {
		t.Fatalf("7.5%% regression failed the 10%% gate: %v\n%s", err, out.String())
	}
}

func TestCheckFailsPastTolerance(t *testing.T) {
	dir := t.TempDir()
	old, new := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeCheckArtifact(t, old, "cpu-a", 2.0)
	writeCheckArtifact(t, new, "cpu-a", 1.5) // 25% down
	var out strings.Builder
	err := check(old, new, "current", "Minstr/s", 0.10, false, &out)
	if err == nil {
		t.Fatalf("25%% regression passed the 10%% gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("error %q does not name the regression", err)
	}
}

func TestCheckSkipsAcrossCPUs(t *testing.T) {
	dir := t.TempDir()
	old, new := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeCheckArtifact(t, old, "cpu-a", 2.0)
	writeCheckArtifact(t, new, "cpu-b", 0.5) // would fail, but CPUs differ
	var out strings.Builder
	if err := check(old, new, "current", "Minstr/s", 0.10, false, &out); err != nil {
		t.Fatalf("cross-CPU comparison was not skipped: %v", err)
	}
	if !strings.Contains(out.String(), "SKIP") {
		t.Fatalf("no skip notice printed:\n%s", out.String())
	}
	// Forced, it fails.
	if err := check(old, new, "current", "Minstr/s", 0.10, true, &out); err == nil {
		t.Fatal("-check-cross-cpu did not enforce the gate")
	}
}

func TestCheckLowerIsBetterMetric(t *testing.T) {
	dir := t.TempDir()
	old, new := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeCheckArtifact(t, old, "cpu-a", 2.0) // ns/op 5e5
	writeCheckArtifact(t, new, "cpu-a", 1.5) // ns/op ~6.7e5: 33% up
	var out strings.Builder
	if err := check(old, new, "current", "ns/op", 0.10, false, &out); err == nil {
		t.Fatal("ns/op increase passed a lower-is-better gate")
	}
}
