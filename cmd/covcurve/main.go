// Command covcurve regenerates the paper's CoV-curve figures.
//
//	covcurve -figure 2                # baseline BBV at 2/8/32P, all apps
//	covcurve -figure 4                # BBV vs BBV+DDV at 8/32P, all apps
//	covcurve -apps lu -procs 8,32 -detector both -size small
//	covcurve -figure 4 -replicates 5  # mean ± 95% CI bands across seeds
//	covcurve -figure 4 -format csv    # csv / json / markdown encoders
//	covcurve -figure 4 -size full -interval 3000000   # paper scale
//	covcurve -figure 4 -shard 0/2 -shard-out s0.json  # one cluster worker
//	covcurve -figure 4 -merge s0.json s1.json         # byte-identical report
//
// Experiments are declared as Spec grids over the sharded engine and
// rendered by a Report encoder. The default text format prints one
// block per curve ("phases cov thBBV thDDS" rows, suitable for
// plotting; the paper's y axis is logarithmic), or per-configuration
// band tables (phases, mean, lo95, hi95, n) when -replicates exceeds 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"dsmphase"
	"dsmphase/internal/plot"
)

func main() {
	var (
		figure     = flag.Int("figure", 0, "paper figure to regenerate: 2 or 4 (0 = custom)")
		apps       = flag.String("apps", "", "comma-separated workloads, or a panel alias: paper, extended")
		procsArg   = flag.String("procs", "", "comma-separated node counts (default per figure)")
		sizeArg    = flag.String("size", "small", "input scale: test, small or full")
		interval   = flag.Uint64("interval", 0, "total sampling interval in instructions (split across nodes; 0 = 300k reduced-input default; paper: 3000000)")
		detector   = flag.String("detector", "", "bbv, ddv, dds, wss, both or all (custom mode)")
		seed       = flag.Uint64("seed", 1, "workload base seed")
		replicates = flag.Int("replicates", 1, "seeds per configuration (>1 emits 95% CI bands)")
		format     = flag.String("format", "text", "report encoder: text, csv, json or markdown")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "engine worker pool size")
		progress   = flag.Bool("progress", false, "report per-cell progress and ETA on stderr")
		compare    = flag.Bool("compare", false, "also print BBV vs BBV+DDV comparisons at 10/25 phases (text format)")
		asciiPlt   = flag.Bool("plot", false, "render ASCII charts (one panel per application, log y; text format, replicates=1)")
		shardArg   = flag.String("shard", "", `run only shard i of n ("i/n") and write a shard artifact instead of the report`)
		shardOut   = flag.String("shard-out", "-", `shard artifact path ("-" = stdout)`)
		mergeFlag  = flag.Bool("merge", false, "merge the shard artifacts given as arguments into the report")
	)
	flag.Parse()
	if *shardArg != "" && *mergeFlag {
		fatal(fmt.Errorf("-shard and -merge are mutually exclusive"))
	}

	size, err := dsmphase.ParseSize(*sizeArg)
	if err != nil {
		fatal(err)
	}
	procs, err := parseProcs(*procsArg)
	if err != nil {
		fatal(err)
	}
	opts := dsmphase.EngineOptions{Parallel: *parallel}
	if *progress {
		opts.Progress = dsmphase.ProgressPrinter(os.Stderr)
	}

	base := []dsmphase.SpecOption{
		dsmphase.WithApps(splitList(*apps)...),
		dsmphase.WithSize(size),
		dsmphase.WithInterval(*interval),
		dsmphase.WithSeed(*seed),
		dsmphase.WithReplicates(*replicates),
	}
	var spec *dsmphase.Spec
	var title string
	// strict mode (the figures) aborts on any cell error, matching the
	// legacy Figure2/Figure4 helpers; custom mode isolates failures.
	strict := false
	switch *figure {
	case 2:
		title = "Figure 2: baseline BBV CoV curves"
		strict = true
		if len(procs) == 0 {
			procs = []int{2, 8, 32}
		}
		spec = dsmphase.NewSpec(append(base,
			dsmphase.WithProcs(procs...),
			dsmphase.WithDetectors(dsmphase.DetectorBBV),
		)...)
	case 4:
		title = "Figure 4: BBV vs BBV+DDV CoV curves"
		strict = true
		if len(procs) == 0 {
			procs = []int{8, 32}
		}
		spec = dsmphase.NewSpec(append(base,
			dsmphase.WithProcs(procs...),
			dsmphase.WithDetectors(dsmphase.DetectorBBV, dsmphase.DetectorBBVDDV),
		)...)
	case 0:
		title = "Custom CoV curves"
		kinds, err := parseDetector(*detector)
		if err != nil {
			fatal(err)
		}
		if len(procs) == 0 {
			procs = []int{8}
		}
		spec = dsmphase.NewSpec(append(base,
			dsmphase.WithProcs(procs...),
			dsmphase.WithDetectors(kinds...),
		)...)
	default:
		fatal(fmt.Errorf("unknown figure %d (the paper has figures 2 and 4)", *figure))
	}

	enc, err := dsmphase.NewEncoder(*format, title)
	if err != nil {
		fatal(err)
	}
	if *shardArg != "" {
		// One cluster worker's share of the grid: write the versioned
		// shard artifact (docs/MERGE_FORMAT.md) instead of the report.
		shard, of, err := dsmphase.ParseShard(*shardArg)
		if err != nil {
			fatal(err)
		}
		grid, err := dsmphase.NewShardGrid("covcurve", spec, spec.RunShard(shard, of, opts), false, false)
		if err != nil {
			fatal(err)
		}
		art := &dsmphase.ShardArtifact{Format: dsmphase.ShardFormat, Shard: shard, Of: of,
			Grids: []dsmphase.ShardGrid{grid}}
		if *shardOut == "-" {
			err = dsmphase.WriteShardArtifact(os.Stdout, art)
		} else {
			err = dsmphase.WriteShardArtifactFile(*shardOut, art)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	var rep *dsmphase.Report
	if *mergeFlag {
		// Reassemble a complete shard set through the same aggregation
		// path Run uses; the report bytes match the unsharded run.
		if flag.NArg() == 0 {
			fatal(fmt.Errorf("-merge needs shard artifact files as arguments"))
		}
		arts, err := dsmphase.ReadShardArtifactFiles(flag.Args())
		if err != nil {
			fatal(err)
		}
		results, err := dsmphase.MergeShards(spec, "covcurve", arts)
		if err != nil {
			fatal(err)
		}
		rep = spec.Assemble(results)
	} else {
		rep = spec.Run(opts)
	}
	if strict {
		if err := rep.FirstError(); err != nil {
			fatal(err)
		}
	} else {
		for _, r := range rep.CellResults() {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "covcurve: skipping %s: %v\n", r.Cell.Label(), r.Err)
			}
		}
	}
	if err := enc.Encode(os.Stdout, rep); err != nil {
		fatal(err)
	}
	if *format != "text" {
		return // panels and comparisons are text-format companions
	}
	// rep.Replicates is the clamped count (the Spec treats n < 1 as 1),
	// so -replicates 0 still gets the single-seed companions.
	results := rep.Curves()
	if *asciiPlt && rep.Replicates == 1 {
		printPanels(results)
	}
	// The prose-style comparisons are per-seed; band runs carry their
	// uncertainty in the table itself.
	if (*compare || *figure == 4) && rep.Replicates == 1 {
		printComparisons(results)
	}
}

// printPanels renders one ASCII chart per application, with one series
// per (procs, detector) curve — the paper's panel layout.
func printPanels(results []dsmphase.CurveResult) {
	var apps []string
	seen := map[string]bool{}
	for _, c := range results {
		if !seen[c.App] {
			seen[c.App] = true
			apps = append(apps, c.App)
		}
	}
	for _, app := range apps {
		chart := plot.New(60, 14).LogY().
			Title(fmt.Sprintf("%s CoV curves", app)).
			Labels("# of phases", "identifier CoV of CPI")
		for _, c := range results {
			if c.App != app {
				continue
			}
			pts := make([]plot.Point, 0, len(c.Curve.Points))
			for _, p := range c.Curve.Points {
				pts = append(pts, plot.Point{X: p.Phases, Y: p.CoV})
			}
			chart.Add(fmt.Sprintf("%dP %s", c.Procs, c.Detector), pts)
		}
		fmt.Println(chart.Render())
	}
}

func parseDetector(s string) ([]dsmphase.DetectorKind, error) {
	switch s {
	case "", "both":
		return []dsmphase.DetectorKind{dsmphase.DetectorBBV, dsmphase.DetectorBBVDDV}, nil
	case "bbv":
		return []dsmphase.DetectorKind{dsmphase.DetectorBBV}, nil
	case "ddv":
		return []dsmphase.DetectorKind{dsmphase.DetectorBBVDDV}, nil
	case "dds":
		return []dsmphase.DetectorKind{dsmphase.DetectorDDS}, nil
	case "wss":
		return []dsmphase.DetectorKind{dsmphase.DetectorWSS}, nil
	case "all":
		return []dsmphase.DetectorKind{
			dsmphase.DetectorWSS, dsmphase.DetectorBBV,
			dsmphase.DetectorDDS, dsmphase.DetectorBBVDDV,
		}, nil
	default:
		return nil, fmt.Errorf("unknown detector %q (want bbv, ddv, dds, wss, both or all)", s)
	}
}

// printComparisons prints the prose-style comparisons of the paper
// ("at 25 phases, the DDV reduces CoV from X to Y") for every BBV /
// BBV+DDV pair sharing an (app, procs) configuration.
func printComparisons(results []dsmphase.CurveResult) {
	type key struct {
		app   string
		procs int
	}
	bbv := map[key]dsmphase.CurveResult{}
	ddv := map[key]dsmphase.CurveResult{}
	var order []key
	for _, c := range results {
		k := key{c.App, c.Procs}
		switch c.Detector {
		case dsmphase.DetectorBBV:
			bbv[k] = c
			order = append(order, k)
		case dsmphase.DetectorBBVDDV:
			ddv[k] = c
		}
	}
	fmt.Println("== BBV vs BBV+DDV comparisons ==")
	fmt.Printf("%-10s %-6s %-14s %-14s %-14s %-14s\n",
		"app", "procs", "CoV@10(BBV)", "CoV@10(DDV)", "CoV@25(BBV)", "CoV@25(DDV)")
	for _, k := range order {
		b, okB := bbv[k]
		d, okD := ddv[k]
		if !okB || !okD {
			continue
		}
		b10, d10 := dsmphase.CompareAtPhases(b, d, 10)
		b25, d25 := dsmphase.CompareAtPhases(b, d, 25)
		fmt.Printf("%-10s %-6d %-14.4f %-14.4f %-14.4f %-14.4f\n", k.app, k.procs, b10, d10, b25, d25)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseProcs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad processor count %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "covcurve:", err)
	os.Exit(1)
}
