// Command covcurve regenerates the paper's CoV-curve figures.
//
//	covcurve -figure 2                # baseline BBV at 2/8/32P, all apps
//	covcurve -figure 4                # BBV vs BBV+DDV at 8/32P, all apps
//	covcurve -apps lu -procs 8,32 -detector both -size small
//	covcurve -figure 4 -size full -interval 3000000   # paper scale
//
// Output is one block per curve: "phases cov thBBV thDDS" rows suitable
// for plotting (the paper's y axis is logarithmic).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"dsmphase"
	"dsmphase/internal/plot"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "paper figure to regenerate: 2 or 4 (0 = custom)")
		apps     = flag.String("apps", "", "comma-separated workloads (default: all four)")
		procsArg = flag.String("procs", "", "comma-separated node counts (default per figure)")
		sizeArg  = flag.String("size", "small", "input scale: test, small or full")
		interval = flag.Uint64("interval", 0, "total sampling interval in instructions (split across nodes; 0 = 300k reduced-input default; paper: 3000000)")
		detector = flag.String("detector", "", "bbv, ddv, dds or both (custom mode)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "engine worker pool size")
		progress = flag.Bool("progress", false, "report per-cell progress on stderr")
		compare  = flag.Bool("compare", false, "also print BBV vs BBV+DDV comparisons at 10/25 phases")
		asciiPlt = flag.Bool("plot", false, "render ASCII charts (one panel per application, log y)")
	)
	flag.Parse()

	size, err := dsmphase.ParseSize(*sizeArg)
	if err != nil {
		fatal(err)
	}
	fc := dsmphase.FigureConfig{
		Apps:     splitList(*apps),
		Size:     size,
		Interval: *interval,
		Seed:     *seed,
		Parallel: *parallel,
	}
	if *progress {
		fc.Progress = func(done, total int, r dsmphase.CellResult) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, r.Cell.Label())
		}
	}
	procs, err := parseProcs(*procsArg)
	if err != nil {
		fatal(err)
	}

	var results []dsmphase.CurveResult
	var title string
	switch {
	case *figure == 2:
		title = "Figure 2: baseline BBV CoV curves"
		results, err = dsmphase.Figure2(fc, procs)
	case *figure == 4:
		title = "Figure 4: BBV vs BBV+DDV CoV curves"
		results, err = dsmphase.Figure4(fc, procs)
	case *figure == 0:
		title = "Custom CoV curves"
		results, err = runCustom(fc, procs, *detector)
	default:
		fatal(fmt.Errorf("unknown figure %d (the paper has figures 2 and 4)", *figure))
	}
	if err != nil {
		fatal(err)
	}
	if err := dsmphase.WriteFigure(os.Stdout, title, results); err != nil {
		fatal(err)
	}
	if *asciiPlt {
		printPanels(results)
	}
	if *compare || *figure == 4 {
		printComparisons(results)
	}
}

// printPanels renders one ASCII chart per application, with one series
// per (procs, detector) curve — the paper's panel layout.
func printPanels(results []dsmphase.CurveResult) {
	var apps []string
	seen := map[string]bool{}
	for _, c := range results {
		if !seen[c.App] {
			seen[c.App] = true
			apps = append(apps, c.App)
		}
	}
	for _, app := range apps {
		chart := plot.New(60, 14).LogY().
			Title(fmt.Sprintf("%s CoV curves", app)).
			Labels("# of phases", "identifier CoV of CPI")
		for _, c := range results {
			if c.App != app {
				continue
			}
			pts := make([]plot.Point, 0, len(c.Curve.Points))
			for _, p := range c.Curve.Points {
				pts = append(pts, plot.Point{X: p.Phases, Y: p.CoV})
			}
			chart.Add(fmt.Sprintf("%dP %s", c.Procs, c.Detector), pts)
		}
		fmt.Println(chart.Render())
	}
}

// runCustom sweeps the requested detectors over each (app, procs) pair
// on the sharded engine; the record cache runs each pair's simulation
// once however many detectors sweep it. A failing cell is reported on
// stderr and skipped, so one diverging configuration does not abort the
// rest of the study.
func runCustom(fc dsmphase.FigureConfig, procs []int, detector string) ([]dsmphase.CurveResult, error) {
	kinds, err := parseDetector(detector)
	if err != nil {
		return nil, err
	}
	if len(procs) == 0 {
		procs = []int{8}
	}
	plan := dsmphase.FigurePlan(fc, procs, kinds)
	results := dsmphase.RunPlan(plan, dsmphase.EngineOptions{
		Parallel: fc.Parallel,
		Progress: fc.Progress,
	})
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "covcurve: skipping %s: %v\n", r.Cell.Label(), r.Err)
		}
	}
	return dsmphase.Curves(results), nil
}

func parseDetector(s string) ([]dsmphase.DetectorKind, error) {
	switch s {
	case "", "both":
		return []dsmphase.DetectorKind{dsmphase.DetectorBBV, dsmphase.DetectorBBVDDV}, nil
	case "bbv":
		return []dsmphase.DetectorKind{dsmphase.DetectorBBV}, nil
	case "ddv":
		return []dsmphase.DetectorKind{dsmphase.DetectorBBVDDV}, nil
	case "dds":
		return []dsmphase.DetectorKind{dsmphase.DetectorDDS}, nil
	case "wss":
		return []dsmphase.DetectorKind{dsmphase.DetectorWSS}, nil
	case "all":
		return []dsmphase.DetectorKind{
			dsmphase.DetectorWSS, dsmphase.DetectorBBV,
			dsmphase.DetectorDDS, dsmphase.DetectorBBVDDV,
		}, nil
	default:
		return nil, fmt.Errorf("unknown detector %q (want bbv, ddv, dds, wss, both or all)", s)
	}
}

// printComparisons prints the prose-style comparisons of the paper
// ("at 25 phases, the DDV reduces CoV from X to Y") for every BBV /
// BBV+DDV pair sharing an (app, procs) configuration.
func printComparisons(results []dsmphase.CurveResult) {
	type key struct {
		app   string
		procs int
	}
	bbv := map[key]dsmphase.CurveResult{}
	ddv := map[key]dsmphase.CurveResult{}
	var order []key
	for _, c := range results {
		k := key{c.App, c.Procs}
		switch c.Detector {
		case dsmphase.DetectorBBV:
			bbv[k] = c
			order = append(order, k)
		case dsmphase.DetectorBBVDDV:
			ddv[k] = c
		}
	}
	fmt.Println("== BBV vs BBV+DDV comparisons ==")
	fmt.Printf("%-10s %-6s %-14s %-14s %-14s %-14s\n",
		"app", "procs", "CoV@10(BBV)", "CoV@10(DDV)", "CoV@25(BBV)", "CoV@25(DDV)")
	for _, k := range order {
		b, okB := bbv[k]
		d, okD := ddv[k]
		if !okB || !okD {
			continue
		}
		b10, d10 := dsmphase.CompareAtPhases(b, d, 10)
		b25, d25 := dsmphase.CompareAtPhases(b, d, 25)
		fmt.Printf("%-10s %-6d %-14.4f %-14.4f %-14.4f %-14.4f\n", k.app, k.procs, b10, d10, b25, d25)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseProcs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad processor count %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "covcurve:", err)
	os.Exit(1)
}
