// Command dsmphased is the experiment coordinator service: a
// long-running HTTP/JSON server that takes a grid submission from Spec
// parameters to a merged, cache-backed report.
//
// Jobs are POSTed as a named grid plus Spec parameters; the
// coordinator fans the grid's shards out over a worker pool (each
// worker execs cmd/experiments -shard with the -shard-dir handshake),
// resumes crashed attempts from their per-cell JSONL streams, retries
// failed attempts with backoff, quarantines failing workers,
// re-dispatches stragglers, merges the completed shard set through the
// same MergeShards/Assemble path the CLI uses — so a served report is
// byte-identical to a direct run — and answers repeat submissions from
// a fingerprint-keyed disk cache. See docs/SERVICE.md for the API and
// the failure model.
//
//	dsmphased -listen 127.0.0.1:8356 -data /var/lib/dsmphased
//	curl -d '{"grid":"figure2","size":"test"}' http://127.0.0.1:8356/v1/jobs
//	curl 'http://127.0.0.1:8356/v1/jobs/job-1/report?format=markdown'
//
// On SIGTERM or SIGINT the server drains: new submissions are refused
// (503), in-flight work is cancelled — shard streams stay on disk, so
// a restarted coordinator resumes them — and the HTTP listener shuts
// down gracefully. A second signal exits immediately.
//
// -chaos N runs the seeded fault-injection campaign instead of
// serving: N schedules of deterministic worker faults, each held to
// the byte-identity and exact-injury oracles (see service.RunChaos),
// exiting non-zero on any violation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dsmphase/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dsmphased:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dsmphased", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		listen     = fs.String("listen", "127.0.0.1:8356", "HTTP listen address (port 0 picks a free port)")
		addrFile   = fs.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		dataDir    = fs.String("data", "dsmphased-data", "state directory: result cache, job work dirs, ETA priors")
		expBin     = fs.String("experiments", "", "path of the experiments worker binary (default: next to this binary, else $PATH)")
		workers    = fs.String("workers", "local,local", `comma-separated worker pool: "local" or "ssh://[user@]host[/bin]"`)
		shards     = fs.Int("shards", 0, "default shard fan-out per job (0 = pool size)")
		parallel   = fs.Int("parallel", 0, "-parallel passed to each worker process (0 = worker default)")
		straggler  = fs.Duration("straggler-after", 10*time.Minute, "re-dispatch a shard attempt running longer than this to an idle worker")
		attempts   = fs.Int("max-attempts", 0, "dispatch attempts per shard, stragglers included (0 = 3)")
		retryBase  = fs.Duration("retry-base", 0, "backoff before a shard's first retry, doubling with jitter (0 = 250ms)")
		attemptTO  = fs.Duration("attempt-timeout", 0, "cancel and fail a dispatch attempt running longer than this (0 = no timeout)")
		quarantine = fs.Int("quarantine-after", 0, "bench a worker after this many consecutive failures (0 = 5)")
		cacheB     = fs.Int64("cache-bytes", service.DefaultCacheBytes, "result cache size bound in bytes")
		chaosN     = fs.Int("chaos", 0, "run a fault-injection chaos campaign of this many schedules instead of serving")
		chaosSeed  = fs.Uint64("chaos-seed", 1, "campaign seed for -chaos; same seed, same fault schedules")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	bin, err := findExperiments(*expBin)
	if err != nil {
		return err
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dsmphased: "+format+"\n", args...)
	}
	if *chaosN > 0 {
		return runChaos(*chaosN, *chaosSeed, *dataDir, bin, logf)
	}
	coord, err := service.New(service.Config{
		DataDir:         *dataDir,
		ExperimentsBin:  bin,
		Workers:         splitList(*workers),
		DefaultShards:   *shards,
		CacheBytes:      *cacheB,
		StragglerAfter:  *straggler,
		MaxAttempts:     *attempts,
		RetryBase:       *retryBase,
		AttemptTimeout:  *attemptTO,
		QuarantineAfter: *quarantine,
		WorkerParallel:  *parallel,
		Logf:            logf,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "dsmphased: listening on http://%s (worker binary %s)\n", ln.Addr(), bin)

	srv := &http.Server{Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		// Graceful shutdown: refuse new jobs, cancel in-flight workers
		// (their shard streams stay on disk for a restart to resume),
		// then drain the HTTP side. A second signal aborts immediately.
		fmt.Fprintf(os.Stderr, "dsmphased: %v, draining (again to force exit)\n", s)
		go func() {
			<-sig
			fmt.Fprintln(os.Stderr, "dsmphased: second signal, exiting now")
			os.Exit(1)
		}()
		coord.BeginDrain()
		coord.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	case err := <-errCh:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	}
}

// runChaos runs the seeded fault-injection campaign and reports its
// verdict: the outcome table on stdout as JSON, violations (if any) on
// stderr and a non-nil error.
func runChaos(schedules int, seed uint64, dataDir, bin string, logf func(string, ...any)) error {
	scratch := filepath.Join(dataDir, "chaos")
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	res, err := service.RunChaos(service.ChaosConfig{
		Schedules:      schedules,
		Seed:           seed,
		DataDir:        scratch,
		ExperimentsBin: bin,
		Logf:           logf,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	if n := len(res.Violations); n > 0 {
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "dsmphased: chaos violation:", v)
		}
		return fmt.Errorf("chaos campaign: %d oracle violations", n)
	}
	fmt.Fprintf(os.Stderr, "dsmphased: chaos campaign passed (%d schedules, %d completed, %d degraded, seed %d)\n",
		res.Schedules, res.Completed, res.Degraded, seed)
	return nil
}

// findExperiments locates the worker binary: the -experiments flag, a
// sibling of this binary, or $PATH.
func findExperiments(flagVal string) (string, error) {
	if flagVal != "" {
		return flagVal, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "experiments")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if p, err := exec.LookPath("experiments"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("experiments worker binary not found (sibling or $PATH); pass -experiments")
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
