// Command dsmphased is the experiment coordinator service: a
// long-running HTTP/JSON server that takes a grid submission from Spec
// parameters to a merged, cache-backed report.
//
// Jobs are POSTed as a named grid plus Spec parameters; the
// coordinator fans the grid's shards out over a worker pool (each
// worker execs cmd/experiments -shard with the -shard-dir handshake),
// resumes crashed attempts from their per-cell JSONL streams,
// re-dispatches stragglers, merges the completed shard set through the
// same MergeShards/Assemble path the CLI uses — so a served report is
// byte-identical to a direct run — and answers repeat submissions from
// a fingerprint-keyed disk cache. See docs/SERVICE.md for the API.
//
//	dsmphased -listen 127.0.0.1:8356 -data /var/lib/dsmphased
//	curl -d '{"grid":"figure2","size":"test"}' http://127.0.0.1:8356/v1/jobs
//	curl 'http://127.0.0.1:8356/v1/jobs/job-1/report?format=markdown'
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dsmphase/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dsmphased:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dsmphased", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		listen    = fs.String("listen", "127.0.0.1:8356", "HTTP listen address (port 0 picks a free port)")
		addrFile  = fs.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		dataDir   = fs.String("data", "dsmphased-data", "state directory: result cache, job work dirs, ETA priors")
		expBin    = fs.String("experiments", "", "path of the experiments worker binary (default: next to this binary, else $PATH)")
		workers   = fs.String("workers", "local,local", `comma-separated worker pool: "local" or "ssh://[user@]host[/bin]"`)
		shards    = fs.Int("shards", 0, "default shard fan-out per job (0 = pool size)")
		parallel  = fs.Int("parallel", 0, "-parallel passed to each worker process (0 = worker default)")
		straggler = fs.Duration("straggler-after", 10*time.Minute, "re-dispatch a shard attempt running longer than this to an idle worker")
		cacheB    = fs.Int64("cache-bytes", service.DefaultCacheBytes, "result cache size bound in bytes")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	bin, err := findExperiments(*expBin)
	if err != nil {
		return err
	}
	coord, err := service.New(service.Config{
		DataDir:        *dataDir,
		ExperimentsBin: bin,
		Workers:        splitList(*workers),
		DefaultShards:  *shards,
		CacheBytes:     *cacheB,
		StragglerAfter: *straggler,
		WorkerParallel: *parallel,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dsmphased: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "dsmphased: listening on http://%s (worker binary %s)\n", ln.Addr(), bin)

	srv := &http.Server{Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "dsmphased: %v, shutting down\n", s)
		return srv.Close()
	case err := <-errCh:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	}
}

// findExperiments locates the worker binary: the -experiments flag, a
// sibling of this binary, or $PATH.
func findExperiments(flagVal string) (string, error) {
	if flagVal != "" {
		return flagVal, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "experiments")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if p, err := exec.LookPath("experiments"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("experiments worker binary not found (sibling or $PATH); pass -experiments")
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
