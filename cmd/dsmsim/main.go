// Command dsmsim runs one workload on the simulated DSM multiprocessor
// and reports machine-level statistics.
//
//	dsmsim -config                 # print Table I (simulated architecture)
//	dsmsim -list                   # print Table II (applications and inputs)
//	dsmsim -app lu -procs 8 -size small
//	dsmsim -app pagethrash -protocol ivy  # page-granular coherence backend
//	dsmsim -workload-file my.wdl -app my-workload   # DSL-defined workload
//	dsmsim -app lu -access-trace-out lu.jsonl       # capture for re-ingestion
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"dsmphase"
	"dsmphase/internal/isa"
	"dsmphase/internal/network"
	"dsmphase/internal/prof"
	"dsmphase/internal/trace"
)

func main() {
	var (
		app      = flag.String("app", "lu", "workload: lu, fmm, art or equake")
		procsN   = flag.Int("procs", 8, "node count (power of two, ≤64)")
		sizeArg  = flag.String("size", "small", "input scale: test, small or full")
		interval = flag.Uint64("interval", 0, "per-processor sampling interval (0 = paper's 3M/procs)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		protocol = flag.String("protocol", "directory", "coherence backend: directory or ivy")
		config   = flag.Bool("config", false, "print the simulated architecture (Table I) and exit")
		list     = flag.Bool("list", false, "print the applications (Table II) and exit")
		traceOut = flag.String("trace-out", "", "write interval signatures as JSONL to this file")
		csvOut   = flag.String("csv-out", "", "write an interval summary CSV to this file")
		topology = flag.String("topology", "hypercube", "interconnect: hypercube (Table I) or mesh (ablation)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		accesses = flag.String("access-trace-out", "", "write the run's per-processor address trace as JSONL to this file (re-ingestable via -workload-file)")
	)
	var workloadFiles listFlag
	flag.Var(&workloadFiles, "workload-file", "register a workload DSL spec file (repeatable); its name becomes valid in -app")
	flag.Parse()
	for _, path := range workloadFiles {
		sw, err := dsmphase.LoadWorkloadSpecFile(path)
		if err != nil {
			fatal(err)
		}
		if err := sw.Register(); err != nil {
			fatal(err)
		}
	}

	if *config {
		printTableI(*procsN)
		return
	}
	if *list {
		printTableII()
		return
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	// fatal exits via os.Exit, which skips defers; route it through
	// stopProfile so a failing run still flushes usable profiles.
	stopProfile = stopProf
	defer stopProf()

	size, err := dsmphase.ParseSize(*sizeArg)
	if err != nil {
		fatal(err)
	}
	proto, err := dsmphase.ParseProtocolKind(*protocol)
	if err != nil {
		fatal(err)
	}
	rc := dsmphase.RunConfig{
		Workload:             *app,
		Size:                 size,
		Procs:                *procsN,
		IntervalInstructions: *interval,
		Seed:                 *seed,
		Protocol:             proto,
	}
	if *topology != "hypercube" {
		kind := network.Kind(*topology)
		rc.Tweak = func(c *dsmphase.MachineConfig) { c.Topology = kind }
	}
	m, sum, err := dsmphase.Simulate(rc)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("run: %s, %d processors, %s input, seed %d\n\n", *app, *procsN, size, *seed)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "committed instructions\t%d\n", sum.Instructions)
	fmt.Fprintf(w, "synchronization instrs\t%d\n", sum.SyncInstrs)
	fmt.Fprintf(w, "cycles\t%.0f\n", sum.Cycles)
	fmt.Fprintf(w, "aggregate IPC\t%.3f\n", sum.IPC)
	fmt.Fprintf(w, "barriers\t%d\n", sum.Barriers)
	fmt.Fprintf(w, "sampling intervals\t%d\n", sum.Intervals)
	fmt.Fprintf(w, "branch prediction accuracy\t%.2f%%\n", 100*m.GshareAccuracy())

	ps := m.Protocol().Stats()
	fmt.Fprintf(w, "loads / stores\t%d / %d\n", ps.Loads, ps.Stores)
	fmt.Fprintf(w, "L1 hits / L2 hits\t%d / %d\n", ps.L1Hits, ps.L2Hits)
	fmt.Fprintf(w, "directory trips (remote)\t%d (%d)\n", ps.DirectoryTrips, ps.RemoteTrips)
	fmt.Fprintf(w, "invalidations / forwards\t%d / %d\n", ps.Invalidations, ps.Forwards)
	fmt.Fprintf(w, "writebacks\t%d\n", ps.Writebacks)
	if proto == dsmphase.ProtocolIVY {
		fmt.Fprintf(w, "page faults / transfers\t%d / %d\n", ps.PageFaults, ps.PageTransfers)
		fmt.Fprintf(w, "page invalidations\t%d\n", ps.PageInvalidations)
	}

	ns := m.Network().Stats()
	fmt.Fprintf(w, "network messages / bytes\t%d / %d\n", ns.Messages, ns.Bytes)
	if ns.Messages > 0 {
		fmt.Fprintf(w, "avg message latency\t%.1f cycles\n", float64(ns.TotalLatency)/float64(ns.Messages))
		fmt.Fprintf(w, "avg hops\t%.2f\n", float64(ns.TotalHops)/float64(ns.Messages))
	}
	fmt.Fprintf(w, "link queue cycles\t%d\n", ns.QueueCycles)
	if err := w.Flush(); err != nil {
		fatal(err)
	}

	// Per-interval locality summary.
	var loc, rem uint64
	for _, r := range m.Records() {
		loc += r.LocalAccesses
		rem += r.RemoteAccesses
	}
	if loc+rem > 0 {
		fmt.Printf("\nmemory locality: %.1f%% local, %.1f%% remote\n",
			100*float64(loc)/float64(loc+rem), 100*float64(rem)/float64(loc+rem))
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, m, trace.WriteJSONL); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote JSONL trace to %s\n", *traceOut)
	}
	if *csvOut != "" {
		if err := writeTrace(*csvOut, m, trace.WriteCSV); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote CSV summary to %s\n", *csvOut)
	}
	if *accesses != "" {
		n, err := writeAccessTrace(*accesses, *app, *procsN, size, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d address-trace records to %s\n", n, *accesses)
	}
}

// writeAccessTrace captures the run's full instruction streams as
// address-trace records. Workload streams are pure functions of
// (procs, size, seed), so regenerating the threads reproduces exactly
// what the simulation consumed.
func writeAccessTrace(path, app string, procs int, size dsmphase.Size, seed uint64) (int, error) {
	wl, err := dsmphase.WorkloadByName(app)
	if err != nil {
		return 0, err
	}
	var recs []dsmphase.TraceAccess
	e := isa.NewEmitter(4096)
	for tid, th := range wl.Threads(procs, size, seed) {
		for th.NextBatch(e) {
			for _, in := range e.Take() {
				recs = append(recs, trace.AccessFromInst(tid, in))
			}
			e.Reset()
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if err := dsmphase.WriteAccessTrace(f, recs); err != nil {
		f.Close()
		return 0, err
	}
	return len(recs), f.Close()
}

// listFlag collects a repeatable string flag.
type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

// writeTrace dumps the machine's interval records with the given
// serializer.
func writeTrace(path string, m *dsmphase.Machine,
	write func(w io.Writer, recs []dsmphase.IntervalSignature) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, m.Records()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printTableI(procs int) {
	fmt.Println("Table I: summary of simulated architecture")
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	for _, row := range dsmphase.DefaultMachineConfig(procs).TableI() {
		fmt.Fprintf(w, "%s\t%s\n", row[0], row[1])
	}
	w.Flush()
}

func printTableII() {
	fmt.Println("Table II: applications used in the experiments")
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Application\tInput Set (full)\tSynthetic model\n")
	for _, wl := range dsmphase.Workloads() {
		fmt.Fprintf(w, "%s\t%s\t%s\n", wl.Name(), wl.InputSet(dsmphase.SizeFull), wl.Description())
	}
	w.Flush()
}

// stopProfile flushes any active profiles before a fatal exit; main
// swaps in the real stopper once profiling starts. The success path
// stops profiling via defer instead, so this runs at most once.
var stopProfile = func() {}

func fatal(err error) {
	stopProfile()
	fmt.Fprintln(os.Stderr, "dsmsim:", err)
	os.Exit(1)
}
