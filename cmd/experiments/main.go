// Command experiments runs the paper's full evaluation — Figure 2,
// Figure 4 and the §III-B overhead estimate — and emits a markdown
// scorecard including pass/fail checks of the paper's qualitative
// claims.
//
// The evaluation is declared as Spec grids on the sharded experiment
// engine: -parallel N bounds the worker pool (default: all CPUs),
// -replicates N runs every configuration under N derived seeds and
// reports mean ± 95% CI columns, and -ablation appends the named
// DDS-design ablation grid as a markdown scorecard. The report is
// byte-identical for every worker count. A cell that fails (e.g. a
// diverging workload) is reported and skipped; its siblings still run.
//
// The run also shards across machines: -shard i/n executes only the
// i-th of n deterministic grid partitions and writes a versioned JSON
// shard artifact (docs/MERGE_FORMAT.md) instead of the report; -merge
// reassembles a complete artifact set into the byte-identical report
// the unsharded run would have printed. -preset paper selects the
// paper-scale flags, and -eta-from seeds the -progress ETA from a
// previous run's persisted per-cell timings.
//
// The binary is also the coordinator service's worker and client:
// -shard-dir is the dsmphased worker handshake (the shard artifact and
// its resumable .cells.jsonl durability stream land in the given
// directory under canonical names), and -submit posts the selected
// grids to a running dsmphased coordinator, waits, and renders the
// identical report from the served artifacts. -grids overrides the
// flag-derived grid set by name (see docs/SERVICE.md).
//
//	experiments -size small > report.md
//	experiments -size small -parallel 8 -progress > report.md
//	experiments -size small -replicates 5 -ablation > report.md
//	experiments -preset paper -shard 0/4 -shard-out shard0.json   # per worker
//	experiments -preset paper -merge shard*.json > report.md      # reassemble
//	experiments -grids figure2 -submit http://127.0.0.1:8356 > report.md
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dsmphase"
	"dsmphase/internal/prof"
	"dsmphase/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// gridSet declares the report's grids in render order, compiled from
// the shared registry (harness.BuildGrid) so a shard artifact's
// fingerprints line up with the merge side's — and with a dsmphased
// coordinator's. An -grids override selects registry grids by name;
// otherwise the classic flag-derived set (figure2, figure4, plus the
// -ablation and -tuning opt-ins) applies.
func gridSet(gp dsmphase.GridParams, ablation, tuning bool, override string) ([]dsmphase.NamedGrid, error) {
	names := []string{"figure2", "figure4"}
	if ablation {
		names = append(names, "ablation")
	}
	if tuning {
		names = append(names, "tuning")
	}
	if override != "" {
		names = splitList(override)
	}
	var grids []dsmphase.NamedGrid
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		g, err := dsmphase.BuildGrid(n, gp)
		if err != nil {
			return nil, err
		}
		grids = append(grids, g)
	}
	if len(grids) == 0 {
		return nil, fmt.Errorf("-grids selected no grids")
	}
	return grids, nil
}

// run executes the whole report. The markdown lands on stdout; timing
// and progress land on stderr so stdout stays byte-identical across
// worker counts, machines, and shard/merge splits.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sizeArg    = fs.String("size", "small", "input scale: test, small or full")
		apps       = fs.String("apps", "", "comma-separated workloads, or a panel alias: paper, extended, adversarial")
		protocols  = fs.String("protocol", "", "comma-separated coherence backends to sweep: directory, ivy (default directory)")
		interval   = fs.Uint64("interval", 0, "total sampling interval (0 = 300k reduced default)")
		seed       = fs.Uint64("seed", 1, "workload base seed")
		replicates = fs.Int("replicates", 1, "seeds per configuration (>1 adds 95% CI columns)")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "engine worker pool size")
		progress   = fs.Bool("progress", false, "report per-cell progress and ETA on stderr")
		ablation   = fs.Bool("ablation", false, "append the DDS-design ablation scorecard")
		tuningFlag = fs.Bool("tuning", false, "append the adaptive-tuning win-rate scorecard (detector × predictor × controller)")
		tuningFmt  = fs.String("tuning-format", "markdown", "tuning scorecard format: text, csv, json or markdown")
		preset     = fs.String("preset", "", `flag preset: "paper" (size=full, interval=3000000, replicates=5); explicit flags override`)
		gridsFlag  = fs.String("grids", "", "comma-separated named grids overriding the flag-derived set (figure2, figure4, ablation, tuning)")
		shardArg   = fs.String("shard", "", `run only shard i of n ("i/n") and write a shard artifact instead of the report`)
		shardOut   = fs.String("shard-out", "-", `shard artifact path ("-" = stdout)`)
		shardDir   = fs.String("shard-dir", "", "write the shard artifact and its .cells.jsonl stream under canonical names in this directory (the dsmphased worker handshake)")
		shardTrace = fs.Bool("shard-trace", false, "embed interval records (internal/trace JSONL) in the shard artifact")
		mergeFlag  = fs.Bool("merge", false, "merge the shard artifacts given as arguments into the report")
		submitURL  = fs.String("submit", "", "submit the selected grids to a dsmphased coordinator at this URL and render the served report")
		allowPart  = fs.Bool("allow-partial", false, "with -submit: accept a degraded report (failed cells carry errors) instead of failing the job")
		etaFrom    = fs.String("eta-from", "", "seed the -progress ETA from a prior run's shard artifact timings")
		abortOnce  = fs.String("shard-abort-once", "", "fault injection: exit(3) after one cell unless the given marker file exists ({shard} expands to the shard index); creates the marker, so a retry runs to completion")
		cpuProf    = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf    = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	var workloadFiles, workloadTraces listFlag
	fs.Var(&workloadFiles, "workload-file", "register a workload DSL spec file (repeatable); its name becomes valid in -apps")
	fs.Var(&workloadTraces, "workload-trace", `register an address-trace workload as "name=trace.jsonl" (repeatable)`)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil // -h printed the usage; not a failure
		}
		return err
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProf()
	if err := applyPreset(fs, *preset, func() {
		*sizeArg, *interval, *replicates = "full", 3_000_000, 5
	}); err != nil {
		return err
	}
	if *shardArg != "" && *mergeFlag {
		return fmt.Errorf("-shard and -merge are mutually exclusive")
	}
	if *submitURL != "" && (*shardArg != "" || *mergeFlag) {
		return fmt.Errorf("-submit is mutually exclusive with -shard and -merge")
	}

	size, err := dsmphase.ParseSize(*sizeArg)
	if err != nil {
		return err
	}
	// Dynamic workloads register before grid compilation so -apps can
	// name them; their canonical sources travel with -submit requests.
	workloadSources, err := loadWorkloads(workloadFiles, workloadTraces)
	if err != nil {
		return err
	}
	kinds, err := parseProtocols(*protocols)
	if err != nil {
		return err
	}
	grids, err := gridSet(dsmphase.GridParams{
		Size:       size,
		Apps:       splitList(*apps),
		Protocols:  kinds,
		Interval:   *interval,
		Seed:       *seed,
		Replicates: *replicates,
	}, *ablation, *tuningFlag, *gridsFlag)
	if err != nil {
		return err
	}
	// Validate the tuning format before any simulation runs: a typo must
	// fail in milliseconds, not after the figure grids finished.
	var tuningEnc dsmphase.TuningEncoder
	for _, g := range grids {
		if g.Tuning {
			tuningEnc, err = dsmphase.NewTuningEncoder(*tuningFmt,
				"Adaptive tuning — detector × predictor × controller")
			if err != nil {
				return err
			}
		}
	}

	// The ETA prior: a previous run's persisted per-cell timings.
	var etaPer time.Duration
	var etaCells int
	if *etaFrom != "" {
		prior, err := dsmphase.ReadShardArtifactFile(*etaFrom)
		if err != nil {
			return fmt.Errorf("-eta-from: %w", err)
		}
		etaPer, etaCells = prior.MeanCellWall()
	}
	// Each Spec.Run gets a fresh printer so the ETA never mixes plans.
	makeOpts := func() dsmphase.EngineOptions {
		opts := dsmphase.EngineOptions{Parallel: *parallel}
		if *progress {
			opts.Progress = dsmphase.SeededProgressPrinter(stderr, etaPer, etaCells)
		}
		return opts
	}
	start := time.Now()

	if *shardArg != "" {
		if err := runShard(grids, *shardArg, *shardOut, *shardDir, *shardTrace, *abortOnce, stdout, stderr, makeOpts); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "total runtime: %v (parallel=%d)\n",
			time.Since(start).Round(time.Millisecond), *parallel)
		return nil
	}

	// Produce each grid's report: simulated here, reassembled from shard
	// artifacts, or served by a dsmphased coordinator. All paths flow
	// through the same aggregation, so the rendered bytes agree.
	reports := map[string]*dsmphase.Report{}
	var tuningRep *dsmphase.TuningReport
	switch {
	case *mergeFlag:
		if reports, tuningRep, err = mergeGrids(grids, fs.Args(), stderr); err != nil {
			return err
		}
	case *submitURL != "":
		req := service.JobRequest{
			Size:         *sizeArg,
			Apps:         splitList(*apps),
			Protocols:    splitList(*protocols),
			Interval:     *interval,
			Seed:         *seed,
			Replicates:   *replicates,
			Workloads:    workloadSources,
			AllowPartial: *allowPart,
		}
		if reports, tuningRep, err = runSubmit(*submitURL, grids, req, stderr); err != nil {
			return err
		}
	default:
		for _, g := range grids {
			if g.Tuning {
				if tuningRep, err = g.Spec.RunTuning(makeOpts()); err != nil {
					return err
				}
			} else {
				reports[g.Name] = g.Spec.Run(makeOpts())
			}
		}
	}

	fmt.Fprintf(stdout, "# Experiment report (size=%s, seed=%d)\n\n", size, *seed)
	fig2, fig4 := reports["figure2"], reports["figure4"]
	if fig2 != nil {
		reportFigure2(stdout, fig2)
	}
	if fig4 != nil {
		reportFigure4(stdout, fig4)
	}
	reportOverhead(stdout)
	if rep := reports["ablation"]; rep != nil {
		if err := reportAblation(stdout, rep); err != nil {
			return err
		}
	}
	if tuningRep != nil {
		if err := tuningEnc.Encode(stdout, tuningRep); err != nil {
			return err
		}
	}

	fmt.Fprintf(stderr, "total runtime: %v (parallel=%d)\n",
		time.Since(start).Round(time.Millisecond), *parallel)

	// Per-cell isolation keeps a partial report useful, but a run where
	// every cell failed produced no evaluation at all — exit non-zero so
	// scripted consumers notice.
	if fig2 != nil && fig4 != nil && len(fig2.Curves()) == 0 && len(fig4.Curves()) == 0 {
		if err := fig2.FirstError(); err != nil {
			return fmt.Errorf("every cell failed; first error: %w", err)
		}
		if err := fig4.FirstError(); err != nil {
			return fmt.Errorf("every cell failed; first error: %w", err)
		}
	}
	return nil
}

// applyPreset rewrites flag defaults from a named preset, keeping any
// value the user set explicitly.
func applyPreset(fs *flag.FlagSet, name string, paper func()) error {
	if name == "" {
		return nil
	}
	if name != "paper" {
		return fmt.Errorf("unknown preset %q (want paper)", name)
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	saved := map[string]string{}
	for _, n := range []string{"size", "interval", "replicates"} {
		if set[n] {
			saved[n] = fs.Lookup(n).Value.String()
		}
	}
	paper()
	for n, v := range saved {
		if err := fs.Set(n, v); err != nil {
			return err
		}
	}
	return nil
}

// runShard executes every grid's assigned shard and writes one
// multi-grid artifact to out ("-" = stdout; no report is rendered in
// shard mode). File outputs also stream every completed cell to a
// `.cells.jsonl` sibling, and a re-run of the same shard resumes from
// that stream: already-emitted cells are skipped and their serialized
// results reused verbatim, so the resumed artifact matches an
// uninterrupted run. -shard-dir derives the canonical output path
// inside a work directory (the dsmphased worker handshake).
func runShard(grids []dsmphase.NamedGrid, shardArg, out, dir string, withTrace bool, abortOnce string, stdout, stderr io.Writer, makeOpts func() dsmphase.EngineOptions) error {
	shard, of, err := dsmphase.ParseShard(shardArg)
	if err != nil {
		return err
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		out = filepath.Join(dir, fmt.Sprintf("shard_%d_of_%d.json", shard, of))
	}
	var cs *dsmphase.CellStream
	var prior map[string]*dsmphase.StreamedGrid
	if out != "-" {
		streamPath := dsmphase.CellStreamPath(out)
		if prior, err = dsmphase.ReadCellStream(streamPath); err != nil {
			return err
		}
		// Resume safety: every recovered section must match its grid's
		// current plan exactly (fingerprint, shard coordinates, cell
		// count). A stream from different flags is stale — drop it whole.
		valid := true
		for name, sg := range prior {
			var g *dsmphase.NamedGrid
			for i := range grids {
				if grids[i].Name == name {
					g = &grids[i]
				}
			}
			if g == nil || !sg.Matches(name, g.Spec.Plan().Fingerprint(), shard, of, g.Spec.Plan().Len()) {
				valid = false
				break
			}
		}
		if !valid {
			fmt.Fprintf(stderr, "experiments: cell stream %s does not match this plan; restarting the shard\n", streamPath)
			if err := os.Remove(streamPath); err != nil {
				return err
			}
			prior = nil
		}
		if cs, err = dsmphase.OpenCellStream(streamPath); err != nil {
			return err
		}
	}
	abort := newAborter(abortOnce, shard, stderr)
	art := &dsmphase.ShardArtifact{Format: dsmphase.ShardFormat, Shard: shard, Of: of}
	resumed := 0
	for _, g := range grids {
		opts := makeOpts()
		if g.Tuning {
			// The tuning grid needs the online adaptive-loop hook so each
			// cell's artifact entry carries the scorecard payload.
			hook, err := g.Spec.TuningHook()
			if err != nil {
				return err
			}
			opts.Hook = hook
		}
		if withTrace {
			opts.Hook = dsmphase.TraceHook(opts.Hook)
		}
		var results []dsmphase.CellResult
		if cs != nil {
			var pcells []dsmphase.ShardCell
			if sg := prior[g.Name]; sg != nil {
				pcells = sg.Cells
			}
			inner := opts.Progress
			opts.Progress = func(done, total int, r dsmphase.CellResult) {
				if inner != nil {
					inner(done, total, r)
				}
				abort.cellDone() // after the cell's stream line is durable
			}
			var n int
			if results, n, err = g.Spec.RunShardStreamed(g.Name, shard, of, opts, cs, pcells); err != nil {
				return err
			}
			resumed += n
		} else {
			results = g.Spec.RunShard(shard, of, opts)
		}
		sg, err := dsmphase.NewShardGrid(g.Name, g.Spec, results, g.Tuning, withTrace)
		if err != nil {
			return err
		}
		art.Grids = append(art.Grids, sg)
	}
	if cs != nil {
		if err := cs.Close(); err != nil {
			return err
		}
	}
	if resumed > 0 {
		fmt.Fprintf(stderr, "experiments: resumed %d cells from the shard's cell stream\n", resumed)
	}
	if out == "-" {
		return dsmphase.WriteShardArtifact(stdout, art)
	}
	// Write-then-rename so a killed run never leaves a truncated
	// artifact where a reader (the dsmphased retry validator) expects a
	// complete one.
	tmp := out + ".tmp"
	if err := dsmphase.WriteShardArtifactFile(tmp, art); err != nil {
		return err
	}
	return os.Rename(tmp, out)
}

// runSubmit is the service-client mode: one job per selected grid is
// posted to a dsmphased coordinator, and the served artifacts are
// reassembled through the same MergeShards/Assemble aggregation the
// local paths use — so the rendered report is byte-identical to a
// direct run of the same flags.
func runSubmit(url string, grids []dsmphase.NamedGrid, req service.JobRequest, stderr io.Writer) (map[string]*dsmphase.Report, *dsmphase.TuningReport, error) {
	client := &service.Client{BaseURL: url}
	reports := map[string]*dsmphase.Report{}
	var tuningRep *dsmphase.TuningReport
	for _, g := range grids {
		r := req
		r.Grid = g.Name
		st, err := client.Submit(r)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(stderr, "experiments: submitted %s as %s (%s)\n", g.Name, st.ID, st.State)
		if st, err = client.Wait(st.ID, 0); err != nil {
			return nil, nil, err
		}
		if st.Cached {
			fmt.Fprintf(stderr, "experiments: %s served from the coordinator's result cache\n", st.ID)
		}
		if st.State == service.StateDegraded {
			fmt.Fprintf(stderr, "experiments: WARNING: %s degraded — %d of %d cells carry errors (indices %v)\n",
				st.ID, len(st.Injured), st.CellsTotal, st.Injured)
		}
		art, err := client.Artifact(st.ID)
		if err != nil {
			return nil, nil, err
		}
		results, err := dsmphase.MergeShards(g.Spec, g.Name, []*dsmphase.ShardArtifact{art})
		if err != nil {
			return nil, nil, err
		}
		if g.Tuning {
			if tuningRep, err = g.Spec.AssembleTuning(results); err != nil {
				return nil, nil, err
			}
		} else {
			reports[g.Name] = g.Spec.Assemble(results)
		}
	}
	return reports, tuningRep, nil
}

// aborter is the -shard-abort-once fault injection: the first run to
// claim the marker file exits the whole process (exit 3) right after
// its first completed cell's stream line is durable; with the marker
// already on disk, the run proceeds normally. Process-fatal by design
// — only the service's worker-crash tests use it.
type aborter struct {
	armed  bool
	stderr io.Writer
}

func newAborter(path string, shard int, stderr io.Writer) *aborter {
	a := &aborter{stderr: stderr}
	if path == "" {
		return a
	}
	path = strings.ReplaceAll(path, "{shard}", strconv.Itoa(shard))
	if f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644); err == nil {
		f.Close()
		a.armed = true
	}
	return a
}

func (a *aborter) cellDone() {
	if a.armed {
		fmt.Fprintln(a.stderr, "experiments: fault injection: aborting after one cell")
		os.Exit(3)
	}
}

// mergeGrids reads a complete shard-artifact set and reassembles every
// grid's report through the same aggregation path the unsharded run
// uses. An artifact grid the merge-side flags did not select (e.g.
// shards ran with -ablation, the merge without) is noted on stderr so
// the data is not silently dropped; the reverse — a selected grid the
// artifacts lack — is a hard error from MergeShards.
func mergeGrids(grids []dsmphase.NamedGrid, files []string, stderr io.Writer) (map[string]*dsmphase.Report, *dsmphase.TuningReport, error) {
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("-merge needs shard artifact files as arguments")
	}
	arts, err := dsmphase.ReadShardArtifactFiles(files)
	if err != nil {
		return nil, nil, err
	}
	reports := map[string]*dsmphase.Report{}
	var tuningRep *dsmphase.TuningReport
	selected := map[string]bool{}
	for _, g := range grids {
		selected[g.Name] = true
		results, err := dsmphase.MergeShards(g.Spec, g.Name, arts)
		if err != nil {
			return nil, nil, err
		}
		if g.Tuning {
			if tuningRep, err = g.Spec.AssembleTuning(results); err != nil {
				return nil, nil, err
			}
		} else {
			reports[g.Name] = g.Spec.Assemble(results)
		}
	}
	for _, ag := range arts[0].Grids {
		if !selected[ag.Name] {
			fmt.Fprintf(stderr, "experiments: note: shard artifacts carry grid %q, which the merge flags did not select; rerun -merge with the shard run's flags to render it\n", ag.Name)
		}
	}
	return reports, tuningRep, nil
}

// reportAblation appends the ablation grid's markdown scorecard.
func reportAblation(w io.Writer, rep *dsmphase.Report) error {
	enc, err := dsmphase.NewEncoder("markdown", "Ablation — DDS design choices")
	if err != nil {
		return err
	}
	if err := enc.Encode(w, rep); err != nil {
		return err
	}
	reportSkipped(w, rep.CellResults())
	return nil
}

// reportSkipped lists failed cells; the engine isolates them so the
// rest of the figure still reports.
func reportSkipped(w io.Writer, results []dsmphase.CellResult) {
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(w, "- skipped `%s`: %v\n", r.Cell.Label(), r.Err)
		}
	}
}

// appCell labels a configuration's application column, tagging the
// coherence backend when it is not the default so a -protocol sweep's
// rows (and its per-app claim sequences) stay distinct; default-protocol
// reports render exactly as before.
func appCell(c dsmphase.Configuration) string {
	if c.Protocol != dsmphase.ProtocolDirectory {
		return c.App + "/" + c.Protocol.String()
	}
	return c.App
}

// bandAt is one configuration's CoV@25 point: the across-replicate mean
// and the 95% CI half-width (zero at one replicate).
type bandAt struct {
	mean, half float64
}

func (b bandAt) lo() float64 { return b.mean - b.half }
func (b bandAt) hi() float64 { return b.mean + b.half }

// reportFigure2 prints the BBV degradation table and checks the paper's
// claim that quality degrades with node count. At several replicates
// the CoV columns are across-seed means, a 95% CI column appears, and
// the claim is interval-aware: a pass needs the whole CoV@25 sequence
// non-decreasing in node count AND the smallest and largest systems'
// confidence bands to separate — overlapping bands are not a
// statistically supported degradation. At one replicate the check falls
// back to comparing bare means over the full sequence.
func reportFigure2(w io.Writer, rep *dsmphase.Report) {
	fmt.Fprintln(w, "## Figure 2 — baseline BBV vs node count")
	fmt.Fprintln(w)
	ci := rep.Replicates > 1
	if ci {
		fmt.Fprintln(w, "| app | procs | CoV@10 | CoV@25 | ±CI@25 |")
		fmt.Fprintln(w, "|---|---|---|---|---|")
	} else {
		fmt.Fprintln(w, "| app | procs | CoV@10 | CoV@25 |")
		fmt.Fprintln(w, "|---|---|---|---|")
	}
	covs := map[string][]bandAt{} // app -> CoV@25 band in procs order
	var appOrder []string
	for _, c := range rep.Configs {
		if len(c.Curves) == 0 {
			continue
		}
		c10 := c.Band.MeanAt(10)
		c25, half25 := c.Band.At(25)
		app := appCell(c.Config)
		if ci {
			fmt.Fprintf(w, "| %s | %d | %s | %s | %s |\n",
				app, c.Config.Procs, fmtCov(c10), fmtCov(c25), fmtCov(half25))
		} else {
			fmt.Fprintf(w, "| %s | %d | %s | %s |\n", app, c.Config.Procs, fmtCov(c10), fmtCov(c25))
		}
		if _, seen := covs[app]; !seen {
			appOrder = append(appOrder, app)
		}
		covs[app] = append(covs[app], bandAt{mean: c25, half: half25})
	}
	fmt.Fprintln(w)
	reportSkipped(w, rep.CellResults())
	pass := 0
	for _, app := range appOrder {
		cs := covs[app]
		monotone := len(cs) >= 2
		for i := 1; i < len(cs); i++ {
			if cs[i].mean < cs[i-1].mean {
				monotone = false
				break
			}
		}
		switch {
		case !monotone || cs[len(cs)-1].mean <= cs[0].mean:
			fmt.Fprintf(w, "- `%s`: no monotone degradation across node counts ✗\n", app)
		case ci && cs[len(cs)-1].lo() <= cs[0].hi():
			fmt.Fprintf(w, "- `%s`: degradation within CI overlap (not significant) ✗\n", app)
		case ci:
			fmt.Fprintf(w, "- `%s`: monotone degradation across node counts (CI-separated) ✓\n", app)
			pass++
		default:
			fmt.Fprintf(w, "- `%s`: monotone degradation across node counts ✓\n", app)
			pass++
		}
	}
	fmt.Fprintf(w, "\n**Claim (quality degrades with node count): %d/%d applications.**\n\n",
		pass, len(appOrder))
}

// reportFigure4 prints the BBV vs BBV+DDV comparison and checks the
// across-the-board improvement claim. At several replicates the check
// is interval-aware: a configuration counts as a win only when the
// detectors' 95% CI bands at the 25-phase budget separate (DDV's upper
// bound below BBV's lower bound) — an overlapping-CI "win" proves
// nothing. At one replicate it falls back to comparing bare means.
func reportFigure4(w io.Writer, rep *dsmphase.Report) {
	fmt.Fprintln(w, "## Figure 4 — BBV vs BBV+DDV")
	fmt.Fprintln(w)
	ci := rep.Replicates > 1
	if ci {
		fmt.Fprintln(w, "| app | procs | BBV@25 | DDV@25 | gain | ±CI(DDV) |")
		fmt.Fprintln(w, "|---|---|---|---|---|---|")
	} else {
		fmt.Fprintln(w, "| app | procs | BBV@25 | DDV@25 | gain |")
		fmt.Fprintln(w, "|---|---|---|---|---|")
	}
	type key struct {
		app   string
		procs int
	}
	bbv := map[key]*dsmphase.ConfigResult{}
	ddv := map[key]*dsmphase.ConfigResult{}
	var order []key
	for i := range rep.Configs {
		c := &rep.Configs[i]
		if len(c.Curves) == 0 {
			continue
		}
		k := key{appCell(c.Config), c.Config.Procs}
		if c.Config.Detector == dsmphase.DetectorBBV {
			bbv[k] = c
			order = append(order, k)
		} else {
			ddv[k] = c
		}
	}
	wins, total := 0, 0
	for _, k := range order {
		b, okB := bbv[k]
		d, okD := ddv[k]
		if !okB || !okD {
			continue
		}
		b25, bHalf := b.Band.At(25)
		d25, dHalf := d.Band.At(25)
		gain := "—"
		switch {
		case d25 > 0:
			gain = fmt.Sprintf("%.1f×", b25/d25)
		case b25 > 0:
			gain = "∞"
		}
		if ci {
			fmt.Fprintf(w, "| %s | %d | %s | %s | %s | %s |\n",
				k.app, k.procs, fmtCov(b25), fmtCov(d25), gain, fmtCov(dHalf))
		} else {
			fmt.Fprintf(w, "| %s | %d | %s | %s | %s |\n", k.app, k.procs, fmtCov(b25), fmtCov(d25), gain)
		}
		total++
		if ci {
			// A win needs the CI bands to separate, not just the means.
			if d25+dHalf < b25-bHalf {
				wins++
			}
		} else if d25 <= b25*1.0001 {
			wins++
		}
	}
	fmt.Fprintln(w)
	reportSkipped(w, rep.CellResults())
	if ci {
		fmt.Fprintf(w, "**Claim (BBV+DDV improves CoV across the board, CI-separated): %d/%d configurations.**\n\n",
			wins, total)
	} else {
		fmt.Fprintf(w, "**Claim (BBV+DDV improves CoV across the board): %d/%d configurations.**\n\n",
			wins, total)
	}
}

// reportOverhead prints the §III-B estimate against the paper's quote.
func reportOverhead(w io.Writer) {
	o := dsmphase.PaperOverheadConfig()
	bw := o.BandwidthPerProcessor()
	frac := o.FractionOfController()
	fmt.Fprintln(w, "## §III-B — DDS exchange overhead")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "- bandwidth per processor: %.1f kB/s (paper: \"about 160kB/s\") %s\n",
		bw/1e3, check(bw > 150e3 && bw < 170e3))
	fmt.Fprintf(w, "- fraction of 1.5 GB/s controller: %.4f%% (paper: \"under 0.15%%\") %s\n",
		100*frac, check(frac < 0.0015))
}

func fmtCov(v float64) string {
	if math.IsInf(v, 1) {
		return "—"
	}
	return fmt.Sprintf("%.4f", v)
}

func check(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}

// parseProtocols parses the -protocol flag's comma list; empty keeps
// the directory default (an empty sweep axis).
func parseProtocols(s string) ([]dsmphase.ProtocolKind, error) {
	var kinds []dsmphase.ProtocolKind
	for _, name := range splitList(s) {
		k, err := dsmphase.ParseProtocolKind(name)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// listFlag collects a repeatable string flag.
type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

// loadWorkloads registers the -workload-file specs and -workload-trace
// captures and returns their canonical sources in flag order — the
// definitions a -submit request ships to the coordinator.
func loadWorkloads(files, traces listFlag) ([]string, error) {
	var sources []string
	for _, path := range files {
		sw, err := dsmphase.LoadWorkloadSpecFile(path)
		if err != nil {
			return nil, err
		}
		if err := sw.Register(); err != nil {
			return nil, err
		}
		sources = append(sources, string(sw.Source()))
	}
	for _, spec := range traces {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return nil, fmt.Errorf(`-workload-trace wants "name=trace.jsonl", got %q`, spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		recs, err := dsmphase.ReadAccessTrace(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		sw, err := dsmphase.WorkloadFromTrace(name,
			fmt.Sprintf("address trace ingested from %s", filepath.Base(path)), recs)
		if err != nil {
			return nil, err
		}
		if err := sw.Register(); err != nil {
			return nil, err
		}
		sources = append(sources, string(sw.Source()))
	}
	return sources, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
