// Command experiments runs the paper's full evaluation — Figure 2,
// Figure 4 and the §III-B overhead estimate — and emits a markdown
// scorecard in the style of EXPERIMENTS.md, including pass/fail checks
// of the paper's qualitative claims.
//
// Simulation cells run on the sharded experiment engine: -parallel N
// bounds the worker pool (default: all CPUs), and the report is
// byte-identical for every worker count. A cell that fails (e.g. a
// diverging workload) is reported and skipped; its siblings still run.
//
//	experiments -size small > report.md
//	experiments -size small -parallel 8 -progress > report.md
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"dsmphase"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run executes the whole report. The markdown lands on stdout; timing
// and progress land on stderr so stdout stays byte-identical across
// worker counts and machines.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sizeArg  = fs.String("size", "small", "input scale: test, small or full")
		apps     = fs.String("apps", "", "comma-separated workloads (default: the paper's four)")
		interval = fs.Uint64("interval", 0, "total sampling interval (0 = 300k reduced default)")
		seed     = fs.Uint64("seed", 1, "workload seed")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "engine worker pool size")
		progress = fs.Bool("progress", false, "report per-cell progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	size, err := dsmphase.ParseSize(*sizeArg)
	if err != nil {
		return err
	}
	fc := dsmphase.FigureConfig{
		Apps:     splitList(*apps),
		Size:     size,
		Interval: *interval,
		Seed:     *seed,
	}
	opts := dsmphase.EngineOptions{Parallel: *parallel}
	if *progress {
		opts.Progress = func(done, total int, r dsmphase.CellResult) {
			fmt.Fprintf(stderr, "[%d/%d] %s\n", done, total, r.Cell.Label())
		}
	}
	start := time.Now()

	fmt.Fprintf(stdout, "# Experiment report (size=%s, seed=%d)\n\n", size, *seed)

	fig2 := dsmphase.RunPlan(dsmphase.FigurePlan(fc, []int{2, 8, 32},
		[]dsmphase.DetectorKind{dsmphase.DetectorBBV}), opts)
	reportFigure2(stdout, fig2)

	fig4 := dsmphase.RunPlan(dsmphase.FigurePlan(fc, []int{8, 32},
		[]dsmphase.DetectorKind{dsmphase.DetectorBBV, dsmphase.DetectorBBVDDV}), opts)
	reportFigure4(stdout, fig4)

	reportOverhead(stdout)

	fmt.Fprintf(stderr, "total runtime: %v (parallel=%d)\n",
		time.Since(start).Round(time.Millisecond), *parallel)

	// Per-cell isolation keeps a partial report useful, but a run where
	// every cell failed produced no evaluation at all — exit non-zero so
	// scripted consumers notice.
	if len(dsmphase.Curves(fig2)) == 0 && len(dsmphase.Curves(fig4)) == 0 {
		if err := dsmphase.FirstError(fig2); err != nil {
			return fmt.Errorf("every cell failed; first error: %w", err)
		}
		if err := dsmphase.FirstError(fig4); err != nil {
			return fmt.Errorf("every cell failed; first error: %w", err)
		}
	}
	return nil
}

// reportSkipped lists failed cells; the engine isolates them so the
// rest of the figure still reports.
func reportSkipped(w io.Writer, results []dsmphase.CellResult) {
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(w, "- skipped `%s`: %v\n", r.Cell.Label(), r.Err)
		}
	}
}

// reportFigure2 prints the BBV degradation table and checks the paper's
// claim that quality degrades with node count.
func reportFigure2(w io.Writer, results []dsmphase.CellResult) {
	fmt.Fprintln(w, "## Figure 2 — baseline BBV vs node count")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| app | procs | CoV@10 | CoV@25 |")
	fmt.Fprintln(w, "|---|---|---|---|")
	covs := map[string][]float64{} // app -> CoV@25 in procs order
	var appOrder []string
	for _, c := range dsmphase.Curves(results) {
		c10, c25 := c.Curve.CoVAt(10), c.Curve.CoVAt(25)
		fmt.Fprintf(w, "| %s | %d | %s | %s |\n", c.App, c.Procs, fmtCov(c10), fmtCov(c25))
		if _, seen := covs[c.App]; !seen {
			appOrder = append(appOrder, c.App)
		}
		covs[c.App] = append(covs[c.App], c25)
	}
	fmt.Fprintln(w)
	reportSkipped(w, results)
	pass := 0
	for _, app := range appOrder {
		cs := covs[app]
		if len(cs) >= 2 && cs[len(cs)-1] > cs[0] {
			fmt.Fprintf(w, "- `%s`: degradation from smallest to largest system ✓\n", app)
			pass++
		} else {
			fmt.Fprintf(w, "- `%s`: no monotone degradation at the largest system ✗\n", app)
		}
	}
	fmt.Fprintf(w, "\n**Claim (quality degrades with node count): %d/%d applications.**\n\n",
		pass, len(appOrder))
}

// reportFigure4 prints the BBV vs BBV+DDV comparison and checks the
// across-the-board improvement claim.
func reportFigure4(w io.Writer, results []dsmphase.CellResult) {
	fmt.Fprintln(w, "## Figure 4 — BBV vs BBV+DDV")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| app | procs | BBV@25 | DDV@25 | gain |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	type key struct {
		app   string
		procs int
	}
	bbv := map[key]dsmphase.CurveResult{}
	ddv := map[key]dsmphase.CurveResult{}
	var order []key
	for _, c := range dsmphase.Curves(results) {
		k := key{c.App, c.Procs}
		if c.Detector == dsmphase.DetectorBBV {
			bbv[k] = c
			order = append(order, k)
		} else {
			ddv[k] = c
		}
	}
	wins, total := 0, 0
	for _, k := range order {
		b, okB := bbv[k]
		d, okD := ddv[k]
		if !okB || !okD {
			continue
		}
		b25, d25 := dsmphase.CompareAtPhases(b, d, 25)
		gain := "—"
		switch {
		case d25 > 0:
			gain = fmt.Sprintf("%.1f×", b25/d25)
		case b25 > 0:
			gain = "∞"
		}
		fmt.Fprintf(w, "| %s | %d | %s | %s | %s |\n", k.app, k.procs, fmtCov(b25), fmtCov(d25), gain)
		total++
		if d25 <= b25*1.0001 {
			wins++
		}
	}
	fmt.Fprintln(w)
	reportSkipped(w, results)
	fmt.Fprintf(w, "**Claim (BBV+DDV improves CoV across the board): %d/%d configurations.**\n\n",
		wins, total)
}

// reportOverhead prints the §III-B estimate against the paper's quote.
func reportOverhead(w io.Writer) {
	o := dsmphase.PaperOverheadConfig()
	bw := o.BandwidthPerProcessor()
	frac := o.FractionOfController()
	fmt.Fprintln(w, "## §III-B — DDS exchange overhead")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "- bandwidth per processor: %.1f kB/s (paper: \"about 160kB/s\") %s\n",
		bw/1e3, check(bw > 150e3 && bw < 170e3))
	fmt.Fprintf(w, "- fraction of 1.5 GB/s controller: %.4f%% (paper: \"under 0.15%%\") %s\n",
		100*frac, check(frac < 0.0015))
}

func fmtCov(v float64) string {
	if math.IsInf(v, 1) {
		return "—"
	}
	return fmt.Sprintf("%.4f", v)
}

func check(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
