// Command experiments runs the paper's full evaluation — Figure 2,
// Figure 4 and the §III-B overhead estimate — and emits a markdown
// scorecard in the style of EXPERIMENTS.md, including pass/fail checks
// of the paper's qualitative claims.
//
//	experiments -size small > report.md
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"dsmphase"
)

func main() {
	var (
		sizeArg  = flag.String("size", "small", "input scale: test, small or full")
		interval = flag.Uint64("interval", 0, "total sampling interval (0 = 300k reduced default)")
		seed     = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	size, err := dsmphase.ParseSize(*sizeArg)
	if err != nil {
		fatal(err)
	}
	fc := dsmphase.FigureConfig{Size: size, Interval: *interval, Seed: *seed}
	start := time.Now()

	fmt.Printf("# Experiment report (size=%s, seed=%d)\n\n", size, *seed)

	fig2, err := dsmphase.Figure2(fc, nil)
	if err != nil {
		fatal(err)
	}
	reportFigure2(fig2)

	fig4, err := dsmphase.Figure4(fc, nil)
	if err != nil {
		fatal(err)
	}
	reportFigure4(fig4)

	reportOverhead()

	fmt.Printf("\n_Total runtime: %v._\n", time.Since(start).Round(time.Second))
}

// reportFigure2 prints the BBV degradation table and checks the paper's
// claim that quality degrades with node count.
func reportFigure2(results []dsmphase.CurveResult) {
	fmt.Println("## Figure 2 — baseline BBV vs node count")
	fmt.Println()
	fmt.Println("| app | procs | CoV@10 | CoV@25 |")
	fmt.Println("|---|---|---|---|")
	type key struct{ app string }
	covs := map[string][]float64{} // app -> CoV@25 by procs order
	for _, c := range results {
		c10, c25 := c.Curve.CoVAt(10), c.Curve.CoVAt(25)
		fmt.Printf("| %s | %d | %s | %s |\n", c.App, c.Procs, fmtCov(c10), fmtCov(c25))
		covs[c.App] = append(covs[c.App], c25)
	}
	fmt.Println()
	pass := 0
	for app, cs := range covs {
		if len(cs) >= 2 && cs[len(cs)-1] > cs[0] {
			fmt.Printf("- `%s`: degradation from smallest to largest system ✓\n", app)
			pass++
		} else {
			fmt.Printf("- `%s`: no monotone degradation at the largest system ✗\n", app)
		}
	}
	fmt.Printf("\n**Claim (quality degrades with node count): %d/%d applications.**\n\n",
		pass, len(covs))
}

// reportFigure4 prints the BBV vs BBV+DDV comparison and checks the
// across-the-board improvement claim.
func reportFigure4(results []dsmphase.CurveResult) {
	fmt.Println("## Figure 4 — BBV vs BBV+DDV")
	fmt.Println()
	fmt.Println("| app | procs | BBV@25 | DDV@25 | gain |")
	fmt.Println("|---|---|---|---|---|")
	type key struct {
		app   string
		procs int
	}
	bbv := map[key]dsmphase.CurveResult{}
	ddv := map[key]dsmphase.CurveResult{}
	var order []key
	for _, c := range results {
		k := key{c.App, c.Procs}
		if c.Detector == dsmphase.DetectorBBV {
			bbv[k] = c
			order = append(order, k)
		} else {
			ddv[k] = c
		}
	}
	wins, total := 0, 0
	for _, k := range order {
		b, okB := bbv[k]
		d, okD := ddv[k]
		if !okB || !okD {
			continue
		}
		b25, d25 := dsmphase.CompareAtPhases(b, d, 25)
		gain := "—"
		switch {
		case d25 > 0:
			gain = fmt.Sprintf("%.1f×", b25/d25)
		case b25 > 0:
			gain = "∞"
		}
		fmt.Printf("| %s | %d | %s | %s | %s |\n", k.app, k.procs, fmtCov(b25), fmtCov(d25), gain)
		total++
		if d25 <= b25*1.0001 {
			wins++
		}
	}
	fmt.Printf("\n**Claim (BBV+DDV improves CoV across the board): %d/%d configurations.**\n\n",
		wins, total)
}

// reportOverhead prints the §III-B estimate against the paper's quote.
func reportOverhead() {
	o := dsmphase.PaperOverheadConfig()
	bw := o.BandwidthPerProcessor()
	frac := o.FractionOfController()
	fmt.Println("## §III-B — DDS exchange overhead")
	fmt.Println()
	fmt.Printf("- bandwidth per processor: %.1f kB/s (paper: \"about 160kB/s\") %s\n",
		bw/1e3, check(bw > 150e3 && bw < 170e3))
	fmt.Printf("- fraction of 1.5 GB/s controller: %.4f%% (paper: \"under 0.15%%\") %s\n",
		100*frac, check(frac < 0.0015))
}

func fmtCov(v float64) string {
	if math.IsInf(v, 1) {
		return "—"
	}
	return fmt.Sprintf("%.4f", v)
}

func check(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
