// Command experiments runs the paper's full evaluation — Figure 2,
// Figure 4 and the §III-B overhead estimate — and emits a markdown
// scorecard including pass/fail checks of the paper's qualitative
// claims.
//
// The evaluation is declared as Spec grids on the sharded experiment
// engine: -parallel N bounds the worker pool (default: all CPUs),
// -replicates N runs every configuration under N derived seeds and
// reports mean ± 95% CI columns, and -ablation appends the named
// DDS-design ablation grid as a markdown scorecard. The report is
// byte-identical for every worker count. A cell that fails (e.g. a
// diverging workload) is reported and skipped; its siblings still run.
//
// The run also shards across machines: -shard i/n executes only the
// i-th of n deterministic grid partitions and writes a versioned JSON
// shard artifact (docs/MERGE_FORMAT.md) instead of the report; -merge
// reassembles a complete artifact set into the byte-identical report
// the unsharded run would have printed. -preset paper selects the
// paper-scale flags, and -eta-from seeds the -progress ETA from a
// previous run's persisted per-cell timings.
//
//	experiments -size small > report.md
//	experiments -size small -parallel 8 -progress > report.md
//	experiments -size small -replicates 5 -ablation > report.md
//	experiments -preset paper -shard 0/4 -shard-out shard0.json   # per worker
//	experiments -preset paper -merge shard*.json > report.md      # reassemble
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"dsmphase"
	"dsmphase/internal/network"
	"dsmphase/internal/prof"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// grid is one named experiment grid of the report — the unit the shard
// artifact and the merge match across machines.
type grid struct {
	name   string
	spec   *dsmphase.Spec
	tuning bool
}

// gridSet declares the report's grids in render order. Every mode —
// unsharded, -shard and -merge — derives the set from the same flags,
// so a shard artifact's fingerprints line up with the merge side's.
func gridSet(base []dsmphase.SpecOption, ablation, tuning bool) []grid {
	grids := []grid{
		{name: "figure2", spec: dsmphase.NewSpec(append(base,
			dsmphase.WithProcs(2, 8, 32),
			dsmphase.WithDetectors(dsmphase.DetectorBBV),
		)...)},
		{name: "figure4", spec: dsmphase.NewSpec(append(base,
			dsmphase.WithProcs(8, 32),
			dsmphase.WithDetectors(dsmphase.DetectorBBV, dsmphase.DetectorBBVDDV),
		)...)},
	}
	if ablation {
		grids = append(grids, grid{name: "ablation", spec: ablationSpec(base)})
	}
	if tuning {
		grids = append(grids, grid{name: "tuning", spec: tuningSpec(base), tuning: true})
	}
	return grids
}

// run executes the whole report. The markdown lands on stdout; timing
// and progress land on stderr so stdout stays byte-identical across
// worker counts, machines, and shard/merge splits.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sizeArg    = fs.String("size", "small", "input scale: test, small or full")
		apps       = fs.String("apps", "", "comma-separated workloads, or a panel alias: paper, extended, adversarial")
		protocols  = fs.String("protocol", "", "comma-separated coherence backends to sweep: directory, ivy (default directory)")
		interval   = fs.Uint64("interval", 0, "total sampling interval (0 = 300k reduced default)")
		seed       = fs.Uint64("seed", 1, "workload base seed")
		replicates = fs.Int("replicates", 1, "seeds per configuration (>1 adds 95% CI columns)")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "engine worker pool size")
		progress   = fs.Bool("progress", false, "report per-cell progress and ETA on stderr")
		ablation   = fs.Bool("ablation", false, "append the DDS-design ablation scorecard")
		tuningFlag = fs.Bool("tuning", false, "append the adaptive-tuning win-rate scorecard (detector × predictor × controller)")
		tuningFmt  = fs.String("tuning-format", "markdown", "tuning scorecard format: text, csv, json or markdown")
		preset     = fs.String("preset", "", `flag preset: "paper" (size=full, interval=3000000, replicates=5); explicit flags override`)
		shardArg   = fs.String("shard", "", `run only shard i of n ("i/n") and write a shard artifact instead of the report`)
		shardOut   = fs.String("shard-out", "-", `shard artifact path ("-" = stdout)`)
		shardTrace = fs.Bool("shard-trace", false, "embed interval records (internal/trace JSONL) in the shard artifact")
		mergeFlag  = fs.Bool("merge", false, "merge the shard artifacts given as arguments into the report")
		etaFrom    = fs.String("eta-from", "", "seed the -progress ETA from a prior run's shard artifact timings")
		cpuProf    = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf    = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil // -h printed the usage; not a failure
		}
		return err
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProf()
	if err := applyPreset(fs, *preset, func() {
		*sizeArg, *interval, *replicates = "full", 3_000_000, 5
	}); err != nil {
		return err
	}
	if *shardArg != "" && *mergeFlag {
		return fmt.Errorf("-shard and -merge are mutually exclusive")
	}

	size, err := dsmphase.ParseSize(*sizeArg)
	if err != nil {
		return err
	}
	// Validate the tuning format before any simulation runs: a typo must
	// fail in milliseconds, not after the figure grids finished.
	var tuningEnc dsmphase.TuningEncoder
	if *tuningFlag {
		tuningEnc, err = dsmphase.NewTuningEncoder(*tuningFmt,
			"Adaptive tuning — detector × predictor × controller")
		if err != nil {
			return err
		}
	}
	kinds, err := parseProtocols(*protocols)
	if err != nil {
		return err
	}
	base := []dsmphase.SpecOption{
		dsmphase.WithApps(splitList(*apps)...),
		dsmphase.WithSize(size),
		dsmphase.WithInterval(*interval),
		dsmphase.WithSeed(*seed),
		dsmphase.WithReplicates(*replicates),
		dsmphase.WithProtocols(kinds...),
	}
	grids := gridSet(base, *ablation, *tuningFlag)

	// The ETA prior: a previous run's persisted per-cell timings.
	var etaPer time.Duration
	var etaCells int
	if *etaFrom != "" {
		prior, err := dsmphase.ReadShardArtifactFile(*etaFrom)
		if err != nil {
			return fmt.Errorf("-eta-from: %w", err)
		}
		etaPer, etaCells = prior.MeanCellWall()
	}
	// Each Spec.Run gets a fresh printer so the ETA never mixes plans.
	makeOpts := func() dsmphase.EngineOptions {
		opts := dsmphase.EngineOptions{Parallel: *parallel}
		if *progress {
			opts.Progress = dsmphase.SeededProgressPrinter(stderr, etaPer, etaCells)
		}
		return opts
	}
	start := time.Now()

	if *shardArg != "" {
		if err := runShard(grids, *shardArg, *shardOut, *shardTrace, stdout, makeOpts); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "total runtime: %v (parallel=%d)\n",
			time.Since(start).Round(time.Millisecond), *parallel)
		return nil
	}

	// Produce each grid's report: simulated here, or reassembled from
	// shard artifacts. Both paths flow through the same aggregation, so
	// the rendered bytes agree.
	reports := map[string]*dsmphase.Report{}
	var tuningRep *dsmphase.TuningReport
	if *mergeFlag {
		if reports, tuningRep, err = mergeGrids(grids, fs.Args(), stderr); err != nil {
			return err
		}
	} else {
		for _, g := range grids {
			if g.tuning {
				if tuningRep, err = g.spec.RunTuning(makeOpts()); err != nil {
					return err
				}
			} else {
				reports[g.name] = g.spec.Run(makeOpts())
			}
		}
	}

	fmt.Fprintf(stdout, "# Experiment report (size=%s, seed=%d)\n\n", size, *seed)
	fig2, fig4 := reports["figure2"], reports["figure4"]
	reportFigure2(stdout, fig2)
	reportFigure4(stdout, fig4)
	reportOverhead(stdout)
	if rep := reports["ablation"]; rep != nil {
		if err := reportAblation(stdout, rep); err != nil {
			return err
		}
	}
	if tuningRep != nil {
		if err := tuningEnc.Encode(stdout, tuningRep); err != nil {
			return err
		}
	}

	fmt.Fprintf(stderr, "total runtime: %v (parallel=%d)\n",
		time.Since(start).Round(time.Millisecond), *parallel)

	// Per-cell isolation keeps a partial report useful, but a run where
	// every cell failed produced no evaluation at all — exit non-zero so
	// scripted consumers notice.
	if len(fig2.Curves()) == 0 && len(fig4.Curves()) == 0 {
		if err := fig2.FirstError(); err != nil {
			return fmt.Errorf("every cell failed; first error: %w", err)
		}
		if err := fig4.FirstError(); err != nil {
			return fmt.Errorf("every cell failed; first error: %w", err)
		}
	}
	return nil
}

// applyPreset rewrites flag defaults from a named preset, keeping any
// value the user set explicitly.
func applyPreset(fs *flag.FlagSet, name string, paper func()) error {
	if name == "" {
		return nil
	}
	if name != "paper" {
		return fmt.Errorf("unknown preset %q (want paper)", name)
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	saved := map[string]string{}
	for _, n := range []string{"size", "interval", "replicates"} {
		if set[n] {
			saved[n] = fs.Lookup(n).Value.String()
		}
	}
	paper()
	for n, v := range saved {
		if err := fs.Set(n, v); err != nil {
			return err
		}
	}
	return nil
}

// runShard executes every grid's assigned shard and writes one
// multi-grid artifact to out ("-" = stdout; no report is rendered in
// shard mode).
func runShard(grids []grid, shardArg, out string, withTrace bool, stdout io.Writer, makeOpts func() dsmphase.EngineOptions) error {
	shard, of, err := dsmphase.ParseShard(shardArg)
	if err != nil {
		return err
	}
	art := &dsmphase.ShardArtifact{Format: dsmphase.ShardFormat, Shard: shard, Of: of}
	for _, g := range grids {
		opts := makeOpts()
		if g.tuning {
			// The tuning grid needs the online adaptive-loop hook so each
			// cell's artifact entry carries the scorecard payload.
			hook, err := g.spec.TuningHook()
			if err != nil {
				return err
			}
			opts.Hook = hook
		}
		if withTrace {
			opts.Hook = dsmphase.TraceHook(opts.Hook)
		}
		results := g.spec.RunShard(shard, of, opts)
		sg, err := dsmphase.NewShardGrid(g.name, g.spec, results, g.tuning, withTrace)
		if err != nil {
			return err
		}
		art.Grids = append(art.Grids, sg)
	}
	if out == "-" {
		return dsmphase.WriteShardArtifact(stdout, art)
	}
	return dsmphase.WriteShardArtifactFile(out, art)
}

// mergeGrids reads a complete shard-artifact set and reassembles every
// grid's report through the same aggregation path the unsharded run
// uses. An artifact grid the merge-side flags did not select (e.g.
// shards ran with -ablation, the merge without) is noted on stderr so
// the data is not silently dropped; the reverse — a selected grid the
// artifacts lack — is a hard error from MergeShards.
func mergeGrids(grids []grid, files []string, stderr io.Writer) (map[string]*dsmphase.Report, *dsmphase.TuningReport, error) {
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("-merge needs shard artifact files as arguments")
	}
	arts, err := dsmphase.ReadShardArtifactFiles(files)
	if err != nil {
		return nil, nil, err
	}
	reports := map[string]*dsmphase.Report{}
	var tuningRep *dsmphase.TuningReport
	selected := map[string]bool{}
	for _, g := range grids {
		selected[g.name] = true
		results, err := dsmphase.MergeShards(g.spec, g.name, arts)
		if err != nil {
			return nil, nil, err
		}
		if g.tuning {
			if tuningRep, err = g.spec.AssembleTuning(results); err != nil {
				return nil, nil, err
			}
		} else {
			reports[g.name] = g.spec.Assemble(results)
		}
	}
	for _, ag := range arts[0].Grids {
		if !selected[ag.Name] {
			fmt.Fprintf(stderr, "experiments: note: shard artifacts carry grid %q, which the merge flags did not select; rerun -merge with the shard run's flags to render it\n", ag.Name)
		}
	}
	return reports, tuningRep, nil
}

// ablationSpec is the named DDS-design ablation grid: each variant
// disables one ingredient of the data distribution scalar (the
// contention vector, the hop-distance matrix) or swaps the network for
// the 2D-mesh topology, all TweakKey-cached so every detector sweep of
// a variant shares one simulation.
func ablationSpec(base []dsmphase.SpecOption) *dsmphase.Spec {
	return dsmphase.NewSpec(append(base,
		dsmphase.WithProcs(8),
		dsmphase.WithDetectors(dsmphase.DetectorBBVDDV),
		dsmphase.WithTweak("no-contention", "dds-no-contention",
			func(c *dsmphase.MachineConfig) { c.DDS.IgnoreContention = true }),
		dsmphase.WithTweak("uniform-distance", "uniform-distance",
			func(c *dsmphase.MachineConfig) { c.UniformDistance = true }),
		dsmphase.WithTweak("mesh-2d", "mesh-2d",
			func(c *dsmphase.MachineConfig) { c.Topology = network.KindMesh2D }),
	)...)
}

// reportAblation appends the ablation grid's markdown scorecard.
func reportAblation(w io.Writer, rep *dsmphase.Report) error {
	enc, err := dsmphase.NewEncoder("markdown", "Ablation — DDS design choices")
	if err != nil {
		return err
	}
	if err := enc.Encode(w, rep); err != nil {
		return err
	}
	reportSkipped(w, rep.CellResults())
	return nil
}

// tuningSpec is the adaptive-tuning grid: the detector × predictor ×
// controller closed loop on live simulations (thresholds picked from
// each cell's CoV curve within the phase budget, recorded intervals
// classified into phase streams, one online AdaptiveLoop per
// processor), rendered as a replicate-banded win-rate scorecard.
func tuningSpec(base []dsmphase.SpecOption) *dsmphase.Spec {
	return dsmphase.NewSpec(append(base,
		dsmphase.WithDetectors(dsmphase.DetectorBBV, dsmphase.DetectorBBVDDV),
	)...)
}

// reportSkipped lists failed cells; the engine isolates them so the
// rest of the figure still reports.
func reportSkipped(w io.Writer, results []dsmphase.CellResult) {
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(w, "- skipped `%s`: %v\n", r.Cell.Label(), r.Err)
		}
	}
}

// appCell labels a configuration's application column, tagging the
// coherence backend when it is not the default so a -protocol sweep's
// rows (and its per-app claim sequences) stay distinct; default-protocol
// reports render exactly as before.
func appCell(c dsmphase.Configuration) string {
	if c.Protocol != dsmphase.ProtocolDirectory {
		return c.App + "/" + c.Protocol.String()
	}
	return c.App
}

// bandAt is one configuration's CoV@25 point: the across-replicate mean
// and the 95% CI half-width (zero at one replicate).
type bandAt struct {
	mean, half float64
}

func (b bandAt) lo() float64 { return b.mean - b.half }
func (b bandAt) hi() float64 { return b.mean + b.half }

// reportFigure2 prints the BBV degradation table and checks the paper's
// claim that quality degrades with node count. At several replicates
// the CoV columns are across-seed means, a 95% CI column appears, and
// the claim is interval-aware: a pass needs the whole CoV@25 sequence
// non-decreasing in node count AND the smallest and largest systems'
// confidence bands to separate — overlapping bands are not a
// statistically supported degradation. At one replicate the check falls
// back to comparing bare means over the full sequence.
func reportFigure2(w io.Writer, rep *dsmphase.Report) {
	fmt.Fprintln(w, "## Figure 2 — baseline BBV vs node count")
	fmt.Fprintln(w)
	ci := rep.Replicates > 1
	if ci {
		fmt.Fprintln(w, "| app | procs | CoV@10 | CoV@25 | ±CI@25 |")
		fmt.Fprintln(w, "|---|---|---|---|---|")
	} else {
		fmt.Fprintln(w, "| app | procs | CoV@10 | CoV@25 |")
		fmt.Fprintln(w, "|---|---|---|---|")
	}
	covs := map[string][]bandAt{} // app -> CoV@25 band in procs order
	var appOrder []string
	for _, c := range rep.Configs {
		if len(c.Curves) == 0 {
			continue
		}
		c10 := c.Band.MeanAt(10)
		c25, half25 := c.Band.At(25)
		app := appCell(c.Config)
		if ci {
			fmt.Fprintf(w, "| %s | %d | %s | %s | %s |\n",
				app, c.Config.Procs, fmtCov(c10), fmtCov(c25), fmtCov(half25))
		} else {
			fmt.Fprintf(w, "| %s | %d | %s | %s |\n", app, c.Config.Procs, fmtCov(c10), fmtCov(c25))
		}
		if _, seen := covs[app]; !seen {
			appOrder = append(appOrder, app)
		}
		covs[app] = append(covs[app], bandAt{mean: c25, half: half25})
	}
	fmt.Fprintln(w)
	reportSkipped(w, rep.CellResults())
	pass := 0
	for _, app := range appOrder {
		cs := covs[app]
		monotone := len(cs) >= 2
		for i := 1; i < len(cs); i++ {
			if cs[i].mean < cs[i-1].mean {
				monotone = false
				break
			}
		}
		switch {
		case !monotone || cs[len(cs)-1].mean <= cs[0].mean:
			fmt.Fprintf(w, "- `%s`: no monotone degradation across node counts ✗\n", app)
		case ci && cs[len(cs)-1].lo() <= cs[0].hi():
			fmt.Fprintf(w, "- `%s`: degradation within CI overlap (not significant) ✗\n", app)
		case ci:
			fmt.Fprintf(w, "- `%s`: monotone degradation across node counts (CI-separated) ✓\n", app)
			pass++
		default:
			fmt.Fprintf(w, "- `%s`: monotone degradation across node counts ✓\n", app)
			pass++
		}
	}
	fmt.Fprintf(w, "\n**Claim (quality degrades with node count): %d/%d applications.**\n\n",
		pass, len(appOrder))
}

// reportFigure4 prints the BBV vs BBV+DDV comparison and checks the
// across-the-board improvement claim. At several replicates the check
// is interval-aware: a configuration counts as a win only when the
// detectors' 95% CI bands at the 25-phase budget separate (DDV's upper
// bound below BBV's lower bound) — an overlapping-CI "win" proves
// nothing. At one replicate it falls back to comparing bare means.
func reportFigure4(w io.Writer, rep *dsmphase.Report) {
	fmt.Fprintln(w, "## Figure 4 — BBV vs BBV+DDV")
	fmt.Fprintln(w)
	ci := rep.Replicates > 1
	if ci {
		fmt.Fprintln(w, "| app | procs | BBV@25 | DDV@25 | gain | ±CI(DDV) |")
		fmt.Fprintln(w, "|---|---|---|---|---|---|")
	} else {
		fmt.Fprintln(w, "| app | procs | BBV@25 | DDV@25 | gain |")
		fmt.Fprintln(w, "|---|---|---|---|---|")
	}
	type key struct {
		app   string
		procs int
	}
	bbv := map[key]*dsmphase.ConfigResult{}
	ddv := map[key]*dsmphase.ConfigResult{}
	var order []key
	for i := range rep.Configs {
		c := &rep.Configs[i]
		if len(c.Curves) == 0 {
			continue
		}
		k := key{appCell(c.Config), c.Config.Procs}
		if c.Config.Detector == dsmphase.DetectorBBV {
			bbv[k] = c
			order = append(order, k)
		} else {
			ddv[k] = c
		}
	}
	wins, total := 0, 0
	for _, k := range order {
		b, okB := bbv[k]
		d, okD := ddv[k]
		if !okB || !okD {
			continue
		}
		b25, bHalf := b.Band.At(25)
		d25, dHalf := d.Band.At(25)
		gain := "—"
		switch {
		case d25 > 0:
			gain = fmt.Sprintf("%.1f×", b25/d25)
		case b25 > 0:
			gain = "∞"
		}
		if ci {
			fmt.Fprintf(w, "| %s | %d | %s | %s | %s | %s |\n",
				k.app, k.procs, fmtCov(b25), fmtCov(d25), gain, fmtCov(dHalf))
		} else {
			fmt.Fprintf(w, "| %s | %d | %s | %s | %s |\n", k.app, k.procs, fmtCov(b25), fmtCov(d25), gain)
		}
		total++
		if ci {
			// A win needs the CI bands to separate, not just the means.
			if d25+dHalf < b25-bHalf {
				wins++
			}
		} else if d25 <= b25*1.0001 {
			wins++
		}
	}
	fmt.Fprintln(w)
	reportSkipped(w, rep.CellResults())
	if ci {
		fmt.Fprintf(w, "**Claim (BBV+DDV improves CoV across the board, CI-separated): %d/%d configurations.**\n\n",
			wins, total)
	} else {
		fmt.Fprintf(w, "**Claim (BBV+DDV improves CoV across the board): %d/%d configurations.**\n\n",
			wins, total)
	}
}

// reportOverhead prints the §III-B estimate against the paper's quote.
func reportOverhead(w io.Writer) {
	o := dsmphase.PaperOverheadConfig()
	bw := o.BandwidthPerProcessor()
	frac := o.FractionOfController()
	fmt.Fprintln(w, "## §III-B — DDS exchange overhead")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "- bandwidth per processor: %.1f kB/s (paper: \"about 160kB/s\") %s\n",
		bw/1e3, check(bw > 150e3 && bw < 170e3))
	fmt.Fprintf(w, "- fraction of 1.5 GB/s controller: %.4f%% (paper: \"under 0.15%%\") %s\n",
		100*frac, check(frac < 0.0015))
}

func fmtCov(v float64) string {
	if math.IsInf(v, 1) {
		return "—"
	}
	return fmt.Sprintf("%.4f", v)
}

func check(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}

// parseProtocols parses the -protocol flag's comma list; empty keeps
// the directory default (an empty sweep axis).
func parseProtocols(s string) ([]dsmphase.ProtocolKind, error) {
	var kinds []dsmphase.ProtocolKind
	for _, name := range splitList(s) {
		k, err := dsmphase.ParseProtocolKind(name)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
