package main

import (
	"bytes"
	"strings"
	"testing"
)

// report runs the command end to end and returns its stdout.
func report(t *testing.T, extra ...string) string {
	t.Helper()
	args := append([]string{"-size", "test", "-interval", "40000", "-apps", "lu", "-seed", "1"}, extra...)
	var out, errOut bytes.Buffer
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v (stderr: %s)", args, err, errOut.String())
	}
	return out.String()
}

// TestParallelReportByteIdentical is the determinism acceptance check:
// the markdown report must be byte-identical whatever the worker count.
func TestParallelReportByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	serial := report(t, "-parallel", "1")
	for _, workers := range []string{"2", "4", "8"} {
		if got := report(t, "-parallel", workers); got != serial {
			t.Errorf("-parallel %s output differs from -parallel 1:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, serial, got)
		}
	}
}

// TestReportSections checks the scorecard's shape.
func TestReportSections(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	out := report(t, "-parallel", "4")
	for _, want := range []string{
		"# Experiment report (size=test, seed=1)",
		"## Figure 2 — baseline BBV vs node count",
		"## Figure 4 — BBV vs BBV+DDV",
		"## §III-B — DDS exchange overhead",
		"| lu | 8 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "skipped") {
		t.Errorf("healthy run reported skipped cells:\n%s", out)
	}
}

// TestReportIsolatesUnknownWorkload checks that a failing cell is
// reported and skipped while the rest of the report still renders.
func TestReportIsolatesUnknownWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	var out, errOut bytes.Buffer
	args := []string{"-size", "test", "-interval", "40000", "-apps", "lu,nope", "-parallel", "4"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	s := out.String()
	if !strings.Contains(s, "skipped `nope") {
		t.Errorf("report does not mention the skipped workload:\n%s", s)
	}
	if !strings.Contains(s, "| lu | 8 |") {
		t.Errorf("healthy workload missing from report:\n%s", s)
	}
}

// TestAllCellsFailingReturnsError checks that a run producing no
// evaluation at all (every cell failed) exits non-zero, while partial
// failures (TestReportIsolatesUnknownWorkload) still succeed.
func TestAllCellsFailingReturnsError(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-size", "test", "-interval", "40000", "-apps", "nope"}, &out, &errOut)
	if err == nil {
		t.Error("all-cells-failed run returned nil")
	}
	if !strings.Contains(out.String(), "skipped `nope") {
		t.Errorf("report body missing skip lines:\n%s", out.String())
	}
}

// TestBadFlagsSurfaceErrors checks flag/size validation errors return
// instead of os.Exit, keeping the command testable.
func TestBadFlagsSurfaceErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-size", "galactic"}, &out, &errOut); err == nil {
		t.Error("unknown size accepted")
	}
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestReplicatesAddCIColumns checks the multi-seed path: -replicates
// above 1 switches both figure tables to mean ± 95% CI form.
func TestReplicatesAddCIColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	out := report(t, "-replicates", "2", "-parallel", "4")
	for _, want := range []string{
		"| app | procs | CoV@10 | CoV@25 | ±CI@25 |",
		"| app | procs | BBV@25 | DDV@25 | gain | ±CI(DDV) |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("replicated report missing %q:\n%s", want, out)
		}
	}
	// And the default single-seed report must NOT carry the CI columns.
	if single := report(t, "-parallel", "4"); strings.Contains(single, "±CI@25") {
		t.Error("single-seed report grew CI columns")
	}
}

// TestAblationScorecard checks that -ablation appends the named
// DDS-design grid as a markdown scorecard with every variant row.
func TestAblationScorecard(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	out := report(t, "-ablation", "-parallel", "4")
	for _, want := range []string{
		"## Ablation — DDS design choices",
		"| variant | app | procs | detector |",
		"| baseline | lu | 8 | BBV+DDV |",
		"| no-contention | lu | 8 | BBV+DDV |",
		"| uniform-distance | lu | 8 | BBV+DDV |",
		"| mesh-2d | lu | 8 | BBV+DDV |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation report missing %q:\n%s", want, out)
		}
	}
	if report(t, "-parallel", "4") == out {
		t.Error("-ablation changed nothing")
	}
}

// TestTuningScorecard checks that -tuning appends the adaptive-tuning
// win-rate scorecard with every detector × predictor × controller row.
func TestTuningScorecard(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	out := report(t, "-tuning", "-parallel", "4")
	for _, want := range []string{
		"## Adaptive tuning — detector × predictor × controller",
		"| variant | app | procs | detector | predictor | controller | win-rate | ±CI | regret | converge | accuracy | overhead |",
		"| baseline | lu | 8 | BBV | last-phase | trial-1 |",
		"| baseline | lu | 8 | BBV | markov | trial-2 |",
		"| baseline | lu | 8 | BBV+DDV | run-length | trial-1 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tuning report missing %q:\n%s", want, out)
		}
	}
	if report(t, "-parallel", "4") == out {
		t.Error("-tuning changed nothing")
	}
}

// TestTuningScorecardDeterministic is the tuning acceptance check: the
// scorecard must be byte-identical whatever the worker count, in every
// encoder format.
func TestTuningScorecardDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	// Two formats suffice here: per-format byte identity across worker
	// counts is pinned for all four encoders by the internal harness
	// test (TestRunTuningDeterministic); this covers the cmd wiring.
	for _, format := range []string{"markdown", "json"} {
		serial := report(t, "-tuning", "-tuning-format", format, "-replicates", "2", "-parallel", "1")
		if got := report(t, "-tuning", "-tuning-format", format, "-replicates", "2", "-parallel", "8"); got != serial {
			t.Errorf("%s: -parallel 8 tuning scorecard differs from -parallel 1:\n--- serial ---\n%s\n--- parallel ---\n%s",
				format, serial, got)
		}
	}
}

// TestTuningFormatValidation checks an unknown -tuning-format surfaces
// as an error instead of a silent default.
func TestTuningFormatValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	var out, errOut bytes.Buffer
	args := []string{"-size", "test", "-interval", "40000", "-apps", "lu",
		"-tuning", "-tuning-format", "yaml"}
	if err := run(args, &out, &errOut); err == nil {
		t.Error("unknown tuning format accepted")
	}
}

// TestExtendedPanelAlias checks that -apps extended expands to the
// paper panel plus ocean and radix.
func TestExtendedPanelAlias(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	var out, errOut bytes.Buffer
	args := []string{"-size", "test", "-interval", "40000", "-apps", "extended"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v (stderr: %s)", args, err, errOut.String())
	}
	for _, app := range []string{"fmm", "lu", "equake", "art", "ocean", "radix"} {
		if !strings.Contains(out.String(), "| "+app+" | 8 |") {
			t.Errorf("extended panel missing %s", app)
		}
	}
	if strings.Contains(out.String(), "skipped") {
		t.Errorf("extended panel skipped cells:\n%s", out.String())
	}
}

// TestHelpIsNotAnError checks that -h prints the usage and exits
// cleanly instead of surfacing flag.ErrHelp as a failure.
func TestHelpIsNotAnError(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-h"}, &out, &errOut); err != nil {
		t.Errorf("-h returned %v", err)
	}
	if !strings.Contains(errOut.String(), "-size") {
		t.Errorf("usage not printed:\n%s", errOut.String())
	}
}
