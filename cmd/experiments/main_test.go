package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmphase"
)

// report runs the command end to end and returns its stdout.
func report(t *testing.T, extra ...string) string {
	t.Helper()
	args := append([]string{"-size", "test", "-interval", "40000", "-apps", "lu", "-seed", "1"}, extra...)
	var out, errOut bytes.Buffer
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v (stderr: %s)", args, err, errOut.String())
	}
	return out.String()
}

// TestParallelReportByteIdentical is the determinism acceptance check:
// the markdown report must be byte-identical whatever the worker count.
func TestParallelReportByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	serial := report(t, "-parallel", "1")
	for _, workers := range []string{"2", "4", "8"} {
		if got := report(t, "-parallel", workers); got != serial {
			t.Errorf("-parallel %s output differs from -parallel 1:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, serial, got)
		}
	}
}

// TestReportSections checks the scorecard's shape.
func TestReportSections(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	out := report(t, "-parallel", "4")
	for _, want := range []string{
		"# Experiment report (size=test, seed=1)",
		"## Figure 2 — baseline BBV vs node count",
		"## Figure 4 — BBV vs BBV+DDV",
		"## §III-B — DDS exchange overhead",
		"| lu | 8 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "skipped") {
		t.Errorf("healthy run reported skipped cells:\n%s", out)
	}
}

// TestReportIsolatesUnknownWorkload checks that a failing cell is
// reported and skipped while the rest of the report still renders.
func TestReportIsolatesUnknownWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	var out, errOut bytes.Buffer
	args := []string{"-size", "test", "-interval", "40000", "-apps", "lu,nope", "-parallel", "4"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	s := out.String()
	if !strings.Contains(s, "skipped `nope") {
		t.Errorf("report does not mention the skipped workload:\n%s", s)
	}
	if !strings.Contains(s, "| lu | 8 |") {
		t.Errorf("healthy workload missing from report:\n%s", s)
	}
}

// TestAllCellsFailingReturnsError checks that a run producing no
// evaluation at all (every cell failed) exits non-zero, while partial
// failures (TestReportIsolatesUnknownWorkload) still succeed.
func TestAllCellsFailingReturnsError(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-size", "test", "-interval", "40000", "-apps", "nope"}, &out, &errOut)
	if err == nil {
		t.Error("all-cells-failed run returned nil")
	}
	if !strings.Contains(out.String(), "skipped `nope") {
		t.Errorf("report body missing skip lines:\n%s", out.String())
	}
}

// TestBadFlagsSurfaceErrors checks flag/size validation errors return
// instead of os.Exit, keeping the command testable.
func TestBadFlagsSurfaceErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-size", "galactic"}, &out, &errOut); err == nil {
		t.Error("unknown size accepted")
	}
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestReplicatesAddCIColumns checks the multi-seed path: -replicates
// above 1 switches both figure tables to mean ± 95% CI form.
func TestReplicatesAddCIColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	out := report(t, "-replicates", "2", "-parallel", "4")
	for _, want := range []string{
		"| app | procs | CoV@10 | CoV@25 | ±CI@25 |",
		"| app | procs | BBV@25 | DDV@25 | gain | ±CI(DDV) |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("replicated report missing %q:\n%s", want, out)
		}
	}
	// And the default single-seed report must NOT carry the CI columns.
	if single := report(t, "-parallel", "4"); strings.Contains(single, "±CI@25") {
		t.Error("single-seed report grew CI columns")
	}
}

// TestAblationScorecard checks that -ablation appends the named
// DDS-design grid as a markdown scorecard with every variant row.
func TestAblationScorecard(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	out := report(t, "-ablation", "-parallel", "4")
	for _, want := range []string{
		"## Ablation — DDS design choices",
		"| variant | app | procs | detector |",
		"| baseline | lu | 8 | BBV+DDV |",
		"| no-contention | lu | 8 | BBV+DDV |",
		"| uniform-distance | lu | 8 | BBV+DDV |",
		"| mesh-2d | lu | 8 | BBV+DDV |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation report missing %q:\n%s", want, out)
		}
	}
	if report(t, "-parallel", "4") == out {
		t.Error("-ablation changed nothing")
	}
}

// TestTuningScorecard checks that -tuning appends the adaptive-tuning
// win-rate scorecard with every detector × predictor × controller row.
func TestTuningScorecard(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	out := report(t, "-tuning", "-parallel", "4")
	for _, want := range []string{
		"## Adaptive tuning — detector × predictor × controller",
		"| variant | app | procs | detector | predictor | controller | win-rate | ±CI | regret | converge | accuracy | overhead |",
		"| baseline | lu | 8 | BBV | last-phase | trial-1 |",
		"| baseline | lu | 8 | BBV | markov | trial-2 |",
		"| baseline | lu | 8 | BBV+DDV | run-length | trial-1 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tuning report missing %q:\n%s", want, out)
		}
	}
	if report(t, "-parallel", "4") == out {
		t.Error("-tuning changed nothing")
	}
}

// TestTuningScorecardDeterministic is the tuning acceptance check: the
// scorecard must be byte-identical whatever the worker count, in every
// encoder format.
func TestTuningScorecardDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	// Two formats suffice here: per-format byte identity across worker
	// counts is pinned for all four encoders by the internal harness
	// test (TestRunTuningDeterministic); this covers the cmd wiring.
	for _, format := range []string{"markdown", "json"} {
		serial := report(t, "-tuning", "-tuning-format", format, "-replicates", "2", "-parallel", "1")
		if got := report(t, "-tuning", "-tuning-format", format, "-replicates", "2", "-parallel", "8"); got != serial {
			t.Errorf("%s: -parallel 8 tuning scorecard differs from -parallel 1:\n--- serial ---\n%s\n--- parallel ---\n%s",
				format, serial, got)
		}
	}
}

// TestTuningFormatValidation checks an unknown -tuning-format surfaces
// as an error instead of a silent default.
func TestTuningFormatValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	var out, errOut bytes.Buffer
	args := []string{"-size", "test", "-interval", "40000", "-apps", "lu",
		"-tuning", "-tuning-format", "yaml"}
	if err := run(args, &out, &errOut); err == nil {
		t.Error("unknown tuning format accepted")
	}
}

// TestExtendedPanelAlias checks that -apps extended expands to the
// paper panel plus ocean and radix.
func TestExtendedPanelAlias(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	var out, errOut bytes.Buffer
	args := []string{"-size", "test", "-interval", "40000", "-apps", "extended"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v (stderr: %s)", args, err, errOut.String())
	}
	for _, app := range []string{"fmm", "lu", "equake", "art", "ocean", "radix"} {
		if !strings.Contains(out.String(), "| "+app+" | 8 |") {
			t.Errorf("extended panel missing %s", app)
		}
	}
	if strings.Contains(out.String(), "skipped") {
		t.Errorf("extended panel skipped cells:\n%s", out.String())
	}
}

// shardFiles runs the command once per shard and returns the artifact
// paths.
func shardFiles(t *testing.T, of int, extra ...string) []string {
	t.Helper()
	dir := t.TempDir()
	files := make([]string, of)
	for shard := 0; shard < of; shard++ {
		files[shard] = filepath.Join(dir, fmt.Sprintf("shard%d.json", shard))
		args := append([]string{"-size", "test", "-interval", "40000", "-apps", "lu", "-seed", "1",
			"-shard", fmt.Sprintf("%d/%d", shard, of),
			"-shard-out", files[shard]}, extra...)
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err != nil {
			t.Fatalf("run(%v): %v (stderr: %s)", args, err, errOut.String())
		}
		if out.Len() != 0 {
			t.Fatalf("shard mode with -shard-out file still wrote %d bytes to stdout", out.Len())
		}
	}
	return files
}

// TestShardMergeByteIdentity is the cross-machine acceptance check: a
// 2-way shard run plus -merge must reproduce the unsharded stdout byte
// for byte, including the ablation and tuning scorecards.
func TestShardMergeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	extra := []string{"-replicates", "2", "-ablation", "-tuning"}
	want := report(t, extra...)
	files := shardFiles(t, 2, extra...)
	args := append(append([]string{"-size", "test", "-interval", "40000", "-apps", "lu", "-seed", "1",
		"-merge"}, extra...), files...)
	var out, errOut bytes.Buffer
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v (stderr: %s)", args, err, errOut.String())
	}
	if out.String() != want {
		t.Errorf("merged report differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s",
			want, out.String())
	}

	// A merge whose flags select fewer grids than the artifacts carry
	// must note the dropped grids on stderr instead of silently
	// discarding hours of shard work.
	args = append([]string{"-size", "test", "-interval", "40000", "-apps", "lu", "-seed", "1",
		"-replicates", "2", "-merge"}, files...)
	out.Reset()
	errOut.Reset()
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v (stderr: %s)", args, err, errOut.String())
	}
	for _, name := range []string{"ablation", "tuning"} {
		if !strings.Contains(errOut.String(), `"`+name+`"`) {
			t.Errorf("merge without -%s did not note the unconsumed %q grid:\n%s", name, name, errOut.String())
		}
	}
}

// TestShardArtifactShape checks the shard artifact carries one grid per
// report section and round-trips through the public reader.
func TestShardArtifactShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	files := shardFiles(t, 1, "-tuning")
	f, err := os.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	art, err := dsmphase.ReadShardArtifact(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"figure2", "figure4", "tuning"} {
		if _, ok := art.Grid(name); !ok {
			t.Errorf("artifact missing grid %q", name)
		}
	}
	if _, ok := art.Grid("ablation"); ok {
		t.Error("artifact has an ablation grid without -ablation")
	}
	if per, cells := art.MeanCellWall(); cells == 0 || per <= 0 {
		t.Errorf("artifact carries no usable timings: per=%v cells=%d", per, cells)
	}
}

// TestMergeFlagValidation checks -merge failure modes: no files, and
// artifacts from a mismatched flag set.
func TestMergeFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	var out, errOut bytes.Buffer
	if err := run([]string{"-merge"}, &out, &errOut); err == nil {
		t.Error("-merge with no files accepted")
	}
	files := shardFiles(t, 2)
	args := append([]string{"-size", "test", "-interval", "40000", "-apps", "lu", "-seed", "2",
		"-merge"}, files...)
	if err := run(args, &out, &errOut); err == nil {
		t.Error("merge accepted shards produced under a different seed")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("mismatch error unhelpful: %v", err)
	}
	if err := run([]string{"-shard", "0/2", "-merge"}, &out, &errOut); err == nil {
		t.Error("-shard combined with -merge accepted")
	}
	if err := run([]string{"-shard", "5/2"}, &out, &errOut); err == nil {
		t.Error("out-of-range -shard accepted")
	}
}

// TestEtaFromSeedsProgress checks -eta-from accepts a prior artifact
// and the progress stream still renders ETAs.
func TestEtaFromSeedsProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	files := shardFiles(t, 1)
	var out, errOut bytes.Buffer
	args := []string{"-size", "test", "-interval", "40000", "-apps", "lu",
		"-progress", "-eta-from", files[0]}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if !strings.Contains(errOut.String(), "eta") {
		t.Errorf("progress stream lost its ETA:\n%s", errOut.String())
	}
	if err := run([]string{"-eta-from", filepath.Join(t.TempDir(), "nope.json")}, &out, &errOut); err == nil {
		t.Error("missing -eta-from file accepted")
	}
}

// TestApplyPreset checks the paper preset rewrites only the flags the
// user left at their defaults.
func TestApplyPreset(t *testing.T) {
	newFS := func(args ...string) (*flag.FlagSet, *string, *uint64, *int) {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		size := fs.String("size", "small", "")
		interval := fs.Uint64("interval", 0, "")
		replicates := fs.Int("replicates", 1, "")
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return fs, size, interval, replicates
	}
	paper := func(size *string, interval *uint64, replicates *int) func() {
		return func() { *size, *interval, *replicates = "full", 3_000_000, 5 }
	}

	fs, size, interval, replicates := newFS()
	if err := applyPreset(fs, "paper", paper(size, interval, replicates)); err != nil {
		t.Fatal(err)
	}
	if *size != "full" || *interval != 3_000_000 || *replicates != 5 {
		t.Errorf("bare preset: size=%s interval=%d replicates=%d", *size, *interval, *replicates)
	}

	fs, size, interval, replicates = newFS("-size", "test", "-replicates", "2")
	if err := applyPreset(fs, "paper", paper(size, interval, replicates)); err != nil {
		t.Fatal(err)
	}
	if *size != "test" || *replicates != 2 {
		t.Errorf("explicit flags overridden by preset: size=%s replicates=%d", *size, *replicates)
	}
	if *interval != 3_000_000 {
		t.Errorf("unset flag not preset: interval=%d", *interval)
	}

	if err := applyPreset(fs, "galactic", func() {}); err == nil {
		t.Error("unknown preset accepted")
	}
}

// TestHelpIsNotAnError checks that -h prints the usage and exits
// cleanly instead of surfacing flag.ErrHelp as a failure.
func TestHelpIsNotAnError(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-h"}, &out, &errOut); err != nil {
		t.Errorf("-h returned %v", err)
	}
	if !strings.Contains(errOut.String(), "-size") {
		t.Errorf("usage not printed:\n%s", errOut.String())
	}
}
