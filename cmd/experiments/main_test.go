package main

import (
	"bytes"
	"strings"
	"testing"
)

// report runs the command end to end and returns its stdout.
func report(t *testing.T, extra ...string) string {
	t.Helper()
	args := append([]string{"-size", "test", "-interval", "40000", "-apps", "lu", "-seed", "1"}, extra...)
	var out, errOut bytes.Buffer
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v (stderr: %s)", args, err, errOut.String())
	}
	return out.String()
}

// TestParallelReportByteIdentical is the determinism acceptance check:
// the markdown report must be byte-identical whatever the worker count.
func TestParallelReportByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	serial := report(t, "-parallel", "1")
	for _, workers := range []string{"2", "4", "8"} {
		if got := report(t, "-parallel", workers); got != serial {
			t.Errorf("-parallel %s output differs from -parallel 1:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, serial, got)
		}
	}
}

// TestReportSections checks the scorecard's shape.
func TestReportSections(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	out := report(t, "-parallel", "4")
	for _, want := range []string{
		"# Experiment report (size=test, seed=1)",
		"## Figure 2 — baseline BBV vs node count",
		"## Figure 4 — BBV vs BBV+DDV",
		"## §III-B — DDS exchange overhead",
		"| lu | 8 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "skipped") {
		t.Errorf("healthy run reported skipped cells:\n%s", out)
	}
}

// TestReportIsolatesUnknownWorkload checks that a failing cell is
// reported and skipped while the rest of the report still renders.
func TestReportIsolatesUnknownWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	var out, errOut bytes.Buffer
	args := []string{"-size", "test", "-interval", "40000", "-apps", "lu,nope", "-parallel", "4"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	s := out.String()
	if !strings.Contains(s, "skipped `nope") {
		t.Errorf("report does not mention the skipped workload:\n%s", s)
	}
	if !strings.Contains(s, "| lu | 8 |") {
		t.Errorf("healthy workload missing from report:\n%s", s)
	}
}

// TestAllCellsFailingReturnsError checks that a run producing no
// evaluation at all (every cell failed) exits non-zero, while partial
// failures (TestReportIsolatesUnknownWorkload) still succeed.
func TestAllCellsFailingReturnsError(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-size", "test", "-interval", "40000", "-apps", "nope"}, &out, &errOut)
	if err == nil {
		t.Error("all-cells-failed run returned nil")
	}
	if !strings.Contains(out.String(), "skipped `nope") {
		t.Errorf("report body missing skip lines:\n%s", out.String())
	}
}

// TestBadFlagsSurfaceErrors checks flag/size validation errors return
// instead of os.Exit, keeping the command testable.
func TestBadFlagsSurfaceErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-size", "galactic"}, &out, &errOut); err == nil {
		t.Error("unknown size accepted")
	}
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Error("unknown flag accepted")
	}
}
