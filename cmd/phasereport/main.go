// Command phasereport prints a per-interval phase timeline for one
// processor of a simulated run: interval index, assigned phase ID (under
// both detectors), CPI, DDS and locality — the raw material behind the
// CoV curves.
//
//	phasereport -app equake -procs 8 -proc 0 -thbbv 0.3 -thdds 0.2
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"dsmphase"
)

func main() {
	var (
		app      = flag.String("app", "lu", "workload: lu, fmm, art or equake")
		procsN   = flag.Int("procs", 8, "node count")
		procID   = flag.Int("proc", 0, "processor whose timeline to print")
		sizeArg  = flag.String("size", "test", "input scale: test, small or full")
		interval = flag.Uint64("interval", 0, "per-processor sampling interval (0 = 300k/procs)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		thBBV    = flag.Float64("thbbv", 0.3, "BBV Manhattan threshold")
		thDDS    = flag.Float64("thdds", 0.2, "DDS difference threshold")
		predict  = flag.Bool("predict", false, "also report phase-predictor accuracies")
	)
	flag.Parse()

	size, err := dsmphase.ParseSize(*sizeArg)
	if err != nil {
		fatal(err)
	}
	iv := *interval
	if iv == 0 {
		iv = 300_000 / uint64(*procsN)
	}
	rc := dsmphase.RunConfig{
		Workload:             *app,
		Size:                 size,
		Procs:                *procsN,
		IntervalInstructions: iv,
		Seed:                 *seed,
	}
	m, _, err := dsmphase.Simulate(rc)
	if err != nil {
		fatal(err)
	}
	byProc := m.RecordsByProc()
	if *procID < 0 || *procID >= len(byProc) {
		fatal(fmt.Errorf("processor %d out of range [0, %d)", *procID, len(byProc)))
	}
	recs := byProc[*procID]
	bbvIDs := dsmphase.ClassifyRecorded(dsmphase.DetectorBBV, 32, *thBBV, 0, recs)
	ddvIDs := dsmphase.ClassifyRecorded(dsmphase.DetectorBBVDDV, 32, *thBBV, *thDDS, recs)

	fmt.Printf("phase timeline: %s, %d procs, processor %d, thBBV=%.3f thDDS=%.3f\n\n",
		*app, *procsN, *procID, *thBBV, *thDDS)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "interval\tBBV phase\tDDV phase\tCPI\tDDS\tremote%\t")
	for i, r := range recs {
		total := r.LocalAccesses + r.RemoteAccesses
		remPct := 0.0
		if total > 0 {
			remPct = 100 * float64(r.RemoteAccesses) / float64(total)
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%.3f\t%.3f\t%.1f\t\n",
			i, bbvIDs[i], ddvIDs[i], r.CPI(), r.DDS, remPct)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}

	cpis := make([]float64, len(recs))
	for i, r := range recs {
		cpis[i] = r.CPI()
	}
	bCov, bN := dsmphase.IdentifierCoV(bbvIDs, cpis)
	dCov, dN := dsmphase.IdentifierCoV(ddvIDs, cpis)
	fmt.Printf("\nBBV:     %d phases, identifier CoV %.4f\n", bN, bCov)
	fmt.Printf("BBV+DDV: %d phases, identifier CoV %.4f\n", dN, dCov)

	if *predict {
		fmt.Println("\nnext-phase prediction accuracy (BBV+DDV phase IDs):")
		for _, p := range []dsmphase.Predictor{
			dsmphase.NewLastPhasePredictor(),
			dsmphase.NewMarkovPredictor(),
			dsmphase.NewRunLengthPredictor(0),
		} {
			fmt.Printf("  %-12s %.2f%%\n", p.Name(), 100*dsmphase.PredictorAccuracy(p, ddvIDs))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phasereport:", err)
	os.Exit(1)
}
