// Command wdlfuzz hunts the .wdl workload-spec space for scenarios
// that destabilize the phase detector, blow one coherence protocol up
// relative to the other, or break hard pipeline invariants.
//
//	wdlfuzz -budget 200 -seed 1 -out examples/fuzz_found
//	wdlfuzz -budget 40 -fail-on-invariant            # CI smoke gate
//	wdlfuzz -sweep 6 -format markdown                # spec-family CoV study
//	wdlfuzz -budget 100 my_seeds/*.wdl               # custom seed corpus
//
// Hunt mode (the default) runs a bounded deterministic campaign: each
// round mutates a corpus spec, compiles it through the real machine
// and coherence stack, scores it against the stable lu baseline, and
// shrinks every finding to a minimal reproducer written to -out. The
// same -seed and -budget always reproduce the same findings,
// byte-for-byte.
//
// Sweep mode (-sweep N) generates a family of N valid mutants from the
// seed corpus, registers them as dynamic workloads, and runs a CoV
// study over the whole family — plus the lu baseline for contrast —
// through the standard report encoders, turning the fuzzer into a
// generator of workload panels beyond the paper's fixed eight apps.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dsmphase"
	"dsmphase/internal/wdlfuzz"
	"dsmphase/internal/workloads"
)

func main() {
	if err := run(os.Stdout, os.Stderr, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wdlfuzz:", err)
		os.Exit(1)
	}
}

var defaultSeeds = []string{
	filepath.Join("examples", "adversarial_phases", "oscillate.wdl"),
	filepath.Join("examples", "adversarial_phases", "drift.wdl"),
}

func run(stdout, stderr *os.File, args []string) error {
	fs := flag.NewFlagSet("wdlfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		budget      = fs.Int("budget", 200, "mutants to evaluate in hunt mode")
		seed        = fs.Uint64("seed", 1, "campaign seed; same seed + budget reproduces identical findings")
		out         = fs.String("out", "fuzz_found", "directory minimized reproducer .wdl files are written to")
		interval    = fs.Uint64("interval", 2000, "detector probe sampling interval (instructions)")
		minIvals    = fs.Int("min-intervals", 8, "recorded intervals required to score a mutant")
		detFactor   = fs.Float64("detector-factor", 2, "flag specs whose BBV switch-rate reaches this multiple of the lu baseline")
		covFactor   = fs.Float64("cov-factor", 3, "flag specs whose per-phase CPI CoV reaches this multiple of the lu baseline")
		blowFactor  = fs.Float64("blowup-factor", 32, "flag specs whose dir-vs-ivy activity ratio reaches this")
		shrinkTries = fs.Int("shrink-tries", 200, "oracle calls spent minimizing each finding")
		failOnViol  = fs.Bool("fail-on-invariant", false, "exit nonzero if any hard invariant violation is found (CI gate)")
		sweep       = fs.Int("sweep", 0, "sweep mode: generate a family of N mutants and run a CoV study over it")
		format      = fs.String("format", "text", "sweep report encoder: text, csv, json or markdown")
		verbose     = fs.Bool("v", false, "log campaign progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	paths := fs.Args()
	if len(paths) == 0 {
		paths = defaultSeeds
	}
	var seeds []wdlfuzz.Seed
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		sw, err := workloads.ParseSpec(src)
		if err != nil {
			return fmt.Errorf("seed %s: %w", p, err)
		}
		seeds = append(seeds, wdlfuzz.Seed{Name: sw.Name(), Src: src})
	}

	if *sweep > 0 {
		return runSweep(stdout, stderr, seeds, *sweep, *seed, *interval, *format)
	}

	cfg := wdlfuzz.Config{
		Seed:           *seed,
		Budget:         *budget,
		Interval:       *interval,
		MinIntervals:   *minIvals,
		DetectorFactor: *detFactor,
		CoVFactor:      *covFactor,
		BlowupFactor:   *blowFactor,
		ShrinkTries:    *shrinkTries,
	}
	if *verbose {
		cfg.Log = func(f string, a ...any) { fmt.Fprintf(stderr, "wdlfuzz: "+f+"\n", a...) }
	}
	res, err := wdlfuzz.Run(seeds, cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "campaign: seed %d, budget %d: %d evaluated, %d invalid, %d skipped, %d findings (corpus %d)\n",
		*seed, *budget, res.Evaluated, res.Invalid, res.Skipped, len(res.Findings), res.Corpus)
	fmt.Fprintf(stdout, "baseline lu: switch-rate %.3f, cov %.3f over %d intervals\n",
		res.Baseline.SwitchRate, res.Baseline.CoV, res.Baseline.Intervals)
	violations := 0
	for _, f := range res.Findings {
		if f.Kind == "invariant" {
			violations++
		}
		fmt.Fprintf(stdout, "  [%s] %s: %s\n", f.Kind, f.Name, f.Detail)
		if *out != "" {
			if err := writeFinding(*out, f); err != nil {
				return err
			}
		}
	}
	if *out != "" && len(res.Findings) > 0 {
		fmt.Fprintf(stdout, "wrote %d reproducers to %s\n", len(res.Findings), *out)
	}
	if *failOnViol && violations > 0 {
		return fmt.Errorf("%d hard invariant violation(s) found", violations)
	}
	return nil
}

// writeFinding persists one minimized reproducer as indented JSON so
// the committed corpus stays diff-reviewable.
func writeFinding(dir string, f wdlfuzz.Finding) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var buf []byte
	var generic any
	if err := json.Unmarshal(f.Source, &generic); err == nil {
		if b, err := json.MarshalIndent(generic, "", "  "); err == nil {
			buf = append(b, '\n')
		}
	}
	if buf == nil {
		buf = f.Source
	}
	return os.WriteFile(filepath.Join(dir, f.Name+".wdl"), buf, 0o644)
}

// runSweep generates a family of valid mutants, registers them, and
// runs a detector CoV study over family + lu baseline.
func runSweep(stdout, stderr *os.File, seeds []wdlfuzz.Seed, n int, seed, interval uint64, format string) error {
	m := wdlfuzz.NewMutator(seed)
	apps := []string{"lu"}
	var family int
	for attempts := 0; family < n && attempts < 50*n; attempts++ {
		base := seeds[attempts%len(seeds)]
		src := base.Src
		for s := 0; s <= attempts%3; s++ {
			next, _, err := m.Mutate(src)
			if err != nil {
				break
			}
			src = next
		}
		if wdlfuzz.EstimateWork(src) > 4_000_000 {
			continue
		}
		name := fmt.Sprintf("%s-m%d", base.Name, family+1)
		renamed, err := wdlfuzz.RenameSpec(src, name)
		if err != nil {
			continue
		}
		sw, err := workloads.ParseSpec(renamed)
		if err != nil {
			continue
		}
		if len(wdlfuzz.CheckInvariants(sw, renamed)) > 0 {
			fmt.Fprintf(stderr, "wdlfuzz: sweep: %s violates invariants, skipping\n", name)
			continue
		}
		if err := sw.Register(); err != nil {
			continue
		}
		apps = append(apps, name)
		family++
	}
	if family == 0 {
		return fmt.Errorf("sweep: no valid mutants generated")
	}

	spec := dsmphase.NewSpec(
		dsmphase.WithApps(apps...),
		dsmphase.WithProcs(2),
		dsmphase.WithDetectors(dsmphase.DetectorBBV),
		dsmphase.WithSize(dsmphase.SizeTest),
		dsmphase.WithInterval(interval*2),
		dsmphase.WithSeed(1),
	)
	enc, err := dsmphase.NewEncoder(format, fmt.Sprintf("Spec-family CoV study (%d mutants, seed %d)", family, seed))
	if err != nil {
		return err
	}
	rep := spec.Run(dsmphase.EngineOptions{Parallel: 1})
	for _, r := range rep.CellResults() {
		if r.Err != nil {
			fmt.Fprintf(stderr, "wdlfuzz: sweep: skipping %s: %v\n", r.Cell.Label(), r.Err)
		}
	}
	return enc.Encode(stdout, rep)
}
