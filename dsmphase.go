// Package dsmphase reproduces İpek et al., "Dynamic Program Phase
// Detection in Distributed Shared-Memory Multiprocessors" (IPDPS NSF NGS
// Workshop, 2006): hardware phase detection for DSM multiprocessors.
//
// The package is the public facade over three layers:
//
//   - the phase detectors: the BBV (basic block vector) baseline of
//     Sherwood et al. and the paper's BBV+DDV extension, which augments
//     the code signature with a data distribution scalar (DDS) computed
//     from a frequency matrix, a distance matrix and a contention vector;
//   - a simulated DSM multiprocessor (out-of-order cores, two-level
//     caches, pluggable coherence — directory MSI by default, IVY-style
//     page coherence as the alternative — hypercube wormhole network,
//     interleaved SDRAM — the paper's Table I system);
//   - four synthetic workloads standing in for SPLASH-2 LU and FMM and
//     SPEC-OMP Art and Equake (Table II), plus the experiment harness
//     that regenerates the paper's CoV curves (Figures 2 and 4).
//
// Quick start — declare an experiment grid, run it, encode the report:
//
//	spec := dsmphase.NewSpec(
//		dsmphase.WithApps("lu"),
//		dsmphase.WithDetectors(dsmphase.DetectorBBV, dsmphase.DetectorBBVDDV),
//		dsmphase.WithSize(dsmphase.SizeTest),
//		dsmphase.WithReplicates(5), // mean ± 95% CI across seeds
//	)
//	report := spec.Run(dsmphase.EngineOptions{})
//	enc, _ := dsmphase.NewEncoder("text", "Figure 4")
//	enc.Encode(os.Stdout, report) // or "csv", "json", "markdown"
//
// The legacy one-shot helpers (RunCurve, Figure2, Figure4) remain as
// thin wrappers — their single-seed output is unchanged — but new code
// should build a Spec: it is the only surface with replicates,
// confidence bands, named ablation variants and pluggable encoders.
//
// See DESIGN.md for the system inventory; cmd/experiments regenerates
// the paper-versus-measured scorecard.
package dsmphase

import (
	"io"
	"time"

	"dsmphase/internal/coherence"
	"dsmphase/internal/core"
	"dsmphase/internal/harness"
	"dsmphase/internal/machine"
	"dsmphase/internal/predictor"
	"dsmphase/internal/stats"
	"dsmphase/internal/trace"
	"dsmphase/internal/tuning"
	"dsmphase/internal/workloads"
)

// ---- Phase detection (the paper's contribution) ----

// DetectorKind selects a phase detector.
type DetectorKind = core.DetectorKind

// Detector kinds: the BBV uniprocessor baseline, the paper's BBV+DDV,
// and the DDS-only ablation.
const (
	DetectorBBV    = core.DetectorBBV
	DetectorBBVDDV = core.DetectorBBVDDV
	DetectorDDS    = core.DetectorDDS
	DetectorWSS    = core.DetectorWSS
)

// WSSignature is an instruction working-set signature (the Dhodapkar-
// Smith baseline discussed in the paper's related work).
type WSSignature = core.WSSignature

// Accumulator is the BBV accumulator (hashed branch-PC counters).
type Accumulator = core.Accumulator

// FootprintTable classifies interval signatures with LRU replacement.
type FootprintTable = core.FootprintTable

// Detector is the per-processor online detector (accumulator + table).
type Detector = core.Detector

// IntervalSignature is one recorded sampling interval (BBV, DDS, CPI).
type IntervalSignature = core.IntervalSignature

// DistanceMatrix holds the pre-programmed D constants of the DDV.
type DistanceMatrix = core.DistanceMatrix

// FrequencyMatrix is the per-processor F counter matrix of the DDV.
type FrequencyMatrix = core.FrequencyMatrix

// DDSOptions selects ablation variants of the DDS computation.
type DDSOptions = core.DDSOptions

// OverheadEstimate models the DDS exchange bandwidth (paper §III-B).
type OverheadEstimate = core.OverheadEstimate

// NewAccumulator returns a BBV accumulator with the given counter count.
func NewAccumulator(size int) *Accumulator { return core.NewAccumulator(size) }

// NewDetector builds an online phase detector.
func NewDetector(kind DetectorKind, accSize, tableSize int, thBBV, thDDS float64) *Detector {
	return core.NewDetector(kind, accSize, tableSize, thBBV, thDDS)
}

// Manhattan returns the L1 distance between two signature vectors.
func Manhattan(a, b []float64) float64 { return core.Manhattan(a, b) }

// ComputeDDS evaluates the paper's data distribution scalar.
func ComputeDDS(i int, freq, contention []uint64, dist *DistanceMatrix, opt DDSOptions) (raw, normalized float64) {
	return core.ComputeDDS(i, freq, contention, dist, opt)
}

// ClassifyRecorded replays footprint-table classification over recorded
// signatures at the given thresholds.
func ClassifyRecorded(kind DetectorKind, tableSize int, thBBV, thDDS float64, sigs []IntervalSignature) []int {
	return core.ClassifyRecorded(kind, tableSize, thBBV, thDDS, sigs)
}

// PaperOverheadConfig returns the §III-B overhead parameters.
func PaperOverheadConfig() OverheadEstimate { return core.PaperOverheadConfig() }

// ---- Statistics and CoV curves ----

// CurvePoint is one operating point (phases, CoV) of a detector.
type CurvePoint = stats.CurvePoint

// Curve is a CoV curve (the paper's proposed evaluation tool).
type Curve = stats.Curve

// IdentifierCoV computes the interval-weighted per-phase CoV of CPI.
func IdentifierCoV(phases []int, cpis []float64) (cov float64, numPhases int) {
	return stats.IdentifierCoV(phases, cpis)
}

// LowerEnvelope reduces a sweep's point cloud to the presentation curve.
func LowerEnvelope(pts []CurvePoint) Curve { return stats.LowerEnvelope(pts) }

// ---- Simulation and experiments ----

// MachineConfig describes the simulated DSM system (Table I defaults
// from DefaultMachineConfig).
type MachineConfig = machine.Config

// Machine is one assembled DSM system bound to workload threads.
type Machine = machine.Machine

// Summary reports whole-run machine statistics.
type Summary = machine.Summary

// DefaultMachineConfig returns the Table I system for a node count.
func DefaultMachineConfig(procs int) MachineConfig { return machine.DefaultConfig(procs) }

// ---- Coherence protocols ----
//
// The machine's coherence engine is pluggable behind the
// coherence.Protocol seam: the line-granular directory-MSI engine
// (the Table I default) and an IVY-style page-granular DSM backend.
// Select a backend per simulation via RunConfig.Protocol or
// MachineConfig.Protocol, or sweep the axis with WithProtocols.
//
// Deprecated surface: the old positional constructor
// coherence.New(n, l1, l2, mem, net, costs, home) survives as a
// wrapper over the directory backend; new code should fill a
// coherence.Params and call coherence.NewDirectory or
// coherence.NewIVY (internal packages — from the facade, use the
// ProtocolKind axis instead of constructing engines directly).

// ProtocolKind selects a coherence backend; the zero value is the
// directory engine, so existing configurations are unchanged.
type ProtocolKind = coherence.Kind

// Protocol kinds: the paper's line-granular directory MSI and the
// IVY-style page-granular alternative.
const (
	ProtocolDirectory = coherence.KindDirectory
	ProtocolIVY       = coherence.KindIVY
)

// ParseProtocolKind converts "directory" or "ivy" to a ProtocolKind.
func ParseProtocolKind(name string) (ProtocolKind, error) { return coherence.ParseKind(name) }

// ProtocolKinds returns every registered coherence backend.
func ProtocolKinds() []ProtocolKind { return coherence.Kinds() }

// RunConfig describes one simulation (workload, size, node count).
type RunConfig = harness.RunConfig

// SweepConfig describes a threshold sweep.
type SweepConfig = harness.SweepConfig

// CurveResult is one labelled CoV curve.
type CurveResult = harness.CurveResult

// FigureConfig scales a figure reproduction.
type FigureConfig = harness.FigureConfig

// ---- Sharded experiment engine ----

// Cell is one independent experiment point of a Plan.
type Cell = harness.Cell

// Plan is an ordered list of experiment cells.
type Plan = harness.Plan

// CellResult is one cell's outcome, with per-cell error isolation.
type CellResult = harness.CellResult

// EngineOptions configures the parallel plan runner.
type EngineOptions = harness.Options

// Runner executes plans across a bounded goroutine pool.
type Runner = harness.Runner

// NewPlan returns an empty experiment plan.
func NewPlan() *Plan { return harness.NewPlan() }

// FigurePlan enumerates a figure's cells without running them.
func FigurePlan(fc FigureConfig, procs []int, kinds []DetectorKind) *Plan {
	return harness.FigurePlan(fc, procs, kinds)
}

// NewRunner returns a plan runner with the given options.
func NewRunner(opts EngineOptions) *Runner { return harness.NewRunner(opts) }

// RunPlan executes every cell of a plan across the worker pool and
// returns results in plan order; worker count never changes the output.
func RunPlan(p *Plan, opts EngineOptions) []CellResult { return harness.RunPlan(p, opts) }

// Curves extracts the successful curves of a result set, in plan order.
func Curves(results []CellResult) []CurveResult { return harness.Curves(results) }

// FirstError returns the first failed cell's error, or nil.
func FirstError(results []CellResult) error { return harness.FirstError(results) }

// DeriveSeed deterministically derives a per-cell seed for multi-seed
// sweeps, independent of enumeration order.
func DeriveSeed(base uint64, workload string, procs, replicate int) uint64 {
	return harness.DeriveSeed(base, workload, procs, replicate)
}

// NewETA returns a progress ETA estimator for Options.Progress hooks.
func NewETA() *ETA { return harness.NewETA() }

// ProgressPrinter returns a Progress callback printing per-cell
// completions with timing and an ETA; use one per Run.
func ProgressPrinter(w io.Writer) func(done, total int, r CellResult) {
	return harness.ProgressPrinter(w)
}

// ETA estimates remaining run time from completed cells.
type ETA = harness.ETA

// ---- Declarative experiments: Spec → Report ----

// Spec declaratively describes an experiment grid — workloads × procs ×
// detectors × replicates × named machine variants — compiled onto the
// sharded engine.
type Spec = harness.Spec

// SpecOption configures a Spec (see the With* constructors).
type SpecOption = harness.Option

// Variant is one named machine configuration of an ablation grid.
type Variant = harness.Variant

// Configuration identifies one aggregated grid point of a Spec.
type Configuration = harness.Configuration

// ConfigResult is one configuration's replicates, curves and band.
type ConfigResult = harness.ConfigResult

// Report is an executed Spec: per-configuration aggregated results.
type Report = harness.Report

// Band is a CoV curve with across-replicate 95% confidence bounds.
type Band = stats.Band

// BandPoint is one phase-budget point of a Band.
type BandPoint = stats.BandPoint

// Encoder renders a Report in one output format.
type Encoder = harness.Encoder

// NewSpec builds an experiment Spec from functional options.
func NewSpec(opts ...SpecOption) *Spec { return harness.NewSpec(opts...) }

// WithApps selects applications; a single panel alias ("paper",
// "extended") expands to its member list.
func WithApps(apps ...string) SpecOption { return harness.WithApps(apps...) }

// WithProcs selects processor counts.
func WithProcs(procs ...int) SpecOption { return harness.WithProcs(procs...) }

// WithDetectors selects the detectors swept over each simulation.
func WithDetectors(kinds ...DetectorKind) SpecOption { return harness.WithDetectors(kinds...) }

// WithSize selects the workload input scale.
func WithSize(size Size) SpecOption { return harness.WithSize(size) }

// WithInterval sets the total sampling interval (split across nodes).
func WithInterval(interval uint64) SpecOption { return harness.WithInterval(interval) }

// WithSeed sets the base seed; replicates derive from it via DeriveSeed.
func WithSeed(seed uint64) SpecOption { return harness.WithSeed(seed) }

// WithReplicates runs every configuration under n seeds and aggregates
// mean ± 95% CI bands.
func WithReplicates(n int) SpecOption { return harness.WithReplicates(n) }

// WithProtocols sweeps the grid over coherence backends; empty keeps
// the directory default.
func WithProtocols(kinds ...ProtocolKind) SpecOption { return harness.WithProtocols(kinds...) }

// WithTweak appends a named, cache-keyed machine variant (one ablation
// grid row).
func WithTweak(name, key string, tweak func(*MachineConfig)) SpecOption {
	return harness.WithTweak(name, key, tweak)
}

// WithoutBaseline drops the implicit baseline variant from the grid.
func WithoutBaseline() SpecOption { return harness.WithoutBaseline() }

// WithPredictors selects the phase predictors of a tuning grid by name
// ("last-phase", "markov", "run-length"); empty keeps the full registry.
func WithPredictors(names ...string) SpecOption { return harness.WithPredictors(names...) }

// WithControllers selects the tuning controllers of a tuning grid; empty
// keeps DefaultControllers.
func WithControllers(specs ...ControllerSpec) SpecOption {
	return harness.WithControllers(specs...)
}

// WithPhaseBudget bounds how many phases a tuning controller will trial;
// detector thresholds are picked from the CoV curve within this budget.
func WithPhaseBudget(budget float64) SpecOption { return harness.WithPhaseBudget(budget) }

// NewEncoder returns the named Report encoder ("text", "csv", "json",
// "markdown").
func NewEncoder(name, title string) (Encoder, error) { return harness.NewEncoder(name, title) }

// EncoderNames returns the registered encoder names.
func EncoderNames() []string { return harness.EncoderNames() }

// AppsPanel returns a named application panel ("paper", "extended",
// "adversarial").
func AppsPanel(name string) ([]string, bool) { return harness.AppsPanel(name) }

// ResolveApps expands a panel alias; empty resolves to the paper panel.
func ResolveApps(apps []string) []string { return harness.ResolveApps(apps) }

// Figure2Spec builds the declarative form of Figure 2.
func Figure2Spec(fc FigureConfig, procs []int) *Spec { return harness.Figure2Spec(fc, procs) }

// Figure4Spec builds the declarative form of Figure 4.
func Figure4Spec(fc FigureConfig, procs []int) *Spec { return harness.Figure4Spec(fc, procs) }

// Simulate runs one workload on the simulated machine.
func Simulate(rc RunConfig) (*Machine, Summary, error) { return harness.Simulate(rc) }

// RunCurve simulates one configuration and sweeps one detector over it.
func RunCurve(rc RunConfig, kind DetectorKind) (CurveResult, error) {
	return harness.RunCurve(rc, kind)
}

// SweepMachine sweeps a detector over an already-simulated machine, so
// several detectors can be compared on the identical execution.
func SweepMachine(m *Machine, rc RunConfig, kind DetectorKind, sum Summary) CurveResult {
	return harness.SweepMachine(m, rc, kind, sum)
}

// Sweep classifies recorded signatures across threshold settings.
func Sweep(recs [][]IntervalSignature, sc SweepConfig) []CurvePoint {
	return harness.Sweep(recs, sc)
}

// Figure2 regenerates the baseline BBV degradation curves (paper Fig. 2).
//
// Deprecated: Figure2 wraps the Spec/Report API with a single seed and
// the text table only; its output is unchanged. New code should run
// Figure2Spec(fc, procs) (plus WithReplicates via NewSpec) to get
// confidence bands and the other encoders.
func Figure2(fc FigureConfig, procs []int) ([]CurveResult, error) {
	return harness.Figure2(fc, procs)
}

// Figure4 regenerates the BBV versus BBV+DDV curves (paper Fig. 4).
//
// Deprecated: Figure4 wraps the Spec/Report API with a single seed and
// the text table only; its output is unchanged. New code should run
// Figure4Spec(fc, procs) to get confidence bands and the other
// encoders.
func Figure4(fc FigureConfig, procs []int) ([]CurveResult, error) {
	return harness.Figure4(fc, procs)
}

// WriteFigure prints a figure's curves in tabular form.
func WriteFigure(w io.Writer, title string, results []CurveResult) error {
	return harness.WriteFigure(w, title, results)
}

// CompareAtPhases reports each detector's CoV within a phase budget.
func CompareAtPhases(bbv, ddv CurveResult, maxPhases float64) (bbvCoV, ddvCoV float64) {
	return harness.CompareAtPhases(bbv, ddv, maxPhases)
}

// CompareAtCoV reports each detector's phase count at a CoV target.
func CompareAtCoV(bbv, ddv CurveResult, targetCoV float64) (bbvPhases, ddvPhases float64) {
	return harness.CompareAtCoV(bbv, ddv, targetCoV)
}

// ---- Workloads ----

// Size selects a workload input scale.
type Size = workloads.Size

// Input scales: seconds-scale tests, laptop-scale defaults, paper scale.
const (
	SizeTest  = workloads.SizeTest
	SizeSmall = workloads.SizeSmall
	SizeFull  = workloads.SizeFull
)

// Workload is one Table II application.
type Workload = workloads.Workload

// Workloads returns the registered applications in name order.
func Workloads() []Workload { return workloads.All() }

// WorkloadByName looks an application up by its Table II name.
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// ParseSize converts "test", "small" or "full" to a Size.
func ParseSize(name string) (Size, error) { return workloads.ParseSize(name) }

// ---- Declarative workloads: DSL specs and trace ingestion ----
//
// Beyond the built-in generators, workloads are definable at runtime:
// a JSON DSL describes phases of primitive access-pattern blocks
// (stride, share, random, tree, broadcast, reduction, stencil), and
// externally captured address traces replay through the same IR. Both
// register under a definition hash that the harness folds into plan
// fingerprints, so result caches and shard artifacts can never confuse
// two definitions sharing a name.

// SpecWorkload is a runtime-defined workload: a parsed DSL spec or an
// ingested address trace. Call its Register method to make it
// available to WorkloadByName, Specs and the experiment grids.
type SpecWorkload = workloads.SpecWorkload

// TraceAccess is one record of an externally captured per-processor
// address trace (see docs for the JSONL schema).
type TraceAccess = trace.Access

// ParseWorkloadSpec parses and validates a workload DSL spec held in
// memory; trace stanzas must carry inline records.
func ParseWorkloadSpec(src []byte) (*SpecWorkload, error) { return workloads.ParseSpec(src) }

// LoadWorkloadSpecFile reads and parses a spec file; trace file
// references resolve relative to the spec's directory and are inlined,
// so the result is self-contained.
func LoadWorkloadSpecFile(path string) (*SpecWorkload, error) { return workloads.LoadSpecFile(path) }

// WorkloadFromTrace builds a workload that replays a captured address
// trace, splitting per-processor streams at sync records into
// barrier-delimited phases.
func WorkloadFromTrace(name, desc string, recs []TraceAccess) (*SpecWorkload, error) {
	return workloads.FromTrace(name, desc, recs)
}

// WorkloadDefinitionHash returns the definition hash a dynamic
// workload registered under, or 0 for built-ins and unknown names.
func WorkloadDefinitionHash(name string) uint64 { return workloads.DefinitionHash(name) }

// ReadAccessTrace reads an address-trace JSONL stream.
func ReadAccessTrace(r io.Reader) ([]TraceAccess, error) { return trace.ReadAccessJSONL(r) }

// WriteAccessTrace writes an address-trace JSONL stream.
func WriteAccessTrace(w io.Writer, recs []TraceAccess) error { return trace.WriteAccessJSONL(w, recs) }

// ---- Phase prediction and tuning (the paper's pipeline context) ----

// Predictor forecasts the next interval's phase.
type Predictor = predictor.Predictor

// NewLastPhasePredictor predicts the current phase persists.
func NewLastPhasePredictor() Predictor { return predictor.NewLastPhase() }

// NewMarkovPredictor predicts via first-order transition counts.
func NewMarkovPredictor() Predictor { return predictor.NewMarkov() }

// NewRunLengthPredictor predicts via (phase, run length) histories.
func NewRunLengthPredictor(maxRun int) Predictor { return predictor.NewRunLength(maxRun) }

// PredictorAccuracy scores a predictor over a phase sequence.
func PredictorAccuracy(p Predictor, phases []int) float64 {
	return predictor.Accuracy(p, phases)
}

// TuningController runs per-phase trial-and-error reconfiguration.
type TuningController = tuning.Controller

// TuningOutcome summarizes an adaptive-tuning replay.
type TuningOutcome = tuning.Outcome

// NewTuningController returns a controller over numConfigs hardware
// configurations, measuring each for trialsPerConfig intervals.
func NewTuningController(numConfigs, trialsPerConfig int) *TuningController {
	return tuning.NewController(numConfigs, trialsPerConfig)
}

// ReplayTuning simulates the adaptive loop over a phase sequence.
func ReplayTuning(c *TuningController, phases []int, scores [][]float64) TuningOutcome {
	return tuning.Replay(c, phases, scores)
}

// AdaptiveLoop couples a phase predictor with a tuning controller — the
// complete detector → predictor → reconfiguration pipeline of §II. It
// is driven online, one interval at a time, through AdaptiveLoop.Step;
// Replay remains the offline convenience over recorded sequences.
type AdaptiveLoop = tuning.AdaptiveLoop

// AdaptiveOutcome extends TuningOutcome with prediction, win-rate and
// convergence accounting.
type AdaptiveOutcome = tuning.AdaptiveOutcome

// NewAdaptiveLoop builds the predictive tuning loop.
func NewAdaptiveLoop(c *TuningController, p Predictor) *AdaptiveLoop {
	return tuning.NewAdaptiveLoop(c, p)
}

// PredictorByName constructs a fresh predictor by registry name
// ("last-phase", "markov", "run-length").
func PredictorByName(name string) (Predictor, error) { return predictor.ByName(name) }

// PredictorNames returns the registered predictor names, sorted.
func PredictorNames() []string { return predictor.Names() }

// ---- Online adaptive tuning: Spec → TuningReport ----

// ControllerSpec names one tuning-controller configuration of a tuning
// grid (trial-and-error with TrialsPerConfig trials per setting).
type ControllerSpec = harness.ControllerSpec

// TuningConfiguration identifies one scorecard row: a grid
// Configuration crossed with a predictor and a controller.
type TuningConfiguration = harness.TuningConfiguration

// TuningValue is one replicate's scorecard metrics.
type TuningValue = harness.TuningValue

// TuningMetric is one scorecard metric banded across replicates.
type TuningMetric = harness.TuningMetric

// TuningConfigResult is one scorecard row with replicate-banded metrics.
type TuningConfigResult = harness.TuningConfigResult

// TuningReport is an executed tuning grid: win-rate, regret,
// convergence, accuracy and overhead per (variant, app, procs, detector,
// predictor, controller), each mean ± 95% CI across replicates. Build a
// Spec with WithPredictors/WithControllers/WithPhaseBudget and run
// Spec.RunTuning to produce one.
type TuningReport = harness.TuningReport

// TuningEncoder renders a TuningReport in one output format.
type TuningEncoder = harness.TuningEncoder

// NewTuningEncoder returns the named TuningReport encoder ("text",
// "csv", "json", "markdown").
func NewTuningEncoder(name, title string) (TuningEncoder, error) {
	return harness.NewTuningEncoder(name, title)
}

// TuningEncoderNames returns the registered tuning encoder names.
func TuningEncoderNames() []string { return harness.TuningEncoderNames() }

// DefaultControllers returns the default controller axis of a tuning
// grid.
func DefaultControllers() []ControllerSpec { return harness.DefaultControllers() }

// DefaultPhaseBudget is the default tuning phase budget.
const DefaultPhaseBudget = harness.DefaultPhaseBudget

// TuningHardwareConfigs is the number of hardware settings of the
// canonical tuning cost model.
const TuningHardwareConfigs = harness.TuningHardwareConfigs

// TuningCosts evaluates the canonical three-setting cost model over one
// processor's recorded intervals.
func TuningCosts(recs []IntervalSignature) [][]float64 { return harness.TuningCosts(recs) }

// OperatingPoint picks a detector's operating thresholds from its CoV
// curve: the lowest-CoV point within the phase budget.
func OperatingPoint(c Curve, phaseBudget float64) (thBBV, thDDS float64) {
	return harness.OperatingPoint(c, phaseBudget)
}

// CellHook is the engine's per-cell extension point (see
// harness.CellHook); the tuning driver is built on it.
type CellHook = harness.CellHook

// ---- Cross-machine sharding: Spec → shard artifacts → merged report ----
//
// A Spec's grid shards across machines: worker i runs
// Spec.RunShard(i, n) (or RunTuningShard) and serializes the results
// with NewShardGrid + WriteShardArtifact; the merge side reads the n
// artifacts, reassembles plan-ordered results with MergeShards, and
// Spec.Assemble / Spec.AssembleTuning reproduce the unsharded report
// byte for byte in every encoder format. See docs/MERGE_FORMAT.md.

// ShardFormat is the versioned format tag of a shard artifact.
const ShardFormat = harness.ShardFormat

// ShardArtifact is one worker's serialized shard output.
type ShardArtifact = harness.ShardArtifact

// ShardGrid is one experiment grid's shard within an artifact.
type ShardGrid = harness.ShardGrid

// ShardCell is one serialized cell result.
type ShardCell = harness.ShardCell

// TracedExtra is TraceHook's payload: recorded interval signatures
// alongside the inner hook payload.
type TracedExtra = harness.TracedExtra

// NewShardGrid captures one Spec's shard results as an artifact grid;
// tuning grids record their axes, and includeTrace serializes interval
// records captured via TraceHook.
func NewShardGrid(name string, s *Spec, results []CellResult, tuning, includeTrace bool) (ShardGrid, error) {
	return harness.NewShardGrid(name, s, results, tuning, includeTrace)
}

// WriteShardArtifact serializes a shard artifact as versioned JSON.
func WriteShardArtifact(w io.Writer, a *ShardArtifact) error {
	return harness.WriteShardArtifact(w, a)
}

// ReadShardArtifact deserializes and version-checks a shard artifact.
func ReadShardArtifact(r io.Reader) (*ShardArtifact, error) {
	return harness.ReadShardArtifact(r)
}

// WriteShardArtifactFile serializes a shard artifact to a file path.
func WriteShardArtifactFile(path string, a *ShardArtifact) error {
	return harness.WriteShardArtifactFile(path, a)
}

// ReadShardArtifactFile reads and version-checks one artifact file.
func ReadShardArtifactFile(path string) (*ShardArtifact, error) {
	return harness.ReadShardArtifactFile(path)
}

// ReadShardArtifactFiles reads a shard-artifact set (e.g. a -merge
// argument list).
func ReadShardArtifactFiles(paths []string) ([]*ShardArtifact, error) {
	return harness.ReadShardArtifactFiles(paths)
}

// MergeShards validates a complete shard set and reassembles the named
// grid's plan-ordered cell results, ready for Spec.Assemble or
// Spec.AssembleTuning.
func MergeShards(s *Spec, name string, arts []*ShardArtifact) ([]CellResult, error) {
	return harness.MergeShards(s, name, arts)
}

// ParseShard parses a "-shard i/n" flag value.
func ParseShard(v string) (shard, of int, err error) { return harness.ParseShard(v) }

// TraceHook wraps a CellHook so every cell's payload also carries the
// simulation's recorded interval signatures (persisted by shard
// artifacts when trace capture is enabled).
func TraceHook(inner CellHook) CellHook { return harness.TraceHook(inner) }

// UnwrapExtra strips a TracedExtra wrapper from a cell payload.
func UnwrapExtra(extra any) any { return harness.UnwrapExtra(extra) }

// SeededProgressPrinter is ProgressPrinter with an ETA prior taken from
// a previous run's persisted per-cell timings (see
// ShardArtifact.MeanCellWall).
func SeededProgressPrinter(w io.Writer, perCell time.Duration, cells int) func(done, total int, r CellResult) {
	return harness.SeededProgressPrinter(w, perCell, cells)
}

// ---- Structured progress events ----

// ProgressEvent is one structured per-cell progress notification —
// the shared source behind the CLI's stderr printer and the
// coordinator service's SSE stream.
type ProgressEvent = harness.ProgressEvent

// EventSink consumes ProgressEvents.
type EventSink = harness.EventSink

// ProgressEvents adapts an EventSink into an EngineOptions.Progress
// callback, with an optional seeded ETA prior.
func ProgressEvents(sink EventSink, perCell time.Duration, cells int) func(done, total int, r CellResult) {
	return harness.ProgressEvents(sink, perCell, cells)
}

// ---- Named experiment grids ----

// GridParams are the wire-serializable Spec parameters every named
// grid shares (see BuildGrid).
type GridParams = harness.GridParams

// NamedGrid is one registry entry: a grid name bound to its compiled
// Spec.
type NamedGrid = harness.NamedGrid

// BuildGrid compiles a named experiment grid ("figure2", "figure4",
// "ablation", "tuning") under the given parameters; the same (name,
// params) pair yields the same plan fingerprint on every machine.
func BuildGrid(name string, gp GridParams) (NamedGrid, error) { return harness.BuildGrid(name, gp) }

// GridNames returns the registered grid names, sorted.
func GridNames() []string { return harness.GridNames() }

// ---- Per-cell shard streaming (durability + resume) ----

// CellStreamFormat is the versioned format tag of a cell stream.
const CellStreamFormat = harness.CellStreamFormat

// CellStream appends completed cells to a `.cells.jsonl` stream file
// as they finish, so a run that dies mid-shard resumes from its last
// completed cell.
type CellStream = harness.CellStream

// CellStreamHeader identifies the plan a grid's streamed cells belong
// to.
type CellStreamHeader = harness.CellStreamHeader

// StreamedGrid is one grid's recovered stream.
type StreamedGrid = harness.StreamedGrid

// CellStreamPath derives the stream sibling's path from an artifact
// path.
func CellStreamPath(artifact string) string { return harness.CellStreamPath(artifact) }

// OpenCellStream opens (creating or appending) a stream file.
func OpenCellStream(path string) (*CellStream, error) { return harness.OpenCellStream(path) }

// ReadCellStream recovers a stream file's grids (tolerating a torn
// tail).
func ReadCellStream(path string) (map[string]*StreamedGrid, error) {
	return harness.ReadCellStream(path)
}
