package dsmphase_test

import (
	"bytes"
	"strings"
	"testing"

	"dsmphase"
)

// The facade tests exercise the public API exactly as a downstream user
// would, end to end.

func quickRC(procs int) dsmphase.RunConfig {
	return dsmphase.RunConfig{
		Workload:             "lu",
		Size:                 dsmphase.SizeTest,
		Procs:                procs,
		IntervalInstructions: 20_000 / uint64(procs),
		Seed:                 1,
	}
}

func TestPublicQuickstartFlow(t *testing.T) {
	bbv, err := dsmphase.RunCurve(quickRC(4), dsmphase.DetectorBBV)
	if err != nil {
		t.Fatal(err)
	}
	ddv, err := dsmphase.RunCurve(quickRC(4), dsmphase.DetectorBBVDDV)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dsmphase.WriteFigure(&buf, "quickstart", []dsmphase.CurveResult{bbv, ddv}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BBV+DDV") {
		t.Error("output missing the DDV curve")
	}
	b, d := dsmphase.CompareAtPhases(bbv, ddv, 25)
	if d > b*1.1 {
		t.Errorf("public API: DDV (%v) should not be worse than BBV (%v)", d, b)
	}
}

func TestPublicDetectorAPI(t *testing.T) {
	det := dsmphase.NewDetector(dsmphase.DetectorBBVDDV, 32, 32, 0.2, 0.3)
	for i := 0; i < 100; i++ {
		det.Acc.Instruction()
		det.Acc.Branch(0x40)
	}
	p1, matched := det.EndInterval(1.0)
	if matched {
		t.Error("first interval must allocate")
	}
	for i := 0; i < 100; i++ {
		det.Acc.Instruction()
		det.Acc.Branch(0x40)
	}
	p2, matched := det.EndInterval(1.01)
	if !matched || p2 != p1 {
		t.Errorf("repeat interval = (%d, %v), want (%d, true)", p2, matched, p1)
	}
}

func TestPublicWorkloadRegistry(t *testing.T) {
	ws := dsmphase.Workloads()
	if len(ws) != 10 {
		t.Fatalf("got %d workloads, want Table II's four plus the ocean/radix/barnes/water extensions and the two adversarial kernels", len(ws))
	}
	w, err := dsmphase.WorkloadByName("equake")
	if err != nil || w.Name() != "equake" {
		t.Errorf("WorkloadByName = (%v, %v)", w, err)
	}
	sz, err := dsmphase.ParseSize("small")
	if err != nil || sz != dsmphase.SizeSmall {
		t.Errorf("ParseSize = (%v, %v)", sz, err)
	}
}

func TestPublicOverheadModel(t *testing.T) {
	o := dsmphase.PaperOverheadConfig()
	bw := o.BandwidthPerProcessor()
	if bw < 150e3 || bw > 170e3 {
		t.Errorf("overhead bandwidth = %v, want the paper's ~160kB/s", bw)
	}
}

func TestPublicPredictorAndTuning(t *testing.T) {
	m, _, err := dsmphase.Simulate(quickRC(2))
	if err != nil {
		t.Fatal(err)
	}
	recs := m.RecordsByProc()[0]
	ids := dsmphase.ClassifyRecorded(dsmphase.DetectorBBVDDV, 32, 0.2, 0.3, recs)
	acc := dsmphase.PredictorAccuracy(dsmphase.NewMarkovPredictor(), ids)
	if acc < 0 || acc > 1 {
		t.Errorf("accuracy = %v", acc)
	}
	scores := [][]float64{make([]float64, len(ids)), make([]float64, len(ids))}
	for i := range ids {
		scores[0][i], scores[1][i] = 1, 2
	}
	out := dsmphase.ReplayTuning(dsmphase.NewTuningController(2, 1), ids, scores)
	if out.Intervals != len(ids) {
		t.Errorf("replay covered %d intervals, want %d", out.Intervals, len(ids))
	}
}

func TestPublicMachineConfigIsTableI(t *testing.T) {
	cfg := dsmphase.DefaultMachineConfig(8)
	if cfg.CPU.ClockHz != 2e9 || cfg.CPU.Width != 6 {
		t.Error("core parameters deviate from Table I")
	}
	if cfg.L2.SizeBytes != 2<<20 || cfg.L2.Ways != 8 {
		t.Error("L2 parameters deviate from Table I")
	}
	if cfg.IntervalInstructions != 3_000_000/8 {
		t.Errorf("interval = %d, want the paper's 3M/n", cfg.IntervalInstructions)
	}
}
