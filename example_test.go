package dsmphase_test

import (
	"bytes"
	"fmt"

	"dsmphase"
)

// tinySpec is the seconds-scale grid the examples run: one workload,
// two processors, both detectors, deterministic seed.
func tinySpec() *dsmphase.Spec {
	return dsmphase.NewSpec(
		dsmphase.WithApps("lu"),
		dsmphase.WithProcs(2),
		dsmphase.WithDetectors(dsmphase.DetectorBBV, dsmphase.DetectorBBVDDV),
		dsmphase.WithSize(dsmphase.SizeTest),
		dsmphase.WithInterval(20_000),
	)
}

// Declare a grid, run it, and inspect the aggregated report. The
// simulator is deterministic, so the same Spec always produces the
// same Report — at any worker count.
func ExampleNewSpec() {
	report := tinySpec().Run(dsmphase.EngineOptions{Parallel: 2})
	fmt.Println("configurations:", len(report.Configs))
	for _, c := range report.Configs {
		fmt.Printf("%s: curve with %d points\n", c.Config.Label(), len(c.Band.Points))
	}
	// Output:
	// configurations: 2
	// lu 2P BBV: curve with 24 points
	// lu 2P BBV+DDV: curve with 31 points
}

// Shard a Spec across workers and merge the artifacts: the merged
// report is byte-identical to the unsharded run in every encoder
// format. In production each shard runs on its own machine
// (cmd/experiments -shard i/n); here both run in-process.
func ExampleMergeShards() {
	spec := tinySpec()

	// Each worker runs its deterministic partition and serializes it.
	var artifacts []*dsmphase.ShardArtifact
	for shard := 0; shard < 2; shard++ {
		results := spec.RunShard(shard, 2, dsmphase.EngineOptions{Parallel: 2})
		grid, err := dsmphase.NewShardGrid("example", spec, results, false, false)
		if err != nil {
			fmt.Println(err)
			return
		}
		var wire bytes.Buffer // stands in for the file shipped between machines
		art := &dsmphase.ShardArtifact{Format: dsmphase.ShardFormat, Shard: shard, Of: 2,
			Grids: []dsmphase.ShardGrid{grid}}
		if err := dsmphase.WriteShardArtifact(&wire, art); err != nil {
			fmt.Println(err)
			return
		}
		back, err := dsmphase.ReadShardArtifact(&wire)
		if err != nil {
			fmt.Println(err)
			return
		}
		artifacts = append(artifacts, back)
	}

	// The merge side reassembles plan-ordered results and aggregates
	// them through the same path Run uses.
	results, err := dsmphase.MergeShards(spec, "example", artifacts)
	if err != nil {
		fmt.Println(err)
		return
	}
	merged := spec.Assemble(results)

	enc, _ := dsmphase.NewEncoder("csv", "")
	var fromShards, unsharded bytes.Buffer
	enc.Encode(&fromShards, merged)
	enc.Encode(&unsharded, spec.Run(dsmphase.EngineOptions{Parallel: 2}))
	fmt.Println("byte-identical:", bytes.Equal(fromShards.Bytes(), unsharded.Bytes()))
	// Output:
	// byte-identical: true
}

// Replicate seeds derive from the cell's coordinates, not from the
// enumeration order, so adding rows to a grid never changes any other
// row's seeds.
func ExampleDeriveSeed() {
	fmt.Println(dsmphase.DeriveSeed(1, "lu", 8, 1) == dsmphase.DeriveSeed(1, "lu", 8, 1))
	fmt.Println(dsmphase.DeriveSeed(1, "lu", 8, 1) == dsmphase.DeriveSeed(1, "lu", 8, 2))
	// Output:
	// true
	// false
}

// ParseShard validates a "-shard i/n" flag value.
func ExampleParseShard() {
	shard, of, err := dsmphase.ParseShard("1/4")
	fmt.Println(shard, of, err)
	_, _, err = dsmphase.ParseShard("4/4")
	fmt.Println(err != nil)
	// Output:
	// 1 4 <nil>
	// true
}

// OperatingPoint reads a CoV curve the way the paper prescribes: the
// lowest-CoV point within the phase budget.
func ExampleOperatingPoint() {
	curve := dsmphase.Curve{Points: []dsmphase.CurvePoint{
		{Phases: 4, CoV: 0.30, Threshold: 1.2, ThresholdDDS: 0.1},
		{Phases: 8, CoV: 0.10, Threshold: 0.6, ThresholdDDS: 0.2},
		{Phases: 30, CoV: 0.05, Threshold: 0.1, ThresholdDDS: 0.3},
	}}
	thBBV, thDDS := dsmphase.OperatingPoint(curve, 10) // budget excludes the 30-phase point
	fmt.Println(thBBV, thDDS)
	// Output:
	// 0.6 0.2
}
