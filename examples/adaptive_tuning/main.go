// adaptive_tuning: close the paper's loop — detector → reconfiguration —
// and show that better phase detection buys better tuning.
//
// The scenario: hardware with three remote-access aggressiveness
// settings (think prefetch depth / weak-ordering window). Which setting
// wins depends on the interval's data distribution: conservative for
// local-heavy intervals, aggressive for remote-heavy ones, balanced in
// between. Each node's controller trials settings per detected phase and
// locks in the winner, so the money question is whether the detector's
// phases separate local-heavy from remote-heavy execution. BBV phases
// often do not (same code, different data) — BBV+DDV phases do.
//
// Thresholds are chosen from the CoV curve, exactly as the paper
// prescribes: sweep, then pick the operating point with the lowest CoV
// within the phase (tuning) budget.
package main

import (
	"fmt"
	"log"

	"dsmphase"
)

const (
	procs       = 8
	phaseBudget = dsmphase.DefaultPhaseBudget // max phases a controller will tune
)

func main() {
	rc := dsmphase.RunConfig{
		Workload:             "lu",
		Size:                 dsmphase.SizeSmall,
		Procs:                procs,
		IntervalInstructions: 100_000 / procs,
		Seed:                 1,
	}
	m, sum, err := dsmphase.Simulate(rc)
	if err != nil {
		log.Fatal(err)
	}
	byProc := m.RecordsByProc()

	// Operating points from the CoV curves (the paper's tool):
	// the lowest-CoV point within the phase budget.
	bbvCurve := dsmphase.SweepMachine(m, rc, dsmphase.DetectorBBV, sum)
	ddvCurve := dsmphase.SweepMachine(m, rc, dsmphase.DetectorBBVDDV, sum)
	bbvTh, _ := dsmphase.OperatingPoint(bbvCurve.Curve, phaseBudget)
	ddvTh, ddvThDDS := dsmphase.OperatingPoint(ddvCurve.Curve, phaseBudget)

	fmt.Println("phase-adaptive tuning replay (LU, 8 nodes, 3 hardware settings,")
	fmt.Printf("one controller per node, phase budget %.0f; lower score is better):\n\n", phaseBudget)
	run("single phase", byProc, dsmphase.DetectorBBV, 2.0, 0)
	run("BBV phases", byProc, dsmphase.DetectorBBV, bbvTh, 0)
	run("BBV+DDV phases", byProc, dsmphase.DetectorBBVDDV, ddvTh, ddvThDDS)
	fmt.Println()
	fmt.Println("BBV+DDV phases are homogeneous in data distribution, so each controller")
	fmt.Println("locks in the right setting — and ends nearer the oracle even though the")
	fmt.Println("extra phases cost more trial intervals. Coarser phases mix distribution")
	fmt.Println("levels and settle for a compromise setting.")
}

// run replays tuning with one controller per node and prints aggregate
// results. The three hardware settings come from the canonical cost
// model (dsmphase.TuningCosts): settings matched to data-distribution
// levels, so an interval's cost rises with the mismatch between its
// normalized DDS and the setting's target — exactly the variable the
// BBV cannot see.
func run(name string, byProc [][]dsmphase.IntervalSignature, kind dsmphase.DetectorKind, thBBV, thDDS float64) {
	var total dsmphase.TuningOutcome
	for _, recs := range byProc {
		ids := dsmphase.ClassifyRecorded(kind, 32, thBBV, thDDS, recs)
		out := dsmphase.ReplayTuning(
			dsmphase.NewTuningController(dsmphase.TuningHardwareConfigs, 1),
			ids, dsmphase.TuningCosts(recs))
		total.Intervals += out.Intervals
		total.TuningIntervals += out.TuningIntervals
		total.TotalScore += out.TotalScore
		total.OracleScore += out.OracleScore
	}
	gap := 100 * (total.TotalScore - total.OracleScore) / total.OracleScore
	fmt.Printf("%-18s intervals=%-5d tuning=%-4d (%4.1f%%)  score=%9.2f  vs oracle %+.2f%%\n",
		name, total.Intervals, total.TuningIntervals, 100*total.Overhead(), total.TotalScore, gap)
}
