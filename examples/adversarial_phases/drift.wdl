{
  "name": "drift",
  "description": "adversarial gradual drift: every phase execution grows and shifts the working set a little, so intervals never quite repeat and phase tables fragment",
  "scale": {"small": 2, "full": 4},
  "phases": [
    {"repeat": 32, "blocks": [
      {"kind": "stride", "count": 256, "count_step": 24, "offset_step": 7, "wrap": 2048,
       "int_ops": 2, "store": true},
      {"kind": "random", "count": 32, "count_step": 8, "span": 4096, "store_every": 3,
       "spread": true, "salt_step": 1}
    ]}
  ]
}
