{
  "name": "oscillate",
  "description": "adversarial rapid oscillation: compute and shared-write bursts alternate at roughly the sampling interval, so a footprint table keeps flipping between two signatures",
  "repeat": 12,
  "scale": {"small": 2, "full": 4},
  "phases": [
    {"blocks": [
      {"kind": "stride", "count": 384, "wrap": 1024, "int_ops": 2, "fp_ops": 1, "store": true,
       "region": {"home": -1, "base": "0x1000000", "elem_bytes": 8}}
    ]},
    {"blocks": [
      {"kind": "share", "count": 96, "degree": 2, "int_ops": 1},
      {"kind": "random", "count": 128, "span": 4096, "store_every": 4, "spread": true, "salt_step": 1}
    ]}
  ]
}
