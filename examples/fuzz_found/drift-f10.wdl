{
  "description": "adversarial gradual drift: every phase execution grows and shifts the working set a little, so intervals never quite repeat and phase tables fragment",
  "name": "drift-f10",
  "phases": [
    {
      "blocks": [
        {
          "count": 32,
          "count_step": 9,
          "kind": "random",
          "span": 1
        },
        {
          "count": 32,
          "count_step": 4,
          "kind": "random",
          "span": 1
        }
      ],
      "repeat": 32
    }
  ]
}
