{
  "description": "adversarial gradual drift: every phase execution grows and shifts the working set a little, so intervals never quite repeat and phase tables fragment",
  "name": "drift-f13",
  "phases": [
    {
      "blocks": [
        {
          "count_step": 1,
          "kind": "random",
          "span": 512,
          "spread": true,
          "store_every": 1
        }
      ],
      "repeat": 32
    }
  ]
}
