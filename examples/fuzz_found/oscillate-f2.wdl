{
  "description": "adversarial rapid oscillation: compute and shared-write bursts alternate at roughly the sampling interval, so a footprint table keeps flipping between two signatures",
  "name": "oscillate-f2",
  "phases": [
    {
      "blocks": [
        {
          "count": 192,
          "fp_ops": 1,
          "int_ops": 2,
          "kind": "stride",
          "store": true
        }
      ]
    },
    {
      "blocks": [
        {
          "count": 128,
          "kind": "random",
          "span": 1
        }
      ]
    }
  ],
  "repeat": 12
}
