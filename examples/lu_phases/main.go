// lu_phases: dissect why the BBV baseline breaks on a DSM machine.
//
// LU's trailing-submatrix update runs the same code every step, but the
// blocks it reads live in a different row/column of the processor grid
// each step — so intervals with near-identical basic-block vectors have
// very different memory costs. This example prints processor 0's
// interval timeline under both detectors, then scores next-phase
// predictors over the resulting phase sequences (the paper's suggested
// future work).
package main

import (
	"fmt"
	"log"

	"dsmphase"
)

func main() {
	const procs = 8
	rc := dsmphase.RunConfig{
		Workload:             "lu",
		Size:                 dsmphase.SizeTest,
		Procs:                procs,
		IntervalInstructions: 40_000 / procs,
		Seed:                 1,
	}
	m, _, err := dsmphase.Simulate(rc)
	if err != nil {
		log.Fatal(err)
	}
	recs := m.RecordsByProc()[0]
	const thBBV, thDDS = 0.3, 0.15
	bbvIDs := dsmphase.ClassifyRecorded(dsmphase.DetectorBBV, 32, thBBV, 0, recs)
	ddvIDs := dsmphase.ClassifyRecorded(dsmphase.DetectorBBVDDV, 32, thBBV, thDDS, recs)

	fmt.Println("processor 0 interval timeline (LU, 8 nodes):")
	fmt.Printf("%-9s %-10s %-10s %-8s %-8s %-8s\n", "interval", "BBV-phase", "DDV-phase", "CPI", "DDS", "remote%")
	for i, r := range recs {
		tot := r.LocalAccesses + r.RemoteAccesses
		rem := 0.0
		if tot > 0 {
			rem = 100 * float64(r.RemoteAccesses) / float64(tot)
		}
		fmt.Printf("%-9d %-10d %-10d %-8.3f %-8.3f %-8.1f\n", i, bbvIDs[i], ddvIDs[i], r.CPI(), r.DDS, rem)
	}

	cpis := make([]float64, len(recs))
	for i, r := range recs {
		cpis[i] = r.CPI()
	}
	bCov, bN := dsmphase.IdentifierCoV(bbvIDs, cpis)
	dCov, dN := dsmphase.IdentifierCoV(ddvIDs, cpis)
	fmt.Printf("\nBBV:     %2d phases, identifier CoV %.4f\n", bN, bCov)
	fmt.Printf("BBV+DDV: %2d phases, identifier CoV %.4f\n", dN, dCov)
	fmt.Println("\nintervals sharing a BBV phase but split by the DDV differ in DDS —")
	fmt.Println("the data-distribution effect the BBV is structurally blind to.")

	fmt.Println("\nnext-phase prediction over the BBV+DDV phase sequence:")
	for _, mk := range []func() dsmphase.Predictor{
		dsmphase.NewLastPhasePredictor,
		dsmphase.NewMarkovPredictor,
		func() dsmphase.Predictor { return dsmphase.NewRunLengthPredictor(0) },
	} {
		p := mk()
		fmt.Printf("  %-12s %5.1f%%\n", p.Name(), 100*dsmphase.PredictorAccuracy(p, ddvIDs))
	}
}
