// Quickstart: simulate one parallel application on the DSM machine,
// sweep both phase detectors over the recorded intervals, and print the
// paper's headline comparison — the CoV each detector achieves within a
// fixed phase (tuning) budget.
package main

import (
	"fmt"
	"log"
	"os"

	"dsmphase"
)

func main() {
	rc := dsmphase.RunConfig{
		Workload:             "lu",
		Size:                 dsmphase.SizeTest,
		Procs:                8,
		IntervalInstructions: 300_000 / 8,
		Seed:                 1,
	}

	fmt.Println("simulating SPLASH-2 LU on an 8-node DSM multiprocessor...")
	m, sum, err := dsmphase.Simulate(rc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d instructions, %.0f cycles, IPC %.2f, %d sampling intervals\n\n",
		sum.Instructions, sum.Cycles, sum.IPC, sum.Intervals)

	// Sweep both detectors over the identical execution, as in the paper.
	bbv := dsmphase.SweepMachine(m, rc, dsmphase.DetectorBBV, sum)
	ddv := dsmphase.SweepMachine(m, rc, dsmphase.DetectorBBVDDV, sum)

	if err := dsmphase.WriteFigure(os.Stdout, "CoV curves (plot CoV vs phases, log y)",
		[]dsmphase.CurveResult{bbv, ddv}); err != nil {
		log.Fatal(err)
	}

	for _, budget := range []float64{5, 10, 25} {
		b, d := dsmphase.CompareAtPhases(bbv, ddv, budget)
		fmt.Printf("within %2.0f phases:  BBV CoV %.4f   BBV+DDV CoV %.4f\n", budget, b, d)
	}
}
