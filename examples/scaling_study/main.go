// scaling_study: the paper's two system-size arguments in one run.
//
// First, Figure 2's observation: the uniprocessor BBV detector's phase
// quality degrades as the node count grows, because inter-thread
// interactions and data distribution — invisible to a code signature —
// dominate more of the CPI. Second, §III-B's overhead estimate: the DDS
// exchange bandwidth grows as n(n−1) per interval yet stays a trivial
// fraction of a memory controller's capacity.
package main

import (
	"fmt"
	"log"

	"dsmphase"
)

func main() {
	fmt.Println("BBV degradation with system size (fmm + lu, small inputs):")
	fmt.Printf("%-8s %-6s %-14s %-14s %-12s\n", "app", "procs", "CoV@10phases", "CoV@25phases", "remote%")
	for _, app := range []string{"fmm", "lu"} {
		for _, procs := range []int{2, 8, 32} {
			rc := dsmphase.RunConfig{
				Workload:             app,
				Size:                 dsmphase.SizeSmall,
				Procs:                procs,
				IntervalInstructions: 300_000 / uint64(procs),
				Seed:                 1,
			}
			m, sum, err := dsmphase.Simulate(rc)
			if err != nil {
				log.Fatal(err)
			}
			bbv := dsmphase.SweepMachine(m, rc, dsmphase.DetectorBBV, sum)
			var loc, rem uint64
			for _, r := range m.Records() {
				loc += r.LocalAccesses
				rem += r.RemoteAccesses
			}
			fmt.Printf("%-8s %-6d %-14.4f %-14.4f %-12.1f\n",
				app, procs, bbv.Curve.CoVAt(10), bbv.Curve.CoVAt(25),
				100*float64(rem)/float64(loc+rem))
		}
	}

	fmt.Println("\nDDS exchange overhead (paper §III-B):")
	fmt.Printf("%-8s %-18s %-22s\n", "procs", "bytes/interval", "bandwidth/processor")
	for _, procs := range []int{8, 16, 32, 64} {
		o := dsmphase.PaperOverheadConfig()
		o.Processors = procs
		fmt.Printf("%-8d %-18.0f %8.1f kB/s  (%.4f%% of controller)\n",
			procs, o.BytesPerInterval(), o.BandwidthPerProcessor()/1e3,
			100*o.FractionOfController())
	}
	fmt.Println("\nthe paper's quoted figure: ~160 kB/s at 32 processors, under 0.15% of peak.")
}
