// scaling_study: the paper's two system-size arguments in one run.
//
// First, Figure 2's observation: the uniprocessor BBV detector's phase
// quality degrades as the node count grows, because inter-thread
// interactions and data distribution — invisible to a code signature —
// dominate more of the CPI. Second, §III-B's overhead estimate: the DDS
// exchange bandwidth grows as n(n−1) per interval yet stays a trivial
// fraction of a memory controller's capacity.
//
// The study is one declarative Spec — two applications × three node
// counts × -replicates seeds — run on the sharded experiment engine, so
// the degradation claim carries a 95% confidence interval instead of a
// single seed's luck. -parallel bounds the worker pool and the table is
// identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"dsmphase"
)

func main() {
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "engine worker pool size")
	replicates := flag.Int("replicates", 3, "seeds per configuration")
	flag.Parse()

	spec := dsmphase.NewSpec(
		dsmphase.WithApps("fmm", "lu"),
		dsmphase.WithProcs(2, 8, 32),
		dsmphase.WithDetectors(dsmphase.DetectorBBV),
		dsmphase.WithSize(dsmphase.SizeSmall),
		dsmphase.WithInterval(300_000),
		dsmphase.WithSeed(1),
		dsmphase.WithReplicates(*replicates),
	)
	report := spec.Run(dsmphase.EngineOptions{Parallel: *parallel})

	fmt.Printf("BBV degradation with system size (fmm + lu, small inputs, %d seeds):\n", *replicates)
	fmt.Printf("%-8s %-6s %-22s %-22s %-12s\n", "app", "procs", "CoV@10 (95% CI)", "CoV@25 (95% CI)", "remote%")
	for _, c := range report.Configs {
		if err := c.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "scaling_study: skipping %s: %v\n", c.Config.Label(), err)
			continue
		}
		// The remote fraction barely varies with the seed; the first
		// replicate's summary stands in for the configuration.
		fmt.Printf("%-8s %-6d %7.4f ± %-12.4f %7.4f ± %-12.4f %-12.1f\n",
			c.Config.App, c.Config.Procs,
			c.Band.MeanAt(10), c.Band.HalfAt(10),
			c.Band.MeanAt(25), c.Band.HalfAt(25),
			100*c.Curves[0].Summary.RemoteFraction())
	}

	fmt.Println("\nDDS exchange overhead (paper §III-B):")
	fmt.Printf("%-8s %-18s %-22s\n", "procs", "bytes/interval", "bandwidth/processor")
	for _, procs := range []int{8, 16, 32, 64} {
		o := dsmphase.PaperOverheadConfig()
		o.Processors = procs
		fmt.Printf("%-8d %-18.0f %8.1f kB/s  (%.4f%% of controller)\n",
			procs, o.BytesPerInterval(), o.BandwidthPerProcessor()/1e3,
			100*o.FractionOfController())
	}
	fmt.Println("\nthe paper's quoted figure: ~160 kB/s at 32 processors, under 0.15% of peak.")
}
