// scaling_study: the paper's two system-size arguments in one run.
//
// First, Figure 2's observation: the uniprocessor BBV detector's phase
// quality degrades as the node count grows, because inter-thread
// interactions and data distribution — invisible to a code signature —
// dominate more of the CPI. Second, §III-B's overhead estimate: the DDS
// exchange bandwidth grows as n(n−1) per interval yet stays a trivial
// fraction of a memory controller's capacity.
//
// The six (app, procs) cells run on the sharded experiment engine;
// -parallel bounds the worker pool and the table is identical for any
// worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"dsmphase"
)

func main() {
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "engine worker pool size")
	flag.Parse()

	plan := dsmphase.NewPlan()
	for _, app := range []string{"fmm", "lu"} {
		for _, procs := range []int{2, 8, 32} {
			plan.Add(dsmphase.RunConfig{
				Workload:             app,
				Size:                 dsmphase.SizeSmall,
				Procs:                procs,
				IntervalInstructions: 300_000 / uint64(procs),
				Seed:                 1,
			}, dsmphase.DetectorBBV)
		}
	}
	results := dsmphase.RunPlan(plan, dsmphase.EngineOptions{Parallel: *parallel})

	fmt.Println("BBV degradation with system size (fmm + lu, small inputs):")
	fmt.Printf("%-8s %-6s %-14s %-14s %-12s\n", "app", "procs", "CoV@10phases", "CoV@25phases", "remote%")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "scaling_study: skipping %s: %v\n", r.Cell.Label(), r.Err)
			continue
		}
		c := r.Curve
		fmt.Printf("%-8s %-6d %-14.4f %-14.4f %-12.1f\n",
			c.App, c.Procs, c.Curve.CoVAt(10), c.Curve.CoVAt(25),
			100*c.Summary.RemoteFraction())
	}

	fmt.Println("\nDDS exchange overhead (paper §III-B):")
	fmt.Printf("%-8s %-18s %-22s\n", "procs", "bytes/interval", "bandwidth/processor")
	for _, procs := range []int{8, 16, 32, 64} {
		o := dsmphase.PaperOverheadConfig()
		o.Processors = procs
		fmt.Printf("%-8d %-18.0f %8.1f kB/s  (%.4f%% of controller)\n",
			procs, o.BytesPerInterval(), o.BandwidthPerProcessor()/1e3,
			100*o.FractionOfController())
	}
	fmt.Println("\nthe paper's quoted figure: ~160 kB/s at 32 processors, under 0.15% of peak.")
}
