{
  "name": "pingpong",
  "description": "externally captured 2-processor trace: compute segments alternating with write-shared ping-pong segments across 6 barriers",
  "trace": {"file": "pingpong_trace.jsonl"}
}
