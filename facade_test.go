package dsmphase_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dsmphase"
)

// Facade wrapper tests: every public function must route to the correct
// internal implementation.

func TestFacadeManhattan(t *testing.T) {
	if got := dsmphase.Manhattan([]float64{1, 0}, []float64{0, 1}); got != 2 {
		t.Errorf("Manhattan = %v, want 2", got)
	}
}

func TestFacadeAccumulator(t *testing.T) {
	a := dsmphase.NewAccumulator(16)
	a.Instruction()
	a.Branch(0x40)
	if a.Total() != 2 {
		t.Errorf("Total = %d", a.Total())
	}
}

func TestFacadeComputeDDS(t *testing.T) {
	m, _, err := dsmphase.Simulate(quickRC(2))
	if err != nil {
		t.Fatal(err)
	}
	dist := m.Distance()
	raw, norm := dsmphase.ComputeDDS(0, []uint64{10, 0}, []uint64{10, 0}, dist, dsmphase.DDSOptions{})
	if raw <= 0 || norm <= 0 {
		t.Errorf("DDS = (%v, %v)", raw, norm)
	}
}

func TestFacadeIdentifierCoVAndEnvelope(t *testing.T) {
	cov, n := dsmphase.IdentifierCoV([]int{0, 0, 1}, []float64{1, 1, 2})
	if cov != 0 || n != 2 {
		t.Errorf("IdentifierCoV = (%v, %d)", cov, n)
	}
	env := dsmphase.LowerEnvelope([]dsmphase.CurvePoint{{Phases: 1, CoV: 0.5}, {Phases: 2, CoV: 0.1}})
	if len(env.Points) != 2 {
		t.Errorf("envelope has %d points", len(env.Points))
	}
}

func TestFacadeWSSSignature(t *testing.T) {
	var s dsmphase.WSSignature
	s.Touch(0x1000)
	if s.Population() != 1 {
		t.Errorf("population = %d", s.Population())
	}
}

func TestFacadeSweep(t *testing.T) {
	m, _, err := dsmphase.Simulate(quickRC(2))
	if err != nil {
		t.Fatal(err)
	}
	pts := dsmphase.Sweep(m.RecordsByProc(), dsmphase.SweepConfig{
		Kind:          dsmphase.DetectorWSS,
		BBVThresholds: []float64{0.1, 0.5},
	})
	if len(pts) != 2 {
		t.Errorf("sweep produced %d points, want 2", len(pts))
	}
}

func TestFacadeFigures(t *testing.T) {
	fc := dsmphase.FigureConfig{
		Apps:     []string{"lu"},
		Size:     dsmphase.SizeTest,
		Interval: 20_000,
		Seed:     1,
	}
	fig2, err := dsmphase.Figure2(fc, []int{2})
	if err != nil || len(fig2) != 1 {
		t.Fatalf("Figure2 = (%d curves, %v)", len(fig2), err)
	}
	fig4, err := dsmphase.Figure4(fc, []int{2})
	if err != nil || len(fig4) != 2 {
		t.Fatalf("Figure4 = (%d curves, %v)", len(fig4), err)
	}
	var buf bytes.Buffer
	if err := dsmphase.WriteFigure(&buf, "t", fig4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lu 2P") {
		t.Error("figure output missing curve label")
	}
	bp, dp := dsmphase.CompareAtCoV(fig4[0], fig4[1], 0.5)
	if bp < 0 || dp < 0 {
		t.Errorf("CompareAtCoV = (%v, %v)", bp, dp)
	}
}

func TestFacadeClassifyRecordedWSSKind(t *testing.T) {
	m, _, err := dsmphase.Simulate(quickRC(2))
	if err != nil {
		t.Fatal(err)
	}
	recs := m.RecordsByProc()[0]
	ids := dsmphase.ClassifyRecorded(dsmphase.DetectorWSS, 32, 0.3, 0, recs)
	if len(ids) != len(recs) {
		t.Errorf("got %d ids for %d records", len(ids), len(recs))
	}
}

func TestFacadeAdaptiveLoop(t *testing.T) {
	phases := []int{0, 0, 1, 1, 0, 0, 1, 1}
	scores := [][]float64{
		{1, 1, 2, 2, 1, 1, 2, 2},
		{2, 2, 1, 1, 2, 2, 1, 1},
	}
	loop := dsmphase.NewAdaptiveLoop(dsmphase.NewTuningController(2, 1), dsmphase.NewLastPhasePredictor())
	out := loop.Replay(phases, scores)
	if out.Intervals != 8 {
		t.Errorf("intervals = %d", out.Intervals)
	}
	if out.PredictionAccuracy < 0 || out.PredictionAccuracy > 1 {
		t.Errorf("accuracy = %v", out.PredictionAccuracy)
	}
}

func TestFacadePredictors(t *testing.T) {
	seq := []int{0, 1, 0, 1, 0, 1}
	for _, p := range []dsmphase.Predictor{
		dsmphase.NewLastPhasePredictor(),
		dsmphase.NewMarkovPredictor(),
		dsmphase.NewRunLengthPredictor(8),
	} {
		a := dsmphase.PredictorAccuracy(p, seq)
		if a < 0 || a > 1 {
			t.Errorf("%s accuracy = %v", p.Name(), a)
		}
	}
}

// TestFacadeRunTuning exercises the public closed-loop surface: the
// predictor registry, the tuning Spec axes, RunTuning and a tuning
// encoder, end to end on a real tiny simulation.
func TestFacadeRunTuning(t *testing.T) {
	if _, err := dsmphase.PredictorByName("markov"); err != nil {
		t.Fatal(err)
	}
	if names := dsmphase.PredictorNames(); len(names) != 3 {
		t.Fatalf("PredictorNames = %v", names)
	}
	spec := dsmphase.NewSpec(
		dsmphase.WithApps("lu"),
		dsmphase.WithProcs(2),
		dsmphase.WithSize(dsmphase.SizeTest),
		dsmphase.WithInterval(20_000),
		dsmphase.WithPredictors("last-phase"),
		dsmphase.WithControllers(dsmphase.ControllerSpec{Name: "trial-1", TrialsPerConfig: 1}),
		dsmphase.WithPhaseBudget(dsmphase.DefaultPhaseBudget),
	)
	rep, err := spec.RunTuning(dsmphase.EngineOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.FirstError(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Configs) != 1 {
		t.Fatalf("%d scorecard rows, want 1", len(rep.Configs))
	}
	row := rep.Configs[0]
	if row.WinRate.Mean < 0 || row.WinRate.Mean > 1 {
		t.Errorf("win rate = %v", row.WinRate.Mean)
	}
	var buf bytes.Buffer
	enc, err := dsmphase.NewTuningEncoder("markdown", "facade")
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| baseline | lu | 2 | BBV | last-phase | trial-1 |") {
		t.Errorf("scorecard row missing:\n%s", buf.String())
	}
	if len(dsmphase.TuningEncoderNames()) != 4 {
		t.Errorf("TuningEncoderNames = %v", dsmphase.TuningEncoderNames())
	}
}

// TestFacadeTuningCostModel checks the exported cost-model helpers.
func TestFacadeTuningCostModel(t *testing.T) {
	m, _, err := dsmphase.Simulate(quickRC(2))
	if err != nil {
		t.Fatal(err)
	}
	recs := m.RecordsByProc()[0]
	costs := dsmphase.TuningCosts(recs)
	if len(costs) != dsmphase.TuningHardwareConfigs {
		t.Fatalf("%d cost rows, want %d", len(costs), dsmphase.TuningHardwareConfigs)
	}
	c, err := dsmphase.RunCurve(quickRC(2), dsmphase.DetectorBBV)
	if err != nil {
		t.Fatal(err)
	}
	thBBV, _ := dsmphase.OperatingPoint(c.Curve, dsmphase.DefaultPhaseBudget)
	if thBBV <= 0 {
		t.Errorf("operating threshold = %v", thBBV)
	}
}

func TestFacadeRunCurveWSS(t *testing.T) {
	c, err := dsmphase.RunCurve(quickRC(2), dsmphase.DetectorWSS)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Curve.Points) == 0 {
		t.Error("empty WSS curve")
	}
	if !strings.Contains(c.Label(), "WSS") {
		t.Errorf("label = %q", c.Label())
	}
}

func TestFacadeOverheadScaling(t *testing.T) {
	o := dsmphase.PaperOverheadConfig()
	small, large := o, o
	small.Processors, large.Processors = 8, 32
	if small.BandwidthPerProcessor() >= large.BandwidthPerProcessor() {
		t.Error("overhead must grow with system size")
	}
	if math.Abs(o.IntervalSeconds()-0.05) > 1e-12 {
		t.Errorf("interval = %v s", o.IntervalSeconds())
	}
	if o.FractionOfController() <= 0 {
		t.Error("fraction must be positive")
	}
}

func TestFacadeDetectorKinds(t *testing.T) {
	for kind, want := range map[dsmphase.DetectorKind]string{
		dsmphase.DetectorBBV:    "BBV",
		dsmphase.DetectorBBVDDV: "BBV+DDV",
		dsmphase.DetectorDDS:    "DDS",
		dsmphase.DetectorWSS:    "WSS",
	} {
		if kind.String() != want {
			t.Errorf("kind %d = %q, want %q", kind, kind.String(), want)
		}
	}
}
