module dsmphase

go 1.24
