// Package cache implements the set-associative caches of Table I: a
// 16 kB direct-mapped L1 (1-cycle) and a 2 MB 8-way L2 (32 B lines,
// 12-cycle), with true-LRU replacement and MSI line states for the
// directory protocol.
package cache

import "math/bits"

// State is a cache line's coherence state.
type State uint8

const (
	// Invalid: line not present (or invalidated).
	Invalid State = iota
	// Shared: clean, potentially cached elsewhere.
	Shared
	// Modified: dirty, exclusively owned.
	Modified
)

// String returns the MSI letter for the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return "?"
	}
}

// Config describes a cache geometry.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity (1 = direct-mapped).
	Ways int
	// LineBytes is the line size.
	LineBytes int
	// HitCycles is the access latency on a hit.
	HitCycles uint64
}

// L1Default returns the Table I L1: 16 kB direct-mapped, 32 B lines,
// 1 cycle. (The paper gives the line size only for L2; we use 32 B
// throughout for a uniform coherence granularity.)
func L1Default() Config {
	return Config{SizeBytes: 16 << 10, Ways: 1, LineBytes: 32, HitCycles: 1}
}

// L2Default returns the Table I L2: 2 MB, 8-way, 32 B lines, 12 cycles.
func L2Default() Config {
	return Config{SizeBytes: 2 << 20, Ways: 8, LineBytes: 32, HitCycles: 12}
}

// Stats counts cache events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	DirtyEvic uint64
}

// Cache is one set-associative cache. Lines are identified by their line
// address (byte address >> lineShift).
//
// Invalid slots keep their tag at noTag, so the find loop tests one
// word per way — no separate validity check on the hit path.
type Cache struct {
	cfg       Config
	sets      int
	ways      int
	lineShift uint
	setMask   uint64
	tags      []uint64 // sets*ways
	state     []State
	lruTick   []uint64
	clock     uint64
	st        Stats
}

// noTag marks an invalid slot's tag. No reachable line address collides
// with it: line addresses are byte addresses shifted right by the line
// bits, so all-ones would require a byte address beyond the address
// space.
const noTag = ^uint64(0)

// New builds a cache from a geometry. Size, ways and line size must be
// positive powers-of-two-compatible values (sets = size/line/ways must
// come out a positive power of two).
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.LineBytes <= 0 {
		panic("cache: geometry values must be positive")
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	if lines*cfg.LineBytes != cfg.SizeBytes {
		panic("cache: size must be a multiple of line size")
	}
	sets := lines / cfg.Ways
	if sets <= 0 || sets*cfg.Ways != lines {
		panic("cache: lines must divide evenly into ways")
	}
	if sets&(sets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	n := sets * cfg.Ways
	c := &Cache{
		cfg:       cfg,
		sets:      sets,
		ways:      cfg.Ways,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, n),
		state:     make([]State, n),
		lruTick:   make([]uint64, n),
	}
	for i := range c.tags {
		c.tags[i] = noTag
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// LineAddr converts a byte address to a line address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift }

func (c *Cache) setOf(line uint64) int { return int(line & c.setMask) }

func (c *Cache) find(line uint64) int {
	base := int(line&c.setMask) * c.ways
	// One contiguous sub-slice per set: the way loop compares tags only
	// (invalid slots hold noTag) with bounds checks hoisted to the slice
	// expression — this is the hottest loop in the simulator's memory
	// system.
	tags := c.tags[base : base+c.ways]
	for w := range tags {
		if tags[w] == line {
			return base + w
		}
	}
	return -1
}

// Lookup probes the cache for the line containing addr. On a hit it
// refreshes LRU and returns the line state; on a miss it returns
// (false, Invalid). Lookup updates hit/miss statistics.
func (c *Cache) Lookup(addr uint64) (hit bool, st State) {
	_, hit, st = c.LookupWay(addr)
	return hit, st
}

// LookupWay is Lookup returning also the slot index of the hit line
// (-1 on a miss). The index stays valid while the line is resident —
// Insert overwrites a present line in place and eviction invalidates it
// — so callers may retain it as a way hint for Touch.
func (c *Cache) LookupWay(addr uint64) (idx int32, hit bool, st State) {
	c.clock++
	i := c.find(addr >> c.lineShift)
	if i < 0 {
		c.st.Misses++
		return -1, false, Invalid
	}
	c.st.Hits++
	c.lruTick[i] = c.clock
	return int32(i), true, c.state[i]
}

// Touch refreshes LRU and counts a hit for the resident line at a slot
// previously returned by LookupWay or InsertWay, skipping the
// associative search. Semantically identical to a Lookup that hits. It
// panics if the slot no longer holds line — a stale way hint, which
// would mean the caller's residency tracking broke.
func (c *Cache) Touch(idx int32, line uint64) {
	if c.tags[idx] != line {
		panic("cache: Touch with stale way hint")
	}
	c.clock++
	c.st.Hits++
	c.lruTick[idx] = c.clock
}

// Probe is like Lookup but does not touch LRU or statistics (used by
// external coherence agents).
func (c *Cache) Probe(addr uint64) (hit bool, st State) {
	idx := c.find(c.LineAddr(addr))
	if idx < 0 {
		return false, Invalid
	}
	return true, c.state[idx]
}

// Victim describes a line displaced by Insert.
type Victim struct {
	LineAddr uint64
	State    State
	Valid    bool
}

// Insert fills the line containing addr with the given state, evicting
// the LRU way if the set is full. If the line is already present its
// state is overwritten in place (no eviction). The displaced victim, if
// any, is returned so the caller can write back dirty data and send the
// directory a replacement hint.
func (c *Cache) Insert(addr uint64, st State) Victim {
	v, _ := c.InsertWay(addr, st)
	return v
}

// InsertWay is Insert returning also the slot that now holds the line
// (usable as a way hint for Touch, like a LookupWay index).
func (c *Cache) InsertWay(addr uint64, st State) (Victim, int32) {
	c.clock++
	line := c.LineAddr(addr)
	if idx := c.find(line); idx >= 0 {
		c.state[idx] = st
		c.lruTick[idx] = c.clock
		return Victim{}, int32(idx)
	}
	set := c.setOf(line)
	base := set * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		if c.state[base+w] == Invalid {
			victim = base + w
			break
		}
		if c.lruTick[base+w] < c.lruTick[victim] {
			victim = base + w
		}
	}
	var out Victim
	if c.state[victim] != Invalid {
		out = Victim{LineAddr: c.tags[victim], State: c.state[victim], Valid: true}
		c.st.Evictions++
		if c.state[victim] == Modified {
			c.st.DirtyEvic++
		}
	}
	c.tags[victim] = line
	c.state[victim] = st
	c.lruTick[victim] = c.clock
	return out, int32(victim)
}

// SetState changes the state of a resident line; it reports whether the
// line was present. Setting Invalid removes the line (tag included, so
// the find fast path never ghost-hits an invalidated slot).
func (c *Cache) SetState(addr uint64, st State) bool {
	idx := c.find(c.LineAddr(addr))
	if idx < 0 {
		return false
	}
	c.state[idx] = st
	if st == Invalid {
		c.tags[idx] = noTag
	}
	return true
}

// Invalidate removes the line containing addr, returning its prior state
// and whether it was present.
func (c *Cache) Invalidate(addr uint64) (prior State, present bool) {
	idx := c.find(c.LineAddr(addr))
	if idx < 0 {
		return Invalid, false
	}
	prior = c.state[idx]
	c.state[idx] = Invalid
	c.tags[idx] = noTag
	return prior, true
}

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.st }

// ResetStats zeroes statistics; contents are preserved.
func (c *Cache) ResetStats() { c.st = Stats{} }

// Flush invalidates every line (contents and stats clock preserved
// semantics: statistics are not reset).
func (c *Cache) Flush() {
	for i := range c.state {
		c.state[i] = Invalid
		c.tags[i] = noTag
	}
}
