package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets × 2 ways × 32B lines = 256 bytes.
	return New(Config{SizeBytes: 256, Ways: 2, LineBytes: 32, HitCycles: 1})
}

func TestStateString(t *testing.T) {
	cases := map[State]string{Invalid: "I", Shared: "S", Modified: "M", State(9): "?"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestDefaultGeometries(t *testing.T) {
	l1 := New(L1Default())
	if l1.Sets() != 512 {
		t.Errorf("L1 sets = %d, want 512 (16kB direct-mapped, 32B lines)", l1.Sets())
	}
	l2 := New(L2Default())
	if l2.Sets() != 8192 {
		t.Errorf("L2 sets = %d, want 8192 (2MB 8-way, 32B lines)", l2.Sets())
	}
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if hit, _ := c.Lookup(0x100); hit {
		t.Fatal("cold cache must miss")
	}
	c.Insert(0x100, Shared)
	hit, st := c.Lookup(0x100)
	if !hit || st != Shared {
		t.Fatalf("Lookup after Insert = (%v, %v)", hit, st)
	}
	// Same line, different byte offset: still a hit.
	if hit, _ := c.Lookup(0x11F); !hit {
		t.Error("access within the same 32B line must hit")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 2 ways
	// Three lines mapping to set 0: line addresses 0, 4, 8 (set = line & 3).
	a, b, d := uint64(0*32), uint64(4*32), uint64(8*32)
	c.Insert(a, Shared)
	c.Insert(b, Shared)
	c.Lookup(a) // touch a; b becomes LRU
	v := c.Insert(d, Shared)
	if !v.Valid || v.LineAddr != c.LineAddr(b) {
		t.Errorf("victim = %+v, want line %d", v, c.LineAddr(b))
	}
	if hit, _ := c.Probe(b); hit {
		t.Error("b should have been evicted")
	}
	if hit, _ := c.Probe(a); !hit {
		t.Error("a should have survived")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := small()
	a, b, d := uint64(0*32), uint64(4*32), uint64(8*32)
	c.Insert(a, Modified)
	c.Insert(b, Shared)
	c.Lookup(b) // a becomes LRU
	v := c.Insert(d, Shared)
	if !v.Valid || v.State != Modified {
		t.Errorf("victim = %+v, want modified line", v)
	}
	if c.Stats().DirtyEvic != 1 {
		t.Errorf("DirtyEvic = %d, want 1", c.Stats().DirtyEvic)
	}
}

func TestInsertExistingUpdatesInPlace(t *testing.T) {
	c := small()
	c.Insert(0x40, Shared)
	v := c.Insert(0x40, Modified)
	if v.Valid {
		t.Error("re-insert must not evict")
	}
	_, st := c.Probe(0x40)
	if st != Modified {
		t.Errorf("state = %v, want M", st)
	}
	if c.Stats().Evictions != 0 {
		t.Error("no evictions expected")
	}
}

func TestSetStateAndInvalidate(t *testing.T) {
	c := small()
	if c.SetState(0x40, Modified) {
		t.Error("SetState on absent line must return false")
	}
	c.Insert(0x40, Shared)
	if !c.SetState(0x40, Modified) {
		t.Error("SetState on present line must return true")
	}
	prior, present := c.Invalidate(0x40)
	if !present || prior != Modified {
		t.Errorf("Invalidate = (%v, %v)", prior, present)
	}
	if _, present := c.Invalidate(0x40); present {
		t.Error("double invalidate must report absent")
	}
	if hit, _ := c.Probe(0x40); hit {
		t.Error("line must be gone")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := small()
	c.Insert(0*32, Shared)
	c.Insert(4*32, Shared)
	// Probing a repeatedly must NOT protect it from eviction.
	for i := 0; i < 10; i++ {
		c.Probe(0 * 32)
	}
	c.Lookup(4 * 32) // a (inserted first) is LRU despite probes
	v := c.Insert(8*32, Shared)
	if !v.Valid || v.LineAddr != 0 {
		t.Errorf("victim = %+v, want line 0", v)
	}
	s := c.Stats()
	if s.Hits != 1 {
		t.Errorf("probes must not count as hits: %+v", s)
	}
}

func TestFlush(t *testing.T) {
	c := small()
	c.Insert(0x40, Modified)
	c.Flush()
	if hit, _ := c.Probe(0x40); hit {
		t.Error("flush must invalidate everything")
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := New(Config{SizeBytes: 128, Ways: 1, LineBytes: 32, HitCycles: 1}) // 4 sets
	c.Insert(0*32, Shared)
	v := c.Insert(4*32, Shared) // same set in a 4-set direct-mapped cache
	if !v.Valid || v.LineAddr != 0 {
		t.Errorf("conflict miss should evict line 0, got %+v", v)
	}
}

func TestNewPanics(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 1, LineBytes: 32},
		{SizeBytes: 256, Ways: 0, LineBytes: 32},
		{SizeBytes: 256, Ways: 1, LineBytes: 0},
		{SizeBytes: 100, Ways: 1, LineBytes: 32}, // not a multiple
		{SizeBytes: 96, Ways: 1, LineBytes: 32},  // 3 sets: not pow2
		{SizeBytes: 256, Ways: 1, LineBytes: 24}, // line not pow2
		{SizeBytes: 256, Ways: 3, LineBytes: 32}, // ways don't divide
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: after Insert(addr), Probe(addr) hits with the inserted state,
// and total resident lines never exceed capacity.
func TestInsertProbeProperty(t *testing.T) {
	c := small()
	resident := map[uint64]State{}
	f := func(lineR uint8, mod bool) bool {
		addr := uint64(lineR%16) * 32
		st := Shared
		if mod {
			st = Modified
		}
		v := c.Insert(addr, st)
		if v.Valid {
			if resident[v.LineAddr] == Invalid {
				return false // evicted something not resident
			}
			delete(resident, v.LineAddr)
		}
		resident[c.LineAddr(addr)] = st
		if len(resident) > 8 { // 4 sets × 2 ways
			return false
		}
		hit, got := c.Probe(addr)
		return hit && got == st
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
