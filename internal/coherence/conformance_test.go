package coherence

import (
	"testing"

	"dsmphase/internal/cache"
	"dsmphase/internal/memory"
	"dsmphase/internal/network"
	"dsmphase/internal/rng"
)

// Protocol-conformance suite: both backends run identical traces and
// must agree wherever the protocols' semantics overlap. Private
// (no-sharing) traces at matched granularity must classify hits and
// misses identically and perform the same memory accesses; under
// arbitrary shared traffic each backend must keep its own invariants
// and per-processor time must never run backwards.

// confCaches returns fully-associative cache geometries so hit/miss
// classification depends only on footprint, never on set conflicts
// (page-strided private regions map to few sets in the direct-mapped
// Table I L1).
func confCaches() (l1, l2 cache.Config) {
	l1 = cache.Config{SizeBytes: 16 << 10, Ways: 512, LineBytes: 32, HitCycles: 1}
	l2 = cache.Config{SizeBytes: 2 << 20, Ways: 1 << 16, LineBytes: 32, HitCycles: 12}
	return l1, l2
}

// confAddr builds an address homed at node h: the same layout the
// machine layer uses, scaled down (bit 20 starts the home field).
func confAddr(h int, off uint64) uint64 {
	return uint64(h)<<20 | (off & (1<<20 - 1))
}

// confParams assembles matched Params for a backend pair: the home of
// an address is its top bits in both (directory maps lines, IVY maps
// pages, both recover home = addr>>20).
func confParams(n int, pageBytes int) (dir, ivy Params) {
	l1, l2 := confCaches()
	dir = Params{
		N:     n,
		L1:    l1,
		L2:    l2,
		Mem:   memory.DefaultConfig(),
		Net:   network.New(n, network.DefaultConfig()),
		Costs: DefaultCosts(),
		Home:  NewHomeMap(20-5, n), // line address >> 15 = addr >> 20
	}
	pageShift := uint(0)
	for 1<<pageShift < pageBytes {
		pageShift++
	}
	ivy = dir
	ivy.Net = network.New(n, network.DefaultConfig())
	ivy.PageBytes = pageBytes
	ivy.Home = NewHomeMap(20-pageShift, n) // page address back to addr >> 20
	return dir, ivy
}

// confAccess is one trace step.
type confAccess struct {
	proc  int
	addr  uint64
	write bool
}

// runTrace drives a backend with per-processor clocks, asserting
// monotone completion times, and returns each access's result.
func runTrace(t *testing.T, p Protocol, trace []confAccess) []AccessResult {
	t.Helper()
	clocks := make([]uint64, p.N())
	out := make([]AccessResult, 0, len(trace))
	for i, a := range trace {
		res := p.Access(clocks[a.proc], a.proc, a.addr, a.write)
		if res.Done < clocks[a.proc] {
			t.Fatalf("%s access %d (proc %d): Done %d before now %d",
				p.Kind(), i, a.proc, res.Done, clocks[a.proc])
		}
		clocks[a.proc] = res.Done
		out = append(out, res)
	}
	return out
}

// privateTrace builds a no-sharing trace: every processor touches only
// its own region, revisiting each granule so both cold and warm
// behavior are exercised, with a load→store pair on every granule to
// cover the upgrade path.
func privateTrace(n int) []confAccess {
	const granules = 64
	var trace []confAccess
	for g := 0; g < granules; g++ {
		for proc := 0; proc < n; proc++ {
			addr := confAddr(proc, uint64(g)*32)
			trace = append(trace,
				confAccess{proc: proc, addr: addr, write: false},
				confAccess{proc: proc, addr: addr, write: true},
				confAccess{proc: proc, addr: addr + 8, write: false},
				confAccess{proc: proc, addr: addr, write: true},
			)
		}
	}
	return trace
}

// TestConformancePrivateTraces pins the overlap the two backends must
// share: with the page size matched to the line size, a no-sharing
// trace classifies identically (hit vs miss, access by access) and
// performs the identical set of memory accesses.
func TestConformancePrivateTraces(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		dirP, ivyP := confParams(n, 32) // page == line: granularities match
		dir := NewDirectory(dirP)
		ivy := NewIVY(ivyP)
		trace := privateTrace(n)
		dres := runTrace(t, dir, trace)
		ires := runTrace(t, ivy, trace)
		for i := range trace {
			dMiss := dres[i].HitLevel == 0
			iMiss := ires[i].HitLevel == 0
			if dMiss != iMiss {
				t.Fatalf("n=%d access %d (%+v): directory miss=%v, ivy miss=%v",
					n, i, trace[i], dMiss, iMiss)
			}
			if dres[i].MemoryAccess != ires[i].MemoryAccess {
				t.Fatalf("n=%d access %d (%+v): directory mem=%v, ivy mem=%v",
					n, i, trace[i], dres[i].MemoryAccess, ires[i].MemoryAccess)
			}
		}
		var dMem, iMem int
		for i := range trace {
			if dres[i].MemoryAccess {
				dMem++
			}
			if ires[i].MemoryAccess {
				iMem++
			}
		}
		if dMem != iMem {
			t.Errorf("n=%d: memory accesses differ: directory %d, ivy %d", n, dMem, iMem)
		}
		ds, is := dir.Stats(), ivy.Stats()
		if ds.Loads != is.Loads || ds.Stores != is.Stores {
			t.Errorf("n=%d: op counts differ: directory %d/%d, ivy %d/%d",
				n, ds.Loads, ds.Stores, is.Loads, is.Stores)
		}
		// Private traffic must never look shared to either backend.
		if ds.Invalidations != 0 || ds.Forwards != 0 {
			t.Errorf("n=%d: directory saw sharing on a private trace: %+v", n, ds)
		}
		if is.PageInvalidations != 0 || is.Forwards != 0 {
			t.Errorf("n=%d: ivy saw sharing on a private trace: %+v", n, is)
		}
		for _, p := range []Protocol{dir, ivy} {
			if err := p.CheckInvariants(); err != nil {
				t.Errorf("n=%d %s: %v", n, p.Kind(), err)
			}
		}
	}
}

// TestConformanceSeededFuzz drives both backends with the same
// pseudo-random shared-and-private traffic (default 4 kB IVY pages, so
// the backends genuinely diverge in timing) and checks the properties
// that must survive any interleaving: per-processor completion times
// are monotone (runTrace asserts it), each backend's invariants hold
// throughout — single writer / multiple readers in each backend's own
// granularity — and every access completes.
func TestConformanceSeededFuzz(t *testing.T) {
	const (
		n        = 4
		accesses = 4_000
	)
	for seed := uint64(1); seed <= 3; seed++ {
		dirP, ivyP := confParams(n, DefaultPageBytes)
		backends := []Protocol{NewDirectory(dirP), NewIVY(ivyP)}
		var trace []confAccess
		h := rng.Hash64(seed)
		for i := 0; i < accesses; i++ {
			h = rng.Hash64(h)
			proc := int(h % n)
			h = rng.Hash64(h)
			// Half the traffic lands in a 4-page shared region at home 0,
			// half in the processor's private region.
			var addr uint64
			if h&1 == 0 {
				h = rng.Hash64(h)
				addr = confAddr(0, h%(4*DefaultPageBytes)&^7)
			} else {
				h = rng.Hash64(h)
				addr = confAddr(proc, 1<<19|h%(16<<10)&^7)
			}
			h = rng.Hash64(h)
			trace = append(trace, confAccess{proc: proc, addr: addr, write: h&3 == 0})
		}
		for _, p := range backends {
			res := runTrace(t, p, trace)
			if len(res) != len(trace) {
				t.Fatalf("%s: %d results for %d accesses", p.Kind(), len(res), len(trace))
			}
			if err := p.CheckInvariants(); err != nil {
				t.Errorf("seed %d %s: %v", seed, p.Kind(), err)
			}
			st := p.Stats()
			if st.Loads+st.Stores != uint64(len(trace)) {
				t.Errorf("seed %d %s: %d+%d ops accounted, want %d",
					seed, p.Kind(), st.Loads, st.Stores, len(trace))
			}
		}
	}
}

// TestConformanceInvariantsMidTrace re-checks invariants repeatedly
// while shared traffic is in flight, not just at the end — a backend
// whose directory table and residency tables disagree transiently
// would slip past an end-only check.
func TestConformanceInvariantsMidTrace(t *testing.T) {
	const n = 4
	dirP, ivyP := confParams(n, DefaultPageBytes)
	for _, p := range []Protocol{NewDirectory(dirP), NewIVY(ivyP)} {
		clocks := make([]uint64, n)
		h := rng.Hash64(42)
		for i := 0; i < 1_000; i++ {
			h = rng.Hash64(h)
			proc := int(h % n)
			h = rng.Hash64(h)
			addr := confAddr(0, h%(2*DefaultPageBytes)&^7)
			h = rng.Hash64(h)
			res := p.Access(clocks[proc], proc, addr, h&1 == 0)
			clocks[proc] = res.Done
			if i%50 == 0 {
				if err := p.CheckInvariants(); err != nil {
					t.Fatalf("%s after access %d: %v", p.Kind(), i, err)
				}
			}
		}
	}
}
