// Package coherence implements the DSM's coherence backends behind the
// Protocol interface. The default DirectoryProtocol is line-granular
// directory-based MSI: each memory line has a home node whose directory
// tracks the line's global state (uncached / shared / modified), its
// sharer set and its owner, and full load/store transactions execute
// against per-processor two-level caches. The IVY backend is
// page-granular software DSM in the style of Li & Hudak's IVY:
// read-only/read-write page copies, faults resolved by each page's
// manager node, and whole-page transfers. Both charge network,
// directory/manager and SDRAM latency through the models in
// internal/{network,memory}.
package coherence

// LineState is the directory-side state of a memory line.
type LineState uint8

const (
	// Uncached: no cache holds the line.
	Uncached LineState = iota
	// SharedState: one or more caches hold it read-only.
	SharedState
	// ModifiedState: exactly one cache owns it dirty.
	ModifiedState
)

// String returns a short name for the state.
func (s LineState) String() string {
	switch s {
	case Uncached:
		return "U"
	case SharedState:
		return "S"
	case ModifiedState:
		return "M"
	default:
		return "?"
	}
}

// Entry is one directory row. Sharers is a bitmask over processors
// (systems up to 64 nodes); Owner is meaningful only in ModifiedState.
type Entry struct {
	Sharers uint64
	Owner   int8
	State   LineState
}

// Directory tracks the lines homed at one node. Lines never referenced
// have no entry (implicitly Uncached).
type Directory struct {
	lines map[uint64]Entry
}

// NewDirectoryTable returns an empty directory.
func NewDirectoryTable() *Directory {
	return &Directory{lines: make(map[uint64]Entry)}
}

// Lookup returns the entry for a line (zero Entry if absent).
func (d *Directory) Lookup(line uint64) Entry {
	return d.lines[line]
}

// setEntry stores or clears an entry.
func (d *Directory) setEntry(line uint64, e Entry) {
	if e.State == Uncached {
		delete(d.lines, line)
		return
	}
	d.lines[line] = e
}

// AddSharer transitions the line to SharedState including proc.
func (d *Directory) AddSharer(line uint64, proc int) {
	e := d.lines[line]
	e.Sharers |= 1 << uint(proc)
	e.State = SharedState
	e.Owner = -1
	d.lines[line] = e
}

// SetOwner transitions the line to ModifiedState owned by proc.
func (d *Directory) SetOwner(line uint64, proc int) {
	d.lines[line] = Entry{Sharers: 1 << uint(proc), Owner: int8(proc), State: ModifiedState}
}

// RemoveSharer drops proc from the sharer set (a replacement hint). If
// the set empties, the line becomes Uncached.
func (d *Directory) RemoveSharer(line uint64, proc int) {
	e, ok := d.lines[line]
	if !ok {
		return
	}
	e.Sharers &^= 1 << uint(proc)
	if e.Sharers == 0 {
		delete(d.lines, line)
		return
	}
	if e.State == ModifiedState && e.Owner == int8(proc) {
		// Owner evicted (writeback): remaining state is shared of others
		// (cannot normally happen in MSI — owner is sole sharer — but be
		// defensive).
		e.State = SharedState
		e.Owner = -1
	}
	d.lines[line] = e
}

// Clear removes the line entirely (after a writeback of a modified line).
func (d *Directory) Clear(line uint64) { delete(d.lines, line) }

// Len returns the number of tracked lines.
func (d *Directory) Len() int { return len(d.lines) }

// ForEach visits every tracked line (iteration order unspecified).
func (d *Directory) ForEach(fn func(line uint64, e Entry)) {
	for l, e := range d.lines {
		fn(l, e)
	}
}
