package coherence

// HomeMap maps a line address to its home node as (line >> Shift) mod N,
// with the modulo strength-reduced to a mask when N is a power of two.
// It replaces the old home-function closure on the protocol's hot path:
// the mapping is two or three register operations, inlinable, with no
// indirect call.
type HomeMap struct {
	shift uint
	n     uint64
	mask  uint64 // n-1 when n is a power of two, else 0 (modulo path)
	pow2  bool
}

// NewHomeMap returns the mapping home(line) = (line >> shift) % n.
// n must be positive. A shift ≥ 64 maps every line to node 0 (useful
// for single-home test protocols).
func NewHomeMap(shift uint, n int) HomeMap {
	if n <= 0 {
		panic("coherence: home map needs a positive node count")
	}
	h := HomeMap{shift: shift, n: uint64(n)}
	if n&(n-1) == 0 {
		h.mask = uint64(n - 1)
		h.pow2 = true
	}
	return h
}

// Home returns the home node of the given line address. (Go defines
// line >> s as 0 for s ≥ 64, so the ≥64-shift single-home case needs no
// branch.)
func (h HomeMap) Home(line uint64) int {
	if h.pow2 {
		return int((line >> h.shift) & h.mask)
	}
	return int((line >> h.shift) % h.n)
}
