package coherence

import (
	"math/bits"

	"dsmphase/internal/memory"
	"dsmphase/internal/network"
)

// pageAccess is a node's access right to a resident page.
type pageAccess uint8

const (
	// pageReadOnly: the node holds a read-only copy.
	pageReadOnly pageAccess = iota + 1
	// pageReadWrite: the node is the owner with exclusive write access.
	pageReadWrite
)

// ivyEntry is a manager row for one page: which nodes hold a copy and
// which of them owns the latest data. Owner is -1 while the page has
// never been faulted in (its only copy is the home node's memory).
type ivyEntry struct {
	Copyset uint64
	Owner   int8
}

// IVY is the page-granular DSM backend in the style of Li & Hudak's
// IVY: each node holds read-only or read-write page copies, access
// faults are resolved by the page's manager, and pages move as whole
// units over the interconnect.
//
// The manager for a page is its home node under Params.Home — the
// "fixed distributed manager" refinement of IVY's central manager (a
// HomeMap with shift ≥ 64 maps every page to node 0, recovering the
// strictly central variant). The manager tracks the owner and copyset;
// read faults are forwarded to the owner, which downgrades to
// read-only and supplies the page; write faults invalidate every other
// copy and transfer ownership. Backing memory lives at the home node
// and is read only for a page's first fault — after that the owner's
// copy is authoritative.
//
// IVY models no hardware caches: an access to a resident page with
// sufficient rights completes at the L1 hit latency (the model's
// "local memory is fast, faults are slow" regime). Whole-page
// transfers are priced honestly: the source's SDRAM banks serve every
// line of the page, and the interconnect carries PageBytes-sized
// messages through the same contention model as line transfers.
type IVY struct {
	n     int
	costs Costs
	mems  []*memory.SDRAM
	net   network.Topology
	home  HomeMap
	pageB uint64
	// pageShift converts byte addresses to page addresses.
	pageShift uint
	// lineB is the SDRAM transfer granularity used to price page reads.
	lineB uint64
	// linesPerPage is pageB/lineB, the bank occupancy of one page copy.
	linesPerPage int
	// hit is the resident-page access latency (Params.L1.HitCycles).
	hit uint64
	// tables[node] maps resident page -> access right.
	tables []map[uint64]pageAccess
	// dir maps page -> manager entry. Manager state is keyed globally;
	// the page's home node only matters for latency charging.
	dir map[uint64]ivyEntry
	st  Stats
}

// NewIVY assembles an IVY engine. Params.Home maps a page address to
// its home (= manager) node in [0, N); Params.PageBytes must be a
// power of two (zero selects DefaultPageBytes).
func NewIVY(params Params) *IVY {
	params.validate()
	pageB := params.PageBytes
	if pageB == 0 {
		pageB = DefaultPageBytes
	}
	if pageB&(pageB-1) != 0 {
		panic("coherence: IVY page size must be a power of two")
	}
	lineB := params.Mem.LineBytes
	if pageB < lineB {
		panic("coherence: IVY page must be at least one memory line")
	}
	n := params.N
	p := &IVY{
		n:            n,
		costs:        params.Costs,
		mems:         make([]*memory.SDRAM, n),
		net:          params.Net,
		home:         params.Home,
		pageB:        uint64(pageB),
		pageShift:    uint(bits.TrailingZeros64(uint64(pageB))),
		lineB:        uint64(lineB),
		linesPerPage: pageB / lineB,
		hit:          params.L1.HitCycles,
		tables:       make([]map[uint64]pageAccess, n),
		dir:          make(map[uint64]ivyEntry),
	}
	for i := 0; i < n; i++ {
		p.mems[i] = memory.New(params.Mem)
	}
	return p
}

// Kind identifies the backend.
func (p *IVY) Kind() Kind { return KindIVY }

// N returns the processor count.
func (p *IVY) N() int { return p.n }

// Home returns the home (manager) node of the page containing addr.
func (p *IVY) Home(addr uint64) int { return p.home.Home(addr >> p.pageShift) }

// LineBytes returns the coherence granularity — the page size.
func (p *IVY) LineBytes() uint64 { return p.pageB }

// PageBytes returns the page size.
func (p *IVY) PageBytes() uint64 { return p.pageB }

// Memory exposes node i's SDRAM (tests and statistics).
func (p *IVY) Memory(i int) *memory.SDRAM { return p.mems[i] }

// Stats returns a copy of the protocol statistics.
func (p *IVY) Stats() Stats { return p.st }

// ResetStats zeroes the counters; page tables, manager and timing state
// are preserved.
func (p *IVY) ResetStats() { p.st = Stats{} }

// entry returns the manager row for a page (unowned if never faulted).
func (p *IVY) entry(page uint64) ivyEntry {
	if e, ok := p.dir[page]; ok {
		return e
	}
	return ivyEntry{Owner: -1}
}

// pageMsgBytes is the size of a whole-page data message (page plus the
// control header every message carries).
func (p *IVY) pageMsgBytes() int { return int(p.pageB) + p.costs.CtrlBytes }

// Access executes a load (write=false) or store (write=true) by proc at
// byte address addr starting at time now.
func (p *IVY) Access(now uint64, proc int, addr uint64, write bool) AccessResult {
	if write {
		p.st.Stores++
	} else {
		p.st.Loads++
	}
	page := addr >> p.pageShift
	acc := p.tables[proc][page]
	if acc == pageReadWrite || (acc == pageReadOnly && !write) {
		// Resident with sufficient rights: local access.
		p.st.L1Hits++
		return AccessResult{Done: now + p.hit, HitLevel: 1}
	}
	t := now + p.hit // fault detection
	p.st.PageFaults++
	switch {
	case acc == pageReadOnly:
		// Write to a read-only copy: upgrade in place.
		return p.upgradeFault(t, proc, page)
	case write:
		return p.writeFault(t, proc, page)
	default:
		return p.readFault(t, proc, page)
	}
}

// managerTrip charges the fault's trip to the page manager and the
// manager's lookup time.
func (p *IVY) managerTrip(t uint64, proc, mgr int, res *AccessResult) uint64 {
	p.st.DirectoryTrips++
	if mgr != proc {
		p.st.RemoteTrips++
		res.Remote = true
		t = p.net.Send(t, proc, mgr, p.costs.CtrlBytes)
	}
	return t + p.costs.DirectoryCycles
}

// readPage prices a whole-page read out of node's SDRAM: every line of
// the page occupies its bank, and the data is ready when the last line
// is.
func (p *IVY) readPage(t uint64, node int, page uint64) uint64 {
	base := page << p.pageShift
	done := t
	for i := 0; i < p.linesPerPage; i++ {
		if d := p.mems[node].Read(t, base+uint64(i)*p.lineB); d > done {
			done = d
		}
	}
	return done
}

// readFault installs a read-only copy at proc.
func (p *IVY) readFault(t uint64, proc int, page uint64) AccessResult {
	var res AccessResult
	mgr := p.home.Home(page)
	t = p.managerTrip(t, proc, mgr, &res)
	e := p.entry(page)
	if e.Owner < 0 {
		// First fault: home memory supplies the page, requester becomes
		// the owner (holding it read-only until someone writes).
		res.MemoryAccess = true
		t = p.readPage(t, mgr, page)
		if mgr != proc {
			t = p.net.Send(t, mgr, proc, p.pageMsgBytes())
			res.Remote = true
		}
		e.Owner = int8(proc)
	} else {
		// Forward to the owner, which downgrades to read-only and
		// supplies the page (the owner cannot be proc: owners always
		// hold their page, so they never fault).
		o := int(e.Owner)
		p.st.Forwards++
		if o != mgr {
			t = p.net.Send(t, mgr, o, p.costs.CtrlBytes)
		}
		p.tables[o][page] = pageReadOnly
		t = p.net.Send(t, o, proc, p.pageMsgBytes())
		res.Remote = true
	}
	p.st.PageTransfers++
	e.Copyset |= 1 << uint(proc)
	p.dir[page] = e
	p.install(proc, page, pageReadOnly)
	res.Done = t
	return res
}

// upgradeFault handles a write to a page proc already holds read-only:
// every other copy is invalidated and ownership transfers without a
// page copy — the analogue of the directory backend's upgrade, and like
// it, no memory or page data moves.
func (p *IVY) upgradeFault(t uint64, proc int, page uint64) AccessResult {
	var res AccessResult
	// The page data is already resident — only the access right changes —
	// so, exactly like the directory upgrade, this classifies as a hit.
	res.HitLevel = 1
	mgr := p.home.Home(page)
	t = p.managerTrip(t, proc, mgr, &res)
	e := p.entry(page)
	t = p.invalidateCopies(t, mgr, proc, page, &e, &res)
	if mgr != proc {
		// Grant message back to the requester.
		t = p.net.Send(t, mgr, proc, p.costs.CtrlBytes)
	}
	e.Owner = int8(proc)
	p.dir[page] = e
	p.tables[proc][page] = pageReadWrite
	res.Done = t
	return res
}

// writeFault installs a read-write copy at a proc holding nothing:
// every existing copy is invalidated, the page moves from its owner
// (or, on a first fault, home memory), and ownership transfers.
func (p *IVY) writeFault(t uint64, proc int, page uint64) AccessResult {
	var res AccessResult
	mgr := p.home.Home(page)
	t = p.managerTrip(t, proc, mgr, &res)
	e := p.entry(page)
	if e.Owner < 0 {
		res.MemoryAccess = true
		t = p.readPage(t, mgr, page)
		if mgr != proc {
			t = p.net.Send(t, mgr, proc, p.pageMsgBytes())
			res.Remote = true
		}
	} else {
		// The previous owner supplies the page and gives it up; the
		// manager invalidates the remaining readers in parallel, and the
		// requester waits for the slower of data and acks.
		o := int(e.Owner)
		p.st.Forwards++
		data := t
		if o != mgr {
			data = p.net.Send(data, mgr, o, p.costs.CtrlBytes)
		}
		delete(p.tables[o], page)
		e.Copyset &^= 1 << uint(o)
		p.st.PageInvalidations++
		res.Invalidations++
		data = p.net.Send(data, o, proc, p.pageMsgBytes())
		res.Remote = true
		acks := p.invalidateCopies(t, mgr, proc, page, &e, &res)
		t = data
		if acks > t {
			t = acks
		}
	}
	p.st.PageTransfers++
	e.Owner = int8(proc)
	e.Copyset = 1 << uint(proc)
	p.dir[page] = e
	p.install(proc, page, pageReadWrite)
	res.Done = t
	return res
}

// install records a resident page at proc, allocating the node's table
// lazily.
func (p *IVY) install(proc int, page uint64, acc pageAccess) {
	if p.tables[proc] == nil {
		p.tables[proc] = make(map[uint64]pageAccess)
	}
	p.tables[proc][page] = acc
}

// invalidateCopies sends invalidations from the manager to every
// copyset member except requester, drops their copies, and returns the
// time the last acknowledgment reaches the manager. The entry's copyset
// shrinks to the requester's bit (if held).
func (p *IVY) invalidateCopies(t uint64, mgr, requester int, page uint64, e *ivyEntry, res *AccessResult) uint64 {
	latest := t
	for s := 0; s < p.n; s++ {
		if s == requester || e.Copyset&(1<<uint(s)) == 0 {
			continue
		}
		p.st.PageInvalidations++
		res.Invalidations++
		arr := p.net.Send(t, mgr, s, p.costs.CtrlBytes)
		delete(p.tables[s], page)
		ack := p.net.Send(arr, s, mgr, p.costs.CtrlBytes)
		if ack > latest {
			latest = ack
		}
	}
	e.Copyset &= 1 << uint(requester)
	return latest
}

// CheckInvariants validates IVY's global safety property — single
// writer, multiple readers over pages — plus manager/table consistency.
// Intended for tests.
func (p *IVY) CheckInvariants() error {
	for page, e := range p.dir {
		if e.Owner < 0 || int(e.Owner) >= p.n {
			return errf("page %#x: invalid owner %d", page, e.Owner)
		}
		if e.Copyset&(1<<uint(e.Owner)) == 0 {
			return errf("page %#x: owner %d outside copyset %#x", page, e.Owner, e.Copyset)
		}
		ownerAcc := p.tables[e.Owner][page]
		if ownerAcc == 0 {
			return errf("page %#x: owner %d holds no copy", page, e.Owner)
		}
		for q := 0; q < p.n; q++ {
			acc := pageAccess(0)
			if p.tables[q] != nil {
				acc = p.tables[q][page]
			}
			inSet := e.Copyset&(1<<uint(q)) != 0
			if (acc != 0) != inSet {
				return errf("page %#x: node %d residency %v disagrees with copyset %#x",
					page, q, acc != 0, e.Copyset)
			}
			if acc == pageReadWrite {
				if q != int(e.Owner) {
					return errf("page %#x: writer %d is not the owner %d", page, q, e.Owner)
				}
				if e.Copyset != 1<<uint(q) {
					return errf("page %#x: writable at %d with other copies %#x", page, q, e.Copyset)
				}
			}
		}
	}
	// No node may hold a page the manager has no row for.
	for q := 0; q < p.n; q++ {
		for page := range p.tables[q] {
			if _, ok := p.dir[page]; !ok {
				return errf("page %#x: resident at %d but unknown to its manager", page, q)
			}
		}
	}
	return nil
}
