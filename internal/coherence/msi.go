package coherence

import (
	"math/bits"

	"dsmphase/internal/cache"
	"dsmphase/internal/memory"
	"dsmphase/internal/network"
)

// DirectoryProtocol is the line-granular directory-MSI engine: per-
// processor L1/L2 caches, per-node directories and memories, and the
// interconnect.
//
// The protocol executes transactions atomically at a point in simulated
// time (the commit time of the requesting instruction). Because the
// machine always advances the processor with the smallest local clock,
// transactions interleave in near time order and the busy-until state in
// links and banks produces contention-dependent latencies.
type DirectoryProtocol struct {
	n     int
	costs Costs
	l1    []*cache.Cache
	l2    []*cache.Cache
	dirs  []*Directory
	mems  []*memory.SDRAM
	net   network.Topology
	home  HomeMap
	lineB uint64
	// lineShift replaces the divisions/multiplications between byte and
	// line addresses with shifts on the hot path.
	lineShift uint
	// l1Hit/l2Hit are the hoisted hit latencies (previously re-read from
	// the cache Config per access).
	l1Hit uint64
	l2Hit uint64
	// l2way[proc][l1slot] is the L2 way hint: the L2 slot holding the
	// same line as the (valid) L1 slot. Maintained by fillL1; lets an L1
	// hit refresh the inclusive L2 copy's LRU and hit counters without a
	// second associative search. A hint is only read when its L1 slot
	// holds a valid line, and inclusion invalidates the L1 slot whenever
	// the L2 copy is displaced, so a live hint can never be stale
	// (cache.Touch asserts it).
	l2way [][]int32
	st    Stats
}

// NewDirectory assembles a directory-MSI engine. Params.Home maps a
// line address to its home node in [0, N).
func NewDirectory(params Params) *DirectoryProtocol {
	params.validate()
	if params.L1.LineBytes != params.L2.LineBytes {
		panic("coherence: L1 and L2 must share a line size")
	}
	n := params.N
	p := &DirectoryProtocol{
		n:     n,
		costs: params.Costs,
		l1:    make([]*cache.Cache, n),
		l2:    make([]*cache.Cache, n),
		dirs:  make([]*Directory, n),
		mems:  make([]*memory.SDRAM, n),
		net:   params.Net,
		home:  params.Home,
		lineB: uint64(params.L2.LineBytes),
		l1Hit: params.L1.HitCycles,
		l2Hit: params.L2.HitCycles,
		l2way: make([][]int32, n),
	}
	p.lineShift = uint(bits.TrailingZeros64(p.lineB))
	l1Slots := params.L1.SizeBytes / params.L1.LineBytes
	for i := 0; i < n; i++ {
		p.l1[i] = cache.New(params.L1)
		p.l2[i] = cache.New(params.L2)
		p.dirs[i] = NewDirectoryTable()
		p.mems[i] = memory.New(params.Mem)
		p.l2way[i] = make([]int32, l1Slots)
	}
	return p
}

// Kind identifies the backend.
func (p *DirectoryProtocol) Kind() Kind { return KindDirectory }

// N returns the processor count.
func (p *DirectoryProtocol) N() int { return p.n }

// Home returns the home node of the line containing addr.
func (p *DirectoryProtocol) Home(addr uint64) int { return p.home.Home(addr >> p.lineShift) }

// LineBytes returns the coherence granularity.
func (p *DirectoryProtocol) LineBytes() uint64 { return p.lineB }

// Directory exposes node i's directory (tests and invariant checks).
func (p *DirectoryProtocol) Directory(i int) *Directory { return p.dirs[i] }

// CacheL1 exposes processor i's L1 (tests and statistics).
func (p *DirectoryProtocol) CacheL1(i int) *cache.Cache { return p.l1[i] }

// CacheL2 exposes processor i's L2 (tests and statistics).
func (p *DirectoryProtocol) CacheL2(i int) *cache.Cache { return p.l2[i] }

// Memory exposes node i's SDRAM (tests and statistics).
func (p *DirectoryProtocol) Memory(i int) *memory.SDRAM { return p.mems[i] }

// Stats returns a copy of the protocol statistics.
func (p *DirectoryProtocol) Stats() Stats { return p.st }

// ResetStats zeroes the counters; cache, directory and timing state are
// preserved.
func (p *DirectoryProtocol) ResetStats() { p.st = Stats{} }

// lineAddrBytes converts a line address back to a byte address.
func (p *DirectoryProtocol) lineAddrBytes(line uint64) uint64 { return line << p.lineShift }

// Access executes a load (write=false) or store (write=true) by proc at
// byte address addr starting at time now.
func (p *DirectoryProtocol) Access(now uint64, proc int, addr uint64, write bool) AccessResult {
	if write {
		p.st.Stores++
	} else {
		p.st.Loads++
	}
	line := addr >> p.lineShift
	l1 := p.l1[proc]
	l2 := p.l2[proc]

	// L1 probe: the L1 mirrors L2 residency AND state (inclusion is
	// maintained on every fill, state change and invalidation), so an L1
	// hit answers for the authoritative L2 state without the second
	// associative search. The inclusive L2 copy still observes the
	// access — its LRU tick and hit counter advance through the way
	// hint, exactly as the old always-probe-both path left them.
	l1Idx, l1Hit, l1State := l1.LookupWay(addr)
	if l1Hit {
		if !write || l1State == cache.Modified {
			// Read hit, or write hit on the owned line: complete in L1.
			l2.Touch(p.l2way[proc][l1Idx], line)
			p.st.L1Hits++
			return AccessResult{Done: now + p.l1Hit, HitLevel: 1}
		}
		// Write hit on a Shared line: upgrade (invalidate other
		// sharers). The L2 copy is Shared too; refresh it and take the
		// upgrade path at L2 hit latency, as before.
		l2.Touch(p.l2way[proc][l1Idx], line)
		return p.upgrade(now+p.l2Hit, proc, line, addr)
	}

	l2Idx, l2HitOK, l2State := l2.LookupWay(addr)
	if l2HitOK {
		if !write && (l2State == cache.Shared || l2State == cache.Modified) {
			// Read hit in L2 only.
			p.st.L2Hits++
			p.fillL1(proc, addr, l2State, l2Idx)
			return AccessResult{Done: now + p.l2Hit, HitLevel: 2}
		}
		if write && l2State == cache.Modified {
			// Write hit on owned line, L2 only.
			p.st.L2Hits++
			p.fillL1(proc, addr, cache.Modified, l2Idx)
			return AccessResult{Done: now + p.l2Hit, HitLevel: 2}
		}
		// Write hit on a Shared line: upgrade (invalidate other sharers).
		return p.upgrade(now+p.l2Hit, proc, line, addr)
	}

	// Miss in L2: go to the home directory.
	t := now + p.l2Hit // miss determination
	if write {
		return p.storeMiss(t, proc, line, addr)
	}
	return p.loadMiss(t, proc, line, addr)
}

// fillL1 inserts the line into L1, maintaining inclusion (victims are
// silently dropped: L1 never holds the only dirty copy because stores
// set Modified in both levels). l2Idx is the L2 slot holding the same
// line; it is recorded as the way hint for later L1 hits.
func (p *DirectoryProtocol) fillL1(proc int, addr uint64, st cache.State, l2Idx int32) {
	_, l1Idx := p.l1[proc].InsertWay(addr, st)
	p.l2way[proc][l1Idx] = l2Idx
}

// fillL2 inserts the line into L2, handling the displaced victim: dirty
// victims are written back to their home memory; clean victims send the
// home a replacement hint. Inclusion is maintained by invalidating the
// victim in L1. Writeback traffic occupies the network and the home bank
// at time t but does not extend the requester's critical path. The
// returned slot index is the new line's L2 way (for the L1 way hint).
func (p *DirectoryProtocol) fillL2(t uint64, proc int, addr uint64, st cache.State) int32 {
	v, idx := p.l2[proc].InsertWay(addr, st)
	if !v.Valid {
		return idx
	}
	vBytes := p.lineAddrBytes(v.LineAddr)
	p.l1[proc].Invalidate(vBytes)
	vh := p.home.Home(v.LineAddr)
	if v.State == cache.Modified {
		p.st.Writebacks++
		arr := p.net.Send(t, proc, vh, p.costs.DataBytes)
		p.mems[vh].Write(arr, vBytes)
		p.dirs[vh].Clear(v.LineAddr)
	} else {
		// Replacement hint keeps the sharer set tight so later upgrades
		// do not invalidate stale sharers.
		p.dirs[vh].RemoveSharer(v.LineAddr, proc)
	}
	return idx
}

// loadMiss fetches the line for reading.
func (p *DirectoryProtocol) loadMiss(t uint64, proc int, line, addr uint64) AccessResult {
	h := p.home.Home(line)
	lineBytes := p.lineAddrBytes(line)
	res := AccessResult{Remote: h != proc}
	p.st.DirectoryTrips++
	if h != proc {
		p.st.RemoteTrips++
		t = p.net.Send(t, proc, h, p.costs.CtrlBytes)
	}
	t += p.costs.DirectoryCycles
	dir := p.dirs[h]
	e := dir.Lookup(line)
	switch e.State {
	case ModifiedState:
		o := int(e.Owner)
		if o == proc {
			// Stale self-ownership cannot happen: our L2 missed, and a
			// miss means we gave the line up, which clears ownership.
			panic("coherence: directory owner missed in its own cache")
		}
		p.st.Forwards++
		// Forward to owner; owner downgrades M->S and supplies data.
		t = p.net.Send(t, h, o, p.costs.CtrlBytes)
		p.l2[o].SetState(lineBytes, cache.Shared)
		p.l1[o].SetState(lineBytes, cache.Shared)
		// Owner writes the dirty line back to home memory (off the
		// requester's critical path once data is forwarded).
		wb := p.net.Send(t, o, h, p.costs.DataBytes)
		p.mems[h].Write(wb, lineBytes)
		if o != proc {
			t = p.net.Send(t, o, proc, p.costs.DataBytes)
			res.Remote = true
		}
		dir.setEntry(line, Entry{
			Sharers: e.Sharers | 1<<uint(proc),
			Owner:   -1,
			State:   SharedState,
		})
	default:
		// Uncached or Shared: home memory supplies data.
		res.MemoryAccess = true
		t = p.mems[h].Read(t, lineBytes)
		dir.AddSharer(line, proc)
		if h != proc {
			t = p.net.Send(t, h, proc, p.costs.DataBytes)
		}
	}
	l2Idx := p.fillL2(t, proc, addr, cache.Shared)
	p.fillL1(proc, addr, cache.Shared, l2Idx)
	res.Done = t
	return res
}

// storeMiss fetches the line for exclusive write.
func (p *DirectoryProtocol) storeMiss(t uint64, proc int, line, addr uint64) AccessResult {
	h := p.home.Home(line)
	lineBytes := p.lineAddrBytes(line)
	res := AccessResult{Remote: h != proc}
	p.st.DirectoryTrips++
	if h != proc {
		p.st.RemoteTrips++
		t = p.net.Send(t, proc, h, p.costs.CtrlBytes)
	}
	t += p.costs.DirectoryCycles
	dir := p.dirs[h]
	e := dir.Lookup(line)
	switch e.State {
	case ModifiedState:
		o := int(e.Owner)
		if o == proc {
			panic("coherence: directory owner missed in its own cache")
		}
		p.st.Forwards++
		t = p.net.Send(t, h, o, p.costs.CtrlBytes)
		p.l2[o].Invalidate(lineBytes)
		p.l1[o].Invalidate(lineBytes)
		t = p.net.Send(t, o, proc, p.costs.DataBytes)
		res.Remote = true
	case SharedState:
		// Invalidate every sharer; the requester waits for the slowest ack.
		t = p.invalidateSharers(t, h, proc, line, e, &res)
		res.MemoryAccess = true
		rd := p.mems[h].Read(t, lineBytes)
		if rd > t {
			t = rd
		}
		if h != proc {
			t = p.net.Send(t, h, proc, p.costs.DataBytes)
		}
	default: // Uncached
		res.MemoryAccess = true
		t = p.mems[h].Read(t, lineBytes)
		if h != proc {
			t = p.net.Send(t, h, proc, p.costs.DataBytes)
		}
	}
	dir.SetOwner(line, proc)
	l2Idx := p.fillL2(t, proc, addr, cache.Modified)
	p.fillL1(proc, addr, cache.Modified, l2Idx)
	res.Done = t
	return res
}

// upgrade handles a store hit on a Shared line: the requester asks the
// home to invalidate all other sharers, then gains ownership.
func (p *DirectoryProtocol) upgrade(t uint64, proc int, line, addr uint64) AccessResult {
	h := p.home.Home(line)
	res := AccessResult{HitLevel: 2, Remote: h != proc}
	p.st.DirectoryTrips++
	if h != proc {
		p.st.RemoteTrips++
		t = p.net.Send(t, proc, h, p.costs.CtrlBytes)
	}
	t += p.costs.DirectoryCycles
	dir := p.dirs[h]
	e := dir.Lookup(line)
	t = p.invalidateSharers(t, h, proc, line, e, &res)
	if h != proc {
		// Grant message back to the requester.
		t = p.net.Send(t, h, proc, p.costs.CtrlBytes)
	}
	dir.SetOwner(line, proc)
	p.l2[proc].SetState(addr, cache.Modified)
	p.l1[proc].SetState(addr, cache.Modified)
	res.Done = t
	return res
}

// invalidateSharers sends invalidations from home h to every sharer of
// line except requester, invalidates their caches, and returns the time
// the last acknowledgment reaches h.
func (p *DirectoryProtocol) invalidateSharers(t uint64, h, requester int, line uint64, e Entry, res *AccessResult) uint64 {
	latest := t
	lineBytes := p.lineAddrBytes(line)
	for s := 0; s < p.n; s++ {
		if s == requester || e.Sharers&(1<<uint(s)) == 0 {
			continue
		}
		p.st.Invalidations++
		res.Invalidations++
		arr := p.net.Send(t, h, s, p.costs.CtrlBytes)
		p.l2[s].Invalidate(lineBytes)
		p.l1[s].Invalidate(lineBytes)
		ack := p.net.Send(arr, s, h, p.costs.CtrlBytes)
		if ack > latest {
			latest = ack
		}
	}
	return latest
}

// CheckInvariants validates global protocol invariants, returning a
// non-nil description on the first violation. Intended for tests.
func (p *DirectoryProtocol) CheckInvariants() error {
	for h := 0; h < p.n; h++ {
		var err error
		p.dirs[h].ForEach(func(line uint64, e Entry) {
			if err != nil {
				return
			}
			addr := p.lineAddrBytes(line)
			switch e.State {
			case ModifiedState:
				if e.Sharers != 1<<uint(e.Owner) {
					err = errf("line %#x: modified with sharers %#x owner %d", line, e.Sharers, e.Owner)
					return
				}
				if _, st := p.l2[e.Owner].Probe(addr); st != cache.Modified {
					err = errf("line %#x: owner %d cache state %v, want M", line, e.Owner, st)
					return
				}
				// No other cache may hold the line.
				for q := 0; q < p.n; q++ {
					if q == int(e.Owner) {
						continue
					}
					if hit, _ := p.l2[q].Probe(addr); hit {
						err = errf("line %#x: modified but also cached at %d", line, q)
						return
					}
				}
			case SharedState:
				if e.Sharers == 0 {
					err = errf("line %#x: shared with empty sharer set", line)
					return
				}
				for q := 0; q < p.n; q++ {
					hit, st := p.l2[q].Probe(addr)
					inSet := e.Sharers&(1<<uint(q)) != 0
					if hit && st == cache.Modified {
						err = errf("line %#x: cache %d modified under shared directory state", line, q)
						return
					}
					if hit && !inSet {
						err = errf("line %#x: cache %d holds line outside sharer set", line, q)
						return
					}
				}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
