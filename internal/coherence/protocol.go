package coherence

import (
	"fmt"

	"dsmphase/internal/cache"
	"dsmphase/internal/memory"
	"dsmphase/internal/network"
)

// Costs holds the protocol's fixed latencies in processor cycles, plus
// message sizes for the network model.
type Costs struct {
	// DirectoryCycles is the home directory/manager lookup time.
	DirectoryCycles uint64
	// CtrlBytes is the size of a control message (request, ack, inv).
	CtrlBytes int
	// DataBytes is the size of a data reply (line + header).
	DataBytes int
}

// DefaultCosts returns the latencies used with the Table I system.
func DefaultCosts() Costs {
	return Costs{DirectoryCycles: 10, CtrlBytes: 8, DataBytes: 40}
}

// AccessResult describes one completed load/store transaction.
type AccessResult struct {
	// Done is the completion time in cycles.
	Done uint64
	// HitLevel is 1 for an L1 hit (or a resident page under IVY), 2 for
	// an L2 hit, 0 for a miss/fault that went to the home node.
	HitLevel int
	// Remote reports whether the transaction crossed the network (home,
	// manager or owner on another node).
	Remote bool
	// Invalidations counts copies invalidated by this transaction: line
	// sharers under the directory backend, page copies under IVY.
	Invalidations int
	// MemoryAccess reports whether SDRAM was read.
	MemoryAccess bool
}

// Stats aggregates protocol activity. The line-granular counters
// (L1Hits..Writebacks) are shared by both backends where they apply;
// the Page* counters are IVY's page-granular activity and stay zero
// under the directory backend. Conversely IVY never touches
// Invalidations or Writebacks, which count line-level events only.
type Stats struct {
	Loads          uint64
	Stores         uint64
	L1Hits         uint64
	L2Hits         uint64
	DirectoryTrips uint64
	RemoteTrips    uint64
	Invalidations  uint64
	Forwards       uint64
	Writebacks     uint64
	// PageFaults counts IVY access faults (page absent, or write to a
	// read-only page).
	PageFaults uint64
	// PageTransfers counts whole-page copies installed at a requester
	// (from home memory or from the current owner).
	PageTransfers uint64
	// PageInvalidations counts page copies removed from nodes by write
	// faults and ownership transfers.
	PageInvalidations uint64
}

// Protocol is the coherence-backend seam: the machine issues every
// load/store through it and otherwise treats the memory system as a
// black box. Implementations must be deterministic — identical call
// sequences produce identical results — because the simulator's
// byte-identical replay and sharding guarantees rest on it.
//
// The contract:
//
//   - Access executes one transaction atomically at the requester's
//     commit time and returns its completion time and classification.
//   - Home maps a byte address to the node that serves misses for its
//     coherence unit (line or page) — the machine's locality accounting
//     and the DDS home histograms are built on it.
//   - LineBytes is the coherence granularity in bytes (the cache line
//     for the directory backend, the page for IVY).
//   - Stats returns a snapshot of the counters; ResetStats zeroes them
//     so a reused engine (the record cache replays per-interval records
//     rather than machines, but engines may be re-driven by tools) can
//     start a fresh measurement window without rebuilding state.
//   - CheckInvariants validates the backend's global safety property
//     (directory-cache consistency, or SWMR over pages) for tests.
type Protocol interface {
	Kind() Kind
	N() int
	LineBytes() uint64
	Home(addr uint64) int
	Access(now uint64, proc int, addr uint64, write bool) AccessResult
	Stats() Stats
	ResetStats()
	CheckInvariants() error
}

// Compile-time backend checks.
var (
	_ Protocol = (*DirectoryProtocol)(nil)
	_ Protocol = (*IVY)(nil)
)

// Kind names a coherence backend for configuration. The zero value is
// the directory backend, so zero-valued machine configs keep their
// historical (byte-identical) behavior.
type Kind int

const (
	// KindDirectory is the line-granular directory-MSI backend.
	KindDirectory Kind = iota
	// KindIVY is the page-granular IVY-style DSM backend.
	KindIVY
)

// String returns the configuration name of the kind.
func (k Kind) String() string {
	switch k {
	case KindDirectory:
		return "directory"
	case KindIVY:
		return "ivy"
	default:
		return fmt.Sprintf("protocol(%d)", int(k))
	}
}

// ParseKind converts a name to a Kind.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "directory":
		return KindDirectory, nil
	case "ivy":
		return KindIVY, nil
	default:
		return 0, fmt.Errorf("coherence: unknown protocol %q (want directory or ivy)", name)
	}
}

// Kinds returns every backend kind, in configuration-name order.
func Kinds() []Kind { return []Kind{KindDirectory, KindIVY} }

// DefaultPageBytes is the IVY page size when Params.PageBytes is zero.
const DefaultPageBytes = 4096

// Params assembles a coherence backend. It replaces the former
// positional New(n, l1cfg, l2cfg, memCfg, net, costs, home) signature.
type Params struct {
	// N is the processor (node) count, at most 64.
	N int
	// L1 and L2 configure the per-processor caches. IVY models no
	// hardware caches; it uses L1.HitCycles as the resident-page access
	// latency and ignores the rest.
	L1, L2 cache.Config
	// Mem configures each node's SDRAM.
	Mem memory.Config
	// Net is the interconnect; Net.Nodes() must equal N.
	Net network.Topology
	// Costs holds message sizes and controller latencies.
	Costs Costs
	// Home maps a coherence-unit address (line address for the
	// directory backend, page address for IVY) to its home node.
	Home HomeMap
	// PageBytes is IVY's page size (a power of two); zero selects
	// DefaultPageBytes. The directory backend ignores it.
	PageBytes int
}

// New assembles a directory-MSI engine from positional arguments.
//
// Deprecated: use NewDirectory with a Params struct; this wrapper only
// keeps pre-seam callers compiling and will be removed with the next
// incompatible release.
func New(n int, l1cfg, l2cfg cache.Config, memCfg memory.Config,
	net network.Topology, costs Costs, home HomeMap) *DirectoryProtocol {
	return NewDirectory(Params{
		N: n, L1: l1cfg, L2: l2cfg, Mem: memCfg, Net: net, Costs: costs, Home: home,
	})
}

// validate checks the parameters shared by every backend.
func (p Params) validate() {
	if p.N <= 0 {
		panic("coherence: need at least one processor")
	}
	if p.N > 64 {
		panic("coherence: sharer bitmask limits the system to 64 processors")
	}
	if p.Net.Nodes() != p.N {
		panic("coherence: network size must match processor count")
	}
}

type protoError string

func (e protoError) Error() string { return string(e) }

func errf(format string, args ...any) error {
	return protoError(sprintf(format, args...))
}
