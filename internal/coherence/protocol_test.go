package coherence

import (
	"testing"
	"testing/quick"

	"dsmphase/internal/cache"
	"dsmphase/internal/memory"
	"dsmphase/internal/network"
)

// testProtocol builds a small n-proc system with tiny caches so
// evictions happen quickly, and address>>20 selecting the home node.
func testProtocol(n int) *DirectoryProtocol {
	l1 := cache.Config{SizeBytes: 256, Ways: 1, LineBytes: 32, HitCycles: 1}
	l2 := cache.Config{SizeBytes: 1024, Ways: 2, LineBytes: 32, HitCycles: 12}
	net := network.New(n, network.DefaultConfig())
	home := NewHomeMap(20-5, n) // (line·32 >> 20) % n
	return New(n, l1, l2, memory.DefaultConfig(), net, DefaultCosts(), home)
}

// addrAt returns a byte address homed at node h with the given offset.
func addrAt(h int, off uint64) uint64 { return uint64(h)<<20 | off }

func TestLineStateString(t *testing.T) {
	cases := map[LineState]string{Uncached: "U", SharedState: "S", ModifiedState: "M", LineState(7): "?"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d: %q != %q", s, got, want)
		}
	}
}

func TestDirectoryBasics(t *testing.T) {
	d := NewDirectoryTable()
	if d.Lookup(5).State != Uncached {
		t.Error("absent line must be Uncached")
	}
	d.AddSharer(5, 2)
	d.AddSharer(5, 3)
	e := d.Lookup(5)
	if e.State != SharedState || e.Sharers != 0b1100 {
		t.Errorf("entry = %+v", e)
	}
	d.RemoveSharer(5, 2)
	if d.Lookup(5).Sharers != 0b1000 {
		t.Error("RemoveSharer failed")
	}
	d.RemoveSharer(5, 3)
	if d.Lookup(5).State != Uncached || d.Len() != 0 {
		t.Error("empty sharer set must clear the entry")
	}
	d.SetOwner(7, 1)
	e = d.Lookup(7)
	if e.State != ModifiedState || e.Owner != 1 || e.Sharers != 0b10 {
		t.Errorf("owner entry = %+v", e)
	}
	d.Clear(7)
	if d.Len() != 0 {
		t.Error("Clear failed")
	}
}

func TestLocalLoadMissThenHits(t *testing.T) {
	p := testProtocol(2)
	a := addrAt(0, 0x100)
	r := p.Access(0, 0, a, false)
	if r.HitLevel != 0 || r.Remote || !r.MemoryAccess {
		t.Errorf("first access = %+v, want local memory miss", r)
	}
	if r.Done < 150 {
		t.Errorf("miss latency %d too small for SDRAM access", r.Done)
	}
	r = p.Access(r.Done, 0, a, false)
	if r.HitLevel != 1 {
		t.Errorf("second access = %+v, want L1 hit", r)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRemoteLoadCostsMoreThanLocal(t *testing.T) {
	p := testProtocol(4)
	local := p.Access(0, 0, addrAt(0, 0x40), false)
	remote := p.Access(0, 0, addrAt(3, 0x40), false)
	if !remote.Remote {
		t.Fatal("access to node 3's home must be remote")
	}
	if remote.Done-0 <= local.Done-0 {
		t.Errorf("remote latency (%d) must exceed local (%d)", remote.Done, local.Done)
	}
}

func TestReadSharingThenWriteInvalidates(t *testing.T) {
	p := testProtocol(4)
	a := addrAt(1, 0x200)
	line := a / 32
	// Procs 0, 2, 3 read the line.
	var tNow uint64
	for _, q := range []int{0, 2, 3} {
		r := p.Access(tNow, q, a, false)
		tNow = r.Done
	}
	e := p.Directory(1).Lookup(line)
	if e.State != SharedState || e.Sharers != 0b1101 {
		t.Fatalf("directory = %+v, want shared by {0,2,3}", e)
	}
	// Proc 0 writes: sharers 2 and 3 must be invalidated.
	r := p.Access(tNow, 0, a, true)
	if r.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", r.Invalidations)
	}
	e = p.Directory(1).Lookup(line)
	if e.State != ModifiedState || e.Owner != 0 {
		t.Errorf("directory after write = %+v", e)
	}
	for _, q := range []int{2, 3} {
		if hit, _ := p.CacheL2(q).Probe(a); hit {
			t.Errorf("proc %d still caches an invalidated line", q)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDirtyForwardOnLoad(t *testing.T) {
	p := testProtocol(4)
	a := addrAt(2, 0x300)
	line := a / 32
	// Proc 3 writes (becomes owner).
	r := p.Access(0, 3, a, true)
	if p.Directory(2).Lookup(line).State != ModifiedState {
		t.Fatal("setup: line must be modified at proc 3")
	}
	// Proc 0 loads: directory forwards to owner, both end shared.
	r2 := p.Access(r.Done, 0, a, false)
	if !r2.Remote {
		t.Error("forwarded load must be remote")
	}
	e := p.Directory(2).Lookup(line)
	if e.State != SharedState || e.Sharers != 0b1001 {
		t.Errorf("directory = %+v, want shared by {0,3}", e)
	}
	if _, st := p.CacheL2(3).Probe(a); st != cache.Shared {
		t.Errorf("old owner state = %v, want S", st)
	}
	if p.Stats().Forwards != 1 {
		t.Errorf("forwards = %d, want 1", p.Stats().Forwards)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDirtyForwardOnStore(t *testing.T) {
	p := testProtocol(4)
	a := addrAt(1, 0x500)
	line := a / 32
	p.Access(0, 2, a, true) // proc 2 owns
	r := p.Access(1000, 0, a, true)
	e := p.Directory(1).Lookup(line)
	if e.State != ModifiedState || e.Owner != 0 {
		t.Errorf("directory = %+v, want owned by 0", e)
	}
	if hit, _ := p.CacheL2(2).Probe(a); hit {
		t.Error("previous owner must be invalidated")
	}
	if !r.Remote {
		t.Error("ownership transfer must be remote")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	p := testProtocol(2)
	a := addrAt(0, 0x600)
	r := p.Access(0, 0, a, false) // shared
	r2 := p.Access(r.Done, 0, a, true)
	if r2.HitLevel != 2 {
		t.Errorf("upgrade should be an L2 hit path, got %+v", r2)
	}
	if _, st := p.CacheL2(0).Probe(a); st != cache.Modified {
		t.Errorf("state after upgrade = %v, want M", st)
	}
	// Subsequent store is a pure L1 hit.
	r3 := p.Access(r2.Done, 0, a, true)
	if r3.HitLevel != 1 || r3.Done != r2.Done+1 {
		t.Errorf("store hit = %+v", r3)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	p := testProtocol(2)
	// Fill one L2 set (2 ways) with modified lines homed at node 0, then
	// force an eviction with a third conflicting line.
	// L2: 1024B, 2 ways, 32B lines -> 16 sets. Same set: line numbers
	// congruent mod 16.
	base := addrAt(0, 0)
	a1 := base + 0*16*32
	a2 := base + 1*16*32
	a3 := base + 2*16*32
	tNow := uint64(0)
	for _, a := range []uint64{a1, a2} {
		r := p.Access(tNow, 0, a, true)
		tNow = r.Done
	}
	r := p.Access(tNow, 0, a3, true)
	if p.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", p.Stats().Writebacks)
	}
	// The evicted line must be uncached in the directory again.
	if e := p.Directory(0).Lookup(a1 / 32); e.State != Uncached {
		t.Errorf("evicted line directory state = %v, want U", e.State)
	}
	_ = r
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCleanEvictionSendsHint(t *testing.T) {
	p := testProtocol(2)
	a1 := addrAt(0, 0)
	a2 := addrAt(0, 1*16*32)
	a3 := addrAt(0, 2*16*32)
	tNow := uint64(0)
	for _, a := range []uint64{a1, a2, a3} { // third read evicts first
		r := p.Access(tNow, 0, a, false)
		tNow = r.Done
	}
	if e := p.Directory(0).Lookup(a1 / 32); e.State != Uncached {
		t.Errorf("hinted line = %v, want U (sharer set pruned)", e.State)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNewValidation(t *testing.T) {
	l1 := cache.Config{SizeBytes: 256, Ways: 1, LineBytes: 32, HitCycles: 1}
	l2 := cache.Config{SizeBytes: 1024, Ways: 2, LineBytes: 32, HitCycles: 12}
	l2bad := l2
	l2bad.LineBytes = 64
	l2bad.SizeBytes = 2048
	net2 := network.New(2, network.DefaultConfig())
	home := NewHomeMap(64, 1) // every line homed at node 0
	cases := []func(){
		func() { New(0, l1, l2, memory.DefaultConfig(), net2, DefaultCosts(), home) },
		func() { New(65, l1, l2, memory.DefaultConfig(), net2, DefaultCosts(), home) },
		func() { New(4, l1, l2, memory.DefaultConfig(), net2, DefaultCosts(), home) },
		func() { New(2, l1, l2bad, memory.DefaultConfig(), net2, DefaultCosts(), home) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: after any random access sequence the global MSI invariants
// hold: at most one modified copy, sharer sets cover cached copies.
func TestProtocolInvariantsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		p := testProtocol(4)
		tNow := uint64(0)
		for _, o := range ops {
			proc := int(o & 3)
			home := int(o >> 2 & 3)
			off := uint64(o>>4&15) * 32
			write := o&0x8000 != 0
			r := p.Access(tNow, proc, addrAt(home, off), write)
			if r.Done < tNow {
				return false
			}
			tNow = r.Done
		}
		return p.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the protocol is deterministic — identical access sequences
// produce identical completion times and statistics.
func TestProtocolDeterministicProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		run := func() (uint64, Stats) {
			p := testProtocol(4)
			tNow := uint64(0)
			for _, o := range ops {
				r := p.Access(tNow, int(o&3), addrAt(int(o>>2&3), uint64(o>>4&31)*32), o&0x8000 != 0)
				tNow = r.Done
			}
			return tNow, p.Stats()
		}
		t1, s1 := run()
		t2, s2 := run()
		return t1 == t2 && s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
