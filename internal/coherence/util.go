package coherence

import "fmt"

// sprintf is a thin alias so the protocol file stays free of direct fmt
// dependencies in its hot paths.
func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
