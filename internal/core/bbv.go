// Package core implements the paper's phase-detection hardware: the BBV
// (basic block vector) detector of Sherwood et al. used as the
// uniprocessor baseline, and the paper's contribution — the DDV (data
// distribution vector) extension that adds a frequency matrix, a distance
// matrix and a contention vector, summarized per interval into a data
// distribution scalar (DDS) and used alongside the BBV for two-threshold
// phase classification in DSM multiprocessors.
package core

// DefaultAccumulatorSize is the number of accumulator counters per
// processor in the paper's configuration (32).
const DefaultAccumulatorSize = 32

// DefaultFootprintSize is the number of footprint-table entries per
// processor in the paper's configuration (32).
const DefaultFootprintSize = 32

// Accumulator is the BBV accumulator: an array of hardware counters
// hashed by branch instruction address. On every committed branch the
// counter selected by the branch PC is incremented by the number of
// instructions committed since the previous branch, approximating the
// execution frequency distribution of basic blocks.
type Accumulator struct {
	counts     []uint64
	sinceLast  uint64
	totalInstr uint64
}

// NewAccumulator returns an accumulator with the given number of
// counters. size must be positive.
func NewAccumulator(size int) *Accumulator {
	if size <= 0 {
		panic("core: accumulator size must be positive")
	}
	return &Accumulator{counts: make([]uint64, size)}
}

// Size returns the number of counters.
func (a *Accumulator) Size() int { return len(a.counts) }

// hashPC maps a branch PC to a counter index using Fibonacci hashing:
// multiply by the golden-ratio constant and range-map through the HIGH
// bits of the product. (Taking the product modulo a power-of-two table
// size would use only its low bits, and branch PCs that differ by a
// multiple of size·4 would all collide.)
func hashPC(pc uint32, size int) int {
	h := (pc >> 2) * 2654435761
	return int(uint64(h) * uint64(size) >> 32)
}

// Instruction records one committed non-branch, non-sync instruction.
func (a *Accumulator) Instruction() {
	a.sinceLast++
	a.totalInstr++
}

// Branch records a committed branch at pc: the counter hashed from pc is
// incremented by the number of instructions since the last branch, plus
// one for the branch itself.
func (a *Accumulator) Branch(pc uint32) {
	a.sinceLast++ // the branch instruction itself
	a.totalInstr++
	a.counts[hashPC(pc, len(a.counts))] += a.sinceLast
	a.sinceLast = 0
}

// Total returns the number of instructions recorded since the last Reset.
func (a *Accumulator) Total() uint64 { return a.totalInstr }

// Snapshot returns the accumulator normalized to sum 1 (the fractional
// basic-block distribution for the interval). An interval with no
// recorded instructions yields a zero vector.
func (a *Accumulator) Snapshot() []float64 {
	return a.SnapshotInto(make([]float64, len(a.counts)))
}

// SnapshotInto writes the normalized snapshot into dst, which must have
// the accumulator's length, and returns it. Callers that record many
// intervals hand in arena-backed slices so the per-interval hot path
// allocates nothing (the machine's endInterval).
func (a *Accumulator) SnapshotInto(dst []float64) []float64 {
	if len(dst) != len(a.counts) {
		panic("core: SnapshotInto needs a dst of the accumulator's size")
	}
	var sum uint64
	for _, c := range a.counts {
		sum += c
	}
	// Instructions after the final branch of the interval are not yet
	// attributed to any counter; they are dropped, as in the hardware,
	// where the accumulator only advances on branch commits.
	if sum == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	inv := 1 / float64(sum)
	for i, c := range a.counts {
		dst[i] = float64(c) * inv
	}
	return dst
}

// Reset zeroes all counters, beginning a new interval.
func (a *Accumulator) Reset() {
	for i := range a.counts {
		a.counts[i] = 0
	}
	a.sinceLast = 0
	a.totalInstr = 0
}

// Manhattan returns the Manhattan (L1) distance between two vectors of
// equal length. For vectors normalized to sum 1 the distance lies in
// [0, 2].
func Manhattan(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("core: Manhattan distance requires equal-length vectors")
	}
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return d
}
