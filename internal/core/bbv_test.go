package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	a := NewAccumulator(8)
	if a.Size() != 8 {
		t.Fatalf("Size = %d", a.Size())
	}
	// Basic block of 4 instructions ending in a branch at PC 0x40.
	a.Instruction()
	a.Instruction()
	a.Instruction()
	a.Branch(0x40)
	if a.Total() != 4 {
		t.Fatalf("Total = %d, want 4", a.Total())
	}
	snap := a.Snapshot()
	var sum float64
	nonZero := 0
	for _, v := range snap {
		sum += v
		if v > 0 {
			nonZero++
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("snapshot sum = %v, want 1", sum)
	}
	if nonZero != 1 {
		t.Errorf("one basic block must occupy exactly one bucket, got %d", nonZero)
	}
}

func TestAccumulatorReset(t *testing.T) {
	a := NewAccumulator(8)
	a.Instruction()
	a.Branch(0x10)
	a.Reset()
	if a.Total() != 0 {
		t.Error("Total not reset")
	}
	for i, v := range a.Snapshot() {
		if v != 0 {
			t.Errorf("bucket %d = %v after reset", i, v)
		}
	}
}

func TestAccumulatorEmptySnapshot(t *testing.T) {
	a := NewAccumulator(4)
	snap := a.Snapshot()
	for _, v := range snap {
		if v != 0 {
			t.Fatal("empty accumulator snapshot must be zero")
		}
	}
}

func TestAccumulatorTailInstructionsDropped(t *testing.T) {
	a := NewAccumulator(4)
	a.Branch(0x10)
	// Instructions after the last branch are not attributed.
	a.Instruction()
	a.Instruction()
	snap := a.Snapshot()
	var sum float64
	for _, v := range snap {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("sum = %v; tail instructions must not distort the distribution", sum)
	}
}

func TestAccumulatorDistinctBlocks(t *testing.T) {
	a := NewAccumulator(32)
	// Two distinct basic blocks executed with 3:1 frequency.
	for i := 0; i < 3; i++ {
		a.Instruction()
		a.Branch(0x100)
	}
	a.Instruction()
	a.Branch(0x2040)
	snap := a.Snapshot()
	i1, i2 := hashPC(0x100, 32), hashPC(0x2040, 32)
	if i1 == i2 {
		t.Skip("hash collision in chosen PCs; pick different test PCs")
	}
	if math.Abs(snap[i1]-0.75) > 1e-12 || math.Abs(snap[i2]-0.25) > 1e-12 {
		t.Errorf("distribution = %v / %v, want 0.75 / 0.25", snap[i1], snap[i2])
	}
}

func TestNewAccumulatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for size 0")
		}
	}()
	NewAccumulator(0)
}

func TestManhattan(t *testing.T) {
	a := []float64{0.5, 0.5, 0}
	b := []float64{0, 0.5, 0.5}
	if got := Manhattan(a, b); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Manhattan = %v, want 1", got)
	}
	if got := Manhattan(a, a); got != 0 {
		t.Errorf("self-distance = %v", got)
	}
}

func TestManhattanMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Manhattan([]float64{1}, []float64{1, 2})
}

// Properties of the Manhattan distance: symmetry, non-negativity,
// triangle inequality, and boundedness by 2 for normalized vectors.
func TestManhattanProperties(t *testing.T) {
	norm := func(raw []uint8) []float64 {
		v := make([]float64, 8)
		var sum float64
		for i := range v {
			var x float64 = 1 // avoid all-zero
			if i < len(raw) {
				x = float64(raw[i]) + 1
			}
			v[i] = x
			sum += x
		}
		for i := range v {
			v[i] /= sum
		}
		return v
	}
	f := func(ra, rb, rc []uint8) bool {
		a, b, c := norm(ra), norm(rb), norm(rc)
		dab, dba := Manhattan(a, b), Manhattan(b, a)
		if math.Abs(dab-dba) > 1e-12 || dab < 0 || dab > 2+1e-12 {
			return false
		}
		// Triangle inequality.
		return Manhattan(a, c) <= dab+Manhattan(b, c)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the accumulator snapshot always sums to 0 or 1, and total
// instruction count equals what was fed in.
func TestAccumulatorSnapshotProperty(t *testing.T) {
	f := func(blocks []uint8, pcs []uint32) bool {
		a := NewAccumulator(32)
		var fed uint64
		for i, blen := range blocks {
			n := int(blen % 16)
			for k := 0; k < n; k++ {
				a.Instruction()
			}
			fed += uint64(n)
			if i < len(pcs) {
				a.Branch(pcs[i])
				fed++
			}
		}
		if a.Total() != fed {
			return false
		}
		var sum float64
		for _, v := range a.Snapshot() {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == 0 || math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashPCInRange(t *testing.T) {
	f := func(pc uint32) bool {
		h := hashPC(pc, 32)
		return h >= 0 && h < 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashPCSpreads(t *testing.T) {
	// 256 word-aligned PCs must hit a healthy fraction of 32 buckets.
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		seen[hashPC(uint32(0x1000+4*i), 32)] = true
	}
	if len(seen) < 24 {
		t.Errorf("hash hit only %d/32 buckets", len(seen))
	}
}
