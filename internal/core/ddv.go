package core

// DDV state for one processor. Each processor's data distribution vector
// comprises a frequency matrix F, a (pre-programmed, read-only) distance
// matrix D, and a contention vector C assembled at interval end.
//
// Frequency matrix semantics (paper §III-B): at processor p, counter
// F[i][j] tracks — on behalf of processor i — the number of loads and
// stores committed by p that accessed data with home node j since
// processor i last started a new interval. Every committed memory access
// by p with home j logically increments F[k][j] for all k; when processor
// i ends an interval it queries every processor's F[i] row, which is then
// zeroed, starting a fresh count on i's behalf.
//
// The hardware increments n counters per access; this model uses the
// equivalent subtract-snapshot formulation (a single monotone total per
// home plus one snapshot per requesting processor) so that each access is
// O(1). Query results are bit-identical to the naive scheme, which the
// tests verify.

// FrequencyMatrix is the per-processor F matrix in snapshot form.
type FrequencyMatrix struct {
	n      int
	totals []uint64 // totals[j]: accesses by this processor to home j, ever
	snaps  [][]uint64
	// snaps[i][j]: value of totals[j] when processor i last queried.
}

// NewFrequencyMatrix returns the F matrix for one processor in an
// n-processor system.
func NewFrequencyMatrix(n int) *FrequencyMatrix {
	if n <= 0 {
		panic("core: system size must be positive")
	}
	f := &FrequencyMatrix{
		n:      n,
		totals: make([]uint64, n),
		snaps:  make([][]uint64, n),
	}
	for i := range f.snaps {
		f.snaps[i] = make([]uint64, n)
	}
	return f
}

// N returns the system size.
func (f *FrequencyMatrix) N() int { return f.n }

// Access records a committed load or store whose data has home node j.
func (f *FrequencyMatrix) Access(j int) { f.totals[j]++ }

// QueryAndReset returns the frequency vector F_i — accesses by this
// processor, per home node, since processor i's last query — and resets
// the count on i's behalf. The result is written into dst if it has
// capacity n, otherwise a new slice is allocated.
func (f *FrequencyMatrix) QueryAndReset(i int, dst []uint64) []uint64 {
	if cap(dst) < f.n {
		dst = make([]uint64, f.n)
	}
	dst = dst[:f.n]
	snap := f.snaps[i]
	for j := 0; j < f.n; j++ {
		dst[j] = f.totals[j] - snap[j]
		snap[j] = f.totals[j]
	}
	return dst
}

// DistanceMatrix holds the pre-programmed node-to-node distance constants
// D. The paper requires D[i][i] = 1; off-diagonal entries measure the
// distance from node i to node j (here: 1 + hop count, supplied by the
// topology).
type DistanceMatrix struct {
	n int
	d []float64
}

// NewDistanceMatrix builds D from a hop-count function. hops(i,j) must
// return 0 for i==j.
func NewDistanceMatrix(n int, hops func(i, j int) int) *DistanceMatrix {
	if n <= 0 {
		panic("core: system size must be positive")
	}
	m := &DistanceMatrix{n: n, d: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				m.d[i*n+j] = 1
			} else {
				m.d[i*n+j] = 1 + float64(hops(i, j))
			}
		}
	}
	return m
}

// UniformDistanceMatrix returns a D with every entry 1 (ablation: no
// distance weighting).
func UniformDistanceMatrix(n int) *DistanceMatrix {
	m := &DistanceMatrix{n: n, d: make([]float64, n*n)}
	for i := range m.d {
		m.d[i] = 1
	}
	return m
}

// At returns D[i][j].
func (m *DistanceMatrix) At(i, j int) float64 { return m.d[i*m.n+j] }

// N returns the system size.
func (m *DistanceMatrix) N() int { return m.n }

// DDSOptions selects ablation variants of the DDS computation.
type DDSOptions struct {
	// IgnoreContention replaces the contention vector C with all-ones,
	// removing the system-wide contention term from the product.
	IgnoreContention bool
}

// ComputeDDS evaluates the paper's data distribution scalar for
// processor i:
//
//	DDS = Σ_j F_ij · D_ij · C_j
//
// where freq is processor i's own frequency vector F_i (accesses by i per
// home node over the interval), dist is the distance matrix row for i,
// and contention C_j is the sum over all processors' F_i vectors — the
// system-wide access count to home j during i's interval.
//
// The raw sum grows quadratically with interval length, so for
// threshold comparability across configurations the normalized form
// divides F by its own total and C by its own total, yielding a value in
// [0, max(D)]: an interval-length-independent "average weighted cost" of
// i's accesses, where the contention weight C_j/ΣC is the share of
// system-wide traffic competing for the homes i uses. Both raw and
// normalized values are returned.
func ComputeDDS(i int, freq []uint64, contention []uint64, dist *DistanceMatrix, opt DDSOptions) (raw, normalized float64) {
	n := dist.N()
	if len(freq) != n || len(contention) != n {
		panic("core: ComputeDDS dimension mismatch")
	}
	var fTot, cTot float64
	for j := 0; j < n; j++ {
		fTot += float64(freq[j])
		cTot += float64(contention[j])
	}
	for j := 0; j < n; j++ {
		c := float64(contention[j])
		if opt.IgnoreContention {
			c = 1
		}
		raw += float64(freq[j]) * dist.At(i, j) * c
	}
	if fTot == 0 {
		return raw, 0
	}
	for j := 0; j < n; j++ {
		cw := 1.0
		if !opt.IgnoreContention && cTot > 0 {
			cw = float64(contention[j]) / cTot
		}
		normalized += (float64(freq[j]) / fTot) * dist.At(i, j) * cw
	}
	return raw, normalized
}

// SumContention accumulates the n frequency vectors handed out by all
// processors (including the requester's own) into the contention vector
// C. dst is reused if it has sufficient capacity.
func SumContention(vectors [][]uint64, dst []uint64) []uint64 {
	if len(vectors) == 0 {
		return dst[:0]
	}
	n := len(vectors[0])
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	dst = dst[:n]
	for j := range dst {
		dst[j] = 0
	}
	for _, v := range vectors {
		if len(v) != n {
			panic("core: SumContention dimension mismatch")
		}
		for j, x := range v {
			dst[j] += x
		}
	}
	return dst
}
