package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFrequencyMatrixBasic(t *testing.T) {
	f := NewFrequencyMatrix(4)
	if f.N() != 4 {
		t.Fatalf("N = %d", f.N())
	}
	f.Access(0)
	f.Access(0)
	f.Access(3)
	v := f.QueryAndReset(1, nil)
	want := []uint64{2, 0, 0, 1}
	for j, w := range want {
		if v[j] != w {
			t.Errorf("F_1[%d] = %d, want %d", j, v[j], w)
		}
	}
	// Counts on behalf of proc 1 were reset; proc 2's view still has them.
	v1 := f.QueryAndReset(1, nil)
	for j, x := range v1 {
		if x != 0 {
			t.Errorf("after reset F_1[%d] = %d, want 0", j, x)
		}
	}
	v2 := f.QueryAndReset(2, nil)
	for j, w := range want {
		if v2[j] != w {
			t.Errorf("F_2[%d] = %d, want %d", j, v2[j], w)
		}
	}
}

func TestFrequencyMatrixIndependentViews(t *testing.T) {
	f := NewFrequencyMatrix(2)
	f.Access(0)
	_ = f.QueryAndReset(0, nil) // proc 0 starts a new interval
	f.Access(1)
	v0 := f.QueryAndReset(0, nil)
	if v0[0] != 0 || v0[1] != 1 {
		t.Errorf("proc 0 view = %v, want [0 1]", v0)
	}
	v1 := f.QueryAndReset(1, nil)
	if v1[0] != 1 || v1[1] != 1 {
		t.Errorf("proc 1 view = %v, want [1 1]", v1)
	}
}

// Property: the snapshot formulation is equivalent to the paper's naive
// hardware (increment F[k][j] for all k on every access; zero row i on
// i's query).
func TestFrequencyMatrixEquivalence(t *testing.T) {
	type op struct {
		Query bool
		Idx   uint8
	}
	f := func(ops []op) bool {
		const n = 4
		fm := NewFrequencyMatrix(n)
		naive := make([][]uint64, n) // naive[i][j]
		for i := range naive {
			naive[i] = make([]uint64, n)
		}
		for _, o := range ops {
			k := int(o.Idx) % n
			if o.Query {
				got := fm.QueryAndReset(k, nil)
				for j := 0; j < n; j++ {
					if got[j] != naive[k][j] {
						return false
					}
					naive[k][j] = 0
				}
			} else {
				fm.Access(k)
				for i := 0; i < n; i++ {
					naive[i][k]++
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFrequencyMatrixReuseBuffer(t *testing.T) {
	f := NewFrequencyMatrix(3)
	f.Access(2)
	buf := make([]uint64, 3)
	v := f.QueryAndReset(0, buf)
	if &v[0] != &buf[0] {
		t.Error("QueryAndReset must reuse a sufficiently large buffer")
	}
}

func TestDistanceMatrix(t *testing.T) {
	hops := func(i, j int) int {
		d := i - j
		if d < 0 {
			d = -d
		}
		return d
	}
	m := NewDistanceMatrix(4, hops)
	for i := 0; i < 4; i++ {
		if m.At(i, i) != 1 {
			t.Errorf("D[%d][%d] = %v, want 1 (paper requires 1 on diagonal)", i, i, m.At(i, i))
		}
	}
	if m.At(0, 3) != 4 { // 1 + 3 hops
		t.Errorf("D[0][3] = %v, want 4", m.At(0, 3))
	}
}

func TestUniformDistanceMatrix(t *testing.T) {
	m := UniformDistanceMatrix(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 1 {
				t.Errorf("D[%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestComputeDDSAllLocal(t *testing.T) {
	m := NewDistanceMatrix(2, func(i, j int) int { return 1 })
	// Proc 0 only touches its own home; no other traffic.
	raw, norm := ComputeDDS(0, []uint64{10, 0}, []uint64{10, 0}, m, DDSOptions{})
	if raw != 10*1*10 {
		t.Errorf("raw = %v, want 100", raw)
	}
	// normalized: (10/10)*1*(10/10) = 1 — minimal cost.
	if math.Abs(norm-1) > 1e-12 {
		t.Errorf("normalized = %v, want 1", norm)
	}
}

func TestComputeDDSRemoteCostsMore(t *testing.T) {
	m := NewDistanceMatrix(2, func(i, j int) int { return 2 })
	_, local := ComputeDDS(0, []uint64{10, 0}, []uint64{10, 0}, m, DDSOptions{})
	_, remote := ComputeDDS(0, []uint64{0, 10}, []uint64{0, 10}, m, DDSOptions{})
	if remote <= local {
		t.Errorf("remote-heavy DDS (%v) must exceed local-heavy DDS (%v)", remote, local)
	}
	if math.Abs(remote-3) > 1e-12 { // (10/10)*(1+2)*(10/10)
		t.Errorf("remote = %v, want 3", remote)
	}
}

func TestComputeDDSContentionTerm(t *testing.T) {
	m := UniformDistanceMatrix(2)
	// Same own accesses; system contention concentrated on home 0 vs split.
	_, hot := ComputeDDS(0, []uint64{10, 0}, []uint64{100, 0}, m, DDSOptions{})
	_, split := ComputeDDS(0, []uint64{10, 0}, []uint64{50, 50}, m, DDSOptions{})
	if hot <= split {
		t.Errorf("concentrated contention (%v) must exceed split contention (%v)", hot, split)
	}
	// With contention ignored the two cases are identical.
	_, a := ComputeDDS(0, []uint64{10, 0}, []uint64{100, 0}, m, DDSOptions{IgnoreContention: true})
	_, b := ComputeDDS(0, []uint64{10, 0}, []uint64{50, 50}, m, DDSOptions{IgnoreContention: true})
	if a != b {
		t.Errorf("IgnoreContention must erase contention sensitivity: %v vs %v", a, b)
	}
}

func TestComputeDDSEmptyInterval(t *testing.T) {
	m := UniformDistanceMatrix(2)
	raw, norm := ComputeDDS(0, []uint64{0, 0}, []uint64{5, 5}, m, DDSOptions{})
	if raw != 0 || norm != 0 {
		t.Errorf("empty interval DDS = (%v, %v), want (0, 0)", raw, norm)
	}
}

func TestComputeDDSDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ComputeDDS(0, []uint64{1}, []uint64{1, 2}, UniformDistanceMatrix(2), DDSOptions{})
}

func TestSumContention(t *testing.T) {
	vs := [][]uint64{{1, 2}, {3, 4}, {0, 1}}
	c := SumContention(vs, nil)
	if c[0] != 4 || c[1] != 7 {
		t.Errorf("C = %v, want [4 7]", c)
	}
	// Reuse.
	buf := make([]uint64, 2)
	c2 := SumContention(vs, buf)
	if &c2[0] != &buf[0] {
		t.Error("SumContention must reuse the buffer")
	}
	if c2[0] != 4 || c2[1] != 7 {
		t.Errorf("C2 = %v", c2)
	}
	if got := SumContention(nil, buf); len(got) != 0 {
		t.Error("empty input must give empty output")
	}
}

// Property: normalized DDS of a single-processor view is bounded by the
// max distance entry and at least the min distance entry.
func TestComputeDDSBoundsProperty(t *testing.T) {
	f := func(freqRaw [4]uint8, contRaw [4]uint8) bool {
		n := 4
		m := NewDistanceMatrix(n, func(i, j int) int {
			return ((i ^ j) & 1) + ((i ^ j) >> 1 & 1) // hypercube-ish hops
		})
		freq := make([]uint64, n)
		cont := make([]uint64, n)
		var any bool
		for j := 0; j < n; j++ {
			freq[j] = uint64(freqRaw[j])
			cont[j] = uint64(contRaw[j]) + freq[j] // contention includes own accesses
			if freq[j] > 0 {
				any = true
			}
		}
		_, norm := ComputeDDS(0, freq, cont, m, DDSOptions{})
		if !any {
			return norm == 0
		}
		var minD, maxD float64 = math.Inf(1), 0
		for j := 0; j < n; j++ {
			d := m.At(0, j)
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
		// Contention weights sum to <=1 over accessed homes, so the bound
		// is normalized DDS <= maxD and >= 0.
		return norm >= 0 && norm <= maxD+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverheadEstimatePaperNumbers(t *testing.T) {
	o := PaperOverheadConfig()
	if got := o.IntervalSeconds(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("interval = %v s, want 0.05", got)
	}
	bw := o.BandwidthPerProcessor()
	// Paper: "about 160kB/s".
	if bw < 150e3 || bw > 170e3 {
		t.Errorf("bandwidth = %v B/s, want ~160 kB/s", bw)
	}
	// Paper: "under 0.15% of the peak bandwidth".
	if frac := o.FractionOfController(); frac >= 0.0015 {
		t.Errorf("fraction = %v, want < 0.0015", frac)
	}
}

func TestOverheadScalesQuadratically(t *testing.T) {
	a := PaperOverheadConfig()
	b := a
	b.Processors = 64
	ra := a.BytesPerInterval()
	rb := b.BytesPerInterval()
	// n(n-1) scaling: 64*63 / (32*31).
	want := float64(64*63) / float64(32*31)
	if math.Abs(rb/ra-want) > 1e-9 {
		t.Errorf("scaling = %v, want %v", rb/ra, want)
	}
}
