package core

import "fmt"

// Detector kinds.
type DetectorKind int

const (
	// DetectorBBV is the uniprocessor baseline: BBV signature only.
	DetectorBBV DetectorKind = iota
	// DetectorBBVDDV is the paper's contribution: BBV plus DDS, matched
	// with two thresholds.
	DetectorBBVDDV
	// DetectorDDS is an ablation variant that classifies on the DDS
	// alone (BBV threshold effectively infinite).
	DetectorDDS
	// DetectorWSS is the working-set-signature baseline of Dhodapkar &
	// Smith, discussed in the paper's related work (§V).
	DetectorWSS
)

// String returns the detector name used in figures and tables.
func (k DetectorKind) String() string {
	switch k {
	case DetectorBBV:
		return "BBV"
	case DetectorBBVDDV:
		return "BBV+DDV"
	case DetectorDDS:
		return "DDS"
	case DetectorWSS:
		return "WSS"
	default:
		return "unknown"
	}
}

// ParseDetectorKind converts a figure/table detector name ("BBV",
// "BBV+DDV", "DDS", "WSS") back to its kind — the inverse of String,
// used by serialized experiment artifacts.
func ParseDetectorKind(name string) (DetectorKind, error) {
	for _, k := range []DetectorKind{DetectorBBV, DetectorBBVDDV, DetectorDDS, DetectorWSS} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown detector kind %q", name)
}

// IntervalSignature is everything the phase-detection hardware observes
// about one sampling interval on one processor. The machine records one
// per (processor, interval); classification — online or the offline
// 200-threshold sweep — consumes only these.
type IntervalSignature struct {
	// Proc is the processor that owns the interval.
	Proc int
	// Index is the interval's ordinal position on that processor.
	Index int
	// BBV is the normalized accumulator snapshot (sums to 1).
	BBV []float64
	// WSS is the interval's instruction working-set signature (for the
	// Dhodapkar-Smith baseline detector).
	WSS WSSignature
	// DDS is the normalized data distribution scalar.
	DDS float64
	// RawDDS is the unnormalized Σ F·D·C sum.
	RawDDS float64
	// PhaseID is the phase the online hardware detector assigned at
	// interval end, or -1 when the machine ran without one (offline
	// classification via ClassifyRecorded).
	PhaseID int
	// Instructions is the committed non-synchronization instruction count
	// (the interval length definition of the paper).
	Instructions uint64
	// Cycles is the number of processor cycles the interval spanned.
	Cycles uint64
	// LocalAccesses and RemoteAccesses count committed memory operations
	// by home locality (diagnostic; not used for classification).
	LocalAccesses  uint64
	RemoteAccesses uint64
}

// CPI returns the interval's cycles per committed non-sync instruction.
func (s IntervalSignature) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// Detector is the per-processor online phase detector: a BBV accumulator
// plus footprint table, optionally extended with DDS matching. It mirrors
// the hardware organization of Fig. 1 / Fig. 3 in the paper.
type Detector struct {
	Kind  DetectorKind
	Acc   *Accumulator
	Table *FootprintTable
}

// NewDetector builds an online detector. For DetectorBBV thDDS is
// ignored. For DetectorDDS the BBV threshold is set permissive (2 is the
// maximum possible Manhattan distance between normalized vectors, so
// every interval BBV-matches every entry).
func NewDetector(kind DetectorKind, accSize, tableSize int, thBBV, thDDS float64) *Detector {
	d := &Detector{Kind: kind, Acc: NewAccumulator(accSize)}
	switch kind {
	case DetectorBBV:
		d.Table = NewFootprintTable(tableSize, thBBV)
	case DetectorBBVDDV:
		d.Table = NewFootprintTableDDS(tableSize, thBBV, thDDS)
	case DetectorDDS:
		d.Table = NewFootprintTableDDS(tableSize, 2.0, thDDS)
	default:
		panic("core: unknown detector kind")
	}
	return d
}

// EndInterval classifies the just-finished interval given its DDS and
// resets the accumulator for the next interval. It returns the phase ID.
func (d *Detector) EndInterval(dds float64) (phaseID int, matched bool) {
	bbv := d.Acc.Snapshot()
	phaseID, matched = d.Table.Classify(bbv, dds)
	d.Acc.Reset()
	return phaseID, matched
}

// ClassifyRecorded replays footprint-table dynamics over a recorded
// per-processor signature sequence at the given thresholds, returning the
// phase ID assigned to each interval. This is the offline equivalent of
// running the online detector with those thresholds and is what makes the
// paper's 200-point threshold sweep cheap: the simulation runs once, the
// sweep replays classification only.
func ClassifyRecorded(kind DetectorKind, tableSize int, thBBV, thDDS float64, sigs []IntervalSignature) []int {
	var table *FootprintTable
	switch kind {
	case DetectorBBV:
		table = NewFootprintTable(tableSize, thBBV)
	case DetectorBBVDDV:
		table = NewFootprintTableDDS(tableSize, thBBV, thDDS)
	case DetectorDDS:
		table = NewFootprintTableDDS(tableSize, 2.0, thDDS)
	case DetectorWSS:
		// The WSS baseline classifies on the working-set signature with
		// thBBV interpreted as the relative-distance threshold.
		return ClassifyRecordedWSS(tableSize, thBBV, sigs)
	default:
		panic("core: unknown detector kind")
	}
	out := make([]int, len(sigs))
	for i, s := range sigs {
		out[i], _ = table.Classify(s.BBV, s.DDS)
	}
	return out
}
