package core

import (
	"testing"
	"testing/quick"
)

func TestDetectorKindString(t *testing.T) {
	cases := map[DetectorKind]string{
		DetectorBBV:      "BBV",
		DetectorBBVDDV:   "BBV+DDV",
		DetectorDDS:      "DDS",
		DetectorKind(42): "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestIntervalSignatureCPI(t *testing.T) {
	s := IntervalSignature{Cycles: 300, Instructions: 100}
	if got := s.CPI(); got != 3 {
		t.Errorf("CPI = %v, want 3", got)
	}
	if (IntervalSignature{}).CPI() != 0 {
		t.Error("empty interval CPI must be 0")
	}
}

func feedBlock(d *Detector, pc uint32, nInstr, times int) {
	for i := 0; i < times; i++ {
		for k := 0; k < nInstr; k++ {
			d.Acc.Instruction()
		}
		d.Acc.Branch(pc)
	}
}

func TestOnlineDetectorBBVSeparatesCode(t *testing.T) {
	d := NewDetector(DetectorBBV, 32, 32, 0.2, 0)
	// Interval 1: block A only.
	feedBlock(d, 0x100, 8, 100)
	p1, _ := d.EndInterval(0)
	// Interval 2: same code -> same phase.
	feedBlock(d, 0x100, 8, 100)
	p2, matched := d.EndInterval(0)
	if !matched || p2 != p1 {
		t.Errorf("identical code must share a phase: (%d,%v) vs %d", p2, matched, p1)
	}
	// Interval 3: different block -> new phase.
	feedBlock(d, 0x2040, 8, 100)
	p3, matched := d.EndInterval(0)
	if matched || p3 == p1 {
		t.Errorf("different code must be a new phase: (%d,%v)", p3, matched)
	}
}

func TestOnlineDetectorBBVBlindToDDS(t *testing.T) {
	// The baseline cannot distinguish intervals that execute the same
	// code but differ in data distribution — the paper's core criticism.
	d := NewDetector(DetectorBBV, 32, 32, 0.2, 0)
	feedBlock(d, 0x100, 8, 100)
	p1, _ := d.EndInterval(1.0) // local-heavy interval
	feedBlock(d, 0x100, 8, 100)
	p2, matched := d.EndInterval(5.0) // remote-heavy interval
	if !matched || p2 != p1 {
		t.Errorf("BBV must ignore DDS: (%d,%v) vs %d", p2, matched, p1)
	}
}

func TestOnlineDetectorDDVSeparatesDataDistribution(t *testing.T) {
	d := NewDetector(DetectorBBVDDV, 32, 32, 0.2, 0.5)
	feedBlock(d, 0x100, 8, 100)
	p1, _ := d.EndInterval(1.0)
	feedBlock(d, 0x100, 8, 100)
	p2, matched := d.EndInterval(5.0) // same code, different distribution
	if matched || p2 == p1 {
		t.Errorf("BBV+DDV must split on DDS: (%d,%v) vs %d", p2, matched, p1)
	}
	feedBlock(d, 0x100, 8, 100)
	p3, matched := d.EndInterval(1.2) // back to local-ish: reuse phase 1
	if !matched || p3 != p1 {
		t.Errorf("DDS within threshold must match: (%d,%v) vs %d", p3, matched, p1)
	}
}

func TestDetectorDDSKindIgnoresBBV(t *testing.T) {
	d := NewDetector(DetectorDDS, 32, 32, 0, 0.5)
	feedBlock(d, 0x100, 8, 100)
	p1, _ := d.EndInterval(1.0)
	feedBlock(d, 0x2040, 8, 100) // totally different code
	p2, matched := d.EndInterval(1.1)
	if !matched || p2 != p1 {
		t.Errorf("DDS-only detector must ignore BBV: (%d,%v) vs %d", p2, matched, p1)
	}
}

func TestNewDetectorUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDetector(DetectorKind(9), 32, 32, 0.1, 0.1)
}

func TestClassifyRecordedMatchesOnline(t *testing.T) {
	// The offline replay must produce exactly the same phase sequence as
	// the online detector at the same thresholds.
	mk := func(x, dds float64) IntervalSignature {
		return IntervalSignature{BBV: []float64{x, 1 - x}, DDS: dds}
	}
	sigs := []IntervalSignature{
		mk(1.0, 1.0), mk(0.95, 1.05), mk(0.0, 1.0), mk(1.0, 4.0),
		mk(0.97, 0.98), mk(0.05, 1.0), mk(1.0, 4.1),
	}
	for _, kind := range []DetectorKind{DetectorBBV, DetectorBBVDDV, DetectorDDS} {
		offline := ClassifyRecorded(kind, 4, 0.2, 0.3, sigs)
		// Online equivalent: feed the footprint table directly.
		var table *FootprintTable
		switch kind {
		case DetectorBBV:
			table = NewFootprintTable(4, 0.2)
		case DetectorBBVDDV:
			table = NewFootprintTableDDS(4, 0.2, 0.3)
		case DetectorDDS:
			table = NewFootprintTableDDS(4, 2.0, 0.3)
		}
		for i, s := range sigs {
			id, _ := table.Classify(s.BBV, s.DDS)
			if id != offline[i] {
				t.Errorf("%v: interval %d offline=%d online=%d", kind, i, offline[i], id)
			}
		}
	}
}

func TestClassifyRecordedUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ClassifyRecorded(DetectorKind(7), 4, 0.1, 0.1, nil)
}

// Property: ClassifyRecorded is deterministic and assigns IDs densely
// starting at 0.
func TestClassifyRecordedProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		sigs := make([]IntervalSignature, len(raw))
		for i, r := range raw {
			x := float64(r%8) / 8
			sigs[i] = IntervalSignature{BBV: []float64{x, 1 - x}, DDS: float64(r % 4)}
		}
		a := ClassifyRecorded(DetectorBBVDDV, 8, 0.1, 0.5, sigs)
		b := ClassifyRecorded(DetectorBBVDDV, 8, 0.1, 0.5, sigs)
		maxID := -1
		for i := range a {
			if a[i] != b[i] {
				return false
			}
			if a[i] > maxID {
				maxID = a[i]
			}
			if a[i] < 0 {
				return false
			}
		}
		// IDs dense: every id in [0,maxID] appears.
		seen := make([]bool, maxID+1)
		for _, id := range a {
			seen[id] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
