package core

import "math"

// FootprintEntry is one footprint-table row: the stored BBV signature,
// the stored DDS value, and the phase identifier assigned when the entry
// was allocated.
type FootprintEntry struct {
	BBV     []float64
	DDS     float64
	PhaseID int
	lastUse uint64
	valid   bool
}

// FootprintTable records previously observed interval signatures and
// classifies new intervals against them. Entries are replaced LRU, as in
// the paper's 32-vector footprint table.
//
// Classification uses one or two thresholds: an interval matches an entry
// if its BBV Manhattan distance is at or below ThBBV and, when the table
// was built with DDS enabled, its absolute DDS difference is at or below
// ThDDS. Among matching entries the one with the smallest Manhattan
// distance wins ("the entry with the smallest Manhattan distance is
// taken"). If no entry matches, a new entry is allocated — possibly
// replacing the least recently used one — and assigned a fresh phase ID.
type FootprintTable struct {
	entries   []FootprintEntry
	thBBV     float64
	thDDS     float64
	useDDS    bool
	clock     uint64
	nextPhase int
}

// NewFootprintTable returns a table with the given number of entries and
// BBV threshold; DDS matching is disabled (baseline BBV detector).
func NewFootprintTable(size int, thBBV float64) *FootprintTable {
	if size <= 0 {
		panic("core: footprint table size must be positive")
	}
	return &FootprintTable{entries: make([]FootprintEntry, size), thBBV: thBBV}
}

// NewFootprintTableDDS returns a table that additionally requires the DDS
// difference to be at or below thDDS (the paper's BBV+DDV detector).
func NewFootprintTableDDS(size int, thBBV, thDDS float64) *FootprintTable {
	t := NewFootprintTable(size, thBBV)
	t.thDDS = thDDS
	t.useDDS = true
	return t
}

// Size returns the number of table entries.
func (t *FootprintTable) Size() int { return len(t.entries) }

// PhasesAllocated returns the total number of distinct phase IDs handed
// out so far (including IDs whose entries have since been evicted).
func (t *FootprintTable) PhasesAllocated() int { return t.nextPhase }

// Classify assigns a phase ID to the interval signature (bbv, dds). It
// returns the phase ID and whether the interval matched an existing entry
// (false means a new phase was allocated).
func (t *FootprintTable) Classify(bbv []float64, dds float64) (phaseID int, matched bool) {
	t.clock++
	bestIdx := -1
	bestDist := math.Inf(1)
	var lruIdx int
	lruUse := uint64(math.MaxUint64)
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			// Prefer invalid slots for allocation.
			if lruUse != 0 {
				lruIdx, lruUse = i, 0
			}
			continue
		}
		if e.lastUse < lruUse {
			lruIdx, lruUse = i, e.lastUse
		}
		d := Manhattan(bbv, e.BBV)
		if d > t.thBBV {
			continue
		}
		if t.useDDS && math.Abs(dds-e.DDS) > t.thDDS {
			continue
		}
		if d < bestDist {
			bestDist, bestIdx = d, i
		}
	}
	if bestIdx >= 0 {
		e := &t.entries[bestIdx]
		e.lastUse = t.clock
		return e.PhaseID, true
	}
	// Allocate: transfer the accumulator snapshot (and DDS) into the
	// victim entry and assign a fresh phase ID.
	e := &t.entries[lruIdx]
	e.BBV = append(e.BBV[:0], bbv...)
	e.DDS = dds
	e.PhaseID = t.nextPhase
	e.lastUse = t.clock
	e.valid = true
	t.nextPhase++
	return e.PhaseID, false
}

// Reset clears all entries and the phase-ID counter.
func (t *FootprintTable) Reset() {
	for i := range t.entries {
		t.entries[i] = FootprintEntry{}
	}
	t.clock = 0
	t.nextPhase = 0
}
