package core

import (
	"math"
	"testing"
	"testing/quick"
)

func vec(vals ...float64) []float64 { return vals }

func TestFootprintFirstIntervalAllocates(t *testing.T) {
	ft := NewFootprintTable(4, 0.1)
	id, matched := ft.Classify(vec(1, 0, 0, 0), 0)
	if matched {
		t.Error("first interval must allocate a new phase")
	}
	if id != 0 {
		t.Errorf("first phase ID = %d, want 0", id)
	}
}

func TestFootprintMatchWithinThreshold(t *testing.T) {
	ft := NewFootprintTable(4, 0.2)
	id0, _ := ft.Classify(vec(0.5, 0.5, 0, 0), 0)
	// Manhattan distance 0.1 <= 0.2: same phase.
	id1, matched := ft.Classify(vec(0.55, 0.45, 0, 0), 0)
	if !matched || id1 != id0 {
		t.Errorf("expected match with phase %d, got (%d, %v)", id0, id1, matched)
	}
	// Distance 1.0 > 0.2: new phase.
	id2, matched := ft.Classify(vec(0, 0, 0.5, 0.5), 0)
	if matched || id2 == id0 {
		t.Errorf("expected new phase, got (%d, %v)", id2, matched)
	}
}

func TestFootprintClosestEntryWins(t *testing.T) {
	// Two entries 0.5 apart with threshold 0.3: a probe between them can
	// match both; the nearer one must win.
	ft := NewFootprintTable(4, 0.3)
	a, _ := ft.Classify(vec(0.5, 0.5, 0, 0), 0)
	b, _ := ft.Classify(vec(0.25, 0.75, 0, 0), 0)
	if a == b {
		t.Fatal("setup: entries should be distinct phases")
	}
	// Probe at (0.4, 0.6): distance 0.2 to a, 0.3 to b — both within
	// threshold, a is closer.
	id, matched := ft.Classify(vec(0.4, 0.6, 0, 0), 0)
	if !matched || id != a {
		t.Errorf("closest entry should win: got (%d, %v), want (%d, true)", id, matched, a)
	}
}

func TestFootprintDDSThreshold(t *testing.T) {
	ft := NewFootprintTableDDS(4, 0.5, 0.1)
	id0, _ := ft.Classify(vec(1, 0), 1.0)
	// Identical BBV but DDS differs by 0.5 > 0.1: must be a new phase.
	id1, matched := ft.Classify(vec(1, 0), 1.5)
	if matched || id1 == id0 {
		t.Errorf("DDS mismatch must force a new phase: got (%d, %v)", id1, matched)
	}
	// DDS within threshold: match.
	id2, matched := ft.Classify(vec(1, 0), 1.05)
	if !matched || id2 != id0 {
		t.Errorf("DDS within threshold must match phase %d: got (%d, %v)", id0, id2, matched)
	}
}

func TestFootprintLRUEviction(t *testing.T) {
	ft := NewFootprintTable(2, 0.1)
	a, _ := ft.Classify(vec(1, 0, 0), 0) // entry A
	b, _ := ft.Classify(vec(0, 1, 0), 0) // entry B
	// Touch A so B becomes LRU.
	ft.Classify(vec(1, 0, 0), 0)
	// New signature evicts B.
	c, matched := ft.Classify(vec(0, 0, 1), 0)
	if matched {
		t.Fatal("expected allocation")
	}
	// A must still be present...
	idA, m := ft.Classify(vec(1, 0, 0), 0)
	if !m || idA != a {
		t.Errorf("A evicted wrongly: got (%d,%v) want (%d,true)", idA, m, a)
	}
	// ...and B's signature must now allocate a fresh phase ID.
	idB, m := ft.Classify(vec(0, 1, 0), 0)
	if m || idB == b {
		t.Errorf("B should have been evicted: got (%d,%v)", idB, m)
	}
	if c == a || c == b {
		t.Error("phase IDs must be unique")
	}
	if ft.PhasesAllocated() != 4 {
		t.Errorf("PhasesAllocated = %d, want 4", ft.PhasesAllocated())
	}
}

func TestFootprintReset(t *testing.T) {
	ft := NewFootprintTable(2, 0.1)
	ft.Classify(vec(1, 0), 0)
	ft.Reset()
	if ft.PhasesAllocated() != 0 {
		t.Error("phase counter not reset")
	}
	id, matched := ft.Classify(vec(1, 0), 0)
	if matched || id != 0 {
		t.Errorf("after reset, first classify = (%d, %v), want (0, false)", id, matched)
	}
}

func TestFootprintStoredSignatureImmutable(t *testing.T) {
	ft := NewFootprintTable(2, 0.3)
	sig := vec(1, 0)
	ft.Classify(sig, 0)
	sig[0] = 0 // caller mutates its buffer; table must hold a copy
	sig[1] = 1
	_, matched := ft.Classify(vec(1, 0), 0)
	if !matched {
		t.Error("table must copy stored signatures, not alias caller buffers")
	}
}

// Property: a zero-threshold table assigns two intervals the same phase
// only if their signatures are identical; and phase IDs are always in
// [0, PhasesAllocated).
func TestFootprintZeroThresholdProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		ft := NewFootprintTable(64, 0)
		type res struct {
			sig [2]float64
			id  int
		}
		var seen []res
		for _, r := range raw {
			x := float64(r%4) / 4
			sig := [2]float64{x, 1 - x}
			id, _ := ft.Classify(sig[:], 0)
			if id < 0 || id >= ft.PhasesAllocated() {
				return false
			}
			for _, s := range seen {
				same := s.sig == sig
				if (s.id == id) != same {
					return false
				}
			}
			seen = append(seen, res{sig, id})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: with an infinite threshold every interval after the first
// matches (single phase).
func TestFootprintInfiniteThresholdProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		ft := NewFootprintTableDDS(8, math.Inf(1), math.Inf(1))
		first := true
		for _, r := range raw {
			x := float64(r) / 255
			id, matched := ft.Classify(vec(x, 1-x), float64(r))
			if first {
				if matched {
					return false
				}
				first = false
			} else if !matched || id != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewFootprintTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for size 0")
		}
	}()
	NewFootprintTable(0, 0.1)
}
