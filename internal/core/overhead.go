package core

// OverheadEstimate models the communication cost of the DDS computation
// (paper §III-B): at each interval boundary a processor performs n−1
// exchanges, each returning an n-entry frequency vector of hardware
// counters. With 32 2 GHz processors, IPC = 1, and a "real-world"
// interval of 100M instructions, the paper reports a sustained per-
// processor bandwidth of about 160 kB/s — under 0.15% of a 1.5 GB/s
// memory controller.
type OverheadEstimate struct {
	// Processors is the system size n.
	Processors int
	// ClockHz is the processor frequency (paper: 2 GHz).
	ClockHz float64
	// IPC is the assumed instructions per cycle (paper: 1).
	IPC float64
	// IntervalInstructions is the sampling interval length (paper: 100M).
	IntervalInstructions float64
	// CounterBytes is the wire size of one frequency counter (8 bytes).
	CounterBytes int
	// ControllerBandwidth is the memory controller's capacity in bytes/s
	// used for the relative-overhead figure (paper: 1.5 GB/s).
	ControllerBandwidth float64
}

// PaperOverheadConfig returns the exact parameters the paper plugs into
// its estimate.
func PaperOverheadConfig() OverheadEstimate {
	return OverheadEstimate{
		Processors:           32,
		ClockHz:              2e9,
		IPC:                  1,
		IntervalInstructions: 100e6,
		CounterBytes:         8,
		ControllerBandwidth:  1.5e9,
	}
}

// IntervalSeconds returns the wall-clock duration of one sampling
// interval.
func (o OverheadEstimate) IntervalSeconds() float64 {
	return o.IntervalInstructions / (o.ClockHz * o.IPC)
}

// BytesPerInterval returns the bytes a single processor moves per
// interval boundary: n−1 exchanges, each carrying an n-entry vector of
// counters.
func (o OverheadEstimate) BytesPerInterval() float64 {
	n := float64(o.Processors)
	return (n - 1) * n * float64(o.CounterBytes)
}

// BandwidthPerProcessor returns the sustained bytes/s each processor's
// DDS exchanges consume.
func (o OverheadEstimate) BandwidthPerProcessor() float64 {
	return o.BytesPerInterval() / o.IntervalSeconds()
}

// FractionOfController returns the per-processor overhead as a fraction
// of the memory controller's bandwidth.
func (o OverheadEstimate) FractionOfController() float64 {
	return o.BandwidthPerProcessor() / o.ControllerBandwidth
}
