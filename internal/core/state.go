package core

// Multiprogramming support (paper §III-B): "In a multiprogrammed
// environment, the phase identification information can be incorporated
// into the thread's state on a context switch. Alternatively, phase
// information associated with threads can be cleared at the expense of
// more tuning." TableState captures a footprint table's contents so an
// OS can swap detector state with the thread; the alternative — Reset()
// on every switch — forces phases to be re-discovered and re-tuned.

// TableState is a serializable snapshot of a FootprintTable.
type TableState struct {
	Entries   []FootprintEntry
	NextPhase int
	Clock     uint64
}

// Snapshot captures the table's current contents. The returned state is
// independent of the table (deep-copied signatures).
func (t *FootprintTable) Snapshot() TableState {
	st := TableState{
		Entries:   make([]FootprintEntry, len(t.entries)),
		NextPhase: t.nextPhase,
		Clock:     t.clock,
	}
	for i, e := range t.entries {
		st.Entries[i] = FootprintEntry{
			BBV:     append([]float64(nil), e.BBV...),
			DDS:     e.DDS,
			PhaseID: e.PhaseID,
			lastUse: e.lastUse,
			valid:   e.valid,
		}
	}
	return st
}

// Restore replaces the table's contents with a previously captured
// snapshot. The snapshot must come from a table of the same size.
func (t *FootprintTable) Restore(st TableState) {
	if len(st.Entries) != len(t.entries) {
		panic("core: TableState size mismatch")
	}
	for i, e := range st.Entries {
		t.entries[i] = FootprintEntry{
			BBV:     append([]float64(nil), e.BBV...),
			DDS:     e.DDS,
			PhaseID: e.PhaseID,
			lastUse: e.lastUse,
			valid:   e.valid,
		}
	}
	t.nextPhase = st.NextPhase
	t.clock = st.Clock
}

// ContextSwitchPolicy selects what happens to detector state when the
// OS switches threads on a processor.
type ContextSwitchPolicy int

const (
	// SwitchSaveRestore swaps the footprint table with the thread.
	SwitchSaveRestore ContextSwitchPolicy = iota
	// SwitchClear resets the table, re-discovering phases after every
	// switch (cheaper hardware, more tuning).
	SwitchClear
)

// MultiprogramReplay classifies several threads' interval signature
// sequences through ONE shared hardware detector, interleaving the
// threads round-robin with the given quantum (intervals per scheduling
// slice), under the chosen context-switch policy. It returns the phase
// IDs assigned to each thread's intervals and the total number of
// distinct phases allocated (a proxy for tuning cost).
func MultiprogramReplay(kind DetectorKind, tableSize int, thBBV, thDDS float64,
	threads [][]IntervalSignature, quantum int, policy ContextSwitchPolicy) (ids [][]int, phasesAllocated int) {
	if quantum <= 0 {
		panic("core: quantum must be positive")
	}
	mk := func() *FootprintTable {
		switch kind {
		case DetectorBBV:
			return NewFootprintTable(tableSize, thBBV)
		case DetectorBBVDDV:
			return NewFootprintTableDDS(tableSize, thBBV, thDDS)
		case DetectorDDS:
			return NewFootprintTableDDS(tableSize, 2.0, thDDS)
		default:
			panic("core: MultiprogramReplay supports BBV-family detectors")
		}
	}
	ids = make([][]int, len(threads))
	pos := make([]int, len(threads))
	for i, th := range threads {
		ids[i] = make([]int, len(th))
	}
	// Save/restore is semantically a per-thread persistent table (the
	// hardware swaps the table image with the thread); clear gets a
	// fresh table every scheduling slice. Phase IDs are made globally
	// unique with a running offset so the outputs of different threads
	// never alias.
	perThread := make([]*FootprintTable, len(threads))
	allocBase := 0
	remaining := func() bool {
		for i := range threads {
			if pos[i] < len(threads[i]) {
				return true
			}
		}
		return false
	}
	for cur := 0; remaining(); cur = (cur + 1) % len(threads) {
		if pos[cur] >= len(threads[cur]) {
			continue
		}
		var table *FootprintTable
		var base int
		switch policy {
		case SwitchSaveRestore:
			if perThread[cur] == nil {
				perThread[cur] = mk()
			}
			table = perThread[cur]
			base = 0 // per-thread IDs offset at the end
		case SwitchClear:
			table = mk()
			base = allocBase
		default:
			panic("core: unknown context-switch policy")
		}
		before := table.PhasesAllocated()
		for q := 0; q < quantum && pos[cur] < len(threads[cur]); q++ {
			s := threads[cur][pos[cur]]
			id, _ := table.Classify(s.BBV, s.DDS)
			ids[cur][pos[cur]] = base + id
			pos[cur]++
		}
		if policy == SwitchClear {
			allocBase += table.PhasesAllocated() - before
		}
	}
	if policy == SwitchSaveRestore {
		offset := 0
		for i, table := range perThread {
			if table == nil {
				continue
			}
			for j := range ids[i] {
				ids[i][j] += offset
			}
			offset += table.PhasesAllocated()
		}
		return ids, offset
	}
	return ids, allocBase
}
