package core

import (
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	ft := NewFootprintTable(4, 0.2)
	a, _ := ft.Classify(vec(1, 0, 0), 0)
	b, _ := ft.Classify(vec(0, 1, 0), 0)
	st := ft.Snapshot()

	// Perturb the table heavily.
	for i := 0; i < 10; i++ {
		ft.Classify(vec(0, 0, 1), float64(i))
	}
	ft.Restore(st)

	// Original entries classify to their original phases again.
	idA, m := ft.Classify(vec(1, 0, 0), 0)
	if !m || idA != a {
		t.Errorf("A after restore = (%d, %v), want (%d, true)", idA, m, a)
	}
	idB, m := ft.Classify(vec(0, 1, 0), 0)
	if !m || idB != b {
		t.Errorf("B after restore = (%d, %v), want (%d, true)", idB, m, b)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	ft := NewFootprintTable(2, 0.2)
	ft.Classify(vec(1, 0), 0)
	st := ft.Snapshot()
	// Mutating the snapshot must not affect the live table.
	st.Entries[0].BBV[0] = 0
	id, m := ft.Classify(vec(1, 0), 0)
	if !m || id != 0 {
		t.Error("snapshot mutation leaked into the table")
	}
	// And mutating the table must not affect the snapshot.
	ft.Classify(vec(0, 1), 0)
	if st.Entries[0].BBV[0] != 0 {
		t.Error("table mutation leaked into the snapshot")
	}
}

func TestRestoreSizeMismatchPanics(t *testing.T) {
	ft := NewFootprintTable(2, 0.2)
	st := ft.Snapshot()
	big := NewFootprintTable(4, 0.2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	big.Restore(st)
}

// mkThread builds a thread whose intervals cycle through `phases`
// distinct signatures.
func mkThread(phases, intervals int, base float64) []IntervalSignature {
	out := make([]IntervalSignature, intervals)
	for i := range out {
		x := base + float64(i%phases)*0.2
		out[i] = IntervalSignature{BBV: []float64{x, 1 - x}, DDS: 0}
	}
	return out
}

func TestMultiprogramSaveRestoreStable(t *testing.T) {
	// Two threads with 2 recurring phases each: with save/restore the
	// shared detector should allocate exactly 4 phases total.
	threads := [][]IntervalSignature{
		mkThread(2, 40, 0.0),
		mkThread(2, 40, 0.5),
	}
	ids, phases := MultiprogramReplay(DetectorBBV, 8, 0.05, 0, threads, 5, SwitchSaveRestore)
	if phases != 4 {
		t.Errorf("save/restore allocated %d phases, want 4", phases)
	}
	// Within a thread, recurring signatures keep their IDs across
	// scheduling slices.
	for th := range ids {
		for i := 2; i < len(ids[th]); i++ {
			if ids[th][i] != ids[th][i-2] {
				t.Errorf("thread %d interval %d: phase %d != %d two intervals ago",
					th, i, ids[th][i], ids[th][i-2])
			}
		}
	}
}

func TestMultiprogramClearCostsMoreTuning(t *testing.T) {
	threads := [][]IntervalSignature{
		mkThread(2, 40, 0.0),
		mkThread(2, 40, 0.5),
	}
	_, saved := MultiprogramReplay(DetectorBBV, 8, 0.05, 0, threads, 5, SwitchSaveRestore)
	_, cleared := MultiprogramReplay(DetectorBBV, 8, 0.05, 0, threads, 5, SwitchClear)
	// Clearing re-discovers both phases on every slice: 16 slices × 2.
	if cleared <= saved {
		t.Errorf("clearing (%d phases) must cost more than save/restore (%d) — the paper's trade-off",
			cleared, saved)
	}
	if cleared < 4*saved {
		t.Logf("note: clear/saved ratio = %d/%d", cleared, saved)
	}
}

func TestMultiprogramIDsGloballyUnique(t *testing.T) {
	threads := [][]IntervalSignature{
		mkThread(2, 20, 0.0),
		mkThread(3, 30, 0.4),
	}
	for _, policy := range []ContextSwitchPolicy{SwitchSaveRestore, SwitchClear} {
		ids, total := MultiprogramReplay(DetectorBBV, 8, 0.05, 0, threads, 4, policy)
		seenBy := map[int]int{} // id -> thread
		for th := range ids {
			for _, id := range ids[th] {
				if id < 0 || id >= total {
					t.Fatalf("policy %v: id %d outside [0, %d)", policy, id, total)
				}
				if prev, ok := seenBy[id]; ok && prev != th {
					t.Fatalf("policy %v: phase %d shared across threads %d and %d",
						policy, id, prev, th)
				}
				seenBy[id] = th
			}
		}
	}
}

func TestMultiprogramUnevenThreadLengths(t *testing.T) {
	threads := [][]IntervalSignature{
		mkThread(1, 7, 0.0),
		mkThread(1, 31, 0.5),
	}
	ids, _ := MultiprogramReplay(DetectorBBV, 8, 4, 0, threads, 4, SwitchSaveRestore)
	if len(ids[0]) != 7 || len(ids[1]) != 31 {
		t.Errorf("output shapes %d/%d", len(ids[0]), len(ids[1]))
	}
}

func TestMultiprogramPanics(t *testing.T) {
	threads := [][]IntervalSignature{mkThread(1, 2, 0)}
	cases := []func(){
		func() { MultiprogramReplay(DetectorBBV, 8, 0.1, 0, threads, 0, SwitchClear) },
		func() { MultiprogramReplay(DetectorWSS, 8, 0.1, 0, threads, 1, SwitchClear) },
		func() { MultiprogramReplay(DetectorBBV, 8, 0.1, 0, threads, 1, ContextSwitchPolicy(9)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}
