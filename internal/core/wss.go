package core

import "math/bits"

// Working-set signature detector (Dhodapkar & Smith, ISCA'02) — the
// other uniprocessor phase-detection baseline the paper's related-work
// section discusses. An interval's signature is a lossy bit vector of
// the instruction blocks it touched; two intervals belong to the same
// phase when the relative signature distance
//
//	δ(A, B) = |A ⊕ B| / |A ∪ B|
//
// is at or below a threshold. Dhodapkar & Smith (MICRO'03) found BBV
// signatures more stable and more sensitive than working sets, and the
// paper builds on BBVs for that reason; this implementation lets the two
// baselines be compared on DSM executions (BenchmarkAblation_Detector,
// TestWSSBaselineOrdering).

// WSSWords is the signature size in 64-bit words (1024 bits, matching
// the kilobit signatures of the original proposal).
const WSSWords = 16

// WSSignature is a working-set signature bit vector.
type WSSignature [WSSWords]uint64

// wssHash maps an instruction-block address (PC >> 6) to a bit index.
func wssHash(pc uint32) uint {
	h := (pc >> 6) * 2654435761
	return uint(h >> (32 - 10)) // top 10 bits: 1024-bit signature
}

// Touch records an instruction fetch at pc.
func (s *WSSignature) Touch(pc uint32) {
	b := wssHash(pc)
	s[b>>6] |= 1 << (b & 63)
}

// Reset clears the signature.
func (s *WSSignature) Reset() { *s = WSSignature{} }

// Population returns the number of set bits.
func (s *WSSignature) Population() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// RelativeDistance returns δ(s, o) ∈ [0, 1]; two empty signatures have
// distance 0.
func (s *WSSignature) RelativeDistance(o *WSSignature) float64 {
	var xor, or int
	for i := range s {
		xor += bits.OnesCount64(s[i] ^ o[i])
		or += bits.OnesCount64(s[i] | o[i])
	}
	if or == 0 {
		return 0
	}
	return float64(xor) / float64(or)
}

// wssEntry is one row of the working-set footprint table.
type wssEntry struct {
	sig     WSSignature
	phaseID int
	lastUse uint64
	valid   bool
}

// WSSTable classifies working-set signatures against stored ones with
// LRU replacement, mirroring FootprintTable for the WSS baseline.
type WSSTable struct {
	entries   []wssEntry
	threshold float64
	clock     uint64
	nextPhase int
}

// NewWSSTable returns a table with the given capacity and relative-
// distance threshold.
func NewWSSTable(size int, threshold float64) *WSSTable {
	if size <= 0 {
		panic("core: WSS table size must be positive")
	}
	return &WSSTable{entries: make([]wssEntry, size), threshold: threshold}
}

// PhasesAllocated returns the number of phase IDs handed out.
func (t *WSSTable) PhasesAllocated() int { return t.nextPhase }

// Classify assigns a phase ID to sig, allocating (with LRU replacement)
// when no stored signature is within the threshold.
func (t *WSSTable) Classify(sig *WSSignature) (phaseID int, matched bool) {
	t.clock++
	bestIdx := -1
	bestDist := 2.0
	lruIdx := 0
	lruUse := ^uint64(0)
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			if lruUse != 0 {
				lruIdx, lruUse = i, 0
			}
			continue
		}
		if e.lastUse < lruUse {
			lruIdx, lruUse = i, e.lastUse
		}
		d := sig.RelativeDistance(&e.sig)
		if d <= t.threshold && d < bestDist {
			bestDist, bestIdx = d, i
		}
	}
	if bestIdx >= 0 {
		e := &t.entries[bestIdx]
		e.lastUse = t.clock
		return e.phaseID, true
	}
	e := &t.entries[lruIdx]
	e.sig = *sig
	e.phaseID = t.nextPhase
	e.lastUse = t.clock
	e.valid = true
	t.nextPhase++
	return e.phaseID, false
}

// ClassifyRecordedWSS replays WSS-table dynamics over recorded interval
// signatures at the given threshold.
func ClassifyRecordedWSS(tableSize int, threshold float64, sigs []IntervalSignature) []int {
	table := NewWSSTable(tableSize, threshold)
	out := make([]int, len(sigs))
	for i := range sigs {
		out[i], _ = table.Classify(&sigs[i].WSS)
	}
	return out
}
