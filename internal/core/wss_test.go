package core

import (
	"testing"
	"testing/quick"
)

func TestWSSignatureTouch(t *testing.T) {
	var s WSSignature
	if s.Population() != 0 {
		t.Fatal("fresh signature must be empty")
	}
	s.Touch(0x1000)
	if s.Population() != 1 {
		t.Fatalf("population = %d, want 1", s.Population())
	}
	// Same instruction block (64B): same bit.
	s.Touch(0x1004)
	s.Touch(0x103C)
	if s.Population() != 1 {
		t.Errorf("same-block touches must not add bits: %d", s.Population())
	}
	// Different block: new bit (unless hash collision; these don't collide).
	s.Touch(0x2000)
	if s.Population() != 2 {
		t.Errorf("population = %d, want 2", s.Population())
	}
}

func TestWSSignatureReset(t *testing.T) {
	var s WSSignature
	s.Touch(0x40)
	s.Reset()
	if s.Population() != 0 {
		t.Error("Reset must clear the signature")
	}
}

func TestRelativeDistance(t *testing.T) {
	var a, b WSSignature
	if d := a.RelativeDistance(&b); d != 0 {
		t.Errorf("two empty signatures: δ = %v, want 0", d)
	}
	a.Touch(0x1000)
	a.Touch(0x2000)
	b.Touch(0x1000)
	b.Touch(0x2000)
	if d := a.RelativeDistance(&b); d != 0 {
		t.Errorf("identical signatures: δ = %v, want 0", d)
	}
	var c WSSignature
	c.Touch(0x9000)
	c.Touch(0xA000)
	if d := a.RelativeDistance(&c); d != 1 {
		t.Errorf("disjoint signatures: δ = %v, want 1", d)
	}
	// Half overlap: A={1,2}, D={2,3}: xor=2, or=3.
	var dd WSSignature
	dd.Touch(0x2000)
	dd.Touch(0x3000)
	if got := a.RelativeDistance(&dd); got < 0.6 || got > 0.7 {
		t.Errorf("partial overlap: δ = %v, want 2/3", got)
	}
}

// Properties: δ is symmetric, in [0,1], and zero iff equal (as bit sets).
func TestRelativeDistanceProperties(t *testing.T) {
	mk := func(raw []uint16) *WSSignature {
		var s WSSignature
		for _, r := range raw {
			s.Touch(uint32(r) << 6)
		}
		return &s
	}
	f := func(ra, rb []uint16) bool {
		a, b := mk(ra), mk(rb)
		dab, dba := a.RelativeDistance(b), b.RelativeDistance(a)
		if dab != dba || dab < 0 || dab > 1 {
			return false
		}
		if (*a == *b) != (dab == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWSSTableClassify(t *testing.T) {
	tb := NewWSSTable(4, 0.3)
	var a WSSignature
	for i := 0; i < 20; i++ {
		a.Touch(uint32(0x1000 + i*64))
	}
	id0, matched := tb.Classify(&a)
	if matched || id0 != 0 {
		t.Fatalf("first classify = (%d, %v)", id0, matched)
	}
	// Slightly perturbed copy: within threshold.
	b := a
	b.Touch(0x9000)
	id1, matched := tb.Classify(&b)
	if !matched || id1 != id0 {
		t.Errorf("near-identical working set = (%d, %v), want (%d, true)", id1, matched, id0)
	}
	// Disjoint working set: new phase.
	var c WSSignature
	for i := 0; i < 20; i++ {
		c.Touch(uint32(0x80000 + i*64))
	}
	id2, matched := tb.Classify(&c)
	if matched || id2 == id0 {
		t.Errorf("disjoint working set = (%d, %v)", id2, matched)
	}
	if tb.PhasesAllocated() != 2 {
		t.Errorf("phases = %d, want 2", tb.PhasesAllocated())
	}
}

func TestWSSTableLRU(t *testing.T) {
	tb := NewWSSTable(2, 0.1)
	sig := func(base uint32) *WSSignature {
		var s WSSignature
		for i := uint32(0); i < 8; i++ {
			s.Touch(base + i*64)
		}
		return &s
	}
	a, b, c := sig(0x10000), sig(0x20000), sig(0x30000)
	idA, _ := tb.Classify(a)
	tb.Classify(b)
	tb.Classify(a) // touch A; B is LRU
	tb.Classify(c) // evicts B
	idA2, matched := tb.Classify(a)
	if !matched || idA2 != idA {
		t.Error("A must survive the eviction")
	}
	idB2, matched := tb.Classify(b)
	if matched {
		t.Errorf("B should have been evicted, got phase %d", idB2)
	}
}

func TestNewWSSTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewWSSTable(0, 0.1)
}

func TestClassifyRecordedWSSDispatch(t *testing.T) {
	// ClassifyRecorded with DetectorWSS must route to the WSS table.
	mk := func(base uint32) IntervalSignature {
		var s IntervalSignature
		for i := uint32(0); i < 10; i++ {
			s.WSS.Touch(base + i*64)
		}
		s.BBV = []float64{1, 0}
		return s
	}
	sigs := []IntervalSignature{mk(0x1000), mk(0x1000), mk(0x90000)}
	ids := ClassifyRecorded(DetectorWSS, 4, 0.2, 0, sigs)
	if ids[0] != ids[1] {
		t.Error("identical working sets must share a phase")
	}
	if ids[2] == ids[0] {
		t.Error("disjoint working set must be a new phase")
	}
	// Identical BBVs must NOT make WSS merge them — it only sees the WSS.
	direct := ClassifyRecordedWSS(4, 0.2, sigs)
	for i := range ids {
		if ids[i] != direct[i] {
			t.Errorf("dispatch mismatch at %d: %d vs %d", i, ids[i], direct[i])
		}
	}
}

func TestWSSKindString(t *testing.T) {
	if DetectorWSS.String() != "WSS" {
		t.Errorf("String() = %q", DetectorWSS.String())
	}
}
