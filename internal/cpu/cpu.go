// Package cpu models the paper's processor core (Table I): a 2 GHz,
// 6-wide out-of-order core with 6 ALUs and 4 FPUs and a 2,048-entry
// gshare branch predictor.
//
// The timing model is throughput-oriented: each committed instruction is
// charged an issue cost limited by commit width and by its functional
// unit class, plus a flat misprediction penalty for wrongly predicted
// branches and the memory-stall cycles the cache/coherence model reports
// for loads and stores. This reproduces the first-order CPI structure —
// which is all the phase detectors observe — without register-level
// detail.
package cpu

import "dsmphase/internal/isa"

// Config describes the core.
type Config struct {
	// ClockHz is the core frequency (Table I: 2 GHz).
	ClockHz float64
	// Width is the fetch/issue/commit width (Table I: 6).
	Width int
	// ALUs and FPUs are the functional unit counts (Table I: 6 and 4).
	ALUs int
	FPUs int
	// MemPorts bounds memory operations issued per cycle.
	MemPorts int
	// MispredictPenalty is the pipeline refill cost of a mispredicted
	// branch, in cycles.
	MispredictPenalty float64
	// LoadStallFactor scales cache-miss latency into commit stall for
	// loads (1.0 = fully exposed; out-of-order overlap would lower it).
	LoadStallFactor float64
	// StoreStallFactor scales miss latency for stores (write buffers hide
	// most of it).
	StoreStallFactor float64
	// GshareEntries is the branch predictor table size (Table I: 2048).
	GshareEntries int
	// GshareHistoryBits is the global history length.
	GshareHistoryBits int
}

// DefaultConfig returns the Table I core parameters.
func DefaultConfig() Config {
	return Config{
		ClockHz:           2e9,
		Width:             6,
		ALUs:              6,
		FPUs:              4,
		MemPorts:          2,
		MispredictPenalty: 14,
		LoadStallFactor:   0.7,
		StoreStallFactor:  0.15,
		GshareEntries:     2048,
		GshareHistoryBits: 11,
	}
}

// Gshare is a 2-bit-counter gshare branch predictor.
type Gshare struct {
	table []uint8
	hist  uint32
	mask  uint32
	bits  uint
	// stats
	lookups     uint64
	mispredicts uint64
}

// NewGshare builds a predictor with the given table size (must be a
// positive power of two) and history length.
func NewGshare(entries int, historyBits int) *Gshare {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("cpu: gshare entries must be a positive power of two")
	}
	if historyBits < 0 || historyBits > 31 {
		panic("cpu: history bits out of range")
	}
	g := &Gshare{
		table: make([]uint8, entries),
		mask:  uint32(entries - 1),
		bits:  uint(historyBits),
	}
	// Initialize counters to weakly taken (2), the usual convention.
	for i := range g.table {
		g.table[i] = 2
	}
	return g
}

func (g *Gshare) index(pc uint32) uint32 {
	return ((pc >> 2) ^ g.hist) & g.mask
}

// Predict returns the predicted direction for the branch at pc without
// updating any state.
func (g *Gshare) Predict(pc uint32) bool {
	return g.table[g.index(pc)] >= 2
}

// Update trains the predictor with the actual outcome and advances the
// global history. It returns true if the prediction was wrong.
func (g *Gshare) Update(pc uint32, taken bool) (mispredicted bool) {
	g.lookups++
	idx := g.index(pc)
	pred := g.table[idx] >= 2
	if taken && g.table[idx] < 3 {
		g.table[idx]++
	} else if !taken && g.table[idx] > 0 {
		g.table[idx]--
	}
	var bit uint32
	if taken {
		bit = 1
	}
	g.hist = ((g.hist << 1) | bit) & ((1 << g.bits) - 1)
	if pred != taken {
		g.mispredicts++
		return true
	}
	return false
}

// Accuracy returns the fraction of correctly predicted branches so far
// (1.0 when no branches have been seen).
func (g *Gshare) Accuracy() float64 {
	if g.lookups == 0 {
		return 1
	}
	return 1 - float64(g.mispredicts)/float64(g.lookups)
}

// Lookups returns the number of predicted branches.
func (g *Gshare) Lookups() uint64 { return g.lookups }

// Mispredicts returns the number of mispredicted branches.
func (g *Gshare) Mispredicts() uint64 { return g.mispredicts }

// Model is one core's timing model: a gshare predictor plus issue-cost
// accounting.
type Model struct {
	cfg    Config
	gshare *Gshare
	// Precomputed issue costs per op class.
	cost [isa.NumOps]float64
}

// NewModel builds a core model.
func NewModel(cfg Config) *Model {
	if cfg.Width <= 0 || cfg.ALUs <= 0 || cfg.FPUs <= 0 || cfg.MemPorts <= 0 {
		panic("cpu: widths and unit counts must be positive")
	}
	m := &Model{cfg: cfg, gshare: NewGshare(cfg.GshareEntries, cfg.GshareHistoryBits)}
	width := float64(cfg.Width)
	lim := func(units int) float64 {
		c := 1 / width
		if u := 1 / float64(units); u > c {
			c = u
		}
		return c
	}
	m.cost[isa.OpInt] = lim(cfg.ALUs)
	m.cost[isa.OpFP] = lim(cfg.FPUs)
	m.cost[isa.OpLoad] = lim(cfg.MemPorts)
	m.cost[isa.OpStore] = lim(cfg.MemPorts)
	m.cost[isa.OpBranch] = lim(cfg.ALUs)
	m.cost[isa.OpSync] = 1 / width
	return m
}

// Config returns the core configuration.
func (m *Model) Config() Config { return m.cfg }

// Gshare exposes the branch predictor (for statistics).
func (m *Model) Gshare() *Gshare { return m.gshare }

// Cost returns the cycles charged for committing in, where memStall is
// the memory-hierarchy latency (in cycles) the access incurred beyond
// the L1 hit time — zero for non-memory instructions and L1 hits.
func (m *Model) Cost(in isa.Inst, memStall float64) float64 {
	c := m.cost[in.Op]
	switch in.Op {
	case isa.OpBranch:
		if m.gshare.Update(in.PC, in.Taken) {
			c += m.cfg.MispredictPenalty
		}
	case isa.OpLoad:
		c += memStall * m.cfg.LoadStallFactor
	case isa.OpStore:
		c += memStall * m.cfg.StoreStallFactor
	}
	return c
}
