package cpu

import (
	"testing"
	"testing/quick"

	"dsmphase/internal/isa"
)

func TestNewGsharePanics(t *testing.T) {
	for _, args := range [][2]int{{0, 4}, {3, 4}, {8, -1}, {8, 40}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGshare(%v) should panic", args)
				}
			}()
			NewGshare(args[0], args[1])
		}()
	}
}

func TestGshareLearnsAlwaysTaken(t *testing.T) {
	g := NewGshare(2048, 11)
	pc := uint32(0x400)
	// After warm-up an always-taken branch must be predicted perfectly.
	for i := 0; i < 4; i++ {
		g.Update(pc, true)
	}
	miss := 0
	for i := 0; i < 100; i++ {
		if g.Update(pc, true) {
			miss++
		}
	}
	if miss != 0 {
		t.Errorf("mispredicted %d/100 on an always-taken branch", miss)
	}
	if g.Accuracy() < 0.9 {
		t.Errorf("accuracy = %v", g.Accuracy())
	}
}

func TestGshareLearnsLoopPattern(t *testing.T) {
	// A counted loop with trip count 8 (TTTTTTTN repeating) has a
	// history-detectable pattern; gshare with 11 history bits should get
	// well above 50% after warm-up.
	g := NewGshare(2048, 11)
	step := func() int {
		miss := 0
		for rep := 0; rep < 64; rep++ {
			for i := 0; i < 8; i++ {
				if g.Update(0x400, i < 7) {
					miss++
				}
			}
		}
		return miss
	}
	step() // warm-up
	miss := step()
	total := 64 * 8
	if frac := float64(miss) / float64(total); frac > 0.1 {
		t.Errorf("loop pattern miss rate = %v, want < 0.1", frac)
	}
}

func TestGsharePredictDoesNotTrain(t *testing.T) {
	g := NewGshare(8, 0)
	before := g.Predict(0x40)
	for i := 0; i < 10; i++ {
		if g.Predict(0x40) != before {
			t.Fatal("Predict must be side-effect free")
		}
	}
	if g.Lookups() != 0 {
		t.Error("Predict must not count as a lookup")
	}
}

func TestGshareAccuracyEmpty(t *testing.T) {
	if got := NewGshare(8, 0).Accuracy(); got != 1 {
		t.Errorf("Accuracy with no branches = %v, want 1", got)
	}
}

func TestModelCosts(t *testing.T) {
	m := NewModel(DefaultConfig())
	// Int: limited by width (6-wide, 6 ALUs): 1/6 cycle.
	if got := m.Cost(isa.Inst{Op: isa.OpInt}, 0); got != 1.0/6 {
		t.Errorf("int cost = %v, want 1/6", got)
	}
	// FP: 4 FPUs < width: 1/4 cycle.
	if got := m.Cost(isa.Inst{Op: isa.OpFP}, 0); got != 0.25 {
		t.Errorf("fp cost = %v, want 0.25", got)
	}
	// Loads: 2 mem ports: 1/2 cycle plus scaled stall.
	cfg := DefaultConfig()
	want := 0.5 + 100*cfg.LoadStallFactor
	if got := m.Cost(isa.Inst{Op: isa.OpLoad}, 100); got != want {
		t.Errorf("load cost = %v, want %v", got, want)
	}
	// Stores hide most of the stall.
	wantSt := 0.5 + 100*cfg.StoreStallFactor
	if got := m.Cost(isa.Inst{Op: isa.OpStore}, 100); got != wantSt {
		t.Errorf("store cost = %v, want %v", got, wantSt)
	}
}

func TestModelBranchPenalty(t *testing.T) {
	cfg := DefaultConfig()
	m := NewModel(cfg)
	// Train taken, then surprise with not-taken.
	for i := 0; i < 8; i++ {
		m.Cost(isa.Inst{Op: isa.OpBranch, PC: 0x80, Taken: true}, 0)
	}
	correct := m.Cost(isa.Inst{Op: isa.OpBranch, PC: 0x80, Taken: true}, 0)
	wrong := m.Cost(isa.Inst{Op: isa.OpBranch, PC: 0x80, Taken: false}, 0)
	if wrong-correct < cfg.MispredictPenalty-1e-9 {
		t.Errorf("mispredict cost delta = %v, want >= %v", wrong-correct, cfg.MispredictPenalty)
	}
}

func TestNewModelPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 0
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewModel(cfg)
}

// Property: costs are always positive and bounded by
// 1 + penalty + stall for any input.
func TestCostBoundsProperty(t *testing.T) {
	m := NewModel(DefaultConfig())
	f := func(opR uint8, pc uint32, taken bool, stallR uint16) bool {
		op := isa.Op(opR % uint8(isa.NumOps))
		stall := float64(stallR)
		c := m.Cost(isa.Inst{Op: op, PC: pc, Taken: taken}, stall)
		return c > 0 && c <= 1+m.Config().MispredictPenalty+stall
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: gshare is deterministic — identical update sequences produce
// identical mispredict counts.
func TestGshareDeterministicProperty(t *testing.T) {
	f := func(pcs []uint16, dirs []bool) bool {
		run := func() uint64 {
			g := NewGshare(256, 8)
			for i, pc := range pcs {
				g.Update(uint32(pc)<<2, i < len(dirs) && dirs[i])
			}
			return g.Mispredicts()
		}
		return run() == run()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
