package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"dsmphase/internal/harness"
)

// The corruption helpers. Each takes a path already on disk and
// damages it in place, modeling a specific real-world failure. They
// are exported so campaign harnesses can aim them at targets the
// injector never sees — the disk result cache above all.

// CorruptArtifactValue flips one content value of a shard-artifact
// JSON file — the first cell's wall_ns, falling back to a grid's cell
// count — WITHOUT restamping the checksum field. Format, shard
// coordinates and fingerprints all remain valid, so the damage is
// invisible to structural validation; only the content checksum can
// reject it. This is also the «corrupt disk-cache entry» fault:
// aimed at a cache file, the next Get must evict and recompute.
func CorruptArtifactValue(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("faults: corrupting %s: %w", path, err)
	}
	if !bumpFirstNumber(m) {
		return fmt.Errorf("faults: corrupting %s: no mutable value found", path)
	}
	out, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// bumpFirstNumber adds 1 to the first wall_ns it finds under grids →
// results, or to the first grid's cells count when the shard holds no
// results.
func bumpFirstNumber(m map[string]any) bool {
	grids, _ := m["grids"].([]any)
	for _, gv := range grids {
		g, _ := gv.(map[string]any)
		if g == nil {
			continue
		}
		results, _ := g["results"].([]any)
		for _, rv := range results {
			r, _ := rv.(map[string]any)
			if r == nil {
				continue
			}
			if w, ok := r["wall_ns"].(float64); ok {
				r["wall_ns"] = w + 1
				return true
			}
		}
	}
	for _, gv := range grids {
		g, _ := gv.(map[string]any)
		if g == nil {
			continue
		}
		if n, ok := g["cells"].(float64); ok {
			g["cells"] = n + 1
			return true
		}
	}
	return false
}

// TruncateFile cuts a file to half its size — a torn write.
func TruncateFile(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.Truncate(path, fi.Size()/2)
}

// TearStream truncates a JSONL cell stream midway through its final
// line: the last durable cell is lost AND the tail is unparseable —
// exactly what a crash mid-append leaves behind. A stream without a
// complete line is left alone.
func TearStream(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	trimmed := bytes.TrimRight(data, "\n")
	last := bytes.LastIndexByte(trimmed, '\n') // start of final line - 1
	lineStart := last + 1
	cut := lineStart + (len(trimmed)-lineStart)/2
	if cut <= lineStart {
		return nil // nothing meaningful to tear
	}
	return os.Truncate(path, int64(cut))
}

// RewriteFingerprint replaces every grid fingerprint of an artifact
// and restamps the checksum, so the file is internally consistent but
// describes a plan the coordinator never asked for. Caught by the
// dispatcher's fingerprint validation, not the checksum.
func RewriteFingerprint(path string) error {
	a, err := harness.ReadShardArtifactFile(path)
	if err != nil {
		return err
	}
	for i := range a.Grids {
		a.Grids[i].Fingerprint = scrambleHex(a.Grids[i].Fingerprint)
	}
	return harness.WriteShardArtifactFile(path, a)
}

// scrambleHex deterministically maps a fingerprint to a different one.
func scrambleHex(s string) string {
	const alt = "deadbeefdeadbeef"
	if s != alt {
		return alt
	}
	return strings.Repeat("0", len(s))
}
