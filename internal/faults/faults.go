// Package faults is a deterministic, seeded fault-injection plane for
// the dsmphased coordinator. A Plan maps (shard, attempt) pairs to
// fault kinds through an internal/rng Hash64 chain — no global state,
// no wall clock — so two campaigns with the same seed replay the same
// fault schedule against the same dispatch sequence. Wrap installs the
// plane behind the service's Worker seam: the injector parses the
// -shard/-shard-dir handshake off the attempt's argument vector and
// sabotages the attempt before, during or after the wrapped worker
// runs (transient exec failures, slow starts, hangs-until-cancelled,
// crashes before the artifact write, torn cell-stream tails, corrupt,
// truncated or wrong-fingerprint artifacts). The corruption helpers in
// corrupt.go double as the disk-cache fault («corrupt cache entry»)
// for campaign harnesses.
//
// The package deliberately mirrors internal/wdlfuzz's shape:
// deterministic seeded schedules, oracle-checked campaigns
// (service.RunChaos), reproducible by seed alone.
package faults

import (
	"fmt"
	"sync"
	"time"

	"dsmphase/internal/rng"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// None leaves the attempt alone.
	None Kind = iota
	// TransientExec fails the attempt immediately, before the worker
	// process would start — a connection blip or fork failure.
	TransientExec
	// SlowStart delays the attempt by Plan.SlowStartDelay before
	// running it normally — exercises straggler/backoff interplay
	// without failing anything.
	SlowStart
	// Hang blocks until the attempt's context is cancelled — a wedged
	// worker only a per-attempt timeout can reclaim.
	Hang
	// CrashBeforeArtifact runs the shard to completion, then deletes
	// the artifact and reports failure — the worker died after its last
	// durable cell but before the artifact write. The cell stream
	// survives, so the retry resumes with zero recomputation.
	CrashBeforeArtifact
	// TornStream is CrashBeforeArtifact plus a torn cell-stream tail:
	// the stream's final line is cut mid-record, losing its last
	// durable cell — the crash landed mid-write.
	TornStream
	// CorruptArtifact silently flips a content value inside the written
	// artifact (a cell's wall_ns) and reports success. Format, shard
	// coordinates and fingerprint all stay valid; only the content
	// checksum can catch it.
	CorruptArtifact
	// TruncateArtifact cuts the written artifact in half and reports
	// success — a torn write the JSON parser catches.
	TruncateArtifact
	// WrongFingerprint rewrites the artifact's grid fingerprints (and
	// restamps the checksum, so the bytes are internally consistent)
	// and reports success — a worker that ran the wrong plan.
	WrongFingerprint

	numKinds
)

var kindNames = [numKinds]string{
	"none", "transient-exec", "slow-start", "hang", "crash-before-artifact",
	"torn-stream", "corrupt-artifact", "truncate-artifact", "wrong-fingerprint",
}

func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("faults.Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Weighted is one entry of a Plan's fault mix.
type Weighted struct {
	Kind   Kind
	Weight int
}

// DefaultMix is a balanced campaign mix: roughly 60% clean attempts,
// the rest spread over every fault kind.
func DefaultMix() []Weighted {
	return []Weighted{
		{None, 60},
		{TransientExec, 8},
		{SlowStart, 5},
		{Hang, 4},
		{CrashBeforeArtifact, 6},
		{TornStream, 5},
		{CorruptArtifact, 5},
		{TruncateArtifact, 4},
		{WrongFingerprint, 3},
	}
}

// Plan is a composable, seeded fault schedule. Draw is a pure function
// of (Seed, shard, attempt); the per-shard attempt counters (Next) are
// the only mutable state, and they advance deterministically because
// the dispatcher numbers a shard's attempts sequentially.
type Plan struct {
	// Seed keys the schedule; same seed, same draws.
	Seed uint64
	// Mix is the weighted fault distribution of ordinary attempts.
	// Empty means every draw is None.
	Mix []Weighted
	// ReliableAfter, when positive, forces attempts with index ≥
	// ReliableAfter to draw None — a plan that guarantees eventual
	// shard completion within the dispatcher's attempt budget.
	ReliableAfter int
	// VictimMix, when non-empty, marks shard Victim as doomed: its
	// attempts cycle through VictimMix instead of drawing from Mix,
	// ReliableAfter notwithstanding. The degraded-report path's fuel.
	Victim    int
	VictimMix []Kind
	// SlowStartDelay is the SlowStart stall (0 = 50ms).
	SlowStartDelay time.Duration

	mu       sync.Mutex
	attempts map[int]int
}

// Next returns the shard's next attempt ordinal (0-based), advancing
// the per-shard counter.
func (p *Plan) Next(shard int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.attempts == nil {
		p.attempts = map[int]int{}
	}
	n := p.attempts[shard]
	p.attempts[shard] = n + 1
	return n
}

// Draw maps (shard, attempt) to a fault kind — pure, order-free, and
// stable across processes for a given Seed.
func (p *Plan) Draw(shard, attempt int) Kind {
	if len(p.VictimMix) > 0 && shard == p.Victim {
		return p.VictimMix[attempt%len(p.VictimMix)]
	}
	if p.ReliableAfter > 0 && attempt >= p.ReliableAfter {
		return None
	}
	total := 0
	for _, w := range p.Mix {
		total += w.Weight
	}
	if total <= 0 {
		return None
	}
	h := rng.Hash64(p.Seed)
	h = rng.Hash64(h ^ uint64(shard+1))
	h = rng.Hash64(h ^ uint64(attempt+1))
	pick := int(h % uint64(total))
	for _, w := range p.Mix {
		pick -= w.Weight
		if pick < 0 {
			return w.Kind
		}
	}
	return None
}

func (p *Plan) slowStart() time.Duration {
	if p.SlowStartDelay > 0 {
		return p.SlowStartDelay
	}
	return 50 * time.Millisecond
}
