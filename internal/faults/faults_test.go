package faults

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmphase/internal/harness"
)

// TestDrawDeterministic: Draw is a pure function of (Seed, shard,
// attempt) — two plans with the same seed agree everywhere, and a
// different seed produces a different schedule.
func TestDrawDeterministic(t *testing.T) {
	a := &Plan{Seed: 7, Mix: DefaultMix()}
	b := &Plan{Seed: 7, Mix: DefaultMix()}
	c := &Plan{Seed: 8, Mix: DefaultMix()}
	same, diff := true, false
	for shard := 0; shard < 8; shard++ {
		for attempt := 0; attempt < 8; attempt++ {
			if a.Draw(shard, attempt) != b.Draw(shard, attempt) {
				same = false
			}
			if a.Draw(shard, attempt) != c.Draw(shard, attempt) {
				diff = true
			}
		}
	}
	if !same {
		t.Error("same seed drew different schedules")
	}
	if !diff {
		t.Error("seeds 7 and 8 drew identical 64-draw schedules")
	}
}

// TestDrawPolicies: ReliableAfter forces late attempts clean, and a
// victim shard cycles its own mix regardless.
func TestDrawPolicies(t *testing.T) {
	p := &Plan{
		Seed:          1,
		Mix:           []Weighted{{TransientExec, 1}}, // every ordinary draw faults
		ReliableAfter: 2,
		Victim:        3,
		VictimMix:     []Kind{Hang, TransientExec},
	}
	if got := p.Draw(0, 0); got != TransientExec {
		t.Errorf("early ordinary draw = %v, want transient-exec", got)
	}
	if got := p.Draw(0, 2); got != None {
		t.Errorf("draw past ReliableAfter = %v, want none", got)
	}
	for attempt, want := range []Kind{Hang, TransientExec, Hang, TransientExec} {
		if got := p.Draw(3, attempt); got != want {
			t.Errorf("victim attempt %d = %v, want %v", attempt, got, want)
		}
	}
}

// TestNextCountsPerShard: attempt ordinals advance independently per
// shard.
func TestNextCountsPerShard(t *testing.T) {
	p := &Plan{}
	for _, want := range []int{0, 1, 2} {
		if got := p.Next(5); got != want {
			t.Fatalf("Next(5) = %d, want %d", got, want)
		}
	}
	if got := p.Next(6); got != 0 {
		t.Fatalf("Next(6) = %d, want 0 (counters must be per-shard)", got)
	}
}

// fakeRunner writes a valid artifact plus a two-line cell stream into
// the attempt dir, like a healthy worker would.
type fakeRunner struct {
	runs int
}

func (f *fakeRunner) Name() string { return "fake" }

func (f *fakeRunner) Run(ctx context.Context, bin string, args []string) error {
	f.runs++
	_, _, dir, ok := parseShardArgs(args)
	if !ok {
		return fmt.Errorf("fake runner: no shard args")
	}
	a := &harness.ShardArtifact{
		Format: harness.ShardFormat, Shard: 0, Of: 2,
		Grids: []harness.ShardGrid{{
			Name: "g", Cells: 1, Fingerprint: "f0f0f0f0f0f0f0f0",
			Results: []harness.ShardCell{{Index: 0, Workload: "lu", Size: "test", Procs: 2,
				Interval: 1, Seed: 1, Detector: "bbv", WallNS: 5}},
		}},
	}
	if err := harness.WriteShardArtifactFile(filepath.Join(dir, "shard_0_of_2.json"), a); err != nil {
		return err
	}
	stream := "{\"cell\":1}\n{\"cell\":2}\n"
	return os.WriteFile(filepath.Join(dir, "shard_0_of_2.cells.jsonl"), []byte(stream), 0o644)
}

// forced returns an injector whose every draw is the given kind, plus
// the attempt dir and derived file paths.
func forced(t *testing.T, kind Kind) (*Injector, *fakeRunner, string, string, []string) {
	t.Helper()
	dir := t.TempDir()
	inner := &fakeRunner{}
	plan := &Plan{Mix: []Weighted{{kind, 1}}}
	in := Wrap(inner, plan, t.Logf)
	args := []string{"-grids", "figure2", "-shard", "0/2", "-shard-dir", dir}
	return in, inner, filepath.Join(dir, "shard_0_of_2.json"), filepath.Join(dir, "shard_0_of_2.cells.jsonl"), args
}

func TestInjectorKinds(t *testing.T) {
	t.Run("none", func(t *testing.T) {
		in, inner, artifact, _, args := forced(t, None)
		if err := in.Run(context.Background(), "bin", args); err != nil {
			t.Fatal(err)
		}
		if inner.runs != 1 {
			t.Fatalf("inner ran %d times, want 1", inner.runs)
		}
		if _, err := harness.ReadShardArtifactFile(artifact); err != nil {
			t.Fatalf("clean run's artifact unreadable: %v", err)
		}
	})

	t.Run("transient-exec", func(t *testing.T) {
		in, inner, _, _, args := forced(t, TransientExec)
		if err := in.Run(context.Background(), "bin", args); err == nil {
			t.Fatal("transient exec fault returned nil")
		}
		if inner.runs != 0 {
			t.Fatal("transient exec fault still ran the worker")
		}
	})

	t.Run("hang", func(t *testing.T) {
		in, inner, _, _, args := forced(t, Hang)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := in.Run(ctx, "bin", args); err == nil {
			t.Fatal("hang returned nil after cancellation")
		}
		if inner.runs != 0 {
			t.Fatal("hang ran the worker")
		}
	})

	t.Run("crash-before-artifact", func(t *testing.T) {
		in, _, artifact, stream, args := forced(t, CrashBeforeArtifact)
		if err := in.Run(context.Background(), "bin", args); err == nil {
			t.Fatal("crash fault returned nil")
		}
		if _, err := os.Stat(artifact); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("crash fault left the artifact behind")
		}
		if data, err := os.ReadFile(stream); err != nil || len(data) == 0 {
			t.Fatalf("crash fault must preserve the stream (err %v)", err)
		}
	})

	t.Run("torn-stream", func(t *testing.T) {
		in, _, artifact, stream, args := forced(t, TornStream)
		if err := in.Run(context.Background(), "bin", args); err == nil {
			t.Fatal("torn-stream fault returned nil")
		}
		if _, err := os.Stat(artifact); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("torn-stream fault left the artifact behind")
		}
		data, err := os.ReadFile(stream)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := string(data), "{\"cell\":1}\n{\"cell\":2}\n"; got == want || !strings.HasPrefix(want, got) {
			t.Fatalf("stream %q: want a strict mid-line prefix of %q", got, want)
		}
	})

	t.Run("corrupt-artifact", func(t *testing.T) {
		in, _, artifact, _, args := forced(t, CorruptArtifact)
		if err := in.Run(context.Background(), "bin", args); err != nil {
			t.Fatalf("corrupt-artifact must report success, got %v", err)
		}
		if _, err := harness.ReadShardArtifactFile(artifact); !errors.Is(err, harness.ErrArtifactChecksum) {
			t.Fatalf("corrupted artifact read error = %v, want ErrArtifactChecksum", err)
		}
	})

	t.Run("truncate-artifact", func(t *testing.T) {
		in, _, artifact, _, args := forced(t, TruncateArtifact)
		if err := in.Run(context.Background(), "bin", args); err != nil {
			t.Fatalf("truncate-artifact must report success, got %v", err)
		}
		if _, err := harness.ReadShardArtifactFile(artifact); err == nil {
			t.Fatal("truncated artifact still read cleanly")
		}
	})

	t.Run("wrong-fingerprint", func(t *testing.T) {
		in, _, artifact, _, args := forced(t, WrongFingerprint)
		if err := in.Run(context.Background(), "bin", args); err != nil {
			t.Fatalf("wrong-fingerprint must report success, got %v", err)
		}
		a, err := harness.ReadShardArtifactFile(artifact)
		if err != nil {
			t.Fatalf("wrong-fingerprint artifact must stay internally consistent, got %v", err)
		}
		if a.Grids[0].Fingerprint == "f0f0f0f0f0f0f0f0" {
			t.Fatal("fingerprint unchanged")
		}
	})

	t.Run("no-shard-args-pass-through", func(t *testing.T) {
		inner := &fakeRunner{}
		in := Wrap(inner, &Plan{Mix: []Weighted{{TransientExec, 1}}}, nil)
		err := in.Run(context.Background(), "bin", []string{"-grids", "figure2"})
		if err == nil || !strings.Contains(err.Error(), "no shard args") {
			t.Fatalf("non-shard run must pass through to inner (got %v)", err)
		}
		if inner.runs != 1 {
			t.Fatal("non-shard run did not reach the inner runner")
		}
	})
}
