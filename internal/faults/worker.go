package faults

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dsmphase/internal/harness"
)

// Runner matches service.Worker structurally, so the injector slots
// behind the coordinator's Config.WrapWorker seam without this package
// importing internal/service (or vice versa).
type Runner interface {
	Name() string
	Run(ctx context.Context, bin string, args []string) error
}

// Injector wraps a Runner with a Plan: each shard attempt the
// coordinator dispatches through it draws a fault and suffers it. Runs
// whose argument vector carries no -shard/-shard-dir handshake pass
// through untouched.
type Injector struct {
	inner Runner
	plan  *Plan
	logf  func(format string, args ...any)
}

// Wrap builds an Injector. logf (optional) receives one line per
// injected fault — the campaign's audit trail.
func Wrap(inner Runner, plan *Plan, logf func(format string, args ...any)) *Injector {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Injector{inner: inner, plan: plan, logf: logf}
}

func (in *Injector) Name() string { return in.inner.Name() }

func (in *Injector) Run(ctx context.Context, bin string, args []string) error {
	shard, of, dir, ok := parseShardArgs(args)
	if !ok {
		return in.inner.Run(ctx, bin, args)
	}
	attempt := in.plan.Next(shard)
	kind := in.plan.Draw(shard, attempt)
	if kind != None {
		in.logf("faults: shard %d/%d attempt %d on %s: %s", shard, of, attempt, in.inner.Name(), kind)
	}
	artifact := filepath.Join(dir, fmt.Sprintf("shard_%d_of_%d.json", shard, of))
	stream := filepath.Join(dir, fmt.Sprintf("shard_%d_of_%d.cells.jsonl", shard, of))

	switch kind {
	case None:
		return in.inner.Run(ctx, bin, args)

	case TransientExec:
		return fmt.Errorf("faults: injected transient exec failure (shard %d attempt %d)", shard, attempt)

	case SlowStart:
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(in.plan.slowStart()):
		}
		return in.inner.Run(ctx, bin, args)

	case Hang:
		<-ctx.Done()
		return fmt.Errorf("faults: injected hang (shard %d attempt %d): %w", shard, attempt, ctx.Err())

	case CrashBeforeArtifact:
		if err := in.inner.Run(ctx, bin, args); err != nil {
			return err
		}
		_ = os.Remove(artifact)
		return fmt.Errorf("faults: injected crash before artifact write (shard %d attempt %d)", shard, attempt)

	case TornStream:
		if err := in.inner.Run(ctx, bin, args); err != nil {
			return err
		}
		_ = os.Remove(artifact)
		if err := TearStream(stream); err != nil {
			return fmt.Errorf("faults: tearing stream: %w", err)
		}
		return fmt.Errorf("faults: injected crash mid-stream (shard %d attempt %d)", shard, attempt)

	case CorruptArtifact:
		if err := in.inner.Run(ctx, bin, args); err != nil {
			return err
		}
		// Report success: the dispatcher must catch this via the
		// artifact's content checksum, nothing else.
		return CorruptArtifactValue(artifact)

	case TruncateArtifact:
		if err := in.inner.Run(ctx, bin, args); err != nil {
			return err
		}
		return TruncateFile(artifact)

	case WrongFingerprint:
		if err := in.inner.Run(ctx, bin, args); err != nil {
			return err
		}
		return RewriteFingerprint(artifact)
	}
	return in.inner.Run(ctx, bin, args)
}

// parseShardArgs pulls the -shard i/n and -shard-dir values off a
// worker argument vector.
func parseShardArgs(args []string) (shard, of int, dir string, ok bool) {
	var shardSpec string
	for i := 0; i+1 < len(args); i++ {
		switch args[i] {
		case "-shard":
			shardSpec = args[i+1]
		case "-shard-dir":
			dir = args[i+1]
		}
	}
	if shardSpec == "" || dir == "" {
		return 0, 0, "", false
	}
	s, n, err := harness.ParseShard(shardSpec)
	if err != nil {
		return 0, 0, "", false
	}
	return s, n, dir, true
}
