package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// checksumFixture builds a small real artifact (one shard of the shard
// test grid) for the checksum tests.
func checksumFixture(t *testing.T) *ShardArtifact {
	t.Helper()
	s := shardSpec()
	results := s.RunShard(0, 2, Options{Parallel: 2})
	grid, err := NewShardGrid("grid", s, results, false, false)
	if err != nil {
		t.Fatal(err)
	}
	return &ShardArtifact{Format: ShardFormat, Shard: 0, Of: 2, Grids: []ShardGrid{grid}}
}

// TestArtifactChecksumRoundTrip: writers stamp a checksum, readers
// verify it, and the value is a pure function of the content.
func TestArtifactChecksumRoundTrip(t *testing.T) {
	a := checksumFixture(t)
	var buf bytes.Buffer
	if err := WriteShardArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	if a.Checksum == "" || len(a.Checksum) != 16 {
		t.Fatalf("written artifact carries checksum %q, want 16 hex digits", a.Checksum)
	}
	back, err := ReadShardArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Checksum != a.Checksum {
		t.Fatalf("checksum changed across round trip: %s vs %s", back.Checksum, a.Checksum)
	}
	again, err := ChecksumArtifact(back)
	if err != nil {
		t.Fatal(err)
	}
	if again != a.Checksum {
		t.Fatalf("recomputed checksum %s, want %s", again, a.Checksum)
	}
}

// TestArtifactChecksumDetectsCorruption: mutating a field no structural
// validation looks at (a cell's wall_ns) must trip the checksum — that
// is exactly the corruption class only the checksum can catch.
func TestArtifactChecksumDetectsCorruption(t *testing.T) {
	a := checksumFixture(t)
	var buf bytes.Buffer
	if err := WriteShardArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	cell := m["grids"].([]any)[0].(map[string]any)["results"].([]any)[0].(map[string]any)
	cell["wall_ns"] = cell["wall_ns"].(float64) + 1
	corrupted, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShardArtifact(bytes.NewReader(corrupted)); !errors.Is(err, ErrArtifactChecksum) {
		t.Fatalf("corrupted artifact read error = %v, want ErrArtifactChecksum", err)
	}
}

// TestArtifactChecksumOptional: artifacts written before the checksum
// existed (no checksum field) still read — no format-version bump.
func TestArtifactChecksumOptional(t *testing.T) {
	a := checksumFixture(t)
	var buf bytes.Buffer
	if err := WriteShardArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	legacy := strings.Replace(buf.String(), "\"checksum\": \""+a.Checksum+"\",\n", "", 1)
	if legacy == buf.String() {
		t.Fatal("fixture did not contain the checksum line to strip")
	}
	back, err := ReadShardArtifact(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy (checksum-free) artifact failed to read: %v", err)
	}
	if back.Checksum != "" {
		t.Fatalf("legacy artifact grew checksum %q", back.Checksum)
	}
}
