package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"dsmphase/internal/coherence"
	"dsmphase/internal/stats"
)

// Report encoders. Encoders are pure functions of the Report's
// deterministic fields (never the wall-clock timings), so every format
// is byte-identical across runs, worker counts and machines. The text
// encoder at one replicate reproduces the legacy WriteFigure tables
// exactly; the others are the grid-shaped formats the legacy one-shot
// helpers could not offer.

// Encoder renders an executed Report in one output format.
type Encoder interface {
	// Name is the format's registry name ("text", "csv", ...).
	Name() string
	// Encode writes the report.
	Encode(w io.Writer, r *Report) error
}

// NewEncoder returns the named encoder ("text", "csv", "json",
// "markdown"). title is used by formats that carry a heading.
func NewEncoder(name, title string) (Encoder, error) {
	switch name {
	case "text":
		return TextEncoder{Title: title}, nil
	case "csv":
		return CSVEncoder{}, nil
	case "json":
		return JSONEncoder{}, nil
	case "markdown", "md":
		return MarkdownEncoder{Title: title}, nil
	default:
		return nil, fmt.Errorf("harness: unknown encoder %q (want %v)", name, EncoderNames())
	}
}

// EncoderNames returns the registered encoder names, sorted.
func EncoderNames() []string {
	names := []string{"csv", "json", "markdown", "text"}
	sort.Strings(names)
	return names
}

// TextEncoder renders the classic figure tables. At one replicate the
// output is byte-identical to the legacy WriteFigure path: one
// "phases cov thBBV thDDS" block per curve. At several replicates each
// configuration becomes a band table with mean and 95% CI columns.
type TextEncoder struct {
	// Title is the figure heading ("Figure 2: ...").
	Title string
}

// Name implements Encoder.
func (TextEncoder) Name() string { return "text" }

// Encode implements Encoder.
func (e TextEncoder) Encode(w io.Writer, r *Report) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n\n", e.Title); err != nil {
		return err
	}
	if r.Replicates <= 1 {
		for _, c := range r.Curves() {
			if err := WriteCurve(w, c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, c := range r.Configs {
		if len(c.Band.Points) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# %s  (replicates=%d, 95%% CI)\n", c.Config.Label(), len(c.Curves)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%-10s %-10s %-10s %-10s %-4s\n", "phases", "mean", "lo95", "hi95", "n"); err != nil {
			return err
		}
		for _, p := range c.Band.Points {
			if _, err := fmt.Fprintf(w, "%-10.2f %-10.4f %-10.4f %-10.4f %-4d\n",
				p.Phases, p.Mean, p.Lo, p.Hi, p.N); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// CSVEncoder renders one row per band point, band metadata in columns —
// the plottable long form.
type CSVEncoder struct{}

// Name implements Encoder.
func (CSVEncoder) Name() string { return "csv" }

// Encode implements Encoder. The protocol column appears only when the
// report sweeps a non-default coherence backend, so default-protocol
// reports keep the pre-seam header byte for byte.
func (CSVEncoder) Encode(w io.Writer, r *Report) error {
	if reportSweepsProtocol(r) {
		if _, err := fmt.Fprintln(w, "variant,app,procs,detector,protocol,phases,cov_mean,cov_lo95,cov_hi95,n"); err != nil {
			return err
		}
		for _, c := range r.Configs {
			for _, p := range c.Band.Points {
				if _, err := fmt.Fprintf(w, "%s,%s,%d,%s,%s,%s,%s,%s,%s,%d\n",
					variantName(c.Config.Variant), c.Config.App, c.Config.Procs, c.Config.Detector,
					c.Config.Protocol, ftoa(p.Phases), ftoa(p.Mean), ftoa(p.Lo), ftoa(p.Hi), p.N); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if _, err := fmt.Fprintln(w, "variant,app,procs,detector,phases,cov_mean,cov_lo95,cov_hi95,n"); err != nil {
		return err
	}
	for _, c := range r.Configs {
		for _, p := range c.Band.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%s,%s,%s,%s,%s,%d\n",
				variantName(c.Config.Variant), c.Config.App, c.Config.Procs, c.Config.Detector,
				ftoa(p.Phases), ftoa(p.Mean), ftoa(p.Lo), ftoa(p.Hi), p.N); err != nil {
				return err
			}
		}
	}
	return nil
}

// reportSweepsProtocol reports whether any configuration of the report
// runs a non-default coherence backend.
func reportSweepsProtocol(r *Report) bool {
	for _, c := range r.Configs {
		if c.Config.Protocol != coherence.KindDirectory {
			return true
		}
	}
	return false
}

// JSONEncoder renders the whole report as one document, including
// per-configuration errors — the serialization cross-machine plan
// sharding will consume.
type JSONEncoder struct{}

// Name implements Encoder.
func (JSONEncoder) Name() string { return "json" }

type jsonBandPoint struct {
	Phases float64 `json:"phases"`
	Mean   float64 `json:"mean"`
	Lo     float64 `json:"lo95"`
	Hi     float64 `json:"hi95"`
	N      int     `json:"n"`
}

type jsonConfig struct {
	Variant  string          `json:"variant"`
	App      string          `json:"app"`
	Procs    int             `json:"procs"`
	Detector string          `json:"detector"`
	Protocol string          `json:"protocol,omitempty"`
	Curves   int             `json:"curves"`
	Errors   []string        `json:"errors,omitempty"`
	Band     []jsonBandPoint `json:"band"`
	// Spread surfaces the raw across-replicate dispersion at the paper's
	// 25-phase budget (present only at replicates > 1), so consumers can
	// judge CI overlap from the replicates themselves rather than the
	// summarized band alone.
	Spread *jsonSpread `json:"replicate_spread,omitempty"`
}

// jsonSpread is one configuration's per-replicate CoV@25 values (finite
// replicates only, replicate order) and their standard deviation.
type jsonSpread struct {
	Cov25  []float64 `json:"cov25"`
	Stddev float64   `json:"stddev"`
}

type jsonReport struct {
	Size       string       `json:"size"`
	Seed       uint64       `json:"seed"`
	Replicates int          `json:"replicates"`
	Configs    []jsonConfig `json:"configs"`
}

// Encode implements Encoder.
func (JSONEncoder) Encode(w io.Writer, r *Report) error {
	doc := jsonReport{
		Size:       r.Size.String(),
		Seed:       r.Seed,
		Replicates: r.Replicates,
		Configs:    make([]jsonConfig, 0, len(r.Configs)),
	}
	for _, c := range r.Configs {
		jc := jsonConfig{
			Variant:  variantName(c.Config.Variant),
			App:      c.Config.App,
			Procs:    c.Config.Procs,
			Detector: c.Config.Detector.String(),
			Curves:   len(c.Curves),
			Band:     make([]jsonBandPoint, 0, len(c.Band.Points)),
		}
		if c.Config.Protocol != coherence.KindDirectory {
			jc.Protocol = c.Config.Protocol.String()
		}
		for _, res := range c.Results {
			if res.Err != nil {
				jc.Errors = append(jc.Errors, res.Err.Error())
			}
		}
		for _, p := range c.Band.Points {
			jc.Band = append(jc.Band, jsonBandPoint{Phases: p.Phases, Mean: p.Mean, Lo: p.Lo, Hi: p.Hi, N: p.N})
		}
		if r.Replicates > 1 {
			// +Inf (an unreachable budget) is not representable in JSON;
			// only finite replicates contribute, matching the band's N.
			spread := &jsonSpread{Cov25: []float64{}}
			for _, curve := range c.Curves {
				if v := curve.Curve.CoVAt(25); !math.IsInf(v, 1) {
					spread.Cov25 = append(spread.Cov25, v)
				}
			}
			spread.Stddev = stats.StdDev(spread.Cov25)
			jc.Spread = spread
		}
		doc.Configs = append(doc.Configs, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// MarkdownEncoder renders the ablation scorecard: one row per
// configuration with its CoV at the paper's 10- and 25-phase budgets
// and the change against the baseline variant of the same (app, procs,
// detector) point.
type MarkdownEncoder struct {
	// Title is the scorecard heading; empty derives one.
	Title string
}

// Name implements Encoder.
func (MarkdownEncoder) Name() string { return "markdown" }

// Encode implements Encoder.
func (e MarkdownEncoder) Encode(w io.Writer, r *Report) error {
	title := e.Title
	if title == "" {
		title = "Ablation scorecard"
	}
	if _, err := fmt.Fprintf(w, "## %s (size=%s, seed=%d, replicates=%d)\n\n",
		title, r.Size, r.Seed, r.Replicates); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| variant | app | procs | detector | CoV@10 | CoV@25 | ±CI@25 | vs baseline |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|"); err != nil {
		return err
	}
	type point struct {
		app      string
		procs    int
		detector string
	}
	baseline := map[point]float64{}
	for _, c := range r.Configs {
		if variantName(c.Config.Variant) == "baseline" {
			baseline[point{c.Config.App, c.Config.Procs, detectorCell(c.Config)}] = c.Band.MeanAt(25)
		}
	}
	for _, c := range r.Configs {
		name := variantName(c.Config.Variant)
		c25 := c.Band.MeanAt(25)
		delta := "—"
		if base, ok := baseline[point{c.Config.App, c.Config.Procs, detectorCell(c.Config)}]; ok {
			switch {
			case name == "baseline":
				// The reference row itself.
			case math.IsInf(base, 1) || math.IsInf(c25, 1) || base == 0:
				// No finite reference to diff against.
			default:
				delta = fmt.Sprintf("%+.1f%%", 100*(c25-base)/base)
			}
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %d | %s | %s | %s | %s | %s |\n",
			name, c.Config.App, c.Config.Procs, detectorCell(c.Config),
			covCell(c.Band.MeanAt(10)), covCell(c25), covCell(c.Band.HalfAt(25)), delta); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// detectorCell renders a configuration's detector column, suffixing the
// coherence backend when it is not the default directory engine (so
// directory-only scorecards keep the pre-seam cells).
func detectorCell(c Configuration) string {
	if c.Protocol != coherence.KindDirectory {
		return c.Detector.String() + "/" + c.Protocol.String()
	}
	return c.Detector.String()
}

// variantName returns a variant's report name; the zero variant reads
// as the baseline.
func variantName(v Variant) string {
	if v.Name == "" {
		return "baseline"
	}
	return v.Name
}

// covCell formats a CoV value for markdown, with an em dash for an
// unreachable budget.
func covCell(v float64) string {
	if math.IsInf(v, 1) {
		return "—"
	}
	return fmt.Sprintf("%.4f", v)
}

// ftoa formats a float for CSV with the shortest exact representation.
func ftoa(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
