package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"dsmphase/internal/coherence"
	"dsmphase/internal/core"
	"dsmphase/internal/machine"
	"dsmphase/internal/rng"
	"dsmphase/internal/workloads"
)

// The sharded experiment engine. A figure or study is a Plan of
// independent cells — one (workload, procs, seed, detector, tweak)
// point each — and a Runner executes the plan across a bounded worker
// pool. Cells that share a simulation (the same execution swept by
// different detectors, as in Figure 4) are deduplicated through a
// memoizing record cache, so BBV and BBV+DDV sweeps reuse one machine
// run exactly as the serial harness did. Results are aggregated in plan
// order regardless of completion order, which — together with the
// deterministic simulator — makes the engine's output independent of
// the worker count.

// Cell is one independent experiment: simulate Run and sweep Kind's
// default threshold grid over the recorded signatures.
type Cell struct {
	// Run describes the simulation half of the cell.
	Run RunConfig
	// Kind selects the detector swept over the recording.
	Kind core.DetectorKind
	// TweakKey names Run.Tweak for the record cache. Cells whose
	// RunConfigs agree on (Workload, Size, Procs, Interval, Seed) and on
	// TweakKey share one simulation. A cell with a non-nil Tweak and an
	// empty TweakKey is never shared, because the function's effect is
	// unknown to the cache.
	TweakKey string
}

// Label returns the cell's display label ("lu 8P BBV+DDV"; a
// non-default coherence protocol appears after the processor count).
func (c Cell) Label() string {
	if c.Run.Protocol != 0 {
		return fmt.Sprintf("%s %dP %s %s", c.Run.Workload, c.Run.Procs, c.Run.Protocol, c.Kind)
	}
	return fmt.Sprintf("%s %dP %s", c.Run.Workload, c.Run.Procs, c.Kind)
}

// simKey is the record-cache identity of a cell's simulation half.
type simKey struct {
	workload string
	size     workloads.Size
	procs    int
	interval uint64
	seed     uint64
	protocol coherence.Kind
	tweak    string
}

// simKeyAt returns the cell's cache key; idx uniquifies cells whose
// Tweak cannot be identified.
func (c Cell) simKeyAt(idx int) simKey {
	k := simKey{
		workload: c.Run.Workload,
		size:     c.Run.Size,
		procs:    c.Run.Procs,
		interval: c.Run.IntervalInstructions,
		seed:     c.Run.Seed,
		protocol: c.Run.Protocol,
		tweak:    c.TweakKey,
	}
	if c.Run.Tweak != nil && c.TweakKey == "" {
		k.tweak = fmt.Sprintf("\x00uncacheable-%d", idx)
	}
	return k
}

// Plan is an ordered list of cells. Order is significant: results come
// back in plan order, so two runs of the same plan produce identical
// output whatever the worker count.
type Plan struct {
	cells []Cell
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{} }

// Add appends one cell per detector kind, all sharing rc's simulation.
func (p *Plan) Add(rc RunConfig, kinds ...core.DetectorKind) *Plan {
	for _, k := range kinds {
		p.cells = append(p.cells, Cell{Run: rc, Kind: k})
	}
	return p
}

// AddCell appends a fully specified cell (needed to attach a TweakKey).
func (p *Plan) AddCell(c Cell) *Plan {
	p.cells = append(p.cells, c)
	return p
}

// Cells returns the plan's cells in order.
func (p *Plan) Cells() []Cell { return p.cells }

// Len returns the number of cells.
func (p *Plan) Len() int { return len(p.cells) }

// Simulations returns the number of distinct machine runs the record
// cache will perform for this plan (the denominator of the memoization
// saving).
func (p *Plan) Simulations() int {
	seen := make(map[simKey]bool, len(p.cells))
	for i, c := range p.cells {
		seen[c.simKeyAt(i)] = true
	}
	return len(seen)
}

// FigurePlan enumerates a figure's cells: every (app, procs) pair of fc
// simulated once and swept by every requested detector — the engine
// form of the serial runFigure loop, in the same app-major order.
func FigurePlan(fc FigureConfig, procsList []int, kinds []core.DetectorKind) *Plan {
	p := NewPlan()
	for _, app := range fc.apps() {
		for _, procs := range procsList {
			p.Add(RunConfig{
				Workload:             app,
				Size:                 fc.Size,
				Procs:                procs,
				IntervalInstructions: fc.interval(procs),
				Seed:                 fc.Seed,
			}, kinds...)
		}
	}
	return p
}

// DeriveSeed deterministically mixes a base seed with a cell's identity
// and a replicate index. Multi-seed sweeps (confidence bands) must not
// seed replicates sequentially — nearby splitmix states correlate — nor
// depend on enumeration order; hashing the coordinates gives every cell
// an independent, order-free stream.
func DeriveSeed(base uint64, workload string, procs int, replicate int) uint64 {
	h := rng.Hash64(base)
	for _, b := range []byte(workload) {
		h = rng.Hash64(h ^ uint64(b))
	}
	h = rng.Hash64(h ^ uint64(procs))
	return rng.Hash64(h ^ uint64(replicate))
}

// CellResult is one cell's outcome. Err is per-cell: a diverging
// workload reports here without sinking its siblings.
type CellResult struct {
	// Index is the cell's position in the plan.
	Index int
	// Cell echoes the executed cell.
	Cell Cell
	// Curve is the swept result; zero when Err is non-nil.
	Curve CurveResult
	// Err is the cell's simulation error, if any.
	Err error
	// Wall is the cell's wall-clock time (simulation — or the wait on a
	// sibling's shared simulation — plus the sweep). It is the one field
	// that varies across identical runs; determinism comparisons must
	// ignore it and encoders must not emit it.
	Wall time.Duration
	// Extra carries the Options.Hook return value, if a hook ran; nil
	// otherwise. Report encoders never emit it — hook-derived data gets
	// its own aggregation (e.g. TuningReport).
	Extra any
}

// CellHook is the engine's extension point for computations that need
// the live simulation, not just the swept curve: it runs in the worker
// after the cell's sweep, while the cell's (possibly shared) machine is
// still resident, and its return value is stored in CellResult.Extra.
// Cells sharing one simulation run their hooks concurrently on the same
// machine, so hooks must treat it as read-only (the recorded interval
// signatures are safe to read). Hooks must be deterministic for the
// engine's output to stay worker-count independent.
type CellHook func(c Cell, m *machine.Machine, curve CurveResult, sum machine.Summary) any

// Options configures a Runner.
type Options struct {
	// Parallel bounds the worker pool; <= 0 uses runtime.GOMAXPROCS(0).
	Parallel int
	// Progress, if non-nil, is called once per completed cell, with done
	// counting completions (1..total). Calls are serialized; done is
	// monotone but cells complete in execution order, not plan order.
	Progress func(done, total int, r CellResult)
	// Hook, if non-nil, runs for every successfully swept cell while its
	// simulation is still resident; see CellHook.
	Hook CellHook
}

// Runner executes plans over a bounded goroutine pool.
type Runner struct {
	opts Options
}

// NewRunner returns a runner with the given options.
func NewRunner(opts Options) *Runner { return &Runner{opts: opts} }

// simEntry memoizes one simulation shared by several cells. The first
// worker to reach the entry runs the machine; the rest block on the
// Once and then sweep the shared records (sweeps only read them). refs
// counts the cells still needing the machine: the last release drops
// it, so a long plan's peak memory is bounded by the in-flight
// simulations rather than every simulation it ever ran.
type simEntry struct {
	once sync.Once
	m    *machine.Machine
	sum  machine.Summary
	err  error

	mu   sync.Mutex
	refs int
}

func (e *simEntry) simulate(rc RunConfig) (*machine.Machine, machine.Summary, error) {
	e.once.Do(func() {
		e.m, e.sum, e.err = Simulate(rc)
	})
	return e.m, e.sum, e.err
}

// release drops one cell's claim on the machine. Callers must not use
// the returned machine after releasing.
func (e *simEntry) release() {
	e.mu.Lock()
	e.refs--
	if e.refs <= 0 {
		e.m = nil
	}
	e.mu.Unlock()
}

// Run executes every cell of the plan and returns results in plan
// order. It never returns early: each cell's error is isolated in its
// CellResult.
func (r *Runner) Run(p *Plan) []CellResult {
	cells := p.Cells()
	n := len(cells)
	results := make([]CellResult, n)
	if n == 0 {
		return results
	}
	workers := r.opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// Dispatch first-occurrence cells of each simulation before the
	// duplicate-sweep cells: siblings sharing a simulation would only
	// block on its Once, so front-loading the distinct simulations keeps
	// every worker simulating while duplicates sweep cached records.
	sims := make(map[simKey]*simEntry, n)
	order := make([]int, 0, n)
	var dups []int
	for i, c := range cells {
		k := c.simKeyAt(i)
		if sims[k] == nil {
			sims[k] = &simEntry{}
			order = append(order, i)
		} else {
			dups = append(dups, i)
		}
		sims[k].refs++
	}
	order = append(order, dups...)

	jobs := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				c := cells[i]
				res := CellResult{Index: i, Cell: c}
				start := time.Now()
				e := sims[c.simKeyAt(i)]
				m, sum, err := e.simulate(c.Run)
				if err != nil {
					res.Err = err
				} else {
					res.Curve = SweepMachine(m, c.Run, c.Kind, sum)
					if r.opts.Hook != nil {
						res.Extra = r.opts.Hook(c, m, res.Curve, sum)
					}
				}
				e.release()
				res.Wall = time.Since(start)
				results[i] = res
				if r.opts.Progress != nil {
					mu.Lock()
					done++
					r.opts.Progress(done, n, res)
					mu.Unlock()
				}
			}
		}()
	}
	for _, i := range order {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// RunPlan executes a plan with a one-shot runner.
func RunPlan(p *Plan, opts Options) []CellResult {
	return NewRunner(opts).Run(p)
}

// ETA estimates a run's remaining wall time from completed cells,
// intended for Options.Progress callbacks: feed it each completion and
// print what it returns. Cells vary widely in cost (a 32P full-size
// simulation versus a cached sweep), so the estimate is the plain
// completed-rate extrapolation — robust, monotone-improving, and free
// of per-workload modelling. Seed lets a prior run's persisted per-cell
// timings (shard artifacts carry them) stand in for the first
// completions, so long runs show a useful ETA from cell one.
type ETA struct {
	start time.Time
	// The prior: priorCells virtual completions of priorPer each, blended
	// with the observed rate and fading as real completions accumulate.
	priorPer   time.Duration
	priorCells int
}

// NewETA starts the clock.
func NewETA() *ETA { return &ETA{start: time.Now()} }

// Seed installs a prior from a previous run: cells completions averaging
// perCell each. The prior acts as that many virtual observations, so its
// weight fades as the live run accumulates real completions. Non-positive
// arguments clear the prior.
func (e *ETA) Seed(perCell time.Duration, cells int) *ETA {
	if perCell <= 0 || cells <= 0 {
		e.priorPer, e.priorCells = 0, 0
		return e
	}
	e.priorPer, e.priorCells = perCell, cells
	return e
}

// Observe reports the elapsed time and the estimated remaining time
// after done of total cells have completed. done must be ≥ 1 (with a
// seeded prior, done 0 also yields an estimate).
func (e *ETA) Observe(done, total int) (elapsed, remaining time.Duration) {
	elapsed = time.Since(e.start)
	if done >= total || done < 0 || (done == 0 && e.priorCells == 0) {
		return elapsed, 0
	}
	// Blend the prior's virtual completions with the observed ones:
	// per-cell estimate = (elapsed + prior time) / (done + prior cells).
	per := (elapsed + e.priorPer*time.Duration(e.priorCells)) /
		time.Duration(done+e.priorCells)
	return elapsed, per * time.Duration(total-done)
}

// ProgressEvent is one structured progress notification: a completed
// cell annotated with the run's ETA state. It is the single source both
// progress consumers share — the CLI printer renders it as the
// familiar "[done/total] label (cell 12ms, eta 3s)" stderr line, and
// the coordinator service streams it to clients as a server-sent JSON
// event — so the two surfaces can never drift apart.
type ProgressEvent struct {
	// Done counts completions (1..Total); Total is the plan's cell count.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Label is the completed cell's display label ("lu 8P BBV").
	Label string `json:"label,omitempty"`
	// Err is the cell's error string; empty on success.
	Err string `json:"error,omitempty"`
	// Wall is the completed cell's wall-clock time.
	Wall time.Duration `json:"wall_ns,omitempty"`
	// Elapsed and Remaining are the run's ETA state at this completion
	// (Remaining is the blended-prior estimate; see ETA).
	Elapsed   time.Duration `json:"elapsed_ns,omitempty"`
	Remaining time.Duration `json:"remaining_ns,omitempty"`
}

// String renders the event as the canonical one-line progress form.
func (ev ProgressEvent) String() string {
	return fmt.Sprintf("[%d/%d] %s (cell %v, eta %v)", ev.Done, ev.Total, ev.Label,
		ev.Wall.Round(time.Millisecond), ev.Remaining.Round(100*time.Millisecond))
}

// EventSink consumes structured progress events. Sinks are called
// serially in completion order (the engine serializes Progress).
type EventSink func(ProgressEvent)

// ProgressEvents adapts an EventSink into an Options.Progress callback,
// annotating each completion with a fresh ETA clock seeded by the
// (perCell, cells) prior — zeros clear the prior. Use one adapter per
// Run so the estimator never mixes plans.
func ProgressEvents(sink EventSink, perCell time.Duration, cells int) func(done, total int, r CellResult) {
	eta := NewETA().Seed(perCell, cells)
	return func(done, total int, r CellResult) {
		elapsed, remaining := eta.Observe(done, total)
		ev := ProgressEvent{
			Done:      done,
			Total:     total,
			Label:     r.Cell.Label(),
			Wall:      r.Wall,
			Elapsed:   elapsed,
			Remaining: remaining,
		}
		if r.Err != nil {
			ev.Err = r.Err.Error()
		}
		sink(ev)
	}
}

// ProgressPrinter returns an Options.Progress callback that prints one
// "[done/total] label (cell 12ms, eta 3s)" line per completed cell to
// w, with a fresh ETA clock. Use one printer per Run so the estimator
// never mixes plans.
func ProgressPrinter(w io.Writer) func(done, total int, r CellResult) {
	return SeededProgressPrinter(w, 0, 0)
}

// SeededProgressPrinter is ProgressPrinter with an ETA prior: perCell
// and cells describe a previous run's persisted timings (see
// ShardArtifact.MeanCellWall), so the first line already carries a
// calibrated estimate. Zero arguments reduce to ProgressPrinter. It is
// the printing consumer of ProgressEvents; services stream the same
// events as JSON instead.
func SeededProgressPrinter(w io.Writer, perCell time.Duration, cells int) func(done, total int, r CellResult) {
	return ProgressEvents(func(ev ProgressEvent) { fmt.Fprintln(w, ev) }, perCell, cells)
}

// Curves extracts the successful curves of a result set, in plan order.
func Curves(results []CellResult) []CurveResult {
	out := make([]CurveResult, 0, len(results))
	for _, r := range results {
		if r.Err == nil {
			out = append(out, r.Curve)
		}
	}
	return out
}

// FirstError returns the first failed cell's error, or nil.
func FirstError(results []CellResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
