package harness

import (
	"reflect"
	"sync/atomic"
	"testing"

	"dsmphase/internal/core"
	"dsmphase/internal/machine"
	"dsmphase/internal/workloads"
)

// engineFC is a small figure configuration for engine tests.
func engineFC() FigureConfig {
	return FigureConfig{
		Apps:     []string{"lu", "fmm"},
		Size:     workloads.SizeTest,
		Interval: 40_000,
		Seed:     1,
	}
}

// stripWall zeroes the per-cell wall-clock timings, the one CellResult
// field that legitimately differs between identical runs.
func stripWall(rs []CellResult) []CellResult {
	out := append([]CellResult(nil), rs...)
	for i := range out {
		out[i].Wall = 0
	}
	return out
}

// TestRunnerMatchesSerial is the engine's core determinism contract:
// for a fixed seed the parallel runner's Figure 2 and Figure 4 results
// are identical to the serial path at every worker count.
func TestRunnerMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs in -short mode")
	}
	for _, fig := range []struct {
		name  string
		procs []int
		kinds []core.DetectorKind
	}{
		{"figure2", []int{2, 4}, []core.DetectorKind{core.DetectorBBV}},
		{"figure4", []int{4}, []core.DetectorKind{core.DetectorBBV, core.DetectorBBVDDV}},
	} {
		t.Run(fig.name, func(t *testing.T) {
			plan := FigurePlan(engineFC(), fig.procs, fig.kinds)
			serial := stripWall(RunPlan(plan, Options{Parallel: 1}))
			for _, workers := range []int{2, 3, 8} {
				parallel := stripWall(RunPlan(plan, Options{Parallel: workers}))
				if !reflect.DeepEqual(serial, parallel) {
					t.Errorf("results at %d workers differ from serial", workers)
				}
			}
		})
	}
}

// TestFigureMatchesLegacySerialPath pins the rewired Figure4 facade to
// the pre-engine behavior: simulate each pair once, sweep each kind.
func TestFigureMatchesLegacySerialPath(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs in -short mode")
	}
	fc := engineFC()
	fc.Apps = []string{"lu"}
	fc.Parallel = 4
	got, err := Figure4(fc, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{
		Workload:             "lu",
		Size:                 fc.Size,
		Procs:                4,
		IntervalInstructions: fc.Interval / 4,
		Seed:                 fc.Seed,
	}
	m, sum, err := Simulate(rc)
	if err != nil {
		t.Fatal(err)
	}
	want := []CurveResult{
		SweepMachine(m, rc, core.DetectorBBV, sum),
		SweepMachine(m, rc, core.DetectorBBVDDV, sum),
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("engine-backed Figure4 differs from the hand-rolled serial path")
	}
}

// TestRunnerIsolatesFailingCell checks per-cell error isolation: a
// diverging cell reports its error without sinking sibling cells.
func TestRunnerIsolatesFailingCell(t *testing.T) {
	rc := RunConfig{
		Workload:             "lu",
		Size:                 workloads.SizeTest,
		Procs:                2,
		IntervalInstructions: 10_000,
		Seed:                 1,
	}
	bad := rc
	bad.Workload = "no-such-workload"
	plan := NewPlan().
		Add(rc, core.DetectorBBV).
		Add(bad, core.DetectorBBV).
		Add(rc, core.DetectorBBVDDV)
	results := RunPlan(plan, Options{Parallel: 3})
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if results[1].Err == nil {
		t.Error("failing cell reported no error")
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("sibling cell %d sunk by failing cell: %v", i, results[i].Err)
		}
		if len(results[i].Curve.Curve.Points) == 0 {
			t.Errorf("sibling cell %d has an empty curve", i)
		}
	}
	if err := FirstError(results); err == nil {
		t.Error("FirstError missed the failure")
	}
	if got := len(Curves(results)); got != 2 {
		t.Errorf("Curves kept %d results, want 2", got)
	}
}

// TestRunnerSharesSimulations checks the memoizing record cache: cells
// that agree on the simulation half run the machine exactly once.
func TestRunnerSharesSimulations(t *testing.T) {
	var sims atomic.Int32
	rc := RunConfig{
		Workload:             "lu",
		Size:                 workloads.SizeTest,
		Procs:                2,
		IntervalInstructions: 10_000,
		Seed:                 1,
		Tweak:                func(*machine.Config) { sims.Add(1) },
	}
	plan := NewPlan().
		AddCell(Cell{Run: rc, Kind: core.DetectorBBV, TweakKey: "count"}).
		AddCell(Cell{Run: rc, Kind: core.DetectorBBVDDV, TweakKey: "count"}).
		AddCell(Cell{Run: rc, Kind: core.DetectorWSS, TweakKey: "count"})
	if got := plan.Simulations(); got != 1 {
		t.Errorf("plan predicts %d simulations, want 1", got)
	}
	results := RunPlan(plan, Options{Parallel: 3})
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != 1 {
		t.Errorf("machine simulated %d times, want 1 (record cache)", got)
	}
}

// TestRunnerDoesNotShareUnkeyedTweaks checks the cache's safety valve:
// a non-nil Tweak without a TweakKey must never be deduplicated, since
// the cache cannot compare function effects.
func TestRunnerDoesNotShareUnkeyedTweaks(t *testing.T) {
	var sims atomic.Int32
	rc := RunConfig{
		Workload:             "lu",
		Size:                 workloads.SizeTest,
		Procs:                2,
		IntervalInstructions: 10_000,
		Seed:                 1,
		Tweak:                func(*machine.Config) { sims.Add(1) },
	}
	plan := NewPlan().Add(rc, core.DetectorBBV).Add(rc, core.DetectorBBVDDV)
	if got := plan.Simulations(); got != 2 {
		t.Errorf("plan predicts %d simulations, want 2", got)
	}
	if err := FirstError(RunPlan(plan, Options{Parallel: 2})); err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != 2 {
		t.Errorf("unkeyed tweaked cells shared a simulation (%d runs, want 2)", got)
	}
}

// TestRunnerProgress checks that the progress callback fires once per
// cell with a monotone done counter and stable total.
func TestRunnerProgress(t *testing.T) {
	rc := RunConfig{
		Workload:             "lu",
		Size:                 workloads.SizeTest,
		Procs:                2,
		IntervalInstructions: 10_000,
		Seed:                 1,
	}
	plan := NewPlan().Add(rc, core.DetectorBBV, core.DetectorBBVDDV, core.DetectorWSS)
	var calls []int
	RunPlan(plan, Options{
		Parallel: 2,
		Progress: func(done, total int, r CellResult) {
			if total != plan.Len() {
				t.Errorf("total = %d, want %d", total, plan.Len())
			}
			calls = append(calls, done)
		},
	})
	if len(calls) != plan.Len() {
		t.Fatalf("progress fired %d times, want %d", len(calls), plan.Len())
	}
	for i, d := range calls {
		if d != i+1 {
			t.Errorf("done sequence %v not monotone 1..n", calls)
			break
		}
	}
}

// TestDeriveSeed checks the per-cell seeding helper: stable across
// calls, and distinct across every coordinate.
func TestDeriveSeed(t *testing.T) {
	base := DeriveSeed(1, "lu", 8, 0)
	if base != DeriveSeed(1, "lu", 8, 0) {
		t.Error("DeriveSeed is not deterministic")
	}
	variants := map[string]uint64{
		"base seed": DeriveSeed(2, "lu", 8, 0),
		"workload":  DeriveSeed(1, "fmm", 8, 0),
		"procs":     DeriveSeed(1, "lu", 16, 0),
		"replicate": DeriveSeed(1, "lu", 8, 1),
	}
	for name, v := range variants {
		if v == base {
			t.Errorf("changing %s did not change the derived seed", name)
		}
	}
}

// TestRunnerDefaultWorkerCount checks that Parallel <= 0 still runs
// every cell (the GOMAXPROCS default path).
func TestRunnerDefaultWorkerCount(t *testing.T) {
	rc := RunConfig{
		Workload:             "fmm",
		Size:                 workloads.SizeTest,
		Procs:                2,
		IntervalInstructions: 10_000,
		Seed:                 1,
	}
	results := RunPlan(NewPlan().Add(rc, core.DetectorBBV), Options{})
	if len(results) != 1 || results[0].Err != nil {
		t.Fatalf("default-worker run failed: %+v", results)
	}
	if len(results[0].Curve.Curve.Points) == 0 {
		t.Error("empty curve from default-worker run")
	}
}
