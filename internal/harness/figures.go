package harness

import (
	"fmt"
	"io"

	"dsmphase/internal/core"
	"dsmphase/internal/workloads"
)

// FigureConfig scales a figure reproduction. The paper's full runs use
// Size=full and Interval=3M/Procs; the defaults here use the reduced
// sizes so the whole figure regenerates in minutes on a laptop, exactly
// as the paper itself shrank 100M-instruction intervals to 3M for its
// reduced inputs.
type FigureConfig struct {
	// Apps lists the Table II applications to include (empty = all four).
	Apps []string
	// Size is the workload input scale.
	Size workloads.Size
	// Interval is the total system sampling interval; each processor
	// samples Interval/Procs instructions (the paper's 3M/n rule).
	// 0 derives 300k total for the reduced inputs.
	Interval uint64
	// Seed drives the workloads.
	Seed uint64
	// Parallel bounds the engine's worker pool; <= 0 uses
	// runtime.GOMAXPROCS(0). Output is identical for every value.
	Parallel int
	// Progress, if non-nil, receives one callback per completed cell.
	Progress func(done, total int, r CellResult)
}

// Figure2 reproduces the baseline experiment: BBV-only CoV curves for
// each application at 2, 8 and 32 processors (paper Fig. 2). The paper's
// qualitative claim: curves degrade (shift up) as the node count grows.
//
// Deprecated: Figure2 is a thin wrapper over the Spec/Report API; build
// a Spec with Figure2Spec (or NewSpec directly) to get replicates,
// confidence bands and the non-text encoders. The wrapper's output is
// unchanged: single seed, curves in figure order.
func Figure2(fc FigureConfig, procsList []int) ([]CurveResult, error) {
	return runFigure(Figure2Spec(fc, procsList), fc)
}

// Figure4 reproduces the contribution experiment: BBV vs BBV+DDV CoV
// curves at 8 and 32 processors (paper Fig. 4). The paper's qualitative
// claim: BBV+DDV lies below BBV everywhere, and the gap widens at 32P.
//
// Deprecated: Figure4 is a thin wrapper over the Spec/Report API; build
// a Spec with Figure4Spec (or NewSpec directly) to get replicates,
// confidence bands and the non-text encoders. The wrapper's output is
// unchanged: single seed, curves in figure order.
func Figure4(fc FigureConfig, procsList []int) ([]CurveResult, error) {
	return runFigure(Figure4Spec(fc, procsList), fc)
}

// Figure2Spec builds the declarative form of Figure 2, ready for
// further options (replicates, extra variants) via Spec.With.
func Figure2Spec(fc FigureConfig, procsList []int) *Spec {
	if len(procsList) == 0 {
		procsList = []int{2, 8, 32}
	}
	return fc.spec(procsList, core.DetectorBBV)
}

// Figure4Spec builds the declarative form of Figure 4.
func Figure4Spec(fc FigureConfig, procsList []int) *Spec {
	if len(procsList) == 0 {
		procsList = []int{8, 32}
	}
	return fc.spec(procsList, core.DetectorBBV, core.DetectorBBVDDV)
}

// spec translates the legacy figure configuration into a Spec.
func (fc FigureConfig) spec(procsList []int, kinds ...core.DetectorKind) *Spec {
	return NewSpec(
		WithApps(fc.Apps...),
		WithProcs(procsList...),
		WithDetectors(kinds...),
		WithSize(fc.Size),
		WithInterval(fc.Interval),
		WithSeed(fc.Seed),
	)
}

func (fc FigureConfig) apps() []string {
	return ResolveApps(fc.Apps)
}

func (fc FigureConfig) interval(procs int) uint64 {
	if fc.Interval > 0 {
		return fc.Interval / uint64(procs)
	}
	return 300_000 / uint64(procs)
}

// runFigure executes the figure's Spec on the sharded engine. The
// record cache simulates each (app, procs) pair once and sweeps every
// requested detector over the same recorded signatures, so BBV and
// BBV+DDV are compared on identical executions, as in the paper. Any
// cell error aborts the figure (commands wanting per-cell isolation
// run a Spec themselves via Spec.Run).
func runFigure(s *Spec, fc FigureConfig) ([]CurveResult, error) {
	rep := s.Run(Options{
		Parallel: fc.Parallel,
		Progress: fc.Progress,
	})
	if err := rep.FirstError(); err != nil {
		return nil, err
	}
	return rep.Curves(), nil
}

// WriteFigure prints every curve of a figure.
func WriteFigure(w io.Writer, title string, results []CurveResult) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n\n", title); err != nil {
		return err
	}
	for _, c := range results {
		if err := WriteCurve(w, c); err != nil {
			return err
		}
	}
	return nil
}

// CompareAtPhases reports, for a (BBV, BBV+DDV) curve pair, the CoV each
// achieves with at most maxPhases phases — the comparison the paper
// makes in prose ("at 25 phases, DDV reduces CoV from 29% to 15%").
func CompareAtPhases(bbv, ddv CurveResult, maxPhases float64) (bbvCoV, ddvCoV float64) {
	return bbv.Curve.CoVAt(maxPhases), ddv.Curve.CoVAt(maxPhases)
}

// CompareAtCoV reports the phase count (tuning overhead) each detector
// needs to reach the target CoV ("at 29% CoV, DDV reduces phases from 25
// to 11").
func CompareAtCoV(bbv, ddv CurveResult, targetCoV float64) (bbvPhases, ddvPhases float64) {
	return bbv.Curve.PhasesAt(targetCoV), ddv.Curve.PhasesAt(targetCoV)
}
