package harness

import (
	"fmt"
	"io"

	"dsmphase/internal/core"
	"dsmphase/internal/workloads"
)

// FigureConfig scales a figure reproduction. The paper's full runs use
// Size=full and Interval=3M/Procs; the defaults here use the reduced
// sizes so the whole figure regenerates in minutes on a laptop, exactly
// as the paper itself shrank 100M-instruction intervals to 3M for its
// reduced inputs.
type FigureConfig struct {
	// Apps lists the Table II applications to include (empty = all four).
	Apps []string
	// Size is the workload input scale.
	Size workloads.Size
	// Interval is the total system sampling interval; each processor
	// samples Interval/Procs instructions (the paper's 3M/n rule).
	// 0 derives 300k total for the reduced inputs.
	Interval uint64
	// Seed drives the workloads.
	Seed uint64
	// Parallel bounds the engine's worker pool; <= 0 uses
	// runtime.GOMAXPROCS(0). Output is identical for every value.
	Parallel int
	// Progress, if non-nil, receives one callback per completed cell.
	Progress func(done, total int, r CellResult)
}

// Figure2 reproduces the baseline experiment: BBV-only CoV curves for
// each application at 2, 8 and 32 processors (paper Fig. 2). The paper's
// qualitative claim: curves degrade (shift up) as the node count grows.
func Figure2(fc FigureConfig, procsList []int) ([]CurveResult, error) {
	if len(procsList) == 0 {
		procsList = []int{2, 8, 32}
	}
	return runFigure(fc, procsList, []core.DetectorKind{core.DetectorBBV})
}

// Figure4 reproduces the contribution experiment: BBV vs BBV+DDV CoV
// curves at 8 and 32 processors (paper Fig. 4). The paper's qualitative
// claim: BBV+DDV lies below BBV everywhere, and the gap widens at 32P.
func Figure4(fc FigureConfig, procsList []int) ([]CurveResult, error) {
	if len(procsList) == 0 {
		procsList = []int{8, 32}
	}
	return runFigure(fc, procsList, []core.DetectorKind{core.DetectorBBV, core.DetectorBBVDDV})
}

func (fc FigureConfig) apps() []string {
	if len(fc.Apps) > 0 {
		return fc.Apps
	}
	return []string{"fmm", "lu", "equake", "art"} // paper panel order
}

func (fc FigureConfig) interval(procs int) uint64 {
	if fc.Interval > 0 {
		return fc.Interval / uint64(procs)
	}
	return 300_000 / uint64(procs)
}

// runFigure executes the figure's plan on the sharded engine. The
// record cache simulates each (app, procs) pair once and sweeps every
// requested detector over the same recorded signatures, so BBV and
// BBV+DDV are compared on identical executions, as in the paper. Any
// cell error aborts the figure (commands wanting per-cell isolation
// run the plan themselves via RunPlan).
func runFigure(fc FigureConfig, procsList []int, kinds []core.DetectorKind) ([]CurveResult, error) {
	results := RunPlan(FigurePlan(fc, procsList, kinds), Options{
		Parallel: fc.Parallel,
		Progress: fc.Progress,
	})
	if err := FirstError(results); err != nil {
		return nil, err
	}
	return Curves(results), nil
}

// WriteFigure prints every curve of a figure.
func WriteFigure(w io.Writer, title string, results []CurveResult) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n\n", title); err != nil {
		return err
	}
	for _, c := range results {
		if err := WriteCurve(w, c); err != nil {
			return err
		}
	}
	return nil
}

// CompareAtPhases reports, for a (BBV, BBV+DDV) curve pair, the CoV each
// achieves with at most maxPhases phases — the comparison the paper
// makes in prose ("at 25 phases, DDV reduces CoV from 29% to 15%").
func CompareAtPhases(bbv, ddv CurveResult, maxPhases float64) (bbvCoV, ddvCoV float64) {
	return bbv.Curve.CoVAt(maxPhases), ddv.Curve.CoVAt(maxPhases)
}

// CompareAtCoV reports the phase count (tuning overhead) each detector
// needs to reach the target CoV ("at 29% CoV, DDV reduces phases from 25
// to 11").
func CompareAtCoV(bbv, ddv CurveResult, targetCoV float64) (bbvPhases, ddvPhases float64) {
	return bbv.Curve.PhasesAt(targetCoV), ddv.Curve.PhasesAt(targetCoV)
}
