package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dsmphase/internal/core"
	"dsmphase/internal/machine"
	"dsmphase/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite the encoder golden files")

// goldenReport runs one small multi-replicate ablation grid shared by
// every encoder golden test. The simulator is deterministic across
// platforms and worker counts, so the encoded bytes are too — that is
// the property the golden files pin.
var goldenReport = sync.OnceValue(func() *Report {
	return NewSpec(
		WithApps("fmm"),
		WithProcs(2),
		WithDetectors(core.DetectorBBV, core.DetectorBBVDDV),
		WithSize(workloads.SizeTest),
		WithInterval(20_000),
		WithSeed(1),
		WithReplicates(2),
		WithTweak("uniform-distance", "uniformD",
			func(c *machine.Config) { c.UniformDistance = true }),
	).Run(Options{Parallel: 4})
})

// TestGoldenEncoders pins every Report encoder's output byte for byte.
// Regenerate with `go test ./internal/harness -run TestGolden -update`
// after an intentional format change.
func TestGoldenEncoders(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed golden runs")
	}
	rep := goldenReport()
	if err := rep.FirstError(); err != nil {
		t.Fatal(err)
	}
	for _, name := range EncoderNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			enc, err := NewEncoder(name, "golden ablation grid")
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := enc.Encode(&got, rep); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "report."+name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("%s output drifted from %s:\n--- want ---\n%s\n--- got ---\n%s",
					name, path, want, got.Bytes())
			}
		})
	}
}

// goldenTuningReport runs the small multi-replicate tuning grid shared
// by the tuning-encoder golden tests: the closed loop (thresholds from
// the CoV curve, live phase streams, online AdaptiveLoop per processor)
// on deterministic simulations, so the scorecard bytes are too.
var goldenTuningReport = sync.OnceValue(func() *TuningReport {
	rep, err := NewSpec(
		WithApps("fmm"),
		WithProcs(2),
		WithDetectors(core.DetectorBBV, core.DetectorBBVDDV),
		WithSize(workloads.SizeTest),
		WithInterval(20_000),
		WithSeed(1),
		WithReplicates(2),
		WithPredictors("last-phase", "markov"),
		WithControllers(ControllerSpec{Name: "trial-1", TrialsPerConfig: 1}),
	).RunTuning(Options{Parallel: 4})
	if err != nil {
		panic(err)
	}
	return rep
})

// TestGoldenTuningEncoders pins every TuningReport encoder's output
// byte for byte. Regenerate with
// `go test ./internal/harness -run TestGolden -update`.
func TestGoldenTuningEncoders(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed golden runs")
	}
	rep := goldenTuningReport()
	if err := rep.FirstError(); err != nil {
		t.Fatal(err)
	}
	for _, name := range TuningEncoderNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			enc, err := NewTuningEncoder(name, "golden tuning grid")
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := enc.Encode(&got, rep); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "tuning."+name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("%s output drifted from %s:\n--- want ---\n%s\n--- got ---\n%s",
					name, path, want, got.Bytes())
			}
		})
	}
}

// TestGoldenTextSingleReplicate pins the one-replicate text format —
// the byte-identical legacy table — as its own golden file, so format
// drift is caught even if the legacy helpers are ever removed.
func TestGoldenTextSingleReplicate(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed golden runs")
	}
	rep := NewSpec(
		WithApps("lu"),
		WithProcs(2),
		WithSize(workloads.SizeTest),
		WithInterval(20_000),
		WithSeed(1),
	).Run(Options{Parallel: 2})
	if err := rep.FirstError(); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := (TextEncoder{Title: "golden single"}).Encode(&got, rep); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report.text-r1.golden")
	if *updateGolden {
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("single-replicate text output drifted from %s:\n--- want ---\n%s\n--- got ---\n%s",
			path, want, got.Bytes())
	}
}
