package harness

import (
	"fmt"
	"sort"

	"dsmphase/internal/coherence"
	"dsmphase/internal/core"
	"dsmphase/internal/machine"
	"dsmphase/internal/network"
	"dsmphase/internal/workloads"
)

// The named grid registry. The report's experiment grids — figure2,
// figure4, the DDS-design ablation and the adaptive-tuning scorecard —
// used to be private to cmd/experiments, which meant only that binary
// could enumerate them. The coordinator service needs the identical
// Specs on its side of the wire (it validates worker artifacts against
// the merge-side plan fingerprint), so the registry lives here and
// both the CLI and the service build grids through it: same name, same
// parameters, same fingerprint, byte-identical reports.

// GridParams are the Spec parameters every named grid shares — the
// wire-serializable subset of the Spec surface a job submission can
// carry. The zero value resolves to the CLI defaults (small inputs,
// the paper application panel, seed 1, one replicate, directory
// coherence).
type GridParams struct {
	// Size is the workload input scale.
	Size workloads.Size
	// Apps lists applications or a single panel alias; empty resolves
	// to the paper panel.
	Apps []string
	// Protocols sweeps coherence backends; empty keeps the directory
	// default.
	Protocols []coherence.Kind
	// Interval is the total sampling interval (0 = the reduced 300k
	// default).
	Interval uint64
	// Seed is the workload base seed.
	Seed uint64
	// Replicates is the seeds-per-configuration count (<1 treated as 1).
	Replicates int
}

// options compiles the shared parameters into Spec options.
func (gp GridParams) options() []Option {
	return []Option{
		WithApps(gp.Apps...),
		WithSize(gp.Size),
		WithInterval(gp.Interval),
		WithSeed(gp.Seed),
		WithReplicates(gp.Replicates),
		WithProtocols(gp.Protocols...),
	}
}

// NamedGrid is one registry entry: a grid name bound to its compiled
// Spec. Tuning marks grids that run through RunTuning/RunTuningShard
// and render with the TuningEncoder family instead of the Report one.
type NamedGrid struct {
	Name   string
	Tuning bool
	Spec   *Spec
}

// gridBuilders maps grid names to their Spec constructors.
var gridBuilders = map[string]struct {
	tuning bool
	build  func(GridParams) *Spec
}{
	// Figure 2: baseline BBV degradation across node counts.
	"figure2": {build: func(gp GridParams) *Spec {
		return NewSpec(append(gp.options(),
			WithProcs(2, 8, 32),
			WithDetectors(core.DetectorBBV),
		)...)
	}},
	// Figure 4: BBV vs BBV+DDV on identical executions.
	"figure4": {build: func(gp GridParams) *Spec {
		return NewSpec(append(gp.options(),
			WithProcs(8, 32),
			WithDetectors(core.DetectorBBV, core.DetectorBBVDDV),
		)...)
	}},
	// The DDS-design ablation: each variant disables one ingredient of
	// the data distribution scalar or swaps the network topology, all
	// TweakKey-cached so every detector sweep of a variant shares one
	// simulation.
	"ablation": {build: func(gp GridParams) *Spec {
		return NewSpec(append(gp.options(),
			WithProcs(8),
			WithDetectors(core.DetectorBBVDDV),
			WithTweak("no-contention", "dds-no-contention",
				func(c *machine.Config) { c.DDS.IgnoreContention = true }),
			WithTweak("uniform-distance", "uniform-distance",
				func(c *machine.Config) { c.UniformDistance = true }),
			WithTweak("mesh-2d", "mesh-2d",
				func(c *machine.Config) { c.Topology = network.KindMesh2D }),
		)...)
	}},
	// The adaptive-tuning grid: detector × predictor × controller closed
	// loop on live simulations, rendered as a win-rate scorecard.
	"tuning": {tuning: true, build: func(gp GridParams) *Spec {
		return NewSpec(append(gp.options(),
			WithDetectors(core.DetectorBBV, core.DetectorBBVDDV),
		)...)
	}},
}

// GridNames returns the registered grid names, sorted.
func GridNames() []string {
	names := make([]string, 0, len(gridBuilders))
	for n := range gridBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BuildGrid compiles the named grid under the given parameters. The
// same (name, params) pair always yields the same plan fingerprint, on
// every machine — the property the shard merge and the coordinator's
// result cache both key on.
func BuildGrid(name string, gp GridParams) (NamedGrid, error) {
	b, ok := gridBuilders[name]
	if !ok {
		return NamedGrid{}, fmt.Errorf("harness: unknown grid %q (want one of %v)", name, GridNames())
	}
	return NamedGrid{Name: name, Tuning: b.tuning, Spec: b.build(gp)}, nil
}
