// Package harness runs the paper's experiments end to end: it simulates
// a workload on the DSM machine once, records per-interval signatures,
// then sweeps classification thresholds offline to produce the CoV
// curves of Figures 2 and 4.
//
// The package is layered, bottom up:
//
//   - The engine (engine.go): a Plan of independent Cells executed by a
//     Runner over a bounded worker pool, with a memoizing record cache
//     (cells sharing a simulation share one machine run), per-cell error
//     isolation and ordered aggregation — output is independent of the
//     worker count.
//   - The declarative surface (spec.go, report.go, encoders.go): a Spec
//     describes a grid (workloads × procs × detectors × replicates ×
//     named variants) and compiles it onto the engine; Spec.Run
//     aggregates cells into a Report of per-configuration mean ± 95% CI
//     bands, rendered by the pluggable text/CSV/JSON/markdown Encoders.
//     Spec.Assemble is the aggregation half alone, for results that
//     arrive from elsewhere (a shard merge).
//   - The tuning driver (tuning.go, tuning_encoders.go): Spec.RunTuning
//     closes the paper's detect → predict → reconfigure loop online over
//     live simulations through the engine's CellHook and aggregates a
//     replicate-banded TuningReport scorecard, with its own encoder
//     family.
//   - Cross-machine sharding (shard.go): Spec.RunShard runs a
//     hash-partitioned subset of the grid and serializes it as a
//     versioned JSON shard artifact (docs/MERGE_FORMAT.md); MergeShards
//     validates a complete shard set and reassembles the plan-ordered
//     results so Assemble/AssembleTuning reproduce the unsharded
//     report byte for byte.
//
// Everything above the simulator is a pure function of deterministic
// inputs — seeds derive order-free via DeriveSeed, aggregation is in
// plan order, encoders never emit wall-clock fields — which is what
// makes parallel == serial and sharded == unsharded exact, testable
// guarantees rather than aspirations.
package harness

import (
	"fmt"
	"io"

	"dsmphase/internal/coherence"
	"dsmphase/internal/core"
	"dsmphase/internal/machine"
	"dsmphase/internal/stats"
	"dsmphase/internal/workloads"
)

// RunConfig describes one simulation.
type RunConfig struct {
	// Workload is the Table II application name.
	Workload string
	// Size selects the input scale.
	Size workloads.Size
	// Procs is the node count.
	Procs int
	// IntervalInstructions overrides the sampling interval; 0 keeps the
	// paper's 3M/Procs.
	IntervalInstructions uint64
	// Seed drives workload pseudo-randomness.
	Seed uint64
	// Protocol selects the coherence backend (the zero value is the
	// directory engine, preserving pre-seam behavior).
	Protocol coherence.Kind
	// Tweak, if non-nil, may adjust the machine configuration before the
	// run (used by ablation benchmarks). It runs after Protocol is
	// applied, so a tweak can still override the backend.
	Tweak func(*machine.Config)
}

// Simulate builds the machine, runs the workload to completion and
// returns the machine (whose records feed the sweeps) plus the summary.
func Simulate(rc RunConfig) (*machine.Machine, machine.Summary, error) {
	w, err := workloads.ByName(rc.Workload)
	if err != nil {
		return nil, machine.Summary{}, err
	}
	cfg := machine.DefaultConfig(rc.Procs)
	if rc.IntervalInstructions > 0 {
		cfg.IntervalInstructions = rc.IntervalInstructions
	}
	cfg.Protocol = rc.Protocol
	if rc.Tweak != nil {
		rc.Tweak(&cfg)
	}
	m := machine.New(cfg, w.Threads(rc.Procs, rc.Size, rc.Seed))
	sum, err := m.Run()
	if err != nil {
		return nil, machine.Summary{}, fmt.Errorf("harness: %s/%dP: %w", rc.Workload, rc.Procs, err)
	}
	return m, sum, nil
}

// SweepConfig describes one threshold sweep over recorded signatures.
type SweepConfig struct {
	// Kind selects the detector.
	Kind core.DetectorKind
	// TableSize is the footprint-table size (paper: 32).
	TableSize int
	// BBVThresholds are the Manhattan-distance thresholds to examine.
	BBVThresholds []float64
	// DDSThresholds are the DDS-difference thresholds (two-threshold
	// detectors only; ignored for DetectorBBV).
	DDSThresholds []float64
}

// DefaultBBVThresholds returns the paper's ~200 threshold values,
// geometrically spaced over the meaningful Manhattan range for
// normalized BBVs (0, 2].
func DefaultBBVThresholds(n int) []float64 {
	return stats.GeomSpace(0.004, 2.0, n)
}

// DefaultDDSThresholds returns a geometric grid of DDS-difference
// thresholds up to the maximum normalized DDS (1 + network dimension).
func DefaultDDSThresholds(n int, maxDistance float64) []float64 {
	return stats.GeomSpace(0.002, maxDistance, n)
}

// DefaultSweep builds the sweep the paper uses for the given detector:
// 200 BBV thresholds for the baseline; a 50×12 threshold grid for
// BBV+DDV (the two-threshold generalization of "two hundred threshold
// values"); 200 DDS thresholds for the DDS-only ablation.
func DefaultSweep(kind core.DetectorKind, maxDistance float64) SweepConfig {
	sc := SweepConfig{Kind: kind, TableSize: core.DefaultFootprintSize}
	switch kind {
	case core.DetectorBBV:
		sc.BBVThresholds = DefaultBBVThresholds(200)
		sc.DDSThresholds = []float64{0}
	case core.DetectorBBVDDV:
		sc.BBVThresholds = DefaultBBVThresholds(50)
		sc.DDSThresholds = DefaultDDSThresholds(12, maxDistance)
	case core.DetectorDDS:
		sc.BBVThresholds = []float64{2}
		sc.DDSThresholds = DefaultDDSThresholds(200, maxDistance)
	case core.DetectorWSS:
		// Relative signature distance lies in [0, 1].
		sc.BBVThresholds = stats.GeomSpace(0.002, 1.0, 200)
		sc.DDSThresholds = []float64{0}
	}
	return sc
}

// Sweep classifies the recorded per-processor signature sequences at
// every threshold setting. For each setting it computes each processor's
// identifier CoV and phase count, then averages them across processors
// (the paper's "system-wide CoV curve"). The returned cloud contains one
// point per threshold setting; reduce it with stats.LowerEnvelope for
// the presentation curve.
func Sweep(recs [][]core.IntervalSignature, sc SweepConfig) []stats.CurvePoint {
	if sc.TableSize <= 0 {
		sc.TableSize = core.DefaultFootprintSize
	}
	dds := sc.DDSThresholds
	if sc.Kind == core.DetectorBBV || sc.Kind == core.DetectorWSS || len(dds) == 0 {
		dds = []float64{0}
	}
	var out []stats.CurvePoint
	cpis := make([][]float64, len(recs))
	for p, rs := range recs {
		cpis[p] = make([]float64, len(rs))
		for i, r := range rs {
			cpis[p][i] = r.CPI()
		}
	}
	for _, tb := range sc.BBVThresholds {
		for _, td := range dds {
			var sumCov, sumPhases float64
			procs := 0
			for p, rs := range recs {
				if len(rs) == 0 {
					continue
				}
				ids := core.ClassifyRecorded(sc.Kind, sc.TableSize, tb, td, rs)
				cov, nPhases := stats.IdentifierCoV(ids, cpis[p])
				sumCov += cov
				sumPhases += float64(nPhases)
				procs++
			}
			if procs == 0 {
				continue
			}
			out = append(out, stats.CurvePoint{
				Phases:       sumPhases / float64(procs),
				CoV:          sumCov / float64(procs),
				Threshold:    tb,
				ThresholdDDS: td,
			})
		}
	}
	return out
}

// CurveResult is one named curve of a figure.
type CurveResult struct {
	App      string
	Procs    int
	Detector core.DetectorKind
	// Curve is the lower envelope over the sweep's point cloud.
	Curve stats.Curve
	// Summary carries whole-run simulation statistics.
	Summary machine.Summary
}

// Label returns the curve's legend label ("lu 8P BBV+DDV").
func (c CurveResult) Label() string {
	return fmt.Sprintf("%s %dP %s", c.App, c.Procs, c.Detector)
}

// RunCurve simulates one configuration and sweeps one detector over it.
func RunCurve(rc RunConfig, kind core.DetectorKind) (CurveResult, error) {
	m, sum, err := Simulate(rc)
	if err != nil {
		return CurveResult{}, err
	}
	return SweepMachine(m, rc, kind, sum), nil
}

// SweepMachine sweeps a detector over an already-simulated machine.
func SweepMachine(m *machine.Machine, rc RunConfig, kind core.DetectorKind, sum machine.Summary) CurveResult {
	maxD := 1.0 + float64(m.Network().Diameter())
	cloud := Sweep(m.RecordsByProc(), DefaultSweep(kind, maxD))
	return CurveResult{
		App:      rc.Workload,
		Procs:    rc.Procs,
		Detector: kind,
		Curve:    stats.LowerEnvelope(cloud),
		Summary:  sum,
	}
}

// WriteCurve prints a curve as "phases cov threshold" rows.
func WriteCurve(w io.Writer, c CurveResult) error {
	if _, err := fmt.Fprintf(w, "# %s  (intervals=%d, instrs=%d, IPC=%.3f)\n",
		c.Label(), c.Summary.Intervals, c.Summary.Instructions, c.Summary.IPC); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %-10s %-12s %-12s\n", "phases", "cov", "thBBV", "thDDS"); err != nil {
		return err
	}
	for _, p := range c.Curve.Points {
		if _, err := fmt.Fprintf(w, "%-10.2f %-10.4f %-12.5f %-12.5f\n",
			p.Phases, p.CoV, p.Threshold, p.ThresholdDDS); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
