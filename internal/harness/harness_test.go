package harness

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"dsmphase/internal/core"
	"dsmphase/internal/stats"
	"dsmphase/internal/workloads"
)

// quickRun returns a small but non-trivial simulation for sweep tests.
func quickRun(t *testing.T, app string, procs int) RunConfig {
	t.Helper()
	return RunConfig{
		Workload:             app,
		Size:                 workloads.SizeTest,
		Procs:                procs,
		IntervalInstructions: 10_000,
		Seed:                 1,
	}
}

func TestSimulateUnknownWorkload(t *testing.T) {
	if _, _, err := Simulate(RunConfig{Workload: "nope", Procs: 2}); err == nil {
		t.Error("expected error for unknown workload")
	}
}

func TestSimulateProducesRecords(t *testing.T) {
	m, sum, err := Simulate(quickRun(t, "lu", 2))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Intervals == 0 {
		t.Fatal("no intervals")
	}
	byProc := m.RecordsByProc()
	if len(byProc) != 2 {
		t.Fatalf("records for %d procs", len(byProc))
	}
}

func TestSweepProducesPointPerThresholdSetting(t *testing.T) {
	m, _, err := Simulate(quickRun(t, "lu", 2))
	if err != nil {
		t.Fatal(err)
	}
	sc := SweepConfig{
		Kind:          core.DetectorBBV,
		TableSize:     32,
		BBVThresholds: []float64{0.01, 0.1, 1.0},
	}
	pts := Sweep(m.RecordsByProc(), sc)
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	// Larger thresholds cannot yield more phases.
	if pts[0].Phases < pts[2].Phases {
		t.Errorf("phases should not increase with threshold: %v vs %v", pts[0].Phases, pts[2].Phases)
	}
	for _, p := range pts {
		if p.Phases < 1 {
			t.Errorf("phases %v < 1", p.Phases)
		}
		if p.CoV < 0 {
			t.Errorf("negative CoV %v", p.CoV)
		}
	}
}

func TestSweepHugeThresholdSinglePhase(t *testing.T) {
	m, _, err := Simulate(quickRun(t, "equake", 2))
	if err != nil {
		t.Fatal(err)
	}
	pts := Sweep(m.RecordsByProc(), SweepConfig{
		Kind:          core.DetectorBBV,
		BBVThresholds: []float64{2.0},
	})
	if len(pts) != 1 || pts[0].Phases != 1 {
		t.Errorf("threshold 2.0 must put everything in one phase: %+v", pts)
	}
}

func TestSweepZeroThresholdManyPhasesLowCoV(t *testing.T) {
	m, _, err := Simulate(quickRun(t, "fmm", 2))
	if err != nil {
		t.Fatal(err)
	}
	lo := Sweep(m.RecordsByProc(), SweepConfig{Kind: core.DetectorBBV, BBVThresholds: []float64{1e-9}})
	hi := Sweep(m.RecordsByProc(), SweepConfig{Kind: core.DetectorBBV, BBVThresholds: []float64{2}})
	if lo[0].Phases <= hi[0].Phases {
		t.Errorf("tiny threshold should yield more phases: %v vs %v", lo[0].Phases, hi[0].Phases)
	}
	if lo[0].CoV > hi[0].CoV {
		t.Errorf("tiny threshold should yield lower CoV: %v vs %v", lo[0].CoV, hi[0].CoV)
	}
}

func TestDefaultSweepShapes(t *testing.T) {
	bbv := DefaultSweep(core.DetectorBBV, 6)
	if len(bbv.BBVThresholds) != 200 {
		t.Errorf("BBV sweep has %d thresholds, want the paper's 200", len(bbv.BBVThresholds))
	}
	ddv := DefaultSweep(core.DetectorBBVDDV, 6)
	if len(ddv.BBVThresholds)*len(ddv.DDSThresholds) < 200 {
		t.Errorf("DDV grid too small: %d×%d", len(ddv.BBVThresholds), len(ddv.DDSThresholds))
	}
	dds := DefaultSweep(core.DetectorDDS, 6)
	if len(dds.DDSThresholds) != 200 {
		t.Errorf("DDS sweep has %d thresholds", len(dds.DDSThresholds))
	}
}

func TestRunCurveEndToEnd(t *testing.T) {
	c, err := RunCurve(quickRun(t, "art", 2), core.DetectorBBV)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Curve.Points) == 0 {
		t.Fatal("empty curve")
	}
	if c.Label() != "art 2P BBV" {
		t.Errorf("label = %q", c.Label())
	}
	// Envelope is monotone: increasing phases, decreasing CoV.
	pts := c.Curve.Points
	for i := 1; i < len(pts); i++ {
		if pts[i].Phases <= pts[i-1].Phases || pts[i].CoV >= pts[i-1].CoV {
			t.Errorf("envelope not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
}

func TestSweepDeterministic(t *testing.T) {
	run := func() []stats.CurvePoint {
		m, _, err := Simulate(quickRun(t, "lu", 4))
		if err != nil {
			t.Fatal(err)
		}
		return Sweep(m.RecordsByProc(), SweepConfig{
			Kind:          core.DetectorBBVDDV,
			BBVThresholds: []float64{0.05, 0.5},
			DDSThresholds: []float64{0.01, 0.1},
		})
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Error("sweep must be deterministic")
	}
}

func TestWriteCurveAndFigure(t *testing.T) {
	c, err := RunCurve(quickRun(t, "lu", 2), core.DetectorBBV)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFigure(&buf, "Fig test", []CurveResult{c}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig test", "lu 2P BBV", "phases", "cov"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareHelpers(t *testing.T) {
	bbv := CurveResult{Curve: stats.Curve{Points: []stats.CurvePoint{
		{Phases: 5, CoV: 0.4}, {Phases: 25, CoV: 0.29},
	}}}
	ddv := CurveResult{Curve: stats.Curve{Points: []stats.CurvePoint{
		{Phases: 5, CoV: 0.2}, {Phases: 11, CoV: 0.15},
	}}}
	b, d := CompareAtPhases(bbv, ddv, 25)
	if b != 0.29 || d != 0.15 {
		t.Errorf("CompareAtPhases = (%v, %v)", b, d)
	}
	bp, dp := CompareAtCoV(bbv, ddv, 0.29)
	if bp != 25 || dp != 5 {
		t.Errorf("CompareAtCoV = (%v, %v)", bp, dp)
	}
}

func TestFigure2SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run in -short mode")
	}
	fc := FigureConfig{
		Apps:     []string{"lu"},
		Size:     workloads.SizeTest,
		Interval: 40_000,
		Seed:     1,
	}
	res, err := Figure2(fc, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d curves, want 2", len(res))
	}
	for _, c := range res {
		if c.Detector != core.DetectorBBV {
			t.Errorf("unexpected detector %v", c.Detector)
		}
		if len(c.Curve.Points) == 0 {
			t.Errorf("%s: empty curve", c.Label())
		}
	}
}

func TestFigure4DDVNotWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run in -short mode")
	}
	fc := FigureConfig{
		Apps:     []string{"lu"},
		Size:     workloads.SizeTest,
		Interval: 40_000,
		Seed:     1,
	}
	res, err := Figure4(fc, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d curves, want 2 (BBV and BBV+DDV)", len(res))
	}
	bbv, ddv := res[0], res[1]
	if bbv.Detector != core.DetectorBBV || ddv.Detector != core.DetectorBBVDDV {
		t.Fatalf("unexpected detector order: %v, %v", bbv.Detector, ddv.Detector)
	}
	// The two-threshold detector has strictly more freedom, so its best
	// CoV at a generous phase budget must not be worse.
	budget := 16.0
	b, d := CompareAtPhases(bbv, ddv, budget)
	if !math.IsInf(b, 1) && d > b*1.05 {
		t.Errorf("BBV+DDV (%v) worse than BBV (%v) at %v phases", d, b, budget)
	}
}
