package harness

import (
	"bytes"
	"math"
	"testing"

	"dsmphase/internal/core"
	"dsmphase/internal/machine"
	"dsmphase/internal/network"
	"dsmphase/internal/trace"
	"dsmphase/internal/workloads"
)

// Integration tests across machine + workloads + detectors that assert
// the paper's qualitative findings on real simulated executions.

// TestHeadlineDDVBeatsBBV is the repository's headline check: on every
// Table II application at 8 processors, BBV+DDV achieves a CoV within a
// 25-phase budget that is at least as good as the BBV baseline's.
func TestHeadlineDDVBeatsBBV(t *testing.T) {
	if testing.Short() {
		t.Skip("headline integration run")
	}
	for _, app := range []string{"lu", "fmm", "art", "equake"} {
		app := app
		t.Run(app, func(t *testing.T) {
			rc := RunConfig{
				Workload:             app,
				Size:                 workloads.SizeTest,
				Procs:                8,
				IntervalInstructions: 40_000 / 8,
				Seed:                 1,
			}
			m, sum, err := Simulate(rc)
			if err != nil {
				t.Fatal(err)
			}
			bbv := SweepMachine(m, rc, core.DetectorBBV, sum)
			ddv := SweepMachine(m, rc, core.DetectorBBVDDV, sum)
			b, d := CompareAtPhases(bbv, ddv, 25)
			if math.IsInf(b, 1) || math.IsInf(d, 1) {
				t.Fatalf("degenerate curves: BBV=%v DDV=%v", b, d)
			}
			if d > b*1.0001 {
				t.Errorf("BBV+DDV CoV (%v) worse than BBV (%v)", d, b)
			}
		})
	}
}

// TestWSSBaselineOrdering compares the paper's §V baselines on a DSM
// execution: the two uniprocessor code-signature schemes (WSS and BBV)
// land in the same quality band — neither sees data distribution — while
// BBV+DDV clearly beats both. (Dhodapkar & Smith's finding that BBVs
// edge out working sets is about real ISA code footprints; our synthetic
// kernels have compact static code, so the two baselines are close.)
func TestWSSBaselineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	rc := RunConfig{
		Workload:             "lu",
		Size:                 workloads.SizeTest,
		Procs:                8,
		IntervalInstructions: 40_000 / 8,
		Seed:                 1,
	}
	m, sum, err := Simulate(rc)
	if err != nil {
		t.Fatal(err)
	}
	wss := SweepMachine(m, rc, core.DetectorWSS, sum)
	bbv := SweepMachine(m, rc, core.DetectorBBV, sum)
	ddv := SweepMachine(m, rc, core.DetectorBBVDDV, sum)
	const budget = 25
	w, b, d := wss.Curve.CoVAt(budget), bbv.Curve.CoVAt(budget), ddv.Curve.CoVAt(budget)
	t.Logf("CoV@%d: WSS=%.4f BBV=%.4f BBV+DDV=%.4f", budget, w, b, d)
	if b > 2*w || w > 2*b {
		t.Errorf("the code-signature baselines should be in the same band: WSS %v vs BBV %v", w, b)
	}
	if d > b*1.0001 || d > w*1.0001 {
		t.Errorf("BBV+DDV (%v) should beat both baselines (WSS %v, BBV %v)", d, w, b)
	}
}

// TestMeshTopologyEndToEnd runs the ablation topology through the whole
// stack: the simulation must complete, and remote traffic must cost more
// than on the hypercube (longer average distance).
func TestMeshTopologyEndToEnd(t *testing.T) {
	run := func(kind network.Kind) (machine.Summary, *machine.Machine) {
		rc := RunConfig{
			Workload:             "art",
			Size:                 workloads.SizeTest,
			Procs:                16,
			IntervalInstructions: 2_000,
			Seed:                 1,
			Tweak:                func(c *machine.Config) { c.Topology = kind },
		}
		m, sum, err := Simulate(rc)
		if err != nil {
			t.Fatal(err)
		}
		return sum, m
	}
	cubeSum, cubeM := run(network.KindHypercube)
	meshSum, meshM := run(network.KindMesh2D)
	if meshSum.Intervals == 0 || cubeSum.Intervals == 0 {
		t.Fatal("runs recorded no intervals")
	}
	ch := cubeM.Network().Stats()
	mh := meshM.Network().Stats()
	cubeAvg := float64(ch.TotalHops) / float64(ch.Messages)
	meshAvg := float64(mh.TotalHops) / float64(mh.Messages)
	if meshAvg <= cubeAvg {
		t.Errorf("mesh average hops (%v) should exceed hypercube (%v) at 16 nodes",
			meshAvg, cubeAvg)
	}
	// Longer distances must slow the broadcast-heavy workload down.
	if meshSum.Cycles <= cubeSum.Cycles {
		t.Errorf("mesh run (%v cycles) should be slower than hypercube (%v)",
			meshSum.Cycles, cubeSum.Cycles)
	}
}

// TestTraceRoundTripThroughSweep verifies that records serialized with
// the trace package classify identically after a round trip — the
// record/replay workflow.
func TestTraceRoundTripThroughSweep(t *testing.T) {
	rc := RunConfig{
		Workload:             "equake",
		Size:                 workloads.SizeTest,
		Procs:                4,
		IntervalInstructions: 5_000,
		Seed:                 1,
	}
	m, _, err := Simulate(rc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, m.Records()); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := Sweep(m.RecordsByProc(), SweepConfig{
		Kind: core.DetectorBBVDDV, BBVThresholds: []float64{0.2}, DDSThresholds: []float64{0.1},
	})
	replayed := Sweep(trace.SplitByProc(back), SweepConfig{
		Kind: core.DetectorBBVDDV, BBVThresholds: []float64{0.2}, DDSThresholds: []float64{0.1},
	})
	if len(orig) != len(replayed) {
		t.Fatalf("point counts differ: %d vs %d", len(orig), len(replayed))
	}
	for i := range orig {
		if orig[i] != replayed[i] {
			t.Errorf("point %d differs after round trip: %+v vs %+v", i, orig[i], replayed[i])
		}
	}
}
