package harness

import (
	"time"

	"dsmphase/internal/stats"
	"dsmphase/internal/workloads"
)

// ConfigResult is one configuration's aggregated outcome: its replicate
// cells, the successful curves, and the across-replicate confidence
// band.
type ConfigResult struct {
	// Config identifies the aggregated grid point.
	Config Configuration
	// Results holds the replicate cell results in replicate order.
	Results []CellResult
	// Curves holds the successful replicates' curves, replicate order.
	Curves []CurveResult
	// Band is the mean ± 95% CI aggregate across replicate curves
	// (a degenerate zero-width band at one replicate).
	Band stats.Band
	// Wall sums the replicates' cell wall-clock times.
	Wall time.Duration
}

// Err returns the first replicate error, or nil.
func (c ConfigResult) Err() error {
	for _, r := range c.Results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// Report is an executed Spec: per-configuration aggregated curves in
// grid order, plus run metadata for the encoders.
type Report struct {
	// Size, Seed and Replicates echo the Spec.
	Size       workloads.Size
	Seed       uint64
	Replicates int
	// Configs holds one aggregated result per grid configuration, in
	// Spec enumeration order.
	Configs []ConfigResult
	// Wall is the report's total wall-clock time. It is the only field
	// that varies across identical runs; encoders must not emit it.
	Wall time.Duration
}

// Run executes the Spec on the sharded engine and aggregates the cells
// into per-configuration bands. The engine's ordered aggregation makes
// the report independent of the worker count, and DeriveSeed makes each
// configuration's band independent of the grid's enumeration order.
func (s *Spec) Run(opts Options) *Report {
	start := time.Now()
	rep := s.Assemble(RunPlan(s.Plan(), opts))
	rep.Wall = time.Since(start)
	return rep
}

// Assemble folds plan-ordered cell results into the Spec's Report —
// the aggregation half of Run, split out so merged shard results (see
// MergeShards) flow through the identical path and produce the
// identical bytes from every encoder. results must be in Spec.Plan
// order (cell index = configuration·replicates + replicate), which is
// exactly what the engine and the shard merge both guarantee.
func (s *Spec) Assemble(results []CellResult) *Report {
	configs := s.Configurations()
	rep := &Report{
		Size:       s.size,
		Seed:       s.seed,
		Replicates: s.replicates,
		Configs:    make([]ConfigResult, len(configs)),
	}
	for i, cfg := range configs {
		cr := ConfigResult{Config: cfg}
		for r := 0; r < s.replicates; r++ {
			res := results[i*s.replicates+r]
			cr.Results = append(cr.Results, res)
			cr.Wall += res.Wall
			if res.Err == nil {
				cr.Curves = append(cr.Curves, res.Curve)
			}
		}
		curves := make([]stats.Curve, len(cr.Curves))
		for j, c := range cr.Curves {
			curves[j] = c.Curve
		}
		cr.Band = stats.BandAcross(curves)
		rep.Configs[i] = cr
	}
	return rep
}

// CellResults flattens every configuration's replicate cells, in grid
// order.
func (r *Report) CellResults() []CellResult {
	var out []CellResult
	for _, c := range r.Configs {
		out = append(out, c.Results...)
	}
	return out
}

// Curves flattens every configuration's successful curves, in grid
// order — at one replicate, exactly the legacy figure result list.
func (r *Report) Curves() []CurveResult {
	var out []CurveResult
	for _, c := range r.Configs {
		out = append(out, c.Curves...)
	}
	return out
}

// FirstError returns the first failed cell's error, or nil.
func (r *Report) FirstError() error {
	for _, c := range r.Configs {
		if err := c.Err(); err != nil {
			return err
		}
	}
	return nil
}
