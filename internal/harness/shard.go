package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dsmphase/internal/coherence"
	"dsmphase/internal/core"
	"dsmphase/internal/machine"
	"dsmphase/internal/rng"
	"dsmphase/internal/stats"
	"dsmphase/internal/trace"
	"dsmphase/internal/workloads"
)

// Cross-machine sharding. A Spec's cell grid is embarrassingly parallel
// above the cell level, so a sweep can be split across machines: each
// worker runs `Spec.RunShard(i, n)` (or RunTuningShard) and serializes
// its cell results into a versioned JSON shard artifact; a merge step
// reads the n artifacts, validates that they describe the same plan
// (fingerprints), reassembles the plan-ordered cell-result list and
// feeds it through the same Assemble/AssembleTuning aggregation the
// single-process run uses — so every encoder's output is byte-identical
// to an unsharded run. See docs/MERGE_FORMAT.md for the schema.
//
// Shard assignment hashes each cell's simulation identity, so it is
// independent of worker count, enumeration order and shard-local
// execution order — and cells sharing one simulation (the same
// execution swept by several detectors) always land on the same shard,
// preserving the record cache's memoization within each worker.

// ShardFormat is the versioned format tag of a shard artifact. Bump the
// trailing version on any incompatible schema change, and keep
// docs/MERGE_FORMAT.md (and the shard golden file) in lockstep — a test
// cross-checks all three.
const ShardFormat = "dsmphase-shard/1"

// hashString folds a string into a running Hash64 chain; the length
// guard keeps adjacent fields from concatenating ambiguously.
func hashString(h uint64, s string) uint64 {
	for _, b := range []byte(s) {
		h = rng.Hash64(h ^ uint64(b))
	}
	return rng.Hash64(h ^ uint64(len(s)))
}

// hashKey folds a cell's simulation identity into a Hash64 chain. The
// protocol folds in only when non-default, so every pre-seam plan keeps
// its fingerprint (and shard assignment) byte for byte.
func hashKey(h uint64, k simKey) uint64 {
	h = hashString(h, k.workload)
	h = rng.Hash64(h ^ uint64(k.size))
	h = rng.Hash64(h ^ uint64(k.procs))
	h = rng.Hash64(h ^ k.interval)
	h = rng.Hash64(h ^ k.seed)
	h = hashString(h, k.tweak)
	if k.protocol != coherence.KindDirectory {
		h = hashString(h, k.protocol.String())
	}
	return h
}

// shardOf assigns a simulation identity to one of `of` shards.
func shardOf(k simKey, of int) int {
	return int(hashKey(rng.Hash64(uint64(of)), k) % uint64(of))
}

// ShardIndices returns the plan indices assigned to shard `shard` of
// `of`, ascending. Assignment hashes each cell's simulation identity
// (DeriveSeed-style), so it is independent of enumeration order and
// keeps cells sharing a simulation on one shard; a tiny plan may
// therefore fill shards unevenly, and a shard can even be empty — the
// merge accepts that. Panics unless 0 ≤ shard < of.
func (p *Plan) ShardIndices(shard, of int) []int {
	if of < 1 || shard < 0 || shard >= of {
		panic(fmt.Sprintf("harness: shard %d/%d out of range", shard, of))
	}
	var out []int
	for i, c := range p.cells {
		if shardOf(c.simKeyAt(i), of) == shard {
			out = append(out, i)
		}
	}
	return out
}

// Shard returns the sub-plan holding shard `shard` of `of`, in plan
// order.
func (p *Plan) Shard(shard, of int) *Plan {
	sub := NewPlan()
	for _, i := range p.ShardIndices(shard, of) {
		sub.AddCell(p.cells[i])
	}
	return sub
}

// Fingerprint deterministically summarizes the plan's full cell list —
// identities and order — as a 16-hex-digit string. Two plans fingerprint
// equal exactly when a shard of one can be merged into the other, so
// the merge refuses artifacts produced under different flags, seeds or
// grids. Tweak functions cannot be hashed; only their cache keys (and
// presence) participate, matching the record cache's own blindness.
// Dynamically registered workloads (DSL specs, ingested traces) fold
// their definition hash in as well: a built-in name contributes
// nothing extra — keeping all pre-DSL fingerprints stable — while two
// specs sharing a name but not a definition can never satisfy each
// other's shard artifacts or cache entries.
func (p *Plan) Fingerprint() string {
	h := rng.Hash64(uint64(len(p.cells)))
	for i, c := range p.cells {
		h = hashKey(h, c.simKeyAt(i))
		h = rng.Hash64(h ^ uint64(c.Kind))
		if dh := workloads.DefinitionHash(c.Run.Workload); dh != 0 {
			h = rng.Hash64(h ^ dh)
		}
	}
	return fmt.Sprintf("%016x", h)
}

// RunPlanShard executes only the cells of shard `shard` of `of` and
// returns their results carrying ORIGINAL plan indices, so shard
// outputs from different machines can be reassembled positionally.
func RunPlanShard(p *Plan, shard, of int, opts Options) []CellResult {
	idxs := p.ShardIndices(shard, of)
	results := RunPlan(p.Shard(shard, of), opts)
	for j := range results {
		results[j].Index = idxs[j]
	}
	return results
}

// Shard returns the sub-plan of the Spec's grid assigned to shard
// `shard` of `of`.
func (s *Spec) Shard(shard, of int) *Plan {
	return s.Plan().Shard(shard, of)
}

// RunShard executes the Spec's shard on the engine; results carry
// original plan indices, ready for a shard artifact.
func (s *Spec) RunShard(shard, of int, opts Options) []CellResult {
	return RunPlanShard(s.Plan(), shard, of, opts)
}

// RunTuningShard is RunShard with the Spec's tuning hook installed, so
// each cell's result carries the per-(predictor, controller) payload
// AssembleTuning needs. Any Hook already set on opts is replaced.
func (s *Spec) RunTuningShard(shard, of int, opts Options) ([]CellResult, error) {
	var err error
	if opts.Hook, err = s.TuningHook(); err != nil {
		return nil, err
	}
	return s.RunShard(shard, of, opts), nil
}

// TracedExtra is the payload produced by TraceHook: the cell's recorded
// per-processor interval signatures alongside the inner hook's payload.
// Shard artifacts serialize the records through internal/trace when
// trace capture is enabled.
type TracedExtra struct {
	// Records is the simulation's per-processor interval record, as
	// returned by Machine.RecordsByProc. Cells sharing one simulation
	// share the underlying slices; treat them as read-only.
	Records [][]core.IntervalSignature
	// Inner is the wrapped hook's payload (nil without one).
	Inner any
}

// TraceHook wraps a CellHook (nil allowed) so every cell's Extra also
// carries the simulation's recorded interval signatures — the raw
// material shard artifacts persist for offline re-analysis.
func TraceHook(inner CellHook) CellHook {
	return func(c Cell, m *machine.Machine, curve CurveResult, sum machine.Summary) any {
		var in any
		if inner != nil {
			in = inner(c, m, curve, sum)
		}
		return TracedExtra{Records: m.RecordsByProc(), Inner: in}
	}
}

// UnwrapExtra strips a TracedExtra wrapper from a cell payload,
// returning the inner hook payload (or the value itself when unwrapped).
func UnwrapExtra(extra any) any {
	if t, ok := extra.(TracedExtra); ok {
		return t.Inner
	}
	return extra
}

// ---- The shard artifact (see docs/MERGE_FORMAT.md) ----

// ShardArtifact is one worker's serialized output: which shard of how
// many, and one ShardGrid per experiment grid the worker ran.
type ShardArtifact struct {
	// Format is the ShardFormat version tag.
	Format string `json:"format"`
	// Shard and Of identify the partition: this file holds shard Shard
	// of Of.
	Shard int `json:"shard"`
	Of    int `json:"of"`
	// Checksum is a content checksum over every other field (16 hex
	// digits, Hash64 chain over the compact JSON encoding with this
	// field cleared). Writers always set it; readers verify it when
	// present, so pre-checksum artifacts stay readable without a
	// format-version bump.
	Checksum string `json:"checksum,omitempty"`
	// Grids holds one entry per experiment grid, in run order.
	Grids []ShardGrid `json:"grids"`
}

// ErrArtifactChecksum tags a checksum-mismatch read failure, so callers
// can distinguish silent content corruption from schema or fingerprint
// errors (errors.Is).
var ErrArtifactChecksum = errors.New("harness: shard artifact checksum mismatch")

// ChecksumArtifact computes the artifact's content checksum: the
// Hash64 chain over the compact JSON encoding with the Checksum field
// cleared. Field order of the struct encoding is fixed, so the value
// is deterministic for a given content (wall_ns included — the
// checksum certifies the bytes that were written, not the plan).
func ChecksumArtifact(a *ShardArtifact) (string, error) {
	c := *a
	c.Checksum = ""
	b, err := json.Marshal(&c)
	if err != nil {
		return "", fmt.Errorf("harness: checksumming shard artifact: %w", err)
	}
	h := rng.Hash64(uint64(len(b)))
	for len(b) >= 8 {
		w := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
		h = rng.Hash64(h ^ w)
		b = b[8:]
	}
	for _, x := range b {
		h = rng.Hash64(h ^ uint64(x))
	}
	return fmt.Sprintf("%016x", h), nil
}

// ShardGrid is one experiment grid's shard: the plan identity every
// shard of the grid must agree on, plus this shard's cell results.
type ShardGrid struct {
	// Name labels the grid ("figure2", "tuning", ...); the merge matches
	// grids across artifacts by name.
	Name string `json:"name"`
	// Cells is the FULL plan's cell count (all shards together).
	Cells int `json:"cells"`
	// Fingerprint is Plan.Fingerprint of the full plan.
	Fingerprint string `json:"fingerprint"`
	// TuningAxes echoes the Spec's tuning axes for tuning grids, so the
	// merge can refuse a mismatched reassembly; nil for plain grids.
	TuningAxes *ShardTuningAxes `json:"tuning_axes,omitempty"`
	// Results holds this shard's cells, ascending by Index.
	Results []ShardCell `json:"results"`
}

// ShardTuningAxes identifies a tuning grid's predictor × controller
// axes and phase budget.
type ShardTuningAxes struct {
	Predictors  []string          `json:"predictors"`
	Controllers []ShardController `json:"controllers"`
	PhaseBudget float64           `json:"phase_budget"`
}

// ShardController is the wire form of a ControllerSpec.
type ShardController struct {
	Name            string `json:"name"`
	TrialsPerConfig int    `json:"trials_per_config"`
}

// ShardCell is one cell's serialized result: its identity within the
// plan, its outcome (curve + summary, or an error), its wall-clock time
// (feeds ETA seeding; never encoder output), and optional tuning and
// trace payloads.
type ShardCell struct {
	// Index is the cell's position in the FULL plan.
	Index int `json:"index"`
	// The cell's identity (Tweak functions do not round-trip; their
	// cache keys do, and the merge validates identity by fingerprint).
	Workload string `json:"workload"`
	Size     string `json:"size"`
	Procs    int    `json:"procs"`
	Interval uint64 `json:"interval"`
	Seed     uint64 `json:"seed"`
	Detector string `json:"detector"`
	TweakKey string `json:"tweak_key,omitempty"`
	// Protocol names the coherence backend when it is not the default
	// directory engine; absent means directory (pre-seam artifacts stay
	// readable, and default-protocol artifacts stay byte-identical).
	Protocol string `json:"protocol,omitempty"`
	// WallNS is the cell's wall-clock time in nanoseconds — the only
	// nondeterministic field of the artifact.
	WallNS int64 `json:"wall_ns"`
	// Err is the cell's error string; when set, Curve and Summary are
	// absent.
	Err string `json:"error,omitempty"`
	// Curve is the swept lower-envelope CoV curve.
	Curve []ShardCurvePoint `json:"curve,omitempty"`
	// Summary carries the simulation's whole-run statistics.
	Summary *ShardSummary `json:"summary,omitempty"`
	// Tuning holds the cell's per-(predictor, controller) scorecard
	// values, predictor-major — present only on tuning-grid cells.
	Tuning []ShardTuningValue `json:"tuning,omitempty"`
	// Trace holds the simulation's interval records as internal/trace
	// JSONL (proc-major, interval order) — present only when the shard
	// run captured traces, and only on the FIRST cell of each
	// simulation: sibling cells sweeping the same execution carry a
	// TraceRef instead, so the (potentially large) record stream is
	// stored once per simulation, not once per detector sweep.
	Trace string `json:"trace,omitempty"`
	// TraceRef, when non-nil, is the plan index of the grid cell whose
	// Trace field holds this cell's (shared) simulation records; resolve
	// it with ShardGrid.TraceFor.
	TraceRef *int `json:"trace_ref,omitempty"`
}

// ShardCurvePoint is the wire form of a stats.CurvePoint.
type ShardCurvePoint struct {
	Phases       float64 `json:"phases"`
	CoV          float64 `json:"cov"`
	Threshold    float64 `json:"th_bbv"`
	ThresholdDDS float64 `json:"th_dds"`
}

// ShardSummary is the wire form of a machine.Summary.
type ShardSummary struct {
	Instructions uint64  `json:"instructions"`
	SyncInstrs   uint64  `json:"sync_instrs"`
	Cycles       float64 `json:"cycles"`
	Intervals    int     `json:"intervals"`
	Barriers     uint64  `json:"barriers"`
	IPC          float64 `json:"ipc"`
	Local        uint64  `json:"local_accesses"`
	Remote       uint64  `json:"remote_accesses"`
}

// ShardTuningValue is the wire form of a TuningValue.
type ShardTuningValue struct {
	WinRate     float64 `json:"win_rate"`
	Regret      float64 `json:"regret"`
	Convergence float64 `json:"convergence"`
	Accuracy    float64 `json:"accuracy"`
	Overhead    float64 `json:"overhead"`
}

// NewShardGrid captures one Spec's shard results as an artifact grid.
// tuning marks a grid run through RunTuningShard (its axes are recorded
// for merge-side validation); includeTrace serializes each cell's
// interval records when the run captured them via TraceHook — once per
// simulation: sibling cells sweeping the same execution get a TraceRef
// to the owning cell instead of a duplicate copy.
func NewShardGrid(name string, s *Spec, results []CellResult, tuning, includeTrace bool) (ShardGrid, error) {
	p := s.Plan()
	g := ShardGrid{
		Name:        name,
		Cells:       p.Len(),
		Fingerprint: p.Fingerprint(),
		Results:     make([]ShardCell, 0, len(results)),
	}
	if tuning {
		g.TuningAxes = specTuningAxes(s)
	}
	traceOwner := map[simKey]int{}
	for _, r := range results {
		sc := newShardCell(r)
		if te, ok := r.Extra.(TracedExtra); ok && includeTrace && r.Err == nil {
			k := r.Cell.simKeyAt(r.Index)
			if owner, seen := traceOwner[k]; seen {
				ref := owner
				sc.TraceRef = &ref
			} else {
				var sb strings.Builder
				for _, recs := range te.Records {
					if err := trace.WriteJSONL(&sb, recs); err != nil {
						return ShardGrid{}, fmt.Errorf("harness: grid %s cell %d: %w", name, r.Index, err)
					}
				}
				sc.Trace = sb.String()
				traceOwner[k] = r.Index
			}
		}
		g.Results = append(g.Results, sc)
	}
	return g, nil
}

// specTuningAxes snapshots a Spec's resolved tuning axes.
func specTuningAxes(s *Spec) *ShardTuningAxes {
	ax := &ShardTuningAxes{
		Predictors:  s.Predictors(),
		PhaseBudget: s.PhaseBudget(),
	}
	for _, c := range s.Controllers() {
		ax.Controllers = append(ax.Controllers, ShardController{
			Name: c.Name, TrialsPerConfig: c.TrialsPerConfig,
		})
	}
	return ax
}

// newShardCell serializes one cell result (trace payloads are handled
// by NewShardGrid, which deduplicates them across sibling cells).
func newShardCell(r CellResult) ShardCell {
	sc := ShardCell{
		Index:    r.Index,
		Workload: r.Cell.Run.Workload,
		Size:     r.Cell.Run.Size.String(),
		Procs:    r.Cell.Run.Procs,
		Interval: r.Cell.Run.IntervalInstructions,
		Seed:     r.Cell.Run.Seed,
		Detector: r.Cell.Kind.String(),
		TweakKey: r.Cell.TweakKey,
		WallNS:   r.Wall.Nanoseconds(),
	}
	if r.Cell.Run.Protocol != coherence.KindDirectory {
		sc.Protocol = r.Cell.Run.Protocol.String()
	}
	if r.Err != nil {
		sc.Err = r.Err.Error()
		return sc
	}
	for _, p := range r.Curve.Curve.Points {
		sc.Curve = append(sc.Curve, ShardCurvePoint{
			Phases: p.Phases, CoV: p.CoV, Threshold: p.Threshold, ThresholdDDS: p.ThresholdDDS,
		})
	}
	sum := r.Curve.Summary
	sc.Summary = &ShardSummary{
		Instructions: sum.Instructions,
		SyncInstrs:   sum.SyncInstrs,
		Cycles:       sum.Cycles,
		Intervals:    sum.Intervals,
		Barriers:     sum.Barriers,
		IPC:          sum.IPC,
		Local:        sum.LocalAccesses,
		Remote:       sum.RemoteAccesses,
	}
	if ct, ok := UnwrapExtra(r.Extra).(cellTuning); ok {
		for _, v := range ct.rows {
			sc.Tuning = append(sc.Tuning, ShardTuningValue{
				WinRate: v.WinRate, Regret: v.Regret, Convergence: v.Convergence,
				Accuracy: v.Accuracy, Overhead: v.Overhead,
			})
		}
	}
	return sc
}

// CellResult reconstructs the engine-form result of one serialized
// cell. Tweak functions do not round-trip (the merge never re-runs
// simulations, and the fingerprint already validated plan identity),
// and a cell whose trace was deduplicated to a sibling (TraceRef)
// reconstructs without the records — resolve them with
// ShardGrid.TraceFor; report aggregation never reads them.
func (c ShardCell) CellResult() (CellResult, error) {
	size, err := workloads.ParseSize(c.Size)
	if err != nil {
		return CellResult{}, fmt.Errorf("harness: cell %d: %w", c.Index, err)
	}
	kind, err := core.ParseDetectorKind(c.Detector)
	if err != nil {
		return CellResult{}, fmt.Errorf("harness: cell %d: %w", c.Index, err)
	}
	proto := coherence.KindDirectory
	if c.Protocol != "" {
		if proto, err = coherence.ParseKind(c.Protocol); err != nil {
			return CellResult{}, fmt.Errorf("harness: cell %d: %w", c.Index, err)
		}
	}
	res := CellResult{
		Index: c.Index,
		Cell: Cell{
			Run: RunConfig{
				Workload:             c.Workload,
				Size:                 size,
				Procs:                c.Procs,
				IntervalInstructions: c.Interval,
				Seed:                 c.Seed,
				Protocol:             proto,
			},
			Kind:     kind,
			TweakKey: c.TweakKey,
		},
		Wall: time.Duration(c.WallNS),
	}
	if c.Err != "" {
		res.Err = errors.New(c.Err)
		return res, nil
	}
	res.Curve = CurveResult{App: c.Workload, Procs: c.Procs, Detector: kind}
	for _, p := range c.Curve {
		res.Curve.Curve.Points = append(res.Curve.Curve.Points, stats.CurvePoint{
			Phases: p.Phases, CoV: p.CoV, Threshold: p.Threshold, ThresholdDDS: p.ThresholdDDS,
		})
	}
	if s := c.Summary; s != nil {
		res.Curve.Summary = machine.Summary{
			Instructions:   s.Instructions,
			SyncInstrs:     s.SyncInstrs,
			Cycles:         s.Cycles,
			Intervals:      s.Intervals,
			Barriers:       s.Barriers,
			IPC:            s.IPC,
			LocalAccesses:  s.Local,
			RemoteAccesses: s.Remote,
		}
	}
	var inner any
	if c.Tuning != nil {
		ct := cellTuning{rows: make([]TuningValue, 0, len(c.Tuning))}
		for _, v := range c.Tuning {
			ct.rows = append(ct.rows, TuningValue{
				WinRate: v.WinRate, Regret: v.Regret, Convergence: v.Convergence,
				Accuracy: v.Accuracy, Overhead: v.Overhead,
			})
		}
		inner = ct
	}
	if c.Trace != "" {
		recs, err := trace.ReadJSONL(strings.NewReader(c.Trace))
		if err != nil {
			return CellResult{}, fmt.Errorf("harness: cell %d trace: %w", c.Index, err)
		}
		res.Extra = TracedExtra{Records: trace.SplitByProc(recs), Inner: inner}
	} else {
		res.Extra = inner
	}
	return res, nil
}

// DecodeTrace returns the cell's directly embedded interval records,
// regrouped per processor, or nil when the cell carries none. A cell
// whose trace lives on a sibling (TraceRef) also returns nil here —
// use ShardGrid.TraceFor to follow the reference.
func (c ShardCell) DecodeTrace() ([][]core.IntervalSignature, error) {
	if c.Trace == "" {
		return nil, nil
	}
	recs, err := trace.ReadJSONL(strings.NewReader(c.Trace))
	if err != nil {
		return nil, fmt.Errorf("harness: cell %d trace: %w", c.Index, err)
	}
	return trace.SplitByProc(recs), nil
}

// TraceFor returns the captured interval records of the cell at the
// given plan index, following a TraceRef to the owning sibling when
// the trace was deduplicated. Returns nil when the grid holds no trace
// for the cell.
func (g *ShardGrid) TraceFor(index int) ([][]core.IntervalSignature, error) {
	c := g.cellAt(index)
	if c == nil {
		return nil, fmt.Errorf("harness: grid %s has no cell %d", g.Name, index)
	}
	if c.TraceRef != nil {
		owner := g.cellAt(*c.TraceRef)
		if owner == nil || owner.Trace == "" {
			return nil, fmt.Errorf("harness: grid %s cell %d: dangling trace_ref %d", g.Name, index, *c.TraceRef)
		}
		c = owner
	}
	return c.DecodeTrace()
}

// cellAt finds a grid cell by plan index.
func (g *ShardGrid) cellAt(index int) *ShardCell {
	for i := range g.Results {
		if g.Results[i].Index == index {
			return &g.Results[i]
		}
	}
	return nil
}

// WriteShardArtifact serializes the artifact as indented JSON. Apart
// from the wall-clock timings every field is deterministic, so two runs
// of the same shard differ only in wall_ns values.
func WriteShardArtifact(w io.Writer, a *ShardArtifact) error {
	if a.Format == "" {
		a.Format = ShardFormat
	}
	if a.Format != ShardFormat {
		return fmt.Errorf("harness: shard artifact format %q, this build writes %q", a.Format, ShardFormat)
	}
	sum, err := ChecksumArtifact(a)
	if err != nil {
		return err
	}
	a.Checksum = sum
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteShardArtifactFile serializes the artifact to a file path — the
// CLI convenience both cmd front-ends share.
func WriteShardArtifactFile(path string, a *ShardArtifact) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteShardArtifact(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadShardArtifactFile reads and version-checks one artifact file.
func ReadShardArtifactFile(path string) (*ShardArtifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadShardArtifact(f)
}

// ReadShardArtifactFiles reads a shard-artifact set, e.g. a -merge
// argument list.
func ReadShardArtifactFiles(paths []string) ([]*ShardArtifact, error) {
	arts := make([]*ShardArtifact, 0, len(paths))
	for _, p := range paths {
		a, err := ReadShardArtifactFile(p)
		if err != nil {
			return nil, err
		}
		arts = append(arts, a)
	}
	return arts, nil
}

// ReadShardArtifact deserializes and version-checks one artifact.
func ReadShardArtifact(r io.Reader) (*ShardArtifact, error) {
	var a ShardArtifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("harness: reading shard artifact: %w", err)
	}
	if a.Format != ShardFormat {
		return nil, fmt.Errorf("harness: shard artifact format %q, want %q", a.Format, ShardFormat)
	}
	if a.Of < 1 || a.Shard < 0 || a.Shard >= a.Of {
		return nil, fmt.Errorf("harness: shard artifact claims shard %d/%d", a.Shard, a.Of)
	}
	if a.Checksum != "" {
		want, err := ChecksumArtifact(&a)
		if err != nil {
			return nil, err
		}
		if a.Checksum != want {
			return nil, fmt.Errorf("%w: artifact says %s, content hashes to %s (shard %d/%d)",
				ErrArtifactChecksum, a.Checksum, want, a.Shard, a.Of)
		}
	}
	return &a, nil
}

// Grid returns the named grid of the artifact, if present.
func (a *ShardArtifact) Grid(name string) (*ShardGrid, bool) {
	for i := range a.Grids {
		if a.Grids[i].Name == name {
			return &a.Grids[i], true
		}
	}
	return nil, false
}

// MeanCellWall averages the persisted per-cell wall-clock timings over
// every grid of the artifact, returning the mean and the cell count —
// the prior ETA.Seed consumes.
func (a *ShardArtifact) MeanCellWall() (time.Duration, int) {
	var total int64
	cells := 0
	for _, g := range a.Grids {
		for _, c := range g.Results {
			total += c.WallNS
			cells++
		}
	}
	if cells == 0 {
		return 0, 0
	}
	return time.Duration(total / int64(cells)), cells
}

// MergeShards validates a complete shard set and reassembles the named
// grid's plan-ordered cell results for the Spec. Every artifact must
// carry the grid, agree on the shard count, and fingerprint-match the
// Spec's plan; together the artifacts must cover every plan cell
// exactly once. The returned slice feeds Assemble (or AssembleTuning)
// to reproduce the unsharded report byte for byte.
func MergeShards(s *Spec, name string, arts []*ShardArtifact) ([]CellResult, error) {
	if len(arts) == 0 {
		return nil, fmt.Errorf("harness: merge %s: no shard artifacts", name)
	}
	p := s.Plan()
	want := p.Fingerprint()
	of := arts[0].Of
	if len(arts) != of {
		return nil, fmt.Errorf("harness: merge %s: have %d artifacts, shard set is %d-way", name, len(arts), of)
	}
	results := make([]CellResult, p.Len())
	filled := make([]bool, p.Len())
	seenShard := make(map[int]bool, of)
	for _, a := range arts {
		if a.Of != of {
			return nil, fmt.Errorf("harness: merge %s: mixed shard counts %d and %d", name, of, a.Of)
		}
		if seenShard[a.Shard] {
			return nil, fmt.Errorf("harness: merge %s: shard %d/%d appears twice", name, a.Shard, of)
		}
		seenShard[a.Shard] = true
		g, ok := a.Grid(name)
		if !ok {
			return nil, fmt.Errorf("harness: merge: shard %d/%d has no grid %q", a.Shard, of, name)
		}
		if g.Cells != p.Len() || g.Fingerprint != want {
			return nil, fmt.Errorf("harness: merge %s: shard %d/%d was produced from a different plan "+
				"(fingerprint %s over %d cells, want %s over %d) — re-run the merge with the shard run's flags",
				name, a.Shard, of, g.Fingerprint, g.Cells, want, p.Len())
		}
		if err := checkTuningAxes(s, g.TuningAxes); err != nil {
			return nil, fmt.Errorf("harness: merge %s: shard %d/%d: %w", name, a.Shard, of, err)
		}
		for _, sc := range g.Results {
			if sc.Index < 0 || sc.Index >= p.Len() {
				return nil, fmt.Errorf("harness: merge %s: shard %d/%d holds cell %d of a %d-cell plan",
					name, a.Shard, of, sc.Index, p.Len())
			}
			if filled[sc.Index] {
				return nil, fmt.Errorf("harness: merge %s: cell %d present in more than one shard", name, sc.Index)
			}
			res, err := sc.CellResult()
			if err != nil {
				return nil, err
			}
			results[sc.Index] = res
			filled[sc.Index] = true
		}
	}
	var missing []int
	for i, ok := range filled {
		if !ok {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 {
		sort.Ints(missing)
		return nil, fmt.Errorf("harness: merge %s: %d of %d cells missing (first: %d) — is a shard file absent?",
			name, len(missing), p.Len(), missing[0])
	}
	return results, nil
}

// checkTuningAxes verifies a tuning grid's recorded axes against the
// merge-side Spec.
func checkTuningAxes(s *Spec, ax *ShardTuningAxes) error {
	if ax == nil {
		return nil
	}
	preds := s.Predictors()
	if len(ax.Predictors) != len(preds) {
		return fmt.Errorf("predictor axis mismatch: shard has %v, merge spec has %v", ax.Predictors, preds)
	}
	for i, p := range preds {
		if ax.Predictors[i] != p {
			return fmt.Errorf("predictor axis mismatch: shard has %v, merge spec has %v", ax.Predictors, preds)
		}
	}
	ctls := s.Controllers()
	if len(ax.Controllers) != len(ctls) {
		return fmt.Errorf("controller axis mismatch: shard has %d controllers, merge spec has %d",
			len(ax.Controllers), len(ctls))
	}
	for i, c := range ctls {
		if ax.Controllers[i].Name != c.Name || ax.Controllers[i].TrialsPerConfig != c.TrialsPerConfig {
			return fmt.Errorf("controller %d mismatch: shard has %s/%d, merge spec has %s/%d",
				i, ax.Controllers[i].Name, ax.Controllers[i].TrialsPerConfig, c.Name, c.TrialsPerConfig)
		}
	}
	if ax.PhaseBudget != s.PhaseBudget() {
		return fmt.Errorf("phase budget mismatch: shard has %g, merge spec has %g", ax.PhaseBudget, s.PhaseBudget())
	}
	return nil
}

// ParseShard parses a "-shard i/n" flag value.
func ParseShard(v string) (shard, of int, err error) {
	i, n, ok := strings.Cut(v, "/")
	if ok {
		if shard, err = strconv.Atoi(i); err == nil {
			of, err = strconv.Atoi(n)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("harness: shard %q: want i/n (e.g. 0/4)", v)
	}
	if of < 1 || shard < 0 || shard >= of {
		return 0, 0, fmt.Errorf("harness: shard %q out of range: want 0 <= i < n", v)
	}
	return shard, of, nil
}
