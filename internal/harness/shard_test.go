package harness

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dsmphase/internal/core"
	"dsmphase/internal/machine"
	"dsmphase/internal/workloads"
)

// shardSpec is the small multi-replicate ablation grid the shard tests
// partition: 2 variants × 1 app × 1 proc count × 2 detectors × 2
// replicates = 8 cells over 4 distinct simulations.
func shardSpec() *Spec {
	return NewSpec(
		WithApps("fmm"),
		WithProcs(2),
		WithDetectors(core.DetectorBBV, core.DetectorBBVDDV),
		WithSize(workloads.SizeTest),
		WithInterval(20_000),
		WithSeed(1),
		WithReplicates(2),
		WithTweak("uniform-distance", "uniformD",
			func(c *machine.Config) { c.UniformDistance = true }),
	)
}

// shardTuningSpec is the tuning-grid analogue.
func shardTuningSpec() *Spec {
	return NewSpec(
		WithApps("fmm"),
		WithProcs(2),
		WithDetectors(core.DetectorBBV, core.DetectorBBVDDV),
		WithSize(workloads.SizeTest),
		WithInterval(20_000),
		WithSeed(1),
		WithReplicates(2),
		WithPredictors("last-phase", "markov"),
		WithControllers(ControllerSpec{Name: "trial-1", TrialsPerConfig: 1}),
	)
}

// TestShardPartition checks the partitioning invariants: every cell in
// exactly one shard, assignment stable across calls, and sibling cells
// sharing a simulation always co-located (the record cache's win
// survives sharding).
func TestShardPartition(t *testing.T) {
	p := shardSpec().Plan()
	for of := 1; of <= 5; of++ {
		seen := make(map[int]int)
		for shard := 0; shard < of; shard++ {
			idxs := p.ShardIndices(shard, of)
			again := p.ShardIndices(shard, of)
			if fmt.Sprint(idxs) != fmt.Sprint(again) {
				t.Fatalf("of=%d shard=%d: unstable assignment %v vs %v", of, shard, idxs, again)
			}
			for _, i := range idxs {
				if prev, dup := seen[i]; dup {
					t.Errorf("of=%d: cell %d in shards %d and %d", of, i, prev, shard)
				}
				seen[i] = shard
			}
		}
		if len(seen) != p.Len() {
			t.Errorf("of=%d: %d of %d cells assigned", of, len(seen), p.Len())
		}
		// Sibling cells (same simulation, different detector) co-locate.
		cells := p.Cells()
		for i, a := range cells {
			for j, b := range cells {
				if i < j && a.simKeyAt(i) == b.simKeyAt(j) && seen[i] != seen[j] {
					t.Errorf("of=%d: cells %d and %d share a simulation but land on shards %d and %d",
						of, i, j, seen[i], seen[j])
				}
			}
		}
	}
}

// TestShardIndicesOrderFree checks that a cell's shard does not depend
// on what else is in the plan: the grid with an extra variant assigns
// the common cells identically.
func TestShardIndicesOrderFree(t *testing.T) {
	small := NewSpec(WithApps("fmm"), WithProcs(2), WithSize(workloads.SizeTest),
		WithInterval(20_000)).Plan()
	big := NewSpec(WithApps("fmm", "lu"), WithProcs(2, 8), WithSize(workloads.SizeTest),
		WithInterval(20_000)).Plan()
	const of = 3
	shardByKey := func(p *Plan) map[simKey]int {
		m := make(map[simKey]int)
		for shard := 0; shard < of; shard++ {
			for _, i := range p.ShardIndices(shard, of) {
				m[p.Cells()[i].simKeyAt(i)] = shard
			}
		}
		return m
	}
	smallMap, bigMap := shardByKey(small), shardByKey(big)
	for k, s := range smallMap {
		if bigMap[k] != s {
			t.Errorf("cell %+v: shard %d in small grid, %d in big grid", k, s, bigMap[k])
		}
	}
}

// encodeAll renders a report in every registered format.
func encodeAll(t *testing.T, rep *Report) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range EncoderNames() {
		enc, err := NewEncoder(name, "shard identity")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := enc.Encode(&buf, rep); err != nil {
			t.Fatal(err)
		}
		out[name] = buf.Bytes()
	}
	return out
}

// encodeAllTuning renders a tuning report in every registered format.
func encodeAllTuning(t *testing.T, rep *TuningReport) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range TuningEncoderNames() {
		enc, err := NewTuningEncoder(name, "shard identity")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := enc.Encode(&buf, rep); err != nil {
			t.Fatal(err)
		}
		out[name] = buf.Bytes()
	}
	return out
}

// roundTripArtifact pushes an artifact through its serialized form, so
// identity tests cover JSON float round-tripping, not just in-memory
// plumbing.
func roundTripArtifact(t *testing.T, a *ShardArtifact) *ShardArtifact {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteShardArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadShardArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

// shardArtifacts runs every shard of a spec (plain grid) and returns
// the serialized-and-reread artifacts.
func shardArtifacts(t *testing.T, s *Spec, of int) []*ShardArtifact {
	t.Helper()
	arts := make([]*ShardArtifact, of)
	for shard := 0; shard < of; shard++ {
		results := s.RunShard(shard, of, Options{Parallel: 2})
		grid, err := NewShardGrid("grid", s, results, false, false)
		if err != nil {
			t.Fatal(err)
		}
		arts[shard] = roundTripArtifact(t, &ShardArtifact{
			Format: ShardFormat, Shard: shard, Of: of, Grids: []ShardGrid{grid},
		})
	}
	return arts
}

// TestMergeByteIdentity is the tentpole acceptance check: for 1-, 2-
// and 3-way shard sets, writing, reading and merging the shard
// artifacts reproduces the unsharded report byte for byte in every
// encoder format.
func TestMergeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed shard runs")
	}
	spec := shardSpec()
	want := encodeAll(t, spec.Run(Options{Parallel: 4}))
	for of := 1; of <= 3; of++ {
		results, err := MergeShards(spec, "grid", shardArtifacts(t, spec, of))
		if err != nil {
			t.Fatalf("of=%d: %v", of, err)
		}
		got := encodeAll(t, spec.Assemble(results))
		for name, w := range want {
			if !bytes.Equal(got[name], w) {
				t.Errorf("of=%d: %s output differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s",
					of, name, w, got[name])
			}
		}
	}
}

// TestMergeTuningByteIdentity is the tuning-grid analogue: sharded
// RunTuningShard outputs merged through AssembleTuning must reproduce
// the unsharded scorecard byte for byte in every format.
func TestMergeTuningByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed shard runs")
	}
	spec := shardTuningSpec()
	unsharded, err := spec.RunTuning(Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := encodeAllTuning(t, unsharded)
	for of := 1; of <= 3; of++ {
		arts := make([]*ShardArtifact, of)
		for shard := 0; shard < of; shard++ {
			results, err := spec.RunTuningShard(shard, of, Options{Parallel: 2})
			if err != nil {
				t.Fatal(err)
			}
			grid, err := NewShardGrid("tuning", spec, results, true, false)
			if err != nil {
				t.Fatal(err)
			}
			arts[shard] = roundTripArtifact(t, &ShardArtifact{
				Format: ShardFormat, Shard: shard, Of: of, Grids: []ShardGrid{grid},
			})
		}
		results, err := MergeShards(spec, "tuning", arts)
		if err != nil {
			t.Fatalf("of=%d: %v", of, err)
		}
		rep, err := spec.AssembleTuning(results)
		if err != nil {
			t.Fatalf("of=%d: %v", of, err)
		}
		got := encodeAllTuning(t, rep)
		for name, w := range want {
			if !bytes.Equal(got[name], w) {
				t.Errorf("of=%d: %s scorecard differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s",
					of, name, w, got[name])
			}
		}
	}
}

// TestMergeErrorCellRoundTrip checks a failed cell survives the
// artifact round trip: the merged JSON report carries the same error
// strings (and "skipped" rows) as the unsharded one.
func TestMergeErrorCellRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed shard runs")
	}
	spec := NewSpec(WithApps("fmm", "no-such-app"), WithProcs(2),
		WithSize(workloads.SizeTest), WithInterval(20_000))
	want := encodeAll(t, spec.Run(Options{Parallel: 2}))
	results, err := MergeShards(spec, "grid", shardArtifacts(t, spec, 2))
	if err != nil {
		t.Fatal(err)
	}
	got := encodeAll(t, spec.Assemble(results))
	for name, w := range want {
		if !bytes.Equal(got[name], w) {
			t.Errorf("%s output differs for error cells:\n--- unsharded ---\n%s\n--- merged ---\n%s",
				name, w, got[name])
		}
	}
}

// TestMergeValidation checks the merge refuses incomplete or
// inconsistent shard sets with a useful error.
func TestMergeValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed shard runs")
	}
	spec := NewSpec(WithApps("fmm"), WithProcs(2),
		WithSize(workloads.SizeTest), WithInterval(20_000))
	arts := shardArtifacts(t, spec, 2)

	if _, err := MergeShards(spec, "grid", arts[:1]); err == nil {
		t.Error("merge accepted 1 of 2 shards")
	}
	if _, err := MergeShards(spec, "grid", []*ShardArtifact{arts[0], arts[0]}); err == nil {
		t.Error("merge accepted a duplicated shard")
	}
	if _, err := MergeShards(spec, "nope", arts); err == nil {
		t.Error("merge accepted an unknown grid name")
	}
	other := NewSpec(WithApps("fmm"), WithProcs(2),
		WithSize(workloads.SizeTest), WithInterval(20_000), WithSeed(7))
	if _, err := MergeShards(other, "grid", arts); err == nil {
		t.Error("merge accepted shards of a different plan (seed mismatch)")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("fingerprint mismatch error unhelpful: %v", err)
	}

	var buf bytes.Buffer
	if err := WriteShardArtifact(&buf, arts[0]); err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(buf.Bytes(), []byte(ShardFormat), []byte("dsmphase-shard/999"), 1)
	if _, err := ReadShardArtifact(bytes.NewReader(bad)); err == nil {
		t.Error("reader accepted an unknown format version")
	}
}

// TestTraceCaptureRoundTrip checks the optional internal/trace payload:
// a shard run under TraceHook serializes each simulation's interval
// records once (sibling cells sweeping the same execution carry a
// trace_ref, not a copy), and they round-trip through the artifact
// exactly.
func TestTraceCaptureRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed shard runs")
	}
	// Two detectors over one simulation: the second cell must reference
	// the first cell's trace rather than duplicate it.
	spec := NewSpec(WithApps("fmm"), WithProcs(2),
		WithDetectors(core.DetectorBBV, core.DetectorBBVDDV),
		WithSize(workloads.SizeTest), WithInterval(20_000))
	results := RunPlanShard(spec.Plan(), 0, 1, Options{Parallel: 2, Hook: TraceHook(nil)})
	grid, err := NewShardGrid("grid", spec, results, false, true)
	if err != nil {
		t.Fatal(err)
	}
	art := roundTripArtifact(t, &ShardArtifact{Shard: 0, Of: 1, Grids: []ShardGrid{grid}})
	g, _ := art.Grid("grid")
	embedded, refs := 0, 0
	for i, sc := range g.Results {
		if sc.Err != "" {
			continue
		}
		switch {
		case sc.Trace != "":
			embedded++
		case sc.TraceRef != nil:
			refs++
		default:
			t.Fatalf("cell %d: neither trace nor trace_ref", sc.Index)
		}
		got, err := g.TraceFor(sc.Index)
		if err != nil {
			t.Fatal(err)
		}
		want := results[i].Extra.(TracedExtra).Records
		if len(got) != len(want) {
			t.Fatalf("cell %d: %d procs decoded, want %d", sc.Index, len(got), len(want))
		}
		for p := range want {
			if len(got[p]) != len(want[p]) {
				t.Fatalf("cell %d proc %d: %d records, want %d", sc.Index, p, len(got[p]), len(want[p]))
			}
			for j := range want[p] {
				if got[p][j].DDS != want[p][j].DDS || got[p][j].Instructions != want[p][j].Instructions {
					t.Fatalf("cell %d proc %d record %d drifted in round trip", sc.Index, p, j)
				}
			}
		}
		// The trace wrapper must not hide the inner payload from the
		// tuning aggregation path.
		if UnwrapExtra(results[i].Extra) != nil {
			t.Fatalf("cell %d: TraceHook(nil) inner payload not nil", sc.Index)
		}
	}
	if embedded != 1 || refs != 1 {
		t.Errorf("trace dedup: %d embedded, %d refs (want 1 and 1)", embedded, refs)
	}
	// And merging trace-bearing shards still reassembles cleanly.
	if _, err := MergeShards(spec, "grid", []*ShardArtifact{art}); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenShardArtifact pins the artifact schema byte for byte (with
// the one nondeterministic field, wall_ns, zeroed) and cross-checks
// that docs/MERGE_FORMAT.md documents the pinned format version.
// Regenerate with `go test ./internal/harness -run TestGolden -update`.
func TestGoldenShardArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed golden run")
	}
	spec := NewSpec(WithApps("fmm"), WithProcs(2), WithSize(workloads.SizeTest),
		WithInterval(20_000))
	results := spec.RunShard(0, 1, Options{Parallel: 2})
	for i := range results {
		results[i].Wall = 0 // the only nondeterministic field
	}
	grid, err := NewShardGrid("golden", spec, results, false, false)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := WriteShardArtifact(&got, &ShardArtifact{Shard: 0, Of: 1, Grids: []ShardGrid{grid}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "shard.golden")
	if *updateGolden {
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to create)", err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("shard artifact drifted from %s:\n--- want ---\n%s\n--- got ---\n%s",
				path, want, got.Bytes())
		}
	}

	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "MERGE_FORMAT.md"))
	if err != nil {
		t.Fatalf("docs/MERGE_FORMAT.md must document the shard format: %v", err)
	}
	if !strings.Contains(string(doc), ShardFormat) {
		t.Errorf("docs/MERGE_FORMAT.md does not mention the pinned format version %q — "+
			"update the doc alongside the format", ShardFormat)
	}
	if !bytes.Contains(got.Bytes(), []byte(ShardFormat)) {
		t.Errorf("artifact does not carry the format tag %q", ShardFormat)
	}
}

// TestETASeed checks the prior blend: before any completion a seeded
// ETA extrapolates from the prior alone, and the prior's weight fades
// as real completions accumulate.
func TestETASeed(t *testing.T) {
	e := NewETA().Seed(time.Second, 10)
	if _, remaining := e.Observe(0, 20); remaining <= 0 {
		t.Error("seeded ETA gave no estimate before the first completion")
	}
	// 10 virtual cells of 1s + 0 observed elapsed over 10 done cells:
	// per-cell estimate 0.5s, 10 remaining.
	if _, remaining := e.Observe(10, 20); remaining > 10*time.Second {
		t.Errorf("prior did not fade with observed completions: remaining %v", remaining)
	}
	if _, remaining := NewETA().Seed(0, 0).Observe(0, 20); remaining != 0 {
		t.Errorf("unseeded ETA estimated %v before the first completion", remaining)
	}
	// Finished and overshot runs report zero remaining.
	if _, remaining := e.Observe(20, 20); remaining != 0 {
		t.Errorf("finished run reports remaining %v", remaining)
	}
}

// TestParseShard checks the -shard flag grammar.
func TestParseShard(t *testing.T) {
	if s, of, err := ParseShard("1/3"); err != nil || s != 1 || of != 3 {
		t.Errorf("ParseShard(1/3) = %d, %d, %v", s, of, err)
	}
	for _, bad := range []string{"", "2", "3/2", "2/2", "-1/2", "a/b", "1/2/3"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}
