package harness

import (
	"fmt"

	"dsmphase/internal/coherence"
	"dsmphase/internal/core"
	"dsmphase/internal/machine"
	"dsmphase/internal/predictor"
	"dsmphase/internal/workloads"
)

// The declarative experiment surface. A Spec describes a study as a
// grid — workloads × processor counts × detectors × replicates × named
// machine variants — and compiles it into the engine's Plan form. The
// figures, the ablation grids and the multi-seed confidence bands are
// all instances of the same grid, so they share one enumeration, one
// seeding discipline (DeriveSeed: order-free, per-replicate), one cache
// policy (TweakKey: variants share simulations across detectors) and
// one aggregation path (Report).

// Variant is one named machine configuration of an ablation grid. The
// zero variant is the baseline: untweaked Table I hardware.
type Variant struct {
	// Name labels the variant in reports ("baseline", "2x-contention").
	Name string
	// Key is the record-cache identity of the tweak. Cells of the same
	// variant that agree on the simulation half share one machine run.
	// An empty Key with a non-nil Tweak disables sharing (the engine
	// cannot compare function effects).
	Key string
	// Tweak adjusts the machine configuration before the run; nil for
	// the baseline.
	Tweak func(*machine.Config)
}

// Configuration identifies one aggregated cell of a Spec's grid: every
// replicate of a (variant, app, procs, protocol, detector) point folds
// into one Configuration's band.
type Configuration struct {
	Variant  Variant
	App      string
	Procs    int
	Protocol coherence.Kind
	Detector core.DetectorKind
}

// Label returns the configuration's display label
// ("lu 8P BBV+DDV [2x-contention]"; the baseline omits the bracket,
// and the default directory protocol omits its marker, so single-
// protocol grids keep their historical labels).
func (c Configuration) Label() string {
	l := fmt.Sprintf("%s %dP %s", c.App, c.Procs, c.Detector)
	if c.Protocol != coherence.KindDirectory {
		l += " " + c.Protocol.String()
	}
	if c.Variant.Name != "" && c.Variant.Name != "baseline" {
		l += " [" + c.Variant.Name + "]"
	}
	return l
}

// Spec declaratively describes an experiment grid. Build one with
// NewSpec and functional options, compile it with Plan, or execute and
// aggregate it with Run.
type Spec struct {
	apps       []string
	procs      []int
	kinds      []core.DetectorKind
	protocols  []coherence.Kind
	size       workloads.Size
	interval   uint64
	seed       uint64
	replicates int
	variants   []Variant

	// Tuning axes (RunTuning only; Run ignores them).
	predictors  []string
	controllers []ControllerSpec
	phaseBudget float64
}

// ControllerSpec names one tuning-controller configuration of a tuning
// grid: a trial-and-error controller that measures each hardware
// configuration for TrialsPerConfig intervals before locking in.
type ControllerSpec struct {
	// Name labels the controller in scorecards ("trial-1").
	Name string
	// TrialsPerConfig is how many intervals each configuration is
	// trialled per phase (averaging suppresses noise at the cost of more
	// tuning intervals).
	TrialsPerConfig int
}

// Option configures a Spec.
type Option func(*Spec)

// NewSpec returns a Spec with the paper's defaults: the four Table II
// applications, 8 processors, the BBV detector, small inputs, the
// reduced 300k sampling interval, seed 1, one replicate, baseline
// hardware.
func NewSpec(opts ...Option) *Spec {
	s := &Spec{
		procs:      []int{8},
		kinds:      []core.DetectorKind{core.DetectorBBV},
		size:       workloads.SizeSmall,
		seed:       1,
		replicates: 1,
		variants:   []Variant{{Name: "baseline"}},
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// WithApps selects the applications. A single panel alias ("paper",
// "extended") expands to its member list; empty keeps the paper panel.
func WithApps(apps ...string) Option {
	return func(s *Spec) { s.apps = apps }
}

// WithProcs selects the processor counts.
func WithProcs(procs ...int) Option {
	return func(s *Spec) { s.procs = procs }
}

// WithDetectors selects the detector kinds swept over each simulation.
// Detectors are sweep-only, so every kind of a (variant, app, procs,
// replicate) point shares one machine run through the record cache.
func WithDetectors(kinds ...core.DetectorKind) Option {
	return func(s *Spec) { s.kinds = kinds }
}

// WithProtocols selects the coherence backends swept as a grid
// dimension. Each protocol is a distinct simulation (unlike detectors,
// which sweep a shared run). Empty keeps the default directory-only
// axis, which reproduces pre-seam grids byte for byte.
func WithProtocols(kinds ...coherence.Kind) Option {
	return func(s *Spec) { s.protocols = kinds }
}

// WithSize selects the workload input scale.
func WithSize(size workloads.Size) Option {
	return func(s *Spec) { s.size = size }
}

// WithInterval sets the total system sampling interval; each processor
// samples interval/procs instructions (the paper's 3M/n rule). 0 keeps
// the reduced-input 300k default.
func WithInterval(interval uint64) Option {
	return func(s *Spec) { s.interval = interval }
}

// WithSeed sets the base seed. Replicate 0 runs the base seed itself
// (so a one-replicate Spec reproduces the legacy single-seed figures
// byte for byte); further replicates derive order-free seeds with
// DeriveSeed.
func WithSeed(seed uint64) Option {
	return func(s *Spec) { s.seed = seed }
}

// WithReplicates sets how many seeds each configuration runs. n > 1
// turns every configuration's result into a mean ± 95% CI band.
// Values below 1 are treated as 1.
func WithReplicates(n int) Option {
	return func(s *Spec) {
		if n < 1 {
			n = 1
		}
		s.replicates = n
	}
}

// WithTweak appends a named machine variant to the grid — one row of an
// ablation study. key is the record-cache identity: detectors sweeping
// the same tweaked simulation share one machine run. The baseline
// variant stays in the grid so reports can diff against it; drop it
// with WithoutBaseline.
func WithTweak(name, key string, tweak func(*machine.Config)) Option {
	return func(s *Spec) {
		s.variants = append(s.variants, Variant{Name: name, Key: key, Tweak: tweak})
	}
}

// WithoutBaseline removes the implicit baseline variant, leaving only
// the variants added with WithTweak.
func WithoutBaseline() Option {
	return func(s *Spec) {
		kept := s.variants[:0]
		for _, v := range s.variants {
			if v.Tweak != nil || v.Key != "" || (v.Name != "" && v.Name != "baseline") {
				kept = append(kept, v)
			}
		}
		s.variants = kept
	}
}

// WithPredictors selects the phase predictors of a tuning grid by
// registry name ("last-phase", "markov", "run-length"). Empty keeps the
// full registry. Only RunTuning consumes this axis.
func WithPredictors(names ...string) Option {
	return func(s *Spec) { s.predictors = names }
}

// WithControllers selects the tuning controllers of a tuning grid. Empty
// keeps DefaultControllers. Only RunTuning consumes this axis.
func WithControllers(specs ...ControllerSpec) Option {
	return func(s *Spec) { s.controllers = specs }
}

// WithPhaseBudget sets the maximum number of phases a controller is
// willing to tune; the detector's operating thresholds are chosen as the
// lowest-CoV point of its CoV curve within this budget (the paper's
// prescription). Values ≤ 0 keep the default budget of 8. Only
// RunTuning consumes this knob.
func WithPhaseBudget(budget float64) Option {
	return func(s *Spec) { s.phaseBudget = budget }
}

// Predictors returns the resolved predictor names of the tuning grid.
func (s *Spec) Predictors() []string {
	if len(s.predictors) == 0 {
		return predictor.Names()
	}
	return append([]string(nil), s.predictors...)
}

// Controllers returns the resolved controller specs of the tuning grid.
func (s *Spec) Controllers() []ControllerSpec {
	if len(s.controllers) == 0 {
		return DefaultControllers()
	}
	return append([]ControllerSpec(nil), s.controllers...)
}

// PhaseBudget returns the resolved tuning phase budget.
func (s *Spec) PhaseBudget() float64 {
	if s.phaseBudget <= 0 {
		return DefaultPhaseBudget
	}
	return s.phaseBudget
}

// Replicates returns the configured replicate count.
func (s *Spec) Replicates() int { return s.replicates }

// Size returns the configured input scale.
func (s *Spec) Size() workloads.Size { return s.size }

// Seed returns the configured base seed.
func (s *Spec) Seed() uint64 { return s.seed }

// Apps returns the resolved application list.
func (s *Spec) Apps() []string { return ResolveApps(s.apps) }

// Protocols returns the resolved coherence-backend axis (the directory
// backend when none were selected).
func (s *Spec) Protocols() []coherence.Kind {
	if len(s.protocols) == 0 {
		return []coherence.Kind{coherence.KindDirectory}
	}
	return append([]coherence.Kind(nil), s.protocols...)
}

// Configurations enumerates the grid's aggregated cells in report
// order: variant-major, then application, processor count, protocol,
// detector — the same order the legacy figures used (the protocol axis
// is degenerate by default), so a one-replicate, baseline-only Spec
// reproduces their output exactly. Protocol sits outside the detector
// axis so detector sweeps still share each protocol's simulation.
func (s *Spec) Configurations() []Configuration {
	var out []Configuration
	for _, v := range s.variants {
		for _, app := range s.Apps() {
			for _, procs := range s.procs {
				for _, proto := range s.Protocols() {
					for _, kind := range s.kinds {
						out = append(out, Configuration{
							Variant: v, App: app, Procs: procs, Protocol: proto, Detector: kind,
						})
					}
				}
			}
		}
	}
	return out
}

// replicateSeed returns the seed replicate r of a configuration runs.
// Replicate 0 is the base seed (legacy identity); later replicates hash
// their coordinates through DeriveSeed, so the seed assignment is
// independent of enumeration order and worker count.
func (s *Spec) replicateSeed(app string, procs, r int) uint64 {
	if r == 0 {
		return s.seed
	}
	return DeriveSeed(s.seed, app, procs, r)
}

// Plan compiles the Spec into the engine's cell list. Cells are laid
// out configuration-major with replicates innermost, so cell index =
// config·replicates + replicate; Run relies on this layout to fold
// results back into per-configuration bands.
func (s *Spec) Plan() *Plan {
	p := NewPlan()
	for _, cfg := range s.Configurations() {
		for r := 0; r < s.replicates; r++ {
			p.AddCell(Cell{
				Run: RunConfig{
					Workload:             cfg.App,
					Size:                 s.size,
					Procs:                cfg.Procs,
					IntervalInstructions: perProcInterval(s.interval, cfg.Procs),
					Seed:                 s.replicateSeed(cfg.App, cfg.Procs, r),
					Protocol:             cfg.Protocol,
					Tweak:                cfg.Variant.Tweak,
				},
				Kind:     cfg.Detector,
				TweakKey: cfg.Variant.Key,
			})
		}
	}
	return p
}

// perProcInterval splits a total sampling interval across processors;
// 0 derives the reduced-input 300k default (FigureConfig's rule).
func perProcInterval(total uint64, procs int) uint64 {
	if total > 0 {
		return total / uint64(procs)
	}
	return 300_000 / uint64(procs)
}

// Panels: named application sets for -apps style flags.
var panels = map[string][]string{
	// The paper's Table II panel, in figure order.
	"paper": {"fmm", "lu", "equake", "art"},
	// The paper panel plus the remaining Table II SPLASH-2 codes.
	"extended": {"fmm", "lu", "equake", "art", "ocean", "radix", "barnes", "water"},
	// Coherence-protocol stress kernels: pathological sharing patterns
	// that separate the directory and IVY backends.
	"adversarial": {"fsstencil", "pagethrash"},
}

// AppsPanel returns a named application panel ("paper", "extended",
// "adversarial").
func AppsPanel(name string) ([]string, bool) {
	p, ok := panels[name]
	if !ok {
		return nil, false
	}
	return append([]string(nil), p...), true
}

// ResolveApps expands panel aliases to their member lists — anywhere
// in the list, so mixed forms like "paper,fsstencil" work — and
// order-preservingly dedupes the result; empty resolves to the paper
// panel. Non-alias names pass through untouched.
func ResolveApps(apps []string) []string {
	if len(apps) == 0 {
		apps, _ := AppsPanel("paper")
		return apps
	}
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, a := range apps {
		if p, ok := AppsPanel(a); ok {
			for _, name := range p {
				add(name)
			}
		} else {
			add(a)
		}
	}
	return out
}
