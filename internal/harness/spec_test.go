package harness

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"dsmphase/internal/core"
	"dsmphase/internal/machine"
	"dsmphase/internal/workloads"
)

// quickSpecOpts are the shared fast-run options for Spec tests.
func quickSpecOpts() []Option {
	return []Option{
		WithApps("lu"),
		WithProcs(2),
		WithSize(workloads.SizeTest),
		WithInterval(20_000),
		WithSeed(1),
	}
}

// stripReportWalls zeroes every wall-clock field of a report so
// determinism comparisons see only the reproducible outcome.
func stripReportWalls(r *Report) *Report {
	out := *r
	out.Wall = 0
	out.Configs = append([]ConfigResult(nil), r.Configs...)
	for i := range out.Configs {
		out.Configs[i].Wall = 0
		out.Configs[i].Results = stripWall(out.Configs[i].Results)
	}
	return &out
}

// TestSpecGridEnumeration checks the grid arithmetic: configurations
// multiply out variants × apps × procs × detectors, cells add the
// replicate axis, and the record cache collapses detectors onto shared
// simulations per (variant, app, procs, replicate) point.
func TestSpecGridEnumeration(t *testing.T) {
	s := NewSpec(
		WithApps("lu", "fmm"),
		WithProcs(2, 4),
		WithDetectors(core.DetectorBBV, core.DetectorBBVDDV),
		WithReplicates(3),
		WithTweak("uniform-distance", "uniformD", func(c *machine.Config) { c.UniformDistance = true }),
	)
	wantConfigs := 2 * 2 * 2 * 2 // variants × apps × procs × kinds
	if got := len(s.Configurations()); got != wantConfigs {
		t.Errorf("configurations = %d, want %d", got, wantConfigs)
	}
	plan := s.Plan()
	if got, want := plan.Len(), wantConfigs*3; got != want {
		t.Errorf("cells = %d, want %d", got, want)
	}
	// Detectors share simulations; variants, replicates and grid points
	// do not: 2 variants × 2 apps × 2 procs × 3 replicates.
	if got, want := plan.Simulations(), 2*2*2*3; got != want {
		t.Errorf("simulations = %d, want %d (detector sweeps must share)", got, want)
	}
}

// TestSpecReplicateSeeds checks the seeding discipline: replicate 0
// runs the base seed (legacy identity), later replicates derive
// distinct order-free seeds.
func TestSpecReplicateSeeds(t *testing.T) {
	s := NewSpec(append(quickSpecOpts(), WithReplicates(3))...)
	cells := s.Plan().Cells()
	if cells[0].Run.Seed != 1 {
		t.Errorf("replicate 0 seed = %d, want the base seed", cells[0].Run.Seed)
	}
	seen := map[uint64]bool{}
	for _, c := range cells {
		if seen[c.Run.Seed] {
			t.Errorf("duplicate replicate seed %d", c.Run.Seed)
		}
		seen[c.Run.Seed] = true
	}
	if want := DeriveSeed(1, "lu", 2, 2); cells[2].Run.Seed != want {
		t.Errorf("replicate 2 seed = %d, want DeriveSeed's %d", cells[2].Run.Seed, want)
	}
}

// TestSpecReportParallelMatchesSerial is the acceptance check for the
// redesigned surface: a multi-replicate report is identical (timings
// aside) at every worker count.
func TestSpecReportParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated figure runs")
	}
	s := NewSpec(append(quickSpecOpts(),
		WithDetectors(core.DetectorBBV, core.DetectorBBVDDV),
		WithReplicates(3),
	)...)
	serial := stripReportWalls(s.Run(Options{Parallel: 1}))
	for _, workers := range []int{2, 4, 8} {
		parallel := stripReportWalls(s.Run(Options{Parallel: workers}))
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("report at %d workers differs from serial", workers)
		}
	}
}

// TestSpecBandPermutationInvariance checks that a configuration's band
// does not depend on where the configuration sits in the grid: seeds
// hash coordinates (DeriveSeed), not enumeration indices.
func TestSpecBandPermutationInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated figure runs")
	}
	build := func(apps ...string) *Spec {
		return NewSpec(
			WithApps(apps...),
			WithProcs(2),
			WithSize(workloads.SizeTest),
			WithInterval(20_000),
			WithSeed(1),
			WithReplicates(2),
		)
	}
	find := func(r *Report, app string) *ConfigResult {
		for i := range r.Configs {
			if r.Configs[i].Config.App == app {
				return &r.Configs[i]
			}
		}
		t.Fatalf("config for %s missing", app)
		return nil
	}
	a := build("lu", "fmm").Run(Options{Parallel: 4})
	b := build("fmm", "lu").Run(Options{Parallel: 4})
	for _, app := range []string{"lu", "fmm"} {
		ca, cb := find(a, app), find(b, app)
		if !reflect.DeepEqual(ca.Band, cb.Band) {
			t.Errorf("%s band depends on enumeration order", app)
		}
		if !reflect.DeepEqual(ca.Curves, cb.Curves) {
			t.Errorf("%s curves depend on enumeration order", app)
		}
	}
}

// TestSpecBandWidth checks the aggregation itself: a multi-replicate
// band records every finite replicate at its points, bounds the mean
// within [Lo, Hi], widens somewhere for a seed-sensitive workload
// (fmm's streams vary with the seed; lu's do not), and a one-replicate
// band is degenerate (zero width).
func TestSpecBandWidth(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated figure runs")
	}
	multi := NewSpec(
		WithApps("fmm"),
		WithProcs(2),
		WithSize(workloads.SizeTest),
		WithInterval(20_000),
		WithSeed(1),
		WithReplicates(3),
	).Run(Options{Parallel: 4})
	band := multi.Configs[0].Band
	if len(band.Points) == 0 {
		t.Fatal("empty band from a healthy run")
	}
	sawFull, sawWidth := false, false
	for _, p := range band.Points {
		if p.Lo > p.Mean || p.Mean > p.Hi {
			t.Errorf("band point %+v not ordered", p)
		}
		if p.N > 3 || p.N < 1 {
			t.Errorf("band point N = %d out of range", p.N)
		}
		if p.N == 3 {
			sawFull = true
		}
		if p.Hi > p.Lo {
			sawWidth = true
		}
	}
	if !sawFull {
		t.Error("no band point saw all three replicates")
	}
	if !sawWidth {
		t.Error("every band point has zero width; replicate seeds had no effect")
	}
	single := NewSpec(quickSpecOpts()...).Run(Options{Parallel: 1})
	for _, p := range single.Configs[0].Band.Points {
		if p.Lo != p.Mean || p.Hi != p.Mean || p.N != 1 {
			t.Errorf("one-replicate band not degenerate: %+v", p)
		}
	}
}

// TestSpecLegacyByteIdentity pins the deprecation contract: a
// one-replicate Spec rendered by the text encoder is byte-identical to
// the legacy Figure2/Figure4 tables.
func TestSpecLegacyByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs")
	}
	fc := FigureConfig{Apps: []string{"lu"}, Size: workloads.SizeTest, Interval: 20_000, Seed: 1}
	for _, tc := range []struct {
		name   string
		legacy func() ([]CurveResult, error)
		spec   *Spec
	}{
		{"figure2", func() ([]CurveResult, error) { return Figure2(fc, []int{2, 4}) }, Figure2Spec(fc, []int{2, 4})},
		{"figure4", func() ([]CurveResult, error) { return Figure4(fc, []int{4}) }, Figure4Spec(fc, []int{4})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			curves, err := tc.legacy()
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := WriteFigure(&want, tc.name, curves); err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			rep := tc.spec.Run(Options{Parallel: 4})
			if err := (TextEncoder{Title: tc.name}).Encode(&got, rep); err != nil {
				t.Fatal(err)
			}
			if got.String() != want.String() {
				t.Errorf("replicates=1 Spec text output differs from the legacy table:\n--- legacy ---\n%s\n--- spec ---\n%s",
					want.String(), got.String())
			}
		})
	}
}

// TestSpecAblationGrid runs a named ablation grid end to end: the
// contention and distance tweaks share simulations across detector
// sweeps via TweakKey, and the markdown scorecard reports every
// variant against the baseline.
func TestSpecAblationGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation grid runs")
	}
	s := NewSpec(
		WithApps("lu"),
		WithProcs(2),
		WithDetectors(core.DetectorBBV, core.DetectorBBVDDV),
		WithSize(workloads.SizeTest),
		WithInterval(20_000),
		WithSeed(1),
		WithTweak("no-contention", "dds-no-contention",
			func(c *machine.Config) { c.DDS.IgnoreContention = true }),
		WithTweak("uniform-distance", "uniformD",
			func(c *machine.Config) { c.UniformDistance = true }),
	)
	// 3 variants × 1 app × 1 procs, detectors shared per variant.
	if got, want := s.Plan().Simulations(), 3; got != want {
		t.Fatalf("simulations = %d, want %d (TweakKey must share across detectors)", got, want)
	}
	rep := s.Run(Options{Parallel: 4})
	if err := rep.FirstError(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := (MarkdownEncoder{Title: "Contention & distance ablation"}).Encode(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"## Contention & distance ablation",
		"| baseline | lu | 2 | BBV+DDV |",
		"| no-contention | lu | 2 | BBV+DDV |",
		"| uniform-distance | lu | 2 | BBV+DDV |",
		"| variant | app | procs | detector |",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("scorecard missing %q:\n%s", want, out)
		}
	}
}

// TestSpecIsolatesFailingConfig checks the per-configuration error
// path: an unknown workload fails its own configuration and leaves the
// sibling configurations with full bands.
func TestSpecIsolatesFailingConfig(t *testing.T) {
	rep := NewSpec(
		WithApps("lu", "no-such-workload"),
		WithProcs(2),
		WithSize(workloads.SizeTest),
		WithInterval(10_000),
		WithReplicates(2),
	).Run(Options{Parallel: 4})
	if rep.FirstError() == nil {
		t.Fatal("missing error from unknown workload")
	}
	var good, bad *ConfigResult
	for i := range rep.Configs {
		switch rep.Configs[i].Config.App {
		case "lu":
			good = &rep.Configs[i]
		case "no-such-workload":
			bad = &rep.Configs[i]
		}
	}
	if bad.Err() == nil || len(bad.Curves) != 0 || len(bad.Band.Points) != 0 {
		t.Errorf("failing config not fully failed: %+v", bad)
	}
	if good.Err() != nil || len(good.Curves) != 2 || len(good.Band.Points) == 0 {
		t.Errorf("sibling config damaged by failure: err=%v curves=%d", good.Err(), len(good.Curves))
	}
}

// TestSpecWithoutBaseline checks that an all-variant grid drops the
// implicit baseline row.
func TestSpecWithoutBaseline(t *testing.T) {
	s := NewSpec(
		WithApps("lu"),
		WithTweak("uniform-distance", "uniformD", func(c *machine.Config) { c.UniformDistance = true }),
		WithoutBaseline(),
	)
	cfgs := s.Configurations()
	if len(cfgs) != 1 || cfgs[0].Variant.Name != "uniform-distance" {
		t.Errorf("WithoutBaseline kept %+v", cfgs)
	}
}

// TestResolveApps checks the panel aliases used by -apps flags.
func TestResolveApps(t *testing.T) {
	paper := []string{"fmm", "lu", "equake", "art"}
	if got := ResolveApps(nil); !reflect.DeepEqual(got, paper) {
		t.Errorf("empty resolves to %v, want the paper panel", got)
	}
	if got := ResolveApps([]string{"extended"}); !reflect.DeepEqual(got,
		[]string{"fmm", "lu", "equake", "art", "ocean", "radix", "barnes", "water"}) {
		t.Errorf("extended panel = %v", got)
	}
	explicit := []string{"lu", "ocean"}
	if got := ResolveApps(explicit); !reflect.DeepEqual(got, explicit) {
		t.Errorf("explicit list rewritten to %v", got)
	}
	// Aliases expand inside mixed lists, order-preserving and deduped.
	if got := ResolveApps([]string{"adversarial", "lu"}); !reflect.DeepEqual(got,
		[]string{"fsstencil", "pagethrash", "lu"}) {
		t.Errorf("mixed alias list = %v", got)
	}
	if got := ResolveApps([]string{"lu", "paper"}); !reflect.DeepEqual(got,
		[]string{"lu", "fmm", "equake", "art"}) {
		t.Errorf("alias overlapping an explicit app = %v", got)
	}
	if _, ok := AppsPanel("galactic"); ok {
		t.Error("unknown panel accepted")
	}
}

// TestExtendedPanelCoVBehavior validates the kernels the extended
// panel exposes beyond the paper four: each must produce finite,
// phase-sensitive CoV curves (more than one operating point, finite
// CoV everywhere, and some detected CPI variation), not just register.
func TestExtendedPanelCoVBehavior(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	for _, app := range []string{"ocean", "radix", "barnes", "water"} {
		app := app
		t.Run(app, func(t *testing.T) {
			rc := RunConfig{
				Workload:             app,
				Size:                 workloads.SizeTest,
				Procs:                4,
				IntervalInstructions: 10_000,
				Seed:                 1,
			}
			c, err := RunCurve(rc, core.DetectorBBV)
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Curve.Points) < 2 {
				t.Fatalf("curve has %d points; need a real threshold trade-off", len(c.Curve.Points))
			}
			var maxCoV float64
			for _, p := range c.Curve.Points {
				if math.IsNaN(p.CoV) || math.IsInf(p.CoV, 0) || p.CoV < 0 {
					t.Fatalf("non-finite CoV point %+v", p)
				}
				if math.IsNaN(p.Phases) || p.Phases < 1 {
					t.Fatalf("degenerate phase count %+v", p)
				}
				if p.CoV > maxCoV {
					maxCoV = p.CoV
				}
			}
			if maxCoV == 0 {
				t.Error("flat CoV curve: the workload produced no phase-visible CPI variation")
			}
			// Phase sensitivity: coarse thresholds must trade CoV for
			// fewer phases — the curve spans more than one phase count.
			first, last := c.Curve.Points[0], c.Curve.Points[len(c.Curve.Points)-1]
			if first.Phases == last.Phases {
				t.Errorf("curve spans a single phase count (%v)", first.Phases)
			}
		})
	}
}

// TestETAEstimator checks the progress ETA arithmetic.
func TestETAEstimator(t *testing.T) {
	e := &ETA{start: time.Now().Add(-10 * time.Second)}
	elapsed, remaining := e.Observe(2, 6)
	if elapsed < 10*time.Second {
		t.Errorf("elapsed = %v, want ≥ 10s", elapsed)
	}
	// 2 cells took ~10s; 4 remain → ~20s.
	if remaining < 19*time.Second || remaining > 21*time.Second {
		t.Errorf("remaining = %v, want ~20s", remaining)
	}
	if _, rem := e.Observe(6, 6); rem != 0 {
		t.Errorf("completed run estimates %v remaining", rem)
	}
	if _, rem := e.Observe(0, 6); rem != 0 {
		t.Errorf("zero-progress estimate %v, want 0", rem)
	}
}
