package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"dsmphase/internal/trace"
)

// Per-cell shard streaming. A shard artifact is one JSON document
// written after every cell finished, so a worker that dies mid-shard
// leaves nothing behind and a retry restarts from zero. The stream is
// the durability sibling: while a shard runs, every completed cell is
// appended to a `<artifact>.cells.jsonl` file as one self-contained
// JSONL line the moment it completes. A re-run of the same shard reads
// the stream back, validates it against the plan (fingerprint, shard
// coordinates, cell count), skips every already-emitted cell and
// simulates only the remainder — and because each line carries the
// cell's full serialized result (wall timing, curve, summary, tuning
// rows, trace), the resumed artifact is byte-identical to one from an
// uninterrupted run.
//
// Line forms (one JSON object per line):
//
//	{"header":{"format":"dsmphase-cells/1","grid":"figure2",...}}
//	{"grid":"figure2","cell":{...ShardCell...}}
//
// A header opens each grid's section and repeats identically on every
// resume attempt; cell lines may interleave across grids freely. A
// truncated final line (the writer died mid-write) is ignored on read.

// CellStreamFormat is the versioned format tag of a cell stream. Keep
// docs/MERGE_FORMAT.md in lockstep on any change.
const CellStreamFormat = "dsmphase-cells/1"

// CellStreamPath derives the stream sibling's path from an artifact
// path ("shard0.json" → "shard0.cells.jsonl").
func CellStreamPath(artifact string) string {
	return strings.TrimSuffix(artifact, ".json") + ".cells.jsonl"
}

// CellStreamHeader identifies the plan a grid's streamed cells belong
// to. Resume refuses a stream whose header does not match the current
// plan exactly, so stale streams from different flags never leak cells
// into a run.
type CellStreamHeader struct {
	Format      string `json:"format"`
	Grid        string `json:"grid"`
	Fingerprint string `json:"fingerprint"`
	Shard       int    `json:"shard"`
	Of          int    `json:"of"`
	Cells       int    `json:"cells"`
}

// streamLine is the on-disk line union: exactly one of Header or Cell
// is set.
type streamLine struct {
	Header *CellStreamHeader `json:"header,omitempty"`
	Grid   string            `json:"grid,omitempty"`
	Cell   *ShardCell        `json:"cell,omitempty"`
}

// CellStream appends completed cells to a stream file. Append-mode and
// one Write syscall per line mean the data survives the writing
// process's death (it is in the kernel the moment the cell completes);
// a stream is single-writer — concurrent shard attempts must use
// distinct files.
type CellStream struct {
	mu  sync.Mutex
	f   *os.File
	err error // first write error; surfaced by Close
}

// OpenCellStream opens (creating or appending) a stream file.
func OpenCellStream(path string) (*CellStream, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &CellStream{f: f}, nil
}

// writeLine marshals one line and appends it with a single write.
func (cs *CellStream) writeLine(l streamLine) {
	buf, err := json.Marshal(l)
	if err == nil {
		buf = append(buf, '\n')
		_, err = cs.f.Write(buf)
	}
	cs.mu.Lock()
	if cs.err == nil {
		cs.err = err
	}
	cs.mu.Unlock()
}

// BeginGrid opens a grid section. Resume attempts repeat the identical
// header; the reader treats repeats as continuation.
func (cs *CellStream) BeginGrid(h CellStreamHeader) {
	h.Format = CellStreamFormat
	cs.writeLine(streamLine{Header: &h})
}

// appendCell streams one completed cell of a grid. Unlike the artifact,
// the stream never deduplicates traces across sibling cells — each
// line must be self-contained so any subset of lines resumes — so
// trace-enabled runs pay duplicate bytes here; the final artifact
// still deduplicates.
func (cs *CellStream) appendCell(grid string, r CellResult) {
	sc := newShardCell(r)
	if te, ok := r.Extra.(TracedExtra); ok && r.Err == nil {
		var sb strings.Builder
		for _, recs := range te.Records {
			if err := trace.WriteJSONL(&sb, recs); err != nil {
				cs.mu.Lock()
				if cs.err == nil {
					cs.err = fmt.Errorf("harness: streaming cell %d trace: %w", r.Index, err)
				}
				cs.mu.Unlock()
				return
			}
		}
		sc.Trace = sb.String()
	}
	cs.writeLine(streamLine{Grid: grid, Cell: &sc})
}

// Close flushes and reports the first write error, if any.
func (cs *CellStream) Close() error {
	err := cs.f.Close()
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.err != nil {
		return cs.err
	}
	return err
}

// StreamedGrid is one grid's recovered stream: its header and the
// cells captured before the writer stopped, in arrival order.
type StreamedGrid struct {
	Header CellStreamHeader
	Cells  []ShardCell
}

// Matches reports whether the recovered grid belongs to the given plan
// coordinates — the resume-safety gate.
func (g *StreamedGrid) Matches(name, fingerprint string, shard, of, cells int) bool {
	h := g.Header
	return h.Format == CellStreamFormat && h.Grid == name && h.Fingerprint == fingerprint &&
		h.Shard == shard && h.Of == of && h.Cells == cells
}

// ReadCellStream recovers a stream file's grids. A missing file is an
// empty (nil) result; a truncated or corrupt tail ends the read at the
// last intact line (everything before it is kept). Repeated identical
// headers are continuations; a grid whose header changes mid-stream is
// dropped entirely (it cannot be trusted).
func ReadCellStream(path string) (map[string]*StreamedGrid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	grids := map[string]*StreamedGrid{}
	poisoned := map[string]bool{}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var l streamLine
		if err := json.Unmarshal(line, &l); err != nil {
			break // torn tail: keep what we have
		}
		switch {
		case l.Header != nil:
			h := *l.Header
			if g, ok := grids[h.Grid]; ok {
				if g.Header != h {
					poisoned[h.Grid] = true
				}
				continue
			}
			grids[h.Grid] = &StreamedGrid{Header: h}
		case l.Cell != nil:
			if g, ok := grids[l.Grid]; ok {
				g.Cells = append(g.Cells, *l.Cell)
			}
			// A cell before any header is an impossible stream; drop it.
		}
	}
	for name := range poisoned {
		delete(grids, name)
	}
	return grids, nil
}

// RunShardStreamed is RunShard with durability: completed cells are
// appended to cs as they finish (cs nil disables streaming), and cells
// recovered from a previous attempt's stream (prior) are skipped —
// their serialized results are reused verbatim, so the returned result
// set (and any artifact built from it) is byte-identical to an
// uninterrupted run. Returns the plan-indexed results and how many
// cells were resumed rather than run.
//
// Callers must validate prior against the plan first (see
// StreamedGrid.Matches); a prior cell whose index is not part of this
// shard is an error. opts.Hook must match the original run's hook
// (e.g. TuningHook) so freshly-run cells carry the same payloads as
// resumed ones.
func (s *Spec) RunShardStreamed(grid string, shard, of int, opts Options, cs *CellStream, prior []ShardCell) (results []CellResult, resumed int, err error) {
	p := s.Plan()
	idxs := p.ShardIndices(shard, of)
	if cs != nil {
		cs.BeginGrid(CellStreamHeader{
			Grid:        grid,
			Fingerprint: p.Fingerprint(),
			Shard:       shard,
			Of:          of,
			Cells:       p.Len(),
		})
	}
	pos := make(map[int]int, len(idxs)) // plan index → position in idxs
	for j, i := range idxs {
		pos[i] = j
	}
	results = make([]CellResult, len(idxs))
	have := make([]bool, len(idxs))
	for _, sc := range prior {
		j, ok := pos[sc.Index]
		if !ok {
			return nil, 0, fmt.Errorf("harness: resume %s: streamed cell %d is not part of shard %d/%d", grid, sc.Index, shard, of)
		}
		if have[j] {
			continue // duplicate line (e.g. two resume attempts); first wins
		}
		r, err := sc.CellResult()
		if err != nil {
			return nil, 0, fmt.Errorf("harness: resume %s: %w", grid, err)
		}
		results[j] = r
		have[j] = true
		resumed++
	}
	// Compile the remainder into a sub-plan, remembering each sub-cell's
	// position so results land plan-indexed.
	sub := NewPlan()
	var subPos []int
	cells := p.Cells()
	for j, i := range idxs {
		if !have[j] {
			sub.AddCell(cells[i])
			subPos = append(subPos, j)
		}
	}
	inner := opts.Progress
	opts.Progress = func(done, total int, r CellResult) {
		r.Index = idxs[subPos[r.Index]] // sub-local → original plan index
		if cs != nil {
			cs.appendCell(grid, r)
		}
		if inner != nil {
			inner(done, total, r)
		}
	}
	for k, r := range RunPlan(sub, opts) {
		r.Index = idxs[subPos[k]]
		results[subPos[k]] = r
	}
	return results, resumed, nil
}
