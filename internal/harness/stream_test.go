package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmphase/internal/core"
	"dsmphase/internal/workloads"
)

// streamSpec is the small grid the stream tests run: 1 app × 1 proc ×
// 2 detectors × 2 replicates = 4 cells.
func streamSpec() *Spec {
	return NewSpec(
		WithApps("lu"),
		WithProcs(2),
		WithDetectors(core.DetectorBBV, core.DetectorBBVDDV),
		WithSize(workloads.SizeTest),
		WithInterval(20_000),
		WithSeed(1),
		WithReplicates(2),
	)
}

// normalizedGrid serializes a result set as an artifact grid with the
// one nondeterministic field (wall_ns) zeroed — everything else must
// match byte for byte between an uninterrupted and a resumed run.
func normalizedGrid(t *testing.T, s *Spec, results []CellResult) []byte {
	t.Helper()
	g, err := NewShardGrid("g", s, results, false, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Results {
		g.Results[i].WallNS = 0
	}
	buf, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// truncateStream rewrites a stream file keeping the header lines plus
// the first keep cell lines — simulating a run killed mid-shard (the
// durable prefix survives, nothing else does).
func truncateStream(t *testing.T, path string, keep int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	cells := 0
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, `{"header"`) {
			out = append(out, line)
			continue
		}
		if cells < keep {
			out = append(out, line)
			cells++
		}
	}
	if cells < keep {
		t.Fatalf("stream has only %d cell lines, want >= %d", cells, keep)
	}
	if err := os.WriteFile(path, []byte(strings.Join(out, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRunShardStreamedResume is the kill-and-resume contract: a shard
// killed mid-run (its stream truncated to a prefix) resumes from the
// stream, re-simulates only the missing cells, and produces an
// artifact byte-identical (modulo wall timing) — and a rendered report
// byte-identical, full stop — to an uninterrupted run.
func TestRunShardStreamedResume(t *testing.T) {
	s := streamSpec()
	dir := t.TempDir()
	streamPath := filepath.Join(dir, "shard_0_of_1.cells.jsonl")

	cs, err := OpenCellStream(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	full, resumed, err := s.RunShardStreamed("g", 0, 1, Options{Parallel: 2}, cs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Fatalf("fresh run resumed %d cells, want 0", resumed)
	}
	if len(full) != s.Plan().Len() {
		t.Fatalf("got %d results, want %d", len(full), s.Plan().Len())
	}

	// Kill the run after 2 durable cells, then resume.
	const keep = 2
	truncateStream(t, streamPath, keep)
	grids, err := ReadCellStream(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	sg, ok := grids["g"]
	if !ok {
		t.Fatal("truncated stream lost its grid section")
	}
	if !sg.Matches("g", s.Plan().Fingerprint(), 0, 1, s.Plan().Len()) {
		t.Fatal("recovered header does not match the plan")
	}
	if len(sg.Cells) != keep {
		t.Fatalf("recovered %d cells, want %d", len(sg.Cells), keep)
	}

	cs, err = OpenCellStream(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	opts := Options{Parallel: 2, Progress: func(done, total int, r CellResult) { ran++ }}
	got, resumed, err := s.RunShardStreamed("g", 0, 1, opts, cs, sg.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if resumed != keep {
		t.Fatalf("resumed %d cells, want %d", resumed, keep)
	}
	if want := s.Plan().Len() - keep; ran != want {
		t.Fatalf("resume re-simulated %d cells, want %d", ran, want)
	}

	if a, b := normalizedGrid(t, s, full), normalizedGrid(t, s, got); !bytes.Equal(a, b) {
		t.Errorf("resumed artifact differs from uninterrupted run:\n%s\nvs\n%s", a, b)
	}
	// The rendered report has no wall-clock at all, so it must match
	// byte for byte in every encoder format.
	for _, format := range EncoderNames() {
		enc, err := NewEncoder(format, "t")
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		if err := enc.Encode(&a, s.Assemble(full)); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(&b, s.Assemble(got)); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s report differs between uninterrupted and resumed run", format)
		}
	}

	// After the resume run, the stream holds every cell: a second resume
	// runs nothing.
	grids, err = ReadCellStream(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(grids["g"].Cells); n != s.Plan().Len() {
		t.Fatalf("stream holds %d cells after resume, want %d", n, s.Plan().Len())
	}
}

// TestReadCellStreamTornTail: a write torn mid-line (the writer died
// inside the final write) must not poison the intact prefix.
func TestReadCellStreamTornTail(t *testing.T) {
	s := streamSpec()
	dir := t.TempDir()
	path := filepath.Join(dir, "s.cells.jsonl")
	cs, err := OpenCellStream(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RunShardStreamed("g", 0, 1, Options{Parallel: 2}, cs, nil); err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final line in half.
	torn := data[:len(data)-len(data)/4]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	grids, err := ReadCellStream(path)
	if err != nil {
		t.Fatal(err)
	}
	g := grids["g"]
	if g == nil {
		t.Fatal("torn tail dropped the whole grid")
	}
	if len(g.Cells) == 0 || len(g.Cells) >= s.Plan().Len() {
		t.Fatalf("recovered %d cells from torn stream, want a strict prefix of %d", len(g.Cells), s.Plan().Len())
	}
	for _, sc := range g.Cells {
		if _, err := sc.CellResult(); err != nil {
			t.Fatalf("recovered cell %d does not round-trip: %v", sc.Index, err)
		}
	}
}

// TestReadCellStreamHeaderChange: a grid whose header changes
// mid-stream (two different plans interleaved into one file) cannot be
// trusted and is dropped whole; a missing file reads as empty.
func TestReadCellStreamHeaderChange(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.cells.jsonl")
	lines := []string{
		`{"header":{"format":"` + CellStreamFormat + `","grid":"g","fingerprint":"aaaa","shard":0,"of":1,"cells":4}}`,
		`{"header":{"format":"` + CellStreamFormat + `","grid":"g","fingerprint":"bbbb","shard":0,"of":1,"cells":4}}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	grids, err := ReadCellStream(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := grids["g"]; ok {
		t.Fatal("conflicting headers should drop the grid")
	}
	grids, err = ReadCellStream(filepath.Join(dir, "missing.cells.jsonl"))
	if err != nil || grids != nil {
		t.Fatalf("missing file: got (%v, %v), want (nil, nil)", grids, err)
	}
}

// TestRunShardStreamedRejectsForeignCell: a prior cell whose plan index
// does not belong to this shard is a hard error, not a silent merge.
func TestRunShardStreamedRejectsForeignCell(t *testing.T) {
	s := streamSpec()
	idxs := s.Plan().ShardIndices(0, 2)
	other := s.Plan().ShardIndices(1, 2)
	if len(idxs) == 0 || len(other) == 0 {
		t.Skip("degenerate partition")
	}
	foreign := []ShardCell{{Index: other[0]}}
	if _, _, err := s.RunShardStreamed("g", 0, 2, Options{}, nil, foreign); err == nil {
		t.Fatal("foreign prior cell accepted")
	}
}

// TestCellStreamPath pins the sibling naming convention the service's
// resume copy relies on.
func TestCellStreamPath(t *testing.T) {
	if got := CellStreamPath("d/shard_0_of_2.json"); got != "d/shard_0_of_2.cells.jsonl" {
		t.Fatalf("CellStreamPath = %q", got)
	}
}
