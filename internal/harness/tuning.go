package harness

import (
	"fmt"
	"time"

	"dsmphase/internal/core"
	"dsmphase/internal/machine"
	"dsmphase/internal/predictor"
	"dsmphase/internal/stats"
	"dsmphase/internal/tuning"
	"dsmphase/internal/workloads"
)

// The online adaptive-tuning driver: the closed-loop form of the paper's
// §II pipeline, run end to end on live simulations. For every cell of a
// Spec grid the engine simulates the workload, sweeps the detector's CoV
// curve, and — through the engine's CellHook, while the simulation is
// still resident — picks the detector's operating thresholds from that
// curve (the paper's prescription: lowest CoV within the phase budget),
// classifies each processor's recorded intervals into a live phase
// stream, and drives one tuning.AdaptiveLoop per (processor, predictor,
// controller) interval by interval through its online Step API. The
// per-interval hardware costs come from the canonical three-setting
// remote-aggressiveness model (TuningCosts). Replicates band every
// scorecard metric with 95% CIs exactly like Spec.Run does for CoV.

// DefaultPhaseBudget is the default maximum number of phases a tuning
// controller is willing to trial (see WithPhaseBudget).
const DefaultPhaseBudget = 8.0

// TuningHardwareConfigs is the number of hardware settings of the
// canonical tuning cost model: conservative, balanced and aggressive
// remote-access aggressiveness (think prefetch depth or weak-ordering
// window), targeted at the terciles of the interval DDS range.
const TuningHardwareConfigs = 3

// DefaultControllers returns the default controller axis of a tuning
// grid: one- and two-trial trial-and-error controllers.
func DefaultControllers() []ControllerSpec {
	return []ControllerSpec{
		{Name: "trial-1", TrialsPerConfig: 1},
		{Name: "trial-2", TrialsPerConfig: 2},
	}
}

// TuningCosts evaluates the canonical cost model over one processor's
// recorded intervals: costs[config][i] is interval i's objective under
// each of the TuningHardwareConfigs settings. Which setting wins depends
// on the interval's data distribution — an interval's cost rises with
// the mismatch between its normalized DDS (within the stream's observed
// range) and the setting's target level. This is exactly the variable a
// BBV cannot see: two intervals with identical code but different DDS
// need different settings, so only a DDS-aware detector hands the
// controller phases homogeneous enough to lock in the right one.
func TuningCosts(recs []core.IntervalSignature) [][]float64 {
	if len(recs) == 0 {
		costs := make([][]float64, TuningHardwareConfigs)
		for c := range costs {
			costs[c] = []float64{}
		}
		return costs
	}
	lo, hi := recs[0].DDS, recs[0].DDS
	for _, r := range recs {
		if r.DDS < lo {
			lo = r.DDS
		}
		if r.DDS > hi {
			hi = r.DDS
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	targets := []float64{1.0 / 6, 0.5, 5.0 / 6} // terciles of the DDS range
	costs := make([][]float64, len(targets))
	for c := range costs {
		costs[c] = make([]float64, len(recs))
	}
	for i, r := range recs {
		z := (r.DDS - lo) / span
		for c, t := range targets {
			mismatch := z - t
			if mismatch < 0 {
				mismatch = -mismatch
			}
			costs[c][i] = r.CPI() * (1 + 0.4*mismatch)
		}
	}
	return costs
}

// OperatingPoint picks a detector's operating thresholds from its CoV
// curve: the lowest-CoV point within the phase budget, exactly as the
// paper prescribes reading its curves. A degenerate curve (no point
// within budget) falls back to the single-phase thresholds.
func OperatingPoint(c stats.Curve, phaseBudget float64) (thBBV, thDDS float64) {
	best := stats.CurvePoint{CoV: -1}
	for _, p := range c.Points {
		if p.Phases <= phaseBudget && (best.CoV < 0 || p.CoV < best.CoV) {
			best = p
		}
	}
	if best.CoV < 0 {
		return 2.0, 0 // everything in one phase
	}
	return best.Threshold, best.ThresholdDDS
}

// TuningConfiguration identifies one row of a tuning scorecard: a grid
// Configuration crossed with a predictor and a controller.
type TuningConfiguration struct {
	Configuration
	// Predictor is the phase predictor's registry name.
	Predictor string
	// Controller is the tuning controller's spec.
	Controller ControllerSpec
}

// Label returns the row's display label
// ("lu 8P BBV+DDV markov/trial-1").
func (c TuningConfiguration) Label() string {
	return fmt.Sprintf("%s %s/%s", c.Configuration.Label(), c.Predictor, c.Controller.Name)
}

// TuningValue is one replicate's scorecard metrics, aggregated across
// the cell's per-processor adaptive loops.
type TuningValue struct {
	// WinRate is the fraction of intervals whose applied configuration
	// matched the clairvoyant per-interval best.
	WinRate float64
	// Regret is the relative cost over the clairvoyant controller.
	Regret float64
	// Convergence is the mean (across processors) interval count after
	// which every decision was a locked-in best configuration.
	Convergence float64
	// Accuracy is the phase-prediction accuracy across processors.
	Accuracy float64
	// Overhead is the fraction of intervals spent trialling.
	Overhead float64
}

// TuningMetric is one metric banded across replicates (mean ± 95% CI
// half-width over N replicate values).
type TuningMetric struct {
	Mean, Half float64
	N          int
}

// TuningConfigResult is one scorecard row: its per-replicate values and
// the replicate-banded metrics.
type TuningConfigResult struct {
	// Config identifies the row.
	Config TuningConfiguration
	// Values holds the successful replicates' metrics, replicate order.
	Values []TuningValue
	// Errors holds the failed replicate cells' errors.
	Errors []string
	// The replicate-banded scorecard columns.
	WinRate, Regret, Convergence, Accuracy, Overhead TuningMetric
}

// TuningReport is an executed tuning grid: one replicate-banded row per
// (variant, app, procs, detector, predictor, controller), in grid order
// (configuration-major, then predictor, then controller).
type TuningReport struct {
	// Size, Seed, Replicates and PhaseBudget echo the Spec.
	Size        workloads.Size
	Seed        uint64
	Replicates  int
	PhaseBudget float64
	// Predictors and Controllers echo the resolved tuning axes.
	Predictors  []string
	Controllers []ControllerSpec
	// Configs holds the scorecard rows in grid order.
	Configs []TuningConfigResult
	// Wall is the run's total wall-clock time; encoders must not emit it.
	Wall time.Duration
}

// FirstError returns the first failed row's first error, or nil.
func (r *TuningReport) FirstError() error {
	for _, c := range r.Configs {
		if len(c.Errors) > 0 {
			return fmt.Errorf("%s: %s", c.Config.Label(), c.Errors[0])
		}
	}
	return nil
}

// cellTuning is the engine-hook payload: one TuningValue per
// (predictor, controller) pair, predictor-major — the same order
// RunTuning enumerates scorecard rows.
type cellTuning struct {
	rows []TuningValue
}

// tuningHook builds the CellHook that closes the loop for one cell; see
// the package comment at the top of this file for the dataflow.
func tuningHook(preds []string, ctls []ControllerSpec, budget float64) CellHook {
	return func(c Cell, m *machine.Machine, curve CurveResult, _ machine.Summary) any {
		thBBV, thDDS := OperatingPoint(curve.Curve, budget)
		type procStream struct {
			ids   []int
			costs [][]float64
		}
		var procs []procStream
		for _, recs := range m.RecordsByProc() {
			if len(recs) == 0 {
				continue
			}
			procs = append(procs, procStream{
				ids:   core.ClassifyRecorded(c.Kind, core.DefaultFootprintSize, thBBV, thDDS, recs),
				costs: TuningCosts(recs),
			})
		}
		ct := cellTuning{rows: make([]TuningValue, 0, len(preds)*len(ctls))}
		costs := make([]float64, TuningHardwareConfigs)
		for _, pn := range preds {
			for _, cs := range ctls {
				var (
					intervals, tuningIntervals int
					oracleMatches              int
					mispredictions, scored     int
					totalScore, oracleScore    float64
					convergence                float64
				)
				for _, ps := range procs {
					// One loop per (processor, predictor, controller):
					// predictors and controllers are stateful, and the
					// paper's mechanism is per-node.
					p, _ := predictor.ByName(pn) // names validated by RunTuning
					loop := tuning.NewAdaptiveLoop(
						tuning.NewController(TuningHardwareConfigs, cs.TrialsPerConfig), p)
					for i, actual := range ps.ids {
						for cfg := range costs {
							costs[cfg] = ps.costs[cfg][i]
						}
						loop.Step(actual, costs)
					}
					out := loop.Outcome()
					intervals += out.Intervals
					tuningIntervals += out.TuningIntervals
					oracleMatches += out.OracleMatches
					mispredictions += out.Mispredictions
					if out.Intervals > 1 {
						scored += out.Intervals - 1
					}
					totalScore += out.TotalScore
					oracleScore += out.OracleScore
					convergence += float64(out.ConvergenceInterval)
				}
				v := TuningValue{Accuracy: 1}
				if intervals > 0 {
					v.WinRate = float64(oracleMatches) / float64(intervals)
					v.Overhead = float64(tuningIntervals) / float64(intervals)
				}
				if oracleScore > 0 {
					v.Regret = (totalScore - oracleScore) / oracleScore
				}
				if scored > 0 {
					v.Accuracy = 1 - float64(mispredictions)/float64(scored)
				}
				if len(procs) > 0 {
					v.Convergence = convergence / float64(len(procs))
				}
				ct.rows = append(ct.rows, v)
			}
		}
		return ct
	}
}

// RunTuning executes the Spec's tuning grid: every grid cell simulated
// and swept on the sharded engine, then driven through the online
// adaptive loop for every predictor × controller pair, aggregated into a
// replicate-banded TuningReport. Like Spec.Run, the output is
// independent of the worker count. Any Hook already set on opts is
// replaced by the tuning driver.
func (s *Spec) RunTuning(opts Options) (*TuningReport, error) {
	var err error
	if opts.Hook, err = s.TuningHook(); err != nil {
		return nil, err
	}
	start := time.Now()
	rep, err := s.AssembleTuning(RunPlan(s.Plan(), opts))
	if err != nil {
		return nil, err
	}
	rep.Wall = time.Since(start)
	return rep, nil
}

// TuningHook validates the Spec's tuning axes and returns the engine
// hook that drives the online adaptive loop for every cell. Sharded
// tuning runs (Spec.RunTuningShard) install the same hook, so a shard
// worker computes exactly the per-cell payload the merge-side
// AssembleTuning expects.
func (s *Spec) TuningHook() (CellHook, error) {
	preds := s.Predictors()
	for _, name := range preds {
		if _, err := predictor.ByName(name); err != nil {
			return nil, err
		}
	}
	for _, c := range s.Controllers() {
		if c.TrialsPerConfig < 1 {
			return nil, fmt.Errorf("harness: controller %q needs TrialsPerConfig >= 1", c.Name)
		}
	}
	return tuningHook(preds, s.Controllers(), s.PhaseBudget()), nil
}

// AssembleTuning folds plan-ordered cell results — whose Extra payloads
// were produced by the Spec's TuningHook — into the replicate-banded
// TuningReport: the aggregation half of RunTuning, split out so merged
// shard results flow through the identical path and produce identical
// scorecard bytes in every format.
func (s *Spec) AssembleTuning(results []CellResult) (*TuningReport, error) {
	preds := s.Predictors()
	ctls := s.Controllers()
	configs := s.Configurations()

	rep := &TuningReport{
		Size:        s.size,
		Seed:        s.seed,
		Replicates:  s.replicates,
		PhaseBudget: s.PhaseBudget(),
		Predictors:  preds,
		Controllers: ctls,
	}
	rows := len(preds) * len(ctls)
	for i, cfg := range configs {
		// Gather the configuration's replicate cells once; every row of
		// the configuration reads a different slot of each cell's payload.
		cells := make([]CellResult, s.replicates)
		for r := 0; r < s.replicates; r++ {
			cells[r] = results[i*s.replicates+r]
		}
		for j, pn := range preds {
			for k, cs := range ctls {
				row := TuningConfigResult{Config: TuningConfiguration{
					Configuration: cfg, Predictor: pn, Controller: cs,
				}}
				for _, cell := range cells {
					if cell.Err != nil {
						row.Errors = append(row.Errors, cell.Err.Error())
						continue
					}
					ct, ok := UnwrapExtra(cell.Extra).(cellTuning)
					if !ok || len(ct.rows) != rows {
						row.Errors = append(row.Errors, "tuning hook payload missing")
						continue
					}
					row.Values = append(row.Values, ct.rows[j*len(ctls)+k])
				}
				row.WinRate = bandMetric(row.Values, func(v TuningValue) float64 { return v.WinRate })
				row.Regret = bandMetric(row.Values, func(v TuningValue) float64 { return v.Regret })
				row.Convergence = bandMetric(row.Values, func(v TuningValue) float64 { return v.Convergence })
				row.Accuracy = bandMetric(row.Values, func(v TuningValue) float64 { return v.Accuracy })
				row.Overhead = bandMetric(row.Values, func(v TuningValue) float64 { return v.Overhead })
				rep.Configs = append(rep.Configs, row)
			}
		}
	}
	return rep, nil
}

// bandMetric summarizes one metric across replicate values with
// MeanCI95.
func bandMetric(values []TuningValue, get func(TuningValue) float64) TuningMetric {
	xs := make([]float64, len(values))
	for i, v := range values {
		xs[i] = get(v)
	}
	mean, half := stats.MeanCI95(xs)
	return TuningMetric{Mean: mean, Half: half, N: len(xs)}
}
