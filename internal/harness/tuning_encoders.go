package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TuningReport encoders: the scorecard analogues of the Report encoders,
// pure functions of the report's deterministic fields (never wall-clock
// timings), so every format is byte-identical across runs, worker counts
// and machines.

// TuningEncoder renders an executed TuningReport in one output format.
type TuningEncoder interface {
	// Name is the format's registry name ("text", "csv", ...).
	Name() string
	// Encode writes the scorecard.
	Encode(w io.Writer, r *TuningReport) error
}

// NewTuningEncoder returns the named tuning encoder ("text", "csv",
// "json", "markdown"). title is used by formats that carry a heading.
func NewTuningEncoder(name, title string) (TuningEncoder, error) {
	switch name {
	case "text":
		return tuningTextEncoder{title: title}, nil
	case "csv":
		return tuningCSVEncoder{}, nil
	case "json":
		return tuningJSONEncoder{}, nil
	case "markdown", "md":
		return tuningMarkdownEncoder{title: title}, nil
	default:
		return nil, fmt.Errorf("harness: unknown tuning encoder %q (want %v)", name, TuningEncoderNames())
	}
}

// TuningEncoderNames returns the registered tuning encoder names, sorted.
func TuningEncoderNames() []string {
	names := []string{"csv", "json", "markdown", "text"}
	sort.Strings(names)
	return names
}

// tuningTextEncoder renders aligned scorecard columns, one row per
// (configuration, predictor, controller); at several replicates each
// metric reads "mean±half".
type tuningTextEncoder struct{ title string }

func (tuningTextEncoder) Name() string { return "text" }

func (e tuningTextEncoder) Encode(w io.Writer, r *TuningReport) error {
	title := e.title
	if title == "" {
		title = "Adaptive tuning scorecard"
	}
	if _, err := fmt.Fprintf(w, "== %s ==  (size=%s, seed=%d, replicates=%d, budget=%.0f)\n\n",
		title, r.Size, r.Seed, r.Replicates, r.PhaseBudget); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-34s %-11s %-9s %-15s %-15s %-11s %-9s %-9s\n",
		"configuration", "predictor", "ctl", "win-rate", "regret", "converge", "accuracy", "overhead"); err != nil {
		return err
	}
	for _, c := range r.Configs {
		if len(c.Values) == 0 {
			if _, err := fmt.Fprintf(w, "%-34s %-11s %-9s failed: %s\n",
				c.Config.Configuration.Label(), c.Config.Predictor, c.Config.Controller.Name,
				firstError(c.Errors)); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%-34s %-11s %-9s %-15s %-15s %-11s %-9s %-9s\n",
			c.Config.Configuration.Label(), c.Config.Predictor, c.Config.Controller.Name,
			banded(c.WinRate, r.Replicates), banded(c.Regret, r.Replicates),
			fmt.Sprintf("%.1f", c.Convergence.Mean),
			fmt.Sprintf("%.4f", c.Accuracy.Mean), fmt.Sprintf("%.4f", c.Overhead.Mean)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// banded renders "mean" at one replicate and "mean±half" beyond.
func banded(m TuningMetric, replicates int) string {
	if replicates <= 1 {
		return fmt.Sprintf("%.4f", m.Mean)
	}
	return fmt.Sprintf("%.4f±%.4f", m.Mean, m.Half)
}

// firstError returns the first error string, or a placeholder.
func firstError(errs []string) string {
	if len(errs) == 0 {
		return "no replicate produced a value"
	}
	return errs[0]
}

// tuningCSVEncoder renders one row per scorecard entry with every
// metric's mean and 95% CI half-width — the plottable long form.
type tuningCSVEncoder struct{}

func (tuningCSVEncoder) Name() string { return "csv" }

func (tuningCSVEncoder) Encode(w io.Writer, r *TuningReport) error {
	if _, err := fmt.Fprintln(w, "variant,app,procs,detector,predictor,controller,"+
		"winrate_mean,winrate_half95,regret_mean,regret_half95,"+
		"convergence_mean,convergence_half95,accuracy_mean,accuracy_half95,"+
		"overhead_mean,overhead_half95,n"); err != nil {
		return err
	}
	for _, c := range r.Configs {
		if len(c.Values) == 0 {
			// Every replicate failed: empty metric fields (n=0), so a
			// consumer cannot mistake the failure for a 0% win rate.
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%s,%s,%s,,,,,,,,,,,0\n",
				variantName(c.Config.Variant), c.Config.App, c.Config.Procs, c.Config.Detector,
				c.Config.Predictor, c.Config.Controller.Name); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%d\n",
			variantName(c.Config.Variant), c.Config.App, c.Config.Procs, c.Config.Detector,
			c.Config.Predictor, c.Config.Controller.Name,
			ftoa(c.WinRate.Mean), ftoa(c.WinRate.Half),
			ftoa(c.Regret.Mean), ftoa(c.Regret.Half),
			ftoa(c.Convergence.Mean), ftoa(c.Convergence.Half),
			ftoa(c.Accuracy.Mean), ftoa(c.Accuracy.Half),
			ftoa(c.Overhead.Mean), ftoa(c.Overhead.Half),
			c.WinRate.N); err != nil {
			return err
		}
	}
	return nil
}

// tuningJSONEncoder renders the whole scorecard as one document,
// including per-row errors and per-replicate raw values — the
// serialization a cross-machine merge would consume.
type tuningJSONEncoder struct{}

func (tuningJSONEncoder) Name() string { return "json" }

type jsonTuningMetric struct {
	Mean float64 `json:"mean"`
	Half float64 `json:"half95"`
}

type jsonTuningValue struct {
	WinRate     float64 `json:"win_rate"`
	Regret      float64 `json:"regret"`
	Convergence float64 `json:"convergence"`
	Accuracy    float64 `json:"accuracy"`
	Overhead    float64 `json:"overhead"`
}

type jsonTuningRow struct {
	Variant     string            `json:"variant"`
	App         string            `json:"app"`
	Procs       int               `json:"procs"`
	Detector    string            `json:"detector"`
	Predictor   string            `json:"predictor"`
	Controller  string            `json:"controller"`
	Trials      int               `json:"trials_per_config"`
	N           int               `json:"n"`
	Errors      []string          `json:"errors,omitempty"`
	WinRate     jsonTuningMetric  `json:"win_rate"`
	Regret      jsonTuningMetric  `json:"regret"`
	Convergence jsonTuningMetric  `json:"convergence"`
	Accuracy    jsonTuningMetric  `json:"accuracy"`
	Overhead    jsonTuningMetric  `json:"overhead"`
	Replicates  []jsonTuningValue `json:"replicates"`
}

type jsonTuningReport struct {
	Size        string          `json:"size"`
	Seed        uint64          `json:"seed"`
	Replicates  int             `json:"replicates"`
	PhaseBudget float64         `json:"phase_budget"`
	Predictors  []string        `json:"predictors"`
	Controllers []string        `json:"controllers"`
	Rows        []jsonTuningRow `json:"rows"`
}

func (tuningJSONEncoder) Encode(w io.Writer, r *TuningReport) error {
	doc := jsonTuningReport{
		Size:        r.Size.String(),
		Seed:        r.Seed,
		Replicates:  r.Replicates,
		PhaseBudget: r.PhaseBudget,
		Predictors:  append([]string{}, r.Predictors...),
		Rows:        make([]jsonTuningRow, 0, len(r.Configs)),
	}
	for _, c := range r.Controllers {
		doc.Controllers = append(doc.Controllers, c.Name)
	}
	for _, c := range r.Configs {
		row := jsonTuningRow{
			Variant:     variantName(c.Config.Variant),
			App:         c.Config.App,
			Procs:       c.Config.Procs,
			Detector:    c.Config.Detector.String(),
			Predictor:   c.Config.Predictor,
			Controller:  c.Config.Controller.Name,
			Trials:      c.Config.Controller.TrialsPerConfig,
			N:           c.WinRate.N,
			Errors:      c.Errors,
			WinRate:     jsonTuningMetric{c.WinRate.Mean, c.WinRate.Half},
			Regret:      jsonTuningMetric{c.Regret.Mean, c.Regret.Half},
			Convergence: jsonTuningMetric{c.Convergence.Mean, c.Convergence.Half},
			Accuracy:    jsonTuningMetric{c.Accuracy.Mean, c.Accuracy.Half},
			Overhead:    jsonTuningMetric{c.Overhead.Mean, c.Overhead.Half},
			Replicates:  make([]jsonTuningValue, 0, len(c.Values)),
		}
		for _, v := range c.Values {
			row.Replicates = append(row.Replicates, jsonTuningValue{
				WinRate: v.WinRate, Regret: v.Regret, Convergence: v.Convergence,
				Accuracy: v.Accuracy, Overhead: v.Overhead,
			})
		}
		doc.Rows = append(doc.Rows, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// tuningMarkdownEncoder renders the win-rate scorecard table.
type tuningMarkdownEncoder struct{ title string }

func (tuningMarkdownEncoder) Name() string { return "markdown" }

func (e tuningMarkdownEncoder) Encode(w io.Writer, r *TuningReport) error {
	title := e.title
	if title == "" {
		title = "Adaptive tuning scorecard"
	}
	if _, err := fmt.Fprintf(w, "## %s (size=%s, seed=%d, replicates=%d, budget=%.0f)\n\n",
		title, r.Size, r.Seed, r.Replicates, r.PhaseBudget); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| variant | app | procs | detector | predictor | controller | win-rate | ±CI | regret | converge | accuracy | overhead |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|---|---|---|"); err != nil {
		return err
	}
	for _, c := range r.Configs {
		if len(c.Values) == 0 {
			if _, err := fmt.Fprintf(w, "| %s | %s | %d | %s | %s | %s | — | — | — | — | — | — |\n",
				variantName(c.Config.Variant), c.Config.App, c.Config.Procs, c.Config.Detector,
				c.Config.Predictor, c.Config.Controller.Name); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %d | %s | %s | %s | %.4f | %.4f | %+.2f%% | %.1f | %.4f | %.2f%% |\n",
			variantName(c.Config.Variant), c.Config.App, c.Config.Procs, c.Config.Detector,
			c.Config.Predictor, c.Config.Controller.Name,
			c.WinRate.Mean, c.WinRate.Half, 100*c.Regret.Mean,
			c.Convergence.Mean, c.Accuracy.Mean, 100*c.Overhead.Mean); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	// A failed cell surfaces in every predictor × controller row of its
	// configuration; report each (configuration, error) once.
	seen := map[string]bool{}
	for _, c := range r.Configs {
		for _, msg := range c.Errors {
			key := c.Config.Configuration.Label() + "\x00" + msg
			if seen[key] {
				continue
			}
			seen[key] = true
			if _, err := fmt.Fprintf(w, "- failed `%s`: %s\n", c.Config.Configuration.Label(), msg); err != nil {
				return err
			}
		}
	}
	return nil
}
