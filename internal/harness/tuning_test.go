package harness

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"dsmphase/internal/core"
	"dsmphase/internal/stats"
	"dsmphase/internal/workloads"
)

// tuningSpec builds the small end-to-end grid the tuning tests share:
// one real simulated workload, both detectors, every predictor, one
// controller.
func tuningSpec(opts ...Option) *Spec {
	base := []Option{
		WithApps("lu"),
		WithProcs(4),
		WithDetectors(core.DetectorBBV, core.DetectorBBVDDV),
		WithSize(workloads.SizeTest),
		WithInterval(40_000),
		WithSeed(1),
		WithControllers(ControllerSpec{Name: "trial-1", TrialsPerConfig: 1}),
	}
	return NewSpec(append(base, opts...)...)
}

// tuningReport memoizes the shared grid run across tests.
var tuningReport = sync.OnceValue(func() *TuningReport {
	rep, err := tuningSpec().RunTuning(Options{Parallel: 4})
	if err != nil {
		panic(err)
	}
	return rep
})

// row finds a scorecard row by detector and predictor.
func row(t *testing.T, rep *TuningReport, kind core.DetectorKind, pred string) TuningConfigResult {
	t.Helper()
	for _, c := range rep.Configs {
		if c.Config.Detector == kind && c.Config.Predictor == pred {
			return c
		}
	}
	t.Fatalf("no row for %s/%s", kind, pred)
	return TuningConfigResult{}
}

// TestRunTuningEndToEnd closes the loop on a real simulation grid and
// checks the scorecard's structure and the headline ordering: a better
// predictor achieves at least the win rate of the naive last-phase
// loop, with higher prediction accuracy.
func TestRunTuningEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed tuning run")
	}
	rep := tuningReport()
	if err := rep.FirstError(); err != nil {
		t.Fatal(err)
	}
	// detectors × predictors × controllers rows, grid order.
	if want := 2 * len(rep.Predictors) * len(rep.Controllers); len(rep.Configs) != want {
		t.Fatalf("rows = %d, want %d", len(rep.Configs), want)
	}
	for _, c := range rep.Configs {
		if len(c.Values) != rep.Replicates {
			t.Errorf("%s: %d values, want %d", c.Config.Label(), len(c.Values), rep.Replicates)
		}
		for _, v := range c.Values {
			if v.WinRate < 0 || v.WinRate > 1 {
				t.Errorf("%s: win rate %v out of range", c.Config.Label(), v.WinRate)
			}
			if v.Overhead < 0 || v.Overhead > 1 {
				t.Errorf("%s: overhead %v out of range", c.Config.Label(), v.Overhead)
			}
			if v.Accuracy < 0 || v.Accuracy > 1 {
				t.Errorf("%s: accuracy %v out of range", c.Config.Label(), v.Accuracy)
			}
			if v.Regret < 0 {
				t.Errorf("%s: negative regret %v — the loop beat the oracle", c.Config.Label(), v.Regret)
			}
			if v.Convergence < 0 {
				t.Errorf("%s: negative convergence %v", c.Config.Label(), v.Convergence)
			}
		}
	}
	for _, kind := range []core.DetectorKind{core.DetectorBBV, core.DetectorBBVDDV} {
		last := row(t, rep, kind, "last-phase")
		markov := row(t, rep, kind, "markov")
		if markov.WinRate.Mean < last.WinRate.Mean {
			t.Errorf("%s: markov win rate %v below last-phase %v",
				kind, markov.WinRate.Mean, last.WinRate.Mean)
		}
		if markov.Accuracy.Mean < last.Accuracy.Mean {
			t.Errorf("%s: markov accuracy %v below last-phase %v",
				kind, markov.Accuracy.Mean, last.Accuracy.Mean)
		}
	}
}

// TestRunTuningDeterministic pins the engine-hook path's worker-count
// independence: the serial and parallel scorecards must be
// byte-identical in every encoder format.
func TestRunTuningDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed tuning run")
	}
	serial, err := tuningSpec().RunTuning(Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := tuningSpec().RunTuning(Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range TuningEncoderNames() {
		enc, err := NewTuningEncoder(name, "determinism")
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		if err := enc.Encode(&a, serial); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(&b, parallel); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s scorecard differs between -parallel 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				name, a.String(), b.String())
		}
	}
}

// TestRunTuningValidation checks unknown predictors and degenerate
// controllers are rejected before any simulation runs.
func TestRunTuningValidation(t *testing.T) {
	if _, err := tuningSpec(WithPredictors("psychic")).RunTuning(Options{}); err == nil {
		t.Error("unknown predictor accepted")
	}
	if _, err := tuningSpec(WithControllers(ControllerSpec{Name: "zero"})).RunTuning(Options{}); err == nil {
		t.Error("zero-trial controller accepted")
	}
}

// TestRunTuningIsolatesFailedCells checks a failing workload reports
// per-row errors without sinking the run.
func TestRunTuningIsolatesFailedCells(t *testing.T) {
	rep, err := NewSpec(
		WithApps("nope"),
		WithProcs(2),
		WithSize(workloads.SizeTest),
		WithPredictors("last-phase"),
		WithControllers(ControllerSpec{Name: "trial-1", TrialsPerConfig: 1}),
	).RunTuning(Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.FirstError(); err == nil {
		t.Fatal("failed workload produced no row error")
	}
	for _, c := range rep.Configs {
		if len(c.Errors) == 0 {
			t.Errorf("%s: no error recorded", c.Config.Label())
		}
		if len(c.Values) != 0 {
			t.Errorf("%s: values from a failed cell", c.Config.Label())
		}
	}
	var md bytes.Buffer
	enc, _ := NewTuningEncoder("markdown", "failures")
	if err := enc.Encode(&md, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "failed `nope") {
		t.Errorf("markdown scorecard does not surface the failure:\n%s", md.String())
	}
	// The CSV long form must not render failed rows as zero metrics —
	// empty fields with n=0 keep them distinguishable from a real 0%.
	var csv bytes.Buffer
	enc, _ = NewTuningEncoder("csv", "failures")
	if err := enc.Encode(&csv, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "nope,2,BBV,last-phase,trial-1,,,,,,,,,,,0\n") {
		t.Errorf("csv scorecard renders failed rows wrong:\n%s", csv.String())
	}
}

// TestOperatingPoint checks threshold selection within a phase budget.
func TestOperatingPoint(t *testing.T) {
	c := stats.Curve{Points: []stats.CurvePoint{
		{Phases: 2, CoV: 0.5, Threshold: 0.8, ThresholdDDS: 0.1},
		{Phases: 6, CoV: 0.2, Threshold: 0.4, ThresholdDDS: 0.2},
		{Phases: 20, CoV: 0.05, Threshold: 0.1, ThresholdDDS: 0.3},
	}}
	if thB, thD := OperatingPoint(c, 8); thB != 0.4 || thD != 0.2 {
		t.Errorf("OperatingPoint(budget=8) = (%v, %v), want (0.4, 0.2)", thB, thD)
	}
	if thB, thD := OperatingPoint(c, 100); thB != 0.1 || thD != 0.3 {
		t.Errorf("OperatingPoint(budget=100) = (%v, %v), want (0.1, 0.3)", thB, thD)
	}
	// No point within budget: the single-phase fallback.
	if thB, thD := OperatingPoint(c, 1); thB != 2.0 || thD != 0 {
		t.Errorf("OperatingPoint(budget=1) = (%v, %v), want (2, 0)", thB, thD)
	}
}

// TestTuningCosts pins the cost model's shape: one row per hardware
// setting, and the per-interval minimum goes to the setting whose
// target is nearest the interval's normalized DDS.
func TestTuningCosts(t *testing.T) {
	recs := []core.IntervalSignature{
		{DDS: 0.0, Instructions: 100, Cycles: 200},
		{DDS: 0.5, Instructions: 100, Cycles: 200},
		{DDS: 1.0, Instructions: 100, Cycles: 200},
	}
	costs := TuningCosts(recs)
	if len(costs) != TuningHardwareConfigs {
		t.Fatalf("%d cost rows, want %d", len(costs), TuningHardwareConfigs)
	}
	// Empty input keeps the shape instead of panicking (the facade
	// exports TuningCosts, so callers may hand it an idle processor).
	empty := TuningCosts(nil)
	if len(empty) != TuningHardwareConfigs || len(empty[0]) != 0 {
		t.Errorf("TuningCosts(nil) shape = %d×%d", len(empty), len(empty[0]))
	}
	// Interval 0 is local-heavy (z=0): conservative (config 0) wins.
	// Interval 1 is balanced (z=0.5): config 1. Interval 2: config 2.
	for i, want := range []int{0, 1, 2} {
		best := 0
		for c := 1; c < len(costs); c++ {
			if costs[c][i] < costs[best][i] {
				best = c
			}
		}
		if best != want {
			t.Errorf("interval %d: best config %d, want %d", i, best, want)
		}
	}
}
