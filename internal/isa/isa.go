// Package isa defines the minimal instruction representation consumed by
// the DSM machine model. Workload generators emit streams of Inst values;
// the machine charges timing per instruction and feeds branch and memory
// instructions to the phase-detection hardware.
//
// The representation deliberately carries only what the paper's detectors
// observe: an opcode class, a static PC (for BBV hashing), a data address
// (for home-node classification), and a taken bit for branches (for the
// gshare predictor).
package isa

import "fmt"

// Op is the instruction class. The timing model charges different
// functional units per class; the detectors only look at Branch
// (BBV accumulator) and Load/Store (DDV frequency matrix).
type Op uint8

const (
	// OpInt is a simple integer ALU operation.
	OpInt Op = iota
	// OpFP is a floating-point operation (uses an FPU slot).
	OpFP
	// OpLoad is a memory read.
	OpLoad
	// OpStore is a memory write.
	OpStore
	// OpBranch is a conditional branch; Taken records its outcome.
	OpBranch
	// OpSync is a synchronization instruction (barrier arrival). Sync
	// instructions are excluded from interval instruction counts, per the
	// paper ("committed non-synchronization instructions").
	OpSync
	numOps
)

// NumOps is the number of distinct instruction classes.
const NumOps = int(numOps)

// String returns a short mnemonic for the opcode.
func (o Op) String() string {
	switch o {
	case OpInt:
		return "int"
	case OpFP:
		return "fp"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	case OpSync:
		return "sync"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// IsMem reports whether the opcode accesses memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// Inst is one dynamic instruction.
type Inst struct {
	// PC is the static instruction address. Workloads assign stable,
	// distinct PCs to their static code points so the BBV hash sees a
	// realistic basic-block space.
	PC uint32
	// Addr is the effective byte address for loads and stores.
	Addr uint64
	// Op is the instruction class.
	Op Op
	// Taken is the branch outcome (branches only).
	Taken bool
}

// Emitter accumulates instructions into a caller-owned buffer. Workload
// kernels use it as a tiny assembly DSL: each call appends one or more
// instructions. The zero value is not usable; construct with NewEmitter.
type Emitter struct {
	buf []Inst
}

// NewEmitter returns an Emitter that appends into a fresh buffer with the
// given capacity hint.
func NewEmitter(capHint int) *Emitter {
	return &Emitter{buf: make([]Inst, 0, capHint)}
}

// Reset discards buffered instructions, retaining capacity.
func (e *Emitter) Reset() { e.buf = e.buf[:0] }

// Len returns the number of buffered instructions.
func (e *Emitter) Len() int { return len(e.buf) }

// Take returns the buffered instructions. The returned slice aliases the
// emitter's buffer and is invalidated by the next Reset.
func (e *Emitter) Take() []Inst { return e.buf }

// Int emits n integer ALU operations at the given PC.
func (e *Emitter) Int(pc uint32, n int) {
	for i := 0; i < n; i++ {
		e.buf = append(e.buf, Inst{Op: OpInt, PC: pc})
	}
}

// FP emits n floating-point operations at the given PC.
func (e *Emitter) FP(pc uint32, n int) {
	for i := 0; i < n; i++ {
		e.buf = append(e.buf, Inst{Op: OpFP, PC: pc})
	}
}

// Load emits a load from addr.
func (e *Emitter) Load(pc uint32, addr uint64) {
	e.buf = append(e.buf, Inst{Op: OpLoad, PC: pc, Addr: addr})
}

// Store emits a store to addr.
func (e *Emitter) Store(pc uint32, addr uint64) {
	e.buf = append(e.buf, Inst{Op: OpStore, PC: pc, Addr: addr})
}

// Branch emits a conditional branch at pc with the given outcome.
func (e *Emitter) Branch(pc uint32, taken bool) {
	e.buf = append(e.buf, Inst{Op: OpBranch, PC: pc, Taken: taken})
}

// Sync emits a synchronization (barrier-arrival) instruction.
func (e *Emitter) Sync(pc uint32) {
	e.buf = append(e.buf, Inst{Op: OpSync, PC: pc})
}

// Append emits an already-formed instruction verbatim. Trace replay
// uses this to re-issue externally captured streams through the same
// buffer discipline the synthetic kernels use.
func (e *Emitter) Append(in Inst) {
	e.buf = append(e.buf, in)
}

// LoopBranch emits the backward branch that closes a counted loop:
// taken for every iteration except the last. Call once per iteration with
// the current index i and trip count n.
func (e *Emitter) LoopBranch(pc uint32, i, n int) {
	e.Branch(pc, i+1 < n)
}
