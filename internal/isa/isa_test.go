package isa

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpInt:    "int",
		OpFP:     "fp",
		OpLoad:   "load",
		OpStore:  "store",
		OpBranch: "branch",
		OpSync:   "sync",
		Op(99):   "op(99)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestIsMem(t *testing.T) {
	if !OpLoad.IsMem() || !OpStore.IsMem() {
		t.Error("loads and stores must be memory ops")
	}
	for _, op := range []Op{OpInt, OpFP, OpBranch, OpSync} {
		if op.IsMem() {
			t.Errorf("%v.IsMem() = true, want false", op)
		}
	}
}

func TestEmitterCounts(t *testing.T) {
	e := NewEmitter(16)
	e.Int(1, 3)
	e.FP(2, 2)
	e.Load(3, 0x100)
	e.Store(4, 0x200)
	e.Branch(5, true)
	e.Sync(6)
	if e.Len() != 9 {
		t.Fatalf("Len = %d, want 9", e.Len())
	}
	buf := e.Take()
	wantOps := []Op{OpInt, OpInt, OpInt, OpFP, OpFP, OpLoad, OpStore, OpBranch, OpSync}
	for i, w := range wantOps {
		if buf[i].Op != w {
			t.Errorf("inst %d op = %v, want %v", i, buf[i].Op, w)
		}
	}
	if buf[5].Addr != 0x100 || buf[6].Addr != 0x200 {
		t.Error("load/store addresses not preserved")
	}
	if !buf[7].Taken {
		t.Error("branch taken bit not preserved")
	}
}

func TestEmitterReset(t *testing.T) {
	e := NewEmitter(4)
	e.Int(1, 10)
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", e.Len())
	}
	e.Int(2, 1)
	if e.Len() != 1 {
		t.Fatalf("Len after re-emit = %d, want 1", e.Len())
	}
}

func TestLoopBranchOutcomes(t *testing.T) {
	e := NewEmitter(8)
	n := 5
	for i := 0; i < n; i++ {
		e.LoopBranch(7, i, n)
	}
	buf := e.Take()
	for i := 0; i < n-1; i++ {
		if !buf[i].Taken {
			t.Errorf("iteration %d: backward branch should be taken", i)
		}
	}
	if buf[n-1].Taken {
		t.Error("final iteration: backward branch should fall through")
	}
}

// Property: emitting k ints always grows the buffer by exactly k, and
// every emitted instruction carries the requested PC.
func TestEmitterIntProperty(t *testing.T) {
	f := func(pc uint32, kRaw uint8) bool {
		k := int(kRaw % 64)
		e := NewEmitter(0)
		e.Int(pc, k)
		if e.Len() != k {
			return false
		}
		for _, in := range e.Take() {
			if in.PC != pc || in.Op != OpInt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
