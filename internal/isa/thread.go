package isa

// Thread is a resumable instruction-stream generator: one logical thread
// of a parallel workload. The machine pulls batches on demand; a batch
// boundary carries no semantic meaning (it is purely a buffering
// granularity), except that Sync instructions mark barrier arrivals.
type Thread interface {
	// NextBatch emits the thread's next chunk of instructions into e
	// (which the caller has Reset). It returns false — emitting nothing —
	// when the thread has run to completion.
	NextBatch(e *Emitter) bool
}

// ThreadFunc adapts a function to the Thread interface.
type ThreadFunc func(e *Emitter) bool

// NextBatch calls f.
func (f ThreadFunc) NextBatch(e *Emitter) bool { return f(e) }
