package machine

import (
	"testing"

	"dsmphase/internal/coherence"
	"dsmphase/internal/isa"
)

// stepThread is an endless bounded-footprint workload for steady-state
// step measurement: a fixed basic block (int ops, a load cycling
// through a small region, a branch) that never completes, so every
// committed instruction after warm-up exercises the same hot path.
type stepThread struct {
	off uint64
	pc  uint32
}

func (t *stepThread) NextBatch(e *isa.Emitter) bool {
	for i := 0; i < 256; i++ {
		e.Int(t.pc, 2)
		e.Load(t.pc+4, AddrAt(0, t.off))
		t.off = (t.off + 32) & (1<<14 - 1)
		e.Branch(t.pc+8, i%7 != 0)
	}
	return true
}

// benchMachine builds a 1-proc machine over the endless thread — the
// pure step path, no scheduling or network in the way.
func benchMachine(interval uint64) *Machine {
	return benchMachineProto(interval, coherence.KindDirectory)
}

// benchMachineProto is benchMachine with an explicit coherence backend.
func benchMachineProto(interval uint64, proto coherence.Kind) *Machine {
	cfg := DefaultConfig(1)
	cfg.IntervalInstructions = interval
	cfg.Protocol = proto
	return New(cfg, []isa.Thread{&stepThread{}})
}

// BenchmarkStep measures the machine's per-committed-instruction cost —
// the innermost loop everything in ISSUE/ROADMAP scale arguments
// multiplies by — including its share of interval ends. ReportAllocs
// makes any per-instruction or per-interval allocation regression
// visible as a non-zero allocs/op. The directory backend keeps the
// bare "BenchmarkStep" series name (BENCH_baseline.json tracks it);
// the other backends run under BenchmarkStepProtocol as
// protocol-suffixed sub-benchmarks (a b.Run here would demote the bare
// series to an unreported parent).
func BenchmarkStep(b *testing.B) {
	runStepBench(b, coherence.KindDirectory)
}

// BenchmarkStepProtocol is BenchmarkStep for every non-default
// coherence backend.
func BenchmarkStepProtocol(b *testing.B) {
	for _, proto := range coherence.Kinds() {
		if proto == coherence.KindDirectory {
			continue
		}
		b.Run(proto.String(), func(b *testing.B) { runStepBench(b, proto) })
	}
}

func runStepBench(b *testing.B, proto coherence.Kind) {
	m := benchMachineProto(10_000, proto)
	p := m.procs[0]
	// Warm up: populate caches, directory map, first records/arena
	// growth steps.
	for i := 0; i < 50_000; i++ {
		if err := m.step(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.step(p); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStepSteadyStateDoesNotAllocate is the hard form of the
// BenchmarkStep allocs/op readout: after warm-up, committing tens of
// thousands of instructions — interval ends included — performs no
// heap allocation. Record-slice and BBV-arena growth are amortized
// warm-up costs; the budget below tolerates only their rare chunk
// boundaries landing inside the measured window.
func TestStepSteadyStateDoesNotAllocate(t *testing.T) {
	m := benchMachine(500)
	p := m.procs[0]
	for i := 0; i < 60_000; i++ {
		if err := m.step(p); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(5, func() {
		for i := 0; i < 10_000; i++ {
			if err := m.step(p); err != nil {
				t.Fatal(err)
			}
		}
	})
	// 10k instructions = 20 interval ends per run. Anything ≥ 1
	// alloc/run means a per-interval (or worse) allocation crept back
	// into the hot path.
	if avg >= 1 {
		t.Errorf("steady-state step path allocates: %.1f allocs per 10k instructions, want < 1", avg)
	}
}
