// Package machine assembles the simulated DSM multiprocessor of Table I
// and drives parallel workloads through it, capturing per-interval phase
// signatures (BBV snapshot, DDS, CPI) for the detectors in internal/core.
//
// Scheduling is min-clock: the machine always advances the processor
// with the smallest local cycle count (ties to the lowest processor ID).
// Combined with busy-until accounting in the network links, memory banks
// and directories, this yields deterministic, contention-sensitive
// timing without a global event queue. The production scheduler executes
// the min-clock processor in batches up to the runner-up's clock
// (run-until-horizon, sched.go), which commits the exact interleaving of
// the per-instruction scan at a fraction of the scheduling cost.
package machine

import (
	"dsmphase/internal/cache"
	"dsmphase/internal/coherence"
	"dsmphase/internal/core"
	"dsmphase/internal/cpu"
	"dsmphase/internal/memory"
	"dsmphase/internal/network"
)

// HomeShift is the address bit where the home node ID starts: workloads
// build addresses as home<<HomeShift | offset, giving every node a
// private 4 GiB region of the physical address space.
const HomeShift = 32

// AddrAt returns a byte address homed at node h with the given offset
// within the node's region.
func AddrAt(h int, offset uint64) uint64 {
	return uint64(h)<<HomeShift | (offset & (1<<HomeShift - 1))
}

// Config describes one simulated system instance.
type Config struct {
	// Procs is the node count (1–64; powers of two for the hypercube).
	Procs int
	// IntervalInstructions is the per-processor sampling interval in
	// committed non-synchronization instructions. The paper uses
	// 3M / Procs so that phase (and tuning) counts stay comparable as
	// the system scales.
	IntervalInstructions uint64
	// AccumulatorSize and FootprintSize configure the detector hardware
	// (paper: 32 and 32).
	AccumulatorSize int
	FootprintSize   int

	L1    cache.Config
	L2    cache.Config
	Mem   memory.Config
	Net   network.Config
	CPU   cpu.Config
	Costs coherence.Costs
	// Topology selects the interconnect (default: the paper's hypercube;
	// network.KindMesh2D is the ablation alternative).
	Topology network.Kind
	// Protocol selects the coherence backend (default: the line-granular
	// directory-MSI engine; coherence.KindIVY is the page-granular DSM
	// alternative).
	Protocol coherence.Kind
	// PageBytes is the IVY page size; zero selects
	// coherence.DefaultPageBytes. Ignored by the directory backend.
	PageBytes int

	// BarrierCycles is the release overhead charged when a barrier opens.
	BarrierCycles float64
	// ChargeDDSGather models the interval-end F-vector exchange as real
	// network messages (the paper argues the cost is negligible; this
	// lets the claim be measured).
	ChargeDDSGather bool
	// DDS selects ablation variants of the DDS computation.
	DDS core.DDSOptions
	// UniformDistance replaces the hop-based distance matrix with
	// all-ones (ablation).
	UniformDistance bool
	// MaxInstructions, when non-zero, aborts the run after this many
	// committed instructions per processor (runaway protection).
	MaxInstructions uint64
	// NaiveScheduler selects the original per-instruction min-scan
	// scheduler instead of the run-until-horizon loop. The two produce
	// byte-identical output (TestSchedulerEquivalence); the naive loop
	// is O(instrs × Procs) and exists as the test oracle.
	NaiveScheduler bool
	// Online, when non-nil, runs a hardware phase detector on every
	// processor during the simulation: each interval record carries the
	// phase ID the hardware assigned at interval end (exactly what the
	// offline ClassifyRecorded replay computes at the same thresholds —
	// property-tested). With Online nil, records carry PhaseID -1.
	Online *OnlineConfig
}

// OnlineConfig configures the in-simulation phase detector.
type OnlineConfig struct {
	Kind  core.DetectorKind
	ThBBV float64
	ThDDS float64
}

// DefaultConfig returns the Table I system for the given node count,
// with the paper's 3M/Procs sampling interval.
func DefaultConfig(procs int) Config {
	return Config{
		Procs:                procs,
		IntervalInstructions: 3_000_000 / uint64(procs),
		AccumulatorSize:      core.DefaultAccumulatorSize,
		FootprintSize:        core.DefaultFootprintSize,
		L1:                   cache.L1Default(),
		L2:                   cache.L2Default(),
		Mem:                  memory.DefaultConfig(),
		Net:                  network.DefaultConfig(),
		CPU:                  cpu.DefaultConfig(),
		Costs:                coherence.DefaultCosts(),
		BarrierCycles:        200,
		ChargeDDSGather:      true,
	}
}

// TableI returns the architecture summary rows of the paper's Table I,
// derived from this configuration (for cmd/dsmsim -config and the
// documentation tests).
func (c Config) TableI() [][2]string {
	return [][2]string{
		{"Processor Frequency", "2GHz"},
		{"Functional Units", "6 ALU, 4 FPU"},
		{"Fetch/Issue/Commit", "6/6/6"},
		{"Register File", "128 Int, 128 FP"},
		{"Branch Predictor", "2,048-entry gshare"},
		{"L1", "16kB, direct-mapped, 1 cycle"},
		{"L2", "2MB, 8-way, 32B, 12 cycles"},
		{"Memory", "SDRAM interleaved, 75ns, 2.6GB/s"},
		{"Network", "Hypercube, wormhole, 400MHz pipelined router, 16ns pin-to-pin"},
	}
}
