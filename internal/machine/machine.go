package machine

import (
	"fmt"
	"math"
	"math/bits"

	"dsmphase/internal/coherence"
	"dsmphase/internal/core"
	"dsmphase/internal/cpu"
	"dsmphase/internal/isa"
	"dsmphase/internal/network"
)

// proc is one simulated processor's private state.
type proc struct {
	id    int
	clock float64 // local cycle count
	model *cpu.Model
	acc   *core.Accumulator
	wss   core.WSSignature
	freq  *core.FrequencyMatrix
	// table is the online footprint table (nil when classification is
	// offline-only).
	table *core.FootprintTable

	thread  isa.Thread
	emitter *isa.Emitter
	buf     []isa.Inst
	pos     int

	done      bool
	atBarrier bool

	intervalStart float64
	instrs        uint64 // non-sync instructions in current interval
	intervalIdx   int
	localAcc      uint64
	remoteAcc     uint64

	totalInstrs uint64
	totalSync   uint64

	records []core.IntervalSignature
}

// Machine is one assembled DSM system plus the workload threads bound to
// its processors.
type Machine struct {
	cfg   Config
	procs []*proc
	net   network.Topology
	proto coherence.Protocol
	// home duplicates the protocol's byte-address→home mapping as a
	// concrete, inlinable HomeMap: every backend homes an address at
	// (addr >> HomeShift) % Procs regardless of its coherence granule,
	// and the commit loop calls it once per memory access — an
	// interface dispatch there costs measurable throughput.
	home coherence.HomeMap
	dist *core.DistanceMatrix

	// scratch for interval-end DDS gathering (reused every interval so
	// the endInterval path does not allocate)
	gatherVecs [][]uint64
	contention []uint64
	// bbvArena backs the BBV snapshots stored in interval records: one
	// chunk serves bbvArenaChunk intervals, so steady-state recording
	// allocates once per chunk instead of once per interval.
	bbvArena []float64
	barriers uint64
}

// bbvArenaChunk is the number of interval BBV snapshots carved from one
// arena allocation.
const bbvArenaChunk = 128

// nextBBV returns a fresh arena-backed slice for one interval's BBV.
func (m *Machine) nextBBV() []float64 {
	size := m.cfg.AccumulatorSize
	if len(m.bbvArena) < size {
		m.bbvArena = make([]float64, bbvArenaChunk*size)
	}
	out := m.bbvArena[:size:size]
	m.bbvArena = m.bbvArena[size:]
	return out
}

// New assembles a machine and binds one thread per processor. The number
// of threads must equal cfg.Procs.
func New(cfg Config, threads []isa.Thread) *Machine {
	if cfg.Procs <= 0 {
		panic("machine: need at least one processor")
	}
	if len(threads) != cfg.Procs {
		panic(fmt.Sprintf("machine: %d threads for %d processors", len(threads), cfg.Procs))
	}
	if cfg.IntervalInstructions == 0 {
		panic("machine: interval length must be positive")
	}
	net := network.NewTopology(cfg.Topology, cfg.Procs, cfg.Net)
	params := coherence.Params{
		N: cfg.Procs, L1: cfg.L1, L2: cfg.L2, Mem: cfg.Mem,
		Net: net, Costs: cfg.Costs,
	}
	var proto coherence.Protocol
	switch cfg.Protocol {
	case coherence.KindDirectory:
		// home(line) = (line·lineBytes >> HomeShift) % Procs, expressed
		// as a precomputed shift-and-mod HomeMap (AddrAt's inverse).
		lineShift := uint(bits.TrailingZeros(uint(cfg.L2.LineBytes)))
		params.Home = coherence.NewHomeMap(HomeShift-lineShift, cfg.Procs)
		proto = coherence.NewDirectory(params)
	case coherence.KindIVY:
		pageB := cfg.PageBytes
		if pageB == 0 {
			pageB = coherence.DefaultPageBytes
		}
		pageShift := uint(bits.TrailingZeros(uint(pageB)))
		params.PageBytes = pageB
		params.Home = coherence.NewHomeMap(HomeShift-pageShift, cfg.Procs)
		proto = coherence.NewIVY(params)
	default:
		panic("machine: unknown coherence protocol " + cfg.Protocol.String())
	}
	var dist *core.DistanceMatrix
	if cfg.UniformDistance {
		dist = core.UniformDistanceMatrix(cfg.Procs)
	} else {
		dist = core.NewDistanceMatrix(cfg.Procs, net.Hops)
	}
	m := &Machine{cfg: cfg, net: net, proto: proto,
		home: coherence.NewHomeMap(HomeShift, cfg.Procs), dist: dist}
	m.gatherVecs = make([][]uint64, cfg.Procs)
	for i := range m.gatherVecs {
		m.gatherVecs[i] = make([]uint64, cfg.Procs)
	}
	m.contention = make([]uint64, cfg.Procs)
	// With a declared instruction budget the per-processor interval
	// count is bounded; pre-size the record slices so recording never
	// regrows them.
	recordCap := 0
	if cfg.MaxInstructions > 0 {
		recordCap = int(cfg.MaxInstructions/cfg.IntervalInstructions) + 1
	}
	m.procs = make([]*proc, cfg.Procs)
	for i := 0; i < cfg.Procs; i++ {
		p := &proc{
			id:      i,
			model:   cpu.NewModel(cfg.CPU),
			acc:     core.NewAccumulator(cfg.AccumulatorSize),
			freq:    core.NewFrequencyMatrix(cfg.Procs),
			thread:  threads[i],
			emitter: isa.NewEmitter(4096),
		}
		if recordCap > 0 {
			p.records = make([]core.IntervalSignature, 0, recordCap)
		}
		if oc := cfg.Online; oc != nil {
			switch oc.Kind {
			case core.DetectorBBV:
				p.table = core.NewFootprintTable(cfg.FootprintSize, oc.ThBBV)
			case core.DetectorBBVDDV:
				p.table = core.NewFootprintTableDDS(cfg.FootprintSize, oc.ThBBV, oc.ThDDS)
			case core.DetectorDDS:
				p.table = core.NewFootprintTableDDS(cfg.FootprintSize, 2.0, oc.ThDDS)
			default:
				panic("machine: online detection supports the BBV-family detectors")
			}
		}
		m.procs[i] = p
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Network exposes the interconnect (statistics).
func (m *Machine) Network() network.Topology { return m.net }

// Protocol exposes the coherence engine (statistics, invariants).
func (m *Machine) Protocol() coherence.Protocol { return m.proto }

// Distance exposes the distance matrix used for DDS computation.
func (m *Machine) Distance() *core.DistanceMatrix { return m.dist }

// Summary reports whole-run statistics.
type Summary struct {
	Instructions uint64  // committed, including sync
	SyncInstrs   uint64  // barrier arrivals
	Cycles       float64 // max processor clock
	Intervals    int     // total recorded intervals across processors
	Barriers     uint64  // barrier episodes released
	IPC          float64 // aggregate committed instructions per cycle
	// LocalAccesses and RemoteAccesses total the committed memory
	// operations of every recorded interval, split by whether the line's
	// home is the issuing node (the paper's data-distribution signal).
	LocalAccesses  uint64
	RemoteAccesses uint64
}

// RemoteFraction returns the share of recorded memory accesses whose
// home is a remote node, or 0 for a run without memory accesses.
func (s Summary) RemoteFraction() float64 {
	total := s.LocalAccesses + s.RemoteAccesses
	if total == 0 {
		return 0
	}
	return float64(s.RemoteAccesses) / float64(total)
}

// errDeadlock reports a scheduling dead end: no runnable processor, but
// not every live processor is waiting at the barrier.
var errDeadlock = fmt.Errorf("machine: deadlock — no runnable processor, not all at barrier")

// Run drives all threads to completion and returns the run summary.
// Scheduling uses the run-until-horizon loop (sched.go) unless the
// configuration selects the naive per-instruction oracle; both produce
// byte-identical observable output.
func (m *Machine) Run() (Summary, error) {
	var err error
	if m.cfg.NaiveScheduler {
		err = m.runNaive()
	} else {
		err = m.runHorizon()
	}
	if err != nil {
		return Summary{}, err
	}
	var s Summary
	for _, p := range m.procs {
		s.Instructions += p.totalInstrs
		s.SyncInstrs += p.totalSync
		s.Intervals += len(p.records)
		if p.clock > s.Cycles {
			s.Cycles = p.clock
		}
		for _, r := range p.records {
			s.LocalAccesses += r.LocalAccesses
			s.RemoteAccesses += r.RemoteAccesses
		}
	}
	s.Barriers = m.barriers
	if s.Cycles > 0 {
		s.IPC = float64(s.Instructions) / s.Cycles
	}
	return s, nil
}

// pickRunnable returns the runnable processor with the smallest clock,
// or nil. Ties break to the LOWEST processor ID — the scan visits
// processors in ID order and replaces best only on a strictly smaller
// clock — which is the determinism contract the horizon scheduler's
// heap order (procLess) must and does reproduce; TestPickRunnableTieBreak
// pins it on both schedulers.
func (m *Machine) pickRunnable() *proc {
	var best *proc
	for _, p := range m.procs {
		if p.done || p.atBarrier {
			continue
		}
		if best == nil || p.clock < best.clock {
			best = p
		}
	}
	return best
}

func (m *Machine) allDone() bool {
	for _, p := range m.procs {
		if !p.done {
			return false
		}
	}
	return true
}

// allBlocked reports whether every live processor is waiting at the
// barrier (finished processors count as arrived).
func (m *Machine) allBlocked() bool {
	arrived := false
	for _, p := range m.procs {
		if p.done {
			continue
		}
		if !p.atBarrier {
			return false
		}
		arrived = true
	}
	return arrived
}

// releaseBarrier opens the barrier: all waiting processors resume at the
// latest arrival time plus the barrier overhead. The wait cycles accrue
// to each processor's clock — and therefore to its interval CPI — which
// is how load imbalance becomes visible to the phase detectors.
func (m *Machine) releaseBarrier() {
	var latest float64
	for _, p := range m.procs {
		if p.atBarrier && p.clock > latest {
			latest = p.clock
		}
	}
	release := latest + m.cfg.BarrierCycles
	for _, p := range m.procs {
		if p.atBarrier {
			p.clock = release
			p.atBarrier = false
		}
	}
	m.barriers++
}

// step commits one instruction on p.
func (m *Machine) step(p *proc) error {
	if p.pos >= len(p.buf) {
		// Refill; a thread may legitimately emit several empty batches
		// (e.g. skipping work items it does not own), so loop.
		for {
			p.emitter.Reset()
			if !p.thread.NextBatch(p.emitter) {
				p.done = true
				// A partial trailing interval is dropped, matching the
				// paper's whole-interval accounting.
				return nil
			}
			if p.emitter.Len() > 0 {
				p.buf = p.emitter.Take()
				p.pos = 0
				break
			}
		}
	}
	in := p.buf[p.pos]
	p.pos++

	if m.cfg.MaxInstructions > 0 && p.totalInstrs >= m.cfg.MaxInstructions {
		return fmt.Errorf("machine: processor %d exceeded instruction budget %d", p.id, m.cfg.MaxInstructions)
	}
	p.totalInstrs++
	p.wss.Touch(in.PC)

	var cost float64
	switch in.Op {
	case isa.OpSync:
		p.totalSync++
		p.clock += p.model.Cost(in, 0)
		p.atBarrier = true
		return nil
	case isa.OpBranch:
		cost = p.model.Cost(in, 0)
		p.acc.Branch(in.PC)
	case isa.OpLoad, isa.OpStore:
		now := uint64(p.clock)
		res := m.proto.Access(now, p.id, in.Addr, in.Op == isa.OpStore)
		stall := float64(res.Done-now) - float64(m.cfg.L1.HitCycles)
		if stall < 0 {
			stall = 0
		}
		cost = p.model.Cost(in, stall)
		home := m.home.Home(in.Addr)
		p.freq.Access(home)
		if home == p.id {
			p.localAcc++
		} else {
			p.remoteAcc++
		}
		p.acc.Instruction()
	default:
		cost = p.model.Cost(in, 0)
		p.acc.Instruction()
	}
	p.clock += cost
	p.instrs++
	if p.instrs >= m.cfg.IntervalInstructions {
		m.endInterval(p)
	}
	return nil
}

// endInterval closes processor p's sampling interval: it gathers the F_i
// vectors from every processor (resetting them, per the protocol in the
// paper), computes the contention vector and the DDS, snapshots the BBV
// accumulator, and records the interval signature.
func (m *Machine) endInterval(p *proc) {
	n := m.cfg.Procs
	for q := 0; q < n; q++ {
		m.gatherVecs[q] = m.procs[q].freq.QueryAndReset(p.id, m.gatherVecs[q])
	}
	m.contention = core.SumContention(m.gatherVecs, m.contention)
	raw, norm := core.ComputeDDS(p.id, m.gatherVecs[p.id], m.contention, m.dist, m.cfg.DDS)

	if m.cfg.ChargeDDSGather && n > 1 {
		// The exchange is n-1 request/reply pairs; the processor waits
		// for the slowest reply (each reply carries n counters).
		t := uint64(p.clock)
		latest := t
		for q := 0; q < n; q++ {
			if q == p.id {
				continue
			}
			arr := m.net.Send(t, p.id, q, m.cfg.Costs.CtrlBytes)
			back := m.net.Send(arr, q, p.id, 8*n)
			if back > latest {
				latest = back
			}
		}
		p.clock += float64(latest - t)
	}

	cycles := p.clock - p.intervalStart
	bbv := p.acc.SnapshotInto(m.nextBBV())
	phaseID := -1
	if p.table != nil {
		phaseID, _ = p.table.Classify(bbv, norm)
	}
	p.records = append(p.records, core.IntervalSignature{
		Proc:           p.id,
		Index:          p.intervalIdx,
		BBV:            bbv,
		WSS:            p.wss,
		DDS:            norm,
		RawDDS:         raw,
		PhaseID:        phaseID,
		Instructions:   p.instrs,
		Cycles:         uint64(math.Round(cycles)),
		LocalAccesses:  p.localAcc,
		RemoteAccesses: p.remoteAcc,
	})
	p.acc.Reset()
	p.wss.Reset()
	p.instrs = 0
	p.localAcc = 0
	p.remoteAcc = 0
	p.intervalStart = p.clock
	p.intervalIdx++
}

// RecordsByProc returns the recorded interval signatures, one slice per
// processor, in execution order.
func (m *Machine) RecordsByProc() [][]core.IntervalSignature {
	out := make([][]core.IntervalSignature, len(m.procs))
	for i, p := range m.procs {
		out[i] = p.records
	}
	return out
}

// Records returns all interval signatures flattened (processor-major).
func (m *Machine) Records() []core.IntervalSignature {
	total := 0
	for _, p := range m.procs {
		total += len(p.records)
	}
	out := make([]core.IntervalSignature, 0, total)
	for _, p := range m.procs {
		out = append(out, p.records...)
	}
	return out
}

// GshareAccuracy returns the run-wide branch prediction accuracy.
func (m *Machine) GshareAccuracy() float64 {
	var look, miss uint64
	for _, p := range m.procs {
		look += p.model.Gshare().Lookups()
		miss += p.model.Gshare().Mispredicts()
	}
	if look == 0 {
		return 1
	}
	return 1 - float64(miss)/float64(look)
}
