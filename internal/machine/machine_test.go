package machine

import (
	"math"
	"reflect"
	"testing"

	"dsmphase/internal/core"
	"dsmphase/internal/isa"
)

// loopThread emits `iters` iterations of a fixed basic block: a few int
// ops, one load to a chosen home, and a loop branch. Batches of
// `batchIters` iterations keep buffers small.
type loopThread struct {
	iters, batchIters int
	emitted           int
	home              int
	stride            uint64
	nextOff           uint64
	pc                uint32
	syncEvery         int // emit a barrier every syncEvery iterations (0 = never)
}

func (t *loopThread) NextBatch(e *isa.Emitter) bool {
	if t.emitted >= t.iters {
		return false
	}
	end := t.emitted + t.batchIters
	if end > t.iters {
		end = t.iters
	}
	for ; t.emitted < end; t.emitted++ {
		e.Int(t.pc, 3)
		e.Load(t.pc+4, AddrAt(t.home, t.nextOff))
		t.nextOff += t.stride
		e.LoopBranch(t.pc+8, t.emitted, t.iters)
		if t.syncEvery > 0 && (t.emitted+1)%t.syncEvery == 0 {
			e.Sync(t.pc + 12)
		}
	}
	return true
}

func smallConfig(procs int, interval uint64) Config {
	cfg := DefaultConfig(procs)
	cfg.IntervalInstructions = interval
	return cfg
}

func TestAddrAt(t *testing.T) {
	a := AddrAt(3, 0x1234)
	if a>>HomeShift != 3 || a&0xFFFF != 0x1234 {
		t.Errorf("AddrAt = %#x", a)
	}
}

func TestUniprocessorRun(t *testing.T) {
	cfg := smallConfig(1, 500)
	th := &loopThread{iters: 2000, batchIters: 64, home: 0, stride: 8}
	m := New(cfg, []isa.Thread{th})
	sum, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 2000 iterations × 5 instructions = 10000 instructions.
	if sum.Instructions != 10000 {
		t.Errorf("instructions = %d, want 10000", sum.Instructions)
	}
	// 10000/500 = 20 intervals.
	if sum.Intervals != 20 {
		t.Errorf("intervals = %d, want 20", sum.Intervals)
	}
	recs := m.Records()
	for _, r := range recs {
		if r.Instructions != 500 {
			t.Errorf("interval %d has %d instructions", r.Index, r.Instructions)
		}
		if r.CPI() <= 0 {
			t.Errorf("interval %d CPI = %v", r.Index, r.CPI())
		}
		var s float64
		for _, v := range r.BBV {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("interval %d BBV sum = %v", r.Index, s)
		}
	}
	if sum.IPC <= 0 || sum.IPC > 6 {
		t.Errorf("IPC = %v out of range", sum.IPC)
	}
}

func TestIntervalIndicesSequential(t *testing.T) {
	cfg := smallConfig(2, 300)
	ths := []isa.Thread{
		&loopThread{iters: 1000, batchIters: 50, home: 0, stride: 8},
		&loopThread{iters: 1000, batchIters: 50, home: 1, stride: 8},
	}
	m := New(cfg, ths)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for pid, recs := range m.RecordsByProc() {
		for i, r := range recs {
			if r.Index != i || r.Proc != pid {
				t.Errorf("proc %d record %d: Index=%d Proc=%d", pid, i, r.Index, r.Proc)
			}
		}
	}
}

func TestRemoteAccessesRaiseCPIAndDDS(t *testing.T) {
	cfg := smallConfig(4, 400)
	cfg.ChargeDDSGather = false
	mk := func(home int) []isa.Thread {
		ths := make([]isa.Thread, 4)
		for i := range ths {
			h := i
			if home >= 0 {
				h = home
			}
			// Large stride so every load misses (new line each time).
			ths[i] = &loopThread{iters: 2000, batchIters: 64, home: h, stride: 64, pc: uint32(0x100 * (i + 1))}
		}
		return ths
	}
	// All-local run: every proc touches only its own home.
	mLocal := New(cfg, mk(-1))
	if _, err := mLocal.Run(); err != nil {
		t.Fatal(err)
	}
	// All-remote run: every proc hammers node 3's home.
	mRemote := New(cfg, mk(3))
	if _, err := mRemote.Run(); err != nil {
		t.Fatal(err)
	}
	meanCPI := func(rs []core.IntervalSignature, proc int) (cpi, dds float64) {
		var n int
		for _, r := range rs {
			if r.Proc != proc {
				continue
			}
			cpi += r.CPI()
			dds += r.DDS
			n++
		}
		return cpi / float64(n), dds / float64(n)
	}
	// Proc 0 is remote in the second run (home 3), local in the first.
	cpiL, ddsL := meanCPI(mLocal.Records(), 0)
	cpiR, ddsR := meanCPI(mRemote.Records(), 0)
	if cpiR <= cpiL {
		t.Errorf("remote CPI (%v) must exceed local CPI (%v)", cpiR, cpiL)
	}
	if ddsR <= ddsL {
		t.Errorf("remote DDS (%v) must exceed local DDS (%v)", ddsR, ddsL)
	}
	// Locality counters.
	for _, r := range mLocal.Records() {
		if r.RemoteAccesses != 0 {
			t.Errorf("all-local run recorded %d remote accesses", r.RemoteAccesses)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	cfg := smallConfig(2, 1_000_000) // intervals irrelevant here
	// Thread 0 does 10× the work of thread 1 before each barrier.
	ths := []isa.Thread{
		&loopThread{iters: 1000, batchIters: 100, home: 0, stride: 8, syncEvery: 500},
		&loopThread{iters: 100, batchIters: 100, home: 1, stride: 8, syncEvery: 50},
	}
	m := New(cfg, ths)
	sum, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Barriers != 2 {
		t.Errorf("barriers = %d, want 2", sum.Barriers)
	}
	// Both processors must finish at (nearly) the same time: the fast one
	// waited for the slow one at the final barrier.
	c0 := m.procs[0].clock
	c1 := m.procs[1].clock
	if math.Abs(c0-c1) > cfg.BarrierCycles+100 {
		t.Errorf("final clocks diverge: %v vs %v", c0, c1)
	}
	if sum.SyncInstrs != 4 { // 2 barriers × 2 procs
		t.Errorf("sync instrs = %d, want 4", sum.SyncInstrs)
	}
}

func TestSyncExcludedFromIntervalCounts(t *testing.T) {
	cfg := smallConfig(2, 100)
	ths := []isa.Thread{
		&loopThread{iters: 200, batchIters: 20, home: 0, stride: 8, syncEvery: 10},
		&loopThread{iters: 200, batchIters: 20, home: 1, stride: 8, syncEvery: 10},
	}
	m := New(cfg, ths)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range m.Records() {
		if r.Instructions != 100 {
			t.Errorf("interval counted %d instructions, want exactly 100 non-sync", r.Instructions)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []core.IntervalSignature {
		cfg := smallConfig(4, 250)
		ths := make([]isa.Thread, 4)
		for i := range ths {
			ths[i] = &loopThread{iters: 1500, batchIters: 37, home: (i + 1) % 4, stride: 32, pc: uint32(i * 64), syncEvery: 300}
		}
		m := New(cfg, ths)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Records()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("two identical runs produced different interval records")
	}
}

func TestProtocolInvariantsAfterRun(t *testing.T) {
	cfg := smallConfig(4, 500)
	ths := make([]isa.Thread, 4)
	for i := range ths {
		ths[i] = &loopThread{iters: 2000, batchIters: 64, home: (i + 2) % 4, stride: 16, syncEvery: 400}
	}
	m := New(cfg, ths)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.Protocol().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestMaxInstructionsAborts(t *testing.T) {
	cfg := smallConfig(1, 1000)
	cfg.MaxInstructions = 100
	m := New(cfg, []isa.Thread{&loopThread{iters: 10000, batchIters: 64, stride: 8}})
	if _, err := m.Run(); err == nil {
		t.Error("expected instruction-budget error")
	}
}

func TestNewValidation(t *testing.T) {
	cases := []func(){
		func() { New(Config{Procs: 0}, nil) },
		func() { New(smallConfig(2, 100), []isa.Thread{&loopThread{}}) },
		func() {
			cfg := smallConfig(1, 0)
			cfg.IntervalInstructions = 0
			New(cfg, []isa.Thread{&loopThread{}})
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDDSGatherChargesCycles(t *testing.T) {
	mk := func(charge bool, interval uint64) float64 {
		cfg := smallConfig(4, interval)
		cfg.ChargeDDSGather = charge
		ths := make([]isa.Thread, 4)
		for i := range ths {
			ths[i] = &loopThread{iters: 4000, batchIters: 50, home: i, stride: 8}
		}
		m := New(cfg, ths)
		sum, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return sum.Cycles
	}
	withShort, withoutShort := mk(true, 200), mk(false, 200)
	if withShort <= withoutShort {
		t.Errorf("gather charging must add cycles: %v vs %v", withShort, withoutShort)
	}
	// The paper's claim is that the exchange cost amortizes over the
	// interval: relative overhead must shrink as intervals grow.
	withLong, withoutLong := mk(true, 2000), mk(false, 2000)
	ovShort := (withShort - withoutShort) / withoutShort
	ovLong := (withLong - withoutLong) / withoutLong
	if ovLong >= ovShort {
		t.Errorf("overhead must amortize: %.3f%% (short) vs %.3f%% (long)", 100*ovShort, 100*ovLong)
	}
}

func TestTableI(t *testing.T) {
	rows := DefaultConfig(8).TableI()
	if len(rows) != 9 {
		t.Fatalf("Table I has %d rows, want 9", len(rows))
	}
	if rows[0][1] != "2GHz" {
		t.Errorf("frequency row = %v", rows[0])
	}
}
