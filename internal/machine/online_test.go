package machine

import (
	"testing"

	"dsmphase/internal/core"
	"dsmphase/internal/isa"
)

// phasedThread alternates between two code/data behaviours so the online
// detector sees genuine phase structure.
type phasedThread struct {
	iters, emitted int
	homeA, homeB   int
	off            uint64
}

func (t *phasedThread) NextBatch(e *isa.Emitter) bool {
	if t.emitted >= t.iters {
		return false
	}
	end := t.emitted + 50
	if end > t.iters {
		end = t.iters
	}
	for ; t.emitted < end; t.emitted++ {
		phase := (t.emitted / 200) % 2
		if phase == 0 {
			e.Int(0x100, 3)
			e.Load(0x104, AddrAt(t.homeA, t.off))
			e.LoopBranch(0x108, t.emitted, t.iters)
		} else {
			e.FP(0x200, 3)
			e.Load(0x204, AddrAt(t.homeB, t.off))
			e.LoopBranch(0x208, t.emitted, t.iters)
		}
		t.off += 64
	}
	return true
}

func onlineConfig(kind core.DetectorKind) Config {
	cfg := DefaultConfig(2)
	cfg.IntervalInstructions = 500
	cfg.Online = &OnlineConfig{Kind: kind, ThBBV: 0.3, ThDDS: 0.15}
	return cfg
}

func onlineThreads() []isa.Thread {
	return []isa.Thread{
		&phasedThread{iters: 4000, homeA: 0, homeB: 1},
		&phasedThread{iters: 4000, homeA: 1, homeB: 0},
	}
}

// TestOnlineMatchesOffline is the hardware-fidelity check: the phase IDs
// the in-simulation detector assigns must equal what the offline replay
// computes from the recorded signatures at the same thresholds.
func TestOnlineMatchesOffline(t *testing.T) {
	for _, kind := range []core.DetectorKind{core.DetectorBBV, core.DetectorBBVDDV, core.DetectorDDS} {
		m := New(onlineConfig(kind), onlineThreads())
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		for procID, recs := range m.RecordsByProc() {
			offline := core.ClassifyRecorded(kind, m.Config().FootprintSize, 0.3, 0.15, recs)
			for i, r := range recs {
				if r.PhaseID != offline[i] {
					t.Fatalf("%v proc %d interval %d: online phase %d, offline %d",
						kind, procID, i, r.PhaseID, offline[i])
				}
			}
		}
	}
}

func TestOnlineDetectsPhaseStructure(t *testing.T) {
	m := New(onlineConfig(core.DetectorBBV), onlineThreads())
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	recs := m.RecordsByProc()[0]
	distinct := map[int]bool{}
	for _, r := range recs {
		distinct[r.PhaseID] = true
	}
	if len(distinct) < 2 {
		t.Errorf("alternating workload produced %d phases, want >= 2", len(distinct))
	}
	// Recurring phases: some phase ID must repeat non-contiguously.
	repeats := false
	for i := 2; i < len(recs); i++ {
		if recs[i].PhaseID == recs[0].PhaseID && recs[i-1].PhaseID != recs[0].PhaseID {
			repeats = true
			break
		}
	}
	if !repeats {
		t.Error("phase 0 never recurs; detector is fragmenting")
	}
}

func TestOfflineRecordsCarryMinusOne(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.IntervalInstructions = 500
	m := New(cfg, onlineThreads())
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range m.Records() {
		if r.PhaseID != -1 {
			t.Fatalf("offline record carries phase %d, want -1", r.PhaseID)
		}
	}
}

func TestOnlineUnsupportedKindPanics(t *testing.T) {
	cfg := onlineConfig(core.DetectorWSS)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for WSS online (not implemented in the machine)")
		}
	}()
	New(cfg, onlineThreads())
}
