package machine

// Run-until-horizon scheduling (DESIGN.md §10).
//
// The naive scheduler re-scans all P processors to find the minimum
// clock before every committed instruction — O(instrs × P). But the
// scan's answer is sticky: after the min-clock processor commits one
// instruction it usually still holds the minimum clock, so the naive
// scheduler would pick it again. The horizon scheduler exploits that:
// it keeps runnable processors in a binary min-heap ordered by
// (clock, id), takes the root, reads the runner-up's key once (the heap
// is untouched while the taken processor runs, so the runner-up is
// stable), and lets the processor execute a whole batch of instructions
// until it stops being the scheduling winner or blocks (barrier
// arrival / thread completion). The heap is then repaired with a single
// sift-down of the root — no pop/push pair. Scheduling cost amortizes
// to O(log P) heap work per batch instead of O(P) per instruction, and
// the instruction interleaving — hence every timestamp, cache state and
// statistic — is exactly the one the naive scan produces, which
// TestSchedulerEquivalence pins and Config.NaiveScheduler lets any test
// re-check against the oracle.

// procLess orders processors by (clock, id): the scheduling winner is
// the runnable processor with the smallest clock, ties broken by lowest
// processor ID — the same total order pickRunnable's ID-ordered scan
// implements, which is what makes runs deterministic.
func procLess(a, b *proc) bool {
	return a.clock < b.clock || (a.clock == b.clock && a.id < b.id)
}

// procHeap is a binary min-heap of runnable processors under procLess.
// Only the root's clock ever changes (the taken processor runs while
// everyone else stands still), so the heap needs no decrease-key:
// takeMin, run the batch, fix — or removeMin when the processor
// blocked.
type procHeap struct {
	h []*proc
}

func newProcHeap(capacity int) *procHeap {
	return &procHeap{h: make([]*proc, 0, capacity)}
}

func (ph *procHeap) len() int { return len(ph.h) }

// takeMin returns the scheduling winner (the root, left in place) and
// the runner-up — the procLess-least of the root's children, which is
// the second element of the heap's total order. It asserts the
// determinism contract: among equal clocks, processors pop in ascending
// ID order (a violation would mean the heap invariant broke and
// replicated runs could diverge). The caller runs min, then calls fix
// (still runnable) or removeMin (blocked).
func (ph *procHeap) takeMin() (min, runnerUp *proc) {
	switch len(ph.h) {
	case 0:
		return nil, nil
	case 1:
		return ph.h[0], nil
	case 2:
		min, runnerUp = ph.h[0], ph.h[1]
	default:
		min, runnerUp = ph.h[0], ph.h[1]
		if procLess(ph.h[2], runnerUp) {
			runnerUp = ph.h[2]
		}
	}
	if runnerUp.clock == min.clock && runnerUp.id < min.id {
		panic("machine: scheduler heap pops equal clocks out of ID order")
	}
	return min, runnerUp
}

// fix restores the heap order after the root's clock advanced.
func (ph *procHeap) fix() { ph.siftDown(0) }

// removeMin deletes the root (whose clock may have advanced past any
// other entry by the time it blocked).
func (ph *procHeap) removeMin() {
	n := len(ph.h)
	last := ph.h[n-1]
	ph.h[n-1] = nil
	ph.h = ph.h[:n-1]
	if n > 1 {
		ph.h[0] = last
		ph.siftDown(0)
	}
}

func (ph *procHeap) push(p *proc) {
	ph.h = append(ph.h, p)
	i := len(ph.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !procLess(ph.h[i], ph.h[parent]) {
			break
		}
		ph.h[i], ph.h[parent] = ph.h[parent], ph.h[i]
		i = parent
	}
}

func (ph *procHeap) siftDown(i int) {
	n := len(ph.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && procLess(ph.h[l], ph.h[smallest]) {
			smallest = l
		}
		if r < n && procLess(ph.h[r], ph.h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		ph.h[i], ph.h[smallest] = ph.h[smallest], ph.h[i]
		i = smallest
	}
}

// runHorizon drives all threads to completion under the horizon
// scheduler. Observable behavior is byte-identical to runNaive.
func (m *Machine) runHorizon() error {
	heap := newProcHeap(len(m.procs))
	for _, p := range m.procs {
		if !p.done && !p.atBarrier {
			heap.push(p)
		}
	}
	for {
		p, next := heap.takeMin()
		if p == nil {
			if m.allDone() {
				return nil
			}
			if m.allBlocked() {
				m.releaseBarrier()
				for _, q := range m.procs {
					if !q.done && !q.atBarrier {
						heap.push(q)
					}
				}
				continue
			}
			return errDeadlock
		}
		// The horizon: p runs while it would still win the naive scan,
		// i.e. while (p.clock, p.id) < (next.clock, next.id). next is
		// stable for the whole batch — nothing else advances while p
		// runs. With no other runnable processor the horizon is
		// infinite: p runs until it blocks.
		for {
			if err := m.step(p); err != nil {
				return err
			}
			if p.done || p.atBarrier {
				heap.removeMin()
				break
			}
			if next != nil && (p.clock > next.clock || (p.clock == next.clock && p.id > next.id)) {
				heap.fix()
				break
			}
		}
	}
}

// runNaive is the original per-instruction min-scan scheduler, kept as
// the equivalence oracle (Config.NaiveScheduler).
func (m *Machine) runNaive() error {
	for {
		p := m.pickRunnable()
		if p == nil {
			if m.allDone() {
				return nil
			}
			if m.allBlocked() {
				m.releaseBarrier()
				continue
			}
			return errDeadlock
		}
		if err := m.step(p); err != nil {
			return err
		}
	}
}
