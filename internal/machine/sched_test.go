package machine

import (
	"math/rand"
	"reflect"
	"testing"

	"dsmphase/internal/isa"
	"dsmphase/internal/network"
)

// randThread emits a seeded pseudo-random mix of every instruction
// class, with loads/stores spread across all home nodes and occasional
// barriers — a fuzz-ish workload exercising the scheduler's blocking,
// contention and interval paths.
type randThread struct {
	rng     *rand.Rand
	batches int
	procs   int
	pc      uint32
}

func (t *randThread) NextBatch(e *isa.Emitter) bool {
	if t.batches <= 0 {
		return false
	}
	t.batches--
	for i := 0; i < 200; i++ {
		switch t.rng.Intn(10) {
		case 0, 1, 2:
			e.Int(t.pc+uint32(t.rng.Intn(64))*4, 1+t.rng.Intn(3))
		case 3:
			e.FP(t.pc+256, 1+t.rng.Intn(2))
		case 4, 5, 6:
			home := t.rng.Intn(t.procs)
			off := uint64(t.rng.Intn(1<<14) * 32)
			if t.rng.Intn(3) == 0 {
				e.Store(t.pc+512, AddrAt(home, off))
			} else {
				e.Load(t.pc+512, AddrAt(home, off))
			}
		case 7, 8:
			e.Branch(t.pc+uint32(t.rng.Intn(16))*4+1024, t.rng.Intn(3) != 0)
		case 9:
			if t.rng.Intn(8) == 0 {
				e.Sync(t.pc + 2048)
			} else {
				e.Int(t.pc, 1)
			}
		}
	}
	return true
}

// buildRandMachine assembles a procs-node machine over randomized
// threads. Non-power-of-two counts ride the mesh (the hypercube needs a
// power of two); the 5-proc case is exactly why the mesh accepts any n.
func buildRandMachine(procs int, seed int64, naive bool) *Machine {
	cfg := DefaultConfig(procs)
	cfg.IntervalInstructions = 300
	cfg.NaiveScheduler = naive
	if procs&(procs-1) != 0 {
		cfg.Topology = network.KindMesh2D
	}
	threads := make([]isa.Thread, procs)
	for i := range threads {
		threads[i] = &randThread{
			rng:     rand.New(rand.NewSource(seed + int64(i)*7919)),
			batches: 6 + i%3,
			procs:   procs,
		}
	}
	return New(cfg, threads)
}

// TestSchedulerEquivalence pins the tentpole guarantee: the horizon
// scheduler produces the exact observable output of the naive
// per-instruction min-scan oracle — identical IntervalSignature
// streams, Summary and Protocol.Stats — across system sizes including
// a non-power-of-two count.
func TestSchedulerEquivalence(t *testing.T) {
	for _, procs := range []int{1, 2, 5, 8, 32} {
		for seed := int64(1); seed <= 3; seed++ {
			oracle := buildRandMachine(procs, seed, true)
			horizon := buildRandMachine(procs, seed, false)

			wantSum, err := oracle.Run()
			if err != nil {
				t.Fatalf("procs=%d seed=%d: oracle: %v", procs, seed, err)
			}
			gotSum, err := horizon.Run()
			if err != nil {
				t.Fatalf("procs=%d seed=%d: horizon: %v", procs, seed, err)
			}

			if gotSum != wantSum {
				t.Errorf("procs=%d seed=%d: Summary diverged:\nhorizon %+v\noracle  %+v",
					procs, seed, gotSum, wantSum)
			}
			if got, want := horizon.Protocol().Stats(), oracle.Protocol().Stats(); got != want {
				t.Errorf("procs=%d seed=%d: Protocol.Stats diverged:\nhorizon %+v\noracle  %+v",
					procs, seed, got, want)
			}
			if got, want := horizon.Records(), oracle.Records(); !reflect.DeepEqual(got, want) {
				t.Errorf("procs=%d seed=%d: interval signature streams diverged (%d vs %d records)",
					procs, seed, len(got), len(want))
			}
			if wantSum.Instructions == 0 {
				t.Fatalf("procs=%d seed=%d: degenerate run, no instructions", procs, seed)
			}
		}
	}
}

// TestPickRunnableTieBreak pins the documented determinism contract on
// both scheduler implementations: among runnable processors with equal
// clocks, the LOWEST processor ID runs first.
func TestPickRunnableTieBreak(t *testing.T) {
	m := buildRandMachine(4, 1, true)
	// All processors start at clock 0 — a full tie.
	if p := m.pickRunnable(); p == nil || p.id != 0 {
		t.Fatalf("pickRunnable on all-zero clocks picked %+v, want proc 0", p)
	}
	m.procs[0].clock = 5
	m.procs[2].clock = 1
	m.procs[3].clock = 1
	if p := m.pickRunnable(); p.id != 1 {
		t.Errorf("pickRunnable picked proc %d, want 1 (clock 0)", p.id)
	}
	m.procs[1].atBarrier = true
	if p := m.pickRunnable(); p.id != 2 {
		t.Errorf("pickRunnable picked proc %d, want 2 (equal-clock tie to lowest ID)", p.id)
	}
}

// TestProcHeapEqualClocksPopInIDOrder drives the heap directly: pushed
// in scrambled order with equal clocks, takeMin/removeMin must yield
// ascending processor IDs (the assert inside takeMin guards exactly
// this).
func TestProcHeapEqualClocksPopInIDOrder(t *testing.T) {
	ph := newProcHeap(8)
	for _, id := range []int{5, 1, 7, 0, 3, 6, 2, 4} {
		ph.push(&proc{id: id, clock: 42})
	}
	for want := 0; want < 8; want++ {
		p, _ := ph.takeMin()
		if p == nil || p.id != want {
			t.Fatalf("takeMin #%d = %+v, want id %d", want, p, want)
		}
		ph.removeMin()
	}
	if p, next := ph.takeMin(); p != nil || next != nil {
		t.Errorf("empty heap takeMin = %v, %v", p, next)
	}
}

// TestProcHeapRunnerUp checks takeMin's runner-up is the second element
// of the heap's total order even when it sits in the root's second
// child, and that fix() restores order after the root's clock advances.
func TestProcHeapRunnerUp(t *testing.T) {
	ph := newProcHeap(4)
	a := &proc{id: 0, clock: 1}
	b := &proc{id: 1, clock: 9}
	c := &proc{id: 2, clock: 3}
	d := &proc{id: 3, clock: 4}
	for _, p := range []*proc{a, b, c, d} {
		ph.push(p)
	}
	min, next := ph.takeMin()
	if min != a || next != c {
		t.Fatalf("takeMin = (id %d, id %d), want (0, 2)", min.id, next.id)
	}
	// The root runs past the runner-up; fix must promote c.
	a.clock = 3.5
	ph.fix()
	min, next = ph.takeMin()
	if min != c || next != a {
		t.Fatalf("after fix: takeMin = (id %d, id %d), want (2, 0)", min.id, next.id)
	}
}
