// Package memory models the per-node SDRAM of the paper's Table I:
// interleaved banks, 75 ns access latency, 2.6 GB/s peak bandwidth.
// Timing is in processor cycles (2 GHz core: 1 cycle = 0.5 ns).
package memory

// Config holds SDRAM timing parameters in processor cycles.
type Config struct {
	// AccessCycles is the fixed access latency (75 ns @ 2 GHz = 150).
	AccessCycles uint64
	// LineOccupancyCycles is the bank busy time per cache-line transfer,
	// derived from the 2.6 GB/s bandwidth: 32 B / 2.6 GB/s ≈ 12.3 ns ≈
	// 25 cycles.
	LineOccupancyCycles uint64
	// Banks is the number of interleaved banks per node.
	Banks int
	// LineBytes is the transfer granularity (32 B in Table I).
	LineBytes int
}

// DefaultConfig returns the Table I SDRAM parameters for a 2 GHz core.
func DefaultConfig() Config {
	return Config{AccessCycles: 150, LineOccupancyCycles: 25, Banks: 4, LineBytes: 32}
}

// Stats aggregates memory activity for one node.
type Stats struct {
	Reads       uint64
	Writes      uint64
	QueueCycles uint64 // cycles requests spent waiting for a busy bank
}

// SDRAM is one node's memory controller and interleaved banks.
type SDRAM struct {
	cfg  Config
	busy []uint64 // per-bank busy-until
	st   Stats
}

// New returns an SDRAM model. Banks must be positive.
func New(cfg Config) *SDRAM {
	if cfg.Banks <= 0 {
		panic("memory: bank count must be positive")
	}
	if cfg.LineBytes <= 0 {
		panic("memory: line size must be positive")
	}
	return &SDRAM{cfg: cfg, busy: make([]uint64, cfg.Banks)}
}

// bank selects the interleaved bank for a line address.
func (m *SDRAM) bank(addr uint64) int {
	line := addr / uint64(m.cfg.LineBytes)
	return int(line % uint64(m.cfg.Banks))
}

// Read services a line read beginning at time now and returns the data-
// ready time. Contention for the line's bank delays service.
func (m *SDRAM) Read(now uint64, addr uint64) uint64 {
	m.st.Reads++
	return m.access(now, addr)
}

// Write services a line writeback beginning at time now and returns the
// completion time. Writes occupy the bank like reads; callers that model
// posted writes may ignore the returned time (occupancy still accrues,
// delaying later accesses to the same bank).
func (m *SDRAM) Write(now uint64, addr uint64) uint64 {
	m.st.Writes++
	return m.access(now, addr)
}

func (m *SDRAM) access(now uint64, addr uint64) uint64 {
	b := m.bank(addr)
	start := now
	if m.busy[b] > start {
		m.st.QueueCycles += m.busy[b] - start
		start = m.busy[b]
	}
	m.busy[b] = start + m.cfg.LineOccupancyCycles
	return start + m.cfg.AccessCycles
}

// Stats returns a copy of the accumulated statistics.
func (m *SDRAM) Stats() Stats { return m.st }

// ResetStats zeroes the statistics; bank busy state is preserved.
func (m *SDRAM) ResetStats() { m.st = Stats{} }
