package memory

import (
	"testing"
	"testing/quick"
)

func TestReadLatency(t *testing.T) {
	m := New(DefaultConfig())
	if got := m.Read(1000, 0x40); got != 1000+150 {
		t.Errorf("read completes at %d, want 1150", got)
	}
}

func TestBankInterleaving(t *testing.T) {
	cfg := DefaultConfig() // 4 banks, 32B lines
	m := New(cfg)
	// Lines 0,1,2,3 map to distinct banks: no queueing.
	for i := uint64(0); i < 4; i++ {
		if got := m.Read(0, i*32); got != 150 {
			t.Errorf("line %d completes at %d, want 150", i, got)
		}
	}
	if m.Stats().QueueCycles != 0 {
		t.Error("distinct banks must not queue")
	}
	// A fifth access to line 4 hits bank 0 again, queued behind line 0.
	if got := m.Read(0, 4*32); got != 25+150 {
		t.Errorf("queued read completes at %d, want 175", got)
	}
	if m.Stats().QueueCycles != 25 {
		t.Errorf("queue cycles = %d, want 25", m.Stats().QueueCycles)
	}
}

func TestSameBankBackToBack(t *testing.T) {
	m := New(DefaultConfig())
	a := m.Read(0, 0)
	b := m.Read(0, 0) // same line, same bank
	if b-a != 25 {
		t.Errorf("second access delayed by %d, want one occupancy (25)", b-a)
	}
}

func TestWriteOccupiesBank(t *testing.T) {
	m := New(DefaultConfig())
	m.Write(0, 0)
	got := m.Read(0, 0)
	if got != 25+150 {
		t.Errorf("read after write completes at %d, want 175", got)
	}
	s := m.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestNewPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Banks: 0, LineBytes: 32},
		{Banks: 4, LineBytes: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestResetStats(t *testing.T) {
	m := New(DefaultConfig())
	m.Read(0, 0)
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Error("stats not cleared")
	}
}

// Property: completion time is never earlier than now + AccessCycles and
// repeated accesses to one bank are serialized by at least the occupancy.
func TestAccessMonotoneProperty(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	last := make(map[int]uint64) // bank -> last start-derived completion
	now := uint64(0)
	f := func(dt uint8, lineR uint16) bool {
		now += uint64(dt)
		addr := uint64(lineR) * 32
		got := m.Read(now, addr)
		if got < now+cfg.AccessCycles {
			return false
		}
		b := int((addr / 32) % uint64(cfg.Banks))
		if prev, ok := last[b]; ok && got < prev {
			// completions on one bank may not go backward
			return false
		}
		last[b] = got
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
