// Package network models the paper's interconnect: a hypercube with
// wormhole switching, a 400 MHz pipelined router and 16 ns pin-to-pin
// latency (Table I). Timing is expressed in processor cycles (2 GHz by
// default, so 1 cycle = 0.5 ns).
//
// Messages follow deterministic e-cube (dimension-order) routing. Each
// unidirectional link keeps a busy-until timestamp; a flit stream
// occupies every link on its path for its serialization time, so
// concurrent traffic through shared links queues up — this is the
// contention the paper's DDV contention vector is designed to observe.
package network

import "math/bits"

// Config holds the network timing parameters in processor cycles.
type Config struct {
	// RouterCycles is the per-hop router pipeline delay
	// (400 MHz router at 2 GHz core: 5 cycles).
	RouterCycles uint64
	// WireCycles is the per-hop pin-to-pin wire delay
	// (16 ns at 2 GHz: 32 cycles).
	WireCycles uint64
	// FlitBytes is the flit width in bytes.
	FlitBytes int
	// FlitCycles is the serialization time of one flit on a link.
	FlitCycles uint64
}

// DefaultConfig returns the Table I network parameters for a 2 GHz core
// clock.
func DefaultConfig() Config {
	return Config{RouterCycles: 5, WireCycles: 32, FlitBytes: 8, FlitCycles: 4}
}

// Stats aggregates network activity.
type Stats struct {
	Messages     uint64
	Bytes        uint64
	TotalLatency uint64 // sum of end-to-end message latencies, cycles
	TotalHops    uint64
	QueueCycles  uint64 // cycles spent waiting for busy links
}

// Hypercube is a binary n-cube interconnect. The node count must be a
// power of two (1 is allowed and degenerates to no network).
type Hypercube struct {
	cfg   Config
	n     int
	dim   int
	busy  [][]uint64 // busy[node][dim]: busy-until for the outgoing link
	stats Stats
}

// New returns a hypercube with n nodes. It panics if n is not a positive
// power of two.
func New(n int, cfg Config) *Hypercube {
	if n <= 0 || n&(n-1) != 0 {
		panic("network: node count must be a positive power of two")
	}
	dim := bits.TrailingZeros(uint(n))
	h := &Hypercube{cfg: cfg, n: n, dim: dim, busy: make([][]uint64, n)}
	for i := range h.busy {
		h.busy[i] = make([]uint64, dim)
	}
	return h
}

// Nodes returns the node count.
func (h *Hypercube) Nodes() int { return h.n }

// Dimension returns log2 of the node count.
func (h *Hypercube) Dimension() int { return h.dim }

// Diameter returns the maximum hop count (the cube dimension).
func (h *Hypercube) Diameter() int { return h.dim }

// Hops returns the hop count between nodes i and j (the Hamming distance
// of their addresses).
func (h *Hypercube) Hops(i, j int) int {
	return bits.OnesCount(uint(i ^ j))
}

// Flits returns the number of flits needed to carry a payload of the
// given size, always at least one (the header flit).
func (h *Hypercube) Flits(bytes int) int {
	f := (bytes + h.cfg.FlitBytes - 1) / h.cfg.FlitBytes
	if f < 1 {
		f = 1
	}
	return f
}

// Send injects a message of the given payload size from src to dst at
// time now and returns its arrival time at dst. src == dst returns now.
// Routing is e-cube: dimensions are corrected lowest-first, which makes
// the path — and therefore link contention — deterministic.
func (h *Hypercube) Send(now uint64, src, dst int, payloadBytes int) uint64 {
	if src == dst {
		return now
	}
	flits := uint64(h.Flits(payloadBytes))
	serial := flits * h.cfg.FlitCycles
	t := now
	cur := src
	hops := 0
	for d := 0; d < h.dim; d++ {
		if (cur^dst)&(1<<d) == 0 {
			continue
		}
		link := &h.busy[cur][d]
		depart := t
		if *link > depart {
			h.stats.QueueCycles += *link - depart
			depart = *link
		}
		// Wormhole: the worm occupies the link for its serialization
		// time; the head moves on after router + wire latency.
		*link = depart + serial
		t = depart + h.cfg.RouterCycles + h.cfg.WireCycles
		cur ^= 1 << d
		hops++
	}
	// The tail flit arrives serial cycles after the head.
	t += (flits - 1) * h.cfg.FlitCycles
	h.stats.Messages++
	h.stats.Bytes += uint64(payloadBytes)
	h.stats.TotalLatency += t - now
	h.stats.TotalHops += uint64(hops)
	return t
}

// Stats returns a copy of the accumulated statistics.
func (h *Hypercube) Stats() Stats { return h.stats }

// ResetStats zeroes the statistics (link busy state is preserved).
func (h *Hypercube) ResetStats() { h.stats = Stats{} }

// UncontendedLatency returns the end-to-end latency of a message between
// i and j on an idle network — useful for distance-matrix construction
// and sanity checks.
func (h *Hypercube) UncontendedLatency(i, j int, payloadBytes int) uint64 {
	if i == j {
		return 0
	}
	hops := uint64(h.Hops(i, j))
	flits := uint64(h.Flits(payloadBytes))
	return hops*(h.cfg.RouterCycles+h.cfg.WireCycles) + (flits-1)*h.cfg.FlitCycles
}
