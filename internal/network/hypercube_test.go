package network

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestNewValidSizes(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		h := New(n, DefaultConfig())
		if h.Nodes() != n {
			t.Errorf("Nodes = %d, want %d", h.Nodes(), n)
		}
		if 1<<h.Dimension() != n {
			t.Errorf("Dimension = %d for n=%d", h.Dimension(), n)
		}
	}
}

func TestNewInvalidSizePanics(t *testing.T) {
	for _, n := range []int{0, 3, 6, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", n)
				}
			}()
			New(n, DefaultConfig())
		}()
	}
}

func TestHopsIsHammingDistance(t *testing.T) {
	h := New(32, DefaultConfig())
	f := func(a, b uint8) bool {
		i, j := int(a%32), int(b%32)
		return h.Hops(i, j) == bits.OnesCount(uint(i^j))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlits(t *testing.T) {
	h := New(2, DefaultConfig()) // 8-byte flits
	cases := map[int]int{0: 1, 1: 1, 8: 1, 9: 2, 32: 4, 33: 5}
	for bytes, want := range cases {
		if got := h.Flits(bytes); got != want {
			t.Errorf("Flits(%d) = %d, want %d", bytes, got, want)
		}
	}
}

func TestSendSelfIsFree(t *testing.T) {
	h := New(8, DefaultConfig())
	if got := h.Send(100, 3, 3, 64); got != 100 {
		t.Errorf("self-send arrival = %d, want 100", got)
	}
	if h.Stats().Messages != 0 {
		t.Error("self-send must not count as a message")
	}
}

func TestSendUncontendedMatchesFormula(t *testing.T) {
	cfg := DefaultConfig()
	h := New(32, cfg)
	// 0 -> 31 is 5 hops.
	arr := h.Send(0, 0, 31, 32) // 4 flits
	want := h.UncontendedLatency(0, 31, 32)
	if arr != want {
		t.Errorf("arrival = %d, want %d", arr, want)
	}
	if h.Stats().TotalHops != 5 {
		t.Errorf("hops = %d, want 5", h.Stats().TotalHops)
	}
}

func TestSendContentionQueues(t *testing.T) {
	cfg := DefaultConfig()
	h := New(2, cfg)
	// Two messages at the same instant over the same link: the second
	// must depart after the first's serialization time.
	a1 := h.Send(0, 0, 1, 32)
	a2 := h.Send(0, 0, 1, 32)
	if a2 <= a1 {
		t.Errorf("second message (%d) must arrive after first (%d)", a2, a1)
	}
	serial := uint64(h.Flits(32)) * cfg.FlitCycles
	if a2-a1 != serial {
		t.Errorf("queueing delay = %d, want one serialization time %d", a2-a1, serial)
	}
	if h.Stats().QueueCycles == 0 {
		t.Error("queue cycles must be recorded")
	}
}

func TestSendDisjointPathsDontInterfere(t *testing.T) {
	h := New(4, DefaultConfig())
	// 0->1 uses dim-0 link at node 0; 2->3 uses dim-0 link at node 2.
	a1 := h.Send(0, 0, 1, 8)
	a2 := h.Send(0, 2, 3, 8)
	if a1 != a2 {
		t.Errorf("disjoint messages must have equal latency: %d vs %d", a1, a2)
	}
	if h.Stats().QueueCycles != 0 {
		t.Error("no queueing expected on disjoint paths")
	}
}

func TestSendDeterministic(t *testing.T) {
	run := func() []uint64 {
		h := New(8, DefaultConfig())
		var out []uint64
		for i := 0; i < 50; i++ {
			out = append(out, h.Send(uint64(i), i%8, (i*3+1)%8, 32))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: arrival time is never before the uncontended latency and the
// network never travels backward in time.
func TestSendLowerBoundProperty(t *testing.T) {
	h := New(16, DefaultConfig())
	now := uint64(0)
	f := func(srcR, dstR uint8, bytesR uint16, dt uint8) bool {
		now += uint64(dt)
		src, dst := int(srcR%16), int(dstR%16)
		bytes := int(bytesR % 256)
		arr := h.Send(now, src, dst, bytes)
		return arr >= now+h.UncontendedLatency(src, dst, bytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestResetStats(t *testing.T) {
	h := New(2, DefaultConfig())
	h.Send(0, 0, 1, 8)
	h.ResetStats()
	if h.Stats() != (Stats{}) {
		t.Error("stats not cleared")
	}
}

func TestStatsAccumulate(t *testing.T) {
	h := New(4, DefaultConfig())
	h.Send(0, 0, 3, 40) // 2 hops, 5 flits
	s := h.Stats()
	if s.Messages != 1 || s.Bytes != 40 || s.TotalHops != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.TotalLatency == 0 {
		t.Error("latency must be recorded")
	}
}
