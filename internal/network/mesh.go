package network

// Mesh2D is a 2-D mesh with dimension-order wormhole routing — the
// ablation topology, and the one that accepts ANY positive node count
// (the hypercube needs a power of two): nodes fill a near-square grid
// row-major, with the last row possibly partial. Routing is XY, except
// that a message LEAVING the partial last row corrects Y first: its
// own row might not extend to the destination's x, while every row
// above is full. Either order stays on populated nodes — x-correction
// always runs inside a row that contains both endpoints' columns, and
// y-correction only enters the partial row when the destination lives
// there — and both are deterministic, so contention is reproducible.
type Mesh2D struct {
	cfg   Config
	n     int
	w, h  int
	busy  map[linkKey]uint64
	stats Stats
}

// linkKey identifies a unidirectional mesh link by its endpoint nodes.
type linkKey struct {
	from, to int
}

// NewMesh2D builds a w×h mesh for n nodes (any positive count). w is
// the smallest power of two whose square covers n — identical to the
// historical power-of-two-only geometry for those counts.
func NewMesh2D(n int, cfg Config) *Mesh2D {
	if n <= 0 {
		panic("network: node count must be positive")
	}
	w := 1
	for w*w < n {
		w *= 2
	}
	h := (n + w - 1) / w
	return &Mesh2D{cfg: cfg, n: n, w: w, h: h, busy: make(map[linkKey]uint64)}
}

// Nodes returns the node count.
func (m *Mesh2D) Nodes() int { return m.n }

// Width returns the mesh's x extent.
func (m *Mesh2D) Width() int { return m.w }

// Height returns the mesh's y extent.
func (m *Mesh2D) Height() int { return m.h }

func (m *Mesh2D) coord(i int) (x, y int) { return i % m.w, i / m.w }

// Hops returns the Manhattan distance on the mesh.
func (m *Mesh2D) Hops(i, j int) int {
	xi, yi := m.coord(i)
	xj, yj := m.coord(j)
	return abs(xi-xj) + abs(yi-yj)
}

// Diameter returns (w-1) + (h-1).
func (m *Mesh2D) Diameter() int { return m.w - 1 + m.h - 1 }

// Flits returns the flit count for a payload (≥ 1).
func (m *Mesh2D) flits(bytes int) uint64 {
	f := (bytes + m.cfg.FlitBytes - 1) / m.cfg.FlitBytes
	if f < 1 {
		f = 1
	}
	return uint64(f)
}

// Send routes XY (x first, then y), charging per-hop router and wire
// latency plus serialization occupancy on every traversed link.
func (m *Mesh2D) Send(now uint64, src, dst int, payloadBytes int) uint64 {
	if src == dst {
		return now
	}
	flits := m.flits(payloadBytes)
	serial := flits * m.cfg.FlitCycles
	t := now
	cur := src
	hops := 0
	step := func(next int) {
		key := linkKey{cur, next}
		depart := t
		if b := m.busy[key]; b > depart {
			m.stats.QueueCycles += b - depart
			depart = b
		}
		m.busy[key] = depart + serial
		t = depart + m.cfg.RouterCycles + m.cfg.WireCycles
		cur = next
		hops++
	}
	cx, cy := m.coord(cur)
	dx, dy := m.coord(dst)
	// Leaving a partial last row: correct Y first (the source's row may
	// not reach dx, but the column above the source is fully populated).
	if dy != cy && (cy+1)*m.w > m.n {
		for cy != dy {
			step(cur - m.w)
			_, cy = m.coord(cur)
		}
	}
	for cx != dx {
		if cx < dx {
			step(cur + 1)
		} else {
			step(cur - 1)
		}
		cx, cy = m.coord(cur)
	}
	for cy != dy {
		if cy < dy {
			step(cur + m.w)
		} else {
			step(cur - m.w)
		}
		_, cy = m.coord(cur)
	}
	t += (flits - 1) * m.cfg.FlitCycles
	m.stats.Messages++
	m.stats.Bytes += uint64(payloadBytes)
	m.stats.TotalLatency += t - now
	m.stats.TotalHops += uint64(hops)
	return t
}

// UncontendedLatency returns the idle-mesh latency.
func (m *Mesh2D) UncontendedLatency(i, j int, payloadBytes int) uint64 {
	if i == j {
		return 0
	}
	hops := uint64(m.Hops(i, j))
	flits := m.flits(payloadBytes)
	return hops*(m.cfg.RouterCycles+m.cfg.WireCycles) + (flits-1)*m.cfg.FlitCycles
}

// Stats returns accumulated statistics.
func (m *Mesh2D) Stats() Stats { return m.stats }

// ResetStats zeroes the statistics.
func (m *Mesh2D) ResetStats() { m.stats = Stats{} }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
