package network

import (
	"testing"
	"testing/quick"
)

func TestMeshFactorization(t *testing.T) {
	// Power-of-two geometries are pinned to the historical factorization;
	// other counts get the same w with a (possibly partial) last row.
	want := map[int][2]int{
		1: {1, 1}, 2: {2, 1}, 4: {2, 2}, 8: {4, 2}, 16: {4, 4}, 32: {8, 4}, 64: {8, 8},
		3: {2, 2}, 5: {4, 2}, 12: {4, 3},
	}
	for n, wh := range want {
		m := NewMesh2D(n, DefaultConfig())
		if m.Width() != wh[0] || m.Height() != wh[1] {
			t.Errorf("n=%d: %dx%d, want %dx%d", n, m.Width(), m.Height(), wh[0], wh[1])
		}
		if m.Nodes() != n {
			t.Errorf("n=%d: Nodes = %d", n, m.Nodes())
		}
	}
}

func TestMeshInvalidSizePanics(t *testing.T) {
	for _, n := range []int{0, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMesh2D(%d) should panic", n)
				}
			}()
			NewMesh2D(n, DefaultConfig())
		}()
	}
}

// TestMeshPartialLastRowRoutes drives every node pair of a 5-node mesh
// (4×2 grid, last row one node) through Send: XY routing must stay on
// populated nodes, so no index panics, and latency must be at least the
// uncontended bound.
func TestMeshPartialLastRowRoutes(t *testing.T) {
	m := NewMesh2D(5, DefaultConfig())
	for src := 0; src < 5; src++ {
		for dst := 0; dst < 5; dst++ {
			got := m.Send(1000, src, dst, 40)
			if src == dst {
				if got != 1000 {
					t.Errorf("Send(%d,%d) self = %d", src, dst, got)
				}
				continue
			}
			if min := 1000 + m.UncontendedLatency(src, dst, 40); got < min {
				t.Errorf("Send(%d,%d) = %d, below uncontended %d", src, dst, got, min)
			}
		}
	}
	// Every link ever occupied must join two populated nodes — a key
	// touching node ≥ n means routing wandered into the phantom part of
	// the grid (e.g. x-correcting inside the partial last row).
	for key := range m.busy {
		if key.from >= m.n || key.to >= m.n {
			t.Errorf("routing used phantom link %d→%d (n=%d)", key.from, key.to, m.n)
		}
	}
}

func TestMeshHopsManhattan(t *testing.T) {
	m := NewMesh2D(16, DefaultConfig()) // 4×4
	// Node 0 = (0,0), node 15 = (3,3): 6 hops.
	if got := m.Hops(0, 15); got != 6 {
		t.Errorf("Hops(0,15) = %d, want 6", got)
	}
	if got := m.Hops(5, 6); got != 1 {
		t.Errorf("Hops(5,6) = %d, want 1", got)
	}
	if m.Diameter() != 6 {
		t.Errorf("Diameter = %d, want 6", m.Diameter())
	}
}

func TestMeshHopsSymmetric(t *testing.T) {
	m := NewMesh2D(32, DefaultConfig())
	f := func(a, b uint8) bool {
		i, j := int(a%32), int(b%32)
		return m.Hops(i, j) == m.Hops(j, i) && m.Hops(i, i) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeshSendMatchesFormula(t *testing.T) {
	m := NewMesh2D(16, DefaultConfig())
	arr := m.Send(0, 0, 15, 32)
	if arr != m.UncontendedLatency(0, 15, 32) {
		t.Errorf("arrival %d != uncontended %d", arr, m.UncontendedLatency(0, 15, 32))
	}
	if m.Stats().TotalHops != 6 {
		t.Errorf("hops = %d", m.Stats().TotalHops)
	}
}

func TestMeshSelfSendFree(t *testing.T) {
	m := NewMesh2D(4, DefaultConfig())
	if got := m.Send(42, 2, 2, 64); got != 42 {
		t.Errorf("self send = %d", got)
	}
	if m.UncontendedLatency(1, 1, 64) != 0 {
		t.Error("self latency must be 0")
	}
}

func TestMeshContention(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMesh2D(4, cfg)
	a1 := m.Send(0, 0, 1, 32)
	a2 := m.Send(0, 0, 1, 32)
	serial := m.flits(32) * cfg.FlitCycles
	if a2-a1 != serial {
		t.Errorf("queueing delay = %d, want %d", a2-a1, serial)
	}
}

func TestMeshXYRoutingShareLinks(t *testing.T) {
	// In a 4×4 mesh, 0->3 and 0->1 share the 0->1 link under XY routing.
	m := NewMesh2D(16, DefaultConfig())
	m.Send(0, 0, 3, 32)
	m.Send(0, 0, 1, 32)
	if m.Stats().QueueCycles == 0 {
		t.Error("XY routes through a shared first link must queue")
	}
}

func TestMeshDiameterExceedsHypercube(t *testing.T) {
	// The ablation point: a mesh has longer worst-case distances, so the
	// DDV's distance matrix sees a wider dynamic range.
	for _, n := range []int{16, 32, 64} {
		mesh := NewMesh2D(n, DefaultConfig())
		cube := New(n, DefaultConfig())
		if mesh.Diameter() <= cube.Diameter() {
			t.Errorf("n=%d: mesh diameter %d should exceed hypercube %d",
				n, mesh.Diameter(), cube.Diameter())
		}
	}
}

func TestNewTopologyDispatch(t *testing.T) {
	if _, ok := NewTopology(KindHypercube, 8, DefaultConfig()).(*Hypercube); !ok {
		t.Error("KindHypercube must build a hypercube")
	}
	if _, ok := NewTopology("", 8, DefaultConfig()).(*Hypercube); !ok {
		t.Error("empty kind must default to hypercube")
	}
	if _, ok := NewTopology(KindMesh2D, 8, DefaultConfig()).(*Mesh2D); !ok {
		t.Error("KindMesh2D must build a mesh")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown kind must panic")
		}
	}()
	NewTopology("torus", 8, DefaultConfig())
}

func TestMeshDeterministic(t *testing.T) {
	run := func() []uint64 {
		m := NewMesh2D(16, DefaultConfig())
		var out []uint64
		for i := 0; i < 60; i++ {
			out = append(out, m.Send(uint64(i), i%16, (i*5+3)%16, 40))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

// Property: mesh arrivals respect the uncontended lower bound.
func TestMeshLowerBoundProperty(t *testing.T) {
	m := NewMesh2D(16, DefaultConfig())
	now := uint64(0)
	f := func(srcR, dstR uint8, bytesR uint16, dt uint8) bool {
		now += uint64(dt)
		src, dst := int(srcR%16), int(dstR%16)
		bytes := int(bytesR % 256)
		return m.Send(now, src, dst, bytes) >= now+m.UncontendedLatency(src, dst, bytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
