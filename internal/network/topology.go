package network

// Topology is the interconnect abstraction the coherence protocol and
// machine are written against. The paper's system uses a hypercube
// (Table I); a 2-D mesh is provided as an ablation, since the DDV's
// distance matrix D is explicitly topology-programmable.
type Topology interface {
	// Nodes returns the node count.
	Nodes() int
	// Hops returns the routing distance between two nodes.
	Hops(i, j int) int
	// Diameter returns the maximum hop count between any node pair.
	Diameter() int
	// Send injects a message at time now and returns its arrival time,
	// accounting for link contention.
	Send(now uint64, src, dst int, payloadBytes int) uint64
	// UncontendedLatency returns the idle-network latency between two
	// nodes for a payload.
	UncontendedLatency(i, j int, payloadBytes int) uint64
	// Stats returns accumulated traffic statistics.
	Stats() Stats
	// ResetStats zeroes the statistics.
	ResetStats()
}

// Compile-time interface checks.
var (
	_ Topology = (*Hypercube)(nil)
	_ Topology = (*Mesh2D)(nil)
)

// Kind names a topology for configuration.
type Kind string

const (
	// KindHypercube is the paper's Table I network.
	KindHypercube Kind = "hypercube"
	// KindMesh2D is the ablation topology.
	KindMesh2D Kind = "mesh"
)

// NewTopology constructs the named topology.
func NewTopology(kind Kind, n int, cfg Config) Topology {
	switch kind {
	case "", KindHypercube:
		return New(n, cfg)
	case KindMesh2D:
		return NewMesh2D(n, cfg)
	default:
		panic("network: unknown topology kind " + string(kind))
	}
}
