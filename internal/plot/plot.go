// Package plot renders CoV curves as ASCII charts, reproducing the
// paper's figure presentation (CoV on a logarithmic y axis against the
// number of phases) directly in a terminal.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one chart point.
type Point struct {
	X, Y float64
}

// Series is a named, marked point set.
type Series struct {
	Name   string
	Marker byte
	Points []Point
}

// Chart is an ASCII chart. Zero value is not usable; construct with New.
type Chart struct {
	width, height int
	logY          bool
	series        []Series
	title         string
	xLabel        string
	yLabel        string
}

// DefaultMarkers are assigned to series in order when none is given.
const DefaultMarkers = "*o+x#@%&"

// New returns a chart with the given plot-area size in characters.
func New(width, height int) *Chart {
	if width < 16 || height < 4 {
		panic("plot: chart area too small")
	}
	return &Chart{width: width, height: height}
}

// Title sets the chart title.
func (c *Chart) Title(t string) *Chart { c.title = t; return c }

// LogY switches the y axis to log scale (the paper's presentation).
func (c *Chart) LogY() *Chart { c.logY = true; return c }

// Labels sets the axis labels.
func (c *Chart) Labels(x, y string) *Chart { c.xLabel, c.yLabel = x, y; return c }

// Add appends a series; a marker is assigned automatically.
func (c *Chart) Add(name string, pts []Point) *Chart {
	m := DefaultMarkers[len(c.series)%len(DefaultMarkers)]
	c.series = append(c.series, Series{Name: name, Marker: m, Points: pts})
	return c
}

// bounds computes the data extent across all series, padding degenerate
// ranges.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.series {
		for _, p := range s.Points {
			if c.logY && p.Y <= 0 {
				continue
			}
			xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
			ymin, ymax = math.Min(ymin, p.Y), math.Max(ymax, p.Y)
		}
	}
	if math.IsInf(xmin, 1) {
		return 0, 0, 0, 0, false
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin * 2
		if ymax == 0 {
			ymax = 1
		}
	}
	return xmin, xmax, ymin, ymax, true
}

func (c *Chart) yTransform(y, ymin, ymax float64) float64 {
	if c.logY {
		return (math.Log10(y) - math.Log10(ymin)) / (math.Log10(ymax) - math.Log10(ymin))
	}
	return (y - ymin) / (ymax - ymin)
}

// Render draws the chart.
func (c *Chart) Render() string {
	var b strings.Builder
	if c.title != "" {
		fmt.Fprintf(&b, "%s\n", c.title)
	}
	xmin, xmax, ymin, ymax, ok := c.bounds()
	if !ok {
		b.WriteString("(no data)\n")
		return b.String()
	}
	grid := make([][]byte, c.height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", c.width))
	}
	for _, s := range c.series {
		for _, p := range s.Points {
			if c.logY && p.Y <= 0 {
				continue
			}
			fx := (p.X - xmin) / (xmax - xmin)
			fy := c.yTransform(p.Y, ymin, ymax)
			col := int(math.Round(fx * float64(c.width-1)))
			row := c.height - 1 - int(math.Round(fy*float64(c.height-1)))
			if col >= 0 && col < c.width && row >= 0 && row < c.height {
				grid[row][col] = s.Marker
			}
		}
	}
	// y-axis tick labels at top, middle, bottom.
	yTick := func(frac float64) float64 {
		if c.logY {
			return math.Pow(10, math.Log10(ymin)+frac*(math.Log10(ymax)-math.Log10(ymin)))
		}
		return ymin + frac*(ymax-ymin)
	}
	for row := 0; row < c.height; row++ {
		label := "        "
		switch row {
		case 0:
			label = fmt.Sprintf("%8.3g", yTick(1))
		case c.height / 2:
			label = fmt.Sprintf("%8.3g", yTick(0.5))
		case c.height - 1:
			label = fmt.Sprintf("%8.3g", yTick(0))
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[row]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", c.width))
	fmt.Fprintf(&b, "%s  %-*.3g%*.3g\n", strings.Repeat(" ", 8), c.width/2, xmin, c.width-c.width/2, xmax)
	if c.xLabel != "" || c.yLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s%s\n", strings.Repeat(" ", 8), c.xLabel, c.yLabel,
			map[bool]string{true: " (log)", false: ""}[c.logY])
	}
	// Legend (stable order).
	names := make([]string, 0, len(c.series))
	for _, s := range c.series {
		names = append(names, fmt.Sprintf("%c %s", s.Marker, s.Name))
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", 8), strings.Join(names, "   "))
	return b.String()
}
