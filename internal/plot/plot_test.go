package plot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	c := New(40, 10).Title("test chart").Labels("phases", "CoV")
	c.Add("a", []Point{{1, 0.1}, {5, 0.5}, {10, 1.0}})
	out := c.Render()
	for _, want := range []string{"test chart", "legend:", "* a", "x: phases", "y: CoV"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") {
		t.Error("marker not plotted")
	}
}

func TestRenderEmpty(t *testing.T) {
	out := New(40, 10).Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart: %q", out)
	}
}

func TestRenderLogY(t *testing.T) {
	c := New(40, 12).LogY()
	c.Add("curve", []Point{{1, 0.01}, {10, 0.1}, {20, 1.0}})
	out := c.Render()
	if !strings.Contains(out, "(log)") && !strings.Contains(out, "0.01") {
		t.Errorf("log chart missing annotations:\n%s", out)
	}
	// On a log axis 0.01 -> 0.1 -> 1.0 are equally spaced: the three
	// markers should appear on distinct rows spanning the chart.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		// Plot-area rows contain the axis bar; the legend line does not.
		if strings.Contains(line, "|") && strings.Contains(line, "*") {
			rows++
		}
	}
	if rows != 3 {
		t.Errorf("markers on %d rows, want 3:\n%s", rows, out)
	}
}

func TestRenderLogYDropsNonPositive(t *testing.T) {
	c := New(40, 8).LogY()
	c.Add("a", []Point{{1, 0}, {2, 0.5}, {3, 1}})
	out := c.Render()
	if strings.Contains(out, "(no data)") {
		t.Error("positive points must still render")
	}
}

func TestMultipleSeriesDistinctMarkers(t *testing.T) {
	c := New(40, 8)
	c.Add("one", []Point{{1, 1}})
	c.Add("two", []Point{{2, 2}})
	out := c.Render()
	if !strings.Contains(out, "* one") || !strings.Contains(out, "o two") {
		t.Errorf("legend markers wrong:\n%s", out)
	}
}

func TestDegenerateRanges(t *testing.T) {
	// Single point and constant series must not divide by zero.
	out := New(20, 4).Add("p", []Point{{3, 0.5}}).Render()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("degenerate range produced NaN/Inf:\n%s", out)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(4, 1)
}
