// Package predictor implements the phase predictors the paper names as
// the next pipeline stage ("this information is passed to a phase
// predictor, which infers the phase for the next sampling interval") and
// as future work. Three standard predictors are provided:
//
//   - LastPhase: predicts the next interval repeats the current phase.
//   - Markov: first-order transition table with per-state counters.
//   - RunLength: (phase, observed run length) indexed table, the
//     structure Sherwood et al. used for phase prediction.
package predictor

import (
	"fmt"
	"sort"
)

// Predictor forecasts the next interval's phase ID from the observed
// phase sequence.
type Predictor interface {
	// Predict returns the forecast for the next interval.
	Predict() int
	// Observe reports the actual phase of the interval that just ended.
	Observe(phase int)
	// Name identifies the predictor in reports.
	Name() string
}

// registry maps report names to fresh-predictor constructors. Every
// predictor is stateful, so grids must construct one instance per
// (configuration, phase stream) — never share.
var registry = map[string]func() Predictor{
	"last-phase": func() Predictor { return NewLastPhase() },
	"markov":     func() Predictor { return NewMarkov() },
	"run-length": func() Predictor { return NewRunLength(0) },
}

// ByName constructs a fresh predictor by its registry name
// ("last-phase", "markov", "run-length").
func ByName(name string) (Predictor, error) {
	mk, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("predictor: unknown predictor %q (want %v)", name, Names())
	}
	return mk(), nil
}

// Names returns the registered predictor names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Accuracy replays a phase sequence through a predictor and returns the
// fraction of correct next-phase predictions (the first interval is not
// scored — there is nothing to predict from).
func Accuracy(p Predictor, phases []int) float64 {
	if len(phases) < 2 {
		return 1
	}
	correct := 0
	p.Observe(phases[0])
	for _, actual := range phases[1:] {
		if p.Predict() == actual {
			correct++
		}
		p.Observe(actual)
	}
	return float64(correct) / float64(len(phases)-1)
}

// LastPhase predicts the current phase persists.
type LastPhase struct {
	last int
}

// NewLastPhase returns a last-value predictor.
func NewLastPhase() *LastPhase { return &LastPhase{last: -1} }

// Name implements Predictor.
func (p *LastPhase) Name() string { return "last-phase" }

// Predict implements Predictor.
func (p *LastPhase) Predict() int { return p.last }

// Observe implements Predictor.
func (p *LastPhase) Observe(phase int) { p.last = phase }

// Markov is a first-order Markov predictor: for each phase it counts the
// successor phases seen and predicts the most frequent one, falling back
// to last-phase for unseen states.
type Markov struct {
	last  int
	table map[int]map[int]int
}

// NewMarkov returns an empty Markov predictor.
func NewMarkov() *Markov {
	return &Markov{last: -1, table: make(map[int]map[int]int)}
}

// Name implements Predictor.
func (p *Markov) Name() string { return "markov" }

// Predict implements Predictor.
func (p *Markov) Predict() int {
	succ := p.table[p.last]
	best, bestCount := p.last, 0
	for phase, count := range succ {
		if count > bestCount || (count == bestCount && phase < best) {
			best, bestCount = phase, count
		}
	}
	return best
}

// Observe implements Predictor.
func (p *Markov) Observe(phase int) {
	if p.last >= 0 {
		succ := p.table[p.last]
		if succ == nil {
			succ = make(map[int]int)
			p.table[p.last] = succ
		}
		succ[phase]++
	}
	p.last = phase
}

// RunLength predicts using (phase, run length) pairs: it learns what
// follows a run of k consecutive intervals of phase q, which captures
// periodic phase patterns that pure Markov prediction conflates.
type RunLength struct {
	last     int
	run      int
	maxRun   int
	table    map[runKey]map[int]int
	fallback *Markov
}

type runKey struct {
	phase, run int
}

// NewRunLength returns a run-length predictor; runs longer than maxRun
// are saturated (maxRun ≤ 0 selects 64).
func NewRunLength(maxRun int) *RunLength {
	if maxRun <= 0 {
		maxRun = 64
	}
	return &RunLength{
		last:     -1,
		maxRun:   maxRun,
		table:    make(map[runKey]map[int]int),
		fallback: NewMarkov(),
	}
}

// Name implements Predictor.
func (p *RunLength) Name() string { return "run-length" }

// Predict implements Predictor.
func (p *RunLength) Predict() int {
	succ := p.table[runKey{p.last, p.run}]
	best, bestCount := -1, 0
	for phase, count := range succ {
		if count > bestCount || (count == bestCount && phase < best) {
			best, bestCount = phase, count
		}
	}
	if bestCount == 0 {
		return p.fallback.Predict()
	}
	return best
}

// Observe implements Predictor.
func (p *RunLength) Observe(phase int) {
	if p.last >= 0 {
		key := runKey{p.last, p.run}
		succ := p.table[key]
		if succ == nil {
			succ = make(map[int]int)
			p.table[key] = succ
		}
		succ[phase]++
	}
	if phase == p.last {
		if p.run < p.maxRun {
			p.run++
		}
	} else {
		p.run = 1
	}
	p.fallback.Observe(phase)
	p.last = phase
}
