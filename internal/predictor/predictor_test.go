package predictor

import (
	"testing"
	"testing/quick"
)

func repeat(pattern []int, times int) []int {
	out := make([]int, 0, len(pattern)*times)
	for i := 0; i < times; i++ {
		out = append(out, pattern...)
	}
	return out
}

func TestNames(t *testing.T) {
	for _, p := range []Predictor{NewLastPhase(), NewMarkov(), NewRunLength(0)} {
		if p.Name() == "" {
			t.Error("predictor must have a name")
		}
	}
}

// TestByName checks the registry round-trips every name to a fresh
// predictor whose Name matches, and rejects unknown names.
func TestByName(t *testing.T) {
	names := Names()
	if len(names) != 3 {
		t.Fatalf("Names() = %v, want 3 predictors", names)
	}
	for _, name := range names {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
		// Fresh state every call: after training one instance, a second
		// must still make the untrained prediction (-1 for all three).
		q, _ := ByName(name)
		p.Observe(1)
		p.Observe(2)
		if got := q.Predict(); got != -1 {
			t.Errorf("ByName(%q): untouched instance predicts %d, want -1 (shared state?)", name, got)
		}
	}
	if _, err := ByName("psychic"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestAccuracyTrivial(t *testing.T) {
	if got := Accuracy(NewLastPhase(), nil); got != 1 {
		t.Errorf("empty sequence accuracy = %v", got)
	}
	if got := Accuracy(NewLastPhase(), []int{3}); got != 1 {
		t.Errorf("single-element accuracy = %v", got)
	}
}

func TestLastPhaseOnConstantSequence(t *testing.T) {
	seq := repeat([]int{5}, 100)
	if got := Accuracy(NewLastPhase(), seq); got != 1 {
		t.Errorf("constant sequence accuracy = %v, want 1", got)
	}
}

func TestLastPhaseOnAlternatingSequence(t *testing.T) {
	seq := repeat([]int{0, 1}, 50)
	if got := Accuracy(NewLastPhase(), seq); got != 0 {
		t.Errorf("alternating accuracy = %v, want 0 (always wrong)", got)
	}
}

func TestMarkovLearnsAlternation(t *testing.T) {
	seq := repeat([]int{0, 1}, 50)
	got := Accuracy(NewMarkov(), seq)
	// After the first cycle the transitions 0->1 and 1->0 dominate.
	if got < 0.9 {
		t.Errorf("markov on alternating = %v, want > 0.9", got)
	}
}

func TestMarkovBeatsLastPhaseOnCycles(t *testing.T) {
	seq := repeat([]int{0, 1, 2}, 40)
	lp := Accuracy(NewLastPhase(), seq)
	mk := Accuracy(NewMarkov(), seq)
	if mk <= lp {
		t.Errorf("markov (%v) must beat last-phase (%v) on a 3-cycle", mk, lp)
	}
}

func TestRunLengthLearnsCountedRuns(t *testing.T) {
	// Pattern: 3×A then 1×B — Markov at state A mostly predicts A and
	// always misses the A->B transition; run-length nails it.
	seq := repeat([]int{0, 0, 0, 1}, 50)
	rl := Accuracy(NewRunLength(8), seq)
	mk := Accuracy(NewMarkov(), seq)
	if rl <= mk {
		t.Errorf("run-length (%v) must beat markov (%v) on counted runs", rl, mk)
	}
	if rl < 0.9 {
		t.Errorf("run-length accuracy = %v, want > 0.9", rl)
	}
}

func TestRunLengthSaturation(t *testing.T) {
	// Runs longer than maxRun share a table entry; the predictor must
	// still behave sanely (predict continuation mid-run).
	p := NewRunLength(2)
	seq := repeat([]int{7}, 100)
	if got := Accuracy(p, seq); got != 1 {
		t.Errorf("saturated constant run accuracy = %v", got)
	}
}

func TestPredictorsDeterministic(t *testing.T) {
	f := func(raw []uint8) bool {
		seq := make([]int, len(raw))
		for i, r := range raw {
			seq[i] = int(r % 5)
		}
		for _, mk := range []func() Predictor{
			func() Predictor { return NewLastPhase() },
			func() Predictor { return NewMarkov() },
			func() Predictor { return NewRunLength(16) },
		} {
			if Accuracy(mk(), seq) != Accuracy(mk(), seq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: accuracy is always in [0, 1].
func TestAccuracyBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		seq := make([]int, len(raw))
		for i, r := range raw {
			seq[i] = int(r % 7)
		}
		for _, p := range []Predictor{NewLastPhase(), NewMarkov(), NewRunLength(8)} {
			a := Accuracy(p, seq)
			if a < 0 || a > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
