// Package prof wires the -cpuprofile/-memprofile flags of the CLIs to
// runtime/pprof, so perf work on the simulator starts from a profile
// instead of a guess (DESIGN.md §10).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges a
// heap profile at memPath (if non-empty). The returned stop function
// finishes both and is safe to call exactly once; with both paths empty
// it is a no-op.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // materialize final live-heap numbers
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
		}
	}, nil
}
