// Package rng provides a small, deterministic splitmix64 generator used
// by the workload generators. Determinism across runs (and platforms) is
// a hard requirement: identical seeds must reproduce identical
// instruction streams and therefore identical CoV curves.
package rng

// Rng is a splitmix64 generator. The zero value is a valid generator
// seeded with 0.
type Rng struct {
	state uint64
}

// New returns a generator with the given seed.
func New(seed uint64) *Rng { return &Rng{state: seed} }

// Uint64 returns the next value in the sequence.
func (r *Rng) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn requires n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rng) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Hash64 deterministically mixes a value (stateless splitmix64 step),
// useful for per-item pseudo-random decisions that must not depend on
// evaluation order.
func Hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
