package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same sequence")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("value %d appeared %d/10000 times (badly skewed)", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHash64Stateless(t *testing.T) {
	if Hash64(123) != Hash64(123) {
		t.Error("Hash64 must be pure")
	}
	if Hash64(123) == Hash64(124) {
		t.Error("adjacent inputs must differ")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rng
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero-value generator should still produce values")
	}
}
