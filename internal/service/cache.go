package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsmphase/internal/harness"
	"dsmphase/internal/rng"
)

// The result cache. A finished job's merged results are serialized as
// a one-shard artifact keyed by the grid name plus the plan's
// fingerprint (and, for tuning grids, the tuning axes) — everything
// that determines the report's bytes. A repeat submission of the same
// key is answered from disk without dispatching a single worker, which
// is what lets the service absorb many users re-running the same
// sweeps. The cache is LRU-bounded by total bytes: reads refresh a
// file's mtime, and writes evict the stalest entries until the budget
// holds.

// DefaultCacheBytes bounds the cache when Config.CacheBytes is 0.
const DefaultCacheBytes = 256 << 20

// Cache is the fingerprint-keyed disk store of merged job results.
type Cache struct {
	mu             sync.Mutex
	dir            string
	budget         int64
	evictions      atomic.Int64 // LRU budget evictions
	corruptDropped atomic.Int64 // unreadable/checksum-failed entries dropped by Get
}

// NewCache opens (creating) a cache directory with a byte budget.
func NewCache(dir string, budget int64) (*Cache, error) {
	if budget <= 0 {
		budget = DefaultCacheBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir, budget: budget}, nil
}

// JobKey derives the cache key of a grid job: the grid name, the
// plan's fingerprint, and — because MergeShards validates them
// separately from the fingerprint — the tuning axes of tuning grids.
// Two submissions share a key exactly when their reports share bytes.
func JobKey(g harness.NamedGrid) string {
	key := g.Name + "-" + g.Spec.Plan().Fingerprint()
	if g.Tuning {
		h := rng.Hash64(uint64(len(g.Spec.Predictors())))
		for _, p := range g.Spec.Predictors() {
			for _, b := range []byte(p) {
				h = rng.Hash64(h ^ uint64(b))
			}
		}
		for _, c := range g.Spec.Controllers() {
			for _, b := range []byte(c.Name) {
				h = rng.Hash64(h ^ uint64(b))
			}
			h = rng.Hash64(h ^ uint64(c.TrialsPerConfig))
		}
		h = rng.Hash64(h ^ uint64(int64(g.Spec.PhaseBudget()*1e6)))
		key += fmt.Sprintf("-t%016x", h)
	}
	return key
}

func (c *Cache) path(key string) string {
	// Keys are [-a-z0-9] by construction (grid names + hex); guard
	// anyway so a hostile key cannot escape the directory.
	return filepath.Join(c.dir, strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, key)+".json")
}

// Get returns the cached artifact for key, refreshing its LRU stamp.
func (c *Cache) Get(key string) (*harness.ShardArtifact, bool) {
	a, ok, _ := c.get(key)
	return a, ok
}

// get is Get plus the eviction verdict: an entry that exists on disk
// but no longer reads back — a failed content checksum above all — is
// removed (the next identical submission recomputes it) and reported
// as dropped, so the caller can publish the cache-evict event.
func (c *Cache) get(key string) (a *harness.ShardArtifact, ok, dropped bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.path(key)
	a, err := harness.ReadShardArtifactFile(p)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			_ = os.Remove(p)
			c.corruptDropped.Add(1)
			return nil, false, true
		}
		return nil, false, false
	}
	now := time.Now()
	_ = os.Chtimes(p, now, now)
	return a, true, false
}

// Put stores an artifact under key and evicts least-recently-used
// entries until the byte budget holds (the entry just written is never
// evicted, even if it alone exceeds the budget — serving an oversized
// result beats refusing it).
func (c *Cache) Put(key string, a *harness.ShardArtifact) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.path(key)
	tmp := p + ".tmp"
	if err := harness.WriteShardArtifactFile(tmp, a); err != nil {
		return err
	}
	if err := os.Rename(tmp, p); err != nil {
		return err
	}
	return c.evict(p)
}

// evict removes stalest entries until the budget holds, sparing keep.
func (c *Cache) evict(keep string) error {
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return err
	}
	var files []entry
	var total int64
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, entry{filepath.Join(c.dir, e.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= c.budget {
			break
		}
		if f.path == keep {
			continue
		}
		if err := os.Remove(f.path); err == nil {
			total -= f.size
			c.evictions.Add(1)
		}
	}
	return nil
}

// Evictions counts LRU budget evictions since startup (/v1/stats).
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// CorruptDropped counts unreadable entries dropped by Get (/v1/stats).
func (c *Cache) CorruptDropped() int64 { return c.corruptDropped.Load() }

// Len returns the number of cached entries (tests and /v1/stats).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}
