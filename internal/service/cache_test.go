package service

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dsmphase/internal/harness"
	"dsmphase/internal/workloads"
)

func testArtifact(tag string) *harness.ShardArtifact {
	return &harness.ShardArtifact{
		Format: harness.ShardFormat,
		Shard:  0,
		Of:     1,
		Grids:  []harness.ShardGrid{{Name: tag, Fingerprint: tag, Cells: 1}},
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := NewCache(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("Get on empty cache hit")
	}
	if err := c.Put("k1", testArtifact("g1")); err != nil {
		t.Fatal(err)
	}
	a, ok := c.Get("k1")
	if !ok {
		t.Fatal("Put then Get missed")
	}
	if a.Grids[0].Name != "g1" {
		t.Fatalf("got grid %q", a.Grids[0].Name)
	}
}

// TestCacheLRUEviction: with a budget of roughly two entries, writing
// a third evicts the least-recently-used one — and a Get refreshes an
// entry's recency, steering eviction to the untouched one.
func TestCacheLRUEviction(t *testing.T) {
	dir := t.TempDir()
	probe, err := NewCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Put("probe", testArtifact("p")); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("probe entry: %v, %v", entries, err)
	}
	size := fileSize(t, entries[0])

	c, err := NewCache(t.TempDir(), 2*size+size/2) // room for two entries
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), testArtifact("g")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond) // distinct mtimes on coarse filesystems
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	time.Sleep(5 * time.Millisecond)
	if err := c.Put("k2", testArtifact("g")); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries after eviction, want 2", c.Len())
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("LRU entry k1 survived eviction")
	}
	for _, k := range []string{"k0", "k2"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %s was evicted, want k1", k)
		}
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestJobKeySeparatesTuningAxes: two tuning grids with identical plans
// but different tuning axes must not share a cache entry.
func TestJobKeySeparatesTuningAxes(t *testing.T) {
	gp := harness.GridParams{Size: workloads.SizeTest, Apps: []string{"lu"}, Seed: 1, Replicates: 1}
	a, err := harness.BuildGrid("tuning", gp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := harness.BuildGrid("tuning", gp)
	if err != nil {
		t.Fatal(err)
	}
	if JobKey(a) != JobKey(b) {
		t.Fatal("identical tuning grids got different keys")
	}
	plain, err := harness.BuildGrid("figure2", gp)
	if err != nil {
		t.Fatal(err)
	}
	if JobKey(a) == JobKey(plain) {
		t.Fatal("tuning and plain grids share a key")
	}
}
