package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"time"

	"dsmphase/internal/faults"
	"dsmphase/internal/harness"
	"dsmphase/internal/rng"
)

// The chaos campaign: internal/wdlfuzz's shape applied to the service.
// RunChaos derives K seeded fault schedules from one campaign seed,
// runs each against a fresh coordinator whose workers are wrapped in
// the internal/faults injection plane, and holds every terminal job to
// an oracle: a completed job's report must be byte-identical to a
// direct Spec.Run in every encoder format, and a degraded job must
// mark exactly its injured cells — every error cell listed in
// Status.Injured, every healthy cell byte-identical (wall clock aside)
// to the direct run's. Schedules alternate two profiles:
//
//   - recover (even k): every shard draws from the default fault mix
//     but turns reliable after two attempts, so the dispatcher's
//     retry/backoff/quarantine machinery must land the job in "done".
//   - hostile (odd k): one victim shard cycles a doomed fault list
//     through its whole attempt budget; the job opts into AllowPartial
//     and must land in "degraded" with the victim's unrecovered cells
//     — and only those — injured.
//
// The campaign then replays one hostile schedule (same seed, fresh
// coordinator) and requires the identical outcome — the determinism
// oracle — and finally corrupts a result-cache entry on disk and
// requires the next identical submission to evict it and recompute,
// byte-identical again.

// ChaosConfig parameterizes a campaign.
type ChaosConfig struct {
	// Schedules is the seeded-schedule count K (0 = 4; min 2, so both
	// profiles run).
	Schedules int
	// Seed keys the campaign; schedule k draws its fault-plan seed from
	// Hash64(Seed ^ (k+1)).
	Seed uint64
	// DataDir is the campaign's scratch root; each schedule's
	// coordinator gets its own subdirectory.
	DataDir string
	// ExperimentsBin is the worker binary path.
	ExperimentsBin string
	// Logf, if non-nil, receives campaign progress lines.
	Logf func(format string, args ...any)
}

func (c *ChaosConfig) fill() {
	if c.Schedules <= 0 {
		c.Schedules = 4
	}
	if c.Schedules < 2 {
		c.Schedules = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// ChaosOutcome summarizes one schedule's terminal job — the unit the
// determinism oracle compares across replays.
type ChaosOutcome struct {
	Schedule int    `json:"schedule"`
	Profile  string `json:"profile"` // "recover" or "hostile"
	Grid     string `json:"grid"`
	State    string `json:"state"`
	Injured  []int  `json:"injured,omitempty"`
}

// ChaosResult is a campaign's summary. An empty Violations slice is
// the pass verdict.
type ChaosResult struct {
	Schedules  int            `json:"schedules"`
	Completed  int            `json:"completed"`
	Degraded   int            `json:"degraded"`
	Outcomes   []ChaosOutcome `json:"outcomes"`
	Violations []string       `json:"violations,omitempty"`
}

// chaosRef is one grid's oracle material, computed once per campaign:
// the direct (unsharded, in-process) run's report bytes per encoder
// format, and its per-cell results keyed by plan index with the wall
// clock — the artifact's only nondeterministic field — zeroed.
type chaosRef struct {
	grid    harness.NamedGrid
	formats []string
	reports map[string][]byte
	cells   map[int]harness.ShardCell
}

// chaosRequest is the small fast grid chaos schedules submit, the same
// shape the service end-to-end tests use.
func chaosRequest(grid string) JobRequest {
	return JobRequest{
		Grid:     grid,
		Size:     "test",
		Apps:     []string{"lu"},
		Interval: 20_000,
		Shards:   2,
	}
}

// buildChaosRef runs the request's grid directly — no shards, no
// workers, no coordinator — and captures the oracle's reference bytes.
func buildChaosRef(req JobRequest) (*chaosRef, error) {
	req.normalize()
	g, err := req.compile()
	if err != nil {
		return nil, err
	}
	ref := &chaosRef{grid: g, reports: map[string][]byte{}, cells: map[int]harness.ShardCell{}}
	var results []harness.CellResult
	if g.Tuning {
		ref.formats = harness.TuningEncoderNames()
		rep, err := g.Spec.RunTuning(harness.Options{})
		if err != nil {
			return nil, err
		}
		for _, format := range ref.formats {
			enc, err := harness.NewTuningEncoder(format, req.Grid)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := enc.Encode(&buf, rep); err != nil {
				return nil, err
			}
			ref.reports[format] = buf.Bytes()
		}
		if results, err = g.Spec.RunTuningShard(0, 1, harness.Options{}); err != nil {
			return nil, err
		}
	} else {
		ref.formats = harness.EncoderNames()
		rep := g.Spec.Run(harness.Options{})
		for _, format := range ref.formats {
			enc, err := harness.NewEncoder(format, req.Grid)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := enc.Encode(&buf, rep); err != nil {
				return nil, err
			}
			ref.reports[format] = buf.Bytes()
		}
		results = g.Spec.RunShard(0, 1, harness.Options{})
	}
	sg, err := harness.NewShardGrid(g.Name, g.Spec, results, g.Tuning, false)
	if err != nil {
		return nil, err
	}
	for _, sc := range sg.Results {
		sc.WallNS = 0
		ref.cells[sc.Index] = sc
	}
	return ref, nil
}

// sameCell compares two serialized cells ignoring the wall clock.
func sameCell(a, b harness.ShardCell) bool {
	a.WallNS, b.WallNS = 0, 0
	ja, errA := json.Marshal(a)
	jb, errB := json.Marshal(b)
	return errA == nil && errB == nil && bytes.Equal(ja, jb)
}

// chaosPlan builds schedule k's fault plan and request. The hostile
// profile picks as victim the shard holding plan cell 0 — always a
// non-empty shard, so a degraded outcome always injures something —
// and cycles it between an attempt that never starts and one that
// completes the shard but tears the stream tail and drops the
// artifact, exercising both degraded-synthesis sources (recovered
// stream cells and never-seen cells).
func chaosPlan(k int, seed uint64, req JobRequest, grid harness.NamedGrid) (*faults.Plan, JobRequest, string) {
	plan := &faults.Plan{
		Seed:           seed,
		Mix:            faults.DefaultMix(),
		ReliableAfter:  2,
		SlowStartDelay: 10 * time.Millisecond,
	}
	if k%2 == 0 {
		return plan, req, "recover"
	}
	of := req.Shards
	for s := 0; s < of; s++ {
		idxs := grid.Spec.Plan().ShardIndices(s, of)
		if len(idxs) > 0 && idxs[0] == 0 {
			plan.Victim = s
			break
		}
	}
	plan.VictimMix = []faults.Kind{faults.TransientExec, faults.TornStream}
	req.AllowPartial = true
	return plan, req, "hostile"
}

// runChaosSchedule runs one schedule end to end and appends any oracle
// violations. The returned outcome feeds the determinism oracle.
func runChaosSchedule(cc ChaosConfig, k int, dataDir string, ref *chaosRef, req JobRequest, plan *faults.Plan, profile string) (ChaosOutcome, []string) {
	out := ChaosOutcome{Schedule: k, Profile: profile, Grid: req.Grid}
	fail := func(format string, args ...any) []string {
		return []string{fmt.Sprintf("schedule %d (%s, %s): %s", k, profile, req.Grid, fmt.Sprintf(format, args...))}
	}
	coord, err := New(Config{
		DataDir:         dataDir,
		ExperimentsBin:  cc.ExperimentsBin,
		Workers:         []string{"local", "local"},
		MaxAttempts:     4,
		RetryBase:       time.Millisecond,
		RetryMax:        4 * time.Millisecond,
		AttemptTimeout:  5 * time.Second,
		StragglerAfter:  time.Hour, // stragglers off: attempt counts stay schedule-deterministic
		QuarantineAfter: 2,
		WorkerParallel:  1, // sequential cells: stream order (and torn-tail identity) is deterministic
		PollInterval:    20 * time.Millisecond,
		Logf:            cc.Logf,
		WrapWorker:      func(w Worker) Worker { return faults.Wrap(w, plan, cc.Logf) },
	})
	if err != nil {
		return out, fail("coordinator: %v", err)
	}
	defer coord.Close()

	st, err := coord.Submit(req)
	if err != nil {
		return out, fail("submit: %v", err)
	}
	st, err = waitChaosJob(coord, st.ID, 2*time.Minute)
	if err != nil {
		return out, fail("%v", err)
	}
	out.State = st.State
	out.Injured = append([]int(nil), st.Injured...)

	j, _ := coord.Job(st.ID)
	switch profile {
	case "recover":
		// The plan turns reliable after two attempts with four budgeted,
		// so the dispatcher must finish the job — and byte-identically.
		if st.State != StateDone {
			return out, fail("state %q (error %q), want done", st.State, st.Error)
		}
		if len(st.Injured) != 0 {
			return out, fail("done job lists injured cells %v", st.Injured)
		}
		var violations []string
		for _, format := range ref.formats {
			var buf bytes.Buffer
			if err := j.RenderReport(coord, &buf, format, req.Grid); err != nil {
				violations = append(violations, fail("%s report: %v", format, err)...)
				continue
			}
			if !bytes.Equal(buf.Bytes(), ref.reports[format]) {
				violations = append(violations, fail("%s report differs from direct run", format)...)
			}
		}
		return out, violations
	case "hostile":
		return out, append([]string(nil), checkDegraded(coord, j, st, ref, plan, fail)...)
	}
	return out, fail("unknown profile")
}

// checkDegraded holds a hostile schedule's job to the degraded oracle:
// the victim shard dooms the job, the injured list, the artifact's
// error cells and the reference's cell set must agree exactly, and
// every format must still render.
func checkDegraded(coord *Coordinator, j *Job, st JobStatus, ref *chaosRef, plan *faults.Plan, fail func(string, ...any) []string) []string {
	if st.State != StateDegraded {
		return fail("state %q (error %q), want degraded", st.State, st.Error)
	}
	if len(st.Injured) == 0 {
		return fail("degraded job lists no injured cells")
	}
	victims := map[int]bool{}
	for _, i := range ref.grid.Spec.Plan().ShardIndices(plan.Victim, st.Shards) {
		victims[i] = true
	}
	for _, i := range st.Injured {
		if !victims[i] {
			return fail("injured cell %d is not on victim shard %d", i, plan.Victim)
		}
	}
	art, err := j.Artifact(coord)
	if err != nil {
		return fail("artifact: %v", err)
	}
	g, ok := art.Grid(ref.grid.Name)
	if !ok {
		return fail("merged artifact has no grid %q", ref.grid.Name)
	}
	injured := map[int]bool{}
	for _, i := range st.Injured {
		injured[i] = true
	}
	var violations []string
	seen := 0
	for _, sc := range g.Results {
		if sc.Err != "" {
			if !injured[sc.Index] {
				violations = append(violations, fail("cell %d carries error %q but is not listed injured", sc.Index, sc.Err)...)
			}
			seen++
			continue
		}
		if injured[sc.Index] {
			violations = append(violations, fail("cell %d is listed injured but carries a result", sc.Index)...)
			continue
		}
		refCell, ok := ref.cells[sc.Index]
		if !ok {
			violations = append(violations, fail("cell %d missing from reference run", sc.Index)...)
			continue
		}
		if !sameCell(sc, refCell) {
			violations = append(violations, fail("healthy cell %d differs from direct run", sc.Index)...)
		}
	}
	if seen != len(st.Injured) {
		violations = append(violations, fail("%d error cells in artifact, %d listed injured", seen, len(st.Injured))...)
	}
	// A degraded report is still a report: every encoder renders it.
	for _, format := range ref.formats {
		var buf bytes.Buffer
		if err := j.RenderReport(coord, &buf, format, j.Req.Grid); err != nil {
			violations = append(violations, fail("degraded %s report: %v", format, err)...)
		} else if buf.Len() == 0 {
			violations = append(violations, fail("degraded %s report is empty", format)...)
		}
	}
	return violations
}

// waitChaosJob polls a job to a terminal state.
func waitChaosJob(coord *Coordinator, id string, timeout time.Duration) (JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		j, ok := coord.Job(id)
		if !ok {
			return JobStatus{}, fmt.Errorf("job %s vanished", id)
		}
		st := j.Status()
		if terminalState(st.State) {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %q after %v", id, st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// checkCacheCorruption runs the corrupt-cache-entry oracle: complete a
// job on a fault-free coordinator, flip a content value inside its
// disk-cache entry (the checksum now lies), and resubmit. The
// coordinator must drop the corrupt entry, recompute the job from
// workers, and serve bytes identical to the direct run; a third
// submission then hits the freshly rewritten cache.
func checkCacheCorruption(cc ChaosConfig, dataDir string, ref *chaosRef) []string {
	fail := func(format string, args ...any) []string {
		return []string{fmt.Sprintf("cache-corruption: %s", fmt.Sprintf(format, args...))}
	}
	coord, err := New(Config{
		DataDir:        dataDir,
		ExperimentsBin: cc.ExperimentsBin,
		Workers:        []string{"local", "local"},
		WorkerParallel: 1,
		PollInterval:   20 * time.Millisecond,
		Logf:           cc.Logf,
	})
	if err != nil {
		return fail("coordinator: %v", err)
	}
	defer coord.Close()
	req := chaosRequest(ref.grid.Name)

	st, err := coord.Submit(req)
	if err != nil {
		return fail("submit: %v", err)
	}
	if st, err = waitChaosJob(coord, st.ID, 2*time.Minute); err != nil {
		return fail("%v", err)
	}
	if st.State != StateDone {
		return fail("seed job state %q, want done", st.State)
	}
	j, _ := coord.Job(st.ID)
	if err := faults.CorruptArtifactValue(coord.cache.path(j.Key)); err != nil {
		return fail("corrupting cache entry: %v", err)
	}

	st2, err := coord.Submit(req)
	if err != nil {
		return fail("resubmit: %v", err)
	}
	if st2.Cached {
		return fail("resubmission was served from a corrupt cache entry")
	}
	if st2, err = waitChaosJob(coord, st2.ID, 2*time.Minute); err != nil {
		return fail("%v", err)
	}
	var violations []string
	if st2.State != StateDone {
		violations = append(violations, fail("recomputed job state %q, want done", st2.State)...)
	}
	if coord.cache.CorruptDropped() == 0 {
		violations = append(violations, fail("corrupt entry was not counted dropped")...)
	}
	j2, _ := coord.Job(st2.ID)
	for _, format := range ref.formats {
		var buf bytes.Buffer
		if err := j2.RenderReport(coord, &buf, format, req.Grid); err != nil {
			violations = append(violations, fail("%s report: %v", format, err)...)
		} else if !bytes.Equal(buf.Bytes(), ref.reports[format]) {
			violations = append(violations, fail("recomputed %s report differs from direct run", format)...)
		}
	}
	st3, err := coord.Submit(req)
	if err != nil {
		violations = append(violations, fail("third submit: %v", err)...)
	} else if !st3.Cached {
		violations = append(violations, fail("recomputed result did not repopulate the cache")...)
	}
	return violations
}

// chaosScheduleSeeds derives a campaign's per-schedule fault-plan
// seeds — the (campaign seed, k) mapping that makes any schedule
// replayable by two numbers.
func chaosScheduleSeeds(seed uint64, k int) []uint64 {
	out := make([]uint64, k)
	for i := range out {
		out[i] = rng.Hash64(seed ^ uint64(i+1))
	}
	return out
}

// RunChaos runs the campaign. The error return covers infrastructure
// failures only (reference runs, directories); oracle failures land in
// Violations so a caller can report them all.
func RunChaos(cc ChaosConfig) (*ChaosResult, error) {
	cc.fill()
	if cc.DataDir == "" {
		return nil, fmt.Errorf("service: ChaosConfig.DataDir is required")
	}
	if cc.ExperimentsBin == "" {
		return nil, fmt.Errorf("service: ChaosConfig.ExperimentsBin is required")
	}
	res := &ChaosResult{Schedules: cc.Schedules}
	refs := map[string]*chaosRef{}
	refFor := func(grid string) (*chaosRef, error) {
		if ref, ok := refs[grid]; ok {
			return ref, nil
		}
		ref, err := buildChaosRef(chaosRequest(grid))
		if err != nil {
			return nil, fmt.Errorf("service: chaos reference run (%s): %w", grid, err)
		}
		refs[grid] = ref
		return ref, nil
	}

	schedule := func(k int, dataDir string) (ChaosOutcome, []string, error) {
		grid := "figure2"
		if k%4 >= 2 {
			grid = "tuning"
		}
		ref, err := refFor(grid)
		if err != nil {
			return ChaosOutcome{}, nil, err
		}
		seed := chaosScheduleSeeds(cc.Seed, k+1)[k]
		plan, req, profile := chaosPlan(k, seed, chaosRequest(grid), ref.grid)
		cc.Logf("chaos schedule %d: profile=%s grid=%s seed=%016x victim=%d", k, profile, grid, seed, plan.Victim)
		out, violations := runChaosSchedule(cc, k, dataDir, ref, req, plan, profile)
		return out, violations, nil
	}

	for k := 0; k < cc.Schedules; k++ {
		out, violations, err := schedule(k, filepath.Join(cc.DataDir, fmt.Sprintf("schedule_%d", k)))
		if err != nil {
			return nil, err
		}
		res.Outcomes = append(res.Outcomes, out)
		res.Violations = append(res.Violations, violations...)
		switch out.State {
		case StateDone:
			res.Completed++
		case StateDegraded:
			res.Degraded++
		}
	}

	// Capability oracle: the campaign must demonstrate both recovery to
	// a complete result and graceful degradation — a pass with neither
	// would be vacuous.
	if res.Completed == 0 {
		res.Violations = append(res.Violations, "campaign: no schedule completed a job")
	}
	if res.Degraded == 0 {
		res.Violations = append(res.Violations, "campaign: no schedule degraded a job")
	}

	// Determinism oracle: replaying a hostile schedule under the same
	// seed must reproduce the outcome — state and injured set alike.
	replay, violations, err := schedule(1, filepath.Join(cc.DataDir, "schedule_1_replay"))
	if err != nil {
		return nil, err
	}
	res.Violations = append(res.Violations, violations...)
	first := res.Outcomes[1]
	sort.Ints(first.Injured)
	sort.Ints(replay.Injured)
	if first.State != replay.State || !reflect.DeepEqual(first.Injured, replay.Injured) {
		res.Violations = append(res.Violations,
			fmt.Sprintf("determinism: schedule 1 replay diverged: %s/%v then %s/%v",
				first.State, first.Injured, replay.State, replay.Injured))
	}

	res.Violations = append(res.Violations, checkCacheCorruption(cc, filepath.Join(cc.DataDir, "cachecheck"), refs["figure2"])...)
	cc.Logf("chaos campaign: %d schedules, %d completed, %d degraded, %d violations",
		res.Schedules, res.Completed, res.Degraded, len(res.Violations))
	return res, nil
}
