package service

import (
	"testing"
)

// TestChaosCampaign is the chaos-smoke gate: a fixed-seed campaign
// over both profiles and both encoder families, held to the byte
// identity, exact-injury, determinism and cache-corruption oracles by
// RunChaos itself. A violation here means the resilient dispatcher
// changed observable behavior under faults.
func TestChaosCampaign(t *testing.T) {
	res, err := RunChaos(ChaosConfig{
		Schedules:      4,
		Seed:           1,
		DataDir:        t.TempDir(),
		ExperimentsBin: experimentsBin,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	t.Logf("campaign: %d schedules, %d completed, %d degraded", res.Schedules, res.Completed, res.Degraded)
	if res.Completed < 2 || res.Degraded < 2 {
		t.Errorf("expected 2 completed and 2 degraded schedules, got %d and %d", res.Completed, res.Degraded)
	}
}

// TestChaosSeedChangesSchedule pins that the campaign seed actually
// steers the fault plan: two plans with different seeds draw different
// schedules somewhere over a small window (and identical seeds agree
// everywhere) — the replay knob is real.
func TestChaosSeedChangesSchedule(t *testing.T) {
	// Covered at the faults layer by TestDrawDeterministic; here we pin
	// the campaign-level seed derivation so RunChaos schedules stay
	// replayable by (Seed, k) alone.
	a := chaosScheduleSeeds(1, 4)
	b := chaosScheduleSeeds(1, 4)
	c := chaosScheduleSeeds(2, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule %d: same campaign seed drew %016x then %016x", i, a[i], b[i])
		}
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("campaign seeds 1 and 2 derived identical schedule seeds")
	}
}
