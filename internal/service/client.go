package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"dsmphase/internal/harness"
)

// Client is the coordinator's HTTP client, shared by the
// `cmd/experiments -submit` mode and the service tests. Transient
// failures — connection errors and 5xx responses — are retried with
// capped exponential backoff, so a worker-side submission survives a
// coordinator restart or a drain window instead of dying on the first
// blip.
type Client struct {
	// BaseURL is the coordinator root, e.g. "http://127.0.0.1:8356".
	BaseURL string
	// HTTP is the transport; nil uses a client with a sane timeout for
	// the non-streaming calls.
	HTTP *http.Client
	// Retries bounds the attempts per call (0 = 4; negative = 1, no
	// retrying).
	Retries int
	// RetryBase is the first retry's backoff, doubling per attempt and
	// capped at 2s (0 = 100ms).
	RetryBase time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

// do runs an HTTP call through the retry policy: connection errors and
// 5xx statuses are transient (the response body is drained and closed
// before the retry); everything else returns immediately. The request
// is rebuilt per attempt via the closure, so bodies replay.
func (c *Client) do(req func() (*http.Response, error)) (*http.Response, error) {
	attempts := c.Retries
	if attempts == 0 {
		attempts = 4
	}
	if attempts < 1 {
		attempts = 1
	}
	backoff := c.RetryBase
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	const backoffCap = 2 * time.Second
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > backoffCap {
				backoff = backoffCap
			}
		}
		resp, err := req()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode/100 == 5 {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			lastErr = fmt.Errorf("service: %s: %s", resp.Status, strings.TrimSpace(string(body)))
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("service: giving up after %d attempts: %w", attempts, lastErr)
}

// decode reads one response, surfacing the server's {"error": ...}
// body on non-2xx statuses.
func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("service: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("service: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(body, v)
}

// Submit posts a job and returns its initial status.
func (c *Client) Submit(req JobRequest) (JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.do(func() (*http.Response, error) {
		return c.http().Post(c.url("/v1/jobs"), "application/json", bytes.NewReader(body))
	})
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	return st, decode(resp, &st)
}

// get runs a GET through the retry policy.
func (c *Client) get(path string) (*http.Response, error) {
	return c.do(func() (*http.Response, error) { return c.http().Get(c.url(path)) })
}

// Status fetches one job's status.
func (c *Client) Status(id string) (JobStatus, error) {
	resp, err := c.get("/v1/jobs/" + id)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	return st, decode(resp, &st)
}

// Wait polls until the job reaches a terminal state. A degraded job
// returns like a done one — the caller reads Status.Injured to decide
// what partial results are worth; a failed job is an error carrying
// the server-side failure text.
func (c *Client) Wait(id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Status(id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case StateDone, StateDegraded:
			return st, nil
		case StateFailed:
			return st, fmt.Errorf("service: job %s failed: %s", id, st.Error)
		}
		time.Sleep(poll)
	}
}

// Artifact downloads a done job's merged results artifact.
func (c *Client) Artifact(id string) (*harness.ShardArtifact, error) {
	resp, err := c.get("/v1/jobs/" + id + "/artifact")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("service: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return harness.ReadShardArtifact(resp.Body)
}

// Report fetches a done job's report in the named encoder format.
func (c *Client) Report(id, format, title string) ([]byte, error) {
	u := "/v1/jobs/" + id + "/report?format=" + format
	if title != "" {
		u += "&title=" + strings.ReplaceAll(title, " ", "+")
	}
	resp, err := c.get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("service: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// Stats fetches the coordinator counters.
func (c *Client) Stats() (map[string]int64, error) {
	resp, err := c.get("/v1/stats")
	if err != nil {
		return nil, err
	}
	var stats map[string]int64
	return stats, decode(resp, &stats)
}
