package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"dsmphase/internal/harness"
)

// Client is the coordinator's HTTP client, shared by the
// `cmd/experiments -submit` mode and the service tests.
type Client struct {
	// BaseURL is the coordinator root, e.g. "http://127.0.0.1:8356".
	BaseURL string
	// HTTP is the transport; nil uses a client with a sane timeout for
	// the non-streaming calls.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

// decode reads one response, surfacing the server's {"error": ...}
// body on non-2xx statuses.
func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("service: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("service: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(body, v)
}

// Submit posts a job and returns its initial status.
func (c *Client) Submit(req JobRequest) (JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.http().Post(c.url("/v1/jobs"), "application/json", bytes.NewReader(body))
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	return st, decode(resp, &st)
}

// Status fetches one job's status.
func (c *Client) Status(id string) (JobStatus, error) {
	resp, err := c.http().Get(c.url("/v1/jobs/" + id))
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	return st, decode(resp, &st)
}

// Wait polls until the job reaches a terminal state. A failed job is
// an error carrying the server-side failure text.
func (c *Client) Wait(id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Status(id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case StateDone:
			return st, nil
		case StateFailed:
			return st, fmt.Errorf("service: job %s failed: %s", id, st.Error)
		}
		time.Sleep(poll)
	}
}

// Artifact downloads a done job's merged results artifact.
func (c *Client) Artifact(id string) (*harness.ShardArtifact, error) {
	resp, err := c.http().Get(c.url("/v1/jobs/" + id + "/artifact"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("service: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return harness.ReadShardArtifact(resp.Body)
}

// Report fetches a done job's report in the named encoder format.
func (c *Client) Report(id, format, title string) ([]byte, error) {
	u := c.url("/v1/jobs/" + id + "/report?format=" + format)
	if title != "" {
		u += "&title=" + strings.ReplaceAll(title, " ", "+")
	}
	resp, err := c.http().Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("service: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// Stats fetches the coordinator counters.
func (c *Client) Stats() (map[string]int64, error) {
	resp, err := c.http().Get(c.url("/v1/stats"))
	if err != nil {
		return nil, err
	}
	var stats map[string]int64
	return stats, decode(resp, &stats)
}
