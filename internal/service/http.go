package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// The HTTP surface. Everything is JSON except the report (the encoder
// family's own bytes) and the event stream (server-sent events).
//
//	POST /v1/jobs                     — submit a JobRequest, get a JobStatus
//	GET  /v1/jobs                     — list all jobs
//	GET  /v1/jobs/{id}                — one job's status
//	GET  /v1/jobs/{id}/report?format= — the merged report, any encoder
//	GET  /v1/jobs/{id}/artifact       — the merged dsmphase-shard/1 artifact
//	GET  /v1/jobs/{id}/events         — SSE progress (history, then live)
//	GET  /v1/stats                    — coordinator counters

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", c.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/report", c.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/artifact", c.handleArtifact)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleEvents)
	mux.HandleFunc("GET /v1/stats", c.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job request: %w", err))
		return
	}
	st, err := c.Submit(req)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "queue full") || strings.Contains(err.Error(), "draining") {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.JobList())
}

// job resolves the {id} path segment, writing a 404 on a miss.
func (c *Coordinator) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := c.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
	}
	return j, ok
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := c.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(w, r)
	if !ok {
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	contentTypes := map[string]string{
		"text":     "text/plain; charset=utf-8",
		"csv":      "text/csv; charset=utf-8",
		"json":     "application/json",
		"markdown": "text/markdown; charset=utf-8",
	}
	var buf strings.Builder
	if err := j.RenderReport(c, &buf, format, r.URL.Query().Get("title")); err != nil {
		status := http.StatusConflict // job not done yet
		switch {
		case strings.Contains(err.Error(), "evicted"):
			status = http.StatusGone
		case strings.Contains(err.Error(), "unknown"):
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	ct := contentTypes[format]
	if ct == "" {
		ct = "text/plain; charset=utf-8"
	}
	w.Header().Set("Content-Type", ct)
	_, _ = fmt.Fprint(w, buf.String())
}

func (c *Coordinator) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(w, r)
	if !ok {
		return
	}
	art, err := j.Artifact(c)
	if err != nil {
		status := http.StatusConflict
		if strings.Contains(err.Error(), "evicted") {
			status = http.StatusGone
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, art)
}

// handleEvents streams a job's progress as server-sent events: the
// full history first (a late subscriber sees the whole story), then
// live events until the job reaches a terminal state or the client
// disconnects. Each event is `data: <Event JSON>\n\n`.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	history, live, cancel := j.subscribe()
	defer cancel()
	send := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return ev.Type != "done" && ev.Type != "failed" && ev.Type != "degraded"
	}
	for _, ev := range history {
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-c.ctx.Done():
			return
		case ev := <-live:
			if !send(ev) {
				return
			}
		}
	}
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := c.Counters.Snapshot()
	stats["cache_entries"] = int64(c.cache.Len())
	stats["cache_evictions"] = c.cache.Evictions()
	stats["cache_corrupt_dropped"] = c.cache.CorruptDropped()
	stats["workers_quarantined_now"] = int64(c.pool.quarantined())
	writeJSON(w, http.StatusOK, stats)
}
