package service

import (
	"context"
	"sync"
)

// The worker pool with health scoring. Each worker carries a
// consecutive-failure count; QuarantineAfter failures in a row bench
// it (circuit breaker open). A benched worker is only handed out when
// no healthy worker is idle, and then as a *probe*: a successful probe
// restores the worker to the healthy pool, a failed one keeps it
// benched. Health is reported after artifact validation, not process
// exit — a worker that "succeeds" but writes garbage is as sick as one
// that crashes.

// healthTransition reports what a workerPool.report call changed.
type healthTransition int

const (
	healthUnchanged healthTransition = iota
	healthBenched                    // crossed the quarantine threshold
	healthRestored                   // probe succeeded, back in the pool
)

type poolEntry struct {
	w       Worker
	busy    bool
	probing bool // handed out as a probe of a benched worker
	benched bool
	fails   int // consecutive failures
}

type workerPool struct {
	mu              sync.Mutex
	cond            *sync.Cond
	quarantineAfter int
	entries         []*poolEntry
}

func newWorkerPool(workers []Worker, quarantineAfter int) *workerPool {
	p := &workerPool{quarantineAfter: quarantineAfter}
	p.cond = sync.NewCond(&p.mu)
	for _, w := range workers {
		p.entries = append(p.entries, &poolEntry{w: w})
	}
	return p
}

// pick returns an idle worker, healthy first, benched (as a probe)
// otherwise. Caller holds mu.
func (p *workerPool) pick() (*poolEntry, bool) {
	for _, e := range p.entries {
		if !e.busy && !e.benched {
			return e, false
		}
	}
	for _, e := range p.entries {
		if !e.busy && e.benched {
			return e, true
		}
	}
	return nil, false
}

// acquire blocks until a worker is idle (or ctx ends). probe reports
// that the worker is benched and this dispatch is its recovery probe.
func (p *workerPool) acquire(ctx context.Context) (w Worker, probe bool, err error) {
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.mu.Unlock()
		p.cond.Broadcast()
	})
	defer stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		if e, probing := p.pick(); e != nil {
			e.busy, e.probing = true, probing
			return e.w, probing, nil
		}
		p.cond.Wait()
	}
}

// tryAcquire hands out an idle HEALTHY worker without blocking —
// straggler backups never burn a probe.
func (p *workerPool) tryAcquire() (Worker, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.entries {
		if !e.busy && !e.benched {
			e.busy, e.probing = true, false
			return e.w, true
		}
	}
	return nil, false
}

// release returns a worker to the pool without a health verdict (the
// verdict comes separately via report, after artifact validation).
func (p *workerPool) release(w Worker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e := p.find(w); e != nil {
		e.busy = false
	}
	p.cond.Broadcast()
}

// report scores an attempt's outcome against its worker.
func (p *workerPool) report(w Worker, ok bool) healthTransition {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.find(w)
	if e == nil {
		return healthUnchanged
	}
	if ok {
		e.fails = 0
		if e.benched {
			e.benched = false
			p.cond.Broadcast()
			return healthRestored
		}
		return healthUnchanged
	}
	e.fails++
	if !e.benched && p.quarantineAfter > 0 && e.fails >= p.quarantineAfter {
		e.benched = true
		return healthBenched
	}
	return healthUnchanged
}

func (p *workerPool) find(w Worker) *poolEntry {
	for _, e := range p.entries {
		if e.w == w {
			return e
		}
	}
	return nil
}

// quarantined counts currently benched workers (/v1/stats).
func (p *workerPool) quarantined() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.entries {
		if e.benched {
			n++
		}
	}
	return n
}
