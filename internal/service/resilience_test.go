package service

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dsmphase/internal/faults"
	"dsmphase/internal/harness"
)

// victimShard returns the shard of `of` holding the request's plan
// cell 0 — guaranteed non-empty, so dooming it injures something.
func victimShard(t *testing.T, req JobRequest, of int) int {
	t.Helper()
	r := req
	r.normalize()
	g, err := r.compile()
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < of; s++ {
		idxs := g.Spec.Plan().ShardIndices(s, of)
		if len(idxs) > 0 && idxs[0] == 0 {
			return s
		}
	}
	t.Fatal("no shard holds cell 0")
	return 0
}

// TestServiceDegradedReport: with one shard doomed by the fault plane
// and AllowPartial set, the job terminates "degraded" instead of
// "failed": the report serves, exactly the doomed shard's cells carry
// errors, the injured list matches, and the partial result never
// enters the cache.
func TestServiceDegradedReport(t *testing.T) {
	req := testRequest()
	req.AllowPartial = true
	victim := victimShard(t, req, 2)
	plan := &faults.Plan{Victim: victim, VictimMix: []faults.Kind{faults.TransientExec}}
	coord := newTestCoordinator(t, func(cfg *Config) {
		cfg.MaxAttempts = 2
		cfg.RetryBase = time.Millisecond
		cfg.RetryMax = 2 * time.Millisecond
		cfg.WrapWorker = func(w Worker) Worker { return faults.Wrap(w, plan, t.Logf) }
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}

	st := submitAndWait(t, client, req) // Wait returns degraded jobs like done ones
	if st.State != StateDegraded {
		t.Fatalf("job state = %s, want degraded", st.State)
	}
	if len(st.Injured) == 0 {
		t.Fatal("degraded job lists no injured cells")
	}
	if st.CellsDone != st.CellsTotal-len(st.Injured) {
		t.Fatalf("cells_done = %d with %d/%d injured", st.CellsDone, len(st.Injured), st.CellsTotal)
	}

	// The error cells are exactly the injured list, which is exactly the
	// victim shard's cell set (TransientExec never streams a cell).
	art, err := client.Artifact(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	r := req
	r.normalize()
	g, err := r.compile()
	if err != nil {
		t.Fatal(err)
	}
	wantInjured := g.Spec.Plan().ShardIndices(victim, 2)
	injured := map[int]bool{}
	for _, i := range st.Injured {
		injured[i] = true
	}
	if len(wantInjured) != len(st.Injured) {
		t.Fatalf("injured %v, want victim shard's cells %v", st.Injured, wantInjured)
	}
	for _, i := range wantInjured {
		if !injured[i] {
			t.Fatalf("victim cell %d missing from injured list %v", i, st.Injured)
		}
	}
	for _, sc := range art.Grids[0].Results {
		if (sc.Err != "") != injured[sc.Index] {
			t.Fatalf("cell %d: error %q, injured=%v", sc.Index, sc.Err, injured[sc.Index])
		}
		if sc.Err != "" && !strings.Contains(sc.Err, "exhausted its attempts") {
			t.Fatalf("injured cell %d error %q does not carry the shard failure", sc.Index, sc.Err)
		}
	}

	// Degraded reports render in every format.
	for _, format := range harness.EncoderNames() {
		if _, err := client.Report(st.ID, format, req.Grid); err != nil {
			t.Fatalf("degraded %s report: %v", format, err)
		}
	}

	// Never cached: the identical resubmission dispatches fresh workers.
	st2 := submitAndWait(t, client, req)
	if st2.Cached {
		t.Fatal("degraded result was served from the cache")
	}
	if got := coord.Counters.JobsDegraded.Load(); got != 2 {
		t.Fatalf("jobs_degraded = %d, want 2", got)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["jobs_degraded"] != 2 {
		t.Fatalf("stats jobs_degraded = %d", stats["jobs_degraded"])
	}
}

// TestServiceRestartResume: a coordinator dies mid-job (simulated by a
// one-attempt budget against a worker that aborts after one durable
// cell, then Close); a new coordinator over the same DataDir accepts
// the resubmission, reuses the dead attempt's cell stream — the worker
// resumes rather than recomputes — and serves bytes identical to a
// direct run.
func TestServiceRestartResume(t *testing.T) {
	dataDir := t.TempDir()
	cfg := Config{
		DataDir:        dataDir,
		ExperimentsBin: experimentsBin,
		PollInterval:   50 * time.Millisecond,
		MaxAttempts:    1, // the aborted attempt exhausts the budget: job fails, dirs stay
		ExtraWorkerArgs: []string{
			"-shard-abort-once", filepath.Join(dataDir, "abort-{shard}.marker"),
		},
		Logf: t.Logf,
	}
	coord1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest()
	st, err := coord1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := coord1.Job(st.ID)
	for !terminalState(j1.Status().State) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := j1.Status().State; got != StateFailed {
		t.Fatalf("first run state = %s, want failed", got)
	}
	coord1.Close()

	// Each shard streamed at least one durable cell before aborting.
	resumable := 0
	for shard := 0; shard < 2; shard++ {
		stream := filepath.Join(dataDir, "jobs", st.ID,
			fmt.Sprintf("shard_%d", shard), "attempt_0", shardBase(shard, 2)+".cells.jsonl")
		if data, err := os.ReadFile(stream); err == nil && len(bytes.TrimSpace(data)) > 0 {
			resumable++
		}
	}
	if resumable == 0 {
		t.Fatal("no shard left a resumable cell stream behind")
	}

	// The restarted coordinator: same DataDir, same job numbering, so
	// the resubmission lands in the same attempt dirs and resumes them.
	coord2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	srv := httptest.NewServer(coord2.Handler())
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}
	st2 := submitAndWait(t, client, req)
	if st2.State != StateDone {
		t.Fatalf("resumed job state = %s", st2.State)
	}
	served, err := client.Report(st2.ID, "json", req.Grid)
	if err != nil {
		t.Fatal(err)
	}
	if direct := directReport(t, req, "json"); !bytes.Equal(served, direct) {
		t.Error("report after restart-resume differs from direct run")
	}
}

// TestServiceCrashDuringMergeRecovers: the coordinator completes every
// shard, then "crashes" between the last shard and the merge (the
// preMergeHook seam). The restarted coordinator recovers each shard's
// already-validated artifact from disk — zero worker dispatches — and
// merges to bytes identical to a direct run.
func TestServiceCrashDuringMergeRecovers(t *testing.T) {
	dataDir := t.TempDir()
	cfg := Config{
		DataDir:        dataDir,
		ExperimentsBin: experimentsBin,
		PollInterval:   50 * time.Millisecond,
		Logf:           t.Logf,
	}
	crashed := cfg
	crashed.preMergeHook = func(j *Job) error {
		return context.Canceled // any error: the job fails in the merge window
	}
	coord1, err := New(crashed)
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest()
	st, err := coord1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := coord1.Job(st.ID)
	for !terminalState(j1.Status().State) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := j1.Status(); got.State != StateFailed || got.ShardsDone != got.Shards {
		t.Fatalf("crash-window run: state=%s shards %d/%d", got.State, got.ShardsDone, got.Shards)
	}
	coord1.Close()

	coord2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	srv := httptest.NewServer(coord2.Handler())
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}
	st2 := submitAndWait(t, client, req)
	if st2.State != StateDone {
		t.Fatalf("recovered job state = %s", st2.State)
	}
	if got := coord2.Counters.ShardsRecovered.Load(); got != int64(st2.Shards) {
		t.Fatalf("shards_recovered = %d, want %d", got, st2.Shards)
	}
	if got := coord2.Counters.WorkersSpawned.Load(); got != 0 {
		t.Fatalf("recovery dispatched %d workers, want 0", got)
	}
	served, err := client.Report(st2.ID, "json", req.Grid)
	if err != nil {
		t.Fatal(err)
	}
	if direct := directReport(t, req, "json"); !bytes.Equal(served, direct) {
		t.Error("report after merge recovery differs from direct run")
	}
}

// TestServiceDrain: BeginDrain refuses new submissions — 503 over
// HTTP — while existing jobs stay queryable.
func TestServiceDrain(t *testing.T) {
	coord := newTestCoordinator(t, nil)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &Client{BaseURL: srv.URL, Retries: -1}

	st := submitAndWait(t, client, testRequest())
	coord.BeginDrain()
	if _, err := client.Submit(testRequest()); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("submit during drain: %v, want 503", err)
	}
	if _, err := client.Status(st.ID); err != nil {
		t.Fatalf("status during drain: %v", err)
	}
}

// TestClientRetriesTransientFailures: the client survives a window of
// 5xx responses (a restarting or draining coordinator) and gives up
// with the last error after its attempt budget.
func TestClientRetriesTransientFailures(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			http.Error(w, "restarting", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"jobs_done": 7}`))
	}))
	defer srv.Close()

	client := &Client{BaseURL: srv.URL, Retries: 5, RetryBase: time.Millisecond}
	stats, err := client.Stats()
	if err != nil {
		t.Fatalf("stats through 5xx window: %v", err)
	}
	if stats["jobs_done"] != 7 || calls != 3 {
		t.Fatalf("stats=%v after %d calls", stats, calls)
	}

	calls = 0
	hopeless := &Client{BaseURL: srv.URL, Retries: 2, RetryBase: time.Millisecond}
	srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	})
	if _, err := hopeless.Stats(); err == nil || !strings.Contains(err.Error(), "giving up after 2 attempts") {
		t.Fatalf("exhausted retries: %v", err)
	}
}

// fakePoolWorker is an inert Worker for pool unit tests.
type fakePoolWorker struct{ name string }

func (w *fakePoolWorker) Name() string                                          { return w.name }
func (w *fakePoolWorker) Run(ctx context.Context, bin string, a []string) error { return nil }

// TestWorkerPoolQuarantine drives the circuit breaker directly:
// consecutive failures bench a worker, a benched worker is only handed
// out as a probe when no healthy worker is idle, and a probe success
// restores it.
func TestWorkerPoolQuarantine(t *testing.T) {
	w0, w1 := &fakePoolWorker{"w0"}, &fakePoolWorker{"w1"}
	p := newWorkerPool([]Worker{w0, w1}, 2)
	ctx := context.Background()

	if got := p.report(w0, false); got != healthUnchanged {
		t.Fatalf("first failure transition = %v", got)
	}
	if got := p.report(w0, false); got != healthBenched {
		t.Fatalf("second failure transition = %v, want benched", got)
	}
	if got := p.quarantined(); got != 1 {
		t.Fatalf("quarantined = %d", got)
	}

	// Healthy worker first; the benched one only as a fallback probe.
	w, probe, err := p.acquire(ctx)
	if err != nil || w != Worker(w1) || probe {
		t.Fatalf("acquire with healthy idle: %v %v %v", w, probe, err)
	}
	w, probe, err = p.acquire(ctx)
	if err != nil || w != Worker(w0) || !probe {
		t.Fatalf("acquire with only benched idle: %v probe=%v err=%v", w, probe, err)
	}
	// tryAcquire (straggler backups) never burns a probe.
	p.release(w0)
	if w, ok := p.tryAcquire(); ok {
		t.Fatalf("tryAcquire handed out benched worker %v", w)
	}

	if got := p.report(w0, true); got != healthRestored {
		t.Fatalf("probe success transition = %v, want restored", got)
	}
	if got := p.quarantined(); got != 0 {
		t.Fatalf("quarantined after restore = %d", got)
	}

	// A cancelled context unblocks a starved acquire.
	if w, ok := p.tryAcquire(); !ok || w != Worker(w0) {
		t.Fatalf("restored worker not handed out: %v %v", w, ok)
	}
	cctx, cancel := context.WithCancel(ctx)
	go cancel()
	if _, _, err := p.acquire(cctx); err == nil {
		t.Fatal("acquire with empty pool ignored cancellation")
	}
}
