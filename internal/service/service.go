package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsmphase/internal/coherence"
	"dsmphase/internal/harness"
	"dsmphase/internal/rng"
	"dsmphase/internal/workloads"
)

// Config configures a Coordinator. The zero value of every field has a
// sensible default; only DataDir and ExperimentsBin are required.
type Config struct {
	// DataDir is the coordinator's state root: the result cache, per-job
	// shard work dirs, and persisted ETA priors live under it.
	DataDir string
	// ExperimentsBin is the path of the cmd/experiments binary workers
	// exec.
	ExperimentsBin string
	// Workers is the worker pool as URLs ("local", "ssh://host/bin");
	// empty defaults to two local workers.
	Workers []string
	// DefaultShards is the shard fan-out of jobs that do not request one;
	// 0 uses the worker-pool size.
	DefaultShards int
	// CacheBytes bounds the result cache (0 = DefaultCacheBytes).
	CacheBytes int64
	// StragglerAfter is how long a shard attempt may run before a backup
	// attempt is dispatched to an idle worker (first completion wins;
	// duplicate completions are no-ops). 0 = 10 minutes.
	StragglerAfter time.Duration
	// MaxAttempts bounds dispatch attempts per shard, stragglers
	// included. 0 = 3.
	MaxAttempts int
	// RetryBase is the backoff before a shard's first retry; each
	// further retry doubles it, with deterministic jitter in
	// [0.5d, 1.5d) keyed on (fingerprint, shard, attempt), capped at
	// RetryMax. 0 = 250ms.
	RetryBase time.Duration
	// RetryMax caps the retry backoff. 0 = 1 minute.
	RetryMax time.Duration
	// AttemptTimeout bounds one dispatch attempt's wall clock: an
	// attempt still running after it is cancelled and counted failed —
	// the only way to reclaim a hung worker process. 0 = no timeout.
	AttemptTimeout time.Duration
	// QuarantineAfter benches a worker after N consecutive failed
	// attempts (artifact validation included). A benched worker is
	// dispatched only when no healthy worker is idle, as a probe; a
	// probe success restores it. 0 = 5.
	QuarantineAfter int
	// WrapWorker, when non-nil, wraps every parsed worker — the seam
	// the fault-injection plane (internal/faults.Wrap) plugs into.
	WrapWorker func(Worker) Worker
	// WorkerParallel is the -parallel value passed to each worker
	// process; 0 keeps the worker's own default (all CPUs).
	WorkerParallel int
	// PollInterval is the cell-progress poll cadence over the shard
	// streams. 0 = 500ms.
	PollInterval time.Duration
	// ExtraWorkerArgs are appended to every worker invocation (fault
	// injection in tests; debugging flags in anger).
	ExtraWorkerArgs []string
	// Logf, if non-nil, receives coordinator log lines.
	Logf func(format string, args ...any)

	// preMergeHook, when set (package-internal tests only), runs after
	// a job's last shard completes and before the merged artifact is
	// assembled; a non-nil error fails the job there — simulating a
	// coordinator crash in the completion/merge window.
	preMergeHook func(*Job) error
}

func (c *Config) fill() {
	if len(c.Workers) == 0 {
		c.Workers = []string{"local", "local"}
	}
	if c.DefaultShards <= 0 {
		c.DefaultShards = len(c.Workers)
	}
	if c.StragglerAfter <= 0 {
		c.StragglerAfter = 10 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 250 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Minute
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 5
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// JobRequest is the POST /v1/jobs body: a named grid plus the
// wire-serializable Spec parameters. Zero fields take the CLI's
// defaults (size small, the paper application panel, seed 1, one
// replicate), so a submission and a `cmd/experiments` invocation with
// the same flags compile the same plan fingerprint.
type JobRequest struct {
	// Grid names the experiment grid ("figure2", "figure4", "ablation",
	// "tuning").
	Grid string `json:"grid"`
	// Size is the input scale ("test", "small", "full"; "" = small).
	Size string `json:"size,omitempty"`
	// Apps lists workloads or one panel alias; empty = the paper panel.
	Apps []string `json:"apps,omitempty"`
	// Protocols lists coherence backends; empty = directory only.
	Protocols []string `json:"protocols,omitempty"`
	// Interval is the total sampling interval (0 = the 300k default).
	Interval uint64 `json:"interval,omitempty"`
	// Seed is the workload base seed (0 = 1).
	Seed uint64 `json:"seed,omitempty"`
	// Replicates is seeds per configuration (0 = 1).
	Replicates int `json:"replicates,omitempty"`
	// Shards overrides the job's shard fan-out (0 = server default).
	Shards int `json:"shards,omitempty"`
	// Workloads are canonical workload-DSL sources (spec or inlined
	// trace) shipped with the job. Each is registered at submission —
	// a malformed spec fails the POST — and written into every worker
	// attempt's dir, so Apps can name workloads the coordinator binary
	// has never heard of.
	Workloads []string `json:"workloads,omitempty"`
	// AllowPartial opts into graceful degradation: a shard that
	// exhausts its attempt budget completes the job in the "degraded"
	// state instead of failing it — the report carries per-cell errors
	// on exactly the injured (never-recovered) cells, and the result is
	// never cached.
	AllowPartial bool `json:"allow_partial,omitempty"`
}

// normalize applies the CLI-equivalent defaults in place.
func (r *JobRequest) normalize() {
	if r.Size == "" {
		r.Size = "small"
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Replicates < 1 {
		r.Replicates = 1
	}
}

// compile builds the request's named grid (and therefore its plan and
// fingerprint) exactly as cmd/experiments would under the same flags.
// Shipped workload definitions register first: the grid's fingerprint
// folds in their definition hashes, and registration is idempotent, so
// resubmitting the same spec is a cache hit while a changed definition
// under the same name is rejected here — at submission, not mid-run.
func (r *JobRequest) compile() (harness.NamedGrid, error) {
	for i, src := range r.Workloads {
		sw, err := workloads.ParseSpec([]byte(src))
		if err != nil {
			return harness.NamedGrid{}, fmt.Errorf("workloads[%d]: %w", i, err)
		}
		if err := sw.Register(); err != nil {
			return harness.NamedGrid{}, fmt.Errorf("workloads[%d]: %w", i, err)
		}
	}
	size, err := workloads.ParseSize(r.Size)
	if err != nil {
		return harness.NamedGrid{}, err
	}
	var kinds []coherence.Kind
	for _, name := range r.Protocols {
		k, err := coherence.ParseKind(name)
		if err != nil {
			return harness.NamedGrid{}, err
		}
		kinds = append(kinds, k)
	}
	return harness.BuildGrid(r.Grid, harness.GridParams{
		Size:       size,
		Apps:       r.Apps,
		Protocols:  kinds,
		Interval:   r.Interval,
		Seed:       r.Seed,
		Replicates: r.Replicates,
	})
}

// workerArgs is the -shard-dir handshake: the argument vector a worker
// process runs to produce this shard's artifact (and its resumable
// .cells.jsonl stream) inside dir.
func (c *Config) workerArgs(req JobRequest, shard, of int, dir string) []string {
	args := []string{
		"-grids", req.Grid,
		"-size", req.Size,
		"-interval", strconv.FormatUint(req.Interval, 10),
		"-seed", strconv.FormatUint(req.Seed, 10),
		"-replicates", strconv.Itoa(req.Replicates),
	}
	if len(req.Apps) > 0 {
		args = append(args, "-apps", strings.Join(req.Apps, ","))
	}
	if len(req.Protocols) > 0 {
		args = append(args, "-protocol", strings.Join(req.Protocols, ","))
	}
	if c.WorkerParallel > 0 {
		args = append(args, "-parallel", strconv.Itoa(c.WorkerParallel))
	}
	for i := range req.Workloads {
		args = append(args, "-workload-file", filepath.Join(dir, workloadSpecName(i)))
	}
	args = append(args, "-shard", fmt.Sprintf("%d/%d", shard, of), "-shard-dir", dir)
	return append(args, c.ExtraWorkerArgs...)
}

// workloadSpecName is the canonical name a shipped workload definition
// is written under inside an attempt dir.
func workloadSpecName(i int) string { return fmt.Sprintf("workload_%d.wdl", i) }

// writeWorkloadSpecs materializes a job's shipped workload definitions
// inside an attempt dir, where workerArgs points -workload-file.
func writeWorkloadSpecs(dir string, sources []string) error {
	for i, src := range sources {
		if err := os.WriteFile(filepath.Join(dir, workloadSpecName(i)), []byte(src), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateMerging = "merging"
	StateDone    = "done"
	// StateDegraded is the AllowPartial terminal state: the job merged
	// and serves a report, but one or more shards exhausted their
	// attempts and their unrecovered cells carry errors.
	StateDegraded = "degraded"
	StateFailed   = "failed"
)

// terminalState reports whether a job state is final.
func terminalState(s string) bool {
	return s == StateDone || s == StateDegraded || s == StateFailed
}

// Event is one server-sent progress notification of a job. Cell-level
// events embed the same harness.ProgressEvent the CLI's stderr printer
// renders, so both surfaces consume one structured source.
type Event struct {
	// Type is the event kind: queued, start, dispatch, retry, probe,
	// straggler, recovered, quarantine, worker-restored,
	// checksum-failed, shard-done, shard-degraded, cells, merged,
	// cache-evict, cache-hit, done, degraded, failed.
	Type string `json:"type"`
	// Job is the job ID.
	Job string `json:"job"`
	// Shard is the shard index of shard-scoped events.
	Shard int `json:"shard,omitempty"`
	// Msg carries event detail (worker name, error text).
	Msg string `json:"msg,omitempty"`
	// ProgressEvent carries cell-level progress and ETA ("cells" events).
	harness.ProgressEvent
}

// JobStatus is the GET /v1/jobs/{id} body.
type JobStatus struct {
	ID          string `json:"id"`
	Grid        string `json:"grid"`
	State       string `json:"state"`
	Cached      bool   `json:"cached,omitempty"`
	Fingerprint string `json:"fingerprint"`
	Shards      int    `json:"shards"`
	ShardsDone  int    `json:"shards_done"`
	CellsDone   int    `json:"cells_done"`
	CellsTotal  int    `json:"cells_total"`
	// Injured lists the plan indices whose cells carry errors in a
	// degraded job's report (ascending; empty unless State is
	// "degraded").
	Injured  []int      `json:"injured_cells,omitempty"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// Job is one submission's lifecycle. All mutable state is behind mu;
// the immutable identity (ID, request, compiled grid, cache key) is
// set at submission.
type Job struct {
	ID   string
	Req  JobRequest
	Grid harness.NamedGrid
	Key  string

	of          int
	cellsTotal  int
	fingerprint string

	mu         sync.Mutex
	state      string
	cached     bool
	err        string
	created    time.Time
	started    time.Time
	finished   time.Time
	shardsDone int
	cellsDone  int
	injured    []int                  // degraded jobs: error-carrying plan indices
	artifact   *harness.ShardArtifact // merged single-shard results
	streams    []string               // live attempt stream paths (progress poller)
	history    []Event
	subs       map[chan Event]bool
}

// publish appends an event to the job's history and fans it out to
// subscribers (slow subscribers drop events rather than block the
// dispatcher).
func (j *Job) publish(ev Event) {
	ev.Job = j.ID
	j.mu.Lock()
	j.history = append(j.history, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// subscribe returns the job's event history so far plus a live channel;
// call the returned cancel to unsubscribe.
func (j *Job) subscribe() (history []Event, live chan Event, cancel func()) {
	live = make(chan Event, 64)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = map[chan Event]bool{}
	}
	j.subs[live] = true
	history = append([]Event(nil), j.history...)
	j.mu.Unlock()
	return history, live, func() {
		j.mu.Lock()
		delete(j.subs, live)
		j.mu.Unlock()
	}
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.ID,
		Grid:        j.Req.Grid,
		State:       j.state,
		Cached:      j.cached,
		Fingerprint: j.fingerprint,
		Shards:      j.of,
		ShardsDone:  j.shardsDone,
		CellsDone:   j.cellsDone,
		CellsTotal:  j.cellsTotal,
		Injured:     append([]int(nil), j.injured...),
		Error:       j.err,
		Created:     j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// Counters are the coordinator's scrape-friendly counters (GET
// /v1/stats).
type Counters struct {
	JobsSubmitted      atomic.Int64
	JobsDone           atomic.Int64
	JobsDegraded       atomic.Int64
	JobsFailed         atomic.Int64
	ShardsDispatched   atomic.Int64
	ShardsRetried      atomic.Int64
	ShardsRecovered    atomic.Int64
	Stragglers         atomic.Int64
	CacheHits          atomic.Int64
	WorkersSpawned     atomic.Int64
	WorkersQuarantined atomic.Int64
	WorkersRestored    atomic.Int64
	WorkerProbes       atomic.Int64
	ChecksumFailures   atomic.Int64
}

// Snapshot renders the counters as a stable-keyed map.
func (c *Counters) Snapshot() map[string]int64 {
	return map[string]int64{
		"jobs_submitted":          c.JobsSubmitted.Load(),
		"jobs_done":               c.JobsDone.Load(),
		"jobs_degraded":           c.JobsDegraded.Load(),
		"jobs_failed":             c.JobsFailed.Load(),
		"shards_dispatched":       c.ShardsDispatched.Load(),
		"shards_retried":          c.ShardsRetried.Load(),
		"shards_recovered":        c.ShardsRecovered.Load(),
		"stragglers_redispatched": c.Stragglers.Load(),
		"cache_hits":              c.CacheHits.Load(),
		"workers_spawned":         c.WorkersSpawned.Load(),
		"workers_quarantined":     c.WorkersQuarantined.Load(),
		"workers_restored":        c.WorkersRestored.Load(),
		"worker_probes":           c.WorkerProbes.Load(),
		"checksum_failures":       c.ChecksumFailures.Load(),
	}
}

// Coordinator is the experiment service: a job queue, a worker pool, a
// result cache, and the dispatch/merge loop connecting them.
type Coordinator struct {
	cfg      Config
	cache    *Cache
	pool     *workerPool
	queue    chan *Job
	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	draining atomic.Bool
	Counters Counters

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int

	etaMu    sync.Mutex
	etaPer   time.Duration
	etaCells int
}

// New builds and starts a coordinator (its dispatcher goroutine runs
// until Close).
func New(cfg Config) (*Coordinator, error) {
	cfg.fill()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: Config.DataDir is required")
	}
	if cfg.ExperimentsBin == "" {
		return nil, fmt.Errorf("service: Config.ExperimentsBin is required")
	}
	for _, d := range []string{cfg.DataDir, filepath.Join(cfg.DataDir, "jobs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	cache, err := NewCache(filepath.Join(cfg.DataDir, "cache"), cfg.CacheBytes)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:   cfg,
		cache: cache,
		queue: make(chan *Job, 1024),
		jobs:  map[string]*Job{},
	}
	var workers []Worker
	for i, spec := range cfg.Workers {
		w, err := ParseWorker(spec, i)
		if err != nil {
			return nil, err
		}
		if cfg.WrapWorker != nil {
			w = cfg.WrapWorker(w)
		}
		workers = append(workers, w)
	}
	c.pool = newWorkerPool(workers, cfg.QuarantineAfter)
	c.loadETA()
	c.ctx, c.cancel = context.WithCancel(context.Background())
	c.wg.Add(1)
	go c.dispatch()
	return c, nil
}

// Close stops the dispatcher and cancels any running job's workers.
func (c *Coordinator) Close() {
	c.cancel()
	c.wg.Wait()
}

// BeginDrain stops job admission: every later Submit is refused while
// running jobs (and the HTTP surface) stay up — the first half of a
// graceful shutdown. A drained-then-killed job's shard streams stay on
// disk, so a restarted coordinator resumes them mid-shard.
func (c *Coordinator) BeginDrain() {
	if !c.draining.Swap(true) {
		c.cfg.Logf("draining: no longer accepting jobs")
	}
}

// dispatch drains the job queue serially: shards of one job run in
// parallel across the pool, jobs run FIFO — admission control that
// keeps many concurrent users from thrashing one pool.
func (c *Coordinator) dispatch() {
	defer c.wg.Done()
	for {
		select {
		case <-c.ctx.Done():
			return
		case j := <-c.queue:
			c.runJob(j)
		}
	}
}

// Submit validates, registers and enqueues a job. A submission whose
// cache key is already resident completes instantly without touching
// the queue or the pool.
func (c *Coordinator) Submit(req JobRequest) (JobStatus, error) {
	if c.draining.Load() {
		return JobStatus{}, fmt.Errorf("service: coordinator is draining, not accepting jobs")
	}
	req.normalize()
	grid, err := req.compile()
	if err != nil {
		return JobStatus{}, err
	}
	of := req.Shards
	if of <= 0 {
		of = c.cfg.DefaultShards
	}
	plan := grid.Spec.Plan()
	j := &Job{
		Req:         req,
		Grid:        grid,
		Key:         JobKey(grid),
		of:          of,
		cellsTotal:  plan.Len(),
		fingerprint: plan.Fingerprint(),
		state:       StateQueued,
		created:     time.Now(),
	}
	c.mu.Lock()
	c.nextID++
	j.ID = fmt.Sprintf("job-%d", c.nextID)
	c.jobs[j.ID] = j
	c.order = append(c.order, j.ID)
	c.mu.Unlock()
	c.Counters.JobsSubmitted.Add(1)

	art, ok, dropped := c.cache.get(j.Key)
	if dropped {
		// The cached entry existed but failed its content checksum:
		// evicted, and this job recomputes it.
		j.publish(Event{Type: "cache-evict", Msg: j.Key})
		c.cfg.Logf("job %s: corrupt cache entry %s evicted, recomputing", j.ID, j.Key)
	}
	if ok {
		c.Counters.CacheHits.Add(1)
		c.Counters.JobsDone.Add(1)
		j.mu.Lock()
		j.state = StateDone
		j.cached = true
		j.started, j.finished = j.created, time.Now()
		j.artifact = art
		j.cellsDone = j.cellsTotal
		j.shardsDone = of
		j.mu.Unlock()
		j.publish(Event{Type: "cache-hit", Msg: j.Key})
		j.publish(Event{Type: "done"})
		c.cfg.Logf("job %s: %s served from cache (%s)", j.ID, req.Grid, j.Key)
		return j.Status(), nil
	}

	select {
	case c.queue <- j:
		j.publish(Event{Type: "queued"})
		c.cfg.Logf("job %s: queued %s (%d cells, %d shards, fingerprint %s)",
			j.ID, req.Grid, j.cellsTotal, of, j.fingerprint)
	default:
		j.mu.Lock()
		j.state = StateFailed
		j.err = "job queue full"
		j.mu.Unlock()
		return j.Status(), fmt.Errorf("service: job queue full")
	}
	return j.Status(), nil
}

// Job looks a job up by ID.
func (c *Coordinator) Job(id string) (*Job, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// JobList snapshots every job's status, submission order.
func (c *Coordinator) JobList() []JobStatus {
	c.mu.Lock()
	ids := append([]string(nil), c.order...)
	c.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := c.Job(id); ok {
			out = append(out, j.Status())
		}
	}
	return out
}

// shardBase is the artifact base name of the -shard-dir handshake:
// cmd/experiments writes <dir>/shard_<i>_of_<n>.json plus its
// .cells.jsonl stream sibling.
func shardBase(shard, of int) string {
	return fmt.Sprintf("shard_%d_of_%d", shard, of)
}

// runJob drives one job end to end: fan shards over the pool, poll the
// shard streams for cell-level progress, merge, cache, report.
func (c *Coordinator) runJob(j *Job) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.publish(Event{Type: "start"})

	jobDir := filepath.Join(c.cfg.DataDir, "jobs", j.ID)
	ctx, cancel := context.WithCancel(c.ctx)
	defer cancel()

	// The cell-progress poller: union completed plan indices across every
	// live attempt stream, feed the count through an ETA seeded with the
	// persisted prior, and publish as "cells" events.
	pollDone := make(chan struct{})
	go c.pollCells(ctx, j, pollDone)

	outs := make([]shardOutcome, j.of)
	var wg sync.WaitGroup
	for i := 0; i < j.of; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = c.runShard(ctx, j, jobDir, i)
			if outs[i].err == nil {
				j.mu.Lock()
				j.shardsDone++
				j.mu.Unlock()
				j.publish(Event{Type: "shard-done", Shard: i})
			}
		}(i)
	}
	wg.Wait()
	cancel() // stop the poller before the final state transition
	<-pollDone

	if c.ctx.Err() != nil {
		// Coordinator shutdown, not shard exhaustion: never degrade,
		// leave the job dirs for a restarted coordinator to resume.
		c.failJob(j, c.ctx.Err())
		return
	}
	exhausted := 0
	for i := range outs {
		if outs[i].err != nil {
			if !j.Req.AllowPartial {
				c.failJob(j, fmt.Errorf("shard %d/%d: %w", i, j.of, outs[i].err))
				return
			}
			exhausted++
		}
	}

	if c.cfg.preMergeHook != nil {
		if err := c.cfg.preMergeHook(j); err != nil {
			c.failJob(j, err)
			return
		}
	}

	j.mu.Lock()
	j.state = StateMerging
	j.mu.Unlock()
	artifacts := make([]*harness.ShardArtifact, 0, j.of)
	var injured []int
	for i := range outs {
		if outs[i].err == nil {
			a, err := harness.ReadShardArtifactFile(outs[i].path)
			if err != nil {
				c.failJob(j, err)
				return
			}
			artifacts = append(artifacts, a)
			continue
		}
		a, inj, err := c.synthesizeDegradedShard(j, i, outs[i].stream, outs[i].err)
		if err != nil {
			c.failJob(j, fmt.Errorf("degrading shard %d/%d: %w", i, j.of, err))
			return
		}
		j.publish(Event{Type: "shard-degraded", Shard: i,
			Msg: fmt.Sprintf("%d cells injured: %v", len(inj), outs[i].err)})
		artifacts = append(artifacts, a)
		injured = append(injured, inj...)
	}
	sort.Ints(injured)
	results, err := harness.MergeShards(j.Grid.Spec, j.Grid.Name, artifacts)
	if err != nil {
		c.failJob(j, err)
		return
	}
	// Re-serialize the merged plan-ordered results as a one-shard
	// artifact: the cache value, and the byte source every report
	// encoder renders from.
	mg, err := harness.NewShardGrid(j.Grid.Name, j.Grid.Spec, results, j.Grid.Tuning, false)
	if err != nil {
		c.failJob(j, err)
		return
	}
	merged := &harness.ShardArtifact{Format: harness.ShardFormat, Shard: 0, Of: 1, Grids: []harness.ShardGrid{mg}}
	if exhausted == 0 {
		// Degraded results never enter the cache (a later identical
		// submission deserves a fresh, possibly whole, run) and never
		// feed the ETA prior (injured cells have zero wall time).
		if err := c.cache.Put(j.Key, merged); err != nil {
			c.cfg.Logf("job %s: cache put: %v", j.ID, err)
		}
		c.updateETA(merged)
	}
	j.publish(Event{Type: "merged"})

	j.mu.Lock()
	j.artifact = merged
	j.finished = time.Now()
	j.cellsDone = j.cellsTotal - len(injured)
	j.injured = injured
	if exhausted > 0 {
		j.state = StateDegraded
	} else {
		j.state = StateDone
	}
	j.mu.Unlock()
	if exhausted > 0 {
		c.Counters.JobsDegraded.Add(1)
		j.publish(Event{Type: "degraded",
			Msg: fmt.Sprintf("%d of %d shards exhausted, %d cells injured", exhausted, j.of, len(injured))})
		c.cfg.Logf("job %s: degraded in %v (%d injured cells)",
			j.ID, time.Since(j.started).Round(time.Millisecond), len(injured))
		// Keep the job dirs: a degraded run's attempts are post-mortem
		// material, like a failed run's.
		return
	}
	c.Counters.JobsDone.Add(1)
	j.publish(Event{Type: "done"})
	c.cfg.Logf("job %s: done in %v", j.ID, time.Since(j.started).Round(time.Millisecond))
	// The per-attempt work dirs only matter for post-mortems of failed
	// jobs; a finished job's truth is the merged artifact.
	_ = os.RemoveAll(jobDir)
}

// synthesizeDegradedShard builds the artifact of a shard that
// exhausted its attempts: every cell recovered from the last attempt's
// stream keeps its real result, and each still-missing plan index
// becomes an error cell carrying the shard's failure — the same
// per-cell error isolation Assemble applies to in-process failures.
// Returns the artifact plus the injured (error-carrying) indices.
func (c *Coordinator) synthesizeDegradedShard(j *Job, shard int, streamPath string, cause error) (*harness.ShardArtifact, []int, error) {
	plan := j.Grid.Spec.Plan()
	recovered := map[int]harness.CellResult{}
	if streamPath != "" {
		if grids, err := harness.ReadCellStream(streamPath); err == nil {
			if g, ok := grids[j.Grid.Name]; ok && g.Matches(j.Grid.Name, j.fingerprint, shard, j.of, plan.Len()) {
				for _, sc := range g.Cells {
					if _, dup := recovered[sc.Index]; dup {
						continue
					}
					if r, err := sc.CellResult(); err == nil {
						recovered[sc.Index] = r
					}
				}
			}
		}
	}
	cells := plan.Cells()
	var results []harness.CellResult
	var injured []int
	for _, i := range plan.ShardIndices(shard, j.of) {
		if r, ok := recovered[i]; ok {
			results = append(results, r)
			continue
		}
		results = append(results, harness.CellResult{
			Index: i,
			Cell:  cells[i],
			Err:   fmt.Errorf("shard %d/%d exhausted its attempts: %v", shard, j.of, cause),
		})
		injured = append(injured, i)
	}
	g, err := harness.NewShardGrid(j.Grid.Name, j.Grid.Spec, results, j.Grid.Tuning, false)
	if err != nil {
		return nil, nil, err
	}
	return &harness.ShardArtifact{
		Format: harness.ShardFormat, Shard: shard, Of: j.of, Grids: []harness.ShardGrid{g},
	}, injured, nil
}

func (c *Coordinator) failJob(j *Job, err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.err = err.Error()
	j.finished = time.Now()
	j.mu.Unlock()
	c.Counters.JobsFailed.Add(1)
	j.publish(Event{Type: "failed", Msg: err.Error()})
	c.cfg.Logf("job %s: failed: %v", j.ID, err)
}

// shardOutcome is one shard's terminal dispatch result: the validated
// artifact path (err == nil), or the final error plus the last
// attempt's stream path — the degraded path's recovery material.
type shardOutcome struct {
	path   string
	stream string
	err    error
}

// retryDelay is the backoff before launching retry attempt `attempt`
// (1-based): RetryBase doubling per attempt, capped at RetryMax, with
// deterministic jitter in [0.5d, 1.5d) keyed on (plan fingerprint,
// shard, attempt) — spread out in anger, replayable under test.
func (c *Coordinator) retryDelay(j *Job, shard, attempt int) time.Duration {
	d := c.cfg.RetryBase
	for i := 1; i < attempt && d < c.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > c.cfg.RetryMax {
		d = c.cfg.RetryMax
	}
	seed, _ := strconv.ParseUint(j.fingerprint, 16, 64)
	h := rng.Hash64(seed)
	h = rng.Hash64(h ^ uint64(shard+1))
	h = rng.Hash64(h ^ uint64(attempt))
	frac := float64(h%1024) / 1024 // [0, 1)
	return d/2 + time.Duration(frac*float64(d))
}

// runShard drives one shard to a validated artifact: dispatch an
// attempt, re-dispatch on failure after an exponential backoff with
// deterministic jitter (the new attempt resumes from a copy of the
// dead attempt's cell stream), bound each attempt by AttemptTimeout,
// and dispatch a backup attempt to an idle worker when the running one
// exceeds the straggler threshold. First validated completion wins;
// losing attempts are cancelled, and a duplicate completion is simply
// ignored — each attempt writes only inside its own dir, and every
// artifact is checksum- and fingerprint-validated. Each attempt's
// verdict feeds its worker's health score (quarantine circuit
// breaker). Before dispatching anything, the shard dir left by a
// previous coordinator process is scanned for an already-valid
// artifact — the crash-during-merge recovery path.
func (c *Coordinator) runShard(ctx context.Context, j *Job, jobDir string, shard int) shardOutcome {
	if path, ok := c.recoverShard(j, jobDir, shard); ok {
		c.Counters.ShardsRecovered.Add(1)
		j.publish(Event{Type: "recovered", Shard: shard, Msg: path})
		c.cfg.Logf("job %s: shard %d recovered from previous run's artifact", j.ID, shard)
		return shardOutcome{path: path}
	}

	type outcome struct {
		dir string
		w   Worker
		err error
	}
	outcomes := make(chan outcome, c.cfg.MaxAttempts)
	attempts := 0
	running := 0
	var lastStream string
	var cancels []context.CancelFunc
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()

	launch := func(w Worker, probe bool, kind string) error {
		k := attempts
		attempts++
		running++
		dir := filepath.Join(jobDir, fmt.Sprintf("shard_%d", shard), fmt.Sprintf("attempt_%d", k))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			c.pool.release(w)
			return err
		}
		if err := writeWorkloadSpecs(dir, j.Req.Workloads); err != nil {
			c.pool.release(w)
			return err
		}
		stream := filepath.Join(dir, shardBase(shard, j.of)+".cells.jsonl")
		if lastStream != "" && lastStream != stream {
			// Seed resume: snapshot the previous attempt's stream (readers
			// tolerate a torn tail, so copying under a live writer is safe).
			if data, err := os.ReadFile(lastStream); err == nil {
				_ = os.WriteFile(stream, data, 0o644)
			}
		}
		lastStream = stream
		j.mu.Lock()
		j.streams = append(j.streams, stream)
		j.mu.Unlock()
		args := c.cfg.workerArgs(j.Req, shard, j.of, dir)
		actx, acancel := context.WithCancel(ctx)
		if c.cfg.AttemptTimeout > 0 {
			actx, acancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		}
		cancels = append(cancels, acancel)
		c.Counters.ShardsDispatched.Add(1)
		c.Counters.WorkersSpawned.Add(1)
		if probe {
			c.Counters.WorkerProbes.Add(1)
			j.publish(Event{Type: "probe", Shard: shard, Msg: w.Name()})
		}
		j.publish(Event{Type: kind, Shard: shard, Msg: w.Name()})
		c.cfg.Logf("job %s: shard %d attempt %d on %s", j.ID, shard, k, w.Name())
		go func() {
			err := w.Run(actx, c.cfg.ExperimentsBin, args)
			if err != nil && errors.Is(actx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
				err = fmt.Errorf("attempt timed out after %v: %w", c.cfg.AttemptTimeout, err)
			}
			c.pool.release(w)
			outcomes <- outcome{dir: dir, w: w, err: err}
		}()
		return nil
	}

	w, probe, err := c.pool.acquire(ctx)
	if err != nil {
		return shardOutcome{stream: lastStream, err: err}
	}
	if err := launch(w, probe, "dispatch"); err != nil {
		return shardOutcome{stream: lastStream, err: err}
	}
	straggler := time.NewTimer(c.cfg.StragglerAfter)
	defer straggler.Stop()

	var lastErr error
	for {
		select {
		case o := <-outcomes:
			running--
			if o.err == nil {
				path := filepath.Join(o.dir, shardBase(shard, j.of)+".json")
				if err := c.validateArtifact(path, j, shard); err == nil {
					c.scoreWorker(j, shard, o.w, true)
					return shardOutcome{path: path, stream: lastStream}
				} else {
					if errors.Is(err, harness.ErrArtifactChecksum) {
						c.Counters.ChecksumFailures.Add(1)
						j.publish(Event{Type: "checksum-failed", Shard: shard, Msg: err.Error()})
					}
					o.err = err
				}
			}
			c.scoreWorker(j, shard, o.w, false)
			lastErr = o.err
			if ctx.Err() != nil {
				return shardOutcome{stream: lastStream, err: ctx.Err()}
			}
			if attempts < c.cfg.MaxAttempts {
				c.Counters.ShardsRetried.Add(1)
				delay := c.retryDelay(j, shard, attempts)
				select {
				case <-time.After(delay):
				case <-ctx.Done():
					return shardOutcome{stream: lastStream, err: ctx.Err()}
				}
				w, probe, err := c.pool.acquire(ctx)
				if err != nil {
					return shardOutcome{stream: lastStream, err: err}
				}
				if err := launch(w, probe, "retry"); err != nil {
					return shardOutcome{stream: lastStream, err: err}
				}
			} else if running == 0 {
				return shardOutcome{stream: lastStream,
					err: fmt.Errorf("all %d attempts failed, last: %w", attempts, lastErr)}
			}
		case <-straggler.C:
			// The attempt is slow, not dead. If a healthy worker is idle
			// and the attempt budget allows, race a backup against it.
			if attempts < c.cfg.MaxAttempts {
				if w, ok := c.pool.tryAcquire(); ok {
					c.Counters.Stragglers.Add(1)
					if err := launch(w, false, "straggler"); err != nil {
						return shardOutcome{stream: lastStream, err: err}
					}
				}
			}
			straggler.Reset(c.cfg.StragglerAfter)
		case <-ctx.Done():
			return shardOutcome{stream: lastStream, err: ctx.Err()}
		}
	}
}

// recoverShard scans a shard's attempt dirs — left on disk by a
// previous coordinator process whose job failed or died before the
// merge — for an artifact that already validates (latest attempt
// first). Stale dirs from an unrelated plan never validate: the
// fingerprint check rejects them.
func (c *Coordinator) recoverShard(j *Job, jobDir string, shard int) (string, bool) {
	shardDir := filepath.Join(jobDir, fmt.Sprintf("shard_%d", shard))
	ents, err := os.ReadDir(shardDir)
	if err != nil {
		return "", false
	}
	var ks []int
	for _, e := range ents {
		if k, ok := strings.CutPrefix(e.Name(), "attempt_"); ok && e.IsDir() {
			if n, err := strconv.Atoi(k); err == nil {
				ks = append(ks, n)
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ks)))
	for _, k := range ks {
		path := filepath.Join(shardDir, fmt.Sprintf("attempt_%d", k), shardBase(shard, j.of)+".json")
		if err := c.validateArtifact(path, j, shard); err == nil {
			return path, true
		}
	}
	return "", false
}

// scoreWorker feeds an attempt verdict to the quarantine circuit
// breaker and publishes the transition, if any.
func (c *Coordinator) scoreWorker(j *Job, shard int, w Worker, ok bool) {
	switch c.pool.report(w, ok) {
	case healthBenched:
		c.Counters.WorkersQuarantined.Add(1)
		j.publish(Event{Type: "quarantine", Shard: shard, Msg: w.Name()})
		c.cfg.Logf("worker %s quarantined after %d consecutive failures", w.Name(), c.cfg.QuarantineAfter)
	case healthRestored:
		c.Counters.WorkersRestored.Add(1)
		j.publish(Event{Type: "worker-restored", Shard: shard, Msg: w.Name()})
		c.cfg.Logf("worker %s restored by successful probe", w.Name())
	}
}

// validateArtifact checks a completed attempt's artifact before
// accepting it: right format, right shard coordinates, and the grid
// present with the coordinator-side plan fingerprint — the idempotency
// guard that makes duplicate or stale completions harmless.
func (c *Coordinator) validateArtifact(path string, j *Job, shard int) error {
	a, err := harness.ReadShardArtifactFile(path)
	if err != nil {
		return err
	}
	if a.Shard != shard || a.Of != j.of {
		return fmt.Errorf("artifact claims shard %d/%d, want %d/%d", a.Shard, a.Of, shard, j.of)
	}
	g, ok := a.Grid(j.Grid.Name)
	if !ok {
		return fmt.Errorf("artifact has no grid %q", j.Grid.Name)
	}
	if g.Fingerprint != j.fingerprint {
		return fmt.Errorf("artifact fingerprint %s, want %s", g.Fingerprint, j.fingerprint)
	}
	return nil
}

// pollCells streams cell-level progress: every PollInterval it unions
// the completed plan indices across the job's attempt streams and, on
// change, publishes a "cells" event carrying the same ProgressEvent
// the CLI printer renders — ETA seeded from the persisted prior.
func (c *Coordinator) pollCells(ctx context.Context, j *Job, done chan<- struct{}) {
	defer close(done)
	per, cells := c.etaPrior()
	eta := harness.NewETA().Seed(per, cells)
	tick := time.NewTicker(c.cfg.PollInterval)
	defer tick.Stop()
	last := -1
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		j.mu.Lock()
		streams := append([]string(nil), j.streams...)
		j.mu.Unlock()
		seen := map[int]bool{}
		for _, path := range streams {
			grids, err := harness.ReadCellStream(path)
			if err != nil {
				continue
			}
			if g, ok := grids[j.Grid.Name]; ok {
				for _, sc := range g.Cells {
					seen[sc.Index] = true
				}
			}
		}
		n := len(seen)
		if n == last {
			continue
		}
		last = n
		j.mu.Lock()
		j.cellsDone = n
		j.mu.Unlock()
		elapsed, remaining := eta.Observe(n, j.cellsTotal)
		j.publish(Event{Type: "cells", ProgressEvent: harness.ProgressEvent{
			Done:      n,
			Total:     j.cellsTotal,
			Label:     j.Grid.Name,
			Elapsed:   elapsed,
			Remaining: remaining,
		}})
	}
}

// ---- ETA priors ----

type etaPrior struct {
	PerCellNS int64 `json:"per_cell_ns"`
	Cells     int   `json:"cells"`
}

func (c *Coordinator) etaPath() string { return filepath.Join(c.cfg.DataDir, "eta.json") }

func (c *Coordinator) etaPrior() (time.Duration, int) {
	c.etaMu.Lock()
	defer c.etaMu.Unlock()
	return c.etaPer, c.etaCells
}

func (c *Coordinator) loadETA() {
	data, err := os.ReadFile(c.etaPath())
	if err != nil {
		return
	}
	var p etaPrior
	if json.Unmarshal(data, &p) == nil && p.PerCellNS > 0 && p.Cells > 0 {
		c.etaMu.Lock()
		c.etaPer, c.etaCells = time.Duration(p.PerCellNS), p.Cells
		c.etaMu.Unlock()
	}
}

// updateETA folds a finished job's persisted per-cell timings into the
// prior the next job's progress stream is seeded with.
func (c *Coordinator) updateETA(a *harness.ShardArtifact) {
	per, cells := a.MeanCellWall()
	if per <= 0 || cells == 0 {
		return
	}
	c.etaMu.Lock()
	c.etaPer, c.etaCells = per, cells
	c.etaMu.Unlock()
	data, err := json.Marshal(etaPrior{PerCellNS: per.Nanoseconds(), Cells: cells})
	if err == nil {
		_ = os.WriteFile(c.etaPath(), data, 0o644)
	}
}

// Artifact returns a done (or degraded) job's merged results artifact
// (from memory, falling back to the cache).
func (j *Job) Artifact(c *Coordinator) (*harness.ShardArtifact, error) {
	j.mu.Lock()
	art, state := j.artifact, j.state
	j.mu.Unlock()
	if state != StateDone && state != StateDegraded {
		return nil, fmt.Errorf("service: job %s is %s, not done", j.ID, state)
	}
	if art != nil {
		return art, nil
	}
	if art, ok := c.cache.Get(j.Key); ok {
		return art, nil
	}
	return nil, fmt.Errorf("service: job %s: result evicted from cache; resubmit", j.ID)
}

// RenderReport encodes a done job's report in the named format —
// through MergeShards + Assemble, the identical aggregation a direct
// Spec.Run uses, so the bytes match a local run exactly. Plain grids
// render with the Report encoder family, tuning grids with the
// TuningReport family (8 encoders in all). An empty title defaults to
// the grid name.
func (j *Job) RenderReport(c *Coordinator, w io.Writer, format, title string) error {
	art, err := j.Artifact(c)
	if err != nil {
		return err
	}
	if title == "" {
		title = j.Req.Grid
	}
	results, err := harness.MergeShards(j.Grid.Spec, j.Grid.Name, []*harness.ShardArtifact{art})
	if err != nil {
		return err
	}
	if j.Grid.Tuning {
		enc, err := harness.NewTuningEncoder(format, title)
		if err != nil {
			return err
		}
		rep, err := j.Grid.Spec.AssembleTuning(results)
		if err != nil {
			return err
		}
		return enc.Encode(w, rep)
	}
	enc, err := harness.NewEncoder(format, title)
	if err != nil {
		return err
	}
	return enc.Encode(w, j.Grid.Spec.Assemble(results))
}
