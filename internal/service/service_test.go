package service

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"dsmphase/internal/harness"
	"dsmphase/internal/workloads"
)

// experimentsBin is the worker binary every end-to-end test execs,
// built once in TestMain.
var experimentsBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "dsmphased-test-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	experimentsBin = filepath.Join(dir, "experiments")
	if out, err := exec.Command("go", "build", "-o", experimentsBin, "dsmphase/cmd/experiments").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building experiments worker: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// testRequest is the small fast grid the end-to-end tests submit:
// figure2 × lu × test inputs, 3 cells.
func testRequest() JobRequest {
	return JobRequest{
		Grid:     "figure2",
		Size:     "test",
		Apps:     []string{"lu"},
		Interval: 20_000,
	}
}

func newTestCoordinator(t *testing.T, mutate func(*Config)) *Coordinator {
	t.Helper()
	cfg := Config{
		DataDir:        t.TempDir(),
		ExperimentsBin: experimentsBin,
		Workers:        []string{"local", "local"},
		PollInterval:   50 * time.Millisecond,
		Logf:           t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// directReport renders the request's grid by running it in-process —
// the reference bytes every served report must match exactly.
func directReport(t *testing.T, req JobRequest, format string) []byte {
	t.Helper()
	req.normalize()
	g, err := req.compile()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if g.Tuning {
		rep, err := g.Spec.RunTuning(harness.Options{})
		if err != nil {
			t.Fatal(err)
		}
		enc, err := harness.NewTuningEncoder(format, req.Grid)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(&buf, rep); err != nil {
			t.Fatal(err)
		}
	} else {
		enc, err := harness.NewEncoder(format, req.Grid)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(&buf, g.Spec.Run(harness.Options{})); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func submitAndWait(t *testing.T, client *Client, req JobRequest) JobStatus {
	t.Helper()
	st, err := client.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st, err = client.Wait(st.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServiceEndToEnd is the acceptance pin: one submission travels
// Spec → shard dispatch over two local workers → JSONL streams → merge
// → served report, and the served bytes equal a direct in-process run
// in every encoder format.
func TestServiceEndToEnd(t *testing.T) {
	coord := newTestCoordinator(t, nil)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}

	req := testRequest()
	st := submitAndWait(t, client, req)
	if st.Cached {
		t.Fatal("first submission claims a cache hit")
	}
	if st.CellsDone != st.CellsTotal || st.CellsTotal == 0 {
		t.Fatalf("done job reports %d/%d cells", st.CellsDone, st.CellsTotal)
	}

	for _, format := range harness.EncoderNames() {
		served, err := client.Report(st.ID, format, req.Grid)
		if err != nil {
			t.Fatalf("%s report: %v", format, err)
		}
		if direct := directReport(t, req, format); !bytes.Equal(served, direct) {
			t.Errorf("served %s report differs from direct run:\n--- served ---\n%s\n--- direct ---\n%s",
				format, served, direct)
		}
	}

	// The merged artifact is well-formed and client-side mergeable: the
	// cmd/experiments -submit path reassembles reports from it.
	art, err := client.Artifact(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if art.Of != 1 || len(art.Grids) != 1 || art.Grids[0].Name != req.Grid {
		t.Fatalf("merged artifact shape: of=%d grids=%v", art.Of, len(art.Grids))
	}
	g, err := func() (harness.NamedGrid, error) { r := req; r.normalize(); return r.compile() }()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := harness.MergeShards(g.Spec, g.Name, []*harness.ShardArtifact{art}); err != nil {
		t.Fatalf("client-side merge of served artifact: %v", err)
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["workers_spawned"] == 0 || stats["jobs_done"] != 1 {
		t.Fatalf("stats after one job: %v", stats)
	}
}

// TestServiceTuningEndToEnd covers the other encoder family: a tuning
// grid served through RunTuningShard and the TuningEncoder set.
func TestServiceTuningEndToEnd(t *testing.T) {
	coord := newTestCoordinator(t, nil)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}

	req := testRequest()
	req.Grid = "tuning"
	st := submitAndWait(t, client, req)
	for _, format := range harness.TuningEncoderNames() {
		served, err := client.Report(st.ID, format, req.Grid)
		if err != nil {
			t.Fatalf("%s tuning report: %v", format, err)
		}
		if direct := directReport(t, req, format); !bytes.Equal(served, direct) {
			t.Errorf("served %s tuning report differs from direct run", format)
		}
	}
}

// TestServiceCacheHit: a repeat submission of the same parameters is
// answered from the disk cache — instantly done, flagged cached, and
// without spawning a single worker process.
func TestServiceCacheHit(t *testing.T) {
	coord := newTestCoordinator(t, nil)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}

	req := testRequest()
	first := submitAndWait(t, client, req)
	statsBefore, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}

	second, err := client.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone || !second.Cached {
		t.Fatalf("repeat submission: state=%s cached=%v, want instant cached done", second.State, second.Cached)
	}
	statsAfter, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if statsAfter["workers_spawned"] != statsBefore["workers_spawned"] {
		t.Fatalf("cache hit spawned workers: %d -> %d",
			statsBefore["workers_spawned"], statsAfter["workers_spawned"])
	}
	if statsAfter["cache_hits"] != 1 {
		t.Fatalf("cache_hits = %d, want 1", statsAfter["cache_hits"])
	}

	// And the cached report still matches the first job's bytes.
	a, err := client.Report(first.ID, "json", req.Grid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.Report(second.ID, "json", req.Grid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("cached job's report differs from the original")
	}
}

// TestServiceWorkerCrashResumes is the fault-tolerance pin: every
// shard's first worker attempt is killed after one durable cell (the
// -shard-abort-once fault injection), the coordinator re-dispatches,
// the retry resumes from the dead attempt's cell stream, and the final
// report is still byte-identical to a direct run.
func TestServiceWorkerCrashResumes(t *testing.T) {
	var dataDir string
	coord := newTestCoordinator(t, func(cfg *Config) {
		dataDir = cfg.DataDir
		cfg.ExtraWorkerArgs = []string{
			"-shard-abort-once", filepath.Join(dataDir, "abort-{shard}.marker"),
		}
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}

	req := testRequest()
	st := submitAndWait(t, client, req)
	if st.State != StateDone {
		t.Fatalf("job state = %s", st.State)
	}
	if got := coord.Counters.ShardsRetried.Load(); got == 0 {
		t.Fatal("no shard was retried despite the injected crashes")
	}
	served, err := client.Report(st.ID, "json", req.Grid)
	if err != nil {
		t.Fatal(err)
	}
	if direct := directReport(t, req, "json"); !bytes.Equal(served, direct) {
		t.Error("report after crash-and-resume differs from direct run")
	}
}

// TestServiceStragglerBackup: with a microscopic straggler threshold,
// the coordinator races a backup attempt against the primary; first
// validated completion wins, the duplicate is a no-op, and the report
// is unharmed.
func TestServiceStragglerBackup(t *testing.T) {
	coord := newTestCoordinator(t, func(cfg *Config) {
		cfg.DefaultShards = 1 // one shard, so the second worker is idle
		cfg.StragglerAfter = time.Millisecond
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}

	req := testRequest()
	st := submitAndWait(t, client, req)
	if st.State != StateDone {
		t.Fatalf("job state = %s", st.State)
	}
	if got := coord.Counters.Stragglers.Load(); got == 0 {
		t.Fatal("no straggler backup was dispatched despite the 1ms threshold")
	}
	served, err := client.Report(st.ID, "json", req.Grid)
	if err != nil {
		t.Fatal(err)
	}
	if direct := directReport(t, req, "json"); !bytes.Equal(served, direct) {
		t.Error("report after straggler race differs from direct run")
	}
}

// TestServiceEvents: the SSE endpoint replays a finished job's history
// — submission to done — including at least one cell-level progress
// event sourced from the shard streams.
func TestServiceEvents(t *testing.T) {
	coord := newTestCoordinator(t, nil)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}

	st := submitAndWait(t, client, testRequest())
	resp, err := srv.Client().Get(srv.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, want := range []string{`"type":"queued"`, `"type":"start"`, `"type":"dispatch"`, `"type":"merged"`, `"type":"done"`} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("event stream lacks %s:\n%s", want, text)
		}
	}
}

// TestServiceShippedWorkloads: a submission may carry workload
// definitions in the request body — here a DSL spec and an ingested
// trace. The coordinator validates and registers them at submit time,
// ships the canonical sources to every worker shard, and the served
// report is byte-identical to a direct in-process run in every
// encoder format.
func TestServiceShippedWorkloads(t *testing.T) {
	osc, err := workloads.LoadSpecFile(filepath.Join("..", "..", "examples", "adversarial_phases", "oscillate.wdl"))
	if err != nil {
		t.Fatal(err)
	}
	ping, err := workloads.LoadSpecFile(filepath.Join("..", "..", "examples", "trace_ingest", "pingpong.wdl"))
	if err != nil {
		t.Fatal(err)
	}

	coord := newTestCoordinator(t, nil)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}

	req := JobRequest{
		Grid:      "figure2",
		Size:      "test",
		Apps:      []string{"oscillate", "pingpong"},
		Interval:  16_000,
		Workloads: []string{string(osc.Source()), string(ping.Source())},
	}
	st := submitAndWait(t, client, req)
	if st.State != StateDone {
		t.Fatalf("job state = %s", st.State)
	}
	for _, format := range harness.EncoderNames() {
		served, err := client.Report(st.ID, format, req.Grid)
		if err != nil {
			t.Fatalf("%s report: %v", format, err)
		}
		if direct := directReport(t, req, format); !bytes.Equal(served, direct) {
			t.Errorf("served %s report for shipped workloads differs from direct run", format)
		}
	}

	// Submit-time validation: malformed definitions and conflicting
	// redefinitions of an already-registered name fail at POST, not
	// halfway through a dispatched shard.
	if _, err := coord.Submit(JobRequest{Grid: "figure2", Size: "test", Workloads: []string{"{"}}); err == nil {
		t.Fatal("malformed workload spec accepted")
	}
	conflict := `{"name":"oscillate","description":"redefined","phases":[{"blocks":[{"kind":"stride","count":1}]}]}`
	if _, err := coord.Submit(JobRequest{Grid: "figure2", Size: "test", Apps: []string{"oscillate"}, Workloads: []string{conflict}}); err == nil {
		t.Fatal("conflicting redefinition of a shipped workload accepted")
	}
}

// TestSubmitValidation: a bogus grid or size fails at submission, not
// at dispatch.
func TestSubmitValidation(t *testing.T) {
	coord := newTestCoordinator(t, nil)
	if _, err := coord.Submit(JobRequest{Grid: "figure9"}); err == nil {
		t.Fatal("unknown grid accepted")
	}
	if _, err := coord.Submit(JobRequest{Grid: "figure2", Size: "gargantuan"}); err == nil {
		t.Fatal("unknown size accepted")
	}
	if _, err := coord.Submit(JobRequest{Grid: "figure2", Size: "test", Protocols: []string{"token-ring"}}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}
