// Package service is the experiment coordinator behind cmd/dsmphased:
// a long-running HTTP/JSON server that accepts job submissions (a named
// experiment grid plus Spec parameters), fans the grid's shards out
// over a pool of workers that exec cmd/experiments -shard with a
// -shard-dir handshake, survives worker death (per-cell JSONL streams
// let a re-dispatched shard resume from its last completed cell),
// detects stragglers and re-dispatches them safely (shard artifacts are
// fingerprint-validated and idempotent, so a duplicate completion is a
// no-op), auto-merges completed shard sets through the same
// MergeShards/Assemble path the CLI uses — so a served report is
// byte-identical to a direct Spec.Run — and answers repeat submissions
// from a Plan.Fingerprint-keyed disk cache without spawning a worker.
//
// See docs/SERVICE.md for the HTTP API and the artifact/resume schema.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/url"
	"os/exec"
	"strings"
)

// Worker executes one shard attempt. The zoo behind the interface:
// local workers exec the experiments binary as a child process; ssh://
// workers are the cross-machine seam (currently a stub that validates
// configuration and command plumbing without executing remotely).
// Run must honor ctx cancellation — the dispatcher cancels losing
// straggler attempts — and must not return until the attempt's
// artifact (if any) is fully on disk.
type Worker interface {
	// Name labels the worker in logs and events.
	Name() string
	// Run executes the experiments binary with the given arguments and
	// blocks until it exits. A non-nil error marks the attempt failed;
	// whatever the attempt streamed to its shard dir is still usable for
	// resume.
	Run(ctx context.Context, bin string, args []string) error
}

// ErrSSHWorkerStub marks the unfinished half of the ssh:// worker
// scheme: the URL parses, the remote command line is assembled, but
// remote execution and artifact retrieval are not implemented yet.
var ErrSSHWorkerStub = errors.New("service: ssh workers are a stub (remote execution and artifact retrieval not implemented)")

// ParseWorker builds a Worker from a pool-configuration URL:
//
//	local                   — exec the experiments binary on this host
//	ssh://[user@]host[/bin] — remote worker over ssh (stub)
//
// id uniquifies the worker's display name within the pool.
func ParseWorker(spec string, id int) (Worker, error) {
	if spec == "local" || spec == "" {
		return &localWorker{name: fmt.Sprintf("local-%d", id)}, nil
	}
	u, err := url.Parse(spec)
	if err != nil || u.Scheme != "ssh" || u.Host == "" {
		return nil, fmt.Errorf("service: worker %q: want \"local\" or \"ssh://[user@]host[/remote/bin]\"", spec)
	}
	w := &sshWorker{name: fmt.Sprintf("ssh-%d(%s)", id, u.Host), host: u.Host, remoteBin: strings.TrimPrefix(u.Path, "/")}
	if u.User != nil {
		w.host = u.User.Username() + "@" + u.Host
	}
	return w, nil
}

// localWorker execs the experiments binary as a child process.
type localWorker struct {
	name string
}

func (w *localWorker) Name() string { return w.name }

func (w *localWorker) Run(ctx context.Context, bin string, args []string) error {
	cmd := exec.CommandContext(ctx, bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		// Keep the tail of the child's stderr: it names the failing cell
		// or flag, which the bare exit status does not.
		msg := strings.TrimSpace(stderr.String())
		if n := len(msg); n > 512 {
			msg = "..." + msg[n-512:]
		}
		if msg != "" {
			return fmt.Errorf("%s: %w: %s", w.name, err, msg)
		}
		return fmt.Errorf("%s: %w", w.name, err)
	}
	return nil
}

// sshWorker is the cross-machine seam. RemoteCommand shows the shape
// the finished implementation will exec; Run refuses with
// ErrSSHWorkerStub so a misconfigured pool fails loudly instead of
// hanging a job.
type sshWorker struct {
	name      string
	host      string
	remoteBin string
}

func (w *sshWorker) Name() string { return w.name }

// RemoteCommand is the argument vector a finished ssh worker would
// exec: run the remote experiments binary, then stream the shard dir
// back. Exported for the stub's tests and as the blueprint for the
// real implementation.
func (w *sshWorker) RemoteCommand(bin string, args []string) []string {
	remote := w.remoteBin
	if remote == "" {
		remote = bin
	}
	return append([]string{"ssh", w.host, remote}, args...)
}

func (w *sshWorker) Run(ctx context.Context, bin string, args []string) error {
	_ = w.RemoteCommand(bin, args)
	return fmt.Errorf("%s: %w", w.name, ErrSSHWorkerStub)
}
