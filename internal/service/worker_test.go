package service

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func TestParseWorker(t *testing.T) {
	w, err := ParseWorker("local", 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "local-0" {
		t.Fatalf("local worker name = %q", w.Name())
	}
	if _, err := ParseWorker("carrier-pigeon://host", 1); err == nil {
		t.Fatal("bad scheme accepted")
	}
	if _, err := ParseWorker("ssh://", 1); err == nil {
		t.Fatal("hostless ssh URL accepted")
	}
}

func TestSSHWorkerStub(t *testing.T) {
	w, err := ParseWorker("ssh://alice@farm7/opt/dsm/experiments", 3)
	if err != nil {
		t.Fatal(err)
	}
	// The stub refuses to run — a misconfigured pool fails loudly.
	if err := w.Run(context.Background(), "/usr/local/bin/experiments", []string{"-shard", "0/2"}); !errors.Is(err, ErrSSHWorkerStub) {
		t.Fatalf("Run = %v, want ErrSSHWorkerStub", err)
	}
	// But the command plumbing is real: the remote vector is assembled
	// from the URL's user, host and binary path.
	sw := w.(*sshWorker)
	got := sw.RemoteCommand("/usr/local/bin/experiments", []string{"-shard", "0/2"})
	want := []string{"ssh", "alice@farm7", "opt/dsm/experiments", "-shard", "0/2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RemoteCommand = %v, want %v", got, want)
	}
	// Without a remote path, the local binary path is reused.
	w2, err := ParseWorker("ssh://farm8", 4)
	if err != nil {
		t.Fatal(err)
	}
	got = w2.(*sshWorker).RemoteCommand("/bin/experiments", nil)
	if !reflect.DeepEqual(got, []string{"ssh", "farm8", "/bin/experiments"}) {
		t.Fatalf("RemoteCommand = %v", got)
	}
}

func TestLocalWorkerStderrTail(t *testing.T) {
	w, err := ParseWorker("local", 0)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(context.Background(), "/bin/sh", []string{"-c", "echo the-failing-cell >&2; exit 7"})
	if err == nil {
		t.Fatal("failing child reported success")
	}
	if want := "the-failing-cell"; !contains(err.Error(), want) {
		t.Fatalf("error %q does not carry the child's stderr tail %q", err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
