// Package stats implements the statistical machinery the paper's
// evaluation rests on: per-phase coefficient of variation (CoV) of CPI,
// the interval-weighted "identifier CoV", and the CoV curve — the paper's
// proposed tool for quantifying the trade-off between phase homogeneity
// and tuning overhead (number of phases).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs
// (the paper's CoV is a population statistic over all intervals of a
// phase), or 0 for fewer than one element.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// CoV returns the coefficient of variation (stddev/mean) of xs.
// A phase with a single interval, or a zero mean, has CoV 0.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// IdentifierCoV computes the paper's summary metric for one processor:
// group the per-interval CPI values by assigned phase ID, compute each
// phase's CoV of CPI, and average the per-phase CoVs weighted by how many
// intervals belong to each phase. It returns the weighted CoV and the
// number of distinct phases observed.
//
// phases[i] is the phase ID assigned to interval i; cpis[i] is that
// interval's CPI. The two slices must have equal length.
func IdentifierCoV(phases []int, cpis []float64) (cov float64, numPhases int) {
	if len(phases) != len(cpis) {
		panic("stats: phases and cpis length mismatch")
	}
	if len(phases) == 0 {
		return 0, 0
	}
	groups := make(map[int][]float64)
	keys := make([]int, 0, 16)
	for i, p := range phases {
		if _, seen := groups[p]; !seen {
			keys = append(keys, p)
		}
		groups[p] = append(groups[p], cpis[i])
	}
	// Sum in sorted key order: float addition is not associative, and a
	// map-ordered sum would make the metric run-to-run nondeterministic.
	sort.Ints(keys)
	total := float64(len(phases))
	var weighted float64
	for _, p := range keys {
		g := groups[p]
		weighted += CoV(g) * float64(len(g)) / total
	}
	return weighted, len(groups)
}

// CurvePoint is one operating point of a phase detector: a threshold
// setting yields some number of phases and some identifier CoV.
type CurvePoint struct {
	// Phases is the number of distinct phases the detector produced
	// (a proxy for tuning overhead; fewer is cheaper).
	Phases float64
	// CoV is the identifier CoV of CPI at this operating point
	// (smaller means more homogeneous phases).
	CoV float64
	// Threshold records the classification threshold that produced this
	// point (the BBV Manhattan threshold; informational).
	Threshold float64
	// ThresholdDDS records the DDS threshold for two-threshold detectors
	// (zero for BBV-only).
	ThresholdDDS float64
}

// Curve is a CoV curve: identifier CoV as a function of the number of
// phases, across a threshold sweep. Points are kept sorted by Phases.
type Curve struct {
	Points []CurvePoint
}

// LowerEnvelope reduces an arbitrary point cloud to the paper-style CoV
// curve: for each distinct phase count, keep the point with the smallest
// CoV, then drop points that are dominated (a point is dominated if some
// point with fewer-or-equal phases has smaller-or-equal CoV). The result
// is non-increasing in CoV as Phases grows, matching how the paper reads
// its curves ("CoV achieved with k phases").
func LowerEnvelope(pts []CurvePoint) Curve {
	if len(pts) == 0 {
		return Curve{}
	}
	best := make(map[float64]CurvePoint)
	for _, p := range pts {
		b, ok := best[p.Phases]
		if !ok || p.CoV < b.CoV {
			best[p.Phases] = p
		}
	}
	out := make([]CurvePoint, 0, len(best))
	for _, p := range best {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phases < out[j].Phases })
	// Enforce monotone non-increasing CoV: a detector that achieves CoV c
	// with k phases trivially achieves ≤c with more phases available.
	env := out[:0]
	minSoFar := math.Inf(1)
	for _, p := range out {
		if p.CoV < minSoFar {
			minSoFar = p.CoV
			env = append(env, p)
		}
	}
	return Curve{Points: append([]CurvePoint(nil), env...)}
}

// CoVAt returns the smallest CoV achievable with at most maxPhases phases,
// or +Inf if no point on the curve uses that few phases.
func (c Curve) CoVAt(maxPhases float64) float64 {
	res := math.Inf(1)
	for _, p := range c.Points {
		if p.Phases <= maxPhases && p.CoV < res {
			res = p.CoV
		}
	}
	return res
}

// PhasesAt returns the smallest number of phases that achieves CoV at or
// below the target, or +Inf if the curve never reaches it.
func (c Curve) PhasesAt(targetCoV float64) float64 {
	res := math.Inf(1)
	for _, p := range c.Points {
		if p.CoV <= targetCoV && p.Phases < res {
			res = p.Phases
		}
	}
	return res
}

// AverageCurves averages several per-processor curves into the
// "system-wide CoV curve" of the paper: curves are averaged pointwise by
// threshold index, i.e. the i-th point of every curve is assumed to come
// from the same threshold setting, and both the phase counts and CoV
// values are averaged. All curves must have the same length.
func AverageCurves(curves [][]CurvePoint) []CurvePoint {
	if len(curves) == 0 {
		return nil
	}
	n := len(curves[0])
	for _, c := range curves {
		if len(c) != n {
			panic("stats: AverageCurves requires equal-length point sets")
		}
	}
	out := make([]CurvePoint, n)
	for i := 0; i < n; i++ {
		var ph, cov float64
		for _, c := range curves {
			ph += c[i].Phases
			cov += c[i].CoV
		}
		out[i] = CurvePoint{
			Phases:       ph / float64(len(curves)),
			CoV:          cov / float64(len(curves)),
			Threshold:    curves[0][i].Threshold,
			ThresholdDDS: curves[0][i].ThresholdDDS,
		}
	}
	return out
}

// tCrit975 holds two-sided 95% Student-t critical values for small
// degrees of freedom; beyond the table the normal quantile is close
// enough. Replicate counts are single digits in practice, so the exact
// small-sample quantiles matter.
var tCrit975 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// MeanCI95 returns the sample mean of xs and the half-width of its 95%
// confidence interval (Student-t, sample standard deviation). A single
// observation — or none — has zero half-width: the band degenerates to
// the point estimate rather than pretending at uncertainty it cannot
// measure.
func MeanCI95(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	if n == 1 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	df := n - 1
	t := 1.960
	if df <= len(tCrit975) {
		t = tCrit975[df-1]
	}
	return mean, t * sd / math.Sqrt(float64(n))
}

// BandPoint is one phase-count point of a confidence band: the mean CoV
// achievable within Phases phases across replicates, with a 95% CI.
type BandPoint struct {
	// Phases is the phase budget the point is evaluated at.
	Phases float64
	// Mean is the mean best CoV within the budget across replicates.
	Mean float64
	// Lo and Hi bound the 95% confidence interval (mean ± t·s/√n).
	Lo, Hi float64
	// N counts the replicates contributing a finite value at this budget.
	N int
}

// Band is a CoV curve with uncertainty: the across-replicate aggregate
// of several single-seed curves. Points are sorted by Phases.
type Band struct {
	Points []BandPoint
}

// BandAcross aggregates replicate curves into a confidence band. The
// band is evaluated on the union grid of every curve's phase values:
// at each budget, each curve contributes its best CoV within the budget
// (Curve.CoVAt), and the finite values are summarized by MeanCI95.
// Curves enter symmetrically, so the result is independent of their
// order. Replicates whose envelopes never reach a budget are excluded
// at that point (N records how many contributed).
func BandAcross(curves []Curve) Band {
	grid := map[float64]bool{}
	for _, c := range curves {
		for _, p := range c.Points {
			grid[p.Phases] = true
		}
	}
	phases := make([]float64, 0, len(grid))
	for ph := range grid {
		phases = append(phases, ph)
	}
	sort.Float64s(phases)
	var b Band
	vals := make([]float64, 0, len(curves))
	for _, ph := range phases {
		vals = vals[:0]
		for _, c := range curves {
			if v := c.CoVAt(ph); !math.IsInf(v, 1) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			continue
		}
		mean, half := MeanCI95(vals)
		b.Points = append(b.Points, BandPoint{
			Phases: ph,
			Mean:   mean,
			Lo:     mean - half,
			Hi:     mean + half,
			N:      len(vals),
		})
	}
	return b
}

// At returns the smallest mean CoV achievable with at most maxPhases
// phases — the band analogue of Curve.CoVAt — together with the CI
// half-width of the point that attains it. An unreachable budget
// reports (+Inf, 0).
func (b Band) At(maxPhases float64) (mean, half float64) {
	mean = math.Inf(1)
	for _, p := range b.Points {
		if p.Phases <= maxPhases && p.Mean < mean {
			mean, half = p.Mean, p.Hi-p.Mean
		}
	}
	return mean, half
}

// MeanAt returns the mean half of At(maxPhases).
func (b Band) MeanAt(maxPhases float64) float64 {
	mean, _ := b.At(maxPhases)
	return mean
}

// HalfAt returns the half-width half of At(maxPhases).
func (b Band) HalfAt(maxPhases float64) float64 {
	_, half := b.At(maxPhases)
	return half
}

// GeomSpace returns n values spaced geometrically from lo to hi inclusive.
// lo and hi must be positive and n ≥ 2. It is used to generate the
// paper's ~200 threshold values.
func GeomSpace(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= 0 {
		panic("stats: GeomSpace requires n>=2 and positive bounds")
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	out[n-1] = hi
	return out
}

// LinSpace returns n values spaced linearly from lo to hi inclusive.
func LinSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: LinSpace requires n>=2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
