package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev(nil) != 0 {
		t.Error("StdDev(nil) != 0")
	}
	// Population stddev of {2,4,4,4,5,5,7,9} is exactly 2.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestCoV(t *testing.T) {
	if CoV([]float64{5, 5, 5}) != 0 {
		t.Error("CoV of constant series must be 0")
	}
	if CoV([]float64{0, 0}) != 0 {
		t.Error("CoV with zero mean must be defined as 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // mean 5, stddev 2
	if got := CoV(xs); !almostEq(got, 0.4, 1e-12) {
		t.Errorf("CoV = %v, want 0.4", got)
	}
}

func TestIdentifierCoVPerfectClassifier(t *testing.T) {
	// Each phase has perfectly homogeneous CPI -> identifier CoV 0.
	phases := []int{0, 0, 1, 1, 2}
	cpis := []float64{1.0, 1.0, 2.0, 2.0, 3.5}
	cov, n := IdentifierCoV(phases, cpis)
	if cov != 0 {
		t.Errorf("identifier CoV = %v, want 0", cov)
	}
	if n != 3 {
		t.Errorf("numPhases = %d, want 3", n)
	}
}

func TestIdentifierCoVSinglePhase(t *testing.T) {
	// All intervals in one phase: identifier CoV = CoV of the whole series.
	cpis := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	phases := make([]int, len(cpis))
	cov, n := IdentifierCoV(phases, cpis)
	if !almostEq(cov, 0.4, 1e-12) {
		t.Errorf("identifier CoV = %v, want 0.4", cov)
	}
	if n != 1 {
		t.Errorf("numPhases = %d, want 1", n)
	}
}

func TestIdentifierCoVWeighting(t *testing.T) {
	// Phase 0: 3 intervals CoV c0; phase 1: 1 interval CoV 0.
	phases := []int{0, 0, 0, 1}
	cpis := []float64{1, 2, 3, 10}
	c0 := CoV([]float64{1, 2, 3})
	want := c0 * 3 / 4
	cov, _ := IdentifierCoV(phases, cpis)
	if !almostEq(cov, want, 1e-12) {
		t.Errorf("identifier CoV = %v, want %v", cov, want)
	}
}

func TestIdentifierCoVEmpty(t *testing.T) {
	cov, n := IdentifierCoV(nil, nil)
	if cov != 0 || n != 0 {
		t.Errorf("empty = (%v,%d), want (0,0)", cov, n)
	}
}

func TestIdentifierCoVMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	IdentifierCoV([]int{1}, []float64{1, 2})
}

func TestLowerEnvelope(t *testing.T) {
	pts := []CurvePoint{
		{Phases: 1, CoV: 0.9},
		{Phases: 2, CoV: 0.5},
		{Phases: 2, CoV: 0.7}, // dominated by (2,0.5)
		{Phases: 3, CoV: 0.6}, // dominated: 2 phases already achieve 0.5
		{Phases: 5, CoV: 0.2},
	}
	env := LowerEnvelope(pts)
	want := []CurvePoint{{Phases: 1, CoV: 0.9}, {Phases: 2, CoV: 0.5}, {Phases: 5, CoV: 0.2}}
	if len(env.Points) != len(want) {
		t.Fatalf("envelope has %d points, want %d: %+v", len(env.Points), len(want), env.Points)
	}
	for i, w := range want {
		if env.Points[i].Phases != w.Phases || env.Points[i].CoV != w.CoV {
			t.Errorf("point %d = %+v, want %+v", i, env.Points[i], w)
		}
	}
}

func TestLowerEnvelopeEmpty(t *testing.T) {
	if env := LowerEnvelope(nil); len(env.Points) != 0 {
		t.Error("envelope of no points must be empty")
	}
}

// Property: the lower envelope is strictly decreasing in CoV and strictly
// increasing in Phases, and every envelope point is drawn from the input.
func TestLowerEnvelopeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		pts := make([]CurvePoint, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, CurvePoint{
				Phases: float64(raw[i]%30) + 1,
				CoV:    float64(raw[i+1]%1000)/1000 + 0.001,
			})
		}
		env := LowerEnvelope(pts).Points
		for i := 1; i < len(env); i++ {
			if env[i].Phases <= env[i-1].Phases || env[i].CoV >= env[i-1].CoV {
				return false
			}
		}
		in := func(q CurvePoint) bool {
			for _, p := range pts {
				if p.Phases == q.Phases && p.CoV == q.CoV {
					return true
				}
			}
			return false
		}
		for _, q := range env {
			if !in(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCurveQueries(t *testing.T) {
	c := Curve{Points: []CurvePoint{{Phases: 1, CoV: 0.9}, {Phases: 5, CoV: 0.3}, {Phases: 10, CoV: 0.1}}}
	if got := c.CoVAt(5); got != 0.3 {
		t.Errorf("CoVAt(5) = %v, want 0.3", got)
	}
	if got := c.CoVAt(0.5); !math.IsInf(got, 1) {
		t.Errorf("CoVAt(0.5) = %v, want +Inf", got)
	}
	if got := c.PhasesAt(0.3); got != 5 {
		t.Errorf("PhasesAt(0.3) = %v, want 5", got)
	}
	if got := c.PhasesAt(0.05); !math.IsInf(got, 1) {
		t.Errorf("PhasesAt(0.05) = %v, want +Inf", got)
	}
}

func TestAverageCurves(t *testing.T) {
	a := []CurvePoint{{Phases: 2, CoV: 0.4, Threshold: 0.1}, {Phases: 4, CoV: 0.2, Threshold: 0.05}}
	b := []CurvePoint{{Phases: 4, CoV: 0.6, Threshold: 0.1}, {Phases: 8, CoV: 0.4, Threshold: 0.05}}
	avg := AverageCurves([][]CurvePoint{a, b})
	if len(avg) != 2 {
		t.Fatalf("len = %d, want 2", len(avg))
	}
	if avg[0].Phases != 3 || !almostEq(avg[0].CoV, 0.5, 1e-12) {
		t.Errorf("avg[0] = %+v, want {3 0.5}", avg[0])
	}
	if avg[1].Phases != 6 || !almostEq(avg[1].CoV, 0.3, 1e-12) {
		t.Errorf("avg[1] = %+v, want {6 0.3}", avg[1])
	}
	if avg[0].Threshold != 0.1 {
		t.Errorf("threshold not propagated: %v", avg[0].Threshold)
	}
}

func TestAverageCurvesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AverageCurves([][]CurvePoint{{{}}, {}})
}

func TestGeomSpace(t *testing.T) {
	xs := GeomSpace(0.01, 1, 200)
	if len(xs) != 200 {
		t.Fatalf("len = %d", len(xs))
	}
	if xs[0] != 0.01 || xs[199] != 1 {
		t.Errorf("endpoints = %v, %v", xs[0], xs[199])
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatalf("not strictly increasing at %d", i)
		}
	}
	// Geometric: ratio between consecutive elements is constant.
	r := xs[1] / xs[0]
	for i := 2; i < len(xs); i++ {
		if !almostEq(xs[i]/xs[i-1], r, 1e-9) {
			t.Fatalf("ratio drift at %d", i)
		}
	}
}

func TestLinSpace(t *testing.T) {
	xs := LinSpace(0, 10, 11)
	for i, x := range xs {
		if !almostEq(x, float64(i), 1e-12) {
			t.Errorf("xs[%d] = %v", i, x)
		}
	}
}

func TestSpacesPanic(t *testing.T) {
	for _, f := range []func(){
		func() { GeomSpace(0, 1, 10) },
		func() { GeomSpace(1, 2, 1) },
		func() { LinSpace(0, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMeanCI95(t *testing.T) {
	// Known case: xs = {1, 2, 3}: mean 2, sample sd 1, t(df=2) = 4.303,
	// half-width = 4.303/√3.
	mean, half := MeanCI95([]float64{1, 2, 3})
	if !almostEq(mean, 2, 1e-12) {
		t.Errorf("mean = %v", mean)
	}
	if !almostEq(half, 4.303/math.Sqrt(3), 1e-9) {
		t.Errorf("half = %v, want t·s/√n = %v", half, 4.303/math.Sqrt(3))
	}
	// Degenerate inputs collapse to the point estimate.
	if m, h := MeanCI95([]float64{7}); m != 7 || h != 0 {
		t.Errorf("single observation = (%v, %v)", m, h)
	}
	if m, h := MeanCI95(nil); m != 0 || h != 0 {
		t.Errorf("empty = (%v, %v)", m, h)
	}
	// Identical replicates have zero width whatever the count.
	if _, h := MeanCI95([]float64{3, 3, 3, 3}); h != 0 {
		t.Errorf("identical replicates half = %v", h)
	}
	// Large n falls back to the normal quantile.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 2)
	}
	_, h := MeanCI95(big)
	sd := math.Sqrt(float64(len(big)) / float64(len(big)-1) * 0.25)
	if !almostEq(h, 1.960*sd/10, 1e-9) {
		t.Errorf("large-n half = %v", h)
	}
}

func TestBandAcross(t *testing.T) {
	a := Curve{Points: []CurvePoint{{Phases: 2, CoV: 0.5}, {Phases: 10, CoV: 0.2}}}
	b := Curve{Points: []CurvePoint{{Phases: 4, CoV: 0.4}, {Phases: 10, CoV: 0.3}}}
	band := BandAcross([]Curve{a, b})
	// Union grid: 2, 4, 10. At phases=2 only curve a has a point.
	if len(band.Points) != 3 {
		t.Fatalf("band has %d points, want 3", len(band.Points))
	}
	if p := band.Points[0]; p.Phases != 2 || p.N != 1 || !almostEq(p.Mean, 0.5, 1e-12) {
		t.Errorf("phases=2 point = %+v", p)
	}
	// At phases=4, a contributes its best within the budget (0.5), b 0.4.
	if p := band.Points[1]; p.N != 2 || !almostEq(p.Mean, 0.45, 1e-12) {
		t.Errorf("phases=4 point = %+v", p)
	}
	if p := band.Points[2]; p.N != 2 || !almostEq(p.Mean, 0.25, 1e-12) {
		t.Errorf("phases=10 point = %+v", p)
	}
	// Order independence: curves enter symmetrically.
	flip := BandAcross([]Curve{b, a})
	for i := range band.Points {
		if band.Points[i] != flip.Points[i] {
			t.Errorf("band depends on curve order at %d: %+v vs %+v",
				i, band.Points[i], flip.Points[i])
		}
	}
	// MeanAt/HalfAt mirror Curve.CoVAt semantics.
	if v := band.MeanAt(5); !almostEq(v, 0.45, 1e-12) {
		t.Errorf("MeanAt(5) = %v", v)
	}
	if !math.IsInf(band.MeanAt(1), 1) {
		t.Error("MeanAt below the grid must be +Inf")
	}
	if h := band.HalfAt(1); h != 0 {
		t.Errorf("HalfAt below the grid = %v", h)
	}
	if len(BandAcross(nil).Points) != 0 {
		t.Error("empty input must give an empty band")
	}
}
