package trace

// Address-trace records: the per-instruction capture format the
// workload layer's trace-ingestion front end consumes. Where the
// interval-signature formats in trace.go serialize what the detectors
// SAW, Access serializes what the processors DID — one record per
// committed instruction, the shape an external simulator or binary
// instrumentation tool can produce. workloads.FromTrace turns a stream
// of these into a registered workload that replays through the same
// machinery as the synthetic generators.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"dsmphase/internal/isa"
)

// Access is one event of an externally captured per-processor
// instruction trace.
type Access struct {
	// Proc is the capturing processor (0-based, contiguous).
	Proc int `json:"proc"`
	// Op is the instruction class mnemonic: int, fp, load, store,
	// branch or sync.
	Op string `json:"op"`
	// PC is the static instruction address.
	PC uint32 `json:"pc"`
	// Addr is the effective byte address (loads and stores).
	Addr uint64 `json:"addr,omitempty"`
	// Taken is the branch outcome (branches).
	Taken bool `json:"taken,omitempty"`
	// N repeats the record (int/fp bundles); 0 means 1.
	N int `json:"n,omitempty"`
}

// Inst converts the record to the machine's instruction form.
func (a Access) Inst() (isa.Inst, error) {
	var op isa.Op
	switch a.Op {
	case "int":
		op = isa.OpInt
	case "fp":
		op = isa.OpFP
	case "load":
		op = isa.OpLoad
	case "store":
		op = isa.OpStore
	case "branch":
		op = isa.OpBranch
	case "sync":
		op = isa.OpSync
	default:
		return isa.Inst{}, fmt.Errorf("trace: unknown op %q", a.Op)
	}
	return isa.Inst{PC: a.PC, Addr: a.Addr, Op: op, Taken: a.Taken}, nil
}

// AccessFromInst converts a machine instruction back to a trace record
// (the capture direction — cmd/dsmsim's -access-trace-out uses it).
func AccessFromInst(proc int, in isa.Inst) Access {
	a := Access{Proc: proc, Op: in.Op.String(), PC: in.PC}
	if in.Op.IsMem() {
		a.Addr = in.Addr
	}
	if in.Op == isa.OpBranch {
		a.Taken = in.Taken
	}
	return a
}

// WriteAccessJSONL writes one JSON object per access record.
func WriteAccessJSONL(w io.Writer, recs []Access) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("trace: encoding access %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadAccessJSONL reads a stream written by WriteAccessJSONL. Every
// record's opcode is validated; addresses and repeat counts are taken
// as-is (the workload layer validates structure).
func ReadAccessJSONL(r io.Reader) ([]Access, error) {
	var out []Access
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var a Access
		if err := dec.Decode(&a); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding access %d: %w", len(out), err)
		}
		if _, err := a.Inst(); err != nil {
			return nil, fmt.Errorf("trace: access %d: %w", len(out), err)
		}
		if a.Proc < 0 {
			return nil, fmt.Errorf("trace: access %d has negative proc %d", len(out), a.Proc)
		}
		if a.N < 0 {
			return nil, fmt.Errorf("trace: access %d has negative repeat %d", len(out), a.N)
		}
		out = append(out, a)
	}
}
