// Package trace serializes recorded interval signatures so experiments
// can be split into a simulate-once recording step and any number of
// offline analysis steps (threshold sweeps, predictor studies, tuning
// replays) without re-running the machine.
//
// Two formats are provided: JSONL (full fidelity — BBV, WSS, DDS —
// round-trips exactly) and CSV (a lossy per-interval summary for
// spreadsheets and plotting tools).
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"dsmphase/internal/core"
)

// jsonRecord is the JSONL wire form of an interval signature.
type jsonRecord struct {
	Proc         int       `json:"proc"`
	Index        int       `json:"index"`
	BBV          []float64 `json:"bbv"`
	WSS          []uint64  `json:"wss"`
	DDS          float64   `json:"dds"`
	RawDDS       float64   `json:"raw_dds"`
	PhaseID      int       `json:"phase_id"`
	Instructions uint64    `json:"instructions"`
	Cycles       uint64    `json:"cycles"`
	Local        uint64    `json:"local_accesses"`
	Remote       uint64    `json:"remote_accesses"`
}

// WriteJSONL writes one JSON object per interval.
func WriteJSONL(w io.Writer, recs []core.IntervalSignature) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		r := &recs[i]
		jr := jsonRecord{
			Proc:         r.Proc,
			Index:        r.Index,
			BBV:          r.BBV,
			WSS:          r.WSS[:],
			DDS:          r.DDS,
			RawDDS:       r.RawDDS,
			PhaseID:      r.PhaseID,
			Instructions: r.Instructions,
			Cycles:       r.Cycles,
			Local:        r.LocalAccesses,
			Remote:       r.RemoteAccesses,
		}
		if err := enc.Encode(&jr); err != nil {
			return fmt.Errorf("trace: encoding interval %d/%d: %w", r.Proc, r.Index, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a JSONL stream written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]core.IntervalSignature, error) {
	var out []core.IntervalSignature
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var jr jsonRecord
		if err := dec.Decode(&jr); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding interval %d: %w", len(out), err)
		}
		if len(jr.WSS) != core.WSSWords {
			return nil, fmt.Errorf("trace: interval %d has %d WSS words, want %d",
				len(out), len(jr.WSS), core.WSSWords)
		}
		sig := core.IntervalSignature{
			Proc:           jr.Proc,
			Index:          jr.Index,
			BBV:            jr.BBV,
			DDS:            jr.DDS,
			RawDDS:         jr.RawDDS,
			PhaseID:        jr.PhaseID,
			Instructions:   jr.Instructions,
			Cycles:         jr.Cycles,
			LocalAccesses:  jr.Local,
			RemoteAccesses: jr.Remote,
		}
		copy(sig.WSS[:], jr.WSS)
		out = append(out, sig)
	}
}

// csvHeader is the CSV column layout.
var csvHeader = []string{
	"proc", "index", "instructions", "cycles", "cpi",
	"dds", "raw_dds", "phase_id", "local_accesses", "remote_accesses",
}

// WriteCSV writes a per-interval summary (no BBV/WSS vectors).
func WriteCSV(w io.Writer, recs []core.IntervalSignature) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: csv header: %w", err)
	}
	for i := range recs {
		r := &recs[i]
		row := []string{
			strconv.Itoa(r.Proc),
			strconv.Itoa(r.Index),
			strconv.FormatUint(r.Instructions, 10),
			strconv.FormatUint(r.Cycles, 10),
			strconv.FormatFloat(r.CPI(), 'f', 6, 64),
			strconv.FormatFloat(r.DDS, 'f', 6, 64),
			strconv.FormatFloat(r.RawDDS, 'g', -1, 64),
			strconv.Itoa(r.PhaseID),
			strconv.FormatUint(r.LocalAccesses, 10),
			strconv.FormatUint(r.RemoteAccesses, 10),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a summary written by WriteCSV. BBV and WSS are empty in
// the result (CSV is lossy); the numeric fields round-trip.
func ReadCSV(r io.Reader) ([]core.IntervalSignature, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	if len(rows[0]) != len(csvHeader) || rows[0][0] != "proc" {
		return nil, fmt.Errorf("trace: unexpected csv header %v", rows[0])
	}
	out := make([]core.IntervalSignature, 0, len(rows)-1)
	for i, row := range rows[1:] {
		var sig core.IntervalSignature
		var err error
		if sig.Proc, err = strconv.Atoi(row[0]); err == nil {
			if sig.Index, err = strconv.Atoi(row[1]); err == nil {
				if sig.Instructions, err = strconv.ParseUint(row[2], 10, 64); err == nil {
					if sig.Cycles, err = strconv.ParseUint(row[3], 10, 64); err == nil {
						// row[4] is the derived CPI; skip.
						if sig.DDS, err = strconv.ParseFloat(row[5], 64); err == nil {
							if sig.RawDDS, err = strconv.ParseFloat(row[6], 64); err == nil {
								if sig.PhaseID, err = strconv.Atoi(row[7]); err == nil {
									if sig.LocalAccesses, err = strconv.ParseUint(row[8], 10, 64); err == nil {
										sig.RemoteAccesses, err = strconv.ParseUint(row[9], 10, 64)
									}
								}
							}
						}
					}
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv row %d: %w", i+1, err)
		}
		out = append(out, sig)
	}
	return out, nil
}

// SplitByProc regroups a flattened record stream per processor, ordered
// by interval index within each processor.
func SplitByProc(recs []core.IntervalSignature) [][]core.IntervalSignature {
	maxProc := -1
	for i := range recs {
		if recs[i].Proc > maxProc {
			maxProc = recs[i].Proc
		}
	}
	out := make([][]core.IntervalSignature, maxProc+1)
	for i := range recs {
		out[recs[i].Proc] = append(out[recs[i].Proc], recs[i])
	}
	return out
}
