package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dsmphase/internal/core"
)

func sample() []core.IntervalSignature {
	mk := func(proc, idx int, dds float64) core.IntervalSignature {
		sig := core.IntervalSignature{
			Proc: proc, Index: idx,
			BBV:           []float64{0.25, 0.75},
			DDS:           dds,
			RawDDS:        dds * 1e6,
			Instructions:  1000,
			Cycles:        2500,
			LocalAccesses: 80, RemoteAccesses: 20,
		}
		sig.WSS.Touch(uint32(0x1000 * (idx + 1)))
		return sig
	}
	return []core.IntervalSignature{mk(0, 0, 1.1), mk(0, 1, 1.9), mk(1, 0, 3.2)}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := sample()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestJSONLEmpty(t *testing.T) {
	got, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Errorf("empty stream = (%v, %v)", got, err)
	}
}

func TestJSONLRejectsBadWSS(t *testing.T) {
	line := `{"proc":0,"index":0,"bbv":[1],"wss":[1,2,3],"dds":0}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(line)); err == nil {
		t.Error("short WSS must be rejected")
	}
}

func TestJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{oops\n")); err == nil {
		t.Error("garbage must error")
	}
}

func TestCSVRoundTripNumericFields(t *testing.T) {
	recs := sample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d rows", len(got))
	}
	for i := range got {
		if got[i].Proc != recs[i].Proc || got[i].Index != recs[i].Index ||
			got[i].Instructions != recs[i].Instructions ||
			got[i].Cycles != recs[i].Cycles ||
			got[i].LocalAccesses != recs[i].LocalAccesses ||
			got[i].RemoteAccesses != recs[i].RemoteAccesses {
			t.Errorf("row %d numeric mismatch: %+v vs %+v", i, got[i], recs[i])
		}
		if got[i].DDS != recs[i].DDS {
			t.Errorf("row %d DDS = %v, want %v", i, got[i].DDS, recs[i].DDS)
		}
	}
}

func TestCSVHeaderValidation(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("wrong header must be rejected")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty csv must error")
	}
}

func TestCSVBadNumber(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(buf.String(), "1000", "oops", 1)
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("bad number must error")
	}
}

func TestCSVIsLossy(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].BBV != nil {
		t.Error("CSV must not carry the BBV")
	}
	if got[0].WSS.Population() != 0 {
		t.Error("CSV must not carry the WSS")
	}
}

func TestSplitByProc(t *testing.T) {
	recs := sample()
	split := SplitByProc(recs)
	if len(split) != 2 {
		t.Fatalf("split into %d procs, want 2", len(split))
	}
	if len(split[0]) != 2 || len(split[1]) != 1 {
		t.Errorf("split sizes %d/%d, want 2/1", len(split[0]), len(split[1]))
	}
	if split[0][1].Index != 1 {
		t.Error("intra-processor order must be preserved")
	}
	if len(SplitByProc(nil)) != 0 {
		t.Error("empty input must yield empty output")
	}
}
