package tuning

import "dsmphase/internal/predictor"

// AdaptiveLoop couples a phase predictor with a tuning controller,
// completing the paper's §II pipeline: the detector classifies the
// interval that just finished, the predictor infers the phase of the
// *next* interval, and the reconfiguration module applies that phase's
// configuration before the interval runs. A misprediction therefore runs
// an interval under the wrong phase's configuration — the cost the paper
// says future work on DSM phase prediction must minimize.
//
// The loop is driven online, one interval at a time, through Step:
// callers feed it the interval's actual phase (from a live detector) and
// the cost each hardware configuration would have incurred, and read the
// accumulated accounting back with Outcome. Replay remains as the
// offline convenience over a fully recorded sequence; it drives Step.
type AdaptiveLoop struct {
	ctl  *Controller
	pred predictor.Predictor

	started bool
	correct int
	out     AdaptiveOutcome
}

// NewAdaptiveLoop builds the loop from a controller and a predictor.
func NewAdaptiveLoop(ctl *Controller, pred predictor.Predictor) *AdaptiveLoop {
	if ctl == nil || pred == nil {
		panic("tuning: AdaptiveLoop needs a controller and a predictor")
	}
	return &AdaptiveLoop{ctl: ctl, pred: pred}
}

// AdaptiveOutcome extends Outcome with prediction and online-drive
// accounting.
type AdaptiveOutcome struct {
	Outcome
	// Mispredictions counts intervals that ran under a configuration
	// chosen for the wrong phase.
	Mispredictions int
	// PredictionAccuracy is the fraction of correctly predicted phases
	// (excluding the first interval).
	PredictionAccuracy float64
	// OracleMatches counts intervals whose chosen configuration equalled
	// the clairvoyant best for that interval; OracleMatches/Intervals is
	// the loop's win rate.
	OracleMatches int
	// ConvergenceInterval is one past the index of the last trial
	// interval — the point from which every decision was a locked-in best
	// configuration. Zero means the loop never trialled at all.
	ConvergenceInterval int
}

// WinRate returns the fraction of intervals whose configuration matched
// the clairvoyant per-interval best.
func (o AdaptiveOutcome) WinRate() float64 {
	if o.Intervals == 0 {
		return 0
	}
	return float64(o.OracleMatches) / float64(o.Intervals)
}

// Regret returns the relative cost over the clairvoyant controller,
// (TotalScore − OracleScore)/OracleScore.
func (o AdaptiveOutcome) Regret() float64 {
	if o.OracleScore == 0 {
		return 0
	}
	return (o.TotalScore - o.OracleScore) / o.OracleScore
}

// Step runs one interval through the loop online: predict the phase,
// apply the controller's decision, charge the decision's cost, then
// learn the actual phase. actual is the phase the detector assigned to
// the interval; costs[config] is the objective the interval would incur
// under each hardware configuration (the chosen entry is the one
// actually paid). costs must have one entry per controller
// configuration.
func (l *AdaptiveLoop) Step(actual int, costs []float64) Decision {
	if len(costs) != l.ctl.numConfigs {
		panic("tuning: costs must have one entry per configuration")
	}
	var predicted int
	if !l.started {
		// Nothing to predict from: treat the first interval as its own
		// phase announcement.
		predicted = actual
		l.started = true
	} else {
		predicted = l.pred.Predict()
		if predicted == actual {
			l.correct++
		} else {
			l.out.Mispredictions++
		}
	}
	d := l.ctl.Decide(predicted)
	s := costs[d.Config]
	l.ctl.Report(predicted, d.Config, s)
	l.pred.Observe(actual)
	l.out.Intervals++
	if d.Tuning {
		l.out.TuningIntervals++
		l.out.ConvergenceInterval = l.out.Intervals
	}
	l.out.TotalScore += s
	best := costs[0]
	for cfg := 1; cfg < l.ctl.numConfigs; cfg++ {
		if costs[cfg] < best {
			best = costs[cfg]
		}
	}
	l.out.OracleScore += best
	// Match by cost, not by index: a decision tied with the clairvoyant
	// best pays the oracle price and must count as a win.
	if s <= best {
		l.out.OracleMatches++
	}
	return d
}

// Outcome returns the accounting accumulated by Step so far.
func (l *AdaptiveLoop) Outcome() AdaptiveOutcome {
	out := l.out
	if out.Intervals > 1 {
		out.PredictionAccuracy = float64(l.correct) / float64(out.Intervals-1)
	} else {
		out.PredictionAccuracy = 1
	}
	return out
}

// Replay simulates the predictive loop over a recorded phase sequence.
// scores[config][i] is interval i's cost under each configuration. It
// drives Step interval by interval and returns the loop's cumulative
// Outcome (so repeated Replays on one loop keep accumulating).
func (l *AdaptiveLoop) Replay(phases []int, scores [][]float64) AdaptiveOutcome {
	if len(scores) != l.ctl.numConfigs {
		panic("tuning: scores must have one row per configuration")
	}
	costs := make([]float64, len(scores))
	for i, actual := range phases {
		for cfg := range scores {
			costs[cfg] = scores[cfg][i]
		}
		l.Step(actual, costs)
	}
	return l.Outcome()
}
