package tuning

import "dsmphase/internal/predictor"

// AdaptiveLoop couples a phase predictor with a tuning controller,
// completing the paper's §II pipeline: the detector classifies the
// interval that just finished, the predictor infers the phase of the
// *next* interval, and the reconfiguration module applies that phase's
// configuration before the interval runs. A misprediction therefore runs
// an interval under the wrong phase's configuration — the cost the paper
// says future work on DSM phase prediction must minimize.
type AdaptiveLoop struct {
	ctl  *Controller
	pred predictor.Predictor
}

// NewAdaptiveLoop builds the loop from a controller and a predictor.
func NewAdaptiveLoop(ctl *Controller, pred predictor.Predictor) *AdaptiveLoop {
	if ctl == nil || pred == nil {
		panic("tuning: AdaptiveLoop needs a controller and a predictor")
	}
	return &AdaptiveLoop{ctl: ctl, pred: pred}
}

// AdaptiveOutcome extends Outcome with prediction accounting.
type AdaptiveOutcome struct {
	Outcome
	// Mispredictions counts intervals that ran under a configuration
	// chosen for the wrong phase.
	Mispredictions int
	// PredictionAccuracy is the fraction of correctly predicted phases
	// (excluding the first interval).
	PredictionAccuracy float64
}

// Replay simulates the predictive loop over a recorded phase sequence.
// scores[config][i] is interval i's cost under each configuration.
//
// For each interval the loop asks the predictor for the upcoming phase,
// applies the controller's decision for that phase, then — once the
// interval has "run" — learns the actual phase and reports the
// measurement to the controller under the phase the configuration was
// chosen for (the hardware cannot retroactively re-run the interval).
func (l *AdaptiveLoop) Replay(phases []int, scores [][]float64) AdaptiveOutcome {
	if len(scores) != l.ctl.numConfigs {
		panic("tuning: scores must have one row per configuration")
	}
	var out AdaptiveOutcome
	correct := 0
	for i, actual := range phases {
		var predicted int
		if i == 0 {
			// Nothing to predict from: treat the first interval as its
			// own phase announcement.
			predicted = actual
		} else {
			predicted = l.pred.Predict()
		}
		d := l.ctl.Decide(predicted)
		s := scores[d.Config][i]
		l.ctl.Report(predicted, d.Config, s)
		l.pred.Observe(actual)
		if i > 0 {
			if predicted == actual {
				correct++
			} else {
				out.Mispredictions++
			}
		}
		out.Intervals++
		if d.Tuning {
			out.TuningIntervals++
		}
		out.TotalScore += s
		best := scores[0][i]
		for cfg := 1; cfg < l.ctl.numConfigs; cfg++ {
			if scores[cfg][i] < best {
				best = scores[cfg][i]
			}
		}
		out.OracleScore += best
	}
	if len(phases) > 1 {
		out.PredictionAccuracy = float64(correct) / float64(len(phases)-1)
	} else {
		out.PredictionAccuracy = 1
	}
	return out
}
