package tuning

import (
	"testing"

	"dsmphase/internal/predictor"
)

// stable two-phase pattern with long runs: easy to predict, easy to tune.
func stablePattern(n int) ([]int, [][]float64) {
	phases := make([]int, n)
	for i := range phases {
		phases[i] = (i / 25) % 2
	}
	scores := [][]float64{make([]float64, n), make([]float64, n)}
	for i, ph := range phases {
		if ph == 0 {
			scores[0][i], scores[1][i] = 1, 2
		} else {
			scores[0][i], scores[1][i] = 2, 1
		}
	}
	return phases, scores
}

func TestAdaptiveLoopStablePhases(t *testing.T) {
	phases, scores := stablePattern(500)
	loop := NewAdaptiveLoop(NewController(2, 1), predictor.NewLastPhase())
	out := loop.Replay(phases, scores)
	if out.Intervals != 500 {
		t.Fatalf("intervals = %d", out.Intervals)
	}
	// Last-phase prediction on 25-long runs is wrong once per run
	// boundary: 19 boundaries in 500 intervals.
	if out.PredictionAccuracy < 0.9 {
		t.Errorf("prediction accuracy = %v, want > 0.9", out.PredictionAccuracy)
	}
	// Total must land near the oracle: mispredicted intervals and trials
	// cost at most 1 extra each.
	slack := float64(out.Mispredictions + out.TuningIntervals)
	if out.TotalScore > out.OracleScore+slack {
		t.Errorf("total %v exceeds oracle %v + slack %v", out.TotalScore, out.OracleScore, slack)
	}
	if out.TotalScore < out.OracleScore {
		t.Errorf("total %v beats the oracle %v — impossible", out.TotalScore, out.OracleScore)
	}
}

func TestAdaptiveLoopBetterPredictorHelps(t *testing.T) {
	// A strictly alternating phase sequence: last-phase predicts it
	// always wrong; Markov learns it perfectly.
	n := 400
	phases := make([]int, n)
	for i := range phases {
		phases[i] = i % 2
	}
	scores := [][]float64{make([]float64, n), make([]float64, n)}
	for i, ph := range phases {
		if ph == 0 {
			scores[0][i], scores[1][i] = 1, 3
		} else {
			scores[0][i], scores[1][i] = 3, 1
		}
	}
	last := NewAdaptiveLoop(NewController(2, 1), predictor.NewLastPhase()).Replay(phases, scores)
	markov := NewAdaptiveLoop(NewController(2, 1), predictor.NewMarkov()).Replay(phases, scores)
	if markov.PredictionAccuracy <= last.PredictionAccuracy {
		t.Errorf("markov accuracy (%v) must beat last-phase (%v)",
			markov.PredictionAccuracy, last.PredictionAccuracy)
	}
	if markov.TotalScore >= last.TotalScore {
		t.Errorf("better prediction must lower cost: markov %v vs last %v",
			markov.TotalScore, last.TotalScore)
	}
}

func TestAdaptiveLoopSingleInterval(t *testing.T) {
	loop := NewAdaptiveLoop(NewController(2, 1), predictor.NewLastPhase())
	out := loop.Replay([]int{3}, [][]float64{{1}, {2}})
	if out.Intervals != 1 || out.PredictionAccuracy != 1 || out.Mispredictions != 0 {
		t.Errorf("single interval outcome = %+v", out)
	}
}

func TestAdaptiveLoopPanics(t *testing.T) {
	cases := []func(){
		func() { NewAdaptiveLoop(nil, predictor.NewLastPhase()) },
		func() { NewAdaptiveLoop(NewController(2, 1), nil) },
		func() {
			NewAdaptiveLoop(NewController(2, 1), predictor.NewLastPhase()).
				Replay([]int{0}, [][]float64{{1}})
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

// TestStepMatchesReplay pins the online drive: stepping the loop
// interval by interval must produce exactly the outcome Replay reports
// over the same sequence.
func TestStepMatchesReplay(t *testing.T) {
	phases, scores := stablePattern(300)
	replayed := NewAdaptiveLoop(NewController(2, 2), predictor.NewMarkov()).Replay(phases, scores)
	stepped := NewAdaptiveLoop(NewController(2, 2), predictor.NewMarkov())
	costs := make([]float64, 2)
	for i, actual := range phases {
		costs[0], costs[1] = scores[0][i], scores[1][i]
		stepped.Step(actual, costs)
	}
	if got := stepped.Outcome(); got != replayed {
		t.Errorf("stepped outcome %+v differs from replayed %+v", got, replayed)
	}
}

// TestStepWinRateAndConvergence checks the online accounting: on the
// easy stable pattern the loop converges (trials stop) and then matches
// the oracle on locked-in intervals, so the win rate is high and
// ConvergenceInterval lands early in the run.
func TestStepWinRateAndConvergence(t *testing.T) {
	phases, scores := stablePattern(500)
	out := NewAdaptiveLoop(NewController(2, 1), predictor.NewLastPhase()).Replay(phases, scores)
	if out.OracleMatches <= out.Intervals/2 {
		t.Errorf("oracle matches %d of %d — stable pattern should mostly win",
			out.OracleMatches, out.Intervals)
	}
	if wr := out.WinRate(); wr <= 0.5 || wr > 1 {
		t.Errorf("win rate = %v", wr)
	}
	// Both phases appear within the first 50 intervals and need 2 trials
	// each; add slack for boundary mispredictions re-opening trials.
	if out.ConvergenceInterval == 0 || out.ConvergenceInterval > 100 {
		t.Errorf("convergence interval = %d, want early and non-zero", out.ConvergenceInterval)
	}
	if out.Regret() < 0 {
		t.Errorf("negative regret %v", out.Regret())
	}
}

// TestStepOracleTieCountsAsWin checks matches are scored by cost, not
// config index: a decision tied with the clairvoyant best pays the
// oracle price and must count as a win.
func TestStepOracleTieCountsAsWin(t *testing.T) {
	loop := NewAdaptiveLoop(NewController(2, 1), predictor.NewLastPhase())
	// Whatever config the controller trials first, both cost the same.
	loop.Step(0, []float64{1, 1})
	out := loop.Outcome()
	if out.OracleMatches != 1 {
		t.Errorf("tied-cost interval scored %d oracle matches, want 1", out.OracleMatches)
	}
	if out.Regret() != 0 {
		t.Errorf("tied-cost interval has regret %v, want 0", out.Regret())
	}
}

// TestStepCostsLengthPanics checks the online API validates its cost
// vector like Replay validates its table.
func TestStepCostsLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short costs vector should panic")
		}
	}()
	NewAdaptiveLoop(NewController(2, 1), predictor.NewLastPhase()).Step(0, []float64{1})
}

func TestAdaptiveOutcomeConsistency(t *testing.T) {
	phases, scores := stablePattern(200)
	out := NewAdaptiveLoop(NewController(2, 2), predictor.NewRunLength(16)).Replay(phases, scores)
	if out.Mispredictions > out.Intervals-1 {
		t.Errorf("mispredictions %d exceed scored intervals", out.Mispredictions)
	}
	if out.PredictionAccuracy < 0 || out.PredictionAccuracy > 1 {
		t.Errorf("accuracy = %v", out.PredictionAccuracy)
	}
}
