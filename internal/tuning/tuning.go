// Package tuning implements the reconfiguration module of the paper's
// phase-adaptive pipeline (§II): for each detected phase it trials the
// available hardware configurations on successive intervals of that
// phase, then locks in the best one. The quality of the phase detector
// directly controls tuning cost (one trial sequence per phase) and
// effectiveness (homogeneous phases make the locked-in choice right for
// every future interval) — which is why the paper measures detectors by
// CoV versus number of phases.
package tuning

import "fmt"

// Objective scores a configuration's measurement; lower is better
// (e.g. CPI or energy-delay).
type Objective func(measurement float64) float64

// Controller runs trial-and-error tuning per phase.
type Controller struct {
	numConfigs int
	states     map[int]*phaseState
	// TrialsPerConfig is how many intervals each configuration is
	// measured before moving on (averaging suppresses noise).
	trialsPerConfig int
}

type phaseState struct {
	nextConfig int
	trialCount int
	trialSum   float64
	bestConfig int
	bestScore  float64
	tuned      bool
}

// NewController returns a controller choosing among numConfigs hardware
// configurations, measuring each for trialsPerConfig intervals.
func NewController(numConfigs, trialsPerConfig int) *Controller {
	if numConfigs <= 0 {
		panic("tuning: need at least one configuration")
	}
	if trialsPerConfig <= 0 {
		trialsPerConfig = 1
	}
	return &Controller{
		numConfigs:      numConfigs,
		trialsPerConfig: trialsPerConfig,
		states:          make(map[int]*phaseState),
	}
}

// Decision is the controller's choice for the next interval.
type Decision struct {
	// Config is the hardware configuration to apply.
	Config int
	// Tuning reports whether the interval is a trial (overhead) rather
	// than a locked-in best configuration.
	Tuning bool
}

// Decide returns the configuration for the next interval of the given
// predicted phase.
func (c *Controller) Decide(phase int) Decision {
	st := c.states[phase]
	if st == nil {
		st = &phaseState{bestConfig: -1}
		c.states[phase] = st
	}
	if st.tuned {
		return Decision{Config: st.bestConfig}
	}
	return Decision{Config: st.nextConfig, Tuning: true}
}

// Report feeds back the measured objective for the interval that just
// ran in the given phase with the given configuration. Measurements for
// already-tuned phases are ignored (the paper's mechanism re-tunes only
// when phase membership changes, which appears as a new phase ID).
func (c *Controller) Report(phase, config int, score float64) {
	st := c.states[phase]
	if st == nil || st.tuned || config != st.nextConfig {
		return
	}
	st.trialCount++
	st.trialSum += score
	if st.trialCount < c.trialsPerConfig {
		return
	}
	avg := st.trialSum / float64(st.trialCount)
	if st.bestConfig < 0 || avg < st.bestScore {
		st.bestConfig = st.nextConfig
		st.bestScore = avg
	}
	st.trialCount = 0
	st.trialSum = 0
	st.nextConfig++
	if st.nextConfig >= c.numConfigs {
		st.tuned = true
	}
}

// Tuned reports whether the phase has finished its trial sequence.
func (c *Controller) Tuned(phase int) bool {
	st := c.states[phase]
	return st != nil && st.tuned
}

// Best returns the locked-in configuration for a tuned phase.
func (c *Controller) Best(phase int) (config int, ok bool) {
	st := c.states[phase]
	if st == nil || !st.tuned {
		return 0, false
	}
	return st.bestConfig, true
}

// Phases returns how many distinct phases the controller has seen.
func (c *Controller) Phases() int { return len(c.states) }

// Outcome summarizes a tuning simulation.
type Outcome struct {
	// Intervals is the total interval count replayed.
	Intervals int
	// TuningIntervals is how many were spent trialling (overhead).
	TuningIntervals int
	// TotalScore is the summed objective across all intervals.
	TotalScore float64
	// OracleScore is the score a clairvoyant controller (always the best
	// configuration, no trials) would have achieved.
	OracleScore float64
}

// Overhead returns the fraction of intervals spent tuning.
func (o Outcome) Overhead() float64 {
	if o.Intervals == 0 {
		return 0
	}
	return float64(o.TuningIntervals) / float64(o.Intervals)
}

// String summarizes the outcome.
func (o Outcome) String() string {
	return fmt.Sprintf("intervals=%d tuning=%d (%.1f%%) score=%.2f oracle=%.2f (+%.1f%%)",
		o.Intervals, o.TuningIntervals, 100*o.Overhead(), o.TotalScore, o.OracleScore,
		100*(o.TotalScore-o.OracleScore)/o.OracleScore)
}

// Replay simulates the adaptive loop over a recorded phase sequence.
// scores[config][i] is the objective value interval i would have under
// each configuration. It returns the achieved outcome, which examples
// use to show that better phase detection lowers both tuning overhead
// and total cost.
func Replay(c *Controller, phases []int, scores [][]float64) Outcome {
	if len(scores) != c.numConfigs {
		panic("tuning: scores must have one row per configuration")
	}
	var out Outcome
	for i, ph := range phases {
		d := c.Decide(ph)
		s := scores[d.Config][i]
		c.Report(ph, d.Config, s)
		out.Intervals++
		if d.Tuning {
			out.TuningIntervals++
		}
		out.TotalScore += s
		best := scores[0][i]
		for cfg := 1; cfg < c.numConfigs; cfg++ {
			if scores[cfg][i] < best {
				best = scores[cfg][i]
			}
		}
		out.OracleScore += best
	}
	return out
}
