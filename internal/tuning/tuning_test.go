package tuning

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestControllerTrialsEveryConfigOnce(t *testing.T) {
	c := NewController(3, 1)
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		d := c.Decide(0)
		if !d.Tuning {
			t.Fatalf("interval %d should be a trial", i)
		}
		seen[d.Config] = true
		c.Report(0, d.Config, float64(10-d.Config)) // config 2 is best
	}
	if len(seen) != 3 {
		t.Fatalf("trialled %d configs, want 3", len(seen))
	}
	if !c.Tuned(0) {
		t.Fatal("phase must be tuned after all trials")
	}
	best, ok := c.Best(0)
	if !ok || best != 2 {
		t.Errorf("best = (%d, %v), want (2, true)", best, ok)
	}
	d := c.Decide(0)
	if d.Tuning || d.Config != 2 {
		t.Errorf("post-tuning decision = %+v", d)
	}
}

func TestControllerAveragesTrials(t *testing.T) {
	c := NewController(2, 2)
	// Config 0: measurements 10, 2 (avg 6). Config 1: 5, 5 (avg 5).
	for _, s := range []float64{10, 2} {
		d := c.Decide(0)
		if d.Config != 0 {
			t.Fatalf("expected config 0 trial, got %d", d.Config)
		}
		c.Report(0, 0, s)
	}
	for _, s := range []float64{5, 5} {
		c.Report(0, 1, s)
	}
	best, _ := c.Best(0)
	if best != 1 {
		t.Errorf("best = %d, want 1 (avg 5 < avg 6)", best)
	}
}

func TestControllerPerPhaseIndependence(t *testing.T) {
	c := NewController(2, 1)
	feed := func(phase int, scores []float64) {
		for _, s := range scores {
			d := c.Decide(phase)
			c.Report(phase, d.Config, s)
		}
	}
	feed(0, []float64{1, 9}) // phase 0: config 0 good
	feed(1, []float64{9, 1}) // phase 1: config 1 good
	b0, _ := c.Best(0)
	b1, _ := c.Best(1)
	if b0 != 0 || b1 != 1 {
		t.Errorf("per-phase bests = %d, %d; want 0, 1", b0, b1)
	}
	if c.Phases() != 2 {
		t.Errorf("Phases = %d", c.Phases())
	}
}

func TestReportIgnoresStaleConfig(t *testing.T) {
	c := NewController(2, 1)
	c.Decide(0)
	c.Report(0, 1, 0.1) // wrong config: ignored
	if c.Tuned(0) {
		t.Error("stale report must not advance tuning")
	}
}

func TestBestBeforeTuned(t *testing.T) {
	c := NewController(2, 1)
	if _, ok := c.Best(5); ok {
		t.Error("Best on unseen phase must be !ok")
	}
}

func TestNewControllerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewController(0, 1)
}

func TestReplayConvergesToOracle(t *testing.T) {
	// Two stable phases alternating in long runs; config 0 suits phase 0,
	// config 1 suits phase 1.
	var phases []int
	for rep := 0; rep < 20; rep++ {
		for i := 0; i < 10; i++ {
			phases = append(phases, rep%2)
		}
	}
	n := len(phases)
	scores := [][]float64{make([]float64, n), make([]float64, n)}
	for i, ph := range phases {
		if ph == 0 {
			scores[0][i], scores[1][i] = 1, 2
		} else {
			scores[0][i], scores[1][i] = 2, 1
		}
	}
	out := Replay(NewController(2, 1), phases, scores)
	if out.Intervals != n {
		t.Fatalf("intervals = %d", out.Intervals)
	}
	if out.TuningIntervals != 4 { // 2 phases × 2 configs
		t.Errorf("tuning intervals = %d, want 4", out.TuningIntervals)
	}
	// After tuning, every interval runs at oracle cost: total = oracle +
	// the extra cost of the mispicked trials (2 trials cost 2 instead of 1).
	if out.TotalScore != out.OracleScore+2 {
		t.Errorf("total = %v, oracle = %v", out.TotalScore, out.OracleScore)
	}
	if out.Overhead() <= 0 || out.Overhead() >= 0.1 {
		t.Errorf("overhead = %v", out.Overhead())
	}
	if !strings.Contains(out.String(), "intervals=200") {
		t.Errorf("String() = %q", out.String())
	}
}

func TestReplayFragmentedPhasesCostMore(t *testing.T) {
	// The same execution classified two ways: a clean 2-phase labelling
	// versus a noisy 8-phase labelling. More phases => more trials =>
	// higher overhead — the CoV-curve trade-off the paper formalizes.
	n := 400
	clean := make([]int, n)
	noisy := make([]int, n)
	for i := range clean {
		clean[i] = (i / 20) % 2
		noisy[i] = (i/20)%2*4 + i%4 // 8 distinct labels
	}
	scores := [][]float64{make([]float64, n), make([]float64, n)}
	for i := range clean {
		if clean[i] == 0 {
			scores[0][i], scores[1][i] = 1, 2
		} else {
			scores[0][i], scores[1][i] = 2, 1
		}
	}
	outClean := Replay(NewController(2, 1), clean, scores)
	outNoisy := Replay(NewController(2, 1), noisy, scores)
	if outNoisy.TuningIntervals <= outClean.TuningIntervals {
		t.Errorf("fragmented labelling must tune more: %d vs %d",
			outNoisy.TuningIntervals, outClean.TuningIntervals)
	}
}

func TestReplayPanicsOnBadScores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Replay(NewController(2, 1), []int{0}, [][]float64{{1}})
}

// Property: overhead is bounded by (configs × trials × phases) intervals
// and total score is never below oracle.
func TestReplayBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		phases := make([]int, len(raw))
		for i, r := range raw {
			phases[i] = int(r % 4)
		}
		n := len(phases)
		scores := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
		for i := range phases {
			for cfg := 0; cfg < 3; cfg++ {
				scores[cfg][i] = float64((phases[i]+cfg)%3) + 1
			}
		}
		c := NewController(3, 2)
		out := Replay(c, phases, scores)
		maxTuning := 3 * 2 * c.Phases()
		return out.TuningIntervals <= maxTuning && out.TotalScore >= out.OracleScore-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
