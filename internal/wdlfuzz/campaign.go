package wdlfuzz

import (
	"encoding/json"
	"fmt"
	"sort"

	"dsmphase/internal/rng"
	"dsmphase/internal/workloads"
)

// Campaign: a bounded, deterministic hunt. Seeds form the initial
// corpus; each round picks a corpus entry, stacks 1..MaxStack
// mutations, and runs the mutant through the invariant oracle and the
// two differential probes. Findings are shrunk to a fixpoint, renamed
// deterministically, and deduped by minimized-source hash, so the same
// (seeds, Config) always produces byte-identical reproducers.

// Seed is one corpus entry: a named .wdl source.
type Seed struct {
	Name string
	Src  []byte
}

// Config bounds and parameterizes a campaign. Zero values select the
// defaults noted on each field.
type Config struct {
	Seed   uint64 // mutation stream seed (default 1)
	Budget int    // mutants evaluated (default 100)

	MaxStack int // mutations stacked per mutant (default 3)

	Interval     uint64 // detector probe sampling interval (default 2000)
	MinIntervals int    // intervals required to score a mutant (default 8)

	// DetectorFactor flags a mutant whose BBV switch-rate reaches this
	// multiple of the baseline's (default 2). CoVFactor does the same
	// for the per-phase CPI CoV — the CoV-curve collapse axis
	// (default 3).
	DetectorFactor float64
	CoVFactor      float64

	// BlowupFactor flags a directory-vs-IVY activity-rate ratio at or
	// above it (default 32); BlowupFloor is the absolute events-per-1k
	// rate the larger side must also clear (default 5), so near-silent
	// specs don't divide their way into findings.
	BlowupFactor float64
	BlowupFloor  float64

	ShrinkTries int // keep() calls per finding minimization (default 200)

	// Baseline overrides the stable reference the detector oracle
	// compares against; nil computes it from the built-in lu workload.
	Baseline *DetectorScore

	Log func(format string, args ...any) // optional progress sink
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Budget == 0 {
		c.Budget = 100
	}
	if c.MaxStack == 0 {
		c.MaxStack = 3
	}
	if c.Interval == 0 {
		c.Interval = 2000
	}
	if c.MinIntervals == 0 {
		c.MinIntervals = 8
	}
	if c.DetectorFactor == 0 {
		c.DetectorFactor = 2
	}
	if c.CoVFactor == 0 {
		c.CoVFactor = 3
	}
	if c.BlowupFactor == 0 {
		c.BlowupFactor = 32
	}
	if c.BlowupFloor == 0 {
		c.BlowupFloor = 5
	}
	if c.ShrinkTries == 0 {
		c.ShrinkTries = 200
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	return c
}

// Finding is one shrunk, renamed reproducer.
type Finding struct {
	Kind   string   // "detector", "cov", "protocol", "invariant"
	Name   string   // deterministic: <seed-name>-f<N>
	Source []byte   // minimized canonical source (already renamed)
	Trail  []string // mutation operators that produced the original mutant
	Detail string   // human-readable: what the oracle measured
}

// Result summarizes a campaign.
type Result struct {
	Evaluated int // mutants generated
	Invalid   int // mutants rejected by ParseSpec (error-path coverage)
	Skipped   int // mutants a probe could not score (budget, few intervals)
	Baseline  DetectorScore
	Findings  []Finding
	Corpus    int // live corpus size at exit
}

// corpusCap bounds the live corpus so a productive campaign doesn't
// drift arbitrarily far from its seeds.
const corpusCap = 64

// BaselineLU scores the built-in lu workload — the paper panel's most
// phase-stable app — as the campaign's stable reference.
func BaselineLU(interval uint64, minIntervals int) (*DetectorScore, error) {
	lu, err := workloads.ByName("lu")
	if err != nil {
		return nil, err
	}
	return ProbeDetector(lu, interval, minIntervals)
}

// Run executes one deterministic campaign.
func Run(seeds []Seed, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(seeds) == 0 {
		return nil, fmt.Errorf("wdlfuzz: campaign needs at least one seed spec")
	}
	for _, s := range seeds {
		if _, err := workloads.ParseSpec(s.Src); err != nil {
			return nil, fmt.Errorf("wdlfuzz: seed %s: %w", s.Name, err)
		}
	}
	base := cfg.Baseline
	if base == nil {
		var err error
		base, err = BaselineLU(cfg.Interval, cfg.MinIntervals)
		if err != nil {
			return nil, fmt.Errorf("wdlfuzz: baseline: %w", err)
		}
	}
	cfg.Log("baseline lu: switch-rate %.3f, cov %.3f over %d intervals",
		base.SwitchRate, base.CoV, base.Intervals)

	type entry struct {
		name string
		src  []byte
	}
	corpus := make([]entry, 0, corpusCap)
	for _, s := range seeds {
		corpus = append(corpus, entry{s.Name, s.Src})
	}

	res := &Result{Baseline: *base}
	m := NewMutator(cfg.Seed)
	r := rng.New(cfg.Seed ^ 0x9E3779B97F4A7C15)
	seen := map[uint64]bool{} // minimized-source hashes already reported
	perSeed := map[string]int{}

	record := func(kind, from string, src []byte, trail []string, detail string, keep func([]byte) bool) {
		min := Shrink(src, keep, cfg.ShrinkTries)
		perSeed[from]++
		name := fmt.Sprintf("%s-f%d", from, perSeed[from])
		renamed, err := setSpecName(min, name)
		if err != nil {
			renamed = min
		}
		sw, err := workloads.ParseSpec(renamed)
		if err != nil {
			// Renaming cannot invalidate a valid spec, but stay safe.
			res.Findings = append(res.Findings, Finding{kind, name, min, trail, detail})
			return
		}
		if seen[sw.Hash()] {
			perSeed[from]--
			return
		}
		seen[sw.Hash()] = true
		cfg.Log("finding %s (%s): %s [%v]", name, kind, detail, trail)
		res.Findings = append(res.Findings, Finding{kind, name, sw.Source(), trail, detail})
	}

	for i := 0; i < cfg.Budget; i++ {
		from := corpus[r.Intn(len(corpus))]
		src := from.src
		var trail []string
		stack := 1 + r.Intn(cfg.MaxStack)
		for s := 0; s < stack; s++ {
			next, op, err := m.Mutate(src)
			if err != nil {
				break
			}
			src, trail = next, append(trail, op)
		}
		res.Evaluated++

		if EstimateWork(src) > maxWork {
			res.Skipped++
			continue
		}
		sw, err := workloads.ParseSpec(src)
		if err != nil {
			res.Invalid++
			continue
		}
		if viols := CheckInvariants(sw, src); len(viols) > 0 {
			v := viols[0]
			record("invariant", from.name, src, trail, v.String(), keepInvariant(v.Kind))
			continue
		}

		score, err := ProbeDetector(sw, cfg.Interval, cfg.MinIntervals)
		if err != nil {
			res.Skipped++
			continue
		}
		detTh := cfg.DetectorFactor * base.SwitchRate
		covTh := cfg.CoVFactor * base.CoV
		switch {
		case score.SwitchRate >= detTh:
			record("detector", from.name, src, trail,
				fmt.Sprintf("BBV switch-rate %.3f >= %.1fx baseline %.3f", score.SwitchRate, cfg.DetectorFactor, base.SwitchRate),
				keepDetector(cfg, detTh))
		case base.CoV > 0 && score.CoV >= covTh && score.Phases >= 2:
			record("cov", from.name, src, trail,
				fmt.Sprintf("per-phase CPI CoV %.3f >= %.1fx baseline %.3f", score.CoV, cfg.CoVFactor, base.CoV),
				keepCoV(cfg, covTh))
		case score.SwitchRate > 1.2*base.SwitchRate && len(corpus) < corpusCap:
			// Warmer than baseline but below the bar: keep hunting from it.
			corpus = append(corpus, entry{from.name, src})
		}

		pscore, viols, err := ProbeProtocols(sw)
		if err != nil {
			res.Skipped++
			continue
		}
		if len(viols) > 0 {
			record("invariant", from.name, src, trail, viols[0].String(), keepProtocolViolation())
			continue
		}
		if pscore.Blowup() >= cfg.BlowupFactor && maxRate(pscore) >= cfg.BlowupFloor {
			record("protocol", from.name, src, trail,
				fmt.Sprintf("dir-vs-ivy blowup %.1fx (dir %.2f, ivy %.2f per 1k)", pscore.Blowup(), pscore.DirRate, pscore.IVYRate),
				keepProtocol(cfg))
		} else if pscore.Blowup() >= cfg.BlowupFactor/4 && maxRate(pscore) >= cfg.BlowupFloor && len(corpus) < corpusCap {
			corpus = append(corpus, entry{from.name, src})
		}
	}
	res.Corpus = len(corpus)
	sortFindings(res.Findings)
	return res, nil
}

func maxRate(s *ProtocolScore) float64 {
	if s.DirRate > s.IVYRate {
		return s.DirRate
	}
	return s.IVYRate
}

// keepDetector holds while the shrunk spec still parses, scores, and
// clears the switch-rate threshold that flagged it.
func keepDetector(cfg Config, threshold float64) func([]byte) bool {
	return func(src []byte) bool {
		sw, err := workloads.ParseSpec(src)
		if err != nil {
			return false
		}
		if len(CheckInvariants(sw, src)) > 0 {
			return false
		}
		score, err := ProbeDetector(sw, cfg.Interval, cfg.MinIntervals)
		return err == nil && score.SwitchRate >= threshold
	}
}

func keepCoV(cfg Config, threshold float64) func([]byte) bool {
	return func(src []byte) bool {
		sw, err := workloads.ParseSpec(src)
		if err != nil {
			return false
		}
		if len(CheckInvariants(sw, src)) > 0 {
			return false
		}
		score, err := ProbeDetector(sw, cfg.Interval, cfg.MinIntervals)
		return err == nil && score.CoV >= threshold && score.Phases >= 2
	}
}

func keepProtocol(cfg Config) func([]byte) bool {
	return func(src []byte) bool {
		sw, err := workloads.ParseSpec(src)
		if err != nil {
			return false
		}
		score, viols, err := ProbeProtocols(sw)
		if err != nil || len(viols) > 0 {
			return false
		}
		return score.Blowup() >= cfg.BlowupFactor && maxRate(score) >= cfg.BlowupFloor
	}
}

// keepInvariant holds while the spec still violates the same invariant
// kind.
func keepInvariant(kind string) func([]byte) bool {
	return func(src []byte) bool {
		sw, err := workloads.ParseSpec(src)
		if err != nil {
			return false
		}
		for _, v := range CheckInvariants(sw, src) {
			if v.Kind == kind {
				return true
			}
		}
		return false
	}
}

func keepProtocolViolation() func([]byte) bool {
	return func(src []byte) bool {
		sw, err := workloads.ParseSpec(src)
		if err != nil {
			return false
		}
		_, viols, err := ProbeProtocols(sw)
		return err == nil && len(viols) > 0
	}
}

// RenameSpec rewrites the spec's name field, leaving everything else
// untouched. Campaign findings and sweep-family members get their
// deterministic names through it.
func RenameSpec(src []byte, name string) ([]byte, error) {
	return setSpecName(src, name)
}

// setSpecName rewrites the spec's name field.
func setSpecName(src []byte, name string) ([]byte, error) {
	var spec map[string]any
	if err := json.Unmarshal(src, &spec); err != nil {
		return nil, err
	}
	spec["name"] = name
	return json.Marshal(spec)
}

// sortFindings orders findings by severity class then name, so report
// order is stable however the campaign interleaved discoveries.
func sortFindings(fs []Finding) {
	rank := map[string]int{"invariant": 0, "detector": 1, "cov": 2, "protocol": 3}
	sort.SliceStable(fs, func(i, j int) bool {
		if rank[fs[i].Kind] != rank[fs[j].Kind] {
			return rank[fs[i].Kind] < rank[fs[j].Kind]
		}
		return fs[i].Name < fs[j].Name
	})
}
