package wdlfuzz

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dsmphase/internal/workloads"
)

func examplePath(t *testing.T, rel string) string {
	t.Helper()
	return filepath.Join("..", "..", "examples", rel)
}

func readExample(rel string) ([]byte, error) {
	return os.ReadFile(filepath.Join("..", "..", "examples", rel))
}

func loadExample(t *testing.T, rel string) []byte {
	t.Helper()
	src, err := os.ReadFile(examplePath(t, rel))
	if err != nil {
		t.Fatalf("reading %s: %v", rel, err)
	}
	return src
}

// TestSeedCorpusInvariants: every committed .wdl must satisfy the hard
// invariant oracle — the fuzzer's seed corpus is clean by definition.
func TestSeedCorpusInvariants(t *testing.T) {
	root := filepath.Join("..", "..", "examples")
	var found int
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || filepath.Ext(path) != ".wdl" {
			return err
		}
		found++
		sw, err := workloads.LoadSpecFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			return nil
		}
		src, _ := os.ReadFile(path)
		for _, v := range CheckInvariants(sw, src) {
			t.Errorf("%s: invariant violation: %s", path, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if found < 3 {
		t.Fatalf("walked only %d .wdl files, corpus missing?", found)
	}
}

// TestMutatorDeterminism: identical seeds produce identical mutation
// sequences; the campaign's reproducibility rests on this.
func TestMutatorDeterminism(t *testing.T) {
	src := loadExample(t, "adversarial_phases/oscillate.wdl")
	run := func(seed uint64) [][]byte {
		m := NewMutator(seed)
		cur := src
		var out [][]byte
		for i := 0; i < 20; i++ {
			next, _, err := m.Mutate(cur)
			if err != nil {
				t.Fatalf("mutate %d: %v", i, err)
			}
			out = append(out, next)
			if _, err := workloads.ParseSpec(next); err == nil {
				cur = next
			}
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("mutation %d differs between identically-seeded runs", i)
		}
	}
}

// TestShrinkMinimizes: shrinking under a simple structural predicate
// strips everything the predicate doesn't need, deterministically.
func TestShrinkMinimizes(t *testing.T) {
	src := loadExample(t, "adversarial_phases/oscillate.wdl")
	keep := func(s []byte) bool {
		sw, err := workloads.ParseSpec(s)
		if err != nil {
			return false
		}
		var spec struct {
			Phases []struct {
				Blocks []struct {
					Kind string `json:"kind"`
				} `json:"blocks"`
			} `json:"phases"`
		}
		if err := json.Unmarshal(sw.Source(), &spec); err != nil {
			return false
		}
		for _, ph := range spec.Phases {
			for _, b := range ph.Blocks {
				if b.Kind == "share" {
					return true
				}
			}
		}
		return false
	}
	if !keep(src) {
		t.Fatal("seed does not satisfy predicate")
	}
	min1 := Shrink(src, keep, 300)
	min2 := Shrink(src, keep, 300)
	if !bytes.Equal(min1, min2) {
		t.Fatal("shrink is not deterministic")
	}
	if !keep(min1) {
		t.Fatal("shrunk spec no longer satisfies predicate")
	}
	if len(min1) >= len(src) {
		t.Fatalf("shrink did not reduce: %d -> %d bytes", len(src), len(min1))
	}
	var spec map[string]any
	if err := json.Unmarshal(min1, &spec); err != nil {
		t.Fatal(err)
	}
	phases := spec["phases"].([]any)
	if len(phases) != 1 {
		t.Fatalf("expected single surviving phase, got %d", len(phases))
	}
	blocks := phases[0].(map[string]any)["blocks"].([]any)
	if len(blocks) != 1 {
		t.Fatalf("expected single surviving block, got %d", len(blocks))
	}
}

// TestBaselineLU: the stable reference must actually be stable — a low
// switch-rate with long runs — or every comparison is meaningless.
func TestBaselineLU(t *testing.T) {
	base, err := BaselineLU(2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if base.SwitchRate > 0.5 {
		t.Fatalf("lu baseline switch-rate %.3f too high to serve as stable reference", base.SwitchRate)
	}
	if base.Intervals < 8 {
		t.Fatalf("lu baseline recorded only %d intervals", base.Intervals)
	}
}

// TestCampaignDeterministic: the same seeds and Config produce
// byte-identical findings, end to end through mutation, probing,
// shrinking and renaming.
func TestCampaignDeterministic(t *testing.T) {
	seeds := []Seed{
		{"oscillate", loadExample(t, "adversarial_phases/oscillate.wdl")},
		{"drift", loadExample(t, "adversarial_phases/drift.wdl")},
	}
	cfg := Config{Seed: 3, Budget: 12, ShrinkTries: 40}
	a, err := Run(seeds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(seeds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Evaluated != cfg.Budget || b.Evaluated != cfg.Budget {
		t.Fatalf("evaluated %d/%d, want %d", a.Evaluated, b.Evaluated, cfg.Budget)
	}
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("finding counts differ: %d vs %d", len(a.Findings), len(b.Findings))
	}
	for i := range a.Findings {
		if a.Findings[i].Name != b.Findings[i].Name || !bytes.Equal(a.Findings[i].Source, b.Findings[i].Source) {
			t.Fatalf("finding %d differs between identically-seeded campaigns", i)
		}
	}
	// Every finding must itself be a valid, invariant-clean spec.
	for _, f := range a.Findings {
		sw, err := workloads.ParseSpec(f.Source)
		if err != nil {
			t.Errorf("finding %s does not parse: %v", f.Name, err)
			continue
		}
		if f.Kind != "invariant" {
			if viols := CheckInvariants(sw, f.Source); len(viols) > 0 {
				t.Errorf("finding %s (%s) violates invariants: %v", f.Name, f.Kind, viols)
			}
		}
	}
}

// TestEstimateWorkGuards: the work estimator must pass every committed
// seed and reject an astronomically-inflated mutant.
func TestEstimateWorkGuards(t *testing.T) {
	for _, rel := range []string{"adversarial_phases/oscillate.wdl", "adversarial_phases/drift.wdl"} {
		if w := EstimateWork(loadExample(t, rel)); w <= 0 || w > maxWork {
			t.Errorf("%s: estimated work %.0f outside (0, %d]", rel, w, int(maxWork))
		}
	}
	huge := []byte(`{"name":"huge","description":"x","repeat":1000000,
		"phases":[{"repeat":1000000,"blocks":[{"kind":"stride","count":1000000}]}]}`)
	if w := EstimateWork(huge); w <= maxWork {
		t.Errorf("inflated spec estimated at %.0f, want > %d", w, int(maxWork))
	}
}
