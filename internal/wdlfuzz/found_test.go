package wdlfuzz

import (
	"testing"

	"dsmphase/internal/workloads"
)

// TestFuzzFoundReproducers pins the committed fuzzer-found corpus:
// every reproducer under examples/fuzz_found/ must still parse, hold
// the hard invariants, and cause the degradation that got it flagged.
// If a detector or protocol change legitimately fixes one of these
// pathologies, regenerate the corpus (see examples/fuzz_found/README)
// rather than loosening the bounds.
func TestFuzzFoundReproducers(t *testing.T) {
	base, err := BaselineLU(2000, 8)
	if err != nil {
		t.Fatal(err)
	}

	probe := func(t *testing.T, rel string) *workloads.SpecWorkload {
		t.Helper()
		src := loadExample(t, "fuzz_found/"+rel)
		sw, err := workloads.ParseSpec(src)
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		for _, v := range CheckInvariants(sw, src) {
			t.Fatalf("%s: invariant violation: %s", rel, v)
		}
		return sw
	}

	// The acceptance bar: ≥2× the lu baseline BBV switch-rate.
	for _, rel := range []string{"oscillate-f2.wdl", "drift-f10.wdl"} {
		t.Run(rel, func(t *testing.T) {
			sw := probe(t, rel)
			score, err := ProbeDetector(sw, 2000, 8)
			if err != nil {
				t.Fatal(err)
			}
			if min := 2 * base.SwitchRate; score.SwitchRate < min {
				t.Errorf("switch-rate %.3f below 2x lu baseline %.3f", score.SwitchRate, min)
			}
		})
	}

	// drift-f13 is protocol-pathological: page-granular IVY blows up
	// relative to the line-granular directory.
	t.Run("drift-f13.wdl", func(t *testing.T) {
		sw := probe(t, "drift-f13.wdl")
		score, viols, err := ProbeProtocols(sw)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range viols {
			t.Errorf("protocol invariant violation: %s", v)
		}
		if score.Blowup() < 32 {
			t.Errorf("dir-vs-ivy blowup %.1fx below the 32x bar (dir %.2f, ivy %.2f per 1k)",
				score.Blowup(), score.DirRate, score.IVYRate)
		}
		if score.IVYRate < score.DirRate {
			t.Errorf("expected IVY to be the pathological side (ivy %.2f <= dir %.2f)", score.IVYRate, score.DirRate)
		}
	})
}
