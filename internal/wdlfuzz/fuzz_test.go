package wdlfuzz

import (
	"testing"

	"dsmphase/internal/workloads"
)

// Native fuzz targets. Under plain `go test` only the committed seed
// corpus runs, so these double as regression tests; `go test -fuzz`
// turns them into an open-ended hunt with the same oracles the
// campaign uses.

func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var out [][]byte
	for _, rel := range []string{
		"adversarial_phases/oscillate.wdl",
		"adversarial_phases/drift.wdl",
	} {
		src, err := readExample(rel)
		if err != nil {
			f.Fatalf("seed %s: %v", rel, err)
		}
		out = append(out, src)
	}
	return out
}

// FuzzParseSpec: any byte string either fails ParseSpec with a clean
// error or yields a spec that satisfies every hard invariant.
func FuzzParseSpec(f *testing.F) {
	for _, src := range fuzzSeeds(f) {
		f.Add(src)
	}
	f.Add([]byte(`{"name":"t","description":"d","phases":[{"blocks":[{"kind":"stride","count":4}]}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sw, err := workloads.ParseSpec(data)
		if err != nil {
			return // clean rejection is a pass
		}
		if EstimateWork(data) > maxWork {
			t.Skip("mutant too large to drain")
		}
		for _, v := range CheckInvariants(sw, data) {
			t.Errorf("invariant violation: %s", v)
		}
	})
}

// FuzzMutate: the mutation engine, applied to any parseable input,
// must produce mutants that either fail validation cleanly or satisfy
// the hard invariants — and the engine itself must never panic.
func FuzzMutate(f *testing.F) {
	for _, src := range fuzzSeeds(f) {
		f.Add(src, uint64(1))
		f.Add(src, uint64(42))
	}
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		if _, err := workloads.ParseSpec(data); err != nil {
			return
		}
		m := NewMutator(seed)
		src := data
		for i := 0; i < 3; i++ {
			next, _, err := m.Mutate(src)
			if err != nil {
				return
			}
			src = next
		}
		sw, err := workloads.ParseSpec(src)
		if err != nil {
			return // mutants may validate-fail; they must do so cleanly
		}
		if EstimateWork(src) > maxWork {
			t.Skip("mutant too large to drain")
		}
		for _, v := range CheckInvariants(sw, src) {
			t.Errorf("invariant violation after mutation: %s", v)
		}
	})
}
