// Package wdlfuzz mutates .wdl workload specs to hunt scenarios that
// destabilize the phase detector, blow up one coherence protocol
// relative to the other, or break hard pipeline invariants. The three
// layers — a mutation engine over the generic JSON form of a spec,
// differential oracles that compile mutants through the real machine/
// coherence stack, and a greedy minimizer — compose into deterministic
// bounded campaigns (see Campaign) surfaced by cmd/wdlfuzz.
package wdlfuzz

import (
	"encoding/json"
	"fmt"
	"sort"

	"dsmphase/internal/rng"
)

// Mutator applies single structural or parameter mutations to spec
// sources. All choices are drawn from an internal/rng stream, and all
// JSON-object iteration goes through sorted keys, so a Mutator seeded
// identically produces the identical mutation sequence on every
// machine — the property the campaign's reproducibility rests on.
type Mutator struct {
	r *rng.Rng
}

// NewMutator returns a deterministic mutator.
func NewMutator(seed uint64) *Mutator { return &Mutator{r: rng.New(seed)} }

// candidate is one concrete applicable mutation.
type candidate struct {
	name  string
	apply func()
}

// Mutate applies one randomly chosen mutation to the spec source and
// returns the mutated source plus the operator name (for finding
// trails). The result is not guaranteed to validate — the caller
// filters through ParseSpec, and "mutant that no longer parses" is
// itself useful error-path coverage.
func (m *Mutator) Mutate(src []byte) ([]byte, string, error) {
	var spec map[string]any
	if err := json.Unmarshal(src, &spec); err != nil {
		return nil, "", fmt.Errorf("wdlfuzz: mutate: %w", err)
	}
	cands := m.collect(spec)
	if len(cands) == 0 {
		return nil, "", fmt.Errorf("wdlfuzz: no mutation sites in spec")
	}
	c := cands[m.r.Intn(len(cands))]
	c.apply()
	out, err := json.Marshal(spec)
	if err != nil {
		return nil, "", fmt.Errorf("wdlfuzz: mutate: %w", err)
	}
	return out, c.name, nil
}

// collect enumerates every applicable mutation site in deterministic
// order: phase structure first, then per-block parameter tweaks.
func (m *Mutator) collect(spec map[string]any) []candidate {
	var cands []candidate
	phases, _ := spec["phases"].([]any)

	// Spec-level repeat: cycle the whole phase sequence.
	cands = append(cands, candidate{"spec-repeat", func() {
		spec["repeat"] = float64(2 + m.r.Intn(4))
	}})

	for pi := range phases {
		pi := pi
		ph, _ := phases[pi].(map[string]any)
		if ph == nil {
			continue
		}
		cands = append(cands,
			candidate{fmt.Sprintf("dup-phase@%d", pi), func() {
				spec["phases"] = insertAt(phases, pi, clone(ph))
			}},
			candidate{fmt.Sprintf("phase-repeat@%d", pi), func() {
				ph["repeat"] = float64(1 + m.r.Intn(8))
			}},
			candidate{fmt.Sprintf("toggle-barrier@%d", pi), func() {
				ph["no_barrier"] = !truthy(ph["no_barrier"])
			}},
		)
		if len(phases) > 1 {
			cands = append(cands,
				candidate{fmt.Sprintf("drop-phase@%d", pi), func() {
					spec["phases"] = removeAt(phases, pi)
				}},
				candidate{fmt.Sprintf("swap-phase@%d", pi), func() {
					pj := (pi + 1) % len(phases)
					phases[pi], phases[pj] = phases[pj], phases[pi]
				}},
			)
		}
		blocks, _ := ph["blocks"].([]any)
		for bi := range blocks {
			bi := bi
			blk, _ := blocks[bi].(map[string]any)
			if blk == nil {
				continue
			}
			cands = append(cands, candidate{fmt.Sprintf("dup-block@%d.%d", pi, bi), func() {
				ph["blocks"] = insertAt(blocks, bi, clone(blk))
			}})
			if len(blocks) > 1 {
				cands = append(cands, candidate{fmt.Sprintf("drop-block@%d.%d", pi, bi), func() {
					ph["blocks"] = removeAt(blocks, bi)
				}})
			}
			cands = append(cands, m.blockCands(pi, bi, blk)...)
		}
	}
	return cands
}

// driftFields are per-repeat drift knobs a mutation may inject even
// when absent — the gradual-drift axis PR 8's hand-written adversarial
// specs explored.
var driftFields = []string{"count_step", "offset_step", "salt_step", "elems_step"}

// blockCands enumerates parameter mutations inside one block.
func (m *Mutator) blockCands(pi, bi int, blk map[string]any) []candidate {
	var cands []candidate
	at := func(op, key string) string { return fmt.Sprintf("%s(%s)@%d.%d", op, key, pi, bi) }

	for _, key := range sortedKeys(blk) {
		key := key
		switch v := blk[key].(type) {
		case float64:
			if key == "pc" {
				continue // static PC identity, not behavior
			}
			cands = append(cands,
				candidate{at("grow", key), func() { blk[key] = v * float64(2+m.r.Intn(3)) }},
				candidate{at("shrink", key), func() { blk[key] = float64(int(v) / 2) }},
				candidate{at("nudge", key), func() { blk[key] = v + float64(1-2*m.r.Intn(2)) }},
			)
		case bool:
			cands = append(cands, candidate{at("toggle", key), func() { blk[key] = !v }})
		}
	}
	for _, df := range driftFields {
		df := df
		cands = append(cands, candidate{at("drift", df), func() {
			blk[df] = float64(1 + m.r.Intn(16))
		}})
	}
	// Placement churn: pin the block's region home to an explicit node,
	// or drop the pin. Remote-vs-local homing is the protocol oracle's
	// main lever.
	cands = append(cands, candidate{at("home", "region"), func() {
		reg, _ := blk["region"].(map[string]any)
		if reg == nil {
			reg = map[string]any{}
			blk["region"] = reg
		}
		if m.r.Intn(2) == 0 {
			reg["home"] = float64(m.r.Intn(4))
		} else {
			delete(reg, "home")
		}
	}})
	// Sharing degree, meaningful for share blocks and harmlessly
	// rejected elsewhere.
	if _, ok := blk["degree"]; ok {
		cands = append(cands, candidate{at("degree", "degree"), func() {
			blk["degree"] = float64(2 + m.r.Intn(7))
		}})
	}
	return cands
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func truthy(v any) bool { b, _ := v.(bool); return b }

// clone deep-copies a generic JSON value.
func clone(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = clone(e)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = clone(e)
		}
		return out
	default:
		return v
	}
}

func insertAt(s []any, i int, v any) []any {
	out := make([]any, 0, len(s)+1)
	out = append(out, s[:i+1]...)
	out = append(out, v)
	return append(out, s[i+1:]...)
}

func removeAt(s []any, i int) []any {
	out := make([]any, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}
