package wdlfuzz

import (
	"bytes"
	"encoding/json"
	"fmt"

	"dsmphase/internal/isa"
	"dsmphase/internal/workloads"
)

// Hard invariant oracle: properties every spec that parses must hold,
// however hostile its parameters. A violation here is a bug in the
// pipeline (or a determinism leak), not an interesting workload.

// Violation is one hard invariant break found in a mutant.
type Violation struct {
	Kind   string // "panic", "nondeterministic", "barrier-skew", "hash-unstable"
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// drainCap bounds the instructions drained per thread while checking
// invariants, so a mutant that inflates repeat counts cannot stall the
// campaign. Streams truncated at the cap still check determinism (both
// drains truncate identically); barrier agreement is skipped.
const drainCap = 2_000_000

// CheckInvariants compiles the parsed spec at a small geometry and
// checks the hard invariants: batch generation must not panic, the
// instruction stream must be a pure function of (n, size, seed), every
// thread must emit the same number of barriers, and the definition
// hash must survive a re-parse of the canonical source and a
// re-indented copy of the original source. The returned slice is empty
// for a healthy spec.
func CheckInvariants(sw *workloads.SpecWorkload, src []byte) []Violation {
	var out []Violation

	streams, panicMsg, truncated := drainAll(sw, 2, 1)
	if panicMsg != "" {
		return append(out, Violation{"panic", panicMsg})
	}
	again, panicMsg, _ := drainAll(sw, 2, 1)
	if panicMsg != "" {
		return append(out, Violation{"panic", "second drain: " + panicMsg})
	}
	for tid := range streams {
		if !equalInsts(streams[tid], again[tid]) {
			out = append(out, Violation{"nondeterministic",
				fmt.Sprintf("thread %d stream differs between identical drains", tid)})
			break
		}
	}
	if !truncated {
		barriers := make([]int, len(streams))
		for tid, st := range streams {
			for _, in := range st {
				if in.Op == isa.OpSync {
					barriers[tid]++
				}
			}
		}
		for tid := 1; tid < len(barriers); tid++ {
			if barriers[tid] != barriers[0] {
				out = append(out, Violation{"barrier-skew",
					fmt.Sprintf("thread %d emits %d barriers, thread 0 emits %d", tid, barriers[tid], barriers[0])})
				break
			}
		}
	}

	// Hash stability: the canonical source must round-trip to the same
	// definition, and re-indenting the original must not move the hash.
	if re, err := workloads.ParseSpec(sw.Source()); err != nil {
		out = append(out, Violation{"hash-unstable", "canonical source does not re-parse: " + err.Error()})
	} else if re.Hash() != sw.Hash() {
		out = append(out, Violation{"hash-unstable",
			fmt.Sprintf("canonical re-parse hash %#x != %#x", re.Hash(), sw.Hash())})
	}
	// Specs that reference external trace files only parse through
	// LoadSpecFile; for those, re-indent the canonical (inline-records)
	// source instead of the original bytes.
	indentInput := src
	if _, err := workloads.ParseSpec(src); err != nil {
		indentInput = sw.Source()
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, indentInput, "", "  "); err == nil {
		if re, err := workloads.ParseSpec(buf.Bytes()); err != nil {
			out = append(out, Violation{"hash-unstable", "re-indented source does not re-parse: " + err.Error()})
		} else if re.Hash() != sw.Hash() {
			out = append(out, Violation{"hash-unstable",
				fmt.Sprintf("re-indented source hash %#x != %#x", re.Hash(), sw.Hash())})
		}
	}
	return out
}

// drainAll drains every thread's batches at (n, SizeTest, seed) with
// panics recovered and the per-thread instruction count capped.
func drainAll(sw *workloads.SpecWorkload, n int, seed uint64) (streams [][]isa.Inst, panicMsg string, truncated bool) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprint(r)
		}
	}()
	ths := sw.Threads(n, workloads.SizeTest, seed)
	streams = make([][]isa.Inst, len(ths))
	e := isa.NewEmitter(4096)
	for tid, th := range ths {
		for len(streams[tid]) < drainCap {
			e.Reset()
			if !th.NextBatch(e) {
				break
			}
			streams[tid] = append(streams[tid], e.Take()...)
		}
		if len(streams[tid]) >= drainCap {
			truncated = true
		}
	}
	return streams, "", truncated
}

func equalInsts(a, b []isa.Inst) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
