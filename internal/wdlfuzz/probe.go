package wdlfuzz

import (
	"fmt"

	"dsmphase/internal/coherence"
	"dsmphase/internal/core"
	"dsmphase/internal/machine"
	"dsmphase/internal/stats"
	"dsmphase/internal/workloads"
)

// Differential oracles: run a mutant through the real machine and
// coherence stack and score it against a stable baseline. These do not
// decide pass/fail — the campaign compares scores across specs.

// probeBudget caps simulated instructions per processor in a probe; a
// mutant that exceeds it is skipped, not flagged.
const probeBudget = 4_000_000

// DetectorScore summarizes how the BBV detector behaves on one
// workload at the behavior-test thresholds (table 16, thBBV 0.05).
type DetectorScore struct {
	Intervals  int     // recorded intervals on proc 0
	SwitchRate float64 // fraction of intervals that change phase ID
	Distinct   int     // distinct phase IDs
	LongestRun int     // longest stable streak, in intervals
	CoV        float64 // per-phase CPI coefficient of variation
	Phases     int     // phases the CoV is computed over
}

// ProbeDetector runs the workload on a 2-node machine and classifies
// proc 0's recorded intervals with the BBV detector. It needs at least
// minIntervals recorded intervals to score; fewer (or a run error,
// e.g. the instruction budget) is a skip, reported as an error.
func ProbeDetector(w workloads.Workload, interval uint64, minIntervals int) (*DetectorScore, error) {
	cfg := machine.DefaultConfig(2)
	cfg.IntervalInstructions = interval
	cfg.MaxInstructions = probeBudget
	m := machine.New(cfg, w.Threads(2, workloads.SizeTest, 1))
	if _, err := m.Run(); err != nil {
		return nil, fmt.Errorf("wdlfuzz: detector probe: %w", err)
	}
	sigs := m.RecordsByProc()[0]
	if len(sigs) < minIntervals {
		return nil, fmt.Errorf("wdlfuzz: detector probe: only %d intervals (min %d)", len(sigs), minIntervals)
	}
	ids := core.ClassifyRecorded(core.DetectorBBV, 16, 0.05, 0, sigs)
	cpis := make([]float64, len(sigs))
	for i := range sigs {
		cpis[i] = sigs[i].CPI()
	}
	cov, phases := stats.IdentifierCoV(ids, cpis)
	return &DetectorScore{
		Intervals:  len(sigs),
		SwitchRate: switchRate(ids),
		Distinct:   distinct(ids),
		LongestRun: longestRun(ids),
		CoV:        cov,
		Phases:     phases,
	}, nil
}

func switchRate(ids []int) float64 {
	if len(ids) < 2 {
		return 0
	}
	switches := 0
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1] {
			switches++
		}
	}
	return float64(switches) / float64(len(ids)-1)
}

func distinct(ids []int) int {
	seen := map[int]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	return len(seen)
}

func longestRun(ids []int) int {
	if len(ids) == 0 {
		return 0
	}
	best, run := 1, 1
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			run++
		} else {
			run = 1
		}
		if run > best {
			best = run
		}
	}
	return best
}

// ProtocolScore is the directory-vs-IVY differential for one workload:
// each backend's characteristic remote activity, normalized per 1000
// instructions so specs of different lengths compare.
type ProtocolScore struct {
	Dir coherence.Stats
	IVY coherence.Stats
	// DirRate is line-level remote activity (remote trips +
	// invalidations) per 1k instructions under the directory backend.
	DirRate float64
	// IVYRate is page-level activity (faults + transfers + page
	// invalidations) per 1k instructions under IVY.
	IVYRate float64
}

// Blowup is the larger one-sided ratio between the two backends'
// activity rates (Inf when one side is zero and the other is not).
func (s *ProtocolScore) Blowup() float64 {
	a, b := s.DirRate, s.IVYRate
	if a < b {
		a, b = b, a
	}
	if a == 0 {
		return 0
	}
	if b == 0 {
		return a * 1e9 // effectively infinite, kept finite for sorting
	}
	return a / b
}

// ProbeProtocols runs the workload once under each coherence backend
// on a 4-node machine and returns the differential. Backend invariant
// failures after a run are returned as violations.
func ProbeProtocols(w workloads.Workload) (*ProtocolScore, []Violation, error) {
	score := &ProtocolScore{}
	var viols []Violation
	for _, kind := range []coherence.Kind{coherence.KindDirectory, coherence.KindIVY} {
		cfg := machine.DefaultConfig(4)
		cfg.Protocol = kind
		cfg.MaxInstructions = probeBudget
		m := machine.New(cfg, w.Threads(4, workloads.SizeTest, 1))
		sum, err := m.Run()
		if err != nil {
			return nil, nil, fmt.Errorf("wdlfuzz: protocol probe (%s): %w", kind, err)
		}
		if err := m.Protocol().CheckInvariants(); err != nil {
			viols = append(viols, Violation{"protocol", fmt.Sprintf("%s: %v", kind, err)})
		}
		st := m.Protocol().Stats()
		per1k := func(events uint64) float64 {
			if sum.Instructions == 0 {
				return 0
			}
			return float64(events) / float64(sum.Instructions) * 1000
		}
		switch kind {
		case coherence.KindDirectory:
			score.Dir = st
			score.DirRate = per1k(st.RemoteTrips + st.Invalidations)
		case coherence.KindIVY:
			score.IVY = st
			score.IVYRate = per1k(st.PageFaults + st.PageTransfers + st.PageInvalidations)
		}
	}
	return score, viols, nil
}
