package wdlfuzz

import (
	"encoding/json"
	"sort"
)

// Greedy spec minimizer: repeatedly try structural and parameter
// reductions, keep the first one that still satisfies the predicate,
// and loop to a fixpoint. Reductions are enumerated in deterministic
// order (structure before parameters, earlier phases first), so the
// minimized reproducer for a given finding is stable across runs.

// requiredKeys are spec fields the shrinker never deletes outright.
var requiredKeys = map[string]bool{
	"name": true, "description": true, "phases": true,
	"blocks": true, "kind": true, "trace": true,
}

// Shrink minimizes src while keep(src) stays true. keep is called at
// most maxTries times; src itself is assumed to satisfy keep. The
// result always satisfies keep (it is src itself in the worst case).
func Shrink(src []byte, keep func([]byte) bool, maxTries int) []byte {
	cur := src
	tries := 0
	attempt := func(next []byte) bool {
		if next == nil || tries >= maxTries {
			return false
		}
		tries++
		if keep(next) {
			cur = next
			return true
		}
		return false
	}
	for tries < maxTries {
		improved := false
		for _, red := range reductions(cur) {
			if attempt(red) {
				improved = true
				break // re-enumerate against the smaller spec
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

// reductions enumerates candidate one-step reductions of the spec, in
// the order the shrinker should try them: drop whole phases, drop
// blocks, strip optional fields, then pull numeric values toward 1.
func reductions(src []byte) [][]byte {
	var spec map[string]any
	if err := json.Unmarshal(src, &spec); err != nil {
		return nil
	}
	var out [][]byte
	emit := func(mutated map[string]any) {
		if b, err := json.Marshal(mutated); err == nil && len(b) <= len(src) {
			out = append(out, b)
		}
	}
	withCopy := func(f func(c map[string]any) bool) {
		c := clone(spec).(map[string]any)
		if f(c) {
			emit(c)
		}
	}

	phases, _ := spec["phases"].([]any)
	// Drop each phase.
	if len(phases) > 1 {
		for pi := range phases {
			pi := pi
			withCopy(func(c map[string]any) bool {
				c["phases"] = removeAt(c["phases"].([]any), pi)
				return true
			})
		}
	}
	// Drop each block.
	for pi := range phases {
		ph, _ := phases[pi].(map[string]any)
		if ph == nil {
			continue
		}
		blocks, _ := ph["blocks"].([]any)
		if len(blocks) <= 1 {
			continue
		}
		for bi := range blocks {
			pi, bi := pi, bi
			withCopy(func(c map[string]any) bool {
				cp := c["phases"].([]any)[pi].(map[string]any)
				cp["blocks"] = removeAt(cp["blocks"].([]any), bi)
				return true
			})
		}
	}
	// Strip optional fields, deepest first so block knobs go before
	// phase knobs; then shrink numerics toward 1.
	out = append(out, fieldReductions(src, spec)...)
	return out
}

// fieldReductions walks every object in the spec tree and proposes
// removing optional fields and reducing numeric values.
func fieldReductions(src []byte, spec map[string]any) [][]byte {
	var out [][]byte
	var paths [][]any // each: sequence of keys/indices to an object
	var walk func(v any, path []any)
	walk = func(v any, path []any) {
		switch t := v.(type) {
		case map[string]any:
			paths = append(paths, append([]any(nil), path...))
			for _, k := range sortedKeys(t) {
				walk(t[k], append(path, k))
			}
		case []any:
			for i, e := range t {
				walk(e, append(path, i))
			}
		}
	}
	walk(spec, nil)
	// Deepest objects first.
	sort.SliceStable(paths, func(i, j int) bool { return len(paths[i]) > len(paths[j]) })

	for _, path := range paths {
		path := path
		c := clone(spec).(map[string]any)
		obj := resolve(c, path)
		if obj == nil {
			continue
		}
		for _, k := range sortedKeys(obj) {
			k := k
			if requiredKeys[k] {
				continue
			}
			// Propose deletion.
			c2 := clone(spec).(map[string]any)
			if o := resolve(c2, path); o != nil {
				delete(o, k)
				if b, err := json.Marshal(c2); err == nil && len(b) < len(src) {
					out = append(out, b)
				}
			}
			// Propose numeric reduction to 1, then halving.
			if v, ok := obj[k].(float64); ok && v > 1 {
				for _, nv := range []float64{1, float64(int(v) / 2)} {
					if nv >= v {
						continue
					}
					c3 := clone(spec).(map[string]any)
					if o := resolve(c3, path); o != nil {
						o[k] = nv
						if b, err := json.Marshal(c3); err == nil {
							out = append(out, b)
						}
					}
				}
			}
		}
	}
	return out
}

// resolve follows a key/index path to an object inside the tree.
func resolve(root any, path []any) map[string]any {
	cur := root
	for _, step := range path {
		switch s := step.(type) {
		case string:
			m, ok := cur.(map[string]any)
			if !ok {
				return nil
			}
			cur = m[s]
		case int:
			a, ok := cur.([]any)
			if !ok || s >= len(a) {
				return nil
			}
			cur = a[s]
		}
	}
	m, _ := cur.(map[string]any)
	return m
}
