package wdlfuzz

import "encoding/json"

// EstimateWork approximates the instruction volume a spec would emit
// at SizeTest from its generic JSON form, without compiling it: the
// product of each block's size-like fields, summed over blocks, scaled
// by phase and spec repeats. It deliberately over-estimates — its one
// job is to reject astronomically-inflated mutants before a drain or
// probe wades into a single multi-billion-instruction batch, which the
// per-batch drain cap cannot interrupt.
func EstimateWork(src []byte) float64 {
	var spec map[string]any
	if err := json.Unmarshal(src, &spec); err != nil {
		return 0
	}
	total := 0.0
	phases, _ := spec["phases"].([]any)
	for _, p := range phases {
		ph, _ := p.(map[string]any)
		if ph == nil {
			continue
		}
		w := 0.0
		blocks, _ := ph["blocks"].([]any)
		for _, b := range blocks {
			blk, _ := b.(map[string]any)
			if blk == nil {
				continue
			}
			bw := 1.0
			for _, k := range []string{"count", "walks", "elems", "grid", "nodes", "depth", "points", "degree"} {
				if v, ok := blk[k].(float64); ok && v > 1 {
					bw *= v
					if bw > 1e18 {
						return bw
					}
				}
			}
			w += bw
		}
		total += w * numOr(ph["repeat"], 1)
	}
	total *= numOr(spec["repeat"], 1)
	if sc, ok := spec["scale"].(map[string]any); ok {
		total *= numOr(sc["test"], 1)
	}
	return total
}

func numOr(v any, def float64) float64 {
	if f, ok := v.(float64); ok && f > def {
		return f
	}
	return def
}

// maxWork is the EstimateWork ceiling a mutant must stay under to be
// probed; beyond it the campaign counts a skip.
const maxWork = 4_000_000
