package workloads

import (
	"fmt"

	"dsmphase/internal/isa"
	"dsmphase/internal/machine"
	"dsmphase/internal/rng"
)

// Art models SPEC-OMP Art (adaptive resonance theory neural network,
// MinneSPEC-Large analogue): every thread scans input windows, computes
// F1-layer activations locally, searches all F2 neurons for the best
// match — a broadcast read of weight vectors distributed round-robin
// across nodes — then updates the winner's weights at the winner's home.
//
// Phase-detection relevance: the search phase reads every node's memory
// (uniform remote distribution, high contention), while the update phase
// concentrates stores on a single, sample-dependent home — two phases
// with similar BBVs whose DDS differ sharply, plus training/testing
// epochs that change the kernel mix over time.
type Art struct{}

func init() { Register(Art{}) }

// Name implements Workload.
func (Art) Name() string { return "art" }

// Description implements Workload.
func (Art) Description() string {
	return "SPEC-OMP ART neural network (F1 scan / F2 winner search / winner weight update)"
}

type artParams struct {
	Neurons int // F2 layer size
	Weights int // weights per neuron (floats)
	Samples int // total samples per epoch, divided across threads
	Epochs  int
}

func (Art) params(sz Size) artParams {
	switch sz {
	case SizeTest:
		return artParams{Neurons: 32, Weights: 256, Samples: 32, Epochs: 2}
	case SizeSmall:
		return artParams{Neurons: 64, Weights: 512, Samples: 64, Epochs: 3}
	default:
		return artParams{Neurons: 128, Weights: 1024, Samples: 128, Epochs: 4} // MinneSPEC-Large analogue
	}
}

// InputSet implements Workload.
func (w Art) InputSet(sz Size) string {
	p := w.params(sz)
	return fmt.Sprintf("MinneSPEC-Large analogue: %d F2 neurons × %d weights, %d samples/epoch × %d epochs",
		p.Neurons, p.Weights, p.Samples, p.Epochs)
}

// Art kernel kinds.
const (
	artF1 = iota
	artSearch
	artUpdate
	artNormalize
)

const pcArt = 0x3000_0000

type artRun struct {
	n    int
	p    artParams
	seed uint64
}

// weightAddr returns the address of line l of neuron m's weight vector;
// neurons are distributed round-robin across nodes.
func (r *artRun) weightAddr(m, l int) uint64 {
	return machine.AddrAt(m%r.n, uint64(m)*uint64(r.p.Weights)*8+uint64(l)*32)
}

// inputAddr returns thread tid's input-window element address (local).
func (r *artRun) inputAddr(tid, i int) uint64 {
	const inRegion = 1 << 28
	return machine.AddrAt(tid, inRegion+uint64(i)*8)
}

// winner picks the matching F2 neuron for (tid, epoch, sample) — skewed
// toward low neuron indices (min of two draws) so some homes are hot.
func (r *artRun) winner(tid, epoch, s int) int {
	h1 := rng.Hash64(r.seed ^ uint64(tid)<<32 ^ uint64(epoch)<<16 ^ uint64(s))
	h2 := rng.Hash64(h1)
	a, b := int(h1%uint64(r.p.Neurons)), int(h2%uint64(r.p.Neurons))
	if b < a {
		a = b
	}
	return a
}

// Threads implements Workload.
func (w Art) Threads(n int, sz Size, seed uint64) []isa.Thread {
	p := w.params(sz)
	run := &artRun{n: n, p: p, seed: seed}
	// Samples are data-parallel: each thread processes its share of the
	// epoch's total, so per-processor work shrinks as the system scales
	// (like the OMP loop scheduling in the real Art).
	perThread := p.Samples / n
	if perThread < 1 {
		perThread = 1
	}
	out := make([]isa.Thread, n)
	for tid := 0; tid < n; tid++ {
		var items []item
		for ep := 0; ep < p.Epochs; ep++ {
			// Training pass: F1 → search → update per sample, bulk-
			// synchronous across threads.
			for s := 0; s < perThread; s++ {
				items = append(items,
					item{kind: artF1, a: tid},
					item{kind: artSearch, a: tid},
				)
				// Vigilance reset: every 4th sample searches twice.
				if s%4 == 3 {
					items = append(items, item{kind: artSearch, a: tid})
				}
				items = append(items, item{kind: artUpdate, a: run.winner(tid, ep, s)})
				items = append(items, item{kind: kindBarrier})
			}
			// Epoch-end normalization over this thread's own neurons.
			items = append(items, item{kind: artNormalize, a: tid})
			items = append(items, item{kind: kindBarrier})
			// Test pass: F1 + search only (no updates) over half the
			// samples — a lighter phase with a different kernel mix.
			for s := 0; s < (perThread+1)/2; s++ {
				items = append(items,
					item{kind: artF1, a: tid},
					item{kind: artSearch, a: tid},
				)
				items = append(items, item{kind: kindBarrier})
			}
		}
		out[tid] = &scriptThread{items: items, emit: run.emit, barrierPC: pcArt + 0xF00}
	}
	return out
}

func (r *artRun) emit(it item, e *isa.Emitter) {
	switch it.kind {
	case artF1:
		r.emitF1(e, it.a)
	case artSearch:
		r.emitSearch(e)
	case artUpdate:
		r.emitUpdate(e, it.a)
	case artNormalize:
		r.emitNormalize(e, it.a)
	default:
		panic("art: unknown work item")
	}
}

// emitF1: local input-window activation scan.
func (r *artRun) emitF1(e *isa.Emitter, tid int) {
	const pc = pcArt + 0x000
	for i := 0; i < r.p.Weights; i++ {
		e.Load(pc+0, r.inputAddr(tid, i))
		e.FP(pc+4, 1)
		e.LoopBranch(pc+8, i, r.p.Weights)
	}
}

// emitSearch: dot product of the activation against every neuron's
// weight vector — the broadcast-read phase.
func (r *artRun) emitSearch(e *isa.Emitter) {
	const pc = pcArt + 0x100
	lines := r.p.Weights * 8 / 32
	for m := 0; m < r.p.Neurons; m++ {
		for l := 0; l < lines; l++ {
			e.Load(pc+0, r.weightAddr(m, l))
			e.FP(pc+4, 2)
			e.LoopBranch(pc+8, l, lines)
		}
		e.Int(pc+12, 2) // max-tracking compare
		e.Branch(pc+16, rng.Hash64(uint64(m))%3 == 0)
		e.LoopBranch(pc+20, m, r.p.Neurons)
	}
}

// emitUpdate: read-modify-write of the winner's weight vector at its
// home node.
func (r *artRun) emitUpdate(e *isa.Emitter, winner int) {
	const pc = pcArt + 0x200
	lines := r.p.Weights * 8 / 32
	for l := 0; l < lines; l++ {
		e.Load(pc+0, r.weightAddr(winner, l))
		e.FP(pc+4, 2)
		e.Store(pc+8, r.weightAddr(winner, l))
		e.LoopBranch(pc+12, l, lines)
	}
}

// emitNormalize: epoch-end pass over the neurons homed at this thread.
func (r *artRun) emitNormalize(e *isa.Emitter, tid int) {
	const pc = pcArt + 0x300
	lines := r.p.Weights * 8 / 32
	for m := tid; m < r.p.Neurons; m += r.n {
		for l := 0; l < lines; l++ {
			e.Load(pc+0, r.weightAddr(m, l))
			e.FP(pc+4, 1)
			e.Store(pc+8, r.weightAddr(m, l))
			e.LoopBranch(pc+12, l, lines)
		}
		e.LoopBranch(pc+16, m/r.n, (r.p.Neurons+r.n-1)/r.n)
	}
}
