package workloads

import (
	"fmt"

	"dsmphase/internal/isa"
)

// Barnes models SPLASH-2 Barnes-Hut (Table II: 16,384 bodies): an
// N-body simulation whose octree structure makes the sharing pattern
// irregular — which cells a processor touches depends on where its
// bodies sit, not on any static partition. This is the Table II entry
// the registry was missing on the irregular side.
//
// Expressed over the IR, each timestep is:
//
//   - tree build: short seeded TreeChase descents that Store the
//     reached cell — concurrent writers scatter across hash-distributed
//     tree nodes (fine-grained irregular write sharing);
//   - force evaluation: deep read-only TreeChase descents with FP work
//     and a 40% per-thread skew — the dominant phase, read-mostly with
//     load imbalance (barrier stall time varies across threads, which
//     is what the DDS contention term keys on);
//   - body update: a private Stride sweep (purely local);
//   - every second step, a centre-of-mass Reduction over the
//     strip-partitioned body array ending in the shared-accumulator
//     read-modify-write.
//
// Substitution argument: the real code's phase boundaries (maketree /
// computeforces / advance, barrier-separated) and their machine-visible
// signatures — irregular scattered writes, then read-mostly remote
// traffic with imbalance, then local compute — survive in the
// synthetic form; only the force law itself is abstracted into seeded
// descent paths.
type Barnes struct{}

func init() { Register(Barnes{}) }

// Name implements Workload.
func (Barnes) Name() string { return "barnes" }

// Description implements Workload.
func (Barnes) Description() string {
	return "SPLASH-2 Barnes-Hut stand-in (octree build, skewed force descents, private update)"
}

type barnesParams struct {
	Bodies int
	Steps  int
}

func (Barnes) params(sz Size) barnesParams {
	switch sz {
	case SizeTest:
		return barnesParams{Bodies: 2048, Steps: 4}
	case SizeSmall:
		return barnesParams{Bodies: 8192, Steps: 6}
	default:
		return barnesParams{Bodies: 16384, Steps: 8} // Table II scale
	}
}

// InputSet implements Workload.
func (w Barnes) InputSet(sz Size) string {
	p := w.params(sz)
	return fmt.Sprintf("%d bodies, %d timesteps", p.Bodies, p.Steps)
}

const pcBarnes = 0x7200_0000

// barnesSkew is the force-phase load imbalance: percent extra descents
// on thread 0, linear falloff (irregular domain decomposition).
const barnesSkew = 40

// program builds the IR form for one (n, size) geometry.
func (w Barnes) program(n int, sz Size) *Program {
	p := w.params(sz)
	nodes := p.Bodies // one octree cell per body, hash-distributed
	prog := &Program{BarrierPC: pcBarnes + 0xF00}
	for ts := 0; ts < p.Steps; ts++ {
		salt := uint64(ts) << 32
		prog.Phases = append(prog.Phases,
			Phase{Blocks: []Block{&TreeChase{
				PC: pcBarnes + 0x000, Walks: p.Bodies / 4, Depth: 4, Fanout: 8,
				Nodes: nodes, IntOps: 2, Store: true, Chunk: 128,
				Salt: salt, NodeBytes: 64, Base: 1 << 26,
			}}},
			Phase{Blocks: []Block{&TreeChase{
				PC: pcBarnes + 0x100, Walks: p.Bodies, Depth: 9, Fanout: 8,
				Nodes: nodes, IntOps: 1, FPOps: 2, Skew: barnesSkew, Chunk: 64,
				Salt: salt | 1, NodeBytes: 64, Base: 1 << 26,
			}}},
			Phase{Blocks: []Block{&Stride{
				PC: pcBarnes + 0x200, Count: p.Bodies / n, FPOps: 2, Store: true,
				Region: Region{Home: OwnerThread, Base: 1 << 24, ElemBytes: 8},
			}}},
		)
		if ts%2 == 1 {
			prog.Phases = append(prog.Phases, Phase{Blocks: []Block{&Reduction{
				PC: pcBarnes + 0x300, Elems: p.Bodies / 16, FPOps: 1,
				Base: 1 << 28, ElemBytes: 64,
				Accum: Region{Home: 0, Base: 1 << 30},
			}}})
		}
	}
	return prog
}

// Threads implements Workload.
func (w Barnes) Threads(n int, sz Size, seed uint64) []isa.Thread {
	return w.program(n, sz).Threads(n, seed)
}
