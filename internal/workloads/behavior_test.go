package workloads

import (
	"testing"

	"dsmphase/internal/core"
	"dsmphase/internal/isa"
	"dsmphase/internal/machine"
	"dsmphase/internal/stats"
)

// Behavioural tests: each workload must actually produce the sharing and
// imbalance structure its doc comment promises, because those structures
// are what the phase detectors are evaluated on.

// streamStats drains a thread and aggregates per-home access counts and
// instruction totals.
type streamStats struct {
	total    int
	byHome   map[int]uint64
	branches int
	syncs    int
}

func statsOf(t *testing.T, th isa.Thread) streamStats {
	t.Helper()
	st := streamStats{byHome: map[int]uint64{}}
	e := isa.NewEmitter(8192)
	for {
		e.Reset()
		if !th.NextBatch(e) {
			return st
		}
		for _, in := range e.Take() {
			st.total++
			switch {
			case in.Op == isa.OpBranch:
				st.branches++
			case in.Op == isa.OpSync:
				st.syncs++
			case in.Op.IsMem():
				st.byHome[int(in.Addr>>machine.HomeShift)]++
			}
		}
		if st.total > 100_000_000 {
			t.Fatal("runaway thread")
		}
	}
}

func TestOceanReductionHitsHomeZero(t *testing.T) {
	w, _ := ByName("ocean")
	// Every thread — including ones owning no low rows — must touch the
	// global accumulator at home 0 during reductions.
	ths := w.Threads(4, SizeTest, 1)
	st := statsOf(t, ths[3]) // owns the top strip
	if st.byHome[0] == 0 {
		t.Error("thread 3 never touched home 0; the reduction accumulator is missing")
	}
	// But its bulk traffic must be to its own home (strip locality).
	if st.byHome[3] < st.byHome[0] {
		t.Errorf("strip-local traffic (%d) should dominate accumulator traffic (%d)",
			st.byHome[3], st.byHome[0])
	}
}

func TestOceanHaloTraffic(t *testing.T) {
	w, _ := ByName("ocean")
	ths := w.Threads(4, SizeTest, 1)
	st := statsOf(t, ths[1]) // interior strip: neighbours 0 and 2
	if st.byHome[0] == 0 || st.byHome[2] == 0 {
		t.Errorf("interior strip must exchange halos with both neighbours: %v", st.byHome)
	}
	// Halo traffic is a small fraction of strip-local traffic.
	if st.byHome[0] > st.byHome[1]/2 {
		t.Errorf("halo traffic (%d) implausibly large vs local (%d)", st.byHome[0], st.byHome[1])
	}
}

func TestRadixPermuteSpreadShrinks(t *testing.T) {
	run := &radixRun{n: 8, p: radixParams{Keys: 1 << 14, Passes: 3, Radix: 256}, seed: 1}
	distinct := func(pass int) int {
		seen := map[int]bool{}
		for k := 0; k < 2048; k++ {
			seen[run.destOwner(2, k, pass)] = true
		}
		return len(seen)
	}
	d0, d2 := distinct(0), distinct(2)
	if d0 <= d2 {
		t.Errorf("destination spread must shrink across passes: pass0=%d pass2=%d", d0, d2)
	}
	if d0 < 4 {
		t.Errorf("first pass should scatter widely, got %d destinations", d0)
	}
}

func TestRadixAllToAllRemote(t *testing.T) {
	w, _ := ByName("radix")
	ths := w.Threads(4, SizeTest, 1)
	st := statsOf(t, ths[0])
	touched := 0
	for h, n := range st.byHome {
		if n > 0 && h != 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Errorf("radix permute/scan must reach most other homes, reached %d", touched)
	}
}

func TestEquakeEpicenterImbalance(t *testing.T) {
	w, _ := ByName("equake")
	ths := w.Threads(4, SizeTest, 1)
	// Proc 0 owns the epicenter (first 1/32nd of the mesh); its stream
	// contains the eqSource kernel instructions that other procs lack.
	st0 := statsOf(t, ths[0])
	st3 := statsOf(t, ths[3])
	if st0.total <= st3.total {
		t.Errorf("epicenter owner (%d instrs) must do more work than proc 3 (%d)",
			st0.total, st3.total)
	}
	if st0.syncs != st3.syncs {
		t.Errorf("barrier counts must still match: %d vs %d", st0.syncs, st3.syncs)
	}
}

func TestFMMWindowAlternation(t *testing.T) {
	// Odd timesteps open a 5×5 interaction window versus 3×3 on even
	// ones, so interact items must emit more instructions on odd steps.
	p := FMM{}.params(SizeTest)
	run := &fmmRun{n: 2, p: p, cells: p.GridSide * p.GridSide, ppc: p.Particles / (p.GridSide * p.GridSide), seed: 1}
	count := func(ts int) int {
		e := isa.NewEmitter(8192)
		c := p.GridSide + 1 // an interior-ish cell
		run.emitInteract(e, c, ts)
		return e.Len()
	}
	even, odd := count(0), count(1)
	if odd <= even {
		t.Errorf("5×5 window (odd ts: %d instrs) must exceed 3×3 (even ts: %d)", odd, even)
	}
}

func TestArtWinnerSkew(t *testing.T) {
	// Winners are min-of-two-draws: low neuron indices must win more
	// often than high ones, producing hot homes.
	run := &artRun{n: 4, p: Art{}.params(SizeTest), seed: 1}
	m := run.p.Neurons
	counts := make([]int, m)
	for s := 0; s < 4000; s++ {
		counts[run.winner(s%4, s/1000, s)]++
	}
	lowHalf, highHalf := 0, 0
	for i, c := range counts {
		if i < m/2 {
			lowHalf += c
		} else {
			highHalf += c
		}
	}
	if lowHalf <= highHalf {
		t.Errorf("winner distribution not skewed low: %d vs %d", lowHalf, highHalf)
	}
}

func TestArtSamplesScaleDown(t *testing.T) {
	// Per-thread work must shrink as the system grows (data-parallel
	// sample division) — the property whose absence broke scaling.
	w, _ := ByName("art")
	at := func(n int) int {
		return statsOf(t, w.Threads(n, SizeTest, 1)[0]).total
	}
	if t2, t8 := at(2), at(8); t8 >= t2 {
		t.Errorf("per-thread work must shrink with n: %d @2P vs %d @8P", t2, t8)
	}
}

func TestLUWorkShrinksAcrossSteps(t *testing.T) {
	// The trailing submatrix shrinks: the first third of a thread's items
	// must carry more instructions than the last third.
	w, _ := ByName("lu")
	th := w.Threads(2, SizeTest, 1)[0].(*scriptThread)
	third := len(th.items) / 3
	count := func(items []item) int {
		e := isa.NewEmitter(8192)
		n := 0
		for _, it := range items {
			if it.kind == kindBarrier {
				continue
			}
			e.Reset()
			th.emit(it, e)
			n += e.Len()
		}
		return n
	}
	early := count(th.items[:third])
	late := count(th.items[len(th.items)-third:])
	if early <= late {
		t.Errorf("LU work must shrink over time: early=%d late=%d", early, late)
	}
}

func TestBarnesForceSkewImbalance(t *testing.T) {
	// The force phase gives thread 0 barnesSkew% extra descents with a
	// linear falloff — thread 0 must do measurably more work than the
	// last thread while barrier counts stay identical.
	w, _ := ByName("barnes")
	ths := w.Threads(4, SizeTest, 1)
	st0 := statsOf(t, ths[0])
	st3 := statsOf(t, ths[3])
	if st0.total <= st3.total {
		t.Errorf("skewed thread 0 (%d instrs) must out-work thread 3 (%d)", st0.total, st3.total)
	}
	if st0.syncs != st3.syncs {
		t.Errorf("barrier counts must still match: %d vs %d", st0.syncs, st3.syncs)
	}
}

func TestBarnesTreeTrafficReachesAllHomes(t *testing.T) {
	// Tree nodes are hash-distributed (node k lives on home k mod n), so
	// a thread's descents must touch every home — the irregular sharing
	// signature that distinguishes barnes from the strip-partitioned
	// codes.
	w, _ := ByName("barnes")
	ths := w.Threads(4, SizeTest, 1)
	st := statsOf(t, ths[2])
	for h := 0; h < 4; h++ {
		if st.byHome[h] == 0 {
			t.Errorf("thread 2 never touched home %d: %v", h, st.byHome)
		}
	}
}

func TestWaterBroadcastReachesAllPeers(t *testing.T) {
	// The inter-molecular phase reads every peer's position block, but
	// the private intraf/update sweeps must still dominate the thread's
	// own-home traffic (long local phases, all-to-all read bursts).
	w, _ := ByName("water")
	ths := w.Threads(4, SizeTest, 1)
	st := statsOf(t, ths[1])
	for h := 0; h < 4; h++ {
		if st.byHome[h] == 0 {
			t.Errorf("thread 1 never touched home %d: %v", h, st.byHome)
		}
	}
	if st.byHome[1] <= st.byHome[2] {
		t.Errorf("own-home traffic (%d) must dominate a peer's (%d)", st.byHome[1], st.byHome[2])
	}
}

// phaseCoV runs a workload, classifies its recorded intervals with the
// BBV detector and returns the phase-conditioned identifier CoV next to
// the unconditioned CoV of the same CPI series (proc 0).
func phaseCoV(t *testing.T, name string, interval uint64) (withPhases, without float64, phases int) {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig(2)
	cfg.IntervalInstructions = interval
	m := machine.New(cfg, w.Threads(2, SizeTest, 1))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	sigs := m.RecordsByProc()[0]
	if len(sigs) < 4 {
		t.Fatalf("%s: only %d intervals recorded", name, len(sigs))
	}
	ids := core.ClassifyRecorded(core.DetectorBBV, 16, 0.05, 0, sigs)
	cpis := make([]float64, len(sigs))
	for i, s := range sigs {
		cpis[i] = s.CPI()
	}
	cov, n := stats.IdentifierCoV(ids, cpis)
	return cov, stats.CoV(cpis), n
}

func TestBarnesPhaseContrast(t *testing.T) {
	// Barnes alternates build/force/update (plus periodic reductions):
	// the BBV detector must find more than one phase, and conditioning
	// CPI on the phase IDs must shrink the CoV — the Table II property
	// the workload exists to exhibit.
	cov, raw, phases := phaseCoV(t, "barnes", 2_000)
	if phases < 2 {
		t.Fatalf("BBV found only %d phase(s)", phases)
	}
	if cov >= raw {
		t.Errorf("phase-conditioned CoV %v must beat unconditioned %v", cov, raw)
	}
}

func TestWaterPhaseContrast(t *testing.T) {
	cov, raw, phases := phaseCoV(t, "water", 2_000)
	if phases < 2 {
		t.Fatalf("BBV found only %d phase(s)", phases)
	}
	if cov >= raw {
		t.Errorf("phase-conditioned CoV %v must beat unconditioned %v", cov, raw)
	}
}

func TestEquakeNeighbourLocality(t *testing.T) {
	run := &equakeRun{n: 8, p: Equake{}.params(SizeTest), seed: 1}
	// Most neighbours of an interior node stay within nearby indices.
	local, far := 0, 0
	for v := 1000; v < 1100; v++ {
		for s := 0; s < run.p.Degree; s++ {
			u := run.neighbour(v, s)
			d := u - v
			if d < 0 {
				d = -d
			}
			if d <= 20 {
				local++
			} else {
				far++
			}
		}
	}
	if local <= far*5 {
		t.Errorf("mesh must be mostly local: local=%d far=%d", local, far)
	}
	if far == 0 {
		t.Error("unstructured fill-in must produce some long-range edges")
	}
}
