package workloads

// The declarative workload DSL: a JSON text format (conventionally
// .wdl files) that describes a Program directly — phases of primitive
// blocks with placement, sharing degree, skew and per-instance drift —
// so new scenarios need a data file instead of a Go generator. The
// same front end ingests externally captured address traces (a "trace"
// stanza instead of "phases"); both compile onto the IR in ir.go and
// register through RegisterDynamic, which keys result caches and shard
// artifacts on the definition hash.
//
// Spec shape (all byte quantities accept decimal numbers or "0x..."
// strings):
//
//	{
//	  "name": "oscillate",
//	  "description": "what the scenario models",
//	  "pc_base": "0x7e000000",            // optional; blocks get pc_base + i*0x100
//	  "repeat": 8,                        // optional; cycles the whole phase sequence (A B A B …)
//	  "scale": {"test": 1, "small": 2, "full": 4},  // optional repeat multiplier per size
//	  "phases": [
//	    {"repeat": 16, "blocks": [
//	      {"kind": "stride", "count": 512, "wrap": 1024, "offset_step": 1,
//	       "int_ops": 2, "store": true,
//	       "region": {"home": -1, "base": "0x1000000", "elem_bytes": 8}},
//	      ...
//	    ]}
//	  ]
//	}
//
// or, for an ingested trace (records inline, or "file" relative to the
// spec file when loaded from disk):
//
//	{"name": "captured", "description": "...",
//	 "trace": {"records": [{"proc":0,"op":"load","pc":4096,"addr":16},...]}}
//
// Block kinds and their fields mirror the IR primitives: stride, share,
// random, tree, broadcast, reduction, stencil, restrict. Counts are
// per-thread except tree's walks (total, divided across threads);
// "per_proc": true divides a block's main count by the processor count
// at build time. Within a repeated phase, instance r applies the
// drift fields: offset += r*offset_step, count += r*count_step,
// elems += r*elems_step, salt += r*salt_step.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"dsmphase/internal/isa"
	"dsmphase/internal/rng"
	"dsmphase/internal/trace"
)

// specPCBase is the default static-PC window for DSL workloads, above
// every built-in generator's window.
const specPCBase = 0x7E00_0000

// byteQty is a byte quantity or address that unmarshals from a JSON
// number or a "0x..." string and canonicalizes to a number.
type byteQty uint64

func (q *byteQty) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			return fmt.Errorf("bad quantity %q: %w", s, err)
		}
		*q = byteQty(v)
		return nil
	}
	var v uint64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*q = byteQty(v)
	return nil
}

// rawRegion is the wire form of a Region.
type rawRegion struct {
	// Home is the owning node; -1 (the default in private contexts)
	// means the touching thread's own node.
	Home      *int    `json:"home,omitempty"`
	Base      byteQty `json:"base,omitempty"`
	ElemBytes byteQty `json:"elem_bytes,omitempty"`
	SlotBytes byteQty `json:"slot_bytes,omitempty"`
	SlotWrap  byteQty `json:"slot_wrap,omitempty"`
}

// region resolves the wire form against a default.
func (rr *rawRegion) region(def Region) Region {
	if rr == nil {
		return def
	}
	r := Region{Home: def.Home, ElemBytes: 8}
	if rr.Home != nil {
		r.Home = *rr.Home
	}
	if rr.Base != 0 {
		r.Base = uint64(rr.Base)
	}
	if rr.ElemBytes != 0 {
		r.ElemBytes = uint64(rr.ElemBytes)
	}
	r.SlotBytes = uint64(rr.SlotBytes)
	r.SlotWrap = uint64(rr.SlotWrap)
	return r
}

// rawBlock is the wire form of one IR block, a tagged union over the
// primitive kinds.
type rawBlock struct {
	Kind string  `json:"kind"`
	PC   byteQty `json:"pc,omitempty"` // explicit static PC; 0 = auto

	// Shared knobs.
	Count   int  `json:"count,omitempty"`
	IntOps  int  `json:"int_ops,omitempty"`
	FPOps   int  `json:"fp_ops,omitempty"`
	Store   bool `json:"store,omitempty"`
	Skew    int  `json:"skew,omitempty"`
	PerProc bool `json:"per_proc,omitempty"`

	// Drift fields, applied per repeat instance.
	CountStep  int     `json:"count_step,omitempty"`
	Offset     int     `json:"offset,omitempty"`
	OffsetStep int     `json:"offset_step,omitempty"`
	Salt       byteQty `json:"salt,omitempty"`
	SaltStep   byteQty `json:"salt_step,omitempty"`
	ElemsStep  int     `json:"elems_step,omitempty"`

	// stride
	Wrap int `json:"wrap,omitempty"`

	// share
	Degree int `json:"degree,omitempty"`

	// random
	Span       int  `json:"span,omitempty"`
	StoreEvery int  `json:"store_every,omitempty"`
	Spread     bool `json:"spread,omitempty"`

	// tree
	Walks     int     `json:"walks,omitempty"`
	Depth     int     `json:"depth,omitempty"`
	Fanout    int     `json:"fanout,omitempty"`
	Nodes     int     `json:"nodes,omitempty"`
	Chunk     int     `json:"chunk,omitempty"`
	NodeBytes byteQty `json:"node_bytes,omitempty"`
	Base      byteQty `json:"base,omitempty"`

	// broadcast
	Elems       int  `json:"elems,omitempty"`
	IncludeSelf bool `json:"include_self,omitempty"`

	// stencil / restrict / reduction
	Grid      int     `json:"grid,omitempty"`
	Colour    int     `json:"colour,omitempty"`
	Level     int     `json:"level,omitempty"`
	ColStep   int     `json:"col_step,omitempty"`
	RowChunk  int     `json:"row_chunk,omitempty"`
	ElemBytes byteQty `json:"elem_bytes,omitempty"`

	Region *rawRegion `json:"region,omitempty"`
	Accum  *rawRegion `json:"accum,omitempty"`

	pc uint32 // resolved static PC
}

// rawPhase is the wire form of one phase definition.
type rawPhase struct {
	Repeat    int        `json:"repeat,omitempty"` // 0 = 1
	NoBarrier bool       `json:"no_barrier,omitempty"`
	Blocks    []rawBlock `json:"blocks"`
}

// rawTrace is the trace stanza: inline records, or a JSONL file path
// resolved relative to the spec file.
type rawTrace struct {
	Records []trace.Access `json:"records,omitempty"`
	File    string         `json:"file,omitempty"`
}

// rawSpec is the top-level wire form.
type rawSpec struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	PCBase      byteQty `json:"pc_base,omitempty"`
	// Repeat cycles the whole phase sequence (0 = 1): with phases A, B
	// it yields A B A B …, where per-phase repeat would yield AA… BB….
	// The scale multiplier applies here when present.
	Repeat int            `json:"repeat,omitempty"`
	Scale  map[string]int `json:"scale,omitempty"`
	Phases []rawPhase     `json:"phases,omitempty"`
	Trace  *rawTrace      `json:"trace,omitempty"`
}

// SpecWorkload is a Workload defined at runtime by a DSL spec or an
// ingested trace. It carries its canonical source (for shipping to
// workers) and definition hash (for fingerprints and caches).
type SpecWorkload struct {
	name     string
	desc     string
	inputSet func(sz Size) string
	src      []byte
	hash     uint64
	build    func(n int, sz Size) *Program
}

// Name implements Workload.
func (s *SpecWorkload) Name() string { return s.name }

// Description implements Workload.
func (s *SpecWorkload) Description() string { return s.desc }

// InputSet implements Workload.
func (s *SpecWorkload) InputSet(sz Size) string { return s.inputSet(sz) }

// Threads implements Workload.
func (s *SpecWorkload) Threads(n int, sz Size, seed uint64) []isa.Thread {
	return s.build(n, sz).Threads(n, seed)
}

// Hash is the definition hash: a deterministic digest of the canonical
// source. Equal sources hash equal on every machine.
func (s *SpecWorkload) Hash() uint64 { return s.hash }

// Source is the canonical spec text (trace files inlined) — the bytes
// a coordinator ships to its workers.
func (s *SpecWorkload) Source() []byte { return s.src }

// Register adds the workload to the registry under its definition
// hash. Idempotent for identical definitions.
func (s *SpecWorkload) Register() error { return RegisterDynamic(s, s.hash) }

// ParseSpec parses and validates a DSL spec from memory. Trace stanzas
// must carry inline records; file references need LoadSpecFile (only
// it knows what "relative" means).
func ParseSpec(src []byte) (*SpecWorkload, error) {
	return parseSpec(src, "")
}

// LoadSpecFile reads and parses a spec file; trace file references are
// resolved relative to the spec's directory and inlined into the
// canonical source, so the result is self-contained.
func LoadSpecFile(path string) (*SpecWorkload, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workloads: %w", err)
	}
	sw, err := parseSpec(src, filepath.Dir(path))
	if err != nil {
		return nil, fmt.Errorf("workloads: spec %s: %w", path, err)
	}
	return sw, nil
}

func parseSpec(src []byte, dir string) (*SpecWorkload, error) {
	var spec rawSpec
	if err := json.Unmarshal(src, &spec); err != nil {
		return nil, fmt.Errorf("workloads: parsing spec: %w", err)
	}
	if err := validName(spec.Name); err != nil {
		return nil, err
	}
	if spec.Repeat < 0 {
		return nil, fmt.Errorf("workloads: spec %q: negative repeat", spec.Name)
	}
	if spec.Description == "" {
		return nil, fmt.Errorf("workloads: spec %q: description is required", spec.Name)
	}
	switch {
	case spec.Trace != nil && len(spec.Phases) > 0:
		return nil, fmt.Errorf("workloads: spec %q: phases and trace are mutually exclusive", spec.Name)
	case spec.Trace != nil:
		if spec.Trace.File != "" {
			if len(spec.Trace.Records) > 0 {
				return nil, fmt.Errorf("workloads: spec %q: trace records and file are mutually exclusive", spec.Name)
			}
			if dir == "" {
				return nil, fmt.Errorf("workloads: spec %q: trace file references need LoadSpecFile", spec.Name)
			}
			f, err := os.Open(filepath.Join(dir, spec.Trace.File))
			if err != nil {
				return nil, fmt.Errorf("workloads: spec %q: %w", spec.Name, err)
			}
			recs, err := trace.ReadAccessJSONL(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("workloads: spec %q: %w", spec.Name, err)
			}
			spec.Trace = &rawTrace{Records: recs}
		}
		return traceWorkload(spec.Name, spec.Description, spec.Trace.Records)
	case len(spec.Phases) == 0:
		return nil, fmt.Errorf("workloads: spec %q: needs phases or a trace", spec.Name)
	}
	return phasedWorkload(&spec, src)
}

// validName enforces registry-safe workload names.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("workloads: spec name is required")
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z':
		case i > 0 && (c == '-' || c == '_' || (c >= '0' && c <= '9')):
		default:
			return fmt.Errorf("workloads: spec name %q: want lowercase [a-z][a-z0-9_-]*", name)
		}
	}
	return nil
}

// canonHash canonicalizes a spec source (re-marshal of the generic
// parse, sorted keys, no whitespace, JSON-zero scalar fields stripped)
// and hashes it. Formatting changes and writing a default explicitly
// ("repeat": 0, "drift": false, "scale_name": "") don't move the hash;
// any value change does. Empty objects and arrays are NOT stripped —
// an explicit empty "region" selects region defaults, which differs
// from no region at all — and neither is "home", whose wire type is a
// pointer: absent means owner-thread homing while an explicit 0 homes
// at node 0.
func canonHash(src []byte) ([]byte, uint64, error) {
	var generic any
	if err := json.Unmarshal(src, &generic); err != nil {
		return nil, 0, fmt.Errorf("workloads: canonicalizing spec: %w", err)
	}
	canon, err := json.Marshal(stripZeroDefaults(generic))
	if err != nil {
		return nil, 0, fmt.Errorf("workloads: canonicalizing spec: %w", err)
	}
	h := rng.Hash64(uint64(len(canon)))
	for _, b := range canon {
		h = rng.Hash64(h ^ uint64(b))
	}
	return canon, h, nil
}

// stripZeroDefaults removes object fields whose value is a JSON zero
// scalar (0, false, "", null) from a generic JSON tree, recursively.
// Pointer-typed fields that distinguish absent from zero ("home") are
// kept, as are empty objects/arrays (see canonHash).
func stripZeroDefaults(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			e = stripZeroDefaults(e)
			// "home" is pointer-typed: strip only null (absent), never
			// an explicit 0, which homes at node 0 rather than the
			// owner thread.
			if isZeroScalar(e) && (k != "home" || e == nil) {
				continue
			}
			out[k] = e
		}
		return out
	case []any:
		for i, e := range t {
			t[i] = stripZeroDefaults(e)
		}
		return t
	default:
		return v
	}
}

func isZeroScalar(v any) bool {
	switch t := v.(type) {
	case nil:
		return true
	case bool:
		return !t
	case float64:
		return t == 0
	case string:
		return t == ""
	}
	return false
}

// scaleFor resolves the per-size phase-repeat multiplier.
func scaleFor(scale map[string]int, sz Size) int {
	if s, ok := scale[sz.String()]; ok && s > 0 {
		return s
	}
	return 1
}

// phasedWorkload compiles a phases-style spec.
func phasedWorkload(spec *rawSpec, src []byte) (*SpecWorkload, error) {
	pcBase := uint32(specPCBase)
	if spec.PCBase != 0 {
		pcBase = uint32(spec.PCBase)
	}
	// Assign static PCs per block definition: repeat instances of a
	// definition share its PC, exactly as iterations share code.
	seq := 0
	blockDefs := 0
	for pi := range spec.Phases {
		ph := &spec.Phases[pi]
		if len(ph.Blocks) == 0 {
			return nil, fmt.Errorf("workloads: spec %q: phase %d has no blocks", spec.Name, pi)
		}
		if ph.Repeat < 0 {
			return nil, fmt.Errorf("workloads: spec %q: phase %d: negative repeat", spec.Name, pi)
		}
		for bi := range ph.Blocks {
			rb := &ph.Blocks[bi]
			rb.pc = pcBase + uint32(seq)*0x100
			if rb.PC != 0 {
				rb.pc = uint32(rb.PC)
			}
			seq++
			if err := rb.validate(); err != nil {
				return nil, fmt.Errorf("workloads: spec %q: phase %d block %d: %w", spec.Name, pi, bi, err)
			}
			blockDefs++
		}
	}
	canon, hash, err := canonHash(src)
	if err != nil {
		return nil, err
	}
	specCopy := *spec
	sw := &SpecWorkload{
		name: spec.Name,
		desc: spec.Description,
		inputSet: func(sz Size) string {
			reps := 0
			for _, ph := range specCopy.Phases {
				r := ph.Repeat
				if r < 1 {
					r = 1
				}
				reps += r
			}
			outer := specCopy.Repeat
			if outer < 1 {
				outer = 1
			}
			reps *= outer * scaleFor(specCopy.Scale, sz)
			return fmt.Sprintf("spec: %d block defs, %d phase executions", blockDefs, reps)
		},
		src:  canon,
		hash: hash,
		build: func(n int, sz Size) *Program {
			prog := &Program{BarrierPC: pcBase + 0xFF00}
			outer := specCopy.Repeat
			if outer < 1 {
				outer = 1
			}
			outer *= scaleFor(specCopy.Scale, sz)
			for o := 0; o < outer; o++ {
				for pi := range specCopy.Phases {
					ph := &specCopy.Phases[pi]
					rep := ph.Repeat
					if rep < 1 {
						rep = 1
					}
					for r := 0; r < rep; r++ {
						// Drift continues across outer cycles: the block's
						// instance index counts its executions overall.
						inst := o*rep + r
						var blocks []Block
						for bi := range ph.Blocks {
							if b := ph.Blocks[bi].instantiate(inst, n); b != nil {
								blocks = append(blocks, b)
							}
						}
						prog.Phases = append(prog.Phases, Phase{Blocks: blocks, NoBarrier: ph.NoBarrier})
					}
				}
			}
			return prog
		},
	}
	return sw, nil
}

// validate checks a block definition's static constraints.
func (rb *rawBlock) validate() error {
	switch rb.Kind {
	case "stride":
		if rb.Count <= 0 && rb.CountStep <= 0 {
			return fmt.Errorf("stride needs a positive count")
		}
	case "share":
		if rb.Count <= 0 {
			return fmt.Errorf("share needs a positive count")
		}
		if rb.Degree < 2 {
			return fmt.Errorf("share needs degree >= 2")
		}
	case "random":
		if rb.Count <= 0 && rb.CountStep <= 0 {
			return fmt.Errorf("random needs a positive count")
		}
		if rb.Span <= 0 {
			return fmt.Errorf("random needs a positive span")
		}
	case "tree":
		if rb.Walks <= 0 || rb.Depth <= 0 || rb.Nodes <= 0 {
			return fmt.Errorf("tree needs positive walks, depth and nodes")
		}
	case "broadcast":
		if rb.Elems <= 0 && rb.ElemsStep <= 0 {
			return fmt.Errorf("broadcast needs positive elems")
		}
	case "reduction":
		if rb.Elems <= 0 {
			return fmt.Errorf("reduction needs positive elems")
		}
	case "stencil":
		if rb.Grid < 4 {
			return fmt.Errorf("stencil needs grid >= 4")
		}
	case "restrict":
		if rb.Grid < 4 {
			return fmt.Errorf("restrict needs grid >= 4")
		}
	default:
		return fmt.Errorf("unknown block kind %q (want stride, share, random, tree, broadcast, reduction, stencil or restrict)", rb.Kind)
	}
	return nil
}

// perProc scales a count down with the processor count when requested.
func (rb *rawBlock) perProcCount(v, n int) int {
	if !rb.PerProc || n < 2 {
		return v
	}
	if v = v / n; v < 1 {
		return 1
	}
	return v
}

// drift applies the per-instance drift to a base count, clamping at 0.
func driftCount(base, step, r int) int {
	v := base + step*r
	if v < 0 {
		return 0
	}
	return v
}

// instantiate builds the IR block for repeat instance r at processor
// count n; nil means the instance drifted to zero work.
func (rb *rawBlock) instantiate(r, n int) Block {
	salt := uint64(rb.Salt) + uint64(rb.SaltStep)*uint64(r)
	privRegion := Region{Home: OwnerThread, Base: 1 << 24, ElemBytes: 8}
	switch rb.Kind {
	case "stride":
		count := rb.perProcCount(driftCount(rb.Count, rb.CountStep, r), n)
		if count == 0 {
			return nil
		}
		return &Stride{
			PC: rb.pc, Count: count, Wrap: rb.Wrap, Offset: rb.Offset + rb.OffsetStep*r,
			IntOps: rb.IntOps, FPOps: rb.FPOps, Store: rb.Store, Skew: rb.Skew,
			Region: rb.Region.region(privRegion),
		}
	case "share":
		return &Share{
			PC: rb.pc, Count: rb.perProcCount(rb.Count, n), Degree: rb.Degree, IntOps: rb.IntOps,
			Slots: rb.Region.region(Region{Home: 0, SlotBytes: 8}),
		}
	case "random":
		count := rb.perProcCount(driftCount(rb.Count, rb.CountStep, r), n)
		if count == 0 {
			return nil
		}
		return &Random{
			PC: rb.pc, Count: count, Span: rb.Span, StoreEvery: rb.StoreEvery,
			IntOps: rb.IntOps, FPOps: rb.FPOps, Spread: rb.Spread, Skew: rb.Skew,
			Salt: salt, Region: rb.Region.region(privRegion),
		}
	case "tree":
		nodeBytes := uint64(rb.NodeBytes)
		if nodeBytes == 0 {
			nodeBytes = 64
		}
		base := uint64(rb.Base)
		if base == 0 {
			base = 1 << 26
		}
		return &TreeChase{
			PC: rb.pc, Walks: rb.Walks, Depth: rb.Depth, Fanout: rb.Fanout, Nodes: rb.Nodes,
			IntOps: rb.IntOps, FPOps: rb.FPOps, Store: rb.Store, Skew: rb.Skew,
			Chunk: rb.Chunk, Salt: salt, NodeBytes: nodeBytes, Base: base,
		}
	case "broadcast":
		elems := rb.perProcCount(driftCount(rb.Elems, rb.ElemsStep, r), n)
		if elems == 0 {
			return nil
		}
		return &Broadcast{
			PC: rb.pc, Elems: elems, IntOps: rb.IntOps, FPOps: rb.FPOps,
			IncludeSelf: rb.IncludeSelf,
			Region:      rb.Region.region(Region{Home: OwnerThread, Base: 1 << 26, ElemBytes: 8}),
		}
	case "reduction":
		base := uint64(rb.Base)
		if base == 0 {
			base = 1 << 28
		}
		elemBytes := uint64(rb.ElemBytes)
		if elemBytes == 0 {
			elemBytes = 8
		}
		return &Reduction{
			PC: rb.pc, Elems: rb.Elems, FPOps: rb.FPOps, Base: base, ElemBytes: elemBytes,
			Accum: rb.Accum.region(Region{Home: 0, Base: 1 << 30}),
		}
	case "stencil":
		return &Stencil{
			PC: rb.pc, Grid: rb.Grid, Colour: rb.Colour, Level: rb.Level,
			ColStep: defInt(rb.ColStep, 4), FPOps: rb.FPOps, RowChunk: defInt(rb.RowChunk, 8),
			LevelShift: 27, ElemBytes: defUint(uint64(rb.ElemBytes), 8),
		}
	case "restrict":
		return &Restrict{
			PC: rb.pc, Grid: rb.Grid, Level: rb.Level, ColStep: defInt(rb.ColStep, 4),
			FPOps: rb.FPOps, LevelShift: 27, ElemBytes: defUint(uint64(rb.ElemBytes), 8),
		}
	}
	return nil
}

func defInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func defUint(v, def uint64) uint64 {
	if v == 0 {
		return def
	}
	return v
}
