package workloads

import (
	"fmt"
	"testing"

	"dsmphase/internal/isa"
	"dsmphase/internal/machine"
	"dsmphase/internal/trace"
)

const testSpec = `{
  "name": "dsl-mix",
  "description": "stride/share mix for tests",
  "scale": {"full": 2},
  "phases": [
    {"repeat": 3, "blocks": [
      {"kind": "stride", "count": 64, "wrap": 128, "offset_step": 1, "int_ops": 2, "store": true},
      {"kind": "random", "count": 16, "span": 256, "store_every": 4, "salt_step": 1, "spread": true}
    ]},
    {"blocks": [
      {"kind": "share", "count": 32, "degree": 2, "int_ops": 1}
    ]}
  ]
}`

func TestParseSpecPhased(t *testing.T) {
	sw, err := ParseSpec([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Name() != "dsl-mix" {
		t.Fatalf("name = %q", sw.Name())
	}
	if sw.Hash() == 0 {
		t.Fatal("zero definition hash")
	}

	// Determinism and canonicalization: re-parsing yields the same
	// hash; reformatting (whitespace) doesn't move it; a value change
	// does.
	again, err := ParseSpec([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if again.Hash() != sw.Hash() {
		t.Fatal("hash not deterministic across parses")
	}
	reformatted, err := ParseSpec([]byte(testSpec + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if reformatted.Hash() != sw.Hash() {
		t.Fatal("whitespace moved the definition hash")
	}
	changed, err := ParseSpec([]byte(testSpec[:len(testSpec)-2] + `, "pc_base": "0x7f000000"}` + "\n"))
	if err == nil && changed.Hash() == sw.Hash() {
		t.Fatal("value change did not move the definition hash")
	}

	// Streams are well-formed: equal barrier counts across threads, a
	// deterministic stream per (n, size, seed), and full-size scaling
	// doubles the phase count (scale.full = 2).
	for _, n := range []int{1, 2, 4} {
		ths := sw.Threads(n, SizeTest, 7)
		if len(ths) != n {
			t.Fatalf("n=%d: got %d threads", n, len(ths))
		}
		var barriers []int
		for _, th := range ths {
			b := 0
			for _, batch := range drainBatches(t, th) {
				for _, in := range batch {
					if in.Op == isa.OpSync {
						b++
					}
				}
			}
			barriers = append(barriers, b)
		}
		for tid := 1; tid < n; tid++ {
			if barriers[tid] != barriers[0] {
				t.Fatalf("n=%d: thread %d has %d barriers, thread 0 has %d", n, tid, barriers[tid], barriers[0])
			}
		}
		// 3 instances of phase 0 + 1 of phase 1 at test scale.
		if barriers[0] != 4 {
			t.Fatalf("n=%d: got %d barriers, want 4", n, barriers[0])
		}
	}
	a := drainBatches(t, sw.Threads(2, SizeTest, 7)[1])
	b := drainBatches(t, sw.Threads(2, SizeTest, 7)[1])
	assertSameBatches(t, "dsl-mix", 2, 1, a, b)
	full := drainBatches(t, sw.Threads(2, SizeFull, 7)[0])
	syncs := 0
	for _, batch := range full {
		for _, in := range batch {
			if in.Op == isa.OpSync {
				syncs++
			}
		}
	}
	if syncs != 8 {
		t.Fatalf("full size: got %d barriers, want 8 (scale ×2)", syncs)
	}
}

func TestParseSpecDrift(t *testing.T) {
	src := `{
	  "name": "drifty", "description": "count drift",
	  "phases": [{"repeat": 3, "blocks": [
	    {"kind": "stride", "count": 32, "count_step": 16, "int_ops": 1}
	  ]}]
	}`
	sw, err := ParseSpec([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	// Instances run 32, 48, 64 iterations: loads per phase grow.
	batches := drainBatches(t, sw.Threads(1, SizeTest, 1)[0])
	var loadsPerPhase []int
	loads := 0
	for _, batch := range batches {
		for _, in := range batch {
			switch in.Op {
			case isa.OpLoad:
				loads++
			case isa.OpSync:
				loadsPerPhase = append(loadsPerPhase, loads)
				loads = 0
			}
		}
	}
	want := []int{32, 48, 64}
	if len(loadsPerPhase) != len(want) {
		t.Fatalf("got %d phases, want %d", len(loadsPerPhase), len(want))
	}
	for i, w := range want {
		if loadsPerPhase[i] != w {
			t.Fatalf("phase %d: %d loads, want %d", i, loadsPerPhase[i], w)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"bad json", `{`},
		{"no name", `{"description": "d", "phases": [{"blocks": [{"kind": "stride", "count": 1}]}]}`},
		{"bad name", `{"name": "Bad Name", "description": "d", "phases": [{"blocks": [{"kind": "stride", "count": 1}]}]}`},
		{"no description", `{"name": "x", "phases": [{"blocks": [{"kind": "stride", "count": 1}]}]}`},
		{"no phases or trace", `{"name": "x", "description": "d"}`},
		{"phases and trace", `{"name": "x", "description": "d", "phases": [{"blocks": [{"kind": "stride", "count": 1}]}], "trace": {"records": [{"proc": 0, "op": "int", "pc": 4}]}}`},
		{"empty phase", `{"name": "x", "description": "d", "phases": [{"blocks": []}]}`},
		{"unknown kind", `{"name": "x", "description": "d", "phases": [{"blocks": [{"kind": "zigzag"}]}]}`},
		{"share degree", `{"name": "x", "description": "d", "phases": [{"blocks": [{"kind": "share", "count": 4, "degree": 1}]}]}`},
		{"random span", `{"name": "x", "description": "d", "phases": [{"blocks": [{"kind": "random", "count": 4}]}]}`},
		{"trace file in memory", `{"name": "x", "description": "d", "trace": {"file": "t.jsonl"}}`},
		{"records and file", `{"name": "x", "description": "d", "trace": {"records": [{"proc": 0, "op": "int", "pc": 4}], "file": "t.jsonl"}}`},
	}
	for _, c := range cases {
		if _, err := ParseSpec([]byte(c.src)); err == nil {
			t.Errorf("%s: wanted an error", c.name)
		}
	}
}

func TestRegisterDynamicLifecycle(t *testing.T) {
	sw, err := ParseSpec([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	defer removeDynamic(sw.Name())
	if err := sw.Register(); err != nil {
		t.Fatal(err)
	}
	if DefinitionHash(sw.Name()) != sw.Hash() {
		t.Fatal("DefinitionHash does not match")
	}
	if _, err := ByName(sw.Name()); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-registration.
	if err := sw.Register(); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	// A different definition under the same name is rejected.
	other := *sw
	other.hash = sw.hash ^ 1
	if err := other.Register(); err == nil {
		t.Fatal("conflicting definition registered")
	}
	// Built-in names are protected at registration.
	imp, err := FromTrace("lu", "imposter", []trace.Access{{Proc: 0, Op: "int", PC: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := imp.Register(); err == nil {
		t.Fatal("built-in collision accepted")
	}
	// Built-ins report hash 0.
	if DefinitionHash("lu") != 0 {
		t.Fatal("built-in has a definition hash")
	}
}

// TestFromTraceReplay captures a built-in workload's instruction
// streams as trace records, ingests them, and checks the replay
// reproduces the original streams instruction for instruction —
// including barrier placement — at the capture's processor count.
func TestFromTraceReplay(t *testing.T) {
	const n = 2
	var recs []trace.Access
	var want [][]isa.Inst
	for tid, th := range (FSStencil{}).Threads(n, SizeTest, 11) {
		var flat []isa.Inst
		for _, batch := range drainBatches(t, th) {
			for _, in := range batch {
				flat = append(flat, in)
				recs = append(recs, trace.AccessFromInst(tid, in))
			}
		}
		want = append(want, flat)
	}

	sw, err := FromTrace("captured-fs", "fsstencil capture", recs)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Hash() == 0 {
		t.Fatal("zero hash")
	}
	for tid, th := range sw.Threads(n, SizeTest, 99) {
		var flat []isa.Inst
		for _, batch := range drainBatches(t, th) {
			flat = append(flat, batch...)
		}
		if len(flat) != len(want[tid]) {
			t.Fatalf("proc %d: replay has %d insts, capture had %d", tid, len(flat), len(want[tid]))
		}
		for i := range flat {
			if flat[i] != want[tid][i] {
				t.Fatalf("proc %d inst %d: replay %+v != capture %+v", tid, i, flat[i], want[tid][i])
			}
		}
	}

	// Replaying a 2-proc capture on a 4-node machine folds both trace
	// procs onto distinct threads and remaps homes into range.
	for tid, th := range sw.Threads(4, SizeTest, 0) {
		for _, batch := range drainBatches(t, th) {
			for _, in := range batch {
				if in.Op.IsMem() {
					if home := int(in.Addr >> machine.HomeShift); home < 0 || home >= 4 {
						t.Fatalf("tid %d: home %d out of range", tid, home)
					}
				}
			}
		}
	}

	// Equal barrier counts survive replay on a 1-node machine (both
	// trace procs fold onto thread 0).
	th := sw.Threads(1, SizeTest, 0)[0]
	syncs := 0
	for _, batch := range drainBatches(t, th) {
		for _, in := range batch {
			if in.Op == isa.OpSync {
				syncs++
			}
		}
	}
	if syncs == 0 {
		t.Fatal("replay lost all barriers")
	}
}

// TestFromTraceSpecEquivalence checks the promised identity: a trace
// ingested with FromTrace and the same records written as an inline
// "trace" stanza spec produce the same definition hash.
func TestFromTraceSpecEquivalence(t *testing.T) {
	recs := []trace.Access{
		{Proc: 0, Op: "load", PC: 0x40, Addr: machine.AddrAt(0, 64)},
		{Proc: 0, Op: "int", PC: 0x44, N: 3},
		{Proc: 0, Op: "sync", PC: 0x80},
		{Proc: 0, Op: "store", PC: 0x48, Addr: machine.AddrAt(1, 8)},
		{Proc: 1, Op: "fp", PC: 0x60},
		{Proc: 1, Op: "sync", PC: 0x80},
		{Proc: 1, Op: "branch", PC: 0x64, Taken: true},
	}
	fromAPI, err := FromTrace("tiny-trace", "two-proc toy", recs)
	if err != nil {
		t.Fatal(err)
	}
	spec := `{"name": "tiny-trace", "description": "two-proc toy", "trace": {"records": [
	  {"proc": 0, "op": "load", "pc": 64, "addr": 64},
	  {"proc": 0, "op": "int", "pc": 68, "n": 3},
	  {"proc": 0, "op": "sync", "pc": 128},
	  {"proc": 0, "op": "store", "pc": 72, "addr": ` + fmt.Sprint(machine.AddrAt(1, 8)) + `},
	  {"proc": 1, "op": "fp", "pc": 96},
	  {"proc": 1, "op": "sync", "pc": 128},
	  {"proc": 1, "op": "branch", "pc": 100, "taken": true}
	]}}`
	fromSpec, err := ParseSpec([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if fromAPI.Hash() != fromSpec.Hash() {
		t.Fatalf("hash mismatch: FromTrace %016x vs spec %016x", fromAPI.Hash(), fromSpec.Hash())
	}

	// The int bundle expands to 3 instructions; barrier PC comes from
	// the captured syncs.
	th := fromAPI.Threads(2, SizeTest, 0)
	flat0 := []isa.Inst{}
	for _, b := range drainBatches(t, th[0]) {
		flat0 = append(flat0, b...)
	}
	ints := 0
	for _, in := range flat0 {
		if in.Op == isa.OpInt {
			ints++
		}
	}
	if ints != 3 {
		t.Fatalf("proc 0 has %d int insts, want 3 (bundle expansion)", ints)
	}
	sawSync := false
	for _, in := range flat0 {
		if in.Op == isa.OpSync {
			sawSync = true
			if in.PC != 0x80 {
				t.Fatalf("barrier PC %#x, want captured 0x80", in.PC)
			}
		}
	}
	if !sawSync {
		t.Fatal("no barrier in replay")
	}
}

func TestFromTraceErrors(t *testing.T) {
	if _, err := FromTrace("x", "d", nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := FromTrace("x", "", []trace.Access{{Proc: 0, Op: "int", PC: 4}}); err == nil {
		t.Error("missing description accepted")
	}
	// Mismatched sync counts.
	if _, err := FromTrace("x", "d", []trace.Access{
		{Proc: 0, Op: "sync", PC: 4},
		{Proc: 1, Op: "int", PC: 8},
	}); err == nil {
		t.Error("mismatched barrier counts accepted")
	}
	// Unknown op.
	if _, err := FromTrace("x", "d", []trace.Access{{Proc: 0, Op: "jmp", PC: 4}}); err == nil {
		t.Error("unknown op accepted")
	}
	// Repeated sync.
	if _, err := FromTrace("x", "d", []trace.Access{{Proc: 0, Op: "sync", PC: 4, N: 2}}); err == nil {
		t.Error("repeated sync accepted")
	}
}
