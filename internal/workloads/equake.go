package workloads

import (
	"fmt"

	"dsmphase/internal/isa"
	"dsmphase/internal/machine"
	"dsmphase/internal/rng"
)

// Equake models SPEC-OMP Equake (earthquake ground-motion simulation,
// MinneSPEC-Large analogue): an unstructured-mesh finite element code
// whose timestep alternates a sparse matrix-vector product over a
// partitioned mesh with dense vector updates, plus a seismic source
// excitation concentrated near the epicenter during early timesteps.
//
// Phase-detection relevance: the SMVP reads neighbour displacement
// values across partition boundaries (remote fraction fixed per node but
// different per processor), the vector phases are purely local, and the
// early-timestep source phase loads only the epicenter's owner — strong
// temporal and spatial imbalance that BBVs alone cannot separate.
type Equake struct{}

func init() { Register(Equake{}) }

// Name implements Workload.
func (Equake) Name() string { return "equake" }

// Description implements Workload.
func (Equake) Description() string {
	return "SPEC-OMP Equake finite-element earthquake simulation (SMVP + vector updates + source excitation)"
}

type equakeParams struct {
	Nodes  int // mesh nodes
	Degree int // neighbours per node
	Steps  int
	// FarPct is the percentage of mesh nodes with one long-range
	// neighbour (unstructured-mesh fill-in).
	FarPct int
}

func (Equake) params(sz Size) equakeParams {
	switch sz {
	case SizeTest:
		return equakeParams{Nodes: 4096, Degree: 6, Steps: 8, FarPct: 6}
	case SizeSmall:
		return equakeParams{Nodes: 16384, Degree: 8, Steps: 12, FarPct: 6}
	default:
		return equakeParams{Nodes: 32768, Degree: 8, Steps: 16, FarPct: 6} // MinneSPEC-Large analogue
	}
}

// InputSet implements Workload.
func (w Equake) InputSet(sz Size) string {
	p := w.params(sz)
	return fmt.Sprintf("MinneSPEC-Large analogue: %d-node mesh, degree %d, %d timesteps", p.Nodes, p.Degree, p.Steps)
}

// Equake kernel kinds.
const (
	eqSmvp = iota
	eqVector
	eqSource
)

const pcEquake = 0x4000_0000

// eqChunk is the number of mesh nodes emitted per work item.
const eqChunk = 64

type equakeRun struct {
	n    int
	p    equakeParams
	seed uint64
}

// nodeOwner partitions mesh nodes contiguously.
func (r *equakeRun) nodeOwner(v int) int {
	return v * r.n / r.p.Nodes
}

// xAddr is the displacement entry of mesh node v (one line per node so
// sharing is per-node).
func (r *equakeRun) xAddr(v int) uint64 {
	return machine.AddrAt(r.nodeOwner(v), uint64(v)*32)
}

// kAddr is the local stiffness-row entry for (v, slot).
func (r *equakeRun) kAddr(v, slot int) uint64 {
	const kRegion = 1 << 28
	return machine.AddrAt(r.nodeOwner(v), kRegion+uint64(v*r.p.Degree+slot)*8)
}

// yAddr is the local result entry for node v.
func (r *equakeRun) yAddr(v int) uint64 {
	const yRegion = 1 << 29
	return machine.AddrAt(r.nodeOwner(v), yRegion+uint64(v)*32)
}

// neighbour returns mesh node v's slot-th neighbour: near-diagonal mesh
// edges plus an occasional deterministic long-range edge.
func (r *equakeRun) neighbour(v, slot int) int {
	if slot == r.p.Degree-1 && int(rng.Hash64(r.seed^uint64(v))%100) < r.p.FarPct {
		return int(rng.Hash64(uint64(v)<<8) % uint64(r.p.Nodes))
	}
	offs := []int{-3, -2, -1, 1, 2, 3, -17, 17}
	u := v + offs[slot%len(offs)]
	if u < 0 {
		u += r.p.Nodes
	}
	if u >= r.p.Nodes {
		u -= r.p.Nodes
	}
	return u
}

// epicenterOwner is the processor owning the excitation region (the
// first 1/32nd of the mesh).
func (r *equakeRun) epicenterSpan() (lo, hi int) {
	return 0, max(1, r.p.Nodes/32)
}

// Threads implements Workload.
func (w Equake) Threads(n int, sz Size, seed uint64) []isa.Thread {
	p := w.params(sz)
	run := &equakeRun{n: n, p: p, seed: seed}
	out := make([]isa.Thread, n)
	for tid := 0; tid < n; tid++ {
		lo := tid * p.Nodes / n
		hi := (tid + 1) * p.Nodes / n
		var items []item
		chunks := func(kind, arg int) {
			for s := lo; s < hi; s += eqChunk {
				e := s + eqChunk
				if e > hi {
					e = hi
				}
				items = append(items, item{kind: kind, a: s, b: e, c: arg})
			}
		}
		elo, ehi := run.epicenterSpan()
		for ts := 0; ts < p.Steps; ts++ {
			chunks(eqSmvp, ts)
			items = append(items, item{kind: kindBarrier})
			chunks(eqVector, 0)
			chunks(eqVector, 1)
			items = append(items, item{kind: kindBarrier})
			if ts < p.Steps/4 {
				// Source excitation: only owners of the epicenter region
				// do work here; everyone else waits at the barrier.
				slo, shi := maxInt(lo, elo), minInt(hi, ehi)
				for s := slo; s < shi; s += eqChunk {
					e := s + eqChunk
					if e > shi {
						e = shi
					}
					items = append(items, item{kind: eqSource, a: s, b: e})
				}
				items = append(items, item{kind: kindBarrier})
			}
		}
		out[tid] = &scriptThread{items: items, emit: run.emit, barrierPC: pcEquake + 0xF00}
	}
	return out
}

func (r *equakeRun) emit(it item, e *isa.Emitter) {
	switch it.kind {
	case eqSmvp:
		r.emitSmvp(e, it.a, it.b)
	case eqVector:
		r.emitVector(e, it.a, it.b, it.c)
	case eqSource:
		r.emitSource(e, it.a, it.b)
	default:
		panic("equake: unknown work item")
	}
}

// emitSmvp: y[v] = Σ K[v][s] · x[neighbour(v,s)] over the chunk.
func (r *equakeRun) emitSmvp(e *isa.Emitter, lo, hi int) {
	const pc = pcEquake + 0x000
	for v := lo; v < hi; v++ {
		for s := 0; s < r.p.Degree; s++ {
			e.Load(pc+0, r.kAddr(v, s))
			e.Load(pc+4, r.xAddr(r.neighbour(v, s)))
			e.FP(pc+8, 2)
			e.LoopBranch(pc+12, s, r.p.Degree)
		}
		e.Store(pc+16, r.yAddr(v))
		e.LoopBranch(pc+20, v-lo, hi-lo)
	}
}

// emitVector: x[v] += c · y[v] style local sweeps (two variants with
// distinct PCs so the BBV sees them as different code).
func (r *equakeRun) emitVector(e *isa.Emitter, lo, hi, variant int) {
	pc := uint32(pcEquake + 0x100 + 0x40*variant)
	for v := lo; v < hi; v++ {
		e.Load(pc+0, r.yAddr(v))
		e.Load(pc+4, r.xAddr(v))
		e.FP(pc+8, 2)
		e.Store(pc+12, r.xAddr(v))
		e.LoopBranch(pc+16, v-lo, hi-lo)
	}
}

// emitSource: FP-heavy excitation applied to the epicenter chunk.
func (r *equakeRun) emitSource(e *isa.Emitter, lo, hi int) {
	const pc = pcEquake + 0x200
	for v := lo; v < hi; v++ {
		e.Load(pc+0, r.xAddr(v))
		e.FP(pc+4, 8)
		e.Store(pc+8, r.xAddr(v))
		e.LoopBranch(pc+12, v-lo, hi-lo)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
