package workloads

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmphase/internal/trace"
)

// Error-path coverage for the file-level front ends: every malformed
// input must come back as a clear error — never a panic — and the error
// text must locate the problem.

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadSpecFileErrors(t *testing.T) {
	valid := `{"name":"ep-ok","description":"d","phases":[{"blocks":[{"kind":"stride","count":4,"wrap":8}]}]}`

	cases := []struct {
		name    string
		content string // "" means don't create the file
		want    string // substring of the error
	}{
		{"missing file", "", "no such file"},
		{"empty file", " ", "parsing spec"},
		{"truncated json", valid[:len(valid)/2], "parsing spec"},
		{"unknown block kind", `{"name":"ep","description":"d","phases":[{"blocks":[{"kind":"quantum","count":4}]}]}`, `unknown block kind "quantum"`},
		{"zero phases", `{"name":"ep","description":"d","phases":[]}`, "needs phases or a trace"},
		{"trace file missing", `{"name":"ep","description":"d","trace":{"file":"nope.jsonl"}}`, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "missing.wdl")
			if tc.content != "" {
				path = writeTemp(t, "spec.wdl", tc.content)
			}
			sw, err := LoadSpecFile(path)
			if err == nil {
				t.Fatalf("want error containing %q, got workload %q", tc.want, sw.Name())
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}

	// Control: the valid spec loads.
	if _, err := LoadSpecFile(writeTemp(t, "ok.wdl", valid)); err != nil {
		t.Fatalf("valid spec failed to load: %v", err)
	}
}

// TestLoadSpecFileTraceErrors drives the trace stanza through files:
// truncated JSONL, sync-count mismatches, and effectively zero-thread
// traces must surface as errors from LoadSpecFile, not panics.
func TestLoadSpecFileTraceErrors(t *testing.T) {
	spec := func(traceFile string) string {
		return `{"name":"ep-tr","description":"d","trace":{"file":"` + traceFile + `"}}`
	}
	load := func(t *testing.T, jsonl string) error {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "t.jsonl"), []byte(jsonl), 0o644); err != nil {
			t.Fatal(err)
		}
		specPath := filepath.Join(dir, "spec.wdl")
		if err := os.WriteFile(specPath, []byte(spec("t.jsonl")), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadSpecFile(specPath)
		return err
	}

	cases := []struct {
		name  string
		jsonl string
		want  string
	}{
		{"truncated jsonl", `{"proc":0,"op":"load","pc":16,"ad`, "unexpected EOF"},
		{"empty trace file", "", "has no records"},
		{"sync-count mismatch", `{"proc":0,"op":"load","pc":16,"addr":64}
{"proc":0,"op":"sync","pc":32}
{"proc":1,"op":"load","pc":16,"addr":128}`, "barrier counts must match"},
		{"negative proc", `{"proc":-1,"op":"load","pc":16,"addr":64}`, "negative proc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := load(t, tc.jsonl)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestFromTraceNegativeProc pins that negative processor IDs are
// rejected up front rather than panicking during segmentation —
// including the all-negative case, which used to leave procs == 0 and
// index segs[0] out of range.
func TestFromTraceNegativeProc(t *testing.T) {
	cases := [][]trace.Access{
		{{Proc: -1, Op: "load", PC: 16, Addr: 64}},
		{{Proc: 0, Op: "load", PC: 16, Addr: 64}, {Proc: -3, Op: "store", PC: 20, Addr: 72}},
	}
	for i, recs := range cases {
		_, err := FromTrace("ep-neg", "d", recs)
		if err == nil || !strings.Contains(err.Error(), "negative proc") {
			t.Fatalf("case %d: want negative-proc error, got %v", i, err)
		}
	}
}
